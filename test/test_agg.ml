(* Tests for the MongoDB aggregation pipeline engine: per-stage
   semantics, the streaming/blocking split, and the differential
   pinning the direct engine against the pure-JNL route. *)

module Value = Jsont.Value
module Agg = Jquery.Mongo_agg

let parse_doc = Jsont.Parser.parse_exn

let docs texts = List.map parse_doc texts

let run_strings ?collections ptext dtexts =
  let pl = Agg.parse_string_exn ?collections ptext in
  List.map Value.to_string (Agg.run pl (docs dtexts))

let check_run label expected ?collections ptext dtexts =
  Alcotest.(check (list string)) label expected (run_strings ?collections ptext dtexts)

(* the orders collection of the CLI examples *)
let orders =
  [ {|{"order_id":1,"status":"shipped","total":30,"lines":[{"sku":"a","qty":2},{"sku":"b","qty":1}]}|};
    {|{"order_id":2,"status":"pending","total":10,"lines":[{"sku":"a","qty":5}]}|};
    {|{"order_id":3,"status":"shipped","total":20,"lines":[]}|};
    {|{"order_id":4,"status":"shipped","total":25}|} ]

let test_match () =
  check_run "match filters" [ {|{"order_id":2,"status":"pending","total":10,"lines":[{"sku":"a","qty":5}]}|} ]
    {|[{"$match": {"status": "pending"}}]|} orders;
  check_run "match keeps order"
    [ {|{"order_id":1}|}; {|{"order_id":3}|}; {|{"order_id":4}|} ]
    {|[{"$match": {"status": "shipped"}}, {"$project": {"order_id": 1}}]|} orders

let test_project () =
  check_run "include" [ {|{"a":{"b":1}}|} ]
    {|[{"$project": {"a.b": 1}}]|} [ {|{"a":{"b":1,"c":2},"d":3}|} ];
  check_run "exclude" [ {|{"a":{"c":2},"d":3}|} ]
    {|[{"$project": {"a.b": 0}}]|} [ {|{"a":{"b":1,"c":2},"d":3}|} ];
  check_run "computed path" [ {|{"city":"Santiago"}|} ]
    {|[{"$project": {"city": "$address.city"}}]|}
    [ {|{"name":"Sue","address":{"city":"Santiago"}}|} ];
  check_run "computed literal and document" [ {|{"k":7,"pair":{"n":"Sue","tag":"x"}}|} ]
    {|[{"$project": {"k": {"$literal": 7}, "pair": {"n": "$name", "tag": {"$literal": "x"}}}}]|}
    [ {|{"name":"Sue"}|} ];
  check_run "computed missing field omitted" [ {|{"keep":1}|} ]
    {|[{"$project": {"keep": 1, "gone": "$nope"}}]|} [ {|{"keep":1}|} ];
  check_run "path through array collects" [ {|{"qtys":[2,1]}|} ]
    {|[{"$project": {"qtys": "$lines.qty"}}]|}
    [ {|{"lines":[{"sku":"a","qty":2},{"sku":"b","qty":1}]}|} ];
  (match Agg.parse_string {|[{"$project": {"a": 1, "b": 0}}]|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed projection must be rejected");
  match Agg.parse_string {|[{"$project": {}}]|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty $project must be rejected"

let test_unwind () =
  check_run "unwind" [ {|{"a":1}|}; {|{"a":2}|} ]
    {|[{"$unwind": "$a"}]|} [ {|{"a":[1,2]}|} ];
  check_run "unwind drops empty and missing" []
    {|[{"$unwind": "$a"}]|} [ {|{"a":[]}|}; {|{"b":1}|} ];
  check_run "unwind preserve" [ {|{"b":1}|}; {|{"b":2}|} ]
    {|[{"$unwind": {"path": "$a", "preserveNullAndEmptyArrays": true}}]|}
    [ {|{"a":[],"b":1}|}; {|{"b":2}|} ];
  check_run "unwind non-array passes through" [ {|{"a":5}|} ]
    {|[{"$unwind": "$a"}]|} [ {|{"a":5}|} ];
  check_run "unwind nested path" [ {|{"a":{"b":1},"c":9}|}; {|{"a":{"b":2},"c":9}|} ]
    {|[{"$unwind": "$a.b"}]|} [ {|{"a":{"b":[1,2]},"c":9}|} ]

let test_group () =
  check_run "group sum/count"
    [ {|{"_id":"shipped","total":75,"n":3}|}; {|{"_id":"pending","total":10,"n":1}|} ]
    {|[{"$group": {"_id": "$status", "total": {"$sum": "$total"}, "n": {"$count": {}}}}]|}
    orders;
  check_run "group min/max/avg"
    [ {|{"_id":"shipped","lo":20,"hi":30,"mean":25}|} ]
    {|[{"$match": {"status": "shipped"}},
       {"$group": {"_id": "$status", "lo": {"$min": "$total"}, "hi": {"$max": "$total"}, "mean": {"$avg": "$total"}}}]|}
    orders;
  check_run "group push"
    [ {|{"_id":0,"ids":[1,2,3,4]}|} ]
    {|[{"$group": {"_id": {"$literal": 0}, "ids": {"$push": "$order_id"}}}]|}
    orders;
  (* $sum ignores non-numeric values; $avg with none is omitted *)
  check_run "sum skips non-numeric"
    [ {|{"_id":0,"s":3}|} ]
    {|[{"$group": {"_id": {"$literal": 0}, "s": {"$sum": "$x"}}}]|}
    [ {|{"x":1}|}; {|{"x":"two"}|}; {|{"x":2}|} ];
  check_run "avg of nothing omitted"
    [ {|{"_id":0}|} ]
    {|[{"$group": {"_id": {"$literal": 0}, "m": {"$avg": "$nope"}}}]|}
    [ {|{"x":1}|} ];
  (* missing _id expression: the output group omits _id *)
  check_run "missing _id omitted"
    [ {|{"n":2}|} ]
    {|[{"$group": {"_id": "$nope", "n": {"$count": {}}}}]|}
    [ {|{"x":1}|}; {|{"y":2}|} ];
  (* compound _id documents group by the combination *)
  check_run "compound _id"
    [ {|{"_id":{"s":"shipped","t":30},"n":1}|};
      {|{"_id":{"s":"pending","t":10},"n":1}|};
      {|{"_id":{"s":"shipped","t":20},"n":1}|};
      {|{"_id":{"s":"shipped","t":25},"n":1}|} ]
    {|[{"$group": {"_id": {"s": "$status", "t": "$total"}, "n": {"$count": {}}}}]|}
    orders

let test_sort_limit_skip () =
  check_run "sort ascending"
    [ {|{"order_id":2}|}; {|{"order_id":3}|}; {|{"order_id":4}|}; {|{"order_id":1}|} ]
    {|[{"$sort": {"total": 1}}, {"$project": {"order_id": 1}}]|} orders;
  check_run "sort descending, limit"
    [ {|{"order_id":1}|}; {|{"order_id":4}|} ]
    {|[{"$sort": {"total": 0}}, {"$limit": 2}, {"$project": {"order_id": 1}}]|} orders;
  check_run "skip" [ {|{"order_id":4}|}; {|{"order_id":1}|} ]
    {|[{"$sort": {"total": 1}}, {"$skip": 2}, {"$project": {"order_id": 1}}]|} orders;
  (* missing keys sort first ascending; ties stay stable *)
  check_run "missing first"
    [ {|{"b":1}|}; {|{"a":1,"b":2}|}; {|{"a":1,"b":3}|}; {|{"a":2}|} ]
    {|[{"$sort": {"a": 1}}]|}
    [ {|{"a":1,"b":2}|}; {|{"a":2}|}; {|{"b":1}|}; {|{"a":1,"b":3}|} ]

let test_lookup () =
  let skus =
    Some (docs [ {|{"sku":"a","desc":"apple"}|}; {|{"sku":"b","desc":"pear"}|} ])
  in
  let collections = function "skus" -> skus | _ -> None in
  check_run "lookup joins" ~collections
    [ {|{"sku":"a","info":[{"sku":"a","desc":"apple"}]}|};
      {|{"sku":"c","info":[]}|} ]
    {|[{"$lookup": {"from": "skus", "localField": "sku", "foreignField": "sku", "as": "info"}}]|}
    [ {|{"sku":"a"}|}; {|{"sku":"c"}|} ];
  (* an array local field matches per element *)
  check_run "lookup array local" ~collections
    [ {|{"sku":["b","a"],"info":[{"sku":"a","desc":"apple"},{"sku":"b","desc":"pear"}]}|} ]
    {|[{"$lookup": {"from": "skus", "localField": "sku", "foreignField": "sku", "as": "info"}}]|}
    [ {|{"sku":["b","a"]}|} ];
  (* a missing local field matches foreign docs missing the field *)
  let collections = function
    | "mixed" -> Some (docs [ {|{"k":1}|}; {|{"x":9}|} ])
    | _ -> None
  in
  check_run "lookup missing matches missing" ~collections
    [ {|{"info":[{"x":9}]}|} ]
    {|[{"$lookup": {"from": "mixed", "localField": "k", "foreignField": "k", "as": "info"}}]|}
    [ {|{}|} ];
  match
    Agg.parse_string
      {|[{"$lookup": {"from": "nope", "localField": "a", "foreignField": "b", "as": "c"}}]|}
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown collection must be rejected"

let test_parse_errors () =
  List.iter
    (fun s ->
      match Agg.parse_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected pipeline error on %s" s)
    [ {|{"$match": {}}|};  (* not an array *)
      {|[{"$frobnicate": {}}]|};
      {|[{"$match": {"a": {"$frobnicate": 1}}}]|};
      {|[{"$match": {}, "$limit": 1}]|};
      {|[{"$sort": {"a": 5}}]|};
      {|[{"$sort": {}}]|};
      {|[{"$group": {"n": {"$sum": "$a"}}}]|};  (* no _id *)
      {|[{"$group": {"_id": "$a", "n": {"$median": "$a"}}}]|};
      {|[{"$unwind": "a"}]|};  (* path must start with $ *)
      {|[{"$unwind": {"path": "$a", "bogus": 1}}]|};
      {|[{"$project": {"x": {"$concat": ["$a", "$b"]}}}]|} ]

(* ---- streaming split and Par.Batch sharding ------------------------------- *)

let shard_run ~jobs pl vs =
  let streaming, blocking = Agg.split_streaming pl in
  let ds = Array.of_list (List.map Agg.doc_of_value vs) in
  let prefixed = Par.Batch.map ~jobs (Agg.apply_doc streaming) ds in
  let flat = List.concat (Array.to_list prefixed) in
  List.map Agg.doc_value (Agg.run_docs blocking flat)

let test_sharding () =
  let rng = Jworkload.Prng.create 11 in
  let vs = List.init 60 (fun _ -> Jworkload.Gen_json.api_record rng 3) in
  let pl =
    Agg.parse_string_exn
      {|[{"$match": {"age": {"$gte": 30}}},
         {"$unwind": "$orders"},
         {"$project": {"status": "$orders.status", "total": "$orders.total"}},
         {"$group": {"_id": "$status", "sum": {"$sum": "$total"}, "n": {"$count": {}}}},
         {"$sort": {"sum": 0}}]|}
  in
  let seq = List.map Value.to_string (Agg.run pl vs) in
  Alcotest.(check bool) "pipeline produces groups" true (List.length seq > 0);
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d agrees with sequential" jobs)
        seq
        (List.map Value.to_string (shard_run ~jobs pl vs)))
    [ 1; 2; 4 ]

(* ---- the pipeline differential -------------------------------------------- *)

(* Navigational pipelines evaluated by the direct engine (JSL plans +
   value rewriting) and the pure-JNL route (Theorem 2 + post-image
   marking sets + Tree.substitute) must agree byte for byte. *)

let nav_pipelines =
  [ {|[{"$match": {"age": {"$exists": true}}}]|};
    {|[{"$match": {"orders.status": "shipped"}}]|};
    {|[{"$match": {"name.first": {"$in": ["Sue", "Ana"]}}}]|};
    {|[{"$project": {"name.first": 1, "orders.total": 1}}]|};
    {|[{"$project": {"orders.lines.qty": 1}}]|};
    {|[{"$project": {"name.last": 0, "orders.lines": 0}}]|};
    {|[{"$unwind": "$hobbies"}]|};
    {|[{"$unwind": {"path": "$orders", "preserveNullAndEmptyArrays": true}}]|};
    {|[{"$match": {"hobbies": {"$exists": true}}},
       {"$unwind": "$hobbies"},
       {"$project": {"name.first": 1, "hobbies": 1}}]|};
    {|[{"$unwind": "$orders"},
       {"$match": {"orders.status": "shipped"}},
       {"$project": {"orders.lines.sku": 1, "id": 1}}]|};
    {|[{"$project": {"k3": 0}}, {"$unwind": "$k1"}]|} ]

let mixed_corpus seed n =
  let rng = Jworkload.Prng.create seed in
  List.init n (fun i ->
      if i mod 2 = 0 then Jworkload.Gen_json.api_record rng 3
      else
        (* sized documents can have non-object roots; wrap to keep the
           collection document-shaped like a Mongo collection *)
        match Jworkload.Gen_json.sized rng 40 with
        | Value.Obj _ as v -> v
        | v -> Value.Obj [ ("k1", v) ])

let test_differential () =
  let vs = mixed_corpus 42 80 in
  List.iter
    (fun ptext ->
      let pl = Agg.parse_string_exn ptext in
      Alcotest.(check bool)
        (Printf.sprintf "navigational: %s" ptext)
        true (Agg.navigational pl);
      let direct = List.map Value.to_string (Agg.run pl vs) in
      match Agg.run_via_jnl pl vs with
      | Error m -> Alcotest.failf "JNL route failed on %s: %s" ptext m
      | Ok jnl ->
        Alcotest.(check (list string))
          (Printf.sprintf "JNL route agrees: %s" ptext)
          direct
          (List.map Value.to_string jnl))
    nav_pipelines

(* random navigational pipelines over the key pool *)
let test_differential_random () =
  let rng = Jworkload.Prng.create 7 in
  let keys = Jworkload.Gen_json.default_profile.Jworkload.Gen_json.key_pool in
  let rand_path () =
    let len = 1 + Jworkload.Prng.int rng 2 in
    String.concat "." (List.init len (fun _ -> Jworkload.Prng.choose rng keys))
  in
  let rand_stage () =
    match Jworkload.Prng.int rng 4 with
    | 0 -> Printf.sprintf {|{"$match": {"%s": {"$exists": true}}}|} (rand_path ())
    | 1 -> Printf.sprintf {|{"$project": {"%s": 1, "%s": 1}}|} (rand_path ()) (rand_path ())
    | 2 -> Printf.sprintf {|{"$project": {"%s": 0}}|} (rand_path ())
    | _ ->
      Printf.sprintf {|{"$unwind": {"path": "$%s", "preserveNullAndEmptyArrays": %s}}|}
        (rand_path ())
        (if Jworkload.Prng.bool rng then "true" else "false")
  in
  let vs = mixed_corpus 1234 40 in
  for trial = 1 to 40 do
    let n_stages = 1 + Jworkload.Prng.int rng 3 in
    let ptext =
      "[" ^ String.concat ", " (List.init n_stages (fun _ -> rand_stage ())) ^ "]"
    in
    let pl = Agg.parse_string_exn ptext in
    let direct = List.map Value.to_string (Agg.run pl vs) in
    match Agg.run_via_jnl pl vs with
    | Error m -> Alcotest.failf "JNL route failed (trial %d) on %s: %s" trial ptext m
    | Ok jnl ->
      Alcotest.(check (list string))
        (Printf.sprintf "trial %d: %s" trial ptext)
        direct
        (List.map Value.to_string jnl)
  done

(* Tree.substitute, the accessor the JNL unwind rebuild rests on *)
let test_substitute () =
  let v = parse_doc {|{"a":{"b":[1,2]},"c":"x"}|} in
  let t = Jsont.Tree.of_value v in
  (* replace the node at a.b *)
  let all = List.of_seq (Jsont.Tree.nodes t) in
  let target =
    List.find
      (fun n -> Jsont.Tree.equal_to_value t n (parse_doc "[1,2]"))
      all
  in
  Alcotest.(check string) "substitute a.b"
    {|{"a":{"b":9},"c":"x"}|}
    (Value.to_string (Jsont.Tree.substitute t target (Value.Num 9)));
  Alcotest.(check string) "substitute root"
    {|{"z":0}|}
    (Value.to_string (Jsont.Tree.substitute t Jsont.Tree.root (parse_doc {|{"z":0}|})));
  Alcotest.(check bool) "bad node rejected" true
    (match Jsont.Tree.substitute t 9999 (Value.Num 0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "agg"
    [ ("stages",
       [ Alcotest.test_case "$match" `Quick test_match;
         Alcotest.test_case "$project" `Quick test_project;
         Alcotest.test_case "$unwind" `Quick test_unwind;
         Alcotest.test_case "$group" `Quick test_group;
         Alcotest.test_case "$sort/$limit/$skip" `Quick test_sort_limit_skip;
         Alcotest.test_case "$lookup" `Quick test_lookup;
         Alcotest.test_case "parse errors" `Quick test_parse_errors ]);
      ("engine",
       [ Alcotest.test_case "sharded = sequential" `Quick test_sharding;
         Alcotest.test_case "Tree.substitute" `Quick test_substitute ]);
      ("differential",
       [ Alcotest.test_case "fixed pipelines" `Quick test_differential;
         Alcotest.test_case "random pipelines" `Quick test_differential_random ]) ]
