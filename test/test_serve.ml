(* Tests for the validation daemon: protocol round-trips, plan-cache
   LRU behaviour, end-to-end agreement with the CLI verdict cells, and
   the fault-injection suite — truncated frames, oversized declared
   lengths, mid-document disconnects, pipelining, slowloris
   one-byte-at-a-time clients.  Every fault case asserts the daemon
   keeps answering other requests and leaks neither a connection slot
   nor a plan-cache entry. *)

let schema_text =
  {|{"type":"object","required":["a"],
     "properties":{"a":{"type":"number","minimum":1},
                   "tags":{"type":"array","items":{"type":"string"}}}}|}

let schema_text2 = {|{"type":"array","items":{"type":"number"}}|}

(* in-process daemon on a fresh socket path; jobs varies per test *)
let with_server ?(jobs = 1) ?(cache_capacity = 64) ?max_body_bytes f =
  let path =
    Filename.temp_file "jserve_test" ".sock"
  in
  Sys.remove path;
  let cfg = Jserve.Server.default_config (`Unix path) in
  let cfg =
    { cfg with
      Jserve.Server.jobs;
      cache_capacity;
      max_body_bytes =
        Option.value max_body_bytes
          ~default:cfg.Jserve.Server.max_body_bytes }
  in
  let srv = Jserve.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Jserve.Server.stop srv;
      if Sys.file_exists path then Sys.remove path)
    (fun () -> f srv)

let with_client srv f =
  let c = Jserve.Client.connect (Jserve.Server.endpoint srv) in
  Fun.protect ~finally:(fun () -> Jserve.Client.close c) (fun () -> f c)

let unwrap = function
  | Ok s -> s
  | Error m -> Alcotest.failf "unexpected ERR: %s" m

let counter srv name =
  match List.assoc_opt name (Jserve.Server.counters srv) with
  | Some v -> v
  | None -> Alcotest.failf "no counter %s" name

(* the drain gate: accepted connections must all close after a fault *)
let await_drained srv =
  let deadline = Obs.Budget.now_mono () +. 5.0 in
  while
    Jserve.Server.active_connections srv > 0
    && Obs.Budget.now_mono () < deadline
  do
    Domain.cpu_relax ()
  done;
  Alcotest.(check int) "no leaked connection" 0
    (Jserve.Server.active_connections srv)

(* ---- protocol -------------------------------------------------------------- *)

let test_protocol_roundtrip () =
  let reqs =
    [ Jserve.Protocol.Schema 12;
      Jserve.Protocol.Validate { schema_id = "abc123"; len = 0 };
      Jserve.Protocol.Validate_inline { schema_len = 3; doc_len = 4 };
      Jserve.Protocol.Index_query { path_len = 12; formula_len = 30 };
      Jserve.Protocol.Ping; Jserve.Protocol.Metrics; Jserve.Protocol.Flush;
      Jserve.Protocol.Shutdown ]
  in
  List.iter
    (fun r ->
      let line = Jserve.Protocol.render_request r in
      let n = String.length line in
      Alcotest.(check char) "newline-terminated" '\n' line.[n - 1];
      match Jserve.Protocol.parse_request (String.sub line 0 (n - 1)) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error m -> Alcotest.failf "roundtrip failed: %s" m)
    reqs;
  let bad l =
    match Jserve.Protocol.parse_request l with
    | Ok _ -> Alcotest.failf "accepted %S" l
    | Error _ -> ()
  in
  (* lengths are decimal digit runs: no OCaml literal syntax, no
     signs, no overflow *)
  bad "SCHEMA 0x1F";
  bad "SCHEMA 1_000";
  bad "SCHEMA -3";
  bad "SCHEMA +3";
  bad "SCHEMA 9999999999999999999999";
  bad "SCHEMA ";
  bad "SCHEMA";
  bad "VALIDATE  5";
  bad "NONSENSE 4";
  bad "";
  bad "INDEXQ 5";
  bad "INDEXQ 5 -3";
  bad "INDEXQ 0x5 7";
  (* DATA framing: header carries the exact payload byte count *)
  Alcotest.(check string) "data frame" "DATA 4\nabcd"
    (Jserve.Protocol.data "abcd");
  Alcotest.(check (option int)) "data header" (Some 4)
    (Jserve.Protocol.parse_data_header "DATA 4");
  Alcotest.(check (option int)) "not a data header" None
    (Jserve.Protocol.parse_data_header "OK pong");
  Alcotest.(check (option int)) "bad data length" None
    (Jserve.Protocol.parse_data_header "DATA -1");
  (* responses: one line, embedded breaks folded *)
  Alcotest.(check string) "folded" "OK a b\n" (Jserve.Protocol.ok "a\nb");
  Alcotest.(check (result string string)) "ok" (Ok "pong")
    (Jserve.Protocol.parse_response "OK pong");
  Alcotest.(check (result string string)) "result" (Ok "valid")
    (Jserve.Protocol.parse_response "RESULT valid");
  Alcotest.(check bool) "err" true
    (Result.is_error (Jserve.Protocol.parse_response "ERR boom"));
  Alcotest.(check bool) "garbage" true
    (Result.is_error (Jserve.Protocol.parse_response "HELLO"))

(* ---- plan cache ------------------------------------------------------------ *)

let test_plan_cache_lru () =
  let budget = Obs.Budget.create () in
  let plan_of text =
    match Jschema.Parse.of_string text with
    | Ok s -> Jschema.Validate.Plan.compile ~budget s
    | Error m -> Alcotest.fail m
  in
  let cache = Jserve.Plan_cache.create ~capacity:2 in
  let p = plan_of schema_text in
  let id i = Printf.sprintf "schema-%d" i in
  Jserve.Plan_cache.add cache (id 1) p;
  Jserve.Plan_cache.add cache (id 2) p;
  Alcotest.(check int) "two resident" 2 (Jserve.Plan_cache.size cache);
  (* touch 1 so 2 is the LRU victim *)
  Alcotest.(check bool) "hit 1" true
    (Jserve.Plan_cache.find cache (id 1) <> None);
  Jserve.Plan_cache.add cache (id 3) p;
  Alcotest.(check int) "capacity held" 2 (Jserve.Plan_cache.size cache);
  Alcotest.(check bool) "2 evicted" true
    (Jserve.Plan_cache.find cache (id 2) = None);
  Alcotest.(check bool) "1 survived" true
    (Jserve.Plan_cache.find cache (id 1) <> None);
  Alcotest.(check bool) "3 resident" true
    (Jserve.Plan_cache.find cache (id 3) <> None);
  let hits, misses, evictions = Jserve.Plan_cache.stats cache in
  Alcotest.(check int) "hits" 3 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "evictions" 1 evictions;
  Jserve.Plan_cache.flush cache;
  Alcotest.(check int) "flushed" 0 (Jserve.Plan_cache.size cache);
  (* content-hash ids: equal bytes, equal id; distinct bytes, distinct *)
  Alcotest.(check string) "id is deterministic"
    (Jserve.Plan_cache.id_of_schema schema_text)
    (Jserve.Plan_cache.id_of_schema schema_text);
  Alcotest.(check bool) "distinct bytes, distinct id" true
    (Jserve.Plan_cache.id_of_schema schema_text
    <> Jserve.Plan_cache.id_of_schema schema_text2)

(* ---- end-to-end ------------------------------------------------------------ *)

(* every verdict cell the CLI can produce, via both VALIDATE and
   VALIDATEI, against a live daemon *)
let test_serve_verdicts () =
  with_server (fun srv ->
      with_client srv (fun c ->
          Alcotest.(check string) "ping" "pong" (unwrap (Jserve.Client.ping c));
          let id = unwrap (Jserve.Client.put_schema c schema_text) in
          Alcotest.(check string) "id is the content hash"
            (Jserve.Plan_cache.id_of_schema schema_text)
            id;
          let v doc = unwrap (Jserve.Client.validate c ~schema_id:id doc) in
          Alcotest.(check string) "valid" "valid" (v {|{"a":1}|});
          Alcotest.(check string) "invalid" "INVALID" (v {|{"a":0}|});
          Alcotest.(check string) "deep invalid" "INVALID"
            (v {|{"a":5,"tags":["x",3]}|});
          let e = v "{bad" in
          Alcotest.(check bool) "parse error cell" true
            (String.length e > 6 && String.sub e 0 6 = "error:");
          (* inline path: same verdicts, and the same cached plan *)
          let vi doc =
            unwrap (Jserve.Client.validate_inline c ~schema:schema_text doc)
          in
          Alcotest.(check string) "inline valid" "valid" (vi {|{"a":2}|});
          Alcotest.(check string) "inline invalid" "INVALID" (vi {|{"a":0}|});
          Alcotest.(check int) "one plan, content-addressed" 1
            (Jserve.Plan_cache.size (Jserve.Server.cache srv));
          (* unknown id: ERR but the connection keeps serving *)
          (match Jserve.Client.validate c ~schema_id:"feedface" {|{"a":1}|} with
          | Error _ -> ()
          | Ok v -> Alcotest.failf "unknown id answered %s" v);
          Alcotest.(check string) "still serving" "valid" (v {|{"a":7}|});
          (* bad schema: ERR per attempt, never cached *)
          (match Jserve.Client.put_schema c {|{"type":"nope"}|} with
          | Error _ -> ()
          | Ok id -> Alcotest.failf "bad schema got id %s" id);
          Alcotest.(check int) "failure not cached" 1
            (Jserve.Plan_cache.size (Jserve.Server.cache srv))))

(* the daemon's verdict must equal the CLI stream checker's on the
   same bytes — including error spelling *)
let test_serve_cli_agreement () =
  let docs =
    [ {|{"a":1}|}; {|{"a":0}|}; {|{"a":true}|}; {|{"a":1,"tags":[]}|};
      {|{"a":1,"tags":["x","y"]}|}; {|{"a":1,"tags":[1]}|}; {|[1,2]|};
      {|{"a":1|}; {|{bad|}; {|12 34|}; "" ]
  in
  let plan =
    match Jschema.Parse.of_string schema_text with
    | Ok s -> Jschema.Validate.Plan.compile s
    | Error m -> Alcotest.fail m
  in
  let cli_cell doc =
    match
      Jsont.Parser.wrap (fun () ->
          Jschema.Validate.Plan.run_stream ~budget:(Obs.Budget.create ())
            plan doc)
    with
    | Ok true -> "valid"
    | Ok false -> "INVALID"
    | Error e -> "error: " ^ Format.asprintf "%a" Jsont.Parser.pp_error e
  in
  with_server ~jobs:2 (fun srv ->
      with_client srv (fun c ->
          let id = unwrap (Jserve.Client.put_schema c schema_text) in
          List.iter
            (fun doc ->
              let daemon =
                unwrap (Jserve.Client.validate c ~schema_id:id doc)
              in
              Alcotest.(check string)
                (Printf.sprintf "agreement on %S" doc)
                (cli_cell doc) daemon)
            docs))

(* ---- INDEXQ: corpus-index queries through the daemon ------------------------ *)

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let indexq_corpus () =
  let rng = Jworkload.Prng.create 11 in
  let buf = Buffer.create 4096 in
  for i = 1 to 20 do
    Buffer.add_string buf
      (Jsont.Printer.compact (Jworkload.Gen_json.api_record rng (1 + (i mod 3))));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "{\"broken\": \n";
  Buffer.add_string buf "7\n";
  let corpus = Filename.temp_file "jserve_indexq" ".ndjson" in
  let idx = Filename.temp_file "jserve_indexq" ".idx" in
  write_file corpus (Buffer.contents buf);
  (match Jindex.Writer.build ~corpus ~output:idx () with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("index build failed: " ^ m));
  (corpus, idx)

(* the payload one INDEXQ must answer: exactly the `index query` CLI
   rows over the same reader *)
let indexq_expect idx formula =
  let r =
    match Jindex.Reader.open_ idx with
    | Ok r -> r
    | Error m -> Alcotest.fail m
  in
  match Jindex.Query.run r (Jlogic.Jnl.parse_exn formula) with
  | Error m -> Alcotest.fail m
  | Ok verdicts ->
    let b = Buffer.create 256 in
    Array.iteri
      (fun d v ->
        Buffer.add_string b
          (Printf.sprintf "%d\t%s\n"
             (Jindex.Reader.doc_lineno r d)
             (Jindex.Query.verdict_string v)))
      verdicts;
    Buffer.contents b

let test_indexq_end_to_end () =
  let corpus, idx = indexq_corpus () in
  with_server (fun srv ->
      with_client srv (fun c ->
          List.iter
            (fun formula ->
              Alcotest.(check string)
                ("payload agreement on " ^ formula)
                (indexq_expect idx formula)
                (unwrap (Jserve.Client.index_query c ~index:idx formula)))
            [ "eq(.name.first, \"John\")"; "<.orders[0].lines[0].sku>";
              "eq(eps, 7)"; "true"; "<.hobbies[-1]>" ];
          (* the reader cache: one open, the rest hits *)
          Alcotest.(check int) "one open" 1 (counter srv "serve.indexq.opens");
          Alcotest.(check int) "four cache hits" 4
            (counter srv "serve.indexq.open_hits");
          Alcotest.(check int) "requests counted" 5
            (counter srv "serve.indexq.requests");
          Alcotest.(check bool) "docs counted" true
            (counter srv "serve.indexq.docs" > 0);
          (* a rebuilt index (same path, new bytes) is re-opened, not
             answered from the stale mapping *)
          Unix.sleepf 0.02;
          write_file corpus "{\"a\":1}\n{\"a\":2}\n";
          (match Jindex.Writer.build ~corpus ~output:idx () with
          | Ok _ -> ()
          | Error m -> Alcotest.fail ("rebuild failed: " ^ m));
          Alcotest.(check string) "rebuilt index answers fresh"
            (indexq_expect idx "<.a>")
            (unwrap (Jserve.Client.index_query c ~index:idx "<.a>"));
          Alcotest.(check int) "re-open counted" 2
            (counter srv "serve.indexq.opens")));
  Sys.remove corpus;
  Sys.remove idx

(* INDEXQ faults: each answers ERR and the connection keeps serving *)
let test_indexq_faults () =
  let corpus, idx = indexq_corpus () in
  with_server (fun srv ->
      with_client srv (fun c ->
          let expect_err what r =
            match r with
            | Error m ->
              Alcotest.(check bool) (what ^ " message: " ^ m) true
                (String.length m > 0)
            | Ok v -> Alcotest.failf "%s answered %S" what v
          in
          expect_err "missing index"
            (Jserve.Client.index_query c ~index:"/no/such/index.idx" "true");
          expect_err "bad formula"
            (Jserve.Client.index_query c ~index:idx "eq(.name,");
          expect_err "not an index"
            (Jserve.Client.index_query c ~index:corpus "true");
          (* the connection survived all three *)
          Alcotest.(check string) "still serving" "pong"
            (unwrap (Jserve.Client.ping c));
          (* a stale corpus (changed after build) is refused per query *)
          Out_channel.with_open_gen
            [ Open_append; Open_binary ] 0o644 corpus
            (fun oc -> Out_channel.output_string oc "{\"x\":1}\n");
          expect_err "stale corpus"
            (Jserve.Client.index_query c ~index:idx "true");
          Alcotest.(check string) "alive after stale refusal" "pong"
            (unwrap (Jserve.Client.ping c))));
  Sys.remove corpus;
  Sys.remove idx

let test_serve_parallel_connections () =
  with_server ~jobs:4 (fun srv ->
      let id = Jserve.Plan_cache.id_of_schema schema_text in
      with_client srv (fun c ->
          ignore (unwrap (Jserve.Client.put_schema c schema_text)));
      let worker k () =
        with_client srv (fun c ->
            List.init 25 (fun i ->
                let doc = Printf.sprintf {|{"a":%d}|} ((k + i) mod 3) in
                let expect = if (k + i) mod 3 >= 1 then "valid" else "INVALID" in
                (expect, unwrap (Jserve.Client.validate c ~schema_id:id doc))))
      in
      let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
      let results = List.concat_map Domain.join domains in
      List.iter
        (fun (expect, got) -> Alcotest.(check string) "verdict" expect got)
        results;
      await_drained srv;
      let hits, misses, _ = Jserve.Plan_cache.stats (Jserve.Server.cache srv) in
      Alcotest.(check int) "every request hit the one plan" 100 hits;
      Alcotest.(check int) "one miss (registration)" 1 misses)

(* ---- fault injection ------------------------------------------------------- *)

(* body shorter than declared, then EOF: no response owed, no leak *)
let test_fault_truncated_body () =
  with_server (fun srv ->
      with_client srv (fun c ->
          Jserve.Client.send_raw c "SCHEMA 100\n{\"type\":";
          ());
      (* close happened with 100 bytes promised, ~8 delivered *)
      await_drained srv;
      (* the daemon still serves fresh connections *)
      with_client srv (fun c ->
          Alcotest.(check string) "alive" "pong"
            (unwrap (Jserve.Client.ping c)));
      Alcotest.(check int) "no plan from a truncated schema" 0
        (Jserve.Plan_cache.size (Jserve.Server.cache srv)))

let test_fault_truncated_header () =
  with_server (fun srv ->
      with_client srv (fun c -> Jserve.Client.send_raw c "VALIDATE abc");
      (* EOF mid-line: dropped silently *)
      await_drained srv;
      with_client srv (fun c ->
          Alcotest.(check string) "alive" "pong"
            (unwrap (Jserve.Client.ping c))))

let test_fault_overlong_header () =
  with_server (fun srv ->
      with_client srv (fun c ->
          match
            Jserve.Client.send_raw c (String.make 4096 'A');
            Jserve.Client.send_raw c "\n";
            Jserve.Client.recv c
          with
          | exception Jserve.Client.Server_gone ->
            (* the drop may land while we are still writing *)
            ()
          | Ok v -> Alcotest.failf "overlong header answered OK %s" v
          | Error _ ->
            (* an ERR before the drop is acceptable too *)
            ());
      await_drained srv;
      with_client srv (fun c ->
          Alcotest.(check string) "alive" "pong"
            (unwrap (Jserve.Client.ping c))))

(* declared length over max-body: ERR answered, connection dropped,
   later connections unaffected *)
let test_fault_oversized_length () =
  with_server ~max_body_bytes:1024 (fun srv ->
      with_client srv (fun c ->
          Jserve.Client.send c (Jserve.Protocol.Schema 1_000_000) ~body:[];
          (match Jserve.Client.recv c with
          | Error m ->
            Alcotest.(check bool) "names the ceiling" true
              (String.length m > 0)
          | Ok v -> Alcotest.failf "oversized length answered %s" v);
          (* the connection is dropped: next read sees EOF *)
          match Jserve.Client.recv c with
          | exception Jserve.Client.Server_gone -> ()
          | _ -> Alcotest.fail "connection survived an undrainable frame");
      await_drained srv;
      with_client srv (fun c ->
          Alcotest.(check string) "alive" "pong"
            (unwrap (Jserve.Client.ping c))))

(* disconnect mid-document while the lexer is mid-value: the worker
   must unwind without leaking the slot *)
let test_fault_mid_document_disconnect () =
  with_server ~jobs:2 (fun srv ->
      with_client srv (fun c ->
          ignore (unwrap (Jserve.Client.put_schema c schema_text)));
      let id = Jserve.Plan_cache.id_of_schema schema_text in
      with_client srv (fun c ->
          Jserve.Client.send_raw c
            (Printf.sprintf "VALIDATE %s 100000\n" id);
          (* stream a prefix of a huge array, then vanish *)
          Jserve.Client.send_raw c {|{"a":1,"tags":["x","x","x|});
      await_drained srv;
      with_client srv (fun c ->
          Alcotest.(check string) "alive" "valid"
            (unwrap (Jserve.Client.validate c ~schema_id:id {|{"a":1}|}))))

(* several requests written back-to-back before any response is read:
   answers come back in order, one per request *)
let test_fault_pipelined_requests () =
  with_server (fun srv ->
      with_client srv (fun c ->
          let schema = schema_text in
          Jserve.Client.send c
            (Jserve.Protocol.Schema (String.length schema))
            ~body:[ schema ];
          let id = Jserve.Plan_cache.id_of_schema schema in
          let docs = [ {|{"a":1}|}; {|{"a":0}|}; {|{"a":9}|}; "{oops" ] in
          List.iter
            (fun doc ->
              Jserve.Client.send c
                (Jserve.Protocol.Validate
                   { schema_id = id; len = String.length doc })
                ~body:[ doc ])
            docs;
          Jserve.Client.send c Jserve.Protocol.Ping ~body:[];
          Alcotest.(check string) "schema ack" id (unwrap (Jserve.Client.recv c));
          Alcotest.(check string) "1st" "valid" (unwrap (Jserve.Client.recv c));
          Alcotest.(check string) "2nd" "INVALID" (unwrap (Jserve.Client.recv c));
          Alcotest.(check string) "3rd" "valid" (unwrap (Jserve.Client.recv c));
          let e = unwrap (Jserve.Client.recv c) in
          Alcotest.(check bool) "4th is an error cell" true
            (String.length e > 6 && String.sub e 0 6 = "error:");
          Alcotest.(check string) "ping last" "pong"
            (unwrap (Jserve.Client.recv c))))

(* a well-behaved but very slow client: the whole request arrives one
   byte at a time, and must still validate *)
let test_fault_slowloris () =
  with_server (fun srv ->
      with_client srv (fun c ->
          let doc = {|{"a":1,"tags":["slow"]}|} in
          let frame =
            Jserve.Protocol.render_request
              (Jserve.Protocol.Validate_inline
                 { schema_len = String.length schema_text;
                   doc_len = String.length doc })
            ^ schema_text ^ doc
          in
          String.iter
            (fun ch -> Jserve.Client.send_raw c (String.make 1 ch))
            frame;
          Alcotest.(check string) "slowloris verdict" "valid"
            (unwrap (Jserve.Client.recv c))))

(* SHUTDOWN drains: a request in flight on another connection finishes
   before the daemon exits *)
let test_shutdown_drains () =
  (* 3 lanes = 2 connection workers: the blocked in-flight request
     must not starve the connection carrying the SHUTDOWN *)
  with_server ~jobs:3 (fun srv ->
      let id =
        with_client srv (fun c ->
            unwrap (Jserve.Client.put_schema c schema_text))
      in
      let slow = Jserve.Client.connect (Jserve.Server.endpoint srv) in
      Fun.protect
        ~finally:(fun () -> Jserve.Client.close slow)
        (fun () ->
          let doc = {|{"a":1}|} in
          Jserve.Client.send_raw slow
            (Printf.sprintf "VALIDATE %s %d\n" id (String.length doc));
          (* body not yet sent: the request is in flight once the
             daemon has read the header — wait for that, or the stop
             boundary may close what still looks like an idle
             connection *)
          let requests () =
            List.assoc "serve.requests" (Jserve.Server.counters srv)
          in
          let rec await n =
            if requests () < 2 && n > 0 then begin
              Unix.sleepf 0.005;
              await (n - 1)
            end
          in
          await 400;
          with_client srv (fun c ->
              Alcotest.(check string) "bye" "bye"
                (unwrap (Jserve.Client.shutdown c)));
          (* daemon is stopping; the in-flight request must still
             complete once its body lands *)
          Jserve.Client.send_raw slow doc;
          Alcotest.(check string) "drained verdict" "valid"
            (unwrap (Jserve.Client.recv slow));
          Jserve.Server.stop srv;
          Alcotest.(check int) "all connections closed" 0
            (Jserve.Server.active_connections srv)))

let test_counters_folded () =
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled false)
    (fun () ->
      Obs.Metrics.reset ();
      with_server (fun srv ->
          with_client srv (fun c ->
              ignore (unwrap (Jserve.Client.ping c));
              let id = unwrap (Jserve.Client.put_schema c schema_text) in
              Alcotest.(check string) "verdict" "valid"
                (unwrap (Jserve.Client.validate c ~schema_id:id {|{"a":1}|})));
          (* live counters before shutdown *)
          Alcotest.(check int) "requests counted" 3 (counter srv "serve.requests");
          Alcotest.(check int) "one connection" 1
            (counter srv "serve.connections");
          Alcotest.(check bool) "bytes counted" true
            (counter srv "serve.bytes_in" > 0));
      (* stop folded the atomics into this domain's registry *)
      let dump = Obs.Metrics.dump_text () in
      let contains needle =
        let nl = String.length needle and hl = String.length dump in
        let rec go i = i + nl <= hl && (String.sub dump i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "serve.requests in dump" true
        (contains "serve.requests"))

let () =
  Alcotest.run "serve"
    [ ( "protocol",
        [ Alcotest.test_case "request/response roundtrip" `Quick
            test_protocol_roundtrip ] );
      ( "plan cache",
        [ Alcotest.test_case "lru + stats + content hash" `Quick
            test_plan_cache_lru ] );
      ( "end-to-end",
        [ Alcotest.test_case "verdict cells" `Quick test_serve_verdicts;
          Alcotest.test_case "cli agreement" `Quick test_serve_cli_agreement;
          Alcotest.test_case "parallel connections" `Quick
            test_serve_parallel_connections;
          Alcotest.test_case "indexq end-to-end" `Quick test_indexq_end_to_end;
          Alcotest.test_case "indexq faults" `Quick test_indexq_faults;
          Alcotest.test_case "counters folded" `Quick test_counters_folded ] );
      ( "faults",
        [ Alcotest.test_case "truncated body" `Quick test_fault_truncated_body;
          Alcotest.test_case "truncated header" `Quick
            test_fault_truncated_header;
          Alcotest.test_case "overlong header" `Quick
            test_fault_overlong_header;
          Alcotest.test_case "oversized declared length" `Quick
            test_fault_oversized_length;
          Alcotest.test_case "mid-document disconnect" `Quick
            test_fault_mid_document_disconnect;
          Alcotest.test_case "pipelined requests" `Quick
            test_fault_pipelined_requests;
          Alcotest.test_case "slowloris" `Quick test_fault_slowloris;
          Alcotest.test_case "shutdown drains in-flight" `Quick
            test_shutdown_drains ] ) ]
