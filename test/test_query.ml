(* Tests for the query front ends: MongoDB-style find and JSONPath. *)

module Value = Jsont.Value

let parse_doc = Jsont.Parser.parse_exn

(* a small people collection, echoing Example 1 of the paper *)
let people =
  List.map parse_doc
    [ {|{"name":"Sue","age":28,"hobbies":["yoga","chess"],"address":{"city":"Santiago"}}|};
      {|{"name":"John","age":32,"hobbies":["fishing","yoga"],"address":{"city":"Lille"}}|};
      {|{"name":"Ana","age":17,"hobbies":[],"address":{"city":"Santiago"}}|};
      {|{"name":"Li","age":45,"orders":[{"total":99},{"total":10}]}|} ]

let names docs =
  List.filter_map (fun d -> Option.map Value.to_string (Value.member "name" d)) docs

let find_names filter_text =
  names (Jquery.Mongo.find (Jquery.Mongo.parse_string_exn filter_text) people)

let check_names label expected filter_text =
  Alcotest.(check (list string)) label expected (find_names filter_text)

let test_example1 () =
  (* db.collection.find({name: {$eq: "Sue"}}, {}) *)
  check_names "find Sue" [ {|"Sue"|} ] {|{"name": {"$eq": "Sue"}}|};
  check_names "implicit eq" [ {|"Sue"|} ] {|{"name": "Sue"}|}

let test_operators () =
  check_names "gt" [ {|"John"|}; {|"Li"|} ] {|{"age": {"$gt": 28}}|};
  check_names "gte" [ {|"Sue"|}; {|"John"|}; {|"Li"|} ] {|{"age": {"$gte": 28}}|};
  check_names "lt" [ {|"Ana"|} ] {|{"age": {"$lt": 28}}|};
  check_names "lte 28" [ {|"Sue"|}; {|"Ana"|} ] {|{"age": {"$lte": 28}}|};
  check_names "ne" [ {|"John"|}; {|"Ana"|}; {|"Li"|} ] {|{"name": {"$ne": "Sue"}}|};
  check_names "exists" [ {|"Li"|} ] {|{"orders": {"$exists": true}}|};
  check_names "not exists" [ {|"Sue"|}; {|"John"|}; {|"Ana"|} ]
    {|{"orders": {"$exists": false}}|};
  check_names "type" [ {|"Li"|} ] {|{"orders": {"$type": "array"}}|};
  check_names "size" [ {|"Sue"|}; {|"John"|} ] {|{"hobbies": {"$size": 2}}|};
  check_names "regex" [ {|"Sue"|}; {|"John"|} ] {|{"name": {"$regex": "o|u"}}|};
  check_names "in" [ {|"Sue"|}; {|"Ana"|} ] {|{"name": {"$in": ["Sue","Ana"]}}|};
  check_names "nin" [ {|"John"|}; {|"Li"|} ] {|{"name": {"$nin": ["Sue","Ana"]}}|};
  check_names "dotted path" [ {|"Sue"|}; {|"Ana"|} ] {|{"address.city": "Santiago"}|};
  check_names "array index path" [ {|"John"|} ] {|{"hobbies.0": "fishing"}|};
  check_names "all" [ {|"Sue"|} ] {|{"hobbies": {"$all": ["yoga", "chess"]}}|};
  check_names "all missing element" [] {|{"hobbies": {"$all": ["yoga", "golf"]}}|};
  check_names "elemMatch" [ {|"Li"|} ]
    {|{"orders": {"$elemMatch": {"total": {"$gt": 50}}}}|};
  check_names "and" [ {|"Sue"|} ]
    {|{"$and": [{"age": {"$gt": 20}}, {"address.city": "Santiago"}]}|};
  check_names "or" [ {|"Sue"|}; {|"Ana"|}; {|"Li"|} ]
    {|{"$or": [{"address.city": "Santiago"}, {"age": {"$gt": 40}}]}|};
  check_names "nor" [ {|"John"|} ]
    {|{"$nor": [{"address.city": "Santiago"}, {"age": {"$gt": 40}}]}|};
  check_names "not" [ {|"Ana"|} ] {|{"age": {"$not": {"$gte": 28}}}|};
  check_names "not includes missing" [ {|"Sue"|}; {|"John"|}; {|"Ana"|} ]
    {|{"orders": {"$not": {"$exists": true}}}|}

let test_parse_errors () =
  List.iter
    (fun s ->
      match Jquery.Mongo.parse_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected filter error on %s" s)
    [ {|{"a": {"$frobnicate": 1}}|};
      {|{"$and": 3}|};
      {|{"a": {"$gt": "high"}}|};
      {|{"a": {"$regex": "("}}|};
      "[1]" ]

let test_to_jnl () =
  (* the equality fragment reaches pure JNL through Theorem 2 *)
  let f = Jquery.Mongo.parse_string_exn {|{"name": "Sue", "address.city": "Santiago"}|} in
  (match Jquery.Mongo.to_jnl f with
  | Error m -> Alcotest.failf "to_jnl failed: %s" m
  | Ok jnl ->
    let selected = List.filter (fun d -> Jlogic.Jnl_eval.satisfies d jnl) people in
    Alcotest.(check (list string)) "JNL agrees with find" [ {|"Sue"|} ] (names selected));
  (* $gt is outside the ~(A) fragment *)
  match Jquery.Mongo.to_jnl (Jquery.Mongo.parse_string_exn {|{"age": {"$gt": 3}}|}) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "$gt should not reach pure JNL"

(* ---- §4.3 operator-semantics audit pins (regressions fail pre-fix) ---- *)

let matches_text ftext dtext =
  Jquery.Mongo.matches (Jquery.Mongo.parse_string_exn ftext) (parse_doc dtext)

let check_match label expected ftext dtext =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s on %s" label ftext dtext)
    expected (matches_text ftext dtext)

let test_lt_zero () =
  (* pre-fix, [$lt 0] clamped its bound to [Max 0] and wrongly matched
     the value 0 — no natural number is below 0 *)
  check_match "lt" false {|{"age": {"$lt": 0}}|} {|{"age":0}|};
  check_match "lt" true {|{"age": {"$lt": 1}}|} {|{"age":0}|};
  check_match "lt" false {|{"age": {"$lt": 1}}|} {|{"age":1}|};
  (* $not flips it back: everything (with or without the field) matches *)
  check_match "not-lt" true {|{"age": {"$not": {"$lt": 0}}}|} {|{"age":0}|};
  check_match "not-lt" true {|{"age": {"$not": {"$lt": 0}}}|} {|{"x":1}|}

let test_all_empty () =
  (* pre-fix, [$all []] degenerated to a bare array-kind test and
     matched every array; Mongo pins it to match nothing *)
  check_match "all-empty" false {|{"hobbies": {"$all": []}}|} {|{"hobbies":[]}|};
  check_match "all-empty" false {|{"hobbies": {"$all": []}}|}
    {|{"hobbies":["yoga"]}|};
  check_match "all-empty" false {|{"hobbies": {"$all": []}}|} {|{"x":1}|}

let test_mixed_type_comparisons () =
  (* numeric operators require a number at the path: a string there —
     even one spelling a number — must not satisfy them, and $not of a
     numeric operator must therefore accept it *)
  List.iter
    (fun op ->
      check_match "numeric op vs string" false
        (Printf.sprintf {|{"age": {"%s": 5}}|} op)
        {|{"age":"28"}|})
    [ "$gt"; "$gte"; "$lt"; "$lte" ];
  check_match "not-gt accepts string" true {|{"age": {"$not": {"$gt": 5}}}|}
    {|{"age":"28"}|};
  (* $eq across kinds is plain structural disagreement *)
  check_match "eq str vs int" false {|{"age": 28}|} {|{"age":"28"}|};
  check_match "eq int vs str" false {|{"age": "28"}|} {|{"age":28}|}

let test_exists_on_indices () =
  (* digit path segments address array positions and object keys alike *)
  check_match "index exists" true {|{"a.1": {"$exists": true}}|} {|{"a":[10,20]}|};
  check_match "index missing" false {|{"a.5": {"$exists": true}}|} {|{"a":[10,20]}|};
  check_match "index missing, negated" true {|{"a.5": {"$exists": false}}|}
    {|{"a":[10,20]}|};
  check_match "digit object key" true {|{"a.1": {"$exists": true}}|}
    {|{"a":{"1":5}}|};
  check_match "nested path miss" true {|{"a.b.c": {"$exists": false}}|}
    {|{"a":1}|};
  check_match "nested path miss eq" false {|{"a.b": "x"}|} {|{"a":1}|}

let test_ne_nin_missing () =
  (* Mongo's $ne / $nin match documents where the field is absent *)
  check_match "ne missing" true {|{"a": {"$ne": 5}}|} {|{"x":1}|};
  check_match "ne present" false {|{"a": {"$ne": 5}}|} {|{"a":5}|};
  check_match "nin missing" true {|{"a": {"$nin": [5]}}|} {|{"x":1}|};
  check_match "nin present" false {|{"a": {"$nin": [5]}}|} {|{"a":5}|};
  (* ... and through dotted paths, the negation must also cover values
     reached by implicit array traversal (failed pre-fix: the
     traversal was missing, so the $ne below wrongly matched) *)
  check_match "ne through array" false {|{"a.b": {"$ne": 5}}|}
    {|{"a":[{"b":5}]}|};
  check_match "ne through array, other value" true {|{"a.b": {"$ne": 5}}|}
    {|{"a":[{"b":6}]}|};
  check_match "nin through array" false {|{"a.b": {"$nin": [5]}}|}
    {|{"a":[{"c":1},{"b":5}]}|}

let test_implicit_array_traversal () =
  (* "a.b": v matches when a is an array of objects (failed pre-fix) *)
  check_match "traversal eq" true {|{"a.b": 5}|} {|{"a":[{"b":5}]}|};
  check_match "traversal eq later element" true {|{"a.b": 5}|}
    {|{"a":[{"c":1},{"b":5}]}|};
  check_match "traversal no hit" false {|{"a.b": 5}|} {|{"a":[{"b":6}]}|};
  (* one array level per segment: arrays of arrays are not searched *)
  check_match "no nested-array traversal" false {|{"a.b": 5}|}
    {|{"a":[[{"b":5}]]}|};
  check_match "two segments, two levels" true {|{"a.b.c": 7}|}
    {|{"a":[{"b":[{"c":7}]}]}|};
  check_match "traversal under operators" true {|{"a.b": {"$gte": 5}}|}
    {|{"a":[{"b":9}]}|};
  check_match "traversal exists" true {|{"a.b": {"$exists": true}}|}
    {|{"a":[{"b":1}]}|};
  (* digit segments keep addressing positions *)
  check_match "index still works" true {|{"a.0": 10}|} {|{"a":[10,20]}|};
  (* ... and traverse like any other segment: an element object with a
     digit key is found (as in Mongo's path resolution) *)
  check_match "digit key inside elements" true {|{"a.0": 5}|}
    {|{"a":[{"0":5}]}|}

let test_in_regex_and_type_codes () =
  (* $in / $nin accept {"$regex": ...} elements (rejected pre-fix:
     the object was treated as a literal and never matched) *)
  check_match "in regex" true {|{"a": {"$in": [{"$regex": "^x"}]}}|}
    {|{"a":"xyz"}|};
  check_match "in regex no match" false {|{"a": {"$in": [{"$regex": "^x"}]}}|}
    {|{"a":"yz"}|};
  check_match "in mixes literals and regexes" true
    {|{"a": {"$in": [5, {"$regex": "ylo"}]}}|} {|{"a":"xylophone"}|};
  check_match "nin regex" false {|{"a": {"$nin": [{"$regex": "ylo"}]}}|}
    {|{"a":"xylophone"}|};
  check_match "nin regex missing field" true
    {|{"a": {"$nin": [{"$regex": "ylo"}]}}|} {|{"x":1}|};
  (* object literals without $regex are plain membership *)
  check_match "object literal in $in" true {|{"a": {"$in": [{"y": 1}]}}|}
    {|{"a":{"y":1}}|};
  (* a $regex element admits no further keys, and no non-string body *)
  List.iter
    (fun s ->
      match Jquery.Mongo.parse_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected filter error on %s" s)
    [ {|{"a": {"$in": [{"$regex": 5}]}}|};
      {|{"a": {"$in": [{"$regex": "x", "y": 1}]}}|} ];
  (* $type numeric codes and aliases (rejected pre-fix) *)
  check_match "type 16 int" true {|{"a": {"$type": 16}}|} {|{"a":5}|};
  check_match "type 16 not string" false {|{"a": {"$type": 16}}|} {|{"a":"5"}|};
  check_match "type 18 long" true {|{"a": {"$type": 18}}|} {|{"a":5}|};
  check_match "type 1 double" true {|{"a": {"$type": 1}}|} {|{"a":5}|};
  check_match "type 2 string" true {|{"a": {"$type": 2}}|} {|{"a":"s"}|};
  check_match "type 3 object" true {|{"a": {"$type": 3}}|} {|{"a":{}}|};
  check_match "type 4 array" true {|{"a": {"$type": 4}}|} {|{"a":[]}|};
  check_match "type alias int" true {|{"a": {"$type": "int"}}|} {|{"a":5}|};
  check_match "type alias long" true {|{"a": {"$type": "long"}}|} {|{"a":5}|};
  check_match "type alias double" true {|{"a": {"$type": "double"}}|} {|{"a":5}|};
  check_match "type alias decimal" true {|{"a": {"$type": "decimal"}}|} {|{"a":5}|};
  match Jquery.Mongo.parse_string {|{"a": {"$type": 99}}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown $type code must be rejected"

let test_translation_differential () =
  (* [matches] must agree with the JSL translation on every document,
     and — where the filter reaches the pure-JNL fragment of Theorem 2
     — with the JNL translation as well *)
  let filters =
    [ {|{"age": {"$lt": 0}}|}; {|{"age": {"$lt": 28}}|};
      {|{"age": {"$gt": 5}}|}; {|{"age": {"$gte": 0}}|};
      {|{"age": {"$lte": 0}}|}; {|{"hobbies": {"$all": []}}|};
      {|{"hobbies": {"$all": ["yoga"]}}|}; {|{"a.1": {"$exists": true}}|};
      {|{"a.5": {"$exists": false}}|}; {|{"a.b.c": {"$exists": false}}|};
      {|{"name": "Sue"}|}; {|{"age": 28}|}; {|{"age": "28"}|};
      {|{"hobbies": {"$size": 2}}|}; {|{"age": {"$not": {"$gt": 5}}}|};
      {|{"name": {"$in": ["Sue", "Ana"]}}|};
      {|{"$or": [{"age": {"$lt": 1}}, {"a.1": {"$exists": true}}]}|};
      (* the §4.3 bugfix sweep: implicit array traversal, $ne/$nin on
         missing and traversed fields, regex $in elements, $type codes *)
      {|{"a.b": 5}|}; {|{"a.b": {"$ne": 5}}|}; {|{"a.b": {"$exists": true}}|};
      {|{"a.b": {"$exists": false}}|}; {|{"a.b.c": 7}|};
      {|{"a.0": 5}|}; {|{"a.0": {"$exists": true}}|};
      {|{"a": {"$ne": 5}}|}; {|{"a": {"$nin": [5, "x"]}}|};
      {|{"a.b": {"$nin": [5]}}|};
      {|{"name": {"$in": [{"$regex": "^S"}, "Li"]}}|};
      {|{"name": {"$nin": [{"$regex": "o|u"}]}}|};
      {|{"a": {"$type": 16}}|}; {|{"a": {"$type": 4}}|};
      {|{"a": {"$type": "int"}}|}; {|{"a": {"$type": 2}}|};
      {|{"a": {"$not": {"$type": 3}}}|};
      {|{"hobbies": {"$all": ["yoga", "chess"]}}|};
      {|{"orders": {"$elemMatch": {"total": {"$gte": 50}}}}|};
      {|{"$and": [{"a.b": {"$gte": 5}}, {"a.b": {"$lte": 9}}]}|};
      {|{"$nor": [{"a.b": 5}, {"age": {"$gte": 18}}]}|} ]
  in
  let docs =
    people
    @ List.map parse_doc
        [ {|{"age":0}|}; {|{"age":"28"}|}; {|{"a":[10,20]}|}; {|{"a":{"1":5}}|};
          {|{"hobbies":[]}|}; {|{"a":1}|}; {|{}|}; {|{"a":{"b":{"c":3}}}|};
          (* array-traversal shapes *)
          {|{"a":[{"b":5}]}|}; {|{"a":[{"c":1},{"b":9}]}|};
          {|{"a":[[{"b":5}]]}|}; {|{"a":[{"b":[{"c":7}]}]}|};
          {|{"a":[{"0":5}]}|}; {|{"a":[]}|}; {|{"a":"xylophone"}|};
          {|{"a":{"b":5}}|}; {|{"a":[5,"x"]}|} ]
  in
  Alcotest.(check bool) "differential covers >= 30 filters" true
    (List.length filters >= 30);
  List.iter
    (fun ftext ->
      let f = Jquery.Mongo.parse_string_exn ftext in
      let jsl = Jquery.Mongo.to_jsl f in
      let jnl =
        match Jquery.Mongo.to_jnl f with Ok jnl -> Some jnl | Error _ -> None
      in
      List.iter
        (fun d ->
          let direct = Jquery.Mongo.matches f d in
          Alcotest.(check bool)
            (Printf.sprintf "JSL agrees: %s on %s" ftext (Value.to_string d))
            direct
            (Jlogic.Jsl.validates d jsl);
          match jnl with
          | None -> ()
          | Some jnl ->
            Alcotest.(check bool)
              (Printf.sprintf "JNL agrees: %s on %s" ftext (Value.to_string d))
              direct
              (Jlogic.Jnl_eval.satisfies d jnl))
        docs)
    filters

let test_projection () =
  let doc = parse_doc {|{"name":"Sue","age":28,"address":{"city":"Santiago","zip":1}}|} in
  let proj s = Jquery.Mongo.parse_projection (parse_doc s) in
  (match proj {|{"name":1,"address.city":1}|} with
  | Ok p ->
    Alcotest.(check string) "include"
      {|{"name":"Sue","address":{"city":"Santiago"}}|}
      (Value.to_string (Jquery.Mongo.project p doc))
  | Error m -> Alcotest.fail m);
  (match proj {|{"age":0,"address.zip":0}|} with
  | Ok p ->
    Alcotest.(check string) "exclude"
      {|{"name":"Sue","address":{"city":"Santiago"}}|}
      (Value.to_string (Jquery.Mongo.project p doc))
  | Error m -> Alcotest.fail m);
  (match proj {|{"a":1,"b":0}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mixed projection must be rejected");
  match proj {|{}|} with
  | Ok p ->
    Alcotest.(check string) "empty projection keeps all"
      (Value.to_string doc)
      (Value.to_string (Jquery.Mongo.project p doc))
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* JSONPath                                                             *)
(* ------------------------------------------------------------------ *)

(* Gössner's classic store document, trimmed to the model *)
let store =
  parse_doc
    {|{ "store": {
        "book": [
          { "category": "reference", "author": "Nigel Rees", "title": "Sayings", "price": 8 },
          { "category": "fiction", "author": "Evelyn Waugh", "title": "Sword", "price": 12 },
          { "category": "fiction", "author": "Herman Melville", "title": "Moby Dick", "price": 9 },
          { "category": "fiction", "author": "J. R. R. Tolkien", "title": "LotR", "price": 22 }
        ],
        "bicycle": { "color": "red", "price": 19 }
      } }|}

let sel path = List.map Value.to_string (Jquery.Jsonpath.select_exn store path)

let test_jsonpath_basics () =
  Alcotest.(check (list string)) "authors"
    [ {|"Nigel Rees"|}; {|"Evelyn Waugh"|}; {|"Herman Melville"|}; {|"J. R. R. Tolkien"|} ]
    (sel "$.store.book[*].author");
  Alcotest.(check (list string)) "first book title" [ {|"Sayings"|} ]
    (sel "$.store.book[0].title");
  Alcotest.(check (list string)) "last book title" [ {|"LotR"|} ]
    (sel "$.store.book[-1].title");
  Alcotest.(check (list string)) "slice" [ {|"Sayings"|}; {|"Sword"|} ]
    (sel "$.store.book[0:2].title");
  Alcotest.(check (list string)) "open slice" [ {|"Moby Dick"|}; {|"LotR"|} ]
    (sel "$.store.book[2:].title");
  Alcotest.(check int) "all prices (recursive descent)" 5
    (List.length (sel "$..price"));
  Alcotest.(check (list string)) "bracket name" [ {|"red"|} ]
    (sel "$.store.bicycle['color']");
  Alcotest.(check int) "wildcard children of store" 2 (List.length (sel "$.store.*"));
  Alcotest.(check (list string)) "union of indices"
    [ {|"Sayings"|}; {|"Moby Dick"|} ]
    (sel "$.store.book[0,2].title");
  Alcotest.(check int) "everything" 1 (List.length (sel "$"))

let test_jsonpath_filter () =
  (* books cheaper than 10: filter with a JNL formula *)
  Alcotest.(check (list string)) "filtered titles"
    [ {|"Sayings"|}; {|"Moby Dick"|} ]
    (sel "$.store.book[*][?(eq(.price, 8) | eq(.price, 9))].title");
  Alcotest.(check (list string)) "filter on category"
    [ {|"Sayings"|} ]
    (sel {|$.store.book[*][?(eq(.category, "reference"))].title|})

let test_jsonpath_errors () =
  List.iter
    (fun p ->
      match Jquery.Jsonpath.parse p with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected jsonpath error on %s" p)
    [ "$."; "$.store["; "$x%"; "$..["; {|$['a\x']|}; {|$['a\uD800x']|};
      {|$['a\uDC00']|}; {|$['a\u12']|}; {|$['unterminated|};
      "$.store.book[?(eq(.a, \"x\")]" ]

(* regression: index literals the machine int cannot hold escaped as
   [Failure _] from the raising [int_of_string]; RFC 9535 pins the
   valid range to I-JSON's ±(2^53-1), outside of which parsing must
   fail with a positioned error *)
let test_jsonpath_index_bounds () =
  List.iter
    (fun p ->
      match Jquery.Jsonpath.parse p with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected out-of-range error on %s" p)
    [ "$[99999999999999999999]"; "$[-99999999999999999999]";
      "$[9007199254740992]"; "$[-9007199254740992]";
      "$[0:99999999999999999999]"; "$[99999999999999999999:]";
      (* a bare '-' with no digits used to crash [Option.get] *)
      "$[-]"; "$[-:2]" ];
  (* the extremes of the valid range still parse *)
  List.iter
    (fun p ->
      match Jquery.Jsonpath.parse p with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "in-range index rejected (%s): %s" p m)
    [ "$[9007199254740991]"; "$[-9007199254740991]"; "$[0:9007199254740991]" ]

(* regression: a digit-run path segment too large for [int] raised
   [Failure] out of the Mongo→JSL translation; it can only name an
   object key, never an array position *)
let test_mongo_numeric_segment_overflow () =
  let f =
    Jquery.Mongo.parse_string_exn {|{"a.99999999999999999999": 5}|}
  in
  let jsl = Jquery.Mongo.to_jsl f (* raised Failure pre-fix *) in
  let doc = parse_doc {|{"a": {"99999999999999999999": 5}}|} in
  Alcotest.(check bool) "oversized digit segment addresses the key" true
    (Jquery.Mongo.matches f doc);
  Alcotest.(check bool) "JSL translation agrees" true
    (Jlogic.Jsl.validates doc jsl);
  let doc2 = parse_doc {|{"a": {"x": 5}}|} in
  Alcotest.(check bool) "no match elsewhere" false
    (Jquery.Mongo.matches f doc2 || Jlogic.Jsl.validates doc2 jsl)

let test_jsonpath_negative_slices () =
  (* RFC 9535: negative slice bounds offset by the array's length *)
  Alcotest.(check (list string)) "[-2:] last two"
    [ {|"Moby Dick"|}; {|"LotR"|} ]
    (sel "$.store.book[-2:].title");
  Alcotest.(check (list string)) "[1:-1] middle"
    [ {|"Sword"|}; {|"Moby Dick"|} ]
    (sel "$.store.book[1:-1].title");
  Alcotest.(check (list string)) "[:-2] all but last two"
    [ {|"Sayings"|}; {|"Sword"|} ]
    (sel "$.store.book[:-2].title");
  Alcotest.(check (list string)) "[-3:-1]"
    [ {|"Sword"|}; {|"Moby Dick"|} ]
    (sel "$.store.book[-3:-1].title");
  (* bound exceeding the length clamps instead of wrapping *)
  Alcotest.(check (list string)) "[-9:2] clamps to [0:2]"
    [ {|"Sayings"|}; {|"Sword"|} ]
    (sel "$.store.book[-9:2].title")

let test_jsonpath_empty_slices () =
  (* statically empty slices are successful empty selections, not
     parse errors *)
  List.iter
    (fun p ->
      match Jquery.Jsonpath.select store p with
      | Ok [] -> ()
      | Ok vs -> Alcotest.failf "%s must select nothing, got %d hits" p (List.length vs)
      | Error m -> Alcotest.failf "%s must parse: %s" p m)
    [ "$.store.book[1:1]"; "$.store.book[2:2]"; "$.store.book[3:1]";
      "$.store.book[:0]"; "$.store.book[-1:-3]"; "$.store.book[0:0]" ]

let test_jsonpath_filter_quoted_paren () =
  (* a ')' inside a quoted string must not close the filter *)
  Alcotest.(check (list string)) "paren in string"
    []
    (sel {|$.store.book[*][?(eq(.category, "refe)rence"))].title|});
  Alcotest.(check (list string)) "paren in string, still matches"
    [ {|"Sayings"|} ]
    (sel {|$.store.book[*][?(eq(.category, "reference") | eq(.title, "x)y"))].title|});
  (* and inside a regex literal: \) is a literal paren, unbalanced *)
  Alcotest.(check (list string)) "paren in regex"
    [ {|"red"|} ]
    (sel {|$.store.bicycle[?(<.~/colo\)?r/>)].color|})

let test_jsonpath_escapes () =
  let doc =
    parse_doc
      {|{"a'b":1,"c\"d":2,"e\\f":3,"g\nh":4,"tab\tx":5,"slash/y":6,"uéz":7}|}
  in
  let one label path expected =
    match Jquery.Jsonpath.select doc path with
    | Ok [ Value.Num n ] -> Alcotest.(check int) label expected n
    | Ok other -> Alcotest.failf "%s: got %d hits" label (List.length other)
    | Error m -> Alcotest.failf "%s: %s" label m
  in
  one "escaped single quote" {|$['a\'b']|} 1;
  one "escaped double quote" {|$["c\"d"]|} 2;
  one "escaped backslash" {|$['e\\f']|} 3;
  one "escaped newline" {|$['g\nh']|} 4;
  one "escaped tab" {|$['tab\tx']|} 5;
  one "escaped slash" {|$['slash\/y']|} 6;
  one "unicode escape" {|$['u\u00e9z']|} 7;
  (* surrogate pair 𝄞 = U+1D11E, UTF-8 f0 9d 84 9e *)
  let clef = parse_doc "{\"\xF0\x9D\x84\x9E\":8}" in
  match Jquery.Jsonpath.select clef {|$['\uD834\uDD1E']|} with
  | Ok [ Value.Num n ] -> Alcotest.(check int) "surrogate pair" 8 n
  | Ok other -> Alcotest.failf "surrogate pair: got %d hits" (List.length other)
  | Error m -> Alcotest.failf "surrogate pair: %s" m

let test_jsonpath_compiles_to_jnl () =
  (* the embedding claim: selection equals JNL path evaluation *)
  let p = Jquery.Jsonpath.parse_exn "$..book[0].author" in
  let frag = Jlogic.Jnl.classify_path p in
  Alcotest.(check bool) "recursive descent uses Star" true frag.Jlogic.Jnl.recursive;
  let tree = Jsont.Tree.of_value store in
  let nodes = Jquery.Jsonpath.select_nodes tree p in
  Alcotest.(check int) "one author" 1 (List.length nodes)


let test_jsonpath_paths () =
  match Jquery.Jsonpath.select_with_paths store "$..price" with
  | Error m -> Alcotest.fail m
  | Ok hits ->
    Alcotest.(check int) "five prices" 5 (List.length hits);
    List.iter
      (fun (ptr, v) ->
        (* the returned pointer resolves back to the returned value *)
        match Jsont.Pointer.get ptr store with
        | Some v' -> Alcotest.(check bool) "pointer resolves" true (Value.equal v v')
        | None -> Alcotest.failf "dangling pointer %s" (Jsont.Pointer.to_string ptr))
      hits;
    let rendered = List.map (fun (p, _) -> Jsont.Pointer.to_string p) hits in
    Alcotest.(check bool) "first path" true
      (List.mem "store.book[0].price" rendered);
    Alcotest.(check bool) "bicycle path" true
      (List.mem "store.bicycle.price" rendered)

let () =
  Alcotest.run "query"
    [ ("mongo",
       [ Alcotest.test_case "Example 1" `Quick test_example1;
         Alcotest.test_case "operators" `Quick test_operators;
         Alcotest.test_case "parse errors" `Quick test_parse_errors;
         Alcotest.test_case "to JNL (Theorem 2)" `Quick test_to_jnl;
         Alcotest.test_case "$lt 0 is unsatisfiable" `Quick test_lt_zero;
         Alcotest.test_case "$all [] matches nothing" `Quick test_all_empty;
         Alcotest.test_case "mixed-type comparisons" `Quick
           test_mixed_type_comparisons;
         Alcotest.test_case "$exists on indices and missing paths" `Quick
           test_exists_on_indices;
         Alcotest.test_case "$ne/$nin on missing and traversed fields" `Quick
           test_ne_nin_missing;
         Alcotest.test_case "implicit array traversal" `Quick
           test_implicit_array_traversal;
         Alcotest.test_case "$in regexes and $type codes" `Quick
           test_in_regex_and_type_codes;
         Alcotest.test_case "numeric segment overflow" `Quick
           test_mongo_numeric_segment_overflow;
         Alcotest.test_case "matches = JSL = JNL translation" `Quick
           test_translation_differential;
         Alcotest.test_case "projection (§6)" `Quick test_projection ]);
      ("jsonpath",
       [ Alcotest.test_case "basics" `Quick test_jsonpath_basics;
         Alcotest.test_case "filters" `Quick test_jsonpath_filter;
         Alcotest.test_case "errors" `Quick test_jsonpath_errors;
         Alcotest.test_case "index bounds (I-JSON)" `Quick
           test_jsonpath_index_bounds;
         Alcotest.test_case "negative slices" `Quick test_jsonpath_negative_slices;
         Alcotest.test_case "empty slices" `Quick test_jsonpath_empty_slices;
         Alcotest.test_case "quoted parens in filters" `Quick
           test_jsonpath_filter_quoted_paren;
         Alcotest.test_case "name escapes" `Quick test_jsonpath_escapes;
         Alcotest.test_case "compiles to JNL" `Quick test_jsonpath_compiles_to_jnl;
         Alcotest.test_case "result paths" `Quick test_jsonpath_paths ]) ]
