(* Tests for JNL: syntax, concrete syntax, evaluation (Propositions 1
   and 3 semantics), and the Proposition 4 counter-machine encoding. *)

open Jlogic
module Value = Jsont.Value
module Tree = Jsont.Tree

let parse_doc = Jsont.Parser.parse_exn

let figure1 =
  parse_doc
    {|{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}|}

let ctx_of v = Jnl_eval.context (Tree.of_value v)

let holds_root v f = Jnl_eval.satisfies v f

(* ------------------------------------------------------------------ *)
(* Syntax                                                               *)
(* ------------------------------------------------------------------ *)

let test_classify () =
  let det = Jnl.Exists (Jnl.Seq (Jnl.Key "a", Jnl.Idx 1)) in
  let f = Jnl.classify det in
  Alcotest.(check bool) "det" true f.Jnl.deterministic;
  Alcotest.(check bool) "not rec" false f.Jnl.recursive;
  let nondet = Jnl.Exists (Jnl.Keys Rexp.Syntax.all) in
  Alcotest.(check bool) "nondet" false (Jnl.classify nondet).Jnl.deterministic;
  let recursive = Jnl.Exists (Jnl.Star (Jnl.Key "a")) in
  let fr = Jnl.classify recursive in
  Alcotest.(check bool) "rec" true fr.Jnl.recursive;
  Alcotest.(check bool) "rec implies nondet class" false fr.Jnl.deterministic;
  let eqp = Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "b") in
  Alcotest.(check bool) "eq_paths" true (Jnl.classify eqp).Jnl.uses_eq_paths;
  let alt = Jnl.Exists (Jnl.Alt (Jnl.Key "a", Jnl.Key "b")) in
  Alcotest.(check bool) "alt is nondet" false (Jnl.classify alt).Jnl.deterministic;
  Alcotest.(check bool) "negation flag" true
    (Jnl.classify (Jnl.Not Jnl.True)).Jnl.uses_negation

let test_parser_roundtrip () =
  let cases =
    [ "<.name.first>";
      "eq(.age, 32)";
      "eq(.name.first, \"John\")";
      "true";
      "false";
      "!<.x>";
      "<.a> & <.b> | <.c>";
      "<.hobbies[1]>";
      "<.hobbies[-1]>";
      "<.hobbies[0:*]>";
      "<.items[1:3]>";
      "<.~/a|b/>";
      "<(.a)*.b>";
      "<?(eq(eps, 5))>";
      "eq(.a, .b.c)";
      "eq(.a, {\"x\":[1,2]})";
      "<.a|.b>" ]
  in
  List.iter
    (fun s ->
      match Jnl.parse s with
      | Error m -> Alcotest.failf "parse %S failed: %s" s m
      | Ok f -> (
        let printed = Jnl.to_string f in
        match Jnl.parse printed with
        | Error m -> Alcotest.failf "reparse of %S (from %S) failed: %s" printed s m
        | Ok f' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %S -> %S" s printed)
            true (Jnl.equal f f')))
    cases

let test_parser_errors () =
  List.iter
    (fun s ->
      match Jnl.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" s)
    [ ""; "<"; "<.a"; "eq(.a)"; "<.a>>"; "!"; "<.a> &"; "eq(,1)";
      (* regression: oversized integers escaped as Failure, not Error *)
      "<.a[99999999999999999999]>"; "<.a[0:99999999999999999999]>" ]

(* ------------------------------------------------------------------ *)
(* Evaluation on the Figure 1 document                                  *)
(* ------------------------------------------------------------------ *)

let f str = Jnl.parse_exn str

let test_eval_basics () =
  let t = [ (true, "<.name>"); (true, "<.name.first>"); (false, "<.name.middle>");
            (true, "eq(.name.first, \"John\")"); (false, "eq(.name.first, \"Jane\")");
            (true, "eq(.age, 32)"); (false, "eq(.age, 33)");
            (true, "<.hobbies[0]>"); (true, "<.hobbies[1]>"); (false, "<.hobbies[2]>");
            (true, "eq(.hobbies[1], \"yoga\")");
            (true, "eq(.hobbies[-1], \"yoga\")");
            (true, "eq(.hobbies[-2], \"fishing\")");
            (false, "<.hobbies[-3]>");
            (true, "<.name> & <.age>"); (false, "<.name> & <.xyz>");
            (true, "<.xyz> | <.age>");
            (true, "!<.xyz>"); (false, "!<.age>");
            (true, "<.~/name|age/>");
            (true, "<.hobbies[0:*]?(eq(eps,\"yoga\"))>");
            (false, "<.hobbies[0:*]?(eq(eps,\"chess\"))>");
            (true, "eq(.name, {\"first\":\"John\",\"last\":\"Doe\"})");
            (true, "eq(.name, {\"last\":\"Doe\",\"first\":\"John\"})") ]
  in
  List.iter
    (fun (expected, s) ->
      Alcotest.(check bool) s expected (holds_root figure1 (f s)))
    t

let test_eval_eq_paths () =
  let doc = parse_doc {|{"a":{"v":[1,2]},"b":{"v":[1,2]},"c":{"v":[2,1]}}|} in
  Alcotest.(check bool) "a = b" true
    (holds_root doc (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "b")));
  Alcotest.(check bool) "a <> c" false
    (holds_root doc (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "c")));
  Alcotest.(check bool) "a = a" true
    (holds_root doc (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "a")));
  (* nondeterministic: any key equal to any other *)
  let any2 =
    Jnl.Eq_paths
      ( Jnl.Seq (Jnl.Keys Rexp.Syntax.all, Jnl.Key "v"),
        Jnl.Seq (Jnl.Keys (Rexp.Syntax.literal "c"), Jnl.Key "v") )
  in
  Alcotest.(check bool) "exists equal pair" true (holds_root doc any2)

let test_eval_star () =
  let doc = parse_doc {|{"next":{"next":{"next":{"stop":1}}}}|} in
  let reach_stop = Jnl.Exists (Jnl.Seq (Jnl.Star (Jnl.Key "next"), Jnl.Key "stop")) in
  Alcotest.(check bool) "star reaches" true (holds_root doc reach_stop);
  let reach_wrong = Jnl.Exists (Jnl.Seq (Jnl.Star (Jnl.Key "next"), Jnl.Key "halt")) in
  Alcotest.(check bool) "star fails" false (holds_root doc reach_wrong);
  (* star counts ε: ⟦(.next)*⟧ includes the node itself *)
  let ctx = ctx_of doc in
  let succs = Jnl_eval.succs ctx (Jnl.Star (Jnl.Key "next")) Tree.root in
  Alcotest.(check int) "star successors" 4 (List.length succs)

let test_eval_sets () =
  (* eval returns exactly the satisfying nodes *)
  let doc = parse_doc {|{"a":{"x":1},"b":{"x":2},"c":3}|} in
  let ctx = ctx_of doc in
  let set = Jnl_eval.eval ctx (Jnl.Exists (Jnl.Key "x")) in
  (* nodes with an x-child: the a and b objects *)
  Alcotest.(check int) "two nodes have x" 2 (Bitset.cardinal set);
  let tree = Jnl_eval.tree ctx in
  Bitset.iter
    (fun n ->
      Alcotest.(check bool) "has x child" true (Tree.lookup tree n "x" <> None))
    set

let test_eval_pairs () =
  let doc = parse_doc {|{"a":{"b":1}}|} in
  let ctx = ctx_of doc in
  let pairs = Jnl_eval.eval_pairs ctx (Jnl.Seq (Jnl.Key "a", Jnl.Key "b")) in
  Alcotest.(check int) "one pair" 1 (List.length pairs);
  let n, m = List.hd pairs in
  Alcotest.(check bool) "from root" true (n = Tree.root);
  Alcotest.(check (option int)) "to the 1" (Some 1)
    (Tree.int_value (Jnl_eval.tree ctx) m)

let test_select () =
  let vs = Jnl_eval.select figure1 (Jnl.parse_path_exn ".hobbies[0:*]") in
  Alcotest.(check (list string)) "select hobbies"
    [ "\"fishing\""; "\"yoga\"" ]
    (List.map Value.to_string vs)

(* the paper's observation for Proposition 2: X_a[X_1] ∧ X_a[X_b] is
   unsatisfiable because the value under a cannot be both array and
   object; check the evaluation side of that *)
let test_type_disjointness () =
  let phi =
    Jnl.And
      ( Jnl.Exists (Jnl.Seq (Jnl.Key "a", Jnl.Test (Jnl.Exists (Jnl.Idx 1)))),
        Jnl.Exists (Jnl.Seq (Jnl.Key "a", Jnl.Test (Jnl.Exists (Jnl.Key "b")))) )
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) s false (holds_root (parse_doc s) phi))
    [ {|{"a":[1,2]}|}; {|{"a":{"b":1}}|}; {|{"a":5}|} ]

(* ------------------------------------------------------------------ *)
(* Agreement properties between the two evaluators                      *)
(* ------------------------------------------------------------------ *)

let gen_pair nondet =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 60 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = nondet;
        allow_star = nondet;
        allow_eq_paths = nondet;
        size = 10 }
    in
    let formula = Jworkload.Gen_formula.jnl rng cfg in
    (doc, formula)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jnl.to_string f)
    gen

let prop_check_at_agrees_with_eval nondet name =
  QCheck.Test.make ~name ~count:300 (gen_pair nondet) (fun (doc, formula) ->
      let ctx = ctx_of doc in
      let set = Jnl_eval.eval ctx formula in
      Seq.for_all
        (fun n -> Bitset.mem set n = Jnl_eval.check_at ctx n formula)
        (Tree.nodes (Jnl_eval.tree ctx)))

let prop_not_not =
  QCheck.Test.make ~name:"double negation" ~count:200 (gen_pair true)
    (fun (doc, formula) ->
      holds_root doc formula = holds_root doc (Jnl.Not (Jnl.Not formula)))

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan" ~count:200 (gen_pair true)
    (fun (doc, formula) ->
      let g = Jnl.Exists (Jnl.Key "id") in
      holds_root doc (Jnl.Not (Jnl.And (formula, g)))
      = holds_root doc (Jnl.Or (Jnl.Not formula, Jnl.Not g)))

let prop_star_unfold =
  QCheck.Test.make ~name:"⟦α*⟧ = ⟦ε ∪ α∘α*⟧" ~count:100 (gen_pair true)
    (fun (doc, _) ->
      let alpha = Jnl.Key "next" in
      let ctx = ctx_of doc in
      let lhs = Jnl_eval.eval ctx (Jnl.Exists (Jnl.Seq (Jnl.Star alpha, Jnl.Key "id"))) in
      let rhs =
        Jnl_eval.eval ctx
          (Jnl.Or
             ( Jnl.Exists (Jnl.Key "id"),
               Jnl.Exists (Jnl.Seq (alpha, Jnl.Seq (Jnl.Star alpha, Jnl.Key "id"))) ))
      in
      Bitset.equal lhs rhs)

let prop_eps_neutral =
  QCheck.Test.make ~name:"ε neutral for composition" ~count:100 (gen_pair true)
    (fun (doc, formula) ->
      match formula with
      | Jnl.Exists p ->
        holds_root doc (Jnl.Exists (Jnl.Seq (Jnl.Self, p)))
        = holds_root doc (Jnl.Exists p)
      | _ -> true)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing: indexed vs sweep pre-image strategies, and     *)
(* set-at-a-time vs nodal engines, must agree on every observable.      *)
(* ------------------------------------------------------------------ *)

module Prng = Jworkload.Prng

(* A path generator biased toward the step shapes the label index
   specializes — [Idx]/[Range] with bounds in [-5,5] (including
   out-of-range and statically empty ones), [Key] hits and misses,
   [Keys] with literal and universal expressions — under the usual
   connectives [Seq]/[Alt]/[Test]/[Star]. *)
let fuzz_keys = Jworkload.Gen_formula.default.Jworkload.Gen_formula.keys

let rec fuzz_path rng depth =
  let bound () = Prng.in_range rng (-5) 5 in
  let leaf () =
    match Prng.int rng 6 with
    | 0 -> Jnl.Self
    | 1 -> Jnl.Key (Prng.choose rng ("missing" :: fuzz_keys))
    | 2 -> Jnl.Idx (bound ())
    | 3 ->
      let j = if Prng.bool rng then None else Some (bound ()) in
      Jnl.Range (bound (), j)
    | _ ->
      Jnl.Keys
        (if Prng.int rng 4 = 0 then Rexp.Syntax.all
         else Rexp.Syntax.literal (Prng.choose rng fuzz_keys))
  in
  if depth = 0 then leaf ()
  else
    match Prng.int rng 8 with
    | 0 | 1 -> Jnl.Seq (fuzz_path rng (depth - 1), fuzz_path rng (depth - 1))
    | 2 -> Jnl.Alt (fuzz_path rng (depth - 1), fuzz_path rng (depth - 1))
    | 3 -> Jnl.Test (Jnl.Exists (fuzz_path rng (depth - 1)))
    | 4 -> Jnl.Star (fuzz_path rng (depth - 1))
    | _ -> leaf ()

let test_differential_fuzz () =
  let cases = 1000 in
  for case = 0 to cases - 1 do
    let rng = Prng.create (0x5EED0 + case) in
    let doc = Jworkload.Gen_json.sized rng 40 in
    let tree = Tree.of_value doc in
    let p = fuzz_path rng 2 in
    let phi = Jnl.Exists p in
    let fail_case fmt =
      Printf.ksprintf
        (fun what ->
          Alcotest.failf "case %d: %s\n  path: %s\n  doc: %s" case what
            (Jnl.to_string (Jnl.Exists p))
            (Value.to_string doc))
        fmt
    in
    let indexed = Jnl_eval.context ~use_index:true tree in
    let sweep = Jnl_eval.context ~use_index:false tree in
    let set_i = Jnl_eval.eval indexed phi in
    let set_s = Jnl_eval.eval sweep phi in
    if not (Bitset.equal set_i set_s) then
      fail_case "indexed and sweep eval sets differ";
    let pairs_i = Jnl_eval.eval_pairs indexed p in
    if pairs_i <> Jnl_eval.eval_pairs sweep p then
      fail_case "indexed and sweep eval_pairs differ";
    Seq.iter
      (fun n ->
        let in_set = Bitset.mem set_i n in
        if Jnl_eval.check_at indexed n phi <> in_set then
          fail_case "nodal check_at disagrees with eval at node %d" n;
        if Jnl_eval.check_at sweep n phi <> in_set then
          fail_case "sweep check_at disagrees with eval at node %d" n;
        let succs_i = Jnl_eval.succs indexed p n in
        if succs_i <> Jnl_eval.succs sweep p n then
          fail_case "succs differ at node %d" n;
        if in_set <> (succs_i <> []) then
          fail_case "succs and eval membership disagree at node %d" n;
        let target = Bitset.create (Tree.node_count tree) in
        Bitset.add target n;
        if
          not
            (Bitset.equal
               (Jnl_eval.pre indexed p target)
               (Jnl_eval.pre sweep p target))
        then fail_case "pre on singleton {%d} differs" n)
      (Tree.nodes tree);
    (* the nodal relation must match the pair enumeration *)
    List.iter
      (fun (n, m) ->
        if not (List.mem m (Jnl_eval.succs indexed p n)) then
          fail_case "eval_pairs contains (%d,%d) missing from succs" n m)
      pairs_i
  done

(* ------------------------------------------------------------------ *)
(* Counter machines (Proposition 4, forward direction)                  *)
(* ------------------------------------------------------------------ *)

(* increment c0 twice, then loop decrementing it to zero, then halt *)
let cm_example =
  { Hardness.states =
      [ ("q0", Hardness.Incr (0, "q1"));
        ("q1", Hardness.Incr (0, "q2"));
        ("q2", Hardness.If_zero (0, "qf", "q3"));
        ("q3", Hardness.Decr (0, "q2"));
        ("qf", Hardness.Halt) ];
    start = "q0";
    final = "qf" }

let test_counter_machine () =
  match Hardness.cm_run cm_example ~max_steps:100 with
  | None -> Alcotest.fail "machine should halt"
  | Some configs ->
    Alcotest.(check bool) "run length" true (List.length configs >= 5);
    let doc = Hardness.cm_run_doc configs in
    let phi = Hardness.cm_to_jnl cm_example in
    Alcotest.(check bool) "encoded run satisfies the formula" true
      (holds_root doc phi);
    (* tamper: final state renamed *)
    let tampered =
      Hardness.cm_run_doc
        (List.map
           (fun (q, a, b) -> ((if q = "qf" then "q9" else q), a, b))
           configs)
    in
    Alcotest.(check bool) "tampered run fails" false (holds_root tampered phi);
    (* tamper: a counter value corrupted mid-run *)
    let corrupt =
      Hardness.cm_run_doc
        (List.mapi (fun i (q, a, b) -> (q, (if i = 1 then a + 1 else a), b)) configs)
    in
    Alcotest.(check bool) "corrupt counters fail" false (holds_root corrupt phi)

let test_machine_that_never_halts () =
  let loop =
    { Hardness.states = [ ("q0", Hardness.Incr (0, "q0")); ("qf", Hardness.Halt) ];
      start = "q0";
      final = "qf" }
  in
  Alcotest.(check bool) "no run found" true
    (Hardness.cm_run loop ~max_steps:200 = None)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_check_at_agrees_with_eval false "check_at = eval (deterministic)";
      prop_check_at_agrees_with_eval true "check_at = eval (full logic)";
      prop_not_not;
      prop_de_morgan;
      prop_star_unfold;
      prop_eps_neutral ]

let () =
  Alcotest.run "jnl"
    [ ("syntax",
       [ Alcotest.test_case "classify" `Quick test_classify;
         Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
         Alcotest.test_case "parser errors" `Quick test_parser_errors ]);
      ("evaluation",
       [ Alcotest.test_case "basics on Figure 1" `Quick test_eval_basics;
         Alcotest.test_case "EQ(α,β)" `Quick test_eval_eq_paths;
         Alcotest.test_case "star" `Quick test_eval_star;
         Alcotest.test_case "satisfaction sets" `Quick test_eval_sets;
         Alcotest.test_case "binary relation" `Quick test_eval_pairs;
         Alcotest.test_case "select" `Quick test_select;
         Alcotest.test_case "type disjointness" `Quick test_type_disjointness ]);
      ("differential",
       [ Alcotest.test_case "indexed = sweep = nodal (1000 cases)" `Quick
           test_differential_fuzz ]);
      ("counter machines",
       [ Alcotest.test_case "accepting run encodes" `Quick test_counter_machine;
         Alcotest.test_case "non-halting machine" `Quick test_machine_that_never_halts ]);
      ("properties", qcheck_tests) ]
