(* Differential suite for the compiled validation plans: the compiled
   schema executor (over values and over trees) against the structural
   interpreter, and the compiled JSL plan against set-at-a-time [eval] —
   on the Table 1 keyword cases, the property-heavy catalog, random
   [gen_formula]-derived schemas, the $ref-sharing family, and under
   fuel/depth budgets. *)

module Value = Jsont.Value
module Tree = Jsont.Tree
module Jsl = Jlogic.Jsl
module Prng = Jworkload.Prng
module Catalog = Jworkload.Catalog
module Validate = Jschema.Validate

let parse_doc = Jsont.Parser.parse_exn ~mode:`Lenient
let parse_schema = Jschema.Parse.of_string_exn

(* every engine we have for the schema-validation relation *)
let verdicts schema doc =
  let plan = Validate.Plan.compile schema in
  let interpreted = Validate.validates schema doc in
  let prepared = Validate.prepare schema doc in
  let compiled = Validate.Plan.run plan doc in
  let on_tree = Validate.Plan.run_tree plan (Tree.of_value doc) in
  let from_string =
    Validate.Plan.run_tree plan (Tree.of_string_exn (Value.to_string doc))
  in
  (interpreted, [ prepared; compiled; on_tree; from_string ])

let check_agree ~what schema doc expected =
  let interpreted, rest = verdicts schema doc in
  (match expected with
  | Some e ->
    if interpreted <> e then
      Alcotest.failf "%s: interpreter says %b, expected %b" what interpreted e
  | None -> ());
  List.iteri
    (fun i v ->
      if v <> interpreted then
        Alcotest.failf "%s: engine %d says %b, interpreter %b" what i v
          interpreted)
    rest

(* ---- Table 1 keyword cases (incl. the JSL translation) ------------------- *)

let test_keyword_cases () =
  List.iter
    (fun (name, schema_text, docs) ->
      let schema = parse_schema schema_text in
      let jsl = Jschema.To_jsl.document schema in
      List.iter
        (fun (doc_text, expected) ->
          let doc = parse_doc doc_text in
          check_agree
            ~what:(Printf.sprintf "%s on %s" name doc_text)
            schema doc (Some expected);
          let via_jsl = Jlogic.Jsl_rec.validates doc jsl in
          if via_jsl <> expected then
            Alcotest.failf "%s on %s: via JSL %b, expected %b" name doc_text
              via_jsl expected)
        docs)
    Catalog.keyword_cases

(* ---- the property-heavy catalog ------------------------------------------ *)

let test_catalog_differential () =
  let schema = parse_schema Catalog.catalog_schema in
  let plan = Validate.Plan.compile schema in
  let check = Validate.prepare schema in
  let rng = Prng.create 0xCA7A106 in
  let seen_true = ref false and seen_false = ref false in
  for case = 0 to 299 do
    let doc = Catalog.catalog_doc rng in
    let interpreted = check doc in
    if interpreted then seen_true := true else seen_false := true;
    let compiled = Validate.Plan.run plan doc in
    let on_tree =
      Validate.Plan.run_tree plan (Tree.of_string_exn (Value.to_string doc))
    in
    if compiled <> interpreted || on_tree <> interpreted then
      Alcotest.failf "catalog case %d: %b / %b / %b on %s" case interpreted
        compiled on_tree (Value.to_string doc)
  done;
  Alcotest.(check bool) "both verdicts exercised" true (!seen_true && !seen_false)

(* ---- random schemas from random JSL formulas ----------------------------- *)

let test_fuzz_differential () =
  let cfg =
    { Jworkload.Gen_formula.default with
      size = 18;
      allow_nondet = true;
      allow_negation = true }
  in
  for case = 0 to 999 do
    let rng = Prng.create (0xC0DE + case) in
    let f = Jworkload.Gen_formula.jsl rng cfg in
    let schema = Jschema.Schema.plain (Jschema.Of_jsl.schema f) in
    let doc = Jworkload.Gen_json.sized rng 40 in
    (match Jschema.Schema.well_formed schema with
    | Error m -> Alcotest.failf "case %d: generated schema ill-formed: %s" case m
    | Ok () -> ());
    check_agree
      ~what:(Printf.sprintf "fuzz case %d (doc %s)" case (Value.to_string doc))
      schema doc None;
    (* the JSL plan agrees with set-at-a-time eval on the same formula *)
    let tree = Tree.of_value doc in
    let ctx = Jsl.context tree in
    let sat = Jsl.eval ctx f in
    let ctx' = Jsl.context tree in
    let sat' = Jsl.eval_plan ctx' (Jsl.compile f) in
    if not (Jlogic.Bitset.equal sat sat') then
      Alcotest.failf "case %d: eval and eval_plan sets differ for %s" case
        (Jsl.to_string f)
  done

(* ---- $ref sharing and reference cycles ----------------------------------- *)

let test_ref_sharing () =
  let schema = parse_schema (Catalog.ref_sharing_schema 8) in
  check_agree ~what:"ref-sharing k=8" schema Catalog.ref_sharing_doc
    (Some false);
  (* the compiled plan interns each definition once: node count is
     linear in k, not exponential *)
  let plan = Validate.Plan.compile schema in
  Alcotest.(check bool)
    "plan is linear in k" true
    (Validate.Plan.node_count plan <= 3 * 8 + 5)

let test_ref_cycle_regression () =
  (* a modal (well-formed) $ref cycle: arbitrarily nested objects of
     objects; compile must terminate and agree with the interpreter *)
  let schema =
    parse_schema
      {|{"definitions":{"t":{"type":"object",
          "additionalProperties":{"$ref":"#/definitions/t"}}},
         "$ref":"#/definitions/t"}|}
  in
  List.iter
    (fun (text, expected) ->
      check_agree ~what:("cyclic $ref on " ^ text) schema (parse_doc text)
        (Some expected))
    [ ("{}", true);
      ({|{"a":{},"b":{"c":{"d":{}}}}|}, true);
      ({|{"a":{"b":3}}|}, false);
      ("[]", false) ];
  (* linked list through properties *)
  let list_schema =
    parse_schema
      {|{"definitions":{"cell":{"anyOf":[
           {"enum":["nil"]},
           {"type":"object","required":["head","tail"],
            "properties":{"head":{"type":"number"},
                          "tail":{"$ref":"#/definitions/cell"}}}]}},
         "$ref":"#/definitions/cell"}|}
  in
  List.iter
    (fun (text, expected) ->
      check_agree ~what:("list cell on " ^ text) list_schema (parse_doc text)
        (Some expected))
    [ ({|"nil"|}, true);
      ({|{"head":1,"tail":{"head":2,"tail":"nil"}}|}, true);
      ({|{"head":1,"tail":{"head":"x","tail":"nil"}}|}, false) ]

let test_memo_hits () =
  (* sharing actually goes through the memo table *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let schema = parse_schema (Catalog.ref_sharing_schema 10) in
  let plan = Validate.Plan.compile schema in
  let _ = Validate.Plan.run plan Catalog.ref_sharing_doc in
  let hits = Obs.Metrics.counter_value "validate.memo.hit" in
  Obs.Metrics.set_enabled false;
  Alcotest.(check bool) "memo hits recorded" true (hits >= 10)

(* ---- well-formedness satellites ------------------------------------------ *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_well_formed () =
  let reject text expect_frag =
    match Jschema.Parse.of_string text with
    | Error m ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %s (got %S)" text expect_frag m)
        true
        (contains_substring m expect_frag)
    | Ok _ -> Alcotest.failf "%s accepted" text
  in
  reject {|{"multipleOf":0}|} "multipleOf 0";
  reject {|{"properties":{"a":{"not":{"multipleOf":0}}}}|} "multipleOf 0";
  reject
    {|{"definitions":{"d":{"items":[{"multipleOf":0}]}},"$ref":"#/definitions/d"}|}
    "multipleOf 0";
  (* still fine: multipleOf 0 must not reject other multiples *)
  let s = parse_schema {|{"multipleOf":3}|} in
  Alcotest.(check bool) "multipleOf 3 ok" true (Validate.validates s (Value.Num 9));
  (* duplicate definitions are reported by name *)
  let dup =
    { Jschema.Schema.definitions = [ ("d", []); ("d", []) ]; root = [] }
  in
  (match Jschema.Schema.well_formed dup with
  | Error m ->
    Alcotest.(check bool) "dup mentions name" true (contains_substring m "\"d\"")
  | Ok () -> Alcotest.fail "duplicate definitions accepted");
  (* compile rejects ill-formed documents like the interpreter *)
  let zero = Jschema.Schema.plain [ Jschema.Schema.C_multiple_of 0 ] in
  (match Validate.Plan.compile zero with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Plan.compile accepted multipleOf 0");
  match Validate.validates zero (Value.Num 1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "validates accepted multipleOf 0"

(* ---- budget agreement ---------------------------------------------------- *)

let test_budget_agreement () =
  let schema = parse_schema Catalog.catalog_schema in
  let plan = Validate.Plan.compile schema in
  let check = Validate.prepare schema in
  let rng = Prng.create 0xB06E7 in
  for case = 0 to 49 do
    let doc = Catalog.catalog_doc rng in
    for fuel = 1 to 40 do
      let run_engine f =
        match f (Obs.Budget.create ~fuel ()) with
        | b -> Some b
        | exception Obs.Budget.Exhausted _ -> None
      in
      let interp = run_engine (fun budget -> check ~budget doc) in
      let comp = run_engine (fun budget -> Validate.Plan.run ~budget plan doc) in
      match (interp, comp) with
      | Some a, Some b when a <> b ->
        Alcotest.failf "case %d fuel %d: verdicts differ (%b vs %b)" case fuel
          a b
      | _ -> ()
    done;
    (* with ample fuel both complete and agree *)
    let budget = Obs.Budget.create ~fuel:1_000_000 () in
    let a = check ~budget doc in
    let budget = Obs.Budget.create ~fuel:1_000_000 () in
    let b = Validate.Plan.run ~budget plan doc in
    if a <> b then Alcotest.failf "case %d: ample-fuel verdicts differ" case
  done;
  (* a depth ceiling exhausts every engine on a deep document, through
     a schema that follows the document's spine *)
  let deep = Jworkload.Gen_json.deep_chain 200 in
  let hits_ceiling f =
    match f (Obs.Budget.create ~max_depth:50 ()) with
    | (_ : bool) -> false
    | exception Obs.Budget.Exhausted Obs.Budget.Depth -> true
  in
  let spine =
    parse_schema
      {|{"definitions":{"t":{"additionalProperties":{"$ref":"#/definitions/t"},
          "items":[{"$ref":"#/definitions/t"}],
          "additionalItems":{"$ref":"#/definitions/t"}}},
         "$ref":"#/definitions/t"}|}
  in
  let spine_plan = Validate.Plan.compile spine in
  Alcotest.(check bool)
    "interpreter hits depth ceiling" true
    (hits_ceiling (fun budget -> Validate.validates ~budget spine deep));
  Alcotest.(check bool)
    "compiled hits depth ceiling" true
    (hits_ceiling (fun budget -> Validate.Plan.run ~budget spine_plan deep))

(* exact fuel parity for the JSL plan: compile+eval_plan draws the same
   fuel as eval (both burn node_count per distinct subformula) *)
let test_jsl_fuel_parity () =
  let cfg =
    { Jworkload.Gen_formula.default with size = 14; allow_nondet = true }
  in
  for case = 0 to 99 do
    let rng = Prng.create (0xF0E1 + case) in
    let f = Jworkload.Gen_formula.jsl rng cfg in
    let doc = Jworkload.Gen_json.sized rng 25 in
    let tree = Tree.of_value doc in
    let spend eval_f =
      (* smallest fuel that completes, by doubling then bisection *)
      let completes fuel =
        match eval_f (Obs.Budget.create ~fuel ()) with
        | (_ : Jlogic.Bitset.t) -> true
        | exception Obs.Budget.Exhausted Obs.Budget.Fuel -> false
      in
      let rec upper f = if completes f then f else upper (2 * f) in
      let hi = upper 1 in
      let rec bisect lo hi =
        if hi - lo <= 1 then hi
        else
          let mid = (lo + hi) / 2 in
          if completes mid then bisect lo mid else bisect mid hi
      in
      if completes 1 then 1 else bisect 1 hi
    in
    let interp_spend =
      spend (fun budget -> Jsl.eval (Jsl.context ~budget tree) f)
    in
    let plan = Jsl.compile f in
    let plan_spend =
      spend (fun budget -> Jsl.eval_plan (Jsl.context ~budget tree) plan)
    in
    if interp_spend <> plan_spend then
      Alcotest.failf "case %d: fuel parity broken (%d vs %d) for %s" case
        interp_spend plan_spend (Jsl.to_string f)
  done

let () =
  Alcotest.run "compile"
    [ ("keyword-cases", [ Alcotest.test_case "table1" `Quick test_keyword_cases ]);
      ("catalog",
       [ Alcotest.test_case "catalog differential" `Quick
           test_catalog_differential ]);
      ("differential",
       [ Alcotest.test_case "fuzz schema+jsl" `Quick test_fuzz_differential ]);
      ("ref-sharing",
       [ Alcotest.test_case "asymptotic sharing" `Quick test_ref_sharing;
         Alcotest.test_case "cyclic $ref regression" `Quick
           test_ref_cycle_regression;
         Alcotest.test_case "memo hits" `Quick test_memo_hits ]);
      ("well-formed",
       [ Alcotest.test_case "multipleOf 0 / dup defs" `Quick test_well_formed ]);
      ("budget",
       [ Alcotest.test_case "fuel/depth agreement" `Quick test_budget_agreement;
         Alcotest.test_case "jsl fuel parity" `Quick test_jsl_fuel_parity ]) ]
