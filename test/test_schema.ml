(* Tests for the JSON Schema library: parsing, printing, and the
   validator against the paper's §5.1 examples (one per Table 1
   keyword). *)

module Value = Jsont.Value

let parse_doc = Jsont.Parser.parse_exn
let schema = Jschema.Parse.of_string_exn

let ok s d =
  Alcotest.(check bool)
    (Printf.sprintf "%s validates" d)
    true
    (Jschema.Validate.validates s (Jsont.Parser.parse_exn ~mode:`Lenient d))

let no s d =
  Alcotest.(check bool)
    (Printf.sprintf "%s rejected" d)
    false
    (Jschema.Validate.validates s (Jsont.Parser.parse_exn ~mode:`Lenient d))

(* ------------------------------------------------------------------ *)
(* §5.1 examples                                                        *)
(* ------------------------------------------------------------------ *)

let test_string_schemas () =
  let any_string = schema {|{"type":"string"}|} in
  ok any_string {|"anything"|};
  no any_string "42";
  no any_string "[]";
  let bits = schema {|{"type":"string","pattern":"(01)+"}|} in
  ok bits {|"01"|};
  ok bits {|"010101"|};
  no bits {|"0"|};
  no bits {|""|};
  no bits "7"

let test_number_schemas () =
  let s = schema {|{"type":"number","maximum":12,"multipleOf":4}|} in
  (* the paper: describes numbers 0, 4, 8 and 12 *)
  List.iter (fun d -> ok s d) [ "0"; "4"; "8"; "12" ];
  List.iter (fun d -> no s d) [ "1"; "16"; "13"; {|"4"|} ];
  let min = schema {|{"type":"number","minimum":5}|} in
  ok min "5";
  no min "4"

let test_object_schema_example () =
  (* the §5.1 object example: name string; a(b|c)a keys even numbers;
     everything else exactly the number 1 *)
  let s =
    schema
      {|{
        "type": "object",
        "properties": { "name": {"type":"string"} },
        "patternProperties": { "a(b|c)a": {"type":"number", "multipleOf": 2} },
        "additionalProperties": { "type":"number", "minimum":1, "maximum":1 }
      }|}
  in
  ok s {|{"name":"x"}|};
  ok s {|{"name":"x","aba":4,"aca":0,"other":1}|};
  no s {|{"name":3}|};
  no s {|{"aba":3}|};
  no s {|{"other":2}|};
  no s {|{"other":"s"}|};
  ok s {|{}|}

let test_array_schema_example () =
  (* §5.1: at least 2 elements, first two strings, remaining numbers,
     all distinct *)
  let s =
    schema
      {|{
        "type": "array",
        "items": [ {"type":"string"}, {"type":"string"} ],
        "additionalItems": {"type":"number"},
        "uniqueItems": true
      }|}
  in
  ok s {|["a","b"]|};
  ok s {|["a","b",1,2,3]|};
  no s {|["a"]|};
  no s {|["a","b","c"]|};
  no s {|["a","b",1,1]|};
  no s {|["a","a"]|};
  no s {|{"a":1}|}

let test_items_exact_length () =
  (* without additionalItems, items pins the length (paper semantics) *)
  let s = schema {|{"type":"array","items":[{"type":"number"}]}|} in
  ok s "[3]";
  no s "[]";
  no s "[3,4]"

let test_boolean_combinations () =
  let odd = schema {|{"not":{"type":"number","multipleOf":2}}|} in
  ok odd "3";
  no odd "4";
  ok odd {|"string"|};  (* not-a-number also passes, per the paper *)
  let either = schema {|{"anyOf":[{"type":"string"},{"type":"number"}]}|} in
  ok either {|"s"|};
  ok either "1";
  no either "[]";
  let both = schema {|{"allOf":[{"minimum":2},{"maximum":4}]}|} in
  ok both "3";
  no both "5";
  let enum = schema {|{"enum":[1,"two",{"three":3}]}|} in
  ok enum "1";
  ok enum {|"two"|};
  ok enum {|{"three":3}|};
  no enum "2"

let test_min_max_properties_required () =
  let s = schema {|{"type":"object","minProperties":1,"maxProperties":2,"required":["a"]}|} in
  ok s {|{"a":1}|};
  ok s {|{"a":1,"b":2}|};
  no s {|{}|};
  no s {|{"b":1}|};
  no s {|{"a":1,"b":2,"c":3}|}

let test_parse_errors () =
  List.iter
    (fun s ->
      match Jschema.Parse.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected schema parse error on %s" s)
    [ {|{"type":"frobnicate"}|};
      {|{"pattern":"("}|};
      {|{"minimum":"high"}|};
      {|{"unknownKeyword":1}|};
      {|{"$ref":"http://elsewhere"}|};
      {|{"$ref":"#/definitions/ghost"}|};
      {|{"properties":{"a":{"definitions":{}}}}|};
      "[1,2]" ];
  (* unknown keywords tolerated when asked *)
  match Jschema.Parse.of_string ~ignore_unknown:true {|{"unknownKeyword":1}|} with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "ignore_unknown failed: %s" m

let msg_contains needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_malformed_numerics () =
  (* pre-fix, [1e30] slipped through the lenient float narrowing as the
     garbage value [int_of_float] happens to produce (0 here), silently
     rewriting the schema's bound; now it is a positioned error *)
  (match Jschema.Parse.of_string {|{"minimum":1e30}|} with
  | Error m ->
    Alcotest.(check bool) ("positioned: " ^ m) true (msg_contains "line" m)
  | Ok _ -> Alcotest.fail "minimum 1e30 must be rejected");
  List.iter
    (fun s ->
      match Jschema.Parse.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected schema parse error on %s" s)
    [ {|{"multipleOf":1e30}|}; {|{"maximum":2.5}|}; {|{"minProperties":-1}|} ];
  (* in-range integral floats still narrow under the lenient rules *)
  match Jschema.Parse.of_string {|{"minimum":4e2}|} with
  | Ok s ->
    Alcotest.(check bool) "narrowed bound applies" true
      (Jschema.Validate.validates s (Value.Num 400));
    Alcotest.(check bool) "narrowed bound rejects below" false
      (Jschema.Validate.validates s (Value.Num 399))
  | Error m -> Alcotest.failf "integral float must narrow: %s" m

let test_duplicate_keywords_rejected () =
  (* the text route rejects duplicate keys at the JSON layer already;
     pre-fix, [of_value] silently conjoined a keyword smuggled in twice
     through a programmatically built value *)
  let dup =
    Value.Obj [ ("type", Value.Str "string"); ("type", Value.Str "number") ]
  in
  (match Jschema.Parse.of_value dup with
  | Error m ->
    Alcotest.(check bool) ("names the keyword: " ^ m) true
      (msg_contains {|"type"|} m)
  | Ok _ -> Alcotest.fail "duplicate keyword must be rejected");
  (* ... anywhere in the tree, not just at the root *)
  let nested =
    Value.Obj
      [ ("properties",
         Value.Obj
           [ ("a",
              Value.Obj [ ("minimum", Value.Num 1); ("minimum", Value.Num 2) ])
           ]) ]
  in
  (match Jschema.Parse.of_value nested with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nested duplicate keyword must be rejected");
  (* negative or non-numeric bounds cannot ride in through of_value *)
  (match Jschema.Parse.of_value (Value.Obj [ ("minimum", Value.Num (-5)) ]) with
  | Error m ->
    Alcotest.(check bool) ("mentions natural: " ^ m) true
      (msg_contains "natural" m)
  | Ok _ -> Alcotest.fail "negative bound must be rejected");
  match Jschema.Parse.of_value (Value.Obj [ ("maxProperties", Value.Num 3) ]) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "plain nat bound rejected: %s" m

let test_ref_cycles () =
  (match
     Jschema.Parse.of_string
       {|{"definitions":{"a":{"not":{"$ref":"#/definitions/a"}}},"$ref":"#/definitions/a"}|}
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-modal ref cycle must be rejected");
  match
    Jschema.Parse.of_string
      {|{"definitions":{"a":{"properties":{"x":{"$ref":"#/definitions/a"}}}},
         "$ref":"#/definitions/a"}|}
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "modal ref cycle wrongly rejected: %s" m

let test_to_value_roundtrip () =
  let texts =
    [ {|{"type":"string","pattern":"ab*"}|};
      {|{"type":"object","properties":{"a":{"type":"number"}},"required":["a"]}|};
      {|{"type":"array","items":[{"type":"string"}],"additionalItems":{"type":"number"},"uniqueItems":true}|};
      {|{"anyOf":[{"type":"string"},{"not":{"enum":[1,2]}}]}|};
      {|{"definitions":{"e":{"type":"string"}},"not":{"$ref":"#/definitions/e"}}|} ]
  in
  let docs =
    [ {|"abbb"|}; {|"c"|}; "5"; {|{"a":1}|}; {|{"a":"s"}|}; {|["x"]|}; {|["x",3]|};
      "[1,2]"; "{}"; "1" ]
  in
  List.iter
    (fun text ->
      let s = schema text in
      let reparsed =
        match Jschema.Parse.of_value (Jschema.Schema.to_value s) with
        | Ok s -> s
        | Error m -> Alcotest.failf "reparse of %s failed: %s" text m
      in
      List.iter
        (fun d ->
          let v = parse_doc d in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" text d)
            (Jschema.Validate.validates s v)
            (Jschema.Validate.validates reparsed v))
        docs)
    texts

let test_lenient_booleans () =
  (* literal true/false in schema text work through lenient parsing *)
  let s = schema {|{"type":"array","uniqueItems":true}|} in
  ok s "[1,2]";
  no s "[1,1]";
  let s2 = schema {|{"type":"object","additionalProperties":false}|} in
  ok s2 "{}";
  no s2 {|{"a":1}|}


(* ------------------------------------------------------------------ *)
(* Schema inference (the §5.2 motivation, executable)                  *)
(* ------------------------------------------------------------------ *)

let user_examples =
  List.map parse_doc
    [ {|{"id":1,"name":"Sue","tags":["a","b"],"age":28}|};
      {|{"id":2,"name":"John","tags":[],"age":32}|};
      {|{"id":3,"name":"Ana","tags":["c"]}|} ]

let test_infer_basics () =
  let schema = Jschema.Infer.infer user_examples in
  (* every example validates *)
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Value.to_string d ^ " validates against the inferred schema")
        true
        (Jschema.Validate.validates_schema schema d))
    user_examples;
  (* keys present everywhere are required, others are not *)
  let doc = Jschema.Schema.plain schema in
  ok doc {|{"id":9,"name":"Li","tags":["x"]}|};
  no doc {|{"name":"Li","tags":[]}|};  (* id is required *)
  no doc {|{"id":"nine","name":"Li","tags":[]}|};  (* id must be a number *)
  no doc {|{"id":9,"name":"Li","tags":[3]}|}  (* tags hold strings *)

let test_infer_strict () =
  let schema = Jschema.Infer.infer ~mode:`Strict user_examples in
  let doc = Jschema.Schema.plain schema in
  List.iter
    (fun d ->
      Alcotest.(check bool) "examples still validate (strict)" true
        (Jschema.Validate.validates (Jschema.Schema.plain schema) d))
    user_examples;
  (* strict mode closes the object and bounds the numbers *)
  no doc {|{"id":1,"name":"Sue","tags":[],"age":28,"extra":0}|};
  no doc {|{"id":99,"name":"Sue","tags":[]}|}  (* id beyond the observed 1..3 *)

let test_infer_heterogeneous () =
  let examples = List.map parse_doc [ "1"; {|"s"|}; "[2]"; "7" ] in
  let schema = Jschema.Infer.infer examples in
  List.iter
    (fun d ->
      Alcotest.(check bool) "mixed types validate" true
        (Jschema.Validate.validates_schema schema d))
    examples;
  Alcotest.(check bool) "objects rejected" false
    (Jschema.Validate.validates_schema schema (parse_doc "{}"))

let test_infer_enum_detection () =
  let examples =
    List.map parse_doc
      [ {|"red"|}; {|"green"|}; {|"red"|}; {|"green"|}; {|"red"|}; {|"red"|} ]
  in
  let schema = Jschema.Infer.infer examples in
  Alcotest.(check bool) "categorical becomes enum" true
    (match schema with [ Jschema.Schema.C_enum _ ] -> true | _ -> false);
  Alcotest.(check bool) "unseen value rejected" false
    (Jschema.Validate.validates_schema schema (parse_doc {|"blue"|}))

let gen_docs =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    List.init
      (1 + Jworkload.Prng.int rng 5)
      (fun _ -> Jworkload.Gen_json.sized rng 30)
  in
  QCheck.make
    ~print:(fun ds -> String.concat "\n" (List.map Value.to_string ds))
    gen

let prop_infer_sound =
  QCheck.Test.make ~name:"every example validates against its inferred schema"
    ~count:300 gen_docs (fun docs ->
      let loose = Jschema.Infer.infer docs in
      let strict = Jschema.Infer.infer ~mode:`Strict docs in
      List.for_all
        (fun d ->
          Jschema.Validate.validates_schema loose d
          && Jschema.Validate.validates_schema strict d)
        docs)

let prop_infer_roundtrips_as_json =
  QCheck.Test.make ~name:"inferred schema survives print/parse" ~count:150
    gen_docs (fun docs ->
      let doc = Jschema.Infer.infer_document docs in
      match Jschema.Parse.of_value (Jschema.Schema.to_value doc) with
      | Error _ -> false
      | Ok reparsed ->
        List.for_all
          (fun d ->
            Jschema.Validate.validates reparsed d
            = Jschema.Validate.validates doc d)
          docs)

let () =
  Alcotest.run "schema"
    [ ("§5.1 examples",
       [ Alcotest.test_case "string schemas" `Quick test_string_schemas;
         Alcotest.test_case "number schemas" `Quick test_number_schemas;
         Alcotest.test_case "object example" `Quick test_object_schema_example;
         Alcotest.test_case "array example" `Quick test_array_schema_example;
         Alcotest.test_case "items exact length" `Quick test_items_exact_length;
         Alcotest.test_case "boolean combinations" `Quick test_boolean_combinations;
         Alcotest.test_case "min/max/required" `Quick test_min_max_properties_required ]);
      ("inference",
       [ Alcotest.test_case "basics" `Quick test_infer_basics;
         Alcotest.test_case "strict mode" `Quick test_infer_strict;
         Alcotest.test_case "heterogeneous" `Quick test_infer_heterogeneous;
         Alcotest.test_case "enum detection" `Quick test_infer_enum_detection;
         QCheck_alcotest.to_alcotest prop_infer_sound;
         QCheck_alcotest.to_alcotest prop_infer_roundtrips_as_json ]);
      ("parsing",
       [ Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "malformed numerics" `Quick test_malformed_numerics;
         Alcotest.test_case "duplicate keywords" `Quick
           test_duplicate_keywords_rejected;
         Alcotest.test_case "$ref cycles" `Quick test_ref_cycles;
         Alcotest.test_case "to_value roundtrip" `Quick test_to_value_roundtrip;
         Alcotest.test_case "lenient booleans" `Quick test_lenient_booleans ]) ]
