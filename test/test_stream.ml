(* Tests for the streaming validator (the §6 conjecture). *)

open Jlogic
module Value = Jsont.Value

let re = Rexp.Parse.parse_exn

let stream_validates text f =
  match Stream.validate text f with
  | Ok b -> b
  | Error m -> Alcotest.failf "stream error on %s: %s" text m

let test_supported () =
  (match Stream.supported (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int)) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  (match Stream.supported (Jsl.Test Jsl.Unique) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "Unique must be unsupported");
  (match Stream.supported (Jsl.Dia_keys (re "a|b", Jsl.True)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "regex modality must be unsupported");
  (match Stream.supported (Jsl.Dia_range (0, None, Jsl.True)) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unbounded range must be unsupported");
  (* ~(A) is fine: compiled away *)
  match Stream.supported (Jsl.Test (Jsl.Eq_doc (Jsont.Parser.parse_exn {|{"a":[1]}|}))) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_expand_eq () =
  let v = Jsont.Parser.parse_exn {|{"a":[1,"x"],"b":{}}|} in
  let f = Stream.expand_eq (Jsl.Test (Jsl.Eq_doc v)) in
  Alcotest.(check bool) "expanded formula deterministic" true (Jsl.is_deterministic f);
  (* semantics preserved *)
  List.iter
    (fun (expected, d) ->
      Alcotest.(check bool) d expected (Jsl.validates (Jsont.Parser.parse_exn d) f))
    [ (true, {|{"a":[1,"x"],"b":{}}|});
      (true, {|{"b":{},"a":[1,"x"]}|});
      (false, {|{"a":[1,"x"]}|});
      (false, {|{"a":[1,"y"],"b":{}}|});
      (false, {|{"a":[1,"x",2],"b":{}}|});
      (false, {|{"a":[1,"x"],"b":{},"c":0}|});
      (false, {|5|}) ]

let test_stream_basics () =
  let phi =
    Jsl.conj
      [ Jsl.Test Jsl.Is_obj;
        Jsl.dia_key "name" (Jsl.Test Jsl.Is_str);
        Jsl.dia_key "age" (Jsl.And (Jsl.Test (Jsl.Min 0), Jsl.Test (Jsl.Max 150)));
        Jsl.box_key "nick" (Jsl.Test Jsl.Is_str) ]
  in
  Alcotest.(check bool) "valid person" true
    (stream_validates {|{"name":"Sue","age":28}|} phi);
  Alcotest.(check bool) "with nick" true
    (stream_validates {|{"name":"Sue","age":28,"nick":"S"}|} phi);
  Alcotest.(check bool) "bad nick" false
    (stream_validates {|{"name":"Sue","age":28,"nick":7}|} phi);
  Alcotest.(check bool) "missing name" false (stream_validates {|{"age":28}|} phi);
  Alcotest.(check bool) "age too big" false
    (stream_validates {|{"name":"Sue","age":200}|} phi);
  Alcotest.(check bool) "not an object" false (stream_validates {|[1,2]|} phi)

let test_stream_malformed () =
  let phi = Jsl.Test Jsl.Is_obj in
  List.iter
    (fun text ->
      match Stream.validate text phi with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected stream error on %s" text)
    [ "{"; "{\"a\":}"; "{\"a\":1,}"; "[1,]"; "true"; "{\"a\":1} trailing";
      {|{"dup":1,"dup":2}|} ]

let gen_det_pair =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 60 in
    let cfg = { Jworkload.Gen_formula.default with Jworkload.Gen_formula.size = 10 } in
    let formula = Jworkload.Gen_formula.jsl rng cfg in
    (doc, formula)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jsl.to_string f)
    gen

let prop_stream_agrees_with_tree =
  QCheck.Test.make ~name:"streaming = tree-based evaluation" ~count:400 gen_det_pair
    (fun (doc, formula) ->
      match Stream.supported formula with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let text = Value.to_string doc in
        (match Stream.validate text formula with
        | Ok b -> b = Jsl.validates doc formula
        | Error m -> QCheck.Test.fail_reportf "stream error: %s" m))

let test_constant_memory () =
  (* peak obligations must not grow with document size *)
  let phi = Jsl.dia_key "id" (Jsl.Test Jsl.Is_int) in
  let peaks =
    List.map
      (fun n ->
        let rng = Jworkload.Prng.create 42 in
        let doc =
          Value.Obj
            [ ("id", Value.Num 1); ("payload", Jworkload.Gen_json.sized rng n) ]
        in
        match Stream.validate_with_stats (Value.to_string doc) phi with
        | Ok (true, stats) -> stats.Stream.peak_obligations
        | Ok (false, _) -> Alcotest.fail "should validate"
        | Error m -> Alcotest.fail m)
      [ 100; 1_000; 10_000 ]
  in
  match peaks with
  | [ p1; p2; p3 ] ->
    Alcotest.(check bool)
      (Printf.sprintf "peaks stay flat (%d, %d, %d)" p1 p2 p3)
      true
      (p1 = p2 && p2 = p3)
  | _ -> assert false

let test_tokens_counted () =
  let phi = Jsl.Test Jsl.Is_obj in
  match Stream.validate_with_stats {|{"a":1,"b":[2,3]}|} phi with
  | Ok (true, stats) ->
    Alcotest.(check bool) "tokens counted" true (stats.Stream.tokens >= 10)
  | Ok (false, _) -> Alcotest.fail "should validate"
  | Error m -> Alcotest.fail m


let test_validate_jnl () =
  let phi = Jnl.parse_exn {|eq(.name.first, "John") & !<.archived>|} in
  let doc = {|{"name":{"first":"John"},"age":32}|} in
  (match Stream.validate_jnl doc phi with
  | Ok b -> Alcotest.(check bool) "det JNL streams" true b
  | Error m -> Alcotest.fail m);
  (match Stream.validate_jnl {|{"name":{"first":"Jane"}}|} phi with
  | Ok b -> Alcotest.(check bool) "mismatch detected" false b
  | Error m -> Alcotest.fail m);
  (* non-deterministic / recursive formulas are rejected *)
  (match Stream.validate_jnl doc (Jnl.Exists (Jnl.Star (Jnl.Key "a"))) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recursive formula must be rejected");
  match Stream.validate_jnl doc (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "b")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EQ(α,β) must be rejected"

let prop_validate_jnl_agrees =
  QCheck.Test.make ~name:"JNL streaming = tree evaluation" ~count:300
    gen_det_pair (fun (doc, _) ->
      let rng = Jworkload.Prng.create 23 in
      let cfg = { Jworkload.Gen_formula.default with Jworkload.Gen_formula.size = 8 } in
      let phi = Jworkload.Gen_formula.jnl rng cfg in
      match Stream.validate_jnl (Value.to_string doc) phi with
      | Error _ -> QCheck.assume_fail ()
      | Ok b -> b = Jlogic.Jnl_eval.satisfies doc phi)

let () =
  Alcotest.run "stream"
    [ ("fragment",
       [ Alcotest.test_case "supported" `Quick test_supported;
         Alcotest.test_case "expand_eq" `Quick test_expand_eq ]);
      ("validation",
       [ Alcotest.test_case "basics" `Quick test_stream_basics;
         Alcotest.test_case "malformed input" `Quick test_stream_malformed;
         Alcotest.test_case "constant memory" `Quick test_constant_memory;
         Alcotest.test_case "token stats" `Quick test_tokens_counted ]);
      ("jnl",
       [ Alcotest.test_case "validate_jnl" `Quick test_validate_jnl;
         QCheck_alcotest.to_alcotest prop_validate_jnl_agrees ]);
      ("properties",
       [ QCheck_alcotest.to_alcotest prop_stream_agrees_with_tree ]) ]
