(* Tests for the JSON substrate: values, lexer/parser, printer, the
   formal tree model of §3.1 and navigation instructions of §2. *)

open Jsont

let value = Alcotest.testable Value.pp Value.equal

let parse s = Parser.parse_exn s
let parse_err s =
  match Parser.parse s with
  | Ok _ -> Alcotest.failf "expected parse error on %S" s
  | Error e -> Format.asprintf "%a" Parser.pp_error e

(* the document of Figure 1 *)
let figure1 =
  {|{
      "name": { "first": "John", "last": "Doe" },
      "age": 32,
      "hobbies": ["fishing", "yoga"]
    }|}

(* ------------------------------------------------------------------ *)
(* Value                                                                *)
(* ------------------------------------------------------------------ *)

let test_value_smart_constructors () =
  Alcotest.check_raises "negative number rejected" (Value.Invalid "Value.num: -1 is not a natural number")
    (fun () -> ignore (Value.num (-1)));
  Alcotest.(check bool) "duplicate keys rejected" true
    (match Value.obj [ ("a", Value.num 1); ("a", Value.num 2) ] with
    | exception Value.Invalid _ -> true
    | _ -> false);
  Alcotest.check value "obj builds" (Value.Obj [ ("a", Value.Num 1) ])
    (Value.obj [ ("a", Value.num 1) ])

let test_value_equality_unordered () =
  let v1 = parse {|{"a":1,"b":{"x":[1,2],"y":"s"}}|} in
  let v2 = parse {|{"b":{"y":"s","x":[1,2]},"a":1}|} in
  Alcotest.check value "object order irrelevant" v1 v2;
  Alcotest.(check int) "hash agrees" (Value.hash v1) (Value.hash v2);
  let v3 = parse {|{"a":1,"b":{"x":[2,1],"y":"s"}}|} in
  Alcotest.(check bool) "array order relevant" false (Value.equal v1 v3)

let test_value_accessors () =
  let v = parse figure1 in
  Alcotest.(check (option value)) "member" (Some (Value.Num 32))
    (Value.member "age" v);
  Alcotest.(check (option value)) "missing member" None (Value.member "zzz" v);
  let hobbies = Option.get (Value.member "hobbies" v) in
  Alcotest.(check (option value)) "nth 1" (Some (Value.Str "yoga"))
    (Value.nth 1 hobbies);
  Alcotest.(check (option value)) "nth -1" (Some (Value.Str "yoga"))
    (Value.nth (-1) hobbies);
  Alcotest.(check (option value)) "nth -2" (Some (Value.Str "fishing"))
    (Value.nth (-2) hobbies);
  Alcotest.(check (option value)) "nth out of range" None (Value.nth 2 hobbies);
  Alcotest.(check (option value)) "nth on object" None (Value.nth 0 v)

let test_value_sizes () =
  let v = parse figure1 in
  (* 5 values in the name/age example + hobbies array + 2 strings = the
     whole doc, name obj, first, last, age, hobbies, fishing, yoga = 8 *)
  Alcotest.(check int) "size" 8 (Value.size v);
  Alcotest.(check int) "height" 2 (Value.height v);
  Alcotest.(check int) "atom size" 1 (Value.size (Value.Num 3));
  Alcotest.(check int) "atom height" 0 (Value.height (Value.Str "x"));
  Alcotest.(check int) "empty object height" 0 (Value.height Value.empty_obj)

let test_value_check () =
  let bad = Value.Obj [ ("a", Value.Num 1); ("a", Value.Num 2) ] in
  Alcotest.(check bool) "invalid detected" false (Value.is_valid bad);
  Alcotest.(check bool) "deep negative detected" false
    (Value.is_valid (Value.Arr [ Value.Num (-3) ]));
  Alcotest.(check bool) "valid" true (Value.is_valid (parse figure1))

(* ------------------------------------------------------------------ *)
(* Lexer / Parser                                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_atoms () =
  Alcotest.check value "number" (Value.Num 42) (parse "42");
  Alcotest.check value "zero" (Value.Num 0) (parse "0");
  Alcotest.check value "string" (Value.Str "hi") (parse {|"hi"|});
  Alcotest.check value "empty obj" (Value.Obj []) (parse "{}");
  Alcotest.check value "empty arr" (Value.Arr []) (parse "[]")

let test_parse_escapes () =
  Alcotest.check value "basic escapes" (Value.Str "a\"b\\c/d\n")
    (parse {|"a\"b\\c\/d\n"|});
  Alcotest.check value "unicode bmp" (Value.Str "\xc3\xa9") (parse {|"é"|});
  Alcotest.check value "unicode astral" (Value.Str "\xf0\x9d\x84\x9e")
    (parse {|"𝄞"|});
  Alcotest.check value "control escape" (Value.Str "\x01") (parse {|"\u0001"|})

let test_parse_errors () =
  List.iter
    (fun s -> ignore (parse_err s))
    [ "";
      "{";
      "[1,";
      "[1 2]";
      {|{"a" 1}|};
      {|{"a":1,}|};
      {|{1:2}|};
      "tru";
      {|"unterminated|};
      {|"bad \q escape"|};
      {|"lone surrogate \ud834"|};
      "01";
      "1.5e";
      "[1] trailing";
      {|{"dup":1,"dup":2}|}
    ]

let test_parse_model_restriction () =
  ignore (parse_err "true");
  ignore (parse_err "null");
  ignore (parse_err "-5");
  ignore (parse_err "1.5");
  (* -0 is a negative literal, not a natural: it must not slip through
     as 0 in strict mode *)
  ignore (parse_err "-0");
  ignore (parse_err "[-0]");
  ignore (parse_err {|{"a":-0}|});
  (* lenient mode *)
  let lenient s = Parser.parse_exn ~mode:`Lenient s in
  Alcotest.check value "lenient true" (Value.Str "true") (lenient "true");
  Alcotest.check value "lenient null" (Value.Str "null") (lenient "null");
  Alcotest.check value "lenient whole float" (Value.Num 3) (lenient "3.0");
  Alcotest.check value "lenient -0 narrows to 0" (Value.Num 0) (lenient "-0");
  Alcotest.check value "lenient [-0]" (Value.Arr [ Value.Num 0 ])
    (lenient "[-0]")

let test_parse_depth_limit () =
  let deep = String.concat "" (List.init 200 (fun _ -> "[")) in
  let deep = deep ^ "1" ^ String.concat "" (List.init 200 (fun _ -> "]")) in
  (match Parser.parse ~max_depth:100 deep with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth limit not enforced");
  match Parser.parse ~max_depth:1000 deep with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deep doc rejected: %a" Parser.pp_error e

let test_parse_many () =
  match Parser.parse_many {| {"a":1} [2] "three" |} with
  | Ok [ _; _; _ ] -> ()
  | Ok vs -> Alcotest.failf "expected 3 docs, got %d" (List.length vs)
  | Error e -> Alcotest.failf "parse_many failed: %a" Parser.pp_error e

let test_error_positions () =
  match Parser.parse "{\n  \"a\": bad\n}" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    Alcotest.(check int) "line" 2 e.Parser.position.Lexer.line;
    Alcotest.(check bool) "column plausible" true (e.Parser.position.Lexer.col >= 8)

(* ------------------------------------------------------------------ *)
(* Printer round trips                                                  *)
(* ------------------------------------------------------------------ *)

let test_print_parse_roundtrip () =
  let docs =
    [ figure1;
      {|{"empty":{},"earr":[],"nested":[[[1]]],"s":"\u0001\"\\"}|};
      "12345";
      {|"just a string"|}
    ]
  in
  List.iter
    (fun doc ->
      let v = parse doc in
      Alcotest.check value "compact roundtrip" v (parse (Printer.compact v));
      Alcotest.check value "pretty roundtrip" v (parse (Printer.pretty v)))
    docs

(* ------------------------------------------------------------------ *)
(* Tree model                                                           *)
(* ------------------------------------------------------------------ *)

let tree_of s = Tree.of_value (parse s)

let test_tree_basic () =
  let t = tree_of figure1 in
  Alcotest.(check int) "node count = value size" 8 (Tree.node_count t);
  Alcotest.(check int) "height" 2 (Tree.height t);
  Alcotest.check value "to_value roundtrip" (parse figure1) (Tree.to_value t);
  Alcotest.(check bool) "root is object" true (Tree.is_obj t Tree.root)

let test_tree_navigation () =
  let t = tree_of figure1 in
  let name = Option.get (Tree.lookup t Tree.root "name") in
  Alcotest.(check bool) "name is object" true (Tree.is_obj t name);
  let first = Option.get (Tree.lookup t name "first") in
  Alcotest.(check (option string)) "first value" (Some "John")
    (Tree.str_value t first);
  let age = Option.get (Tree.lookup t Tree.root "age") in
  Alcotest.(check (option int)) "age value" (Some 32) (Tree.int_value t age);
  let hobbies = Option.get (Tree.lookup t Tree.root "hobbies") in
  Alcotest.(check bool) "hobbies is array" true (Tree.is_arr t hobbies);
  let yoga = Option.get (Tree.nth t hobbies 1) in
  Alcotest.(check (option string)) "hobbies[1]" (Some "yoga")
    (Tree.str_value t yoga);
  let yoga' = Option.get (Tree.nth t hobbies (-1)) in
  Alcotest.(check bool) "negative index = last" true (yoga = yoga');
  Alcotest.(check (option int)) "lookup on array is None" None
    (Option.map (fun _ -> 0) (Tree.lookup t hobbies "x"));
  Alcotest.(check (option int)) "nth on object is None" None
    (Option.map (fun _ -> 0) (Tree.nth t Tree.root 0))

let test_tree_formal_conditions () =
  (* Check the five conditions of the formal definition on a sample. *)
  let t = tree_of {|{"a":{"b":[{"c":1},"s",[2,3]],"d":2},"e":[]}|} in
  Seq.iter
    (fun n ->
      match Tree.kind t n with
      | Tree.Kobj ->
        (* condition 2: keys pairwise distinct *)
        let keys = List.map fst (Tree.obj_children t n) in
        Alcotest.(check int) "distinct keys" (List.length keys)
          (List.length (List.sort_uniq String.compare keys))
      | Tree.Karr ->
        (* condition 3: the i-th child is reached through edge i *)
        Array.iteri
          (fun i c ->
            match Tree.edge_from_parent t c with
            | Tree.Pos j -> Alcotest.(check int) "array edge label" i j
            | _ -> Alcotest.fail "array child without Pos edge")
          (Tree.arr_children t n)
      | Tree.Kstr _ | Tree.Kint _ ->
        (* condition 4: atoms are leaves *)
        Alcotest.(check int) "atom has no children" 0 (Tree.arity t n))
    (Tree.nodes t)

let test_tree_addresses_prefix_closed () =
  let t = tree_of {|{"a":[10,{"b":"x"}],"c":2}|} in
  let addresses = Seq.fold_left (fun acc n -> Tree.address t n :: acc) [] (Tree.nodes t) in
  (* prefix closure *)
  List.iter
    (fun addr ->
      match List.rev addr with
      | [] -> ()
      | _ :: parent_rev ->
        let parent = List.rev parent_rev in
        Alcotest.(check bool)
          (Printf.sprintf "prefix of /%s present"
             (String.concat "/" (List.map string_of_int addr)))
          true
          (List.mem parent addresses))
    addresses;
  (* sibling closure: n·i present implies n·j for j < i *)
  List.iter
    (fun addr ->
      match List.rev addr with
      | [] -> ()
      | i :: parent_rev ->
        let parent = List.rev parent_rev in
        for j = 0 to i - 1 do
          Alcotest.(check bool) "younger sibling present" true
            (List.mem (parent @ [ j ]) addresses)
        done)
    addresses

let test_tree_subtree_equality () =
  let t = tree_of {|{"x":{"p":[1,{"q":"v"}]},"y":{"p":[1,{"q":"v"}]},"z":{"p":[1,{"q":"w"}]}}|} in
  let x = Option.get (Tree.lookup t Tree.root "x") in
  let y = Option.get (Tree.lookup t Tree.root "y") in
  let z = Option.get (Tree.lookup t Tree.root "z") in
  Alcotest.(check bool) "x = y" true (Tree.equal_subtrees t x y);
  Alcotest.(check bool) "x <> z" false (Tree.equal_subtrees t x z);
  Alcotest.(check bool) "x = x" true (Tree.equal_subtrees t x x);
  Alcotest.(check bool) "hash equal" true
    (Tree.subtree_hash t x = Tree.subtree_hash t y);
  Alcotest.(check bool) "equal to value" true
    (Tree.equal_to_value t x (parse {|{"p":[1,{"q":"v"}]}|}));
  Alcotest.(check bool) "not equal to other value" false
    (Tree.equal_to_value t x (parse {|{"p":[1,{"q":"v"},2]}|}))

let test_tree_key_order_insensitive_equality () =
  let t = tree_of {|{"x":{"a":1,"b":2},"y":{"b":2,"a":1}}|} in
  let x = Option.get (Tree.lookup t Tree.root "x") in
  let y = Option.get (Tree.lookup t Tree.root "y") in
  Alcotest.(check bool) "key order irrelevant" true (Tree.equal_subtrees t x y)

let test_tree_sizes_heights () =
  let t = tree_of {|{"a":[1,[2,[3]]],"b":0}|} in
  Alcotest.(check int) "size root" (Tree.node_count t) (Tree.size t Tree.root);
  let a = Option.get (Tree.lookup t Tree.root "a") in
  Alcotest.(check int) "size a" 6 (Tree.size t a);
  Alcotest.(check int) "height a" 3 (Tree.height_of t a);
  Alcotest.(check int) "depth a" 1 (Tree.depth t a);
  (* nodes_by_height partitions all nodes *)
  let buckets = Tree.nodes_by_height t in
  let total = Array.fold_left (fun acc l -> acc + List.length l) 0 buckets in
  Alcotest.(check int) "buckets cover all nodes" (Tree.node_count t) total;
  Array.iteri
    (fun h bucket ->
      List.iter
        (fun n -> Alcotest.(check int) "bucket height" h (Tree.height_of t n))
        bucket)
    buckets

let test_tree_parent_edges () =
  let t = tree_of {|{"a":[5]}|} in
  let a = Option.get (Tree.lookup t Tree.root "a") in
  let five = Option.get (Tree.nth t a 0) in
  Alcotest.(check bool) "root parent" true (Tree.parent t Tree.root = None);
  Alcotest.(check bool) "a's parent is root" true (Tree.parent t a = Some Tree.root);
  Alcotest.(check bool) "edge of a" true (Tree.edge_from_parent t a = Tree.Key "a");
  Alcotest.(check bool) "edge of five" true (Tree.edge_from_parent t five = Tree.Pos 0);
  Alcotest.(check bool) "value_at five" true
    (Value.equal (Tree.value_at t five) (Value.Num 5))

(* ------------------------------------------------------------------ *)
(* Pointer                                                              *)
(* ------------------------------------------------------------------ *)

let test_pointer_parse () =
  let check_rt s expected =
    match Pointer.of_string s with
    | Error e -> Alcotest.failf "pointer %S: %s" s e
    | Ok p ->
      Alcotest.(check bool)
        (Printf.sprintf "steps of %S" s)
        true (p = expected)
  in
  check_rt "name.first" [ Pointer.Key "name"; Pointer.Key "first" ];
  check_rt "hobbies[1]" [ Pointer.Key "hobbies"; Pointer.Index 1 ];
  check_rt "items[-1].id"
    [ Pointer.Key "items"; Pointer.Index (-1); Pointer.Key "id" ];
  check_rt {|["key with.dots"]|} [ Pointer.Key "key with.dots" ];
  check_rt "$.a" [ Pointer.Key "a" ];
  check_rt "" [];
  check_rt "$" [];
  check_rt "a.b[0][\"c\"]"
    [ Pointer.Key "a"; Pointer.Key "b"; Pointer.Index 0; Pointer.Key "c" ];
  (match Pointer.of_string "a..b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a..b should not parse");
  (match Pointer.of_string "a[" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a[ should not parse");
  (* regression: garbage after a quoted key must yield [Error], not a
     [Lexer.Error] escaping from the lookahead *)
  match Pointer.of_string {|["-, []:[:{"a",{|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage should not parse"
  | exception e ->
    Alcotest.failf "pointer parsing raised %s" (Printexc.to_string e)

let test_pointer_whitespace () =
  (* whitespace is accepted uniformly inside brackets — spaces, tabs and
     newlines, before and after the selector, for keys and indices alike *)
  let check s expected =
    match Pointer.of_string s with
    | Error e -> Alcotest.failf "pointer %S: %s" s e
    | Ok p ->
      Alcotest.(check bool) (Printf.sprintf "steps of %S" s) true (p = expected)
  in
  check {|[ "a" ]|} [ Pointer.Key "a" ];
  check "[ 0 ]" [ Pointer.Index 0 ];
  check "[\t-1\t]" [ Pointer.Index (-1) ];
  check "a[\n  \"b\"\n]" [ Pointer.Key "a"; Pointer.Key "b" ];
  check "hobbies[ 1 ].x"
    [ Pointer.Key "hobbies"; Pointer.Index 1; Pointer.Key "x" ];
  check {|[  "k"  ][  2  ]|} [ Pointer.Key "k"; Pointer.Index 2 ];
  (* whitespace outside brackets is still not path syntax *)
  match Pointer.of_string "a .b" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "\"a .b\" should not parse"

let test_pointer_minus_zero () =
  (* positions are naturals; the negative form is the from-the-end
     convention and needs a nonzero offset, so [-0] means nothing *)
  List.iter
    (fun s ->
      match Pointer.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S must be rejected" s)
    [ "[-0]"; "a[-0].b"; "[ -0 ]" ];
  match Pointer.of_string "[-00]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "[-00] must be rejected"

let test_pointer_prng_roundtrip () =
  (* of_string_exn ∘ to_string = id on randomly generated pointers,
     including keys that need quoting and escaping *)
  let rng = Jworkload.Prng.create 42 in
  let alphabet = "abcz_09-.![ ]\"\\\n\xc3\xa9" in
  let gen_key () =
    let len = 1 + Jworkload.Prng.int rng 6 in
    (* stay on UTF-8 boundaries: é is two bytes, keep or drop both *)
    let raw =
      String.init len (fun _ ->
          alphabet.[Jworkload.Prng.int rng (String.length alphabet)])
    in
    String.concat ""
      (List.filter_map
         (fun c ->
           if c = '\xc3' then Some "\xc3\xa9"
           else if c = '\xa9' then None
           else Some (String.make 1 c))
         (List.init (String.length raw) (String.get raw)))
  in
  let gen_step () =
    if Jworkload.Prng.bool rng then Pointer.Key (gen_key ())
    else Pointer.Index (Jworkload.Prng.int rng 21 - 10)
  in
  for _ = 1 to 500 do
    let p = List.init (Jworkload.Prng.int rng 6) (fun _ -> gen_step ()) in
    let s = Pointer.to_string p in
    match Pointer.of_string s with
    | Error e -> Alcotest.failf "roundtrip of %S failed: %s" s e
    | Ok p' ->
      if p <> p' then
        Alcotest.failf "roundtrip of %S changed the pointer (%S)" s
          (Pointer.to_string p')
  done

let test_pointer_roundtrip () =
  List.iter
    (fun s ->
      let p = Pointer.of_string_exn s in
      let p' = Pointer.of_string_exn (Pointer.to_string p) in
      Alcotest.(check bool) ("roundtrip " ^ s) true (p = p'))
    [ "name.first"; "hobbies[1]"; {|["weird key!"]|}; "a[0][-2].b" ]

let test_pointer_get () =
  let v = parse figure1 in
  let get s = Pointer.get (Pointer.of_string_exn s) v in
  Alcotest.(check (option value)) "name.first" (Some (Value.Str "John"))
    (get "name.first");
  Alcotest.(check (option value)) "hobbies[0]" (Some (Value.Str "fishing"))
    (get "hobbies[0]");
  Alcotest.(check (option value)) "hobbies[-1]" (Some (Value.Str "yoga"))
    (get "hobbies[-1]");
  Alcotest.(check (option value)) "missing" None (get "name.middle");
  Alcotest.(check (option value)) "type mismatch" None (get "age[0]");
  Alcotest.(check bool) "exists" true
    (Pointer.exists (Pointer.of_string_exn "age") v);
  (* same through the tree *)
  let t = Tree.of_value v in
  let n = Pointer.get_node (Pointer.of_string_exn "name.last") t Tree.root in
  Alcotest.(check (option string)) "tree get" (Some "Doe")
    (Option.bind n (Tree.str_value t))

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                 *)
(* ------------------------------------------------------------------ *)

let gen_value =
  let open QCheck.Gen in
  let key = map (String.make 1) (char_range 'a' 'f') in
  let key2 = map2 (fun a b -> Printf.sprintf "%c%c" a b) (char_range 'a' 'f') (char_range 'a' 'f') in
  let atom =
    oneof
      [ map (fun n -> Value.Num (abs n mod 1000)) nat;
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 6)) ]
  in
  let rec value n =
    if n <= 0 then atom
    else
      frequency
        [ (2, atom);
          (2, map (fun vs -> Value.Arr vs) (list_size (int_range 0 4) (value (n - 1))));
          (3,
           let pair = map2 (fun k v -> (k, v)) (oneof [ key; key2 ]) (value (n - 1)) in
           map
             (fun kvs ->
               (* deduplicate keys, keeping the first occurrence *)
               let seen = Hashtbl.create 8 in
               let kvs =
                 List.filter
                   (fun (k, _) ->
                     if Hashtbl.mem seen k then false
                     else begin
                       Hashtbl.add seen k ();
                       true
                     end)
                   kvs
               in
               Value.Obj kvs)
             (list_size (int_range 0 4) pair)) ]
  in
  value 4

let arbitrary_value = QCheck.make ~print:Value.to_string gen_value

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300 arbitrary_value
    (fun v -> Value.equal v (parse (Printer.compact v)))

let prop_pretty_parse_roundtrip =
  QCheck.Test.make ~name:"pretty/parse roundtrip" ~count:200 arbitrary_value
    (fun v -> Value.equal v (parse (Printer.pretty v)))

let prop_tree_roundtrip =
  QCheck.Test.make ~name:"tree of_value/to_value roundtrip" ~count:300
    arbitrary_value (fun v -> Value.equal v (Tree.to_value (Tree.of_value v)))

let prop_tree_size =
  QCheck.Test.make ~name:"tree node_count = value size" ~count:300
    arbitrary_value (fun v -> Tree.node_count (Tree.of_value v) = Value.size v)

let prop_tree_height =
  QCheck.Test.make ~name:"tree height = value height" ~count:300
    arbitrary_value (fun v -> Tree.height (Tree.of_value v) = Value.height v)

let prop_subtree_equality_matches_value_equality =
  QCheck.Test.make ~name:"equal_subtrees agrees with Value.equal" ~count:200
    (QCheck.pair arbitrary_value arbitrary_value) (fun (v1, v2) ->
      let t = Tree.of_value (Value.Arr [ v1; v2 ]) in
      let c1 = Option.get (Tree.nth t Tree.root 0) in
      let c2 = Option.get (Tree.nth t Tree.root 1) in
      Tree.equal_subtrees t c1 c2 = Value.equal v1 v2)

let prop_value_at =
  QCheck.Test.make ~name:"value_at root = identity" ~count:200 arbitrary_value
    (fun v ->
      let t = Tree.of_value v in
      Value.equal (Tree.value_at t Tree.root) v)

let prop_hash_sound =
  QCheck.Test.make ~name:"Value.hash respects equality" ~count:200
    arbitrary_value (fun v ->
      Value.hash v = Value.hash (Value.sort_keys v))

let prop_compare_total_order =
  QCheck.Test.make ~name:"Value.compare antisymmetry" ~count:200
    (QCheck.pair arbitrary_value arbitrary_value) (fun (v1, v2) ->
      let c1 = Value.compare v1 v2 and c2 = Value.compare v2 v1 in
      (c1 = 0 && c2 = 0) || (c1 < 0 && c2 > 0) || (c1 > 0 && c2 < 0))


(* ------------------------------------------------------------------ *)
(* Diff                                                                 *)
(* ------------------------------------------------------------------ *)

let test_diff_basics () =
  let a = parse {|{"name":"John","age":32,"tags":[1,2,3]}|} in
  let b = parse {|{"name":"Jane","age":32,"tags":[1,2],"new":0}|} in
  let script = Diff.diff a b in
  Alcotest.(check bool) "non-empty" true (Diff.size script > 0);
  (match Diff.apply script a with
  | Ok b' -> Alcotest.check value "apply reconstructs" b b'
  | Error m -> Alcotest.fail m);
  (match Diff.apply (Diff.invert script) b with
  | Ok a' -> Alcotest.check value "inverse reconstructs" a a'
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "empty diff of equal values" 0
    (Diff.size (Diff.diff a a));
  (* object key order does not create edits *)
  let shuffled = parse {|{"age":32,"tags":[1,2,3],"name":"John"}|} in
  Alcotest.(check int) "order-insensitive" 0 (Diff.size (Diff.diff a shuffled))

let test_diff_errors () =
  let a = parse {|{"x":1}|} in
  let bogus = [ Diff.Replace ([ Pointer.Key "x" ], Value.Num 9, Value.Num 2) ] in
  match Diff.apply bogus a with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale replace must fail"

let prop_diff_roundtrip =
  QCheck.Test.make ~name:"apply (diff a b) a = b" ~count:300
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      match Diff.apply (Diff.diff a b) a with
      | Ok b' -> Value.equal b b'
      | Error m -> QCheck.Test.fail_reportf "apply failed: %s" m)

let prop_diff_invert =
  QCheck.Test.make ~name:"apply (invert (diff a b)) b = a" ~count:300
    (QCheck.pair arbitrary_value arbitrary_value) (fun (a, b) ->
      match Diff.apply (Diff.invert (Diff.diff a b)) b with
      | Ok a' -> Value.equal a a'
      | Error m -> QCheck.Test.fail_reportf "inverse failed: %s" m)

(* Correlated pairs: [b] is a cascade of local mutations of [a] —
   element deletes and inserts mixed within one array, object key
   insertion/removal and duplicate-free reorderings, subtree edits.
   Independent pairs almost never produce these shapes, so the plain
   round-trip property cannot see diff's positional bookkeeping go
   wrong on them. *)
let gen_mutated_pair =
  let open QCheck.Gen in
  let fresh_atom =
    oneof
      [ map (fun n -> Value.Num (abs n mod 1000)) nat;
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 6)) ]
  in
  let rec seq = function
    | [] -> return []
    | g :: gs -> g >>= fun x -> seq gs >>= fun xs -> return (x :: xs)
  in
  let rec mutate (v : Value.t) =
    match v with
    | Value.Arr vs ->
      (* per element: delete, mutate in place, or keep — then append *)
      seq
        (List.map
           (fun v ->
             int_range 0 99 >>= fun roll ->
             if roll < 20 then return []
             else if roll < 60 then map (fun v -> [ v ]) (mutate v)
             else return [ v ])
           vs)
      >>= fun kept ->
      int_range 0 2 >>= fun n_ins ->
      list_size (return n_ins) fresh_atom >>= fun ins ->
      return (Value.Arr (List.concat kept @ ins))
    | Value.Obj kvs ->
      seq
        (List.map
           (fun (k, v) ->
             int_range 0 99 >>= fun roll ->
             if roll < 15 then return None
             else if roll < 55 then map (fun v -> Some (k, v)) (mutate v)
             else return (Some (k, v)))
           kvs)
      >>= fun kept ->
      let kept = List.filter_map Fun.id kept in
      int_range 0 99 >>= fun add_roll ->
      (if add_roll < 30 && not (List.mem_assoc "zq" kept) then
         map (fun v -> kept @ [ ("zq", v) ]) fresh_atom
       else return kept)
      >>= fun kvs' ->
      (* reordering alone must produce an empty diff; combined with
         edits it must still round-trip *)
      shuffle_l kvs' >>= fun shuffled -> return (Value.Obj shuffled)
    | atom -> frequency [ (3, return atom); (1, fresh_atom) ]
  in
  gen_value >>= fun a ->
  mutate a >>= fun b -> return (a, b)

let arbitrary_mutated_pair =
  QCheck.make
    ~print:(fun (a, b) -> Value.to_string a ^ "  ~>  " ^ Value.to_string b)
    gen_mutated_pair

let prop_diff_roundtrip_mutations =
  QCheck.Test.make ~name:"apply (diff a b) a = b (correlated mutations)"
    ~count:500 arbitrary_mutated_pair (fun (a, b) ->
      match Diff.apply (Diff.diff a b) a with
      | Ok b' -> Value.equal b b'
      | Error m -> QCheck.Test.fail_reportf "apply failed: %s" m)

let prop_diff_invert_mutations =
  QCheck.Test.make ~name:"apply (invert (diff a b)) b = a (correlated mutations)"
    ~count:500 arbitrary_mutated_pair (fun (a, b) ->
      match Diff.apply (Diff.invert (Diff.diff a b)) b with
      | Ok a' -> Value.equal a a'
      | Error m -> QCheck.Test.fail_reportf "inverse failed: %s" m)

let test_diff_root_remove_total () =
  (* pre-fix, a root-level [Remove] escaped [apply]'s documented
     [result] contract as [Invalid_argument "option is None"] *)
  let v = parse {|{"x":1}|} in
  (match Diff.apply [ Diff.Remove ([], v) ] v with
  | Error _ -> ()
  | Ok r ->
    Alcotest.failf "removing the root must be a patch error, got %s"
      (Value.to_string r));
  (* the root can still be replaced *)
  match Diff.apply [ Diff.Replace ([], v, Value.Num 7) ] v with
  | Ok r -> Alcotest.check value "root replace" (Value.Num 7) r
  | Error m -> Alcotest.fail m


(* ------------------------------------------------------------------ *)
(* XML coding (§3.2)                                                    *)
(* ------------------------------------------------------------------ *)

let test_xml_coding () =
  let v = parse figure1 in
  let x = Xml_coding.encode v in
  (match Xml_coding.decode x with
  | Ok v' -> Alcotest.check value "roundtrip" v v'
  | Error m -> Alcotest.fail m);
  (* J[name][first] through the coding *)
  let name = Option.get (Xml_coding.lookup_key x "name") in
  let first = Option.get (Xml_coding.lookup_key name "first") in
  Alcotest.(check (option string)) "lookup" (Some "John") first.Xml_coding.text;
  Alcotest.(check bool) "missing key" true (Xml_coding.lookup_key x "zzz" = None);
  let hobbies = Option.get (Xml_coding.lookup_key x "hobbies") in
  let yoga = Option.get (Xml_coding.nth hobbies 1) in
  Alcotest.(check (option string)) "nth" (Some "yoga") yoga.Xml_coding.text;
  Alcotest.(check bool) "nth out of range" true (Xml_coding.nth hobbies 9 = None);
  (* the coding inflates the tree: one extra pair node per member *)
  Alcotest.(check bool) "coded tree larger" true (Xml_coding.size x > Value.size v)

let test_xml_number_texts () =
  let number s = { Xml_coding.tag = "number"; label = None; text = Some s; children = [] } in
  let accepts s n =
    match Xml_coding.decode (number s) with
    | Ok v -> Alcotest.check value ("accepts " ^ s) (Value.Num n) v
    | Error m -> Alcotest.fail (s ^ " should decode: " ^ m)
  in
  let rejects s =
    match Xml_coding.decode (number s) with
    | Ok v ->
      Alcotest.fail
        (Printf.sprintf "%S should be rejected, decoded to %s" s
           (Value.to_string v))
    | Error _ -> ()
  in
  (* everything encode can produce round-trips *)
  accepts "0" 0;
  accepts "12" 12;
  accepts (string_of_int max_int) max_int;
  (* OCaml integer-literal syntax is not JSON number text: decode must
     only accept what encode can produce *)
  List.iter rejects
    [ "0x1F"; "0X1F"; "0o17"; "0b11"; "1_000"; "1_"; "-3"; "+3"; " 7"; "7 ";
      "";
      (* a digit run that overflows the int range is not a natural *)
      "9999999999999999999999999999" ]

let prop_xml_roundtrip =
  QCheck.Test.make ~name:"XML coding roundtrip" ~count:300 arbitrary_value
    (fun v ->
      match Xml_coding.decode (Xml_coding.encode v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

let prop_xml_lookup_agrees =
  QCheck.Test.make ~name:"coded lookup = native member" ~count:300
    arbitrary_value (fun v ->
      let x = Xml_coding.encode v in
      List.for_all
        (fun k ->
          let native = Value.member k v in
          let coded = Option.map Xml_coding.decode (Xml_coding.lookup_key x k) in
          match (native, coded) with
          | None, None -> true
          | Some nv, Some (Ok cv) -> Value.equal nv cv
          | _ -> false)
        [ "a"; "b"; "ab"; "zz" ])


(* ------------------------------------------------------------------ *)
(* Robustness: parsers are total on arbitrary input                     *)
(* ------------------------------------------------------------------ *)

let gen_garbage =
  QCheck.Gen.(
    oneof
      [ string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 40);
        (* JSON-flavoured garbage: plausible tokens in random order *)
        map (String.concat "")
          (list_size (int_range 0 14)
             (oneofl
                [ "{"; "}"; "["; "]"; ","; ":"; "\""; "1"; "true"; "nul";
                  "\"a\""; " "; "\\u12"; "-"; "3.5e"; "{}"; "[]" ])) ])

let arbitrary_garbage = QCheck.make ~print:String.escaped gen_garbage

let prop_parser_total =
  QCheck.Test.make ~name:"Parser.parse never raises" ~count:500
    arbitrary_garbage (fun s ->
      match Jsont.Parser.parse s with Ok _ | Error _ -> true)

let prop_parser_lenient_total =
  QCheck.Test.make ~name:"lenient Parser.parse never raises" ~count:300
    arbitrary_garbage (fun s ->
      match Jsont.Parser.parse ~mode:`Lenient s with Ok _ | Error _ -> true)

let prop_pointer_total =
  QCheck.Test.make ~name:"Pointer.of_string never raises" ~count:500
    arbitrary_garbage (fun s ->
      match Jsont.Pointer.of_string s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Direct ingestion: of_string vs of_value ∘ parse                      *)
(* ------------------------------------------------------------------ *)

(* Full structural identity, not just subtree equality: both routes
   must produce the same preorder numbering and the same per-node
   kind/edge/parent/size/height/depth/hash columns. *)
let trees_identical t1 t2 =
  let n = Tree.node_count t1 in
  Tree.node_count t2 = n
  && Tree.equal_across t1 Tree.root t2 Tree.root
  &&
  let ok = ref true in
  for nd = 0 to n - 1 do
    if
      Tree.kind t1 nd <> Tree.kind t2 nd
      || Tree.edge_from_parent t1 nd <> Tree.edge_from_parent t2 nd
      || Tree.parent_id t1 nd <> Tree.parent_id t2 nd
      || Tree.size t1 nd <> Tree.size t2 nd
      || Tree.height_of t1 nd <> Tree.height_of t2 nd
      || Tree.depth t1 nd <> Tree.depth t2 nd
      || Tree.subtree_hash t1 nd <> Tree.subtree_hash t2 nd
    then ok := false
  done;
  !ok

let render_error e = Format.asprintf "%a" Parser.pp_error e

let test_direct_differential () =
  let rng = Jworkload.Prng.create 2025 in
  for i = 1 to 60 do
    let size = 1 + Jworkload.Prng.int rng 400 in
    let doc = Jworkload.Gen_json.sized rng size in
    let text =
      if Jworkload.Prng.bool rng then Printer.compact doc
      else Printer.pretty doc
    in
    let direct = Tree.of_string_exn text in
    let oracle = Tree.of_value (Parser.parse_exn text) in
    if not (trees_identical direct oracle) then
      Alcotest.failf "direct/oracle trees differ (case %d)" i;
    if not (Value.equal (Tree.to_value direct) doc) then
      Alcotest.failf "to_value roundtrip differs (case %d)" i
  done

let test_direct_error_agreement () =
  let cases =
    [ {|{"a":1,}|}; {|[1,2|}; {|{"a" 1}|}; "nul"; {|{"a":1,"a":2}|};
      {|[1, -3]|}; {|"unterminated|}; {|{"a":tru}|}; {|[1,2]]|};
      {|"\ud800x"|}; ""; "}"; "true"; "null"; "-3"; "1.5"; {|{"k":}|};
      {|[,]|}; {|{"a":1 "b":2}|}; {|{1:2}|} ]
  in
  List.iter
    (fun text ->
      List.iter
        (fun mode ->
          let direct = Tree.of_string ~mode text in
          let oracle =
            Result.map Tree.of_value (Parser.parse ~mode text)
          in
          match (direct, oracle) with
          | Ok d, Ok o ->
            Alcotest.(check bool)
              (Printf.sprintf "trees agree on %S" text)
              true (trees_identical d o)
          | Error e1, Error e2 ->
            Alcotest.(check string)
              (Printf.sprintf "error agrees on %S" text)
              (render_error e2) (render_error e1)
          | Ok _, Error e ->
            Alcotest.failf "direct accepted %S, oracle rejected: %s" text
              (render_error e)
          | Error e, Ok _ ->
            Alcotest.failf "oracle accepted %S, direct rejected: %s" text
              (render_error e))
        [ `Strict; `Lenient ])
    cases

let test_direct_depth_agreement () =
  let deep = String.make 40 '[' ^ "1" ^ String.make 40 ']' in
  (match (Tree.of_string ~max_depth:10 deep, Parser.parse ~max_depth:10 deep) with
  | Error e1, Error e2 ->
    Alcotest.(check string) "depth error renders identically"
      (render_error e2) (render_error e1)
  | _ -> Alcotest.fail "expected depth exhaustion on both routes");
  match Tree.of_string ~max_depth:50 deep with
  | Ok t -> Alcotest.(check int) "within ceiling" 41 (Tree.node_count t)
  | Error e -> Alcotest.failf "unexpected: %s" (render_error e)

(* Fuel parity: the direct route burns two units per value (parse +
   construction), exactly what threading one budget through parse and
   then of_value burns.  Exhaustion positions may differ between the
   routes (the combined route only fails in of_value once parsing is
   over), so only fail/succeed is compared. *)
let test_direct_fuel_agreement () =
  let rng = Jworkload.Prng.create 7 in
  let doc = Jworkload.Gen_json.sized rng 120 in
  let text = Printer.compact doc in
  let nodes = Value.size doc in
  List.iter
    (fun fuel ->
      let combined =
        let budget = Obs.Budget.create ~fuel () in
        match Parser.parse ~budget text with
        | Error _ -> `Fail
        | Ok v -> (
          match Tree.of_value ~budget v with
          | _ -> `Ok
          | exception Obs.Budget.Exhausted _ -> `Fail)
      in
      let direct =
        match Tree.of_string ~budget:(Obs.Budget.create ~fuel ()) text with
        | Ok _ -> `Ok
        | Error _ -> `Fail
      in
      Alcotest.(check bool)
        (Printf.sprintf "fuel %d agreement" fuel)
        true (combined = direct);
      if fuel >= 2 * nodes then
        Alcotest.(check bool)
          (Printf.sprintf "fuel %d suffices" fuel)
          true (direct = `Ok))
    [ 1; 2; 3; nodes; 2 * nodes - 1; 2 * nodes; 2 * nodes + 5 ]

let prop_direct_differential =
  QCheck.Test.make ~count:200 ~name:"of_string = of_value . parse"
    arbitrary_value
    (fun v ->
      let text = Printer.compact v in
      trees_identical (Tree.of_string_exn text)
        (Tree.of_value (Parser.parse_exn text)))

(* ------------------------------------------------------------------ *)
(* Resumable feed lexer: chunk-boundary differential                    *)
(* ------------------------------------------------------------------ *)

(* The feed contract: a token split at ANY byte offset lexes
   identically — token, position, error, everything — to one-shot
   lexing of the concatenated input.  These tests enforce it
   differentially: same corpus, every split point, plus random
   multi-splits, over tokens, errors, trees, fuel and stream-validation
   verdicts. *)

type lex_outcome = {
  lex_toks : (Lexer.position * Lexer.token) list;
  lex_err : (Lexer.position * string) option;
}

let oneshot_outcome input =
  let lx = Lexer.create input in
  let rec go acc =
    match Lexer.next lx with
    | _, Lexer.Eof -> { lex_toks = List.rev acc; lex_err = None }
    | t -> go (t :: acc)
    | exception Lexer.Error (p, m) ->
      { lex_toks = List.rev acc; lex_err = Some (p, m) }
  in
  go []

let feed_outcome chunks =
  let lx = Lexer.create_feed () in
  let acc = ref [] and err = ref None and stop = ref false in
  let drain () =
    let rec go () =
      if not !stop then
        match Lexer.pull lx with
        | `Token t ->
          acc := t :: !acc;
          go ()
        | `Await -> ()
        | `End -> stop := true
        | exception Lexer.Error (p, m) ->
          err := Some (p, m);
          stop := true
    in
    go ()
  in
  drain ();
  List.iter
    (fun c ->
      if not !stop then begin
        Lexer.feed_string lx c;
        drain ()
      end)
    chunks;
  if not !stop then begin
    Lexer.close lx;
    drain ()
  end;
  { lex_toks = List.rev !acc; lex_err = !err }

let pp_lex_outcome fmt o =
  List.iter
    (fun ((p : Lexer.position), t) ->
      Format.fprintf fmt "%d:%d:%d %a; " p.line p.col p.offset Lexer.pp_token t)
    o.lex_toks;
  match o.lex_err with
  | None -> Format.fprintf fmt "<ok>"
  | Some (p, m) -> Format.fprintf fmt "error %d:%d:%d %s" p.line p.col p.offset m

let check_feed_matches name input chunks =
  let a = oneshot_outcome input and b = feed_outcome chunks in
  if a.lex_toks <> b.lex_toks || a.lex_err <> b.lex_err then
    Alcotest.failf "feed differs from one-shot (%s) on %S:@.one-shot: %a@.feed: %a"
      name input pp_lex_outcome a pp_lex_outcome b

(* valid and invalid documents exercising every stateful corner of the
   lexer: escapes, surrogate pairs, raw multi-byte UTF-8, deep nesting,
   long numbers, keyword literals, dangling tokens of each kind *)
let feed_corpus =
  [ figure1;
    {|{"k":"a\n\tA\\\" b","u":"é中"}|};
    {|"𝄞 ok 😀"|};
    "[\"h\xc3\xa9llo\", \"\xe6\x97\xa5\xe6\x9c\xac\", \"\xf0\x9f\x90\x98\xf0\x9f\x90\x98\"]";
    String.make 30 '[' ^ "0" ^ String.make 30 ']';
    {|[0, -0, 123456789012345678, 4611686018427387903, 0.5, 1.25e10, 3.141592653589793e-10, 2E+2]|};
    {|[true,false,null,{},[]]|};
    "  { \"a\" : [ 1 ,\n 2 ] }\n";
    "";
    "   ";
    {|{"a":tru|};
    {|{"a":truX}|};
    {|"abc|};
    {|"a\q"|};
    {|"a\u12"|};
    {|"\ud834x"|};
    {|"\ud834A"|};
    {|"\udd1e"|};
    "\"ctl\x01\"";
    "1e999";
    "-1e999";
    "1e";
    "1.";
    "-";
    "[1,2";
    "{,}";
    "nul";
    "tr";
    "123456789012345678901234567890" ]

let test_feed_every_split () =
  List.iter
    (fun input ->
      let n = String.length input in
      for k = 0 to n do
        check_feed_matches
          (Printf.sprintf "split at %d" k)
          input
          [ String.sub input 0 k; String.sub input k (n - k) ]
      done)
    feed_corpus

let test_feed_byte_at_a_time () =
  List.iter
    (fun input ->
      check_feed_matches "1-byte chunks" input
        (List.init (String.length input) (fun i -> String.make 1 input.[i])))
    feed_corpus

let random_chunks rng input =
  let n = String.length input in
  let rec cuts acc i =
    if i >= n then List.rev acc
    else
      let j = min n (i + 1 + Jworkload.Prng.int rng 7) in
      cuts (String.sub input i (j - i) :: acc) j
  in
  cuts [] 0

let test_feed_random_splits () =
  let rng = Jworkload.Prng.create 99 in
  let corpus = Array.of_list feed_corpus in
  for _ = 1 to 200 do
    let input = corpus.(Jworkload.Prng.int rng (Array.length corpus)) in
    check_feed_matches "random chunks" input (random_chunks rng input)
  done;
  (* and on generated documents, pretty and compact *)
  for _ = 1 to 60 do
    let doc = Jworkload.Gen_json.sized rng (1 + Jworkload.Prng.int rng 200) in
    let text =
      if Jworkload.Prng.bool rng then Printer.compact doc
      else Printer.pretty doc
    in
    check_feed_matches "random doc" text (random_chunks rng text)
  done

(* A feed lexer driven by a refill callback delivering [chunk]-byte
   slices of [input]: the blocking adapter the Parser/Tree/validator
   machinery consumes. *)
let chunked_lexer input chunk =
  let pos = ref 0 in
  Lexer.create_feed
    ~refill:(fun lx ->
      if !pos >= String.length input then Lexer.close lx
      else begin
        let n = min chunk (String.length input - !pos) in
        Lexer.feed_string lx (String.sub input !pos n);
        pos := !pos + n
      end)
    ()

let test_feed_tree_differential () =
  let rng = Jworkload.Prng.create 2026 in
  let texts =
    feed_corpus
    @ List.init 30 (fun i ->
          Printer.compact (Jworkload.Gen_json.sized rng (1 + (i * 13))))
  in
  List.iter
    (fun text ->
      List.iter
        (fun chunk ->
          let oneshot = Tree.of_string text in
          let fed =
            Parser.wrap (fun () ->
                let lx = chunked_lexer text chunk in
                let t = Tree.of_lexer_exn ~budget:Obs.Budget.unlimited lx in
                (* of_lexer_exn leaves trailing input to the caller;
                   match of_string's end-of-input check by hand *)
                (match Lexer.next lx with
                | _, Lexer.Eof -> ()
                | pos, tok -> Parser.unexpected pos tok "end of input");
                t)
          in
          match (oneshot, fed) with
          | Ok a, Ok b ->
            if not (trees_identical a b) then
              Alcotest.failf "chunked tree differs (chunk %d) on %S" chunk text
          | Error e1, Error e2 ->
            Alcotest.(check string)
              (Printf.sprintf "chunked error agrees (chunk %d) on %S" chunk
                 text)
              (render_error e1) (render_error e2)
          | Ok _, Error e ->
            Alcotest.failf "one-shot ok, chunked rejected %S: %s" text
              (render_error e)
          | Error e, Ok _ ->
            Alcotest.failf "one-shot rejected %S (%s), chunked ok" text
              (render_error e))
        [ 1; 2; 3; 7; 64 ])
    texts

(* Fuel parity: the chunked route must charge exactly the fuel the
   one-shot route charges — checked by agreement at every exact fuel
   threshold around a document's total draw. *)
let test_feed_fuel_parity () =
  let rng = Jworkload.Prng.create 11 in
  let doc = Jworkload.Gen_json.sized rng 120 in
  let text = Printer.compact doc in
  let nodes = Value.size doc in
  List.iter
    (fun fuel ->
      let oneshot =
        match Tree.of_string ~budget:(Obs.Budget.create ~fuel ()) text with
        | Ok _ -> None
        | Error e -> Some (render_error e)
      in
      let fed =
        match
          Parser.wrap (fun () ->
              Tree.of_lexer_exn
                ~budget:(Obs.Budget.create ~fuel ())
                (chunked_lexer text 3))
        with
        | Ok _ -> None
        | Error e -> Some (render_error e)
      in
      Alcotest.(check (option string))
        (Printf.sprintf "fuel %d parity" fuel)
        oneshot fed)
    (List.init 8 (fun i -> max 1 ((2 * nodes) - 4 + i)) @ [ 1; 2; 3; nodes ])

let test_feed_misuse () =
  (* feeding a closed lexer is a programming error *)
  let lx = Lexer.create_feed () in
  Lexer.close lx;
  (match Lexer.feed_string lx "1" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "feed after close should raise Invalid_argument");
  (* pulling past the buffered bytes without a refill callback cannot
     block, so the blocking API refuses *)
  let lx = Lexer.create_feed () in
  Lexer.feed_string lx "[1,";
  (match Lexer.next lx with
  | _, Lexer.Lbracket -> ()
  | _ -> Alcotest.fail "expected '['");
  ignore (Lexer.next lx) (* Nat 1 *);
  ignore (Lexer.next lx) (* ',' *);
  (match Lexer.next lx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "next past the window should raise Invalid_argument");
  (* a refill that makes no progress is detected, not looped on *)
  let lx = Lexer.create_feed ~refill:(fun _ -> ()) () in
  match Lexer.next lx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "no-progress refill should raise Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Number overflow: 1e999 is an error, not infinity                     *)
(* ------------------------------------------------------------------ *)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_number_overflow () =
  List.iter
    (fun text ->
      match Lexer.tokenize text with
      | _ -> Alcotest.failf "expected overflow error on %S" text
      | exception Lexer.Error (_, m) ->
        Alcotest.(check bool)
          (Printf.sprintf "message mentions range on %S" text)
          true
          (contains_substring ~sub:"out of range" m))
    [ "1e999"; "-1e999"; "1e309"; "-1.5e400"; "[0, 12e999]" ];
  (* the tree and stream routes reject identically (same lexer) *)
  (match Tree.of_string "[1e999]" with
  | Ok _ -> Alcotest.fail "tree route accepted 1e999"
  | Error e ->
    Alcotest.(check bool) "tree route positions the error" true
      (contains_substring ~sub:"out of range" (render_error e)));
  (match Parser.parse ~mode:`Lenient "-1e999" with
  | Ok _ -> Alcotest.fail "lenient parse accepted -1e999"
  | Error e ->
    Alcotest.(check bool) "lenient parse rejects -1e999" true
      (contains_substring ~sub:"out of range" (render_error e)));
  (* boundary: the largest finite double still lexes as a float... *)
  (match Lexer.tokenize "1e308" with
  | [ (_, Lexer.Float f); (_, Lexer.Eof) ] ->
    Alcotest.(check bool) "1e308 finite" true (Float.is_finite f)
  | _ -> Alcotest.fail "1e308 should lex as one float");
  (* ...underflow to zero stays a value, not an error *)
  (match Lexer.tokenize "1e-999" with
  | [ (_, Lexer.Float f); (_, Lexer.Eof) ] ->
    Alcotest.(check (float 0.0)) "1e-999 underflows to 0" 0.0 f
  | _ -> Alcotest.fail "1e-999 should lex as one float");
  (* round-trip: admitted numbers still print back to themselves *)
  let v = Parser.parse_exn ~mode:`Lenient "[2e2, 9.007199254740991e15]" in
  Alcotest.(check string) "narrowed round-trip"
    "[200,9007199254740991]" (Printer.compact v)

(* pointer indices too large for [int] are a parse error, not a
   [Failure] escaping [of_string] (regression: raising int_of_string) *)
let test_pointer_index_overflow () =
  match Pointer.of_string "[99999999999999999999]" with
  | Ok _ -> Alcotest.fail "oversized pointer index accepted"
  | Error m ->
    Alcotest.(check bool) "positioned message" true
      (contains_substring ~sub:"out of range" m)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_print_parse_roundtrip;
      prop_pretty_parse_roundtrip;
      prop_tree_roundtrip;
      prop_tree_size;
      prop_tree_height;
      prop_subtree_equality_matches_value_equality;
      prop_value_at;
      prop_hash_sound;
      prop_compare_total_order;
      prop_diff_roundtrip;
      prop_diff_invert;
      prop_diff_roundtrip_mutations;
      prop_diff_invert_mutations;
      prop_xml_roundtrip;
      prop_xml_lookup_agrees;
      prop_parser_total;
      prop_parser_lenient_total;
      prop_pointer_total;
      prop_direct_differential ]

let () =
  Alcotest.run "jsont"
    [ ("value",
       [ Alcotest.test_case "smart constructors" `Quick test_value_smart_constructors;
         Alcotest.test_case "unordered equality" `Quick test_value_equality_unordered;
         Alcotest.test_case "accessors" `Quick test_value_accessors;
         Alcotest.test_case "sizes" `Quick test_value_sizes;
         Alcotest.test_case "check" `Quick test_value_check ]);
      ("parser",
       [ Alcotest.test_case "atoms" `Quick test_parse_atoms;
         Alcotest.test_case "escapes" `Quick test_parse_escapes;
         Alcotest.test_case "errors" `Quick test_parse_errors;
         Alcotest.test_case "model restriction" `Quick test_parse_model_restriction;
         Alcotest.test_case "depth limit" `Quick test_parse_depth_limit;
         Alcotest.test_case "parse_many" `Quick test_parse_many;
         Alcotest.test_case "error positions" `Quick test_error_positions ]);
      ("printer",
       [ Alcotest.test_case "roundtrips" `Quick test_print_parse_roundtrip ]);
      ("tree",
       [ Alcotest.test_case "basic" `Quick test_tree_basic;
         Alcotest.test_case "navigation" `Quick test_tree_navigation;
         Alcotest.test_case "formal conditions" `Quick test_tree_formal_conditions;
         Alcotest.test_case "tree domain closure" `Quick test_tree_addresses_prefix_closed;
         Alcotest.test_case "subtree equality" `Quick test_tree_subtree_equality;
         Alcotest.test_case "key order insensitive" `Quick test_tree_key_order_insensitive_equality;
         Alcotest.test_case "sizes and heights" `Quick test_tree_sizes_heights;
         Alcotest.test_case "parents and edges" `Quick test_tree_parent_edges ]);
      ("direct ingestion",
       [ Alcotest.test_case "differential fuzz" `Quick test_direct_differential;
         Alcotest.test_case "error agreement" `Quick test_direct_error_agreement;
         Alcotest.test_case "depth agreement" `Quick test_direct_depth_agreement;
         Alcotest.test_case "fuel agreement" `Quick test_direct_fuel_agreement ]);
      ("feed lexer",
       [ Alcotest.test_case "every split point" `Quick test_feed_every_split;
         Alcotest.test_case "byte at a time" `Quick test_feed_byte_at_a_time;
         Alcotest.test_case "random multi-splits" `Quick test_feed_random_splits;
         Alcotest.test_case "chunked tree differential" `Quick
           test_feed_tree_differential;
         Alcotest.test_case "chunked fuel parity" `Quick test_feed_fuel_parity;
         Alcotest.test_case "misuse" `Quick test_feed_misuse;
         Alcotest.test_case "number overflow" `Quick test_number_overflow;
         Alcotest.test_case "pointer index overflow" `Quick
           test_pointer_index_overflow ]);
      ("xml coding",
       [ Alcotest.test_case "basics" `Quick test_xml_coding;
         Alcotest.test_case "number text strictness" `Quick
           test_xml_number_texts ]);
      ("diff",
       [ Alcotest.test_case "basics" `Quick test_diff_basics;
         Alcotest.test_case "errors" `Quick test_diff_errors;
         Alcotest.test_case "root remove is a patch error" `Quick
           test_diff_root_remove_total ]);
      ("pointer",
       [ Alcotest.test_case "parse" `Quick test_pointer_parse;
         Alcotest.test_case "bracket whitespace" `Quick test_pointer_whitespace;
         Alcotest.test_case "minus zero index" `Quick test_pointer_minus_zero;
         Alcotest.test_case "prng roundtrip" `Quick test_pointer_prng_roundtrip;
         Alcotest.test_case "roundtrip" `Quick test_pointer_roundtrip;
         Alcotest.test_case "get" `Quick test_pointer_get ]);
      ("properties", qcheck_tests) ]
