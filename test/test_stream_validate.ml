(* Tests for Validate.Plan.run_stream: streaming schema validation over
   the token stream.  The decided relation must be exactly
   run_tree ∘ Tree.of_string (hence also the interpreted
   Validate.validates), with byte-identical rendered errors on
   malformed documents and matching budget-exhaustion outcomes. *)

module Value = Jsont.Value
module Parser = Jsont.Parser
module Printer = Jsont.Printer
module Tree = Jsont.Tree
module Plan = Jschema.Validate.Plan

let plan_of text = Plan.compile (Jschema.Parse.of_string_exn text)

let render e = Format.asprintf "%a" Parser.pp_error e

(* both engines, surfaced through the same (verdict | rendered error)
   shape so outcomes can be compared byte for byte *)
let via_stream plan text =
  match Parser.wrap (fun () -> Plan.run_stream plan text) with
  | Ok ok -> Ok ok
  | Error e -> Error (render e)

let via_tree plan text =
  match Tree.of_string text with
  | Ok t -> Ok (Plan.run_tree plan t)
  | Error e -> Error (render e)

let check_agree ?(schema_text = "") plan text =
  let s = via_stream plan text and t = via_tree plan text in
  let pp = function
    | Ok b -> Printf.sprintf "Ok %b" b
    | Error m -> "Error " ^ m
  in
  if s <> t then
    Alcotest.failf "stream %s <> tree %s on %s (schema %s)" (pp s) (pp t)
      (if String.length text > 200 then String.sub text 0 200 ^ "…" else text)
      schema_text

(* ------------------------------------------------------------------ *)
(* Table 1 keyword cases: every keyword, both verdicts                 *)
(* ------------------------------------------------------------------ *)

let test_keyword_cases () =
  List.iter
    (fun (keyword, schema_text, cases) ->
      let plan = plan_of schema_text in
      List.iter
        (fun (doc_text, expected) ->
          (match via_stream plan doc_text with
          | Ok got ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s" keyword doc_text)
              expected got
          | Error m ->
            Alcotest.failf "%s: stream error %s on %s" keyword m doc_text);
          check_agree ~schema_text plan doc_text)
        cases)
    Jworkload.Catalog.keyword_cases

(* ------------------------------------------------------------------ *)
(* Three-way fuzz: run_stream = run_tree = interpreted validates       *)
(* ------------------------------------------------------------------ *)

let test_fuzz_catalog () =
  let schema = Jschema.Parse.of_string_exn Jworkload.Catalog.catalog_schema in
  let plan = Plan.compile schema in
  let rng = Jworkload.Prng.create 4242 in
  for i = 1 to 500 do
    let doc = Jworkload.Catalog.catalog_doc rng in
    let text = Value.to_string doc in
    match via_stream plan text with
    | Error m -> Alcotest.failf "case %d: stream error %s" i m
    | Ok got ->
      let tree = Plan.run_tree plan (Tree.of_string_exn text) in
      let interp = Jschema.Validate.validates schema doc in
      if got <> tree || tree <> interp then
        Alcotest.failf "case %d: stream=%b tree=%b interp=%b" i got tree interp
  done

let test_fuzz_generated () =
  (* random documents against random schema/formula-derived schemas:
     exercises shapes the catalog generator never produces *)
  let rng = Jworkload.Prng.create 777 in
  let cfg =
    { Jworkload.Gen_formula.default with
      Jworkload.Gen_formula.size = 8;
      allow_nondet = true }
  in
  let checked = ref 0 in
  for i = 1 to 500 do
    let jsl = Jworkload.Gen_formula.jsl rng cfg in
    let schema =
      { Jschema.Schema.definitions = []; root = Jschema.Of_jsl.schema jsl }
    in
    match Jschema.Schema.well_formed schema with
    | Error _ -> ()
    | Ok () ->
      let plan = Plan.compile schema in
      let doc = Jworkload.Gen_json.sized rng (1 + Jworkload.Prng.int rng 80) in
      let text = Value.to_string doc in
      incr checked;
      (match via_stream plan text with
      | Error m -> Alcotest.failf "case %d: stream error %s" i m
      | Ok got ->
        let tree = Plan.run_tree plan (Tree.of_string_exn text) in
        let interp = Jschema.Validate.validates schema doc in
        if got <> tree || tree <> interp then
          Alcotest.failf "case %d: stream=%b tree=%b interp=%b on %s" i got
            tree interp text)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough well-formed schemas (%d/500)" !checked)
    true (!checked > 400)

(* ------------------------------------------------------------------ *)
(* Malformed documents: rendered errors byte-identical to the tree path *)
(* ------------------------------------------------------------------ *)

let test_error_identity () =
  let plan = plan_of Jworkload.Catalog.catalog_schema in
  let cases =
    [ {|{"a":1,}|}; {|[1,2|}; {|{"a" 1}|}; "nul"; {|{"a":1,"a":2}|};
      {|[1, -3]|}; {|"unterminated|}; {|{"a":tru}|}; {|[1,2]]|};
      {|{"\ud800x":1}|}; ""; "}"; "true"; "null"; "-3"; "1.5"; {|{"k":}|};
      {|[,]|}; {|{"a":1 "b":2}|}; {|{1:2}|}; {|{"id": 1e30}|};
      {|{"deep":{"deeper":{"x":[1,{"y":tru}]}}}|} ]
  in
  List.iter (fun text -> check_agree plan text) cases;
  (* and with a mutation sweep over a well-formed document: truncations
     and byte injections at every offset *)
  let rng = Jworkload.Prng.create 99 in
  let base = Value.to_string (Jworkload.Catalog.catalog_doc rng) in
  let base = String.sub base 0 (min 400 (String.length base)) in
  for cut = 0 to String.length base - 1 do
    check_agree plan (String.sub base 0 cut)
  done;
  String.iteri
    (fun i _ ->
      if i mod 7 = 0 then begin
        let b = Bytes.of_string base in
        Bytes.set b i '}';
        check_agree plan (Bytes.to_string b)
      end)
    base

(* ------------------------------------------------------------------ *)
(* Budget behavior                                                     *)
(* ------------------------------------------------------------------ *)

let test_depth_budget_identity () =
  (* the depth ceiling follows document nesting with parser-identical
     positions: the rendered exhaustion error matches the tree path *)
  let plan = plan_of {|{"type":"array"}|} in
  let deep =
    let b = Buffer.create 512 in
    for _ = 1 to 100 do Buffer.add_char b '[' done;
    Buffer.add_char b '1';
    for _ = 1 to 100 do Buffer.add_char b ']' done;
    Buffer.contents b
  in
  let stream =
    match
      Parser.wrap (fun () ->
          Plan.run_stream ~budget:(Obs.Budget.depth_limited 50) plan deep)
    with
    | Ok ok -> Alcotest.failf "depth 50 must exhaust, got %b" ok
    | Error e -> render e
  in
  let tree =
    match Tree.of_string ~budget:(Obs.Budget.depth_limited 50) deep with
    | Ok _ -> Alcotest.fail "depth 50 must exhaust the tree builder"
    | Error e -> render e
  in
  Alcotest.(check string) "depth exhaustion error identity" tree stream;
  (* a generous ceiling admits the document on both paths *)
  match
    Parser.wrap (fun () ->
        Plan.run_stream ~budget:(Obs.Budget.depth_limited 500) plan deep)
  with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "deep array must validate"
  | Error e -> Alcotest.failf "generous ceiling failed: %s" (render e)

let test_fuel_budget () =
  (* run_stream fuses parse and validation fuel into one budget; the
     contract is coarser than byte identity: ample fuel completes with
     the tree verdict, starvation raises a budget error, never a wrong
     verdict *)
  let plan = plan_of Jworkload.Catalog.catalog_schema in
  let rng = Jworkload.Prng.create 5 in
  let text = Value.to_string (Jworkload.Catalog.catalog_doc rng) in
  let expected = Plan.run_tree plan (Tree.of_string_exn text) in
  (match
     Parser.wrap (fun () ->
         Plan.run_stream ~budget:(Obs.Budget.create ~fuel:1_000_000 ()) plan
           text)
   with
  | Ok got -> Alcotest.(check bool) "ample fuel completes" expected got
  | Error e -> Alcotest.failf "ample fuel exhausted: %s" (render e));
  match
    Parser.wrap (fun () ->
        Plan.run_stream ~budget:(Obs.Budget.create ~fuel:5 ()) plan text)
  with
  | Ok _ -> Alcotest.fail "5 fuel must not cover a catalog document"
  | Error e ->
    let m = render e in
    Alcotest.(check bool) ("mentions fuel: " ^ m) true
      (try
         ignore (String.index m 'f');
         (* "fuel" appears in the budget description *)
         let rec has i =
           i + 4 <= String.length m && (String.sub m i 4 = "fuel" || has (i + 1))
         in
         has 0
       with Not_found -> false)

(* ------------------------------------------------------------------ *)
(* Spill paths: uniqueItems, container enums, $ref sharing             *)
(* ------------------------------------------------------------------ *)

let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was)
    f

let test_spill_unique_items () =
  with_metrics (fun () ->
      let plan = plan_of {|{"type":"array","uniqueItems":true}|} in
      (match via_stream plan {|[1,2,[3,{"a":1}],"x"]|} with
      | Ok true -> ()
      | other ->
        Alcotest.failf "distinct items must validate (%s)"
          (match other with Ok b -> string_of_bool b | Error m -> m));
      (match via_stream plan {|[1,2,{"a":[1]},2]|} with
      | Ok false -> ()
      | other ->
        Alcotest.failf "duplicate items must fail (%s)"
          (match other with Ok b -> string_of_bool b | Error m -> m));
      Alcotest.(check bool) "spill counted" true
        (Obs.Metrics.counter_value "validate.stream.spills" > 0))

let test_spill_container_enum () =
  let plan = plan_of {|{"enum":[[1,2],{"k":"v"},7,"s"]}|} in
  List.iter
    (fun (text, expected) ->
      match via_stream plan text with
      | Ok got ->
        Alcotest.(check bool) ("enum " ^ text) expected got;
        check_agree plan text
      | Error m -> Alcotest.failf "enum %s: %s" text m)
    [ ("[1,2]", true); ({|{"k":"v"}|}, true); ("7", true); ({|"s"|}, true);
      ("[1,3]", false); ({|{"k":"w"}|}, false); ("8", false); ("[]", false) ]

let test_spill_ref_sharing () =
  let plan = plan_of (Jworkload.Catalog.ref_sharing_schema 12) in
  let text = Value.to_string Jworkload.Catalog.ref_sharing_doc in
  check_agree plan text

let test_skip_metrics () =
  with_metrics (fun () ->
      (* an unconstrained subtree is fast-forwarded, and the skipped
         bytes are accounted *)
      let plan =
        plan_of {|{"type":"object","properties":{"a":{"type":"number"}}}|}
      in
      (match
         via_stream plan {|{"a":1,"pad":[[[["deep",{"k":"v"}]]],"tail"]}|}
       with
      | Ok true -> ()
      | other ->
        Alcotest.failf "doc must validate (%s)"
          (match other with Ok b -> string_of_bool b | Error m -> m));
      Alcotest.(check bool) "skipped bytes counted" true
        (Obs.Metrics.counter_value "validate.stream.skipped_bytes" > 0))

(* ------------------------------------------------------------------ *)
(* NDJSON line independence: a bad line must not poison its neighbours *)
(* ------------------------------------------------------------------ *)

let test_ndjson_fault_folding () =
  let plan = plan_of {|{"type":"object","required":["a"]}|} in
  let lines =
    [ {|{"a":1}|}; {|{"a":1,}|} (* malformed *); {|{"b":2}|} (* invalid *);
      "[1,2" (* truncated *); {|{"a":{"x":[1,2]}}|} ]
  in
  let results =
    List.map
      (fun line ->
        match
          Parser.wrap (fun () ->
              Plan.run_stream ~budget:(Obs.Budget.create ~fuel:10_000 ()) plan
                line)
        with
        | Ok ok -> if ok then "valid" else "INVALID"
        | Error _ -> "error"
      )
      lines
  in
  Alcotest.(check (list string)) "per-line outcomes, later lines unaffected"
    [ "valid"; "error"; "INVALID"; "error"; "valid" ]
    results

(* ------------------------------------------------------------------ *)
(* Chunked feed: run_lexer over a refill lexer = run_stream             *)
(* ------------------------------------------------------------------ *)

(* A feed lexer delivering [chunks] one refill at a time (empty chunks
   are coalesced forward: a refill must feed at least one byte or
   close). *)
let chunks_lexer chunks =
  let rest = ref chunks in
  Jsont.Lexer.create_feed
    ~refill:(fun lx ->
      let rec go () =
        match !rest with
        | [] -> Jsont.Lexer.close lx
        | c :: tl ->
          rest := tl;
          if c = "" then go () else Jsont.Lexer.feed_string lx c
      in
      go ())
    ()

let slices text size =
  let n = String.length text in
  let rec go i acc =
    if i >= n then List.rev acc
    else go (i + size) (String.sub text i (min size (n - i)) :: acc)
  in
  go 0 []

let via_feed ?budget plan chunks =
  match
    Parser.wrap (fun () -> Plan.run_lexer ?budget plan (chunks_lexer chunks))
  with
  | Ok ok -> Ok ok
  | Error e -> Error (render e)

let check_feed_agree plan text chunks tag =
  let oneshot = via_stream plan text and fed = via_feed plan chunks in
  if oneshot <> fed then
    let pp = function
      | Ok b -> Printf.sprintf "Ok %b" b
      | Error m -> "Error " ^ m
    in
    Alcotest.failf "chunked %s <> one-shot %s (%s) on %s" (pp fed) (pp oneshot)
      tag text

let test_feed_keyword_cases () =
  List.iter
    (fun (keyword, schema_text, cases) ->
      let plan = plan_of schema_text in
      List.iter
        (fun (doc_text, _) ->
          List.iter
            (fun size ->
              check_feed_agree plan doc_text (slices doc_text size)
                (Printf.sprintf "%s, %d-byte chunks" keyword size))
            [ 1; 7 ])
        cases)
    Jworkload.Catalog.keyword_cases

let test_feed_every_split () =
  (* catalog document and malformed cases, split at every byte offset —
     including splits inside spilled subtrees, skipped subtrees, string
     escapes and numbers *)
  let plan = plan_of Jworkload.Catalog.catalog_schema in
  let rng = Jworkload.Prng.create 31 in
  let doc = Value.to_string (Jworkload.Catalog.catalog_doc rng) in
  let doc =
    if String.length doc > 300 then String.sub doc 0 300 else doc
  in
  let cases =
    [ doc; {|{"a":tru}|}; {|[1, -3]|}; {|{"id": 1e30}|}; {|{"id": 1e999}|};
      {|{"tags":["a","a"]}|}; "" ]
  in
  List.iter
    (fun text ->
      let n = String.length text in
      for k = 0 to n do
        check_feed_agree plan text
          [ String.sub text 0 k; String.sub text k (n - k) ]
          (Printf.sprintf "split at %d" k)
      done)
    cases

let test_feed_fuel_identity () =
  (* fuel charges must be identical, not merely order-compatible:
     compare rendered outcomes at every exact fuel value up to the
     document's full draw *)
  let plan = plan_of {|{"type":"object","properties":{"a":{"type":"array","items":{"type":"integer"}}}}|} in
  let text = {|{"a":[1,2,3],"skip":{"x":[true,"s"]}}|} in
  for fuel = 1 to 40 do
    let budget () = Obs.Budget.create ~fuel () in
    let oneshot =
      match
        Parser.wrap (fun () -> Plan.run_stream ~budget:(budget ()) plan text)
      with
      | Ok ok -> Ok ok
      | Error e -> Error (render e)
    in
    let fed = via_feed ~budget:(budget ()) plan (slices text 3) in
    if oneshot <> fed then
      Alcotest.failf "fuel %d: chunked and one-shot outcomes differ" fuel
  done

let () =
  Alcotest.run "stream_validate"
    [ ("agreement",
       [ Alcotest.test_case "Table 1 keyword cases" `Quick test_keyword_cases;
         Alcotest.test_case "catalog fuzz, 500 docs" `Quick test_fuzz_catalog;
         Alcotest.test_case "generated schemas, 500 pairs" `Quick
           test_fuzz_generated ]);
      ("errors",
       [ Alcotest.test_case "byte-identical rendered errors" `Quick
           test_error_identity ]);
      ("budget",
       [ Alcotest.test_case "depth exhaustion identity" `Quick
           test_depth_budget_identity;
         Alcotest.test_case "fuel starvation" `Quick test_fuel_budget ]);
      ("spill",
       [ Alcotest.test_case "uniqueItems" `Quick test_spill_unique_items;
         Alcotest.test_case "container enum" `Quick test_spill_container_enum;
         Alcotest.test_case "$ref sharing" `Quick test_spill_ref_sharing;
         Alcotest.test_case "skip accounting" `Quick test_skip_metrics ]);
      ("feed",
       [ Alcotest.test_case "keyword cases, chunked" `Quick
           test_feed_keyword_cases;
         Alcotest.test_case "every split point" `Quick test_feed_every_split;
         Alcotest.test_case "exact fuel identity" `Quick
           test_feed_fuel_identity ]);
      ("ndjson",
       [ Alcotest.test_case "line-fault folding" `Quick
           test_ndjson_fault_folding ]) ]
