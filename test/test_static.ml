(* Tests for the static-analysis layer: the JSL concrete syntax, the
   simplifier, and containment/equivalence/disjointness checking. *)

open Jlogic
module Value = Jsont.Value

(* ------------------------------------------------------------------ *)
(* JSL concrete syntax                                                  *)
(* ------------------------------------------------------------------ *)

let test_jsl_parser () =
  let cases =
    [ "true"; "false"; "Obj"; "Arr & MinCh(2)"; "Str | Int";
      "!Unique"; "Pattern(/(01)+/)"; "Min(5) & Max(10) & MultOf(2)";
      "dia(/name/)Str"; "box(/a(b|c)a/)MultOf(2)"; "dia[0]Int";
      "box[2:5]Str"; "dia[1:*]true"; "~({\"a\":[1,2]})"; "~(3)";
      "$gamma | dia(/k/)$gamma"; "(Obj | Arr) & MaxCh(4)" ]
  in
  List.iter
    (fun s ->
      match Jsl.parse s with
      | Error m -> Alcotest.failf "parse %S: %s" s m
      | Ok f -> (
        let printed = Jsl.to_string f in
        match Jsl.parse printed with
        | Error m -> Alcotest.failf "reparse %S (of %S): %s" printed s m
        | Ok f' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %S -> %S" s printed)
            true (Jsl.equal f f')))
    cases;
  List.iter
    (fun s ->
      match Jsl.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error on %S" s)
    [ ""; "Min()"; "dia"; "dia(abc)true"; "~(oops)"; "Obj &"; "Frob";
      (* regression: oversized naturals escaped as Failure, not Error *)
      "dia[99999999999999999999]Int"; "MultOf(99999999999999999999)" ]

let gen_jsl =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        size = 10 }
    in
    Jworkload.Gen_formula.jsl rng cfg
  in
  QCheck.make ~print:Jsl.to_string gen

let prop_jsl_pp_parse =
  QCheck.Test.make ~name:"JSL pp/parse roundtrip" ~count:300 gen_jsl (fun f ->
      match Jsl.parse (Jsl.to_string f) with
      | Error m -> QCheck.Test.fail_reportf "reparse failed: %s" m
      | Ok f' ->
        (* regular expressions may be re-normalized by the parser, so
           compare semantically on a few documents *)
        let rng = Jworkload.Prng.create 7 in
        List.for_all
          (fun _ ->
            let d = Jworkload.Gen_json.sized rng 30 in
            Jsl.validates d f = Jsl.validates d f')
          [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)
(* Simplifier                                                           *)
(* ------------------------------------------------------------------ *)

let test_simplify_cases () =
  let check name input expected =
    Alcotest.(check string) name expected (Jsl.to_string (Simplify.jsl input))
  in
  check "double negation" (Jsl.Not (Jsl.Not (Jsl.Test Jsl.Is_obj))) "Obj";
  check "and unit" (Jsl.And (Jsl.True, Jsl.Test Jsl.Is_str)) "Str";
  check "or absorb" (Jsl.Or (Jsl.True, Jsl.Test Jsl.Is_str)) "true";
  check "kind clash" (Jsl.And (Jsl.Test Jsl.Is_obj, Jsl.Test Jsl.Is_arr)) "false";
  check "bound clash" (Jsl.And (Jsl.Test (Jsl.Min 5), Jsl.Test (Jsl.Max 3))) "false";
  check "child clash" (Jsl.And (Jsl.Test (Jsl.Min_ch 4), Jsl.Test (Jsl.Max_ch 2))) "false";
  check "dia ff" (Jsl.dia_key "a" Jsl.ff) "false";
  check "box true" (Jsl.box_key "a" Jsl.True) "true";
  check "empty range dia" (Jsl.Dia_range (3, Some 1, Jsl.True)) "false";
  check "empty range box" (Jsl.Box_range (3, Some 1, Jsl.ff)) "true";
  check "min zero" (Jsl.Test (Jsl.Min 0)) "Int";
  check "minch zero" (Jsl.Test (Jsl.Min_ch 0)) "true";
  check "dedupe" (Jsl.And (Jsl.Test Jsl.Is_obj, Jsl.Test Jsl.Is_obj)) "Obj";
  let jn name input expected =
    Alcotest.(check string) name expected (Jnl.to_string (Simplify.jnl input))
  in
  jn "exists self" (Jnl.Exists Jnl.Self) "true";
  jn "exists test" (Jnl.Exists (Jnl.Test (Jnl.Exists (Jnl.Key "a")))) "<.a>";
  jn "eps units" (Jnl.Exists (Jnl.Seq (Jnl.Self, Jnl.Seq (Jnl.Key "a", Jnl.Self)))) "<.a>";
  jn "word keys" (Jnl.Exists (Jnl.Keys (Rexp.Syntax.literal "ab"))) "<.ab>";
  jn "singleton range" (Jnl.Exists (Jnl.Range (2, Some 2))) "<[2]>";
  jn "star star" (Jnl.Exists (Jnl.Seq (Jnl.Star (Jnl.Star (Jnl.Key "a")), Jnl.Key "b")))
    "<(.a)*.b>"

let prop_simplify_jsl_preserves =
  QCheck.Test.make ~name:"Simplify.jsl preserves semantics and size" ~count:300
    gen_jsl (fun f ->
      let f' = Simplify.jsl f in
      let rng = Jworkload.Prng.create 11 in
      Jsl.size f' <= Jsl.size f
      && List.for_all
           (fun _ ->
             let d = Jworkload.Gen_json.sized rng 40 in
             Jsl.validates d f = Jsl.validates d f')
           [ 1; 2; 3; 4; 5; 6 ])

let gen_jnl =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        allow_star = true;
        allow_eq_paths = true;
        size = 10 }
    in
    Jworkload.Gen_formula.jnl rng cfg
  in
  QCheck.make ~print:Jnl.to_string gen

let prop_simplify_jnl_preserves =
  QCheck.Test.make ~name:"Simplify.jnl preserves semantics and size" ~count:300
    gen_jnl (fun f ->
      let f' = Simplify.jnl f in
      let rng = Jworkload.Prng.create 13 in
      Jnl.size f' <= Jnl.size f
      && List.for_all
           (fun _ ->
             let d = Jworkload.Gen_json.sized rng 40 in
             let t = Jsont.Tree.of_value d in
             let c1 = Jnl_eval.context t and c2 = Jnl_eval.context t in
             Bitset.equal (Jnl_eval.eval c1 f) (Jnl_eval.eval c2 f'))
           [ 1; 2; 3; 4; 5; 6 ])

(* ------------------------------------------------------------------ *)
(* Containment                                                          *)
(* ------------------------------------------------------------------ *)

let test_containment () =
  let num = Jsl.Test Jsl.Is_int in
  let small = Jsl.And (num, Jsl.Test (Jsl.Max 10)) in
  (match Contain.contained small num with
  | Contain.Yes -> ()
  | Contain.No w -> Alcotest.failf "bogus counterexample %s" (Value.to_string w)
  | Contain.Inconclusive m -> Alcotest.fail m);
  (match Contain.contained num small with
  | Contain.No w ->
    Alcotest.(check bool) "counterexample is a big number" true
      (Jsl.validates w num && not (Jsl.validates w small))
  | Contain.Yes -> Alcotest.fail "Int ⊑ Int∧Max(10) should fail"
  | Contain.Inconclusive m -> Alcotest.fail m);
  (match Contain.equivalent (Jsl.And (num, num)) num with
  | Contain.Yes -> ()
  | _ -> Alcotest.fail "ϕ∧ϕ ≡ ϕ");
  (match Contain.disjoint (Jsl.Test Jsl.Is_obj) (Jsl.Test Jsl.Is_arr) with
  | Contain.Yes -> ()
  | _ -> Alcotest.fail "Obj and Arr are disjoint");
  match Contain.disjoint num small with
  | Contain.No w ->
    Alcotest.(check bool) "shared witness" true
      (Jsl.validates w num && Jsl.validates w small)
  | _ -> Alcotest.fail "Int and small numbers overlap"

let test_containment_jnl () =
  let a = Jnl.parse_exn "<.a> & <.b>" in
  let b = Jnl.parse_exn "<.a>" in
  (match Contain.contained_jnl a b with
  | Ok Contain.Yes -> ()
  | Ok _ -> Alcotest.fail "a∧b ⊑ a"
  | Error m -> Alcotest.fail m);
  (match Contain.contained_jnl b a with
  | Ok (Contain.No w) ->
    Alcotest.(check bool) "witness" true
      (Jnl_eval.satisfies w b && not (Jnl_eval.satisfies w a))
  | Ok _ -> Alcotest.fail "a ⊑ a∧b must fail"
  | Error m -> Alcotest.fail m);
  match Contain.contained_jnl (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "b")) b with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EQ(α,β) must be rejected"

let prop_simplify_equivalent_by_containment =
  (* the simplifier's output is provably equivalent on the decidable
     fragment, checked by the containment engine itself *)
  QCheck.Test.make ~name:"containment engine certifies the simplifier" ~count:40
    gen_jsl (fun f ->
      QCheck.assume (not (Jsl.uses_unique f));
      let f' = Simplify.jsl f in
      match Contain.equivalent ~max_rounds:8 ~candidates_per_round:40_000 f f' with
      | Contain.Yes | Contain.Inconclusive _ -> true
      | Contain.No w ->
        QCheck.Test.fail_reportf "disagree on %s" (Value.to_string w))


(* ------------------------------------------------------------------ *)
(* NNF                                                                  *)
(* ------------------------------------------------------------------ *)

let prop_nnf =
  QCheck.Test.make ~name:"NNF: normal form, same semantics, linear growth"
    ~count:300 gen_jsl (fun f ->
      let f' = Nnf.jsl f in
      Nnf.is_nnf f'
      && Jsl.size f' <= 2 * Jsl.size f
      &&
      let rng = Jworkload.Prng.create 17 in
      List.for_all
        (fun _ ->
          let d = Jworkload.Gen_json.sized rng 40 in
          Jsl.validates d f = Jsl.validates d f')
        [ 1; 2; 3; 4; 5 ])

let test_nnf_cases () =
  let f = Jsl.parse_exn "!(dia(/a/)Str & !box(/b/)Int)" in
  let f' = Nnf.jsl f in
  Alcotest.(check bool) "is nnf" true (Nnf.is_nnf f');
  Alcotest.(check string) "pushed" "box(/a/)!Str | box(/b/)Int" (Jsl.to_string f');
  Alcotest.(check bool) "original not nnf" false (Nnf.is_nnf f)

(* ------------------------------------------------------------------ *)
(* Model enumeration                                                    *)
(* ------------------------------------------------------------------ *)

let test_models () =
  let f = Jsl.parse_exn "dia(/kind/)Pattern(/a|b/) & MaxCh(1)" in
  let ms = Jsl_sat.models ~limit:4 f in
  Alcotest.(check bool) "got several" true (List.length ms >= 2);
  (* all validate, all distinct *)
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (Printf.sprintf "model %s validates" (Value.to_string m))
        true (Jsl.validates m f))
    ms;
  let rec pairwise = function
    | [] -> true
    | x :: rest -> List.for_all (fun y -> not (Value.equal x y)) rest && pairwise rest
  in
  Alcotest.(check bool) "pairwise distinct" true (pairwise ms);
  (* a formula with exactly one model *)
  let one = Jsl.parse_exn "~(7)" in
  Alcotest.(check int) "singleton model space" 1
    (List.length (Jsl_sat.models ~limit:5 one));
  Alcotest.(check int) "unsat has no models" 0
    (List.length (Jsl_sat.models ~limit:5 (Jsl.parse_exn "Str & Int")))

(* ------------------------------------------------------------------ *)
(* Recursive JSL concrete syntax                                        *)
(* ------------------------------------------------------------------ *)

let test_jsl_rec_syntax () =
  let text =
    "$g1 = box(/.*/)$g2;\n$g2 = dia(/.*/)true & box(/.*/)$g1;\n$g1"
  in
  let delta = Jsl_rec.parse_exn text in
  Alcotest.(check int) "two defs" 2 (List.length delta.Jsl_rec.defs);
  (* round trip *)
  let delta' = Jsl_rec.parse_exn (Jsl_rec.to_string delta) in
  let docs = [ "{}"; {|{"a":{"b":{}}}|}; {|{"a":{}}|} ] in
  List.iter
    (fun d ->
      let v = Jsont.Parser.parse_exn d in
      Alcotest.(check bool) ("agree on " ^ d)
        (Jsl_rec.validates v delta)
        (Jsl_rec.validates v delta'))
    docs;
  (* strings and regexes containing ';' survive *)
  let tricky = {|$g = dia(/a;b/)~("x;y");
$g|} in
  let t = Jsl_rec.parse_exn tricky in
  Alcotest.(check int) "one def" 1 (List.length t.Jsl_rec.defs);
  (* errors *)
  List.iter
    (fun bad ->
      match Jsl_rec.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error on %S" bad)
    [ "$g = $g; $g" (* ill-formed: non-modal cycle *); "$ = true; $g"; "$g = ;true" ]


(* parsers of the logic layer are total on arbitrary input *)
let gen_garbage =
  QCheck.Gen.(
    oneof
      [ string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 30);
        map (String.concat " ")
          (list_size (int_range 0 10)
             (oneofl
                [ "dia"; "box"; "("; ")"; "/a/"; "true"; "&"; "|"; "!"; "$g";
                  "Min(3)"; "eq"; "<"; ">"; ".a"; "[1]"; "eps"; "*"; "~(1)" ])) ])

let arbitrary_garbage = QCheck.make ~print:String.escaped gen_garbage

let prop_logic_parsers_total =
  QCheck.Test.make ~name:"Jnl/Jsl/Jsl_rec/regex parsers never raise" ~count:500
    arbitrary_garbage (fun s ->
      (match Jsl.parse s with Ok _ | Error _ -> true)
      && (match Jnl.parse s with Ok _ | Error _ -> true)
      && (match Jnl.parse_path s with Ok _ | Error _ -> true)
      && (match Jsl_rec.parse s with Ok _ | Error _ -> true)
      && (match Rexp.Parse.parse s with Ok _ | Error _ -> true)
      && (match Jquery.Jsonpath.parse s with Ok _ | Error _ -> true)
      && (match Jquery.Mongo.parse_string s with Ok _ | Error _ -> true)
      && match Jschema.Parse.of_string s with Ok _ | Error _ -> true)

let () =
  Alcotest.run "static"
    [ ("jsl syntax",
       [ Alcotest.test_case "parser" `Quick test_jsl_parser;
         QCheck_alcotest.to_alcotest prop_jsl_pp_parse ]);
      ("simplify",
       [ Alcotest.test_case "cases" `Quick test_simplify_cases;
         QCheck_alcotest.to_alcotest prop_simplify_jsl_preserves;
         QCheck_alcotest.to_alcotest prop_simplify_jnl_preserves ]);
      ("nnf",
       [ Alcotest.test_case "cases" `Quick test_nnf_cases;
         QCheck_alcotest.to_alcotest prop_nnf ]);
      ("models",
       [ Alcotest.test_case "enumeration" `Quick test_models ]);
      ("jsl_rec syntax",
       [ Alcotest.test_case "roundtrip" `Quick test_jsl_rec_syntax ]);
      ("robustness",
       [ QCheck_alcotest.to_alcotest prop_logic_parsers_total ]);
      ("containment",
       [ Alcotest.test_case "jsl" `Quick test_containment;
         Alcotest.test_case "jnl" `Quick test_containment_jnl;
         QCheck_alcotest.to_alcotest prop_simplify_equivalent_by_containment ]) ]
