(* A JSONTestSuite-style conformance corpus for the parser (hand-curated
   in the spirit of seriot.ch/parsing_json): y_ cases must parse, n_
   cases must be rejected, i_ cases document our implementation-defined
   choices for the paper's restricted model. *)

let must_parse =
  [ ("y_object_empty", "{}");
    ("y_array_empty", "[]");
    ("y_number_zero", "0");
    ("y_number_simple", "123");
    ("y_string_empty", {|""|});
    ("y_string_space", {|" "|});
    ("y_string_unicode_escape", {|"A"|});
    ("y_string_surrogate_pair", {|"𝄞"|});
    ("y_string_escaped_quote", {|"\""|});
    ("y_string_backslash", {|"\\"|});
    ("y_string_slash_escape", {|"\/"|});
    ("y_string_all_escapes", {|"\"\\\/\b\f\n\r\t"|});
    ("y_string_utf8_direct", {|"éléphant 🐘"|});
    ("y_object_simple", {|{"a":1}|});
    ("y_object_nested", {|{"a":{"b":{"c":{}}}}|});
    ("y_object_many_types", {|{"n":0,"s":"x","a":[],"o":{}}|});
    ("y_array_nested", "[[[[[]]]]]");
    ("y_array_mixed", {|[1,"two",{"three":3},[4]]|});
    ("y_whitespace_everywhere", " { \"a\" : [ 1 , 2 ] } ");
    ("y_whitespace_tabs_newlines", "\t{\n\"a\"\r:\n1\t}");
    ("y_object_key_with_spaces", {|{"key with spaces":1}|});
    ("y_object_empty_key", {|{"":1}|});
    ("y_deep_nesting_64",
     String.concat "" (List.init 64 (fun _ -> "[")) ^ "1"
     ^ String.concat "" (List.init 64 (fun _ -> "]")));
    ("y_long_string", {|"|} ^ String.make 10000 'x' ^ {|"|});
    ("y_big_number", "1073741823") ]

let must_reject =
  [ ("n_empty_input", "");
    ("n_only_whitespace", "   ");
    ("n_unclosed_object", "{");
    ("n_unclosed_array", "[");
    ("n_unclosed_string", {|"abc|});
    ("n_mismatched_brackets", "[}");
    ("n_mismatched_braces", "{]");
    ("n_comma_only_object", "{,}");
    ("n_trailing_comma_array", "[1,]");
    ("n_trailing_comma_object", {|{"a":1,}|});
    ("n_leading_comma", "[,1]");
    ("n_double_comma", "[1,,2]");
    ("n_missing_colon", {|{"a" 1}|});
    ("n_double_colon", {|{"a"::1}|});
    ("n_unquoted_key", "{a:1}");
    ("n_single_quotes", "{'a':1}");
    ("n_numeric_key", "{1:2}");
    ("n_duplicate_keys", {|{"a":1,"a":2}|});
    ("n_duplicate_keys_nested", {|{"o":{"k":1,"k":1}}|});
    ("n_leading_zero", "012");
    ("n_plus_sign", "+1");
    ("n_hex_number", "0x1F");
    ("n_number_trailing_garbage", "123abc");
    ("n_bare_word", "hello");
    ("n_capital_true", "True");
    ("n_incomplete_literal", "tru");
    ("n_two_documents", "{} {}");
    ("n_trailing_garbage", "[1] x");
    ("n_bad_escape", {|"\q"|});
    ("n_bare_control_char", "\"\x01\"");
    ("n_incomplete_unicode_escape", {|"\u12"|});
    ("n_lone_high_surrogate", {|"\uD834"|});
    ("n_lone_low_surrogate", {|"\uDD1E"|});
    ("n_swapped_surrogates", {|"\uDD1E\uD834"|});
    ("n_exponent_no_digits", "1e");
    ("n_dot_no_digits", "1.");
    ("n_comment", "[1] // nope");
    ("n_nan", "NaN");
    ("n_infinity", "Infinity");
    (* overflow to ±infinity is a lexical error, not a silent infinity
       that would re-serialize as non-JSON *)
    ("n_number_overflow", "1e999");
    ("n_number_overflow_negative", "-1e999");
    ("n_number_overflow_int", "123456789012345678901234567890") ]

(* implementation-defined under the paper's restricted model: full JSON
   accepts these, the strict mode does not; lenient mode folds the
   literals into strings and whole floats into naturals *)
let model_restricted =
  [ ("i_true", "true", Some (Jsont.Value.Str "true"));
    ("i_false", "false", Some (Jsont.Value.Str "false"));
    ("i_null", "null", Some (Jsont.Value.Str "null"));
    ("i_negative_int", "-1", None);
    (* -0 is a negative literal, not a natural: strict rejects it like
       any other negative; lenient narrows it to 0 *)
    ("i_negative_zero", "-0", Some (Jsont.Value.Num 0));
    ("i_float", "1.5", None);
    ("i_whole_float", "2.0", Some (Jsont.Value.Num 2));
    ("i_exponent", "1e3", Some (Jsont.Value.Num 1000)) ]

let test_y () =
  List.iter
    (fun (name, text) ->
      match Jsont.Parser.parse text with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "%s rejected: %s" name
          (Format.asprintf "%a" Jsont.Parser.pp_error e))
    must_parse

let test_n () =
  List.iter
    (fun (name, text) ->
      match Jsont.Parser.parse text with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "%s accepted as %s" name (Jsont.Value.to_string v))
    must_reject

let test_i () =
  List.iter
    (fun (name, text, lenient_expectation) ->
      (match Jsont.Parser.parse text with
      | Error _ -> ()
      | Ok v ->
        Alcotest.failf "%s accepted strictly as %s" name (Jsont.Value.to_string v));
      match (Jsont.Parser.parse ~mode:`Lenient text, lenient_expectation) with
      | Ok v, Some expected ->
        Alcotest.(check bool)
          (name ^ " lenient value")
          true
          (Jsont.Value.equal v expected)
      | Error _, None -> ()
      | Ok v, None ->
        Alcotest.failf "%s accepted leniently as %s" name (Jsont.Value.to_string v)
      | Error e, Some _ ->
        Alcotest.failf "%s rejected leniently: %s" name
          (Format.asprintf "%a" Jsont.Parser.pp_error e))
    model_restricted

let test_roundtrip_corpus () =
  (* every accepted document round-trips through both printers *)
  List.iter
    (fun (name, text) ->
      let v = Jsont.Parser.parse_exn text in
      let again = Jsont.Parser.parse_exn (Jsont.Printer.compact v) in
      Alcotest.(check bool) (name ^ " compact roundtrip") true
        (Jsont.Value.equal v again);
      let again = Jsont.Parser.parse_exn (Jsont.Printer.pretty v) in
      Alcotest.(check bool) (name ^ " pretty roundtrip") true
        (Jsont.Value.equal v again))
    must_parse

let test_tree_corpus () =
  (* and builds a well-formed tree *)
  List.iter
    (fun (name, text) ->
      let v = Jsont.Parser.parse_exn text in
      let t = Jsont.Tree.of_value v in
      Alcotest.(check bool) (name ^ " tree roundtrip") true
        (Jsont.Value.equal v (Jsont.Tree.to_value t));
      Alcotest.(check int) (name ^ " node count") (Jsont.Value.size v)
        (Jsont.Tree.node_count t))
    must_parse

let () =
  Alcotest.run "conformance"
    [ ("corpus",
       [ Alcotest.test_case "y_ cases parse" `Quick test_y;
         Alcotest.test_case "n_ cases rejected" `Quick test_n;
         Alcotest.test_case "i_ cases per the model" `Quick test_i;
         Alcotest.test_case "roundtrips" `Quick test_roundtrip_corpus;
         Alcotest.test_case "tree building" `Quick test_tree_corpus ]) ]
