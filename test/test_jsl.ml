(* Tests for JSL (Section 5.2), recursive JSL (Section 5.3) and the
   J-automaton membership checker. *)

open Jlogic
module Value = Jsont.Value
module Tree = Jsont.Tree

let parse_doc = Jsont.Parser.parse_exn
let validates s f = Jsl.validates (parse_doc s) f

let re = Rexp.Parse.parse_exn

(* ------------------------------------------------------------------ *)
(* Node tests                                                           *)
(* ------------------------------------------------------------------ *)

let test_node_tests () =
  let checks =
    [ (true, "{}", Jsl.Test Jsl.Is_obj);
      (false, "[]", Jsl.Test Jsl.Is_obj);
      (true, "[]", Jsl.Test Jsl.Is_arr);
      (true, {|"hi"|}, Jsl.Test Jsl.Is_str);
      (true, "7", Jsl.Test Jsl.Is_int);
      (false, "7", Jsl.Test Jsl.Is_str);
      (true, {|"0101"|}, Jsl.Test (Jsl.Pattern (re "(01)+")));
      (false, {|"010"|}, Jsl.Test (Jsl.Pattern (re "(01)+")));
      (false, "3", Jsl.Test (Jsl.Pattern (re ".*")));
      (* Min/Max inclusive; the §5.1 example: maximum 12 & multipleOf 4
         describes 0, 4, 8, 12 *)
      (true, "12", Jsl.And (Jsl.Test (Jsl.Max 12), Jsl.Test (Jsl.Mult_of 4)));
      (true, "0", Jsl.And (Jsl.Test (Jsl.Max 12), Jsl.Test (Jsl.Mult_of 4)));
      (false, "16", Jsl.And (Jsl.Test (Jsl.Max 12), Jsl.Test (Jsl.Mult_of 4)));
      (false, "6", Jsl.And (Jsl.Test (Jsl.Max 12), Jsl.Test (Jsl.Mult_of 4)));
      (true, "5", Jsl.Test (Jsl.Min 5));
      (false, "4", Jsl.Test (Jsl.Min 5));
      (true, "5", Jsl.Test (Jsl.Max 5));
      (true, {|{"a":1,"b":2}|}, Jsl.Test (Jsl.Min_ch 2));
      (false, {|{"a":1}|}, Jsl.Test (Jsl.Min_ch 2));
      (true, {|[1,2,3]|}, Jsl.Test (Jsl.Max_ch 3));
      (false, {|[1,2,3,4]|}, Jsl.Test (Jsl.Max_ch 3));
      (true, {|"atom"|}, Jsl.Test (Jsl.Max_ch 0));
      (true, {|[1,2,3]|}, Jsl.Test Jsl.Unique);
      (false, {|[1,2,1]|}, Jsl.Test Jsl.Unique);
      (false, {|{"a":1}|}, Jsl.Test Jsl.Unique);  (* Unique only on arrays *)
      (true, {|[{"a":1},{"a":2}]|}, Jsl.Test Jsl.Unique);
      (false, {|[{"a":1,"b":2},{"b":2,"a":1}]|}, Jsl.Test Jsl.Unique);
      (true, {|{"x":1}|}, Jsl.Test (Jsl.Eq_doc (parse_doc {|{"x":1}|})));
      (false, {|{"x":2}|}, Jsl.Test (Jsl.Eq_doc (parse_doc {|{"x":1}|}))) ]
  in
  List.iteri
    (fun i (expected, doc, formula) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d: %s on %s" i (Jsl.to_string formula) doc)
        expected (validates doc formula))
    checks

let test_modalities () =
  let doc = {|{"name":"Sue","a1":10,"a2":20,"arr":[1,"two",3]}|} in
  let checks =
    [ (true, Jsl.dia_key "name" (Jsl.Test Jsl.Is_str));
      (false, Jsl.dia_key "name" (Jsl.Test Jsl.Is_int));
      (false, Jsl.dia_key "missing" Jsl.True);
      (true, Jsl.box_key "missing" Jsl.ff);  (* vacuous *)
      (true, Jsl.Dia_keys (re "a[0-9]", Jsl.Test (Jsl.Min 15)));
      (false, Jsl.Dia_keys (re "a[0-9]", Jsl.Test (Jsl.Min 25)));
      (true, Jsl.Box_keys (re "a[0-9]", Jsl.Test Jsl.Is_int));
      (false, Jsl.Box_keys (re "a[0-9]", Jsl.Test (Jsl.Min 15)));
      (true, Jsl.dia_key "arr" (Jsl.dia_idx 1 (Jsl.Test Jsl.Is_str)));
      (true, Jsl.dia_key "arr" (Jsl.Box_range (0, Some 0, Jsl.Test Jsl.Is_int)));
      (true, Jsl.dia_key "arr" (Jsl.Dia_range (0, None, Jsl.Test Jsl.Is_str)));
      (false, Jsl.dia_key "arr" (Jsl.Box_range (0, None, Jsl.Test Jsl.Is_int)));
      (true, Jsl.dia_key "arr" (Jsl.Box_range (5, None, Jsl.ff)));  (* vacuous *)
      (* □ over all keys on an array node is vacuous: no O-children *)
      (true, Jsl.dia_key "arr" (Jsl.Box_keys (Rexp.Syntax.all, Jsl.ff)));
      (* ◇ ranges on object nodes never hold: no A-children *)
      (false, Jsl.Dia_range (0, None, Jsl.True)) ]
  in
  List.iteri
    (fun i (expected, formula) ->
      Alcotest.(check bool)
        (Printf.sprintf "case %d: %s" i (Jsl.to_string formula))
        expected (validates doc formula))
    checks

let test_fragments () =
  Alcotest.(check bool) "unique flag" true
    (Jsl.uses_unique (Jsl.Not (Jsl.dia_key "a" (Jsl.Test Jsl.Unique))));
  Alcotest.(check bool) "no unique" false
    (Jsl.uses_unique (Jsl.dia_key "a" Jsl.True));
  Alcotest.(check bool) "det" true
    (Jsl.is_deterministic (Jsl.dia_key "a" (Jsl.box_idx 2 Jsl.True)));
  Alcotest.(check bool) "nondet regex" false
    (Jsl.is_deterministic (Jsl.Dia_keys (re "a|b", Jsl.True)));
  Alcotest.(check bool) "nondet range" false
    (Jsl.is_deterministic (Jsl.Dia_range (0, None, Jsl.True)));
  Alcotest.(check int) "modal depth" 3
    (Jsl.modal_depth
       (Jsl.dia_key "a" (Jsl.Or (Jsl.box_idx 0 (Jsl.dia_key "b" Jsl.True), Jsl.True))));
  Alcotest.(check bool) "free vars" true
    (Jsl.free_vars (Jsl.And (Jsl.Var "x", Jsl.dia_key "k" (Jsl.Var "y"))) = [ "x"; "y" ])

(* ------------------------------------------------------------------ *)
(* Recursive JSL                                                        *)
(* ------------------------------------------------------------------ *)

(* Example 2 of the paper: all root-to-leaf paths have even length *)
let even_paths =
  Jsl_rec.make_exn
    ~defs:
      [ ("g1", Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g2"));
        ( "g2",
          Jsl.And
            ( Jsl.Dia_keys (Rexp.Syntax.all, Jsl.True),
              Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g1") ) ) ]
    ~base:(Jsl.Var "g1")

let test_example2 () =
  let ok = [ "{}"; {|{"a":{"b":{}}}|}; {|{"a":{"b":{}},"c":{"d":{}}}|};
             {|{"a":{"b":{"c":{"d":{}}}}}|} ] in
  let bad = [ {|{"a":{}}|}; {|{"a":{"b":{"c":{}}}}|}; {|{"a":{"b":{}},"c":{}}|} ] in
  List.iter
    (fun d ->
      Alcotest.(check bool) ("even: " ^ d) true
        (Jsl_rec.validates (parse_doc d) even_paths))
    ok;
  List.iter
    (fun d ->
      Alcotest.(check bool) ("odd: " ^ d) false
        (Jsl_rec.validates (parse_doc d) even_paths))
    bad

(* Example 5: complete binary trees via ¬Unique (children equal) *)
let complete_binary =
  Jsl_rec.make_exn
    ~defs:
      [ ( "g",
          Jsl.Or
            ( Jsl.Not (Jsl.Dia_range (0, Some 0, Jsl.True)),
              Jsl.conj
                [ Jsl.Test (Jsl.Min_ch 2);
                  Jsl.Test (Jsl.Max_ch 2);
                  Jsl.Not (Jsl.Test Jsl.Unique);
                  Jsl.Box_range (0, Some 1, Jsl.Var "g") ] ) ) ]
    ~base:(Jsl.And (Jsl.Test Jsl.Is_arr, Jsl.Var "g"))

let rec perfect n : Value.t =
  if n = 0 then Value.Arr [] else Value.Arr [ perfect (n - 1); perfect (n - 1) ]

let test_example5 () =
  for n = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "perfect %d accepted" n)
      true
      (Jsl_rec.validates (perfect n) complete_binary)
  done;
  (* unbalanced: two children of different heights *)
  let lopsided = Value.Arr [ perfect 2; perfect 1 ] in
  Alcotest.(check bool) "lopsided rejected" false
    (Jsl_rec.validates lopsided complete_binary);
  let three = Value.Arr [ perfect 1; perfect 1; perfect 1 ] in
  Alcotest.(check bool) "ternary rejected" false
    (Jsl_rec.validates three complete_binary)

let test_well_formedness () =
  (* γ = ¬γ is ill-formed (the paper's paradigmatic example) *)
  (match Jsl_rec.make ~defs:[ ("g", Jsl.Not (Jsl.Var "g")) ] ~base:(Jsl.Var "g") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "γ = ¬γ must be rejected");
  (* cycles through modalities are fine (Example 3) *)
  (match
     Jsl_rec.make
       ~defs:[ ("g", Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g")) ]
       ~base:(Jsl.Var "g")
   with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "modal self-reference rejected: %s" m);
  (* undefined symbol *)
  (match Jsl_rec.make ~defs:[] ~base:(Jsl.Var "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined symbol must be rejected");
  (* duplicate definition *)
  (match
     Jsl_rec.make
       ~defs:[ ("g", Jsl.True); ("g", Jsl.ff) ]
       ~base:(Jsl.Var "g")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate definition must be rejected");
  (* indirect non-modal cycle *)
  match
    Jsl_rec.make
      ~defs:[ ("a", Jsl.Var "b"); ("b", Jsl.And (Jsl.Var "a", Jsl.True)) ]
      ~base:(Jsl.Var "a")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "indirect cycle must be rejected"

let test_unfold_example4 () =
  (* Example 4: evaluating Example 2's expression by unfolding agrees
     with the bottom-up algorithm *)
  let docs =
    [ "{}"; {|{"a":{}}|}; {|{"a":{"b":{}}}|}; {|{"a":{"b":{"c":{}}}}|};
      {|{"a":{"b":{}},"c":{"d":{"e":{"f":{}}}}}|} ]
  in
  List.iter
    (fun d ->
      let v = parse_doc d in
      Alcotest.(check bool) ("unfold agrees on " ^ d)
        (Jsl_rec.validates v even_paths)
        (Jsl_rec.validates_by_unfolding v even_paths))
    docs

let test_circuit_encoding () =
  (* (in0 ∧ ¬in1) ∨ in2 *)
  let c =
    { Hardness.gates =
        [| Hardness.G_input 0;
           Hardness.G_input 1;
           Hardness.G_input 2;
           Hardness.G_not 1;
           Hardness.G_and (0, 3);
           Hardness.G_or (4, 2) |];
      output = 5;
      n_inputs = 3 }
  in
  let delta = Hardness.circuit_to_jsl_rec c in
  for mask = 0 to 7 do
    let a = Array.init 3 (fun i -> mask land (1 lsl i) <> 0) in
    let doc = Hardness.circuit_doc a in
    Alcotest.(check bool)
      (Printf.sprintf "assignment %d" mask)
      (Hardness.circuit_eval c a)
      (Jsl_rec.validates doc delta)
  done;
  (* cyclic circuit rejected *)
  match
    Hardness.circuit_check
      { Hardness.gates = [| Hardness.G_and (0, 0) |]; output = 0; n_inputs = 1 }
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "self-referencing gate must be rejected"

(* ------------------------------------------------------------------ *)
(* J-automata                                                           *)
(* ------------------------------------------------------------------ *)

let gen_jsl_doc =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 50 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        size = 10 }
    in
    let formula = Jworkload.Gen_formula.jsl rng cfg in
    (doc, formula)
  in
  QCheck.make ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jsl.to_string f) gen

let prop_automaton_agrees =
  QCheck.Test.make ~name:"automaton membership = JSL evaluation" ~count:300
    gen_jsl_doc (fun (doc, formula) ->
      let tree = Tree.of_value doc in
      Jautomaton.accepts (Jautomaton.of_jsl formula) tree
      = Jsl.validates doc formula)

let gen_jsl_rec_doc =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 40 in
    let cfg =
      { Jworkload.Gen_formula.default with Jworkload.Gen_formula.size = 8 }
    in
    let delta = Jworkload.Gen_formula.jsl_rec rng cfg ~n_defs:3 in
    (doc, delta)
  in
  QCheck.make
    ~print:(fun (d, r) ->
      Value.to_string d ^ " |= " ^ Format.asprintf "%a" Jsl_rec.pp r)
    gen

let prop_rec_automaton_agrees =
  QCheck.Test.make ~name:"automaton = recursive JSL evaluation" ~count:200
    gen_jsl_rec_doc (fun (doc, delta) ->
      let tree = Tree.of_value doc in
      Jautomaton.accepts (Jautomaton.of_jsl_rec delta) tree
      = Jsl_rec.validates doc delta)

let prop_rec_unfold_agrees =
  QCheck.Test.make ~name:"bottom-up = unfolding semantics" ~count:150
    gen_jsl_rec_doc (fun (doc, delta) ->
      Jsl_rec.validates doc delta = Jsl_rec.validates_by_unfolding doc delta)

let prop_eval_memo_consistent =
  QCheck.Test.make ~name:"eval sets consistent with holds" ~count:200 gen_jsl_doc
    (fun (doc, formula) ->
      let ctx = Jsl.context (Tree.of_value doc) in
      let set = Jsl.eval ctx formula in
      Seq.for_all
        (fun n -> Bitset.mem set n = Jsl.holds ctx n formula)
        (Tree.nodes (Tree.of_value doc)))


let test_run_profile () =
  let doc = parse_doc {|{"a":1,"b":"s"}|} in
  let tree = Tree.of_value doc in
  let f = Jsl.dia_key "a" (Jsl.Test Jsl.Is_int) in
  let aut = Jautomaton.of_jsl f in
  let root_profile = Jautomaton.run_profile aut tree Tree.root in
  Alcotest.(check bool) "init state holds at the root" true
    (Bitset.mem root_profile (Jautomaton.init aut));
  (* the profile at the string leaf must not contain the init state *)
  let b = Option.get (Tree.lookup tree Tree.root "b") in
  Alcotest.(check bool) "init state fails at the leaf" false
    (Bitset.mem (Jautomaton.run_profile aut tree b) (Jautomaton.init aut));
  Alcotest.(check bool) "some states exist" true (Jautomaton.states aut > 0)

let prop_automaton_complement =
  (* alternating automata complement by negation: of_jsl(¬ϕ) accepts
     exactly the trees of_jsl(ϕ) rejects *)
  QCheck.Test.make ~name:"automaton complementation via ¬" ~count:200 gen_jsl_doc
    (fun (doc, formula) ->
      let tree = Tree.of_value doc in
      Jautomaton.accepts (Jautomaton.of_jsl (Jsl.Not formula)) tree
      = not (Jautomaton.accepts (Jautomaton.of_jsl formula) tree))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_automaton_agrees;
      prop_automaton_complement;
      prop_rec_automaton_agrees;
      prop_rec_unfold_agrees;
      prop_eval_memo_consistent ]

let () =
  Alcotest.run "jsl"
    [ ("node tests", [ Alcotest.test_case "all" `Quick test_node_tests ]);
      ("modalities", [ Alcotest.test_case "all" `Quick test_modalities ]);
      ("fragments", [ Alcotest.test_case "classification" `Quick test_fragments ]);
      ("recursion",
       [ Alcotest.test_case "Example 2 (even paths)" `Quick test_example2;
         Alcotest.test_case "Example 5 (complete binary)" `Quick test_example5;
         Alcotest.test_case "well-formedness" `Quick test_well_formedness;
         Alcotest.test_case "Example 4 (unfolding)" `Quick test_unfold_example4;
         Alcotest.test_case "circuits (Prop 9)" `Quick test_circuit_encoding ]);
      ("automata",
       [ Alcotest.test_case "run profiles" `Quick test_run_profile ]);
      ("properties", qcheck_tests) ]
