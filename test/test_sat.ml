(* Tests for the satisfiability procedures (Propositions 2, 5, 7, 10)
   and the hardness-instance encoders with their oracles. *)

open Jlogic
module Value = Jsont.Value

let lit v p = { Hardness.var = v; positive = p }

(* ------------------------------------------------------------------ *)
(* JSL satisfiability                                                   *)
(* ------------------------------------------------------------------ *)

let expect_sat name f =
  match Jsl_sat.satisfiable f with
  | Jautomaton.Sat v ->
    Alcotest.(check bool)
      (name ^ ": witness validates")
      true (Jsl.validates v f)
  | Jautomaton.Unsat -> Alcotest.failf "%s: expected Sat, got Unsat" name
  | Jautomaton.Unknown m -> Alcotest.failf "%s: expected Sat, got Unknown (%s)" name m

let expect_unsat name f =
  match Jsl_sat.satisfiable f with
  | Jautomaton.Unsat -> ()
  | Jautomaton.Sat v ->
    Alcotest.failf "%s: expected Unsat, got witness %s" name (Value.to_string v)
  | Jautomaton.Unknown m -> Alcotest.failf "%s: expected Unsat, got Unknown (%s)" name m

let re = Rexp.Parse.parse_exn

let test_jsl_sat_basic () =
  expect_sat "true" Jsl.True;
  expect_unsat "false" Jsl.ff;
  expect_sat "Str" (Jsl.Test Jsl.Is_str);
  expect_sat "pattern" (Jsl.Test (Jsl.Pattern (re "(01)+")));
  expect_unsat "empty pattern" (Jsl.Test (Jsl.Pattern (re "a[]")));
  expect_sat "number range" (Jsl.And (Jsl.Test (Jsl.Min 10), Jsl.Test (Jsl.Max 20)));
  expect_unsat "empty number range"
    (Jsl.And (Jsl.Test (Jsl.Min 21), Jsl.Test (Jsl.Max 20)));
  expect_sat "multiple in range"
    (Jsl.conj [ Jsl.Test (Jsl.Min 10); Jsl.Test (Jsl.Max 20); Jsl.Test (Jsl.Mult_of 7) ]);
  expect_unsat "no multiple in range"
    (Jsl.conj [ Jsl.Test (Jsl.Min 15); Jsl.Test (Jsl.Max 20); Jsl.Test (Jsl.Mult_of 7) ]);
  expect_sat "key exists" (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int));
  (* the Proposition 2 observation, in JSL form: the value under a
     cannot be both an array and an object *)
  expect_unsat "type clash under a key"
    (Jsl.And
       ( Jsl.dia_key "a" (Jsl.Test Jsl.Is_arr),
         Jsl.dia_key "a" (Jsl.Test Jsl.Is_obj) ));
  expect_sat "two keys, different types"
    (Jsl.And
       ( Jsl.dia_key "a" (Jsl.Test Jsl.Is_arr),
         Jsl.dia_key "b" (Jsl.Test Jsl.Is_obj) ));
  expect_unsat "child count clash"
    (Jsl.And (Jsl.Test (Jsl.Min_ch 3), Jsl.Test (Jsl.Max_ch 2)));
  expect_sat "array with required positions"
    (Jsl.And (Jsl.dia_idx 2 (Jsl.Test Jsl.Is_str), Jsl.Test Jsl.Is_arr));
  expect_unsat "dia under both kinds"
    (Jsl.And (Jsl.dia_idx 0 Jsl.True, Jsl.dia_key "x" Jsl.True));
  expect_sat "disjunction with one satisfiable side"
    (Jsl.Or (Jsl.ff, Jsl.dia_key "z" Jsl.True));
  expect_sat "enum" (Jsl.Test (Jsl.Eq_doc (Jsont.Parser.parse_exn {|{"a":[1,2]}|})));
  expect_unsat "enum conflicting with type"
    (Jsl.And (Jsl.Test (Jsl.Eq_doc (Value.Num 3)), Jsl.Test Jsl.Is_str))

let test_jsl_sat_patterns () =
  (* requires a key matching a(b|c)a with an even value AND the same
     object to have key aba with value 3 → clash *)
  expect_unsat "patternProperties clash"
    (Jsl.And
       ( Jsl.Box_keys (re "a(b|c)a", Jsl.Test (Jsl.Mult_of 2)),
         Jsl.dia_key "aba" (Jsl.And (Jsl.Test Jsl.Is_int, Jsl.Test (Jsl.Eq_doc (Value.Num 3)))) ));
  expect_sat "patternProperties compatible"
    (Jsl.And
       ( Jsl.Box_keys (re "a(b|c)a", Jsl.Test (Jsl.Mult_of 2)),
         Jsl.dia_key "aba" (Jsl.Test (Jsl.Eq_doc (Value.Num 4))) ));
  (* the PSPACE-hardness trigger: [X_{Σ*}] ∧ [X_e] unsat iff e universal;
     here box Σ* ff ∧ dia e true *)
  expect_unsat "no key can exist"
    (Jsl.And (Jsl.Box_keys (Rexp.Syntax.all, Jsl.ff), Jsl.Dia_keys (re "ab*", Jsl.True)))

let test_jsl_sat_unique () =
  expect_sat "unique array of 2 strings"
    (Jsl.conj
       [ Jsl.Test Jsl.Unique;
         Jsl.Test (Jsl.Min_ch 2);
         Jsl.Box_range (0, None, Jsl.Test Jsl.Is_str) ]);
  (* 3 pairwise-distinct children that must all equal the same document *)
  expect_unsat "unique vs forced equality"
    (Jsl.conj
       [ Jsl.Test Jsl.Unique;
         Jsl.Test (Jsl.Min_ch 2);
         Jsl.Box_range (0, None, Jsl.Test (Jsl.Eq_doc (Value.Num 7))) ])

let test_jsl_rec_sat () =
  (* even-depth trees exist *)
  let even =
    Jsl_rec.make_exn
      ~defs:
        [ ("g1", Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g2"));
          ( "g2",
            Jsl.And
              ( Jsl.Dia_keys (Rexp.Syntax.all, Jsl.True),
                Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g1") ) ) ]
      ~base:(Jsl.Var "g1")
  in
  (match Jsl_sat.satisfiable_rec even with
  | Jautomaton.Sat v ->
    Alcotest.(check bool) "even witness validates" true (Jsl_rec.validates v even)
  | Jautomaton.Unsat -> Alcotest.fail "even-depth schema is satisfiable"
  | Jautomaton.Unknown m -> Alcotest.failf "unknown: %s" m);
  (* a schema requiring an infinite descending chain is unsatisfiable *)
  let infinite =
    Jsl_rec.make_exn
      ~defs:[ ("g", Jsl.dia_key "next" (Jsl.Var "g")) ]
      ~base:(Jsl.Var "g")
  in
  match Jsl_sat.satisfiable_rec infinite with
  | Jautomaton.Unsat -> ()
  | Jautomaton.Sat v -> Alcotest.failf "impossible witness %s" (Value.to_string v)
  | Jautomaton.Unknown m -> Alcotest.failf "unknown: %s" m

(* ------------------------------------------------------------------ *)
(* 3SAT (Proposition 2)                                                 *)
(* ------------------------------------------------------------------ *)

let cnf_cases : (string * int * Hardness.cnf) list =
  [ ("unit", 1, [ [ lit 0 true ] ]);
    ("contradiction", 1, [ [ lit 0 true ]; [ lit 0 false ] ]);
    ( "simple sat",
      3,
      [ [ lit 0 true; lit 1 false; lit 2 true ];
        [ lit 0 false; lit 1 true; lit 2 false ];
        [ lit 1 true; lit 2 true; lit 0 false ] ] );
    ( "pigeonhole-ish unsat",
      2,
      [ [ lit 0 true; lit 1 true ];
        [ lit 0 true; lit 1 false ];
        [ lit 0 false; lit 1 true ];
        [ lit 0 false; lit 1 false ] ] ) ]

let test_3sat_encoding_vs_dpll () =
  List.iter
    (fun (name, nvars, cnf) ->
      let formula = Hardness.cnf_to_jnl ~nvars cnf in
      let expected = Hardness.dpll ~nvars cnf <> None in
      (match Jnl_sat.satisfiable formula with
      | Error m -> Alcotest.failf "%s: %s" name m
      | Ok (Jautomaton.Sat v) ->
        Alcotest.(check bool) (name ^ " expected sat") true expected;
        Alcotest.(check bool)
          (name ^ " witness satisfies the JNL formula")
          true (Jnl_eval.satisfies v formula)
      | Ok Jautomaton.Unsat ->
        Alcotest.(check bool) (name ^ " expected unsat") false expected
      | Ok (Jautomaton.Unknown m) -> Alcotest.failf "%s: unknown (%s)" name m);
      (* the assignment document matches the CNF truth value *)
      match Hardness.dpll ~nvars cnf with
      | Some a ->
        Alcotest.(check bool)
          (name ^ ": satisfying assignment's document validates")
          true
          (Jnl_eval.satisfies (Hardness.assignment_doc a) formula)
      | None -> ())
    cnf_cases

let test_3sat_random_agreement () =
  let rng = Jworkload.Prng.create 20260704 in
  for _ = 1 to 15 do
    let nvars = 3 + Jworkload.Prng.int rng 3 in
    let nclauses = 3 + Jworkload.Prng.int rng 6 in
    let cnf =
      List.init nclauses (fun _ ->
          List.init 3 (fun _ ->
              lit (Jworkload.Prng.int rng nvars) (Jworkload.Prng.bool rng)))
    in
    let expected = Hardness.dpll ~nvars cnf <> None in
    let formula = Hardness.cnf_to_jnl ~nvars cnf in
    match Jnl_sat.satisfiable formula with
    | Error m -> Alcotest.fail m
    | Ok (Jautomaton.Sat _) ->
      Alcotest.(check bool) "random cnf sat agrees" true expected
    | Ok Jautomaton.Unsat ->
      Alcotest.(check bool) "random cnf unsat agrees" false expected
    | Ok (Jautomaton.Unknown m) -> Alcotest.failf "unknown: %s" m
  done

(* ------------------------------------------------------------------ *)
(* QBF (Proposition 7)                                                  *)
(* ------------------------------------------------------------------ *)

let qbf_cases : (string * Hardness.qbf) list =
  [ ("∃x. x", { Hardness.prefix = [ `Exists ]; matrix = [ [ lit 0 true ] ] });
    ("∀x. x", { Hardness.prefix = [ `Forall ]; matrix = [ [ lit 0 true ] ] });
    ( "∀x∃y. x≠y",
      { Hardness.prefix = [ `Forall; `Exists ];
        matrix = [ [ lit 0 true; lit 1 true ]; [ lit 0 false; lit 1 false ] ] } );
    ( "∃y∀x. x≠y (false)",
      { Hardness.prefix = [ `Exists; `Forall ];
        matrix = [ [ lit 1 true; lit 0 true ]; [ lit 1 false; lit 0 false ] ] } );
    ( "∀x∀y. x∨y (false)",
      { Hardness.prefix = [ `Forall; `Forall ]; matrix = [ [ lit 0 true; lit 1 true ] ] } );
    ( "∃x∀y. x∨y",
      { Hardness.prefix = [ `Exists; `Forall ]; matrix = [ [ lit 0 true; lit 1 true ] ] } )
  ]

let test_qbf_oracle () =
  let expected = [ true; false; true; false; false; true ] in
  List.iter2
    (fun (name, q) e ->
      Alcotest.(check bool) ("oracle " ^ name) e (Hardness.qbf_eval q))
    qbf_cases expected

let test_qbf_encoding () =
  List.iter
    (fun (name, q) ->
      let expected = Hardness.qbf_eval q in
      let formula = Hardness.qbf_to_jsl q in
      match Jsl_sat.satisfiable formula with
      | Jautomaton.Sat v ->
        Alcotest.(check bool) (name ^ " expected true") true expected;
        Alcotest.(check bool)
          (name ^ " witness validates")
          true (Jsl.validates v formula)
      | Jautomaton.Unsat ->
        Alcotest.(check bool) (name ^ " expected false") false expected
      | Jautomaton.Unknown m -> Alcotest.failf "%s: unknown (%s)" name m)
    qbf_cases

let test_qbf_assignment_trees () =
  (* materialized winning strategies validate; losing ones do not *)
  let q =
    { Hardness.prefix = [ `Forall; `Exists ];
      matrix = [ [ lit 0 true; lit 1 true ]; [ lit 0 false; lit 1 false ] ] }
  in
  let formula = Hardness.qbf_to_jsl q in
  (* winning: y = ¬x *)
  let winning = Hardness.assignment_tree q (fun _ a -> not a.(0)) in
  Alcotest.(check bool) "winning strategy validates" true
    (Jsl.validates winning formula);
  (* losing: y = x *)
  let losing = Hardness.assignment_tree q (fun _ a -> a.(0)) in
  Alcotest.(check bool) "losing strategy fails" false (Jsl.validates losing formula)

(* ------------------------------------------------------------------ *)
(* Soundness fuzzing: brute-force model enumeration vs the solver      *)
(* ------------------------------------------------------------------ *)

(* All documents over a tiny universe: keys {a,b}, strings {"x"},
   numbers {0,1}, fanout ≤ 2, depth ≤ 2.  If any of them satisfies the
   formula, the solver must not answer Unsat (witnesses from the solver
   are already certified by re-validation, so this closes the other
   direction). *)
let small_universe =
  let atoms = [ Value.Num 0; Value.Num 1; Value.Str "x" ] in
  let rec level n =
    if n = 0 then atoms
    else
      let smaller = level (n - 1) in
      let arrays =
        List.concat_map
          (fun v1 -> Value.Arr [ v1 ] :: List.map (fun v2 -> Value.Arr [ v1; v2 ]) smaller)
          smaller
      in
      let objects =
        List.concat_map
          (fun v1 ->
            Value.Obj [ ("a", v1) ] :: Value.Obj [ ("b", v1) ]
            :: List.map (fun v2 -> Value.Obj [ ("a", v1); ("b", v2) ]) smaller)
          smaller
      in
      (atoms @ [ Value.Arr []; Value.Obj [] ]) @ arrays @ objects
  in
  level 2

let tiny_cfg =
  { Jworkload.Gen_formula.default with
    Jworkload.Gen_formula.keys = [ "a"; "b" ];
    strings = [ "x" ];
    max_int = 2;
    allow_nondet = true;
    size = 7 }

let gen_tiny_jsl =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 10_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    Jworkload.Gen_formula.jsl rng tiny_cfg
  in
  QCheck.make ~print:Jsl.to_string gen

let prop_sat_sound_vs_bruteforce =
  QCheck.Test.make ~name:"solver never refutes a brute-force-satisfiable formula"
    ~count:150 gen_tiny_jsl (fun f ->
      let brute = List.exists (fun d -> Jsl.validates d f) small_universe in
      match Jsl_sat.satisfiable ~max_rounds:10 ~candidates_per_round:60_000 f with
      | Jautomaton.Sat w ->
        (* certified internally, but double-check here too *)
        Jsl.validates w f
      | Jautomaton.Unsat -> not brute
      | Jautomaton.Unknown _ -> true (* inconclusive is always sound *))

let prop_sat_complete_on_small_models =
  QCheck.Test.make
    ~name:"brute-force-satisfiable formulas are found satisfiable" ~count:100
    gen_tiny_jsl (fun f ->
      let brute = List.exists (fun d -> Jsl.validates d f) small_universe in
      QCheck.assume brute;
      match Jsl_sat.satisfiable f with
      | Jautomaton.Sat _ -> true
      | Jautomaton.Unsat -> false
      | Jautomaton.Unknown _ -> true)

let fuzz_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sat_sound_vs_bruteforce; prop_sat_complete_on_small_models ]

let () =
  Alcotest.run "sat"
    [ ("jsl",
       [ Alcotest.test_case "basic" `Quick test_jsl_sat_basic;
         Alcotest.test_case "patterns" `Quick test_jsl_sat_patterns;
         Alcotest.test_case "unique" `Quick test_jsl_sat_unique;
         Alcotest.test_case "recursive" `Quick test_jsl_rec_sat ]);
      ("3sat",
       [ Alcotest.test_case "fixed instances" `Quick test_3sat_encoding_vs_dpll;
         Alcotest.test_case "random agreement" `Slow test_3sat_random_agreement ]);
      ("qbf",
       [ Alcotest.test_case "oracle" `Quick test_qbf_oracle;
         Alcotest.test_case "encoding agreement" `Slow test_qbf_encoding;
         Alcotest.test_case "assignment trees" `Quick test_qbf_assignment_trees ]);
      ("fuzz", fuzz_tests) ]

