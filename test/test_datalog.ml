(* Tests for the datalog subsystem: the engine (stratified semi-naive
   evaluation) and the Proposition 1 compilation of JNL. *)

open Jdatalog
module Jnl = Jlogic.Jnl
module Tree = Jsont.Tree
module Value = Jsont.Value

let parse_doc = Jsont.Parser.parse_exn

let doc = parse_doc {|{"a":{"b":{"c":1}},"d":[10,{"e":2}],"f":"s"}|}
let tree = Tree.of_value doc
let edb = Edb.of_tree tree

(* ------------------------------------------------------------------ *)
(* EDB                                                                  *)
(* ------------------------------------------------------------------ *)

let test_edb_relations () =
  Alcotest.(check int) "domain" (Tree.node_count tree) (Edb.domain edb);
  Alcotest.(check int) "one root" 1 (List.length (Edb.facts edb "root"));
  Alcotest.(check int) "node facts" (Tree.node_count tree)
    (List.length (Edb.facts edb "node"));
  (* key:a relates the root to the a-child *)
  (match Edb.facts edb "key:a" with
  | [ [ p; ch ] ] ->
    Alcotest.(check bool) "from root" true (p = Tree.root);
    Alcotest.(check bool) "to the a child" true
      (Tree.lookup tree Tree.root "a" = Some ch)
  | other -> Alcotest.failf "key:a has %d facts" (List.length other));
  (* the partition covers the domain exactly *)
  let count p = List.length (Edb.facts edb p) in
  Alcotest.(check int) "partition"
    (Edb.domain edb)
    (count "obj" + count "arr" + count "str" + count "int");
  (* child = O ∪ A *)
  Alcotest.(check int) "child edges" (Edb.domain edb - 1) (count "child");
  (* value predicates *)
  Alcotest.(check int) "val:int:10" 1 (count "val:int:10");
  Alcotest.(check int) "val:str:s" 1 (count "val:str:s")

let test_edb_externals () =
  let a = Option.get (Tree.lookup tree Tree.root "a") in
  Alcotest.(check bool) "eq reflexive" true (Edb.eval_external edb "eq" [ a; a ]);
  Alcotest.(check bool) "eq distinct" false
    (Edb.eval_external edb "eq" [ a; Tree.root ]);
  let p = Edb.intern_doc edb (parse_doc {|{"b":{"c":1}}|}) in
  Alcotest.(check bool) "eqdoc hit" true (Edb.eval_external edb p [ a ]);
  Alcotest.(check bool) "eqdoc miss" false (Edb.eval_external edb p [ Tree.root ]);
  Alcotest.(check bool) "externals flagged" true
    (Edb.is_external edb "eq" && Edb.is_external edb p);
  Alcotest.(check bool) "stored not external" false (Edb.is_external edb "key:a")

let test_edb_interned_relations () =
  let kl = Edb.intern_key_lang edb (Rexp.Parse.parse_exn "a|d") in
  Alcotest.(check int) "keylang a|d" 2 (List.length (Edb.facts edb kl));
  let d = Option.get (Tree.lookup tree Tree.root "d") in
  let ir = Edb.intern_idx_range edb 1 None in
  Alcotest.(check bool) "idxrange 1:inf" true
    (List.mem [ d; Option.get (Tree.nth tree d 1) ] (Edb.facts edb ir));
  let neg = Edb.intern_idx_neg edb (-1) in
  Alcotest.(check bool) "idxneg -1 = last" true
    (List.mem [ d; Option.get (Tree.nth tree d (-1)) ] (Edb.facts edb neg))

(* ------------------------------------------------------------------ *)
(* Engine                                                               *)
(* ------------------------------------------------------------------ *)

open Ast

let test_transitive_closure () =
  (* descendant(x,y) via recursion over child *)
  let program =
    { rules =
        [ atom "desc" [ v "X"; v "Y" ] <-- [ Pos (atom "child" [ v "X"; v "Y" ]) ];
          atom "desc" [ v "X"; v "Z" ]
          <-- [ Pos (atom "desc" [ v "X"; v "Y" ]);
                Pos (atom "child" [ v "Y"; v "Z" ]) ] ];
      goal = "desc" }
  in
  Alcotest.(check bool) "recursive" true (is_recursive program);
  match Engine.run edb program with
  | Error m -> Alcotest.fail m
  | Ok tuples ->
    (* every non-root node is a descendant of the root, and pair count
       equals the sum over nodes of their proper-descendant counts *)
    let expected =
      Seq.fold_left (fun acc n -> acc + Tree.size tree n - 1) 0 (Tree.nodes tree)
    in
    Alcotest.(check int) "descendant pairs" expected (List.length tuples);
    Alcotest.(check bool) "root reaches a leaf" true
      (List.exists
         (function [ r; _ ] -> r = Tree.root | _ -> false)
         tuples)

let test_stratified_negation () =
  (* leaves: nodes with no children *)
  let program =
    { rules =
        [ atom "haschild" [ v "X" ] <-- [ Pos (atom "child" [ v "X"; v "Y" ]) ];
          atom "leaf" [ v "X" ]
          <-- [ Pos (atom "node" [ v "X" ]); Neg (atom "haschild" [ v "X" ]) ] ];
      goal = "leaf" }
  in
  (match Engine.stratify program with
  | Ok strata -> Alcotest.(check int) "two strata" 2 (List.length strata)
  | Error m -> Alcotest.fail m);
  match Engine.query_nodes edb program with
  | Error m -> Alcotest.fail m
  | Ok leaves ->
    let expected =
      Seq.fold_left
        (fun acc n -> if Tree.arity tree n = 0 then acc + 1 else acc)
        0 (Tree.nodes tree)
    in
    Alcotest.(check int) "leaf count" expected (List.length leaves)

let test_unstratifiable () =
  let program =
    { rules =
        [ atom "p" [ v "X" ]
          <-- [ Pos (atom "node" [ v "X" ]); Neg (atom "p" [ v "X" ]) ] ];
      goal = "p" }
  in
  match Engine.run edb program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "p :- not p must be rejected"

let test_unsafe_rule () =
  let program =
    { rules = [ atom "p" [ v "X"; v "Y" ] <-- [ Pos (atom "root" [ v "X" ]) ] ];
      goal = "p" }
  in
  (match Engine.run edb program with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound head variable must be rejected");
  Alcotest.(check bool) "static safety check agrees" true
    (Result.is_error
       (check_safety (atom "p" [ v "X"; v "Y" ] <-- [ Pos (atom "root" [ v "X" ]) ])))

let test_constants_and_goal () =
  let program =
    { rules =
        [ atom "it" [ v "Y" ] <-- [ Pos (atom "key:a" [ c Tree.root; v "Y" ]) ] ];
      goal = "it" }
  in
  match Engine.query_nodes edb program with
  | Ok [ n ] ->
    Alcotest.(check bool) "resolved the a child" true
      (Tree.lookup tree Tree.root "a" = Some n)
  | Ok other -> Alcotest.failf "%d results" (List.length other)
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Compilation (Proposition 1)                                          *)
(* ------------------------------------------------------------------ *)

let nodes_by_direct f =
  let ctx = Jlogic.Jnl_eval.context tree in
  Jlogic.Bitset.elements (Jlogic.Jnl_eval.eval ctx f)

let check_agreement name f =
  match Compile.eval tree f with
  | Error m -> Alcotest.failf "%s: %s" name m
  | Ok via_datalog ->
    Alcotest.(check (list int)) name (nodes_by_direct f) via_datalog

let test_compile_basics () =
  check_agreement "true" Jnl.True;
  check_agreement "exists key" (Jnl.Exists (Jnl.Key "a"));
  check_agreement "chain" (Jnl.Exists (Jnl.Seq (Jnl.Key "a", Jnl.Key "b")));
  check_agreement "index" (Jnl.Exists (Jnl.Seq (Jnl.Key "d", Jnl.Idx 1)));
  check_agreement "negative index" (Jnl.Exists (Jnl.Seq (Jnl.Key "d", Jnl.Idx (-1))));
  check_agreement "negation" (Jnl.Not (Jnl.Exists (Jnl.Key "a")));
  check_agreement "and/or"
    (Jnl.Or
       ( Jnl.And (Jnl.Exists (Jnl.Key "a"), Jnl.Exists (Jnl.Key "d")),
         Jnl.Exists (Jnl.Key "zzz") ));
  check_agreement "eq doc" (Jnl.Eq_doc (Jnl.Key "f", Value.Str "s"));
  check_agreement "eq paths" (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "a"));
  check_agreement "keys regex" (Jnl.Exists (Jnl.Keys (Rexp.Parse.parse_exn "a|f")));
  check_agreement "range" (Jnl.Exists (Jnl.Seq (Jnl.Key "d", Jnl.Range (0, None))));
  check_agreement "test in path"
    (Jnl.Exists (Jnl.Seq (Jnl.Key "a", Jnl.Test (Jnl.Exists (Jnl.Key "b")))));
  check_agreement "star"
    (Jnl.Exists (Jnl.Seq (Jnl.Star (Jquery.Jsonpath.any_child), Jnl.Key "e")))

let test_fragment_classes () =
  (* deterministic JNL lands in non-recursive monadic datalog *)
  let det = Jnl.parse_exn {|eq(.a.b.c, 1) & !<.zzz>|} in
  let p = Compile.jnl (Edb.of_tree tree) det in
  Alcotest.(check bool) "monadic" true (is_monadic p);
  Alcotest.(check bool) "non-recursive" false (is_recursive p);
  (* Star leaves the class through a recursive binary predicate *)
  let star = Jnl.Exists (Jnl.Star (Jnl.Key "a")) in
  let p2 = Compile.jnl (Edb.of_tree tree) star in
  Alcotest.(check bool) "recursive" true (is_recursive p2)

let gen_pair =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 40 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        allow_star = true;
        allow_eq_paths = true;
        size = 8 }
    in
    (doc, Jworkload.Gen_formula.jnl rng cfg)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jnl.to_string f)
    gen

let prop_datalog_agrees =
  QCheck.Test.make ~name:"datalog evaluation = direct evaluation" ~count:200
    gen_pair (fun (doc, f) ->
      let tr = Tree.of_value doc in
      match Compile.eval tr f with
      | Error m -> QCheck.Test.fail_reportf "compile/run error: %s" m
      | Ok via_datalog ->
        let ctx = Jlogic.Jnl_eval.context tr in
        via_datalog = Jlogic.Bitset.elements (Jlogic.Jnl_eval.eval ctx f))

let () =
  Alcotest.run "datalog"
    [ ("edb",
       [ Alcotest.test_case "relations" `Quick test_edb_relations;
         Alcotest.test_case "externals" `Quick test_edb_externals;
         Alcotest.test_case "interned relations" `Quick test_edb_interned_relations ]);
      ("engine",
       [ Alcotest.test_case "transitive closure" `Quick test_transitive_closure;
         Alcotest.test_case "stratified negation" `Quick test_stratified_negation;
         Alcotest.test_case "unstratifiable" `Quick test_unstratifiable;
         Alcotest.test_case "unsafe rules" `Quick test_unsafe_rule;
         Alcotest.test_case "constants" `Quick test_constants_and_goal ]);
      ("compile",
       [ Alcotest.test_case "agreement cases" `Quick test_compile_basics;
         Alcotest.test_case "fragment classes" `Quick test_fragment_classes ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_datalog_agrees ]) ]
