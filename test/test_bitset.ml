(* Tests for the dense node-set substrate underlying all formula
   evaluators — checked against a reference implementation over sorted
   integer lists. *)

open Jlogic

let gen_sets =
  let open QCheck.Gen in
  let gen st =
    let n = int_range 1 200 st in
    let pick st = List.init n (fun i -> if bool st then Some i else None) in
    let to_list l = List.filter_map Fun.id l in
    (n, to_list (pick st), to_list (pick st))
  in
  QCheck.make
    ~print:(fun (n, a, b) ->
      Printf.sprintf "n=%d a=[%s] b=[%s]" n
        (String.concat ";" (List.map string_of_int a))
        (String.concat ";" (List.map string_of_int b)))
    gen

(* reference operations over sorted lists *)
let ref_union a b = List.sort_uniq Int.compare (a @ b)
let ref_inter a b = List.filter (fun x -> List.mem x b) a
let ref_diff a b = List.filter (fun x -> not (List.mem x b)) a
let ref_compl n a = List.filter (fun x -> not (List.mem x a)) (List.init n Fun.id)

let prop_ops =
  QCheck.Test.make ~name:"union/inter/diff/complement match the reference"
    ~count:500 gen_sets (fun (n, a, b) ->
      let sa = Bitset.of_list n a and sb = Bitset.of_list n b in
      Bitset.elements (Bitset.union sa sb) = ref_union a b
      && Bitset.elements (Bitset.inter sa sb) = ref_inter (List.sort_uniq Int.compare a) b
      && Bitset.elements (Bitset.diff sa sb) = ref_diff (List.sort_uniq Int.compare a) b
      && Bitset.elements (Bitset.complement sa) = ref_compl n a)

let prop_cardinal =
  QCheck.Test.make ~name:"cardinal = |elements|" ~count:300 gen_sets
    (fun (n, a, _) ->
      let s = Bitset.of_list n a in
      Bitset.cardinal s = List.length (Bitset.elements s))

let prop_union_into =
  QCheck.Test.make ~name:"union_into reports change correctly" ~count:300
    gen_sets (fun (n, a, b) ->
      let sa = Bitset.of_list n a and sb = Bitset.of_list n b in
      let target = Bitset.copy sb in
      let changed = Bitset.union_into sa ~into:target in
      Bitset.elements target = ref_union a b
      && changed = not (Bitset.equal target sb))

let prop_inter_into =
  QCheck.Test.make ~name:"inter_into matches inter and reports change" ~count:300
    gen_sets (fun (n, a, b) ->
      let sa = Bitset.of_list n a and sb = Bitset.of_list n b in
      let target = Bitset.copy sb in
      let changed = Bitset.inter_into sa ~into:target in
      Bitset.elements target = ref_inter (List.sort_uniq Int.compare b) a
      && changed = not (Bitset.equal target sb)
      && Bitset.equal target (Bitset.inter sa sb))

let prop_boundaries =
  QCheck.Test.make ~name:"boundary membership at word edges" ~count:100
    QCheck.(int_range 1 400)
    (fun n ->
      let s = Bitset.create n in
      Bitset.add s 0;
      Bitset.add s (n - 1);
      Bitset.mem s 0
      && Bitset.mem s (n - 1)
      && (n < 3 || not (Bitset.mem s (n / 2)))
      && Bitset.cardinal (Bitset.full n) = n
      &&
      (Bitset.remove s 0;
       (not (Bitset.mem s 0)) && Bitset.cardinal s = if n = 1 then 0 else 1))

let test_full_complement () =
  (* full/complement respect the capacity even across word boundaries *)
  List.iter
    (fun n ->
      let f = Bitset.full n in
      Alcotest.(check int) (Printf.sprintf "full %d" n) n (Bitset.cardinal f);
      Alcotest.(check int)
        (Printf.sprintf "complement of full %d" n)
        0
        (Bitset.cardinal (Bitset.complement f));
      Alcotest.(check bool) "empty is empty" true
        (Bitset.is_empty (Bitset.create n)))
    [ 1; 62; 63; 64; 65; 126; 127; 128; 1000 ]

let test_iter_order () =
  let s = Bitset.of_list 100 [ 99; 3; 41; 0 ] in
  Alcotest.(check (list int)) "elements sorted" [ 0; 3; 41; 99 ] (Bitset.elements s);
  let acc = ref [] in
  Bitset.iter (fun i -> acc := i :: !acc) s;
  Alcotest.(check (list int)) "iter ascending" [ 99; 41; 3; 0 ] !acc;
  Alcotest.(check int) "fold" 143 (Bitset.fold ( + ) s 0)

let () =
  Alcotest.run "bitset"
    [ ("unit",
       [ Alcotest.test_case "full/complement boundaries" `Quick test_full_complement;
         Alcotest.test_case "iteration order" `Quick test_iter_order ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_ops; prop_cardinal; prop_union_into; prop_inter_into;
           prop_boundaries ]) ]
