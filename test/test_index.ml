(* Tests for the persistent corpus index: differential agreement with
   the reparse-everything baseline over a PRNG corpus and query set,
   byte-identical builds across lane counts, fault injection
   (bit-flips, truncations, forged header counts, corrupt postings),
   stale-corpus rejection, and the tree label-index single-build
   regression. *)

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)
let read_file path = In_channel.with_open_bin path In_channel.input_all

let temp_path suffix =
  let p = Filename.temp_file "jindex_test" suffix in
  p

(* ---- corpus + query set ---------------------------------------------------- *)

(* One NDJSON corpus shared by most tests: PRNG documents (API records
   and generic shapes), scalar and array lines, a blank line and a
   malformed line. *)
let corpus_text =
  lazy
    (let rng = Jworkload.Prng.create 42 in
     let buf = Buffer.create (1 lsl 16) in
     let addv v =
       Buffer.add_string buf (Jsont.Printer.compact v);
       Buffer.add_char buf '\n'
     in
     for i = 1 to 40 do
       addv (Jworkload.Gen_json.api_record rng (1 + (i mod 5)))
     done;
     Buffer.add_string buf "\n";
     Buffer.add_string buf "{\"broken\": \n";
     Buffer.add_string buf "[1,2,3]\n";
     Buffer.add_string buf "\"just a string\"\n";
     Buffer.add_string buf "7\n";
     Buffer.add_string buf "{}\n";
     for i = 1 to 40 do
       addv (Jworkload.Gen_json.sized rng (20 + (7 * i)))
     done;
     (* unterminated last line *)
     Buffer.add_string buf "{\"tail\":[{\"sku\":\"z9\"}]}";
     Buffer.contents buf)

let handcrafted_queries =
  [ "true";
    "<.name.first>";
    "<.name>";
    "<.orders[0]>";
    "<.orders[0].lines[0].sku>";
    "<.no_such_key_anywhere>";
    "!<.name.first>";
    "<.name.first> & <.orders[0]>";
    "<.name.first> | <.tail>";
    "!(<.name> & !<.age>)";
    "eq(.name.first, \"John\")";
    "eq(.name.first, \"John\") | eq(.name.first, \"Sue\")";
    "<.orders[0:*]?(eq(.status, \"shipped\"))>";
    "<.hobbies[-1]>";
    "<(.~/.*/)*.sku>";
    "eq(.name.first, .name.last)";
    "<.tail[0].sku>";
    (* eq pushdown: numbers, the root path, absent values, negation and
       conjunction around a value-postings seed *)
    "eq(.orders[0].order_id, 1000)";
    "eq(.age, 42)";
    "eq(eps, 7)";
    "eq(eps, \"just a string\")";
    "eq(.name.first, \"NoSuchNameXYZ\")";
    "!eq(.name.first, \"John\")";
    "eq(.name.first, \"John\") & <.orders[0]>";
    "<.id> & eq(.name.first, \"Sue\")" ]

let query_set () =
  let rng = Jworkload.Prng.create 7 in
  let cfg = { Jworkload.Gen_formula.default with size = 8 } in
  let random =
    List.init 10 (fun _ -> Jworkload.Gen_formula.jnl rng cfg)
  in
  List.map Jlogic.Jnl.parse_exn handcrafted_queries @ random

(* the per-line baseline: exactly the computation [eval --files-from]
   runs per file *)
let baseline_verdict phi text =
  match Jsont.Tree.of_string ~budget:(Obs.Budget.create ()) text with
  | Error e -> "error: " ^ Format.asprintf "%a" Jsont.Parser.pp_error e
  | Ok tree -> (
    match
      let ctx = Jlogic.Jnl_eval.context ~budget:(Obs.Budget.create ()) tree in
      Jlogic.Jnl_eval.holds ctx Jsont.Tree.root phi
    with
    | b -> string_of_bool b
    | exception Failure m -> "error: " ^ m
    | exception Obs.Budget.Exhausted r -> "error: " ^ Obs.Budget.describe r)

let corpus_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter (fun (_, line) -> String.trim line <> "")

let build_corpus_index () =
  let corpus = temp_path ".ndjson" in
  let idx = temp_path ".idx" in
  write_file corpus (Lazy.force corpus_text);
  (match Jindex.Writer.build ~jobs:2 ~corpus ~output:idx () with
  | Ok _ -> ()
  | Error m -> Alcotest.fail ("build failed: " ^ m));
  (corpus, idx)

let open_exn ?verify_body idx =
  match Jindex.Reader.open_ ?verify_body idx with
  | Ok r -> r
  | Error m -> Alcotest.fail ("open failed: " ^ m)

(* ---- differential: index-backed vs reparse-everything ---------------------- *)

let test_differential () =
  let _corpus, idx = build_corpus_index () in
  let r = open_exn idx in
  let lines = corpus_lines (Lazy.force corpus_text) in
  Alcotest.(check int) "every non-blank line indexed" (List.length lines)
    (Jindex.Reader.ndocs r);
  List.iter
    (fun phi ->
      let expect =
        List.map (fun (_, line) -> baseline_verdict phi line) lines
      in
      match Jindex.Query.run ~jobs:2 r phi with
      | Error m ->
        Alcotest.fail
          (Printf.sprintf "query %s failed: %s" (Jlogic.Jnl.to_string phi) m)
      | Ok verdicts ->
        let got =
          Array.to_list (Array.map Jindex.Query.verdict_string verdicts)
        in
        Alcotest.(check (list string))
          ("agreement on " ^ Jlogic.Jnl.to_string phi)
          expect got)
    (query_set ())

(* line numbers reported by the index match the corpus line numbering
   (blank and malformed lines included in the count) *)
let test_linenos () =
  let _corpus, idx = build_corpus_index () in
  let r = open_exn idx in
  let lines = corpus_lines (Lazy.force corpus_text) in
  List.iteri
    (fun d (lineno, _) ->
      Alcotest.(check int)
        (Printf.sprintf "doc %d lineno" d)
        lineno
        (Jindex.Reader.doc_lineno r d))
    lines

(* ---- eq pushdown ------------------------------------------------------------- *)

let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled was)
    (fun () ->
      Obs.Metrics.reset ();
      f ())

(* an eq over a rooted core path is answered postings-only: value
   postings seed it, nothing but the error-flagged lines reparses *)
let test_eq_zero_reparse () =
  let _corpus, idx = build_corpus_index () in
  let r = open_exn idx in
  let errs = ref 0 in
  for d = 0 to Jindex.Reader.ndocs r - 1 do
    if Jindex.Reader.doc_err r d then incr errs
  done;
  with_metrics (fun () ->
      (match Jindex.Query.run r (Jlogic.Jnl.parse_exn "eq(.name.first, \"John\")") with
      | Error m -> Alcotest.fail m
      | Ok verdicts ->
        Alcotest.(check bool) "some matches" true
          (Array.exists (fun v -> v = Jindex.Query.True) verdicts));
      Alcotest.(check int) "postings-only plan" 1
        (Obs.Metrics.counter_value "index.query.postings_only");
      Alcotest.(check bool) "value postings seeded the query" true
        (Obs.Metrics.counter_value "index.query.value_hits" > 0);
      Alcotest.(check int) "only parse-error lines reparsed" !errs
        (Obs.Metrics.counter_value "index.query.reparsed"))

(* a --no-values index still answers every eq query correctly (via the
   filtered plan) and reports values as disabled *)
let test_no_values () =
  let corpus = temp_path ".ndjson" in
  let idx = temp_path ".idx" in
  write_file corpus (Lazy.force corpus_text);
  (match Jindex.Writer.build ~jobs:2 ~no_values:true ~corpus ~output:idx () with
  | Ok s ->
    Alcotest.(check int) "no value table" 0 s.Jindex.Writer.values;
    Alcotest.(check int) "no value postings" 0 s.Jindex.Writer.value_postings
  | Error m -> Alcotest.fail ("build failed: " ^ m));
  let r = open_exn idx in
  Alcotest.(check bool) "values disabled" false (Jindex.Reader.has_values r);
  let lines = corpus_lines (Lazy.force corpus_text) in
  List.iter
    (fun q ->
      let phi = Jlogic.Jnl.parse_exn q in
      let expect = List.map (fun (_, line) -> baseline_verdict phi line) lines in
      match Jindex.Query.run r phi with
      | Error m -> Alcotest.fail (q ^ ": " ^ m)
      | Ok verdicts ->
        Alcotest.(check (list string)) ("agreement on " ^ q) expect
          (Array.to_list (Array.map Jindex.Query.verdict_string verdicts)))
    [ "eq(.name.first, \"John\")"; "eq(eps, 7)";
      "eq(.name.first, \"NoSuchNameXYZ\")"; "!eq(.age, 42)" ]

(* a tiny value cap drops the hot postings lists; the capped pairs fall
   back to filtered reparse and still agree with the baseline *)
let test_value_cap_fallback () =
  let corpus = temp_path ".ndjson" in
  let idx = temp_path ".idx" in
  write_file corpus (Lazy.force corpus_text);
  (match Jindex.Writer.build ~jobs:2 ~value_cap:1 ~corpus ~output:idx () with
  | Ok s ->
    Alcotest.(check bool) "cap dropped entries" true
      (s.Jindex.Writer.value_dropped > 0)
  | Error m -> Alcotest.fail ("build failed: " ^ m));
  let r = open_exn idx in
  Alcotest.(check bool) "capped pairs visible" true
    (Jindex.Reader.capped_pairs r > 0);
  let lines = corpus_lines (Lazy.force corpus_text) in
  List.iter
    (fun q ->
      let phi = Jlogic.Jnl.parse_exn q in
      let expect = List.map (fun (_, line) -> baseline_verdict phi line) lines in
      match Jindex.Query.run r phi with
      | Error m -> Alcotest.fail (q ^ ": " ^ m)
      | Ok verdicts ->
        Alcotest.(check (list string)) ("agreement on " ^ q) expect
          (Array.to_list (Array.map Jindex.Query.verdict_string verdicts)))
    (* SKU-0-0 recurs across records: capped at 1; a first name recurs
       too — both must take the fallback and stay correct *)
    [ "eq(.orders[0].lines[0].sku, \"SKU-0-0\")"; "eq(.name.first, \"John\")" ]

(* number canonicalization at the index boundary: every notation that
   parses to the same natural shares one value id, and mixed-notation
   corpora agree with the baseline (under the default strict mode,
   non-canonical notations are parse-error lines in BOTH paths) *)
let test_number_canonicalization () =
  (* the narrowing contract the value table relies on *)
  List.iter
    (fun text ->
      Alcotest.(check bool)
        (text ^ " narrows to 1")
        true
        (Jsont.Parser.parse_exn ~mode:`Lenient text = Jsont.Value.Num 1))
    [ "1"; "1.0"; "1e0"; "10e-1"; "0.1e1" ];
  let corpus = temp_path ".ndjson" in
  let idx = temp_path ".idx" in
  let text = "1\n1.0\n1e0\n7\n1\n" in
  write_file corpus text;
  (match Jindex.Writer.build ~corpus ~output:idx () with
  | Ok s ->
    (* strict mode: 1.0 and 1e0 are parse-error lines; the two plain 1s
       dedupe to one id, so the table holds exactly {1, 7} *)
    Alcotest.(check int) "two distinct values" 2 s.Jindex.Writer.values;
    Alcotest.(check int) "parse errors flagged" 2 s.Jindex.Writer.errors
  | Error m -> Alcotest.fail ("build failed: " ^ m));
  let r = open_exn idx in
  let lines = corpus_lines text in
  List.iter
    (fun q ->
      let phi = Jlogic.Jnl.parse_exn q in
      let expect = List.map (fun (_, line) -> baseline_verdict phi line) lines in
      match Jindex.Query.run r phi with
      | Error m -> Alcotest.fail (q ^ ": " ^ m)
      | Ok verdicts ->
        Alcotest.(check (list string)) ("agreement on " ^ q) expect
          (Array.to_list (Array.map Jindex.Query.verdict_string verdicts)))
    [ "eq(eps, 1)"; "eq(eps, 7)"; "eq(eps, 2)"; "true" ]

(* the planner reorders a conjunction whose cheap side is written last,
   without changing any verdict *)
let test_planner_reorders () =
  let _corpus, idx = build_corpus_index () in
  let r = open_exn idx in
  let q = "<.id> & eq(.name.first, \"Sue\")" in
  let phi = Jlogic.Jnl.parse_exn q in
  let lines = corpus_lines (Lazy.force corpus_text) in
  let expect = List.map (fun (_, line) -> baseline_verdict phi line) lines in
  with_metrics (fun () ->
      (match Jindex.Query.run r phi with
      | Error m -> Alcotest.fail m
      | Ok verdicts ->
        Alcotest.(check (list string)) ("agreement on " ^ q) expect
          (Array.to_list (Array.map Jindex.Query.verdict_string verdicts)));
      Alcotest.(check bool) "planner changed the evaluation order" true
        (Obs.Metrics.counter_value "index.plan.reorders" > 0))

(* ---- determinism across lane counts ---------------------------------------- *)

let test_jobs_determinism () =
  let corpus = temp_path ".ndjson" in
  write_file corpus (Lazy.force corpus_text);
  let build jobs =
    let out = temp_path ".idx" in
    (match Jindex.Writer.build ~jobs ~corpus ~output:out () with
    | Ok _ -> ()
    | Error m -> Alcotest.fail ("build failed: " ^ m));
    read_file out
  in
  let one = build 1 in
  let four = build 4 in
  Alcotest.(check bool) "jobs 1 vs jobs 4 byte-identical" true (one = four);
  Alcotest.(check bool) "rebuild byte-identical" true (one = build 1)

(* ---- fault injection -------------------------------------------------------- *)

(* every single-byte flip anywhere in the file must be rejected at
   open: header flips by the header checksum, body flips by the body
   checksum, checksum-field flips by the mismatch they create *)
let test_bit_flips () =
  let _corpus, idx = build_corpus_index () in
  let original = read_file idx in
  let mutant = temp_path ".idx" in
  let n = String.length original in
  let step = max 1 (n / 256) in
  let pos = ref 0 in
  while !pos < n do
    let b = Bytes.of_string original in
    Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x41));
    write_file mutant (Bytes.to_string b);
    (match Jindex.Reader.open_ mutant with
    | Error _ -> ()
    | Ok _ ->
      Alcotest.fail
        (Printf.sprintf "byte flip at %d accepted by open_" !pos));
    pos := !pos + step
  done

let test_truncations () =
  let _corpus, idx = build_corpus_index () in
  let original = read_file idx in
  let mutant = temp_path ".idx" in
  let n = String.length original in
  List.iter
    (fun len ->
      write_file mutant (String.sub original 0 len);
      match Jindex.Reader.open_ mutant with
      | Error _ -> ()
      | Ok _ ->
        Alcotest.fail
          (Printf.sprintf "truncation to %d bytes accepted by open_" len))
    [ 0; 8; Jindex.Layout.header_bytes - 1; Jindex.Layout.header_bytes;
      n / 2; n - 1 ]

(* forge header fields and re-sign the header checksum: the structural
   validation behind the checksum must still reject the file *)
let test_forged_counts () =
  let _corpus, idx = build_corpus_index () in
  let original = read_file idx in
  let mutant = temp_path ".idx" in
  let forge field v =
    let b = Bytes.of_string original in
    Jindex.Layout.set_u64 b field v;
    let sum =
      Jindex.Layout.checksum_bytes Jindex.Layout.checksum_init b 0
        Jindex.Layout.Field.header_checksum
    in
    Jindex.Layout.set_u64 b Jindex.Layout.Field.header_checksum sum;
    write_file mutant (Bytes.to_string b);
    match Jindex.Reader.open_ ~verify_body:false mutant with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "forged header accepted by open_"
  in
  (* oversized counts, far beyond any plausible file *)
  forge Jindex.Layout.Field.ndocs (1 lsl 50);
  forge Jindex.Layout.Field.nnodes (1 lsl 50);
  forge Jindex.Layout.Field.key_entries (1 lsl 50);
  (* sane-looking counts whose sections overrun the actual file *)
  forge Jindex.Layout.Field.nnodes 1_000_000;
  forge Jindex.Layout.Field.ndocs 1_000_000;
  (* misaligned / out-of-file section offsets *)
  forge Jindex.Layout.Field.key_post 3;
  forge Jindex.Layout.Field.parents (1 lsl 40);
  (* v2 value sections: oversized counts and bad offsets *)
  forge Jindex.Layout.Field.nvals (1 lsl 50);
  forge Jindex.Layout.Field.npairs (1 lsl 50);
  forge Jindex.Layout.Field.val_entries (1 lsl 50);
  forge Jindex.Layout.Field.valtab_blob 3;
  forge Jindex.Layout.Field.val_post (1 lsl 40)

(* unknown header flag bits (a u32, so not [forge]-able with set_u64
   without clobbering value_cap) must be refused even re-signed *)
let test_forged_flags () =
  let _corpus, idx = build_corpus_index () in
  let b = Bytes.of_string (read_file idx) in
  Jindex.Layout.set_u32 b Jindex.Layout.Field.flags 0xFE;
  let sum =
    Jindex.Layout.checksum_bytes Jindex.Layout.checksum_init b 0
      Jindex.Layout.Field.header_checksum
  in
  Jindex.Layout.set_u64 b Jindex.Layout.Field.header_checksum sum;
  let mutant = temp_path ".idx" in
  write_file mutant (Bytes.to_string b);
  match Jindex.Reader.open_ ~verify_body:false mutant with
  | Error m ->
    Alcotest.(check bool) ("names the flag bits: " ^ m) true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "unknown flag bits accepted"

(* a pair-table entry naming a value id beyond the table is structural
   corruption the open-time sweep catches even without the body
   checksum *)
let test_forged_pair_table () =
  let _corpus, idx = build_corpus_index () in
  let b = Bytes.of_string (read_file idx) in
  let npairs = Jindex.Layout.get_u64 b Jindex.Layout.Field.npairs in
  Alcotest.(check bool) "corpus has value pairs" true (npairs > 0);
  let o_pair = Jindex.Layout.get_u64 b Jindex.Layout.Field.pair_table in
  Jindex.Layout.set_u32 b (o_pair + 4) 0x0FFFFFFF;
  let mutant = temp_path ".idx" in
  write_file mutant (Bytes.to_string b);
  match Jindex.Reader.open_ ~verify_body:false mutant with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range pair value id accepted"

(* a v1-magic file gets the versioned refusal, not a checksum complaint
   or a crash — the version check runs before the header checksum
   because older headers place every field elsewhere *)
let test_v1_version_refusal () =
  let _corpus, idx = build_corpus_index () in
  let b = Bytes.of_string (read_file idx) in
  Bytes.set b 7 '1';
  Jindex.Layout.set_u32 b Jindex.Layout.Field.version 1;
  let mutant = temp_path ".idx" in
  write_file mutant (Bytes.to_string b);
  (match Jindex.Reader.open_ mutant with
  | Error m ->
    Alcotest.(check bool)
      ("names the version: " ^ m)
      true
      (let has_sub sub =
         let n = String.length sub and h = String.length m in
         let rec go i = i + n <= h && (String.sub m i n = sub || go (i + 1)) in
         go 0
       in
       has_sub "unsupported index version")
  | Ok _ -> Alcotest.fail "v1 magic accepted");
  (* a non-index file is still the plain bad-magic refusal *)
  let junk = temp_path ".idx" in
  write_file junk (String.make 512 'x');
  match Jindex.Reader.open_ junk with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk file accepted"

(* corrupt value postings under --no-verify: an out-of-range doc id in
   a value list must surface as a query error, never an exception *)
let test_corrupt_value_postings_no_verify () =
  let _corpus, idx = build_corpus_index () in
  let b = Bytes.of_string (read_file idx) in
  let o_vpost = Jindex.Layout.get_u64 b Jindex.Layout.Field.val_post in
  let entries = Jindex.Layout.get_u64 b Jindex.Layout.Field.val_entries in
  Alcotest.(check bool) "corpus has value postings" true (entries > 0);
  for i = 0 to entries - 1 do
    Jindex.Layout.set_u32 b (o_vpost + (i * 8)) 0x7FFFFFF
  done;
  let mutant = temp_path ".idx" in
  write_file mutant (Bytes.to_string b);
  let r = open_exn ~verify_body:false mutant in
  match Jindex.Query.run r (Jlogic.Jnl.parse_exn "eq(.name.first, \"John\")") with
  | Error m ->
    Alcotest.(check bool) ("error is positioned: " ^ m) true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "corrupt value postings produced verdicts"

(* corrupt postings under --no-verify: a doc id pointing past the
   document table must surface as a query error, never an exception *)
let test_corrupt_postings_no_verify () =
  let _corpus, idx = build_corpus_index () in
  let original = read_file idx in
  let b = Bytes.of_string original in
  let o_kpost = Jindex.Layout.get_u64 b Jindex.Layout.Field.key_post in
  let entries = Jindex.Layout.get_u64 b Jindex.Layout.Field.key_entries in
  Alcotest.(check bool) "corpus has key postings" true (entries > 0);
  (* smash every entry's doc id so whichever list a query seeds from
     trips the bounds check *)
  for i = 0 to entries - 1 do
    Jindex.Layout.set_u32 b (o_kpost + (i * 8)) 0x7FFFFFF
  done;
  let mutant = temp_path ".idx" in
  write_file mutant (Bytes.to_string b);
  let r = open_exn ~verify_body:false mutant in
  match Jindex.Query.run r (Jlogic.Jnl.parse_exn "<.name>") with
  | Error m ->
    Alcotest.(check bool)
      ("error is positioned: " ^ m)
      true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "corrupt postings produced verdicts"

(* ---- staleness --------------------------------------------------------------- *)

let test_stale_corpus () =
  let corpus, idx = build_corpus_index () in
  write_file corpus (Lazy.force corpus_text ^ "\n{\"new\":1}");
  let r = open_exn idx in
  (match Jindex.Query.run r Jlogic.Jnl.True with
  | Error m ->
    Alcotest.(check bool) ("mentions staleness: " ^ m) true
      (String.length m > 0)
  | Ok _ -> Alcotest.fail "stale corpus accepted");
  (* missing corpus: also an error, not an exception *)
  Sys.remove corpus;
  match Jindex.Query.run r Jlogic.Jnl.True with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing corpus accepted"

(* ---- tree label-index single-build regression (PR 8 satellite) -------------- *)

let test_tree_index_single_build () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled was)
    (fun () ->
      Obs.Metrics.reset ();
      let t =
        Jsont.Tree.of_string_exn
          "{\"a\": [1, 2, {\"b\": 3}], \"c\": {\"a\": 4}}"
      in
      (* an accessor first: builds the index once *)
      let hits = Jsont.Tree.key_index t "a" in
      Alcotest.(check int) "two a-edges" 2 (Array.length hits);
      Alcotest.(check int) "one build after accessor" 1
        (Obs.Metrics.counter_value "tree.index.builds");
      (* explicit build_index afterwards must neither rebuild nor
         charge the budget again *)
      let budget = Obs.Budget.create ~fuel:1 () in
      Jsont.Tree.build_index ~budget t;
      Jsont.Tree.build_index ~budget t;
      Alcotest.(check int) "still one build" 1
        (Obs.Metrics.counter_value "tree.index.builds");
      (* the one-unit budget survived: build_index on an indexed tree
         is free *)
      Obs.Budget.burn budget 1)

let () =
  Alcotest.run "index"
    [ ("differential",
       [ Alcotest.test_case "index vs reparse baseline" `Quick
           test_differential;
         Alcotest.test_case "line numbering" `Quick test_linenos ]);
      ("eq-pushdown",
       [ Alcotest.test_case "postings-only, zero reparses" `Quick
           test_eq_zero_reparse;
         Alcotest.test_case "--no-values falls back and agrees" `Quick
           test_no_values;
         Alcotest.test_case "capped pairs fall back and agree" `Quick
           test_value_cap_fallback;
         Alcotest.test_case "number canonicalization" `Quick
           test_number_canonicalization;
         Alcotest.test_case "planner reorders conjunctions" `Quick
           test_planner_reorders ]);
      ("determinism",
       [ Alcotest.test_case "jobs 1 vs 4 byte-identical" `Quick
           test_jobs_determinism ]);
      ("faults",
       [ Alcotest.test_case "bit flips rejected" `Quick test_bit_flips;
         Alcotest.test_case "truncations rejected" `Quick test_truncations;
         Alcotest.test_case "forged counts rejected" `Quick
           test_forged_counts;
         Alcotest.test_case "forged flag bits rejected" `Quick
           test_forged_flags;
         Alcotest.test_case "forged pair table rejected" `Quick
           test_forged_pair_table;
         Alcotest.test_case "v1 magic gets versioned refusal" `Quick
           test_v1_version_refusal;
         Alcotest.test_case "corrupt postings error under no-verify" `Quick
           test_corrupt_postings_no_verify;
         Alcotest.test_case "corrupt value postings error under no-verify"
           `Quick test_corrupt_value_postings_no_verify ]);
      ("staleness",
       [ Alcotest.test_case "changed or missing corpus refused" `Quick
           test_stale_corpus ]);
      ("tree-index",
       [ Alcotest.test_case "single build, single charge" `Quick
           test_tree_index_single_build ]) ]
