(* Tests for lib/obs: resource budgets, the metrics registry, and the
   budget threading through the parser, the evaluators, the streaming
   validator and the satisfiability search.  Includes the seeded
   differential fuzz between Stream.validate and tree-based Jsl
   evaluation. *)

open Jlogic
module Value = Jsont.Value
module Parser = Jsont.Parser
module Printer = Jsont.Printer
module Tree = Jsont.Tree

let contains needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Budget unit tests                                                    *)
(* ------------------------------------------------------------------ *)

let exhausts reason f =
  match f () with
  | _ -> Alcotest.failf "expected Exhausted %s" (Obs.Budget.string_of_reason reason)
  | exception Obs.Budget.Exhausted r ->
    Alcotest.(check string) "reason"
      (Obs.Budget.string_of_reason reason)
      (Obs.Budget.string_of_reason r)

let test_budget_fuel () =
  let b = Obs.Budget.create ~fuel:10 () in
  Obs.Budget.burn b 5;
  Obs.Budget.burn b 5;
  (* allowance exactly spent: the next unit is the one that fails *)
  exhausts Obs.Budget.Fuel (fun () -> Obs.Budget.burn b 1)

let test_budget_depth () =
  let b = Obs.Budget.depth_limited 100 in
  Obs.Budget.check_depth b 0;
  Obs.Budget.check_depth b 100;
  exhausts Obs.Budget.Depth (fun () -> Obs.Budget.check_depth b 101);
  Alcotest.(check int) "max_depth" 100 (Obs.Budget.max_depth b);
  Alcotest.(check int) "default" 10_000 Obs.Budget.default_max_depth

let test_budget_deadline () =
  let b = Obs.Budget.create ~timeout_ms:0 () in
  exhausts Obs.Budget.Deadline (fun () ->
      (* the wall clock is only read every [deadline_stride] burns *)
      for _ = 1 to (2 * Obs.Budget.deadline_stride) + 1 do
        Obs.Budget.burn b 1
      done)

(* Deadlines must be armed from and checked against the one monotonic
   clock behind [now_mono].  The stubbed clock stands in for an NTP
   step: monotonic time advances while the wall clock goes wherever it
   likes.  Against the pre-fix wall-clock implementation this test
   fails — [Unix.gettimeofday] barely moves during the burn loop, so no
   deadline would fire. *)
let test_budget_deadline_monotonic () =
  let now = ref 1000.0 in
  Obs.Budget.set_clock_for_tests (Some (fun () -> !now));
  Fun.protect
    ~finally:(fun () -> Obs.Budget.set_clock_for_tests None)
    (fun () ->
      let b = Obs.Budget.create ~timeout_ms:50 () in
      (* within the window: plenty of burns, no exhaustion *)
      now := 1000.040;
      for _ = 1 to (4 * Obs.Budget.deadline_stride) + 1 do
        Obs.Budget.burn b 1
      done;
      (* 60ms of monotonic time later the deadline must fire within one
         stride of burns, whatever the wall clock did meanwhile *)
      now := 1000.060;
      exhausts Obs.Budget.Deadline (fun () ->
          for _ = 1 to Obs.Budget.deadline_stride + 1 do
            Obs.Budget.burn b 1
          done);
      (* a fresh budget arms from the same stubbed source: deadlines
         and checks can never mix time sources *)
      now := 2000.0;
      let b2 = Obs.Budget.create ~timeout_ms:100 () in
      now := 2000.099;
      for _ = 1 to (2 * Obs.Budget.deadline_stride) + 1 do
        Obs.Budget.burn b2 1
      done;
      now := 2000.101;
      exhausts Obs.Budget.Deadline (fun () ->
          for _ = 1 to Obs.Budget.deadline_stride + 1 do
            Obs.Budget.burn b2 1
          done))

let test_budget_unlimited () =
  Obs.Budget.check_depth Obs.Budget.unlimited 1_000_000;
  for _ = 1 to 10_000 do
    Obs.Budget.burn Obs.Budget.unlimited 1_000
  done;
  Alcotest.(check bool) "describe mentions depth" true
    (String.length (Obs.Budget.describe Obs.Budget.Depth) > 0)

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                     *)
(* ------------------------------------------------------------------ *)

(* the registry is process-global and alcotest runs everything in one
   process: save and restore enablement around each test *)
let with_metrics f =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Fun.protect ~finally:(fun () ->
      Obs.Metrics.reset ();
      Obs.Metrics.set_enabled was)
    f

let test_metrics_counters () =
  with_metrics (fun () ->
      Obs.Metrics.incr "t.a";
      Obs.Metrics.incr "t.a";
      Obs.Metrics.add "t.b" 40;
      Alcotest.(check int) "incr" 2 (Obs.Metrics.counter_value "t.a");
      Alcotest.(check int) "add" 40 (Obs.Metrics.counter_value "t.b");
      Alcotest.(check int) "untouched" 0 (Obs.Metrics.counter_value "t.zzz");
      let dump = Obs.Metrics.dump_text () in
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("dump_text has " ^ needle) true
            (contains needle dump))
        [ "t.a"; "t.b" ])

let test_metrics_disabled_is_noop () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  Obs.Metrics.incr "t.off";
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value "t.off");
  Alcotest.(check int) "span still runs f" 9
    (Obs.Metrics.span "t.span" (fun () -> 9));
  Obs.Metrics.set_enabled was

let test_metrics_span () =
  with_metrics (fun () ->
      Alcotest.(check int) "span result" 7 (Obs.Metrics.span "t.s" (fun () -> 7));
      (* recorded even when f raises *)
      (try Obs.Metrics.span "t.s" (fun () -> failwith "boom")
       with Failure _ -> 0)
      |> ignore;
      let json = Obs.Metrics.dump_json () in
      Alcotest.(check bool) "json has timing" true (contains "t.s" json);
      Alcotest.(check bool) "json has counters key" true
        (contains "counters" json))

(* ------------------------------------------------------------------ *)
(* Deep-nesting regressions: structured errors, not Stack_overflow      *)
(* ------------------------------------------------------------------ *)

let nested_array_text depth =
  let buf = Buffer.create ((2 * depth) + 1) in
  for _ = 1 to depth do Buffer.add_char buf '[' done;
  Buffer.add_char buf '1';
  for _ = 1 to depth do Buffer.add_char buf ']' done;
  Buffer.contents buf

let test_parser_100k_deep () =
  (* at the documented default limit the parser must fail cleanly *)
  (match Parser.parse (nested_array_text 100_000) with
  | Ok _ -> Alcotest.fail "100k-deep input must be rejected by default"
  | Error e ->
    let msg = Format.asprintf "%a" Parser.pp_error e in
    Alcotest.(check bool) ("mentions depth: " ^ msg) true (contains "depth" msg));
  (* just under the default limit it must succeed *)
  match Parser.parse (nested_array_text (Obs.Budget.default_max_depth - 1)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "just-under-limit input rejected: %a" Parser.pp_error e

let test_parser_fuel () =
  let b = Obs.Budget.create ~fuel:3 () in
  (match Parser.parse ~budget:b {|{"a":[1,2,3],"b":"x"}|} with
  | Ok _ -> Alcotest.fail "fuel 3 must not parse an 8-value document"
  | Error _ -> ());
  match Parser.parse ~budget:(Obs.Budget.create ~fuel:100 ()) {|{"a":[1,2,3]}|} with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fuel 100 rejected a small document: %a" Parser.pp_error e

let test_stream_100k_deep () =
  (* Stream.validate applies the same default depth budget *)
  (match Stream.validate (nested_array_text 100_000) Jsl.True with
  | Ok _ -> Alcotest.fail "100k-deep input must exhaust the default stream budget"
  | Error m ->
    Alcotest.(check bool) ("mentions depth: " ^ m) true (contains "depth" m));
  (* a generous explicit budget lifts the ceiling: the engine itself is
     iterative, so 100k of nesting is fine once allowed *)
  match
    Stream.validate ~budget:(Obs.Budget.depth_limited 200_000)
      (nested_array_text 100_000) Jsl.True
  with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "True must hold"
  | Error m -> Alcotest.failf "generous budget still failed: %s" m

let deep_value depth =
  let rec build n acc = if n = 0 then acc else build (n - 1) (Value.Arr [ acc ]) in
  build depth (Value.Num 1)

let test_tree_of_value_budget () =
  let v = deep_value 200 in
  (match Tree.of_value ~budget:(Obs.Budget.depth_limited 50) v with
  | _ -> Alcotest.fail "of_value must respect the depth budget"
  | exception Obs.Budget.Exhausted Obs.Budget.Depth -> ());
  ignore (Tree.of_value ~budget:(Obs.Budget.depth_limited 500) v)

let test_jsl_validates_bounded () =
  let v = deep_value 200 in
  let f = Jsl.Test Jsl.Is_arr in
  (match Jsl.validates_bounded ~budget:(Obs.Budget.depth_limited 50) v f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "depth 50 must not validate a 200-deep document");
  (match Jsl.validates_bounded v f with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "Is_arr must hold"
  | Error m -> Alcotest.failf "unbounded default failed: %s" m);
  match
    Jsl.validates_bounded ~budget:(Obs.Budget.create ~fuel:2 ())
      (Parser.parse_exn {|{"a":[1,2,3]}|})
      (Jsl.dia_key "a" (Jsl.Test Jsl.Is_arr))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fuel 2 must exhaust"

let test_jnl_satisfies_bounded () =
  let v = Parser.parse_exn {|{"a":1}|} in
  let f = Jnl.Exists (Jnl.Key "a") in
  (match Jnl_eval.satisfies_bounded v f with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "<a> must hold"
  | Error m -> Alcotest.failf "unbounded default failed: %s" m);
  match
    Jnl_eval.satisfies_bounded ~budget:(Obs.Budget.create ~fuel:1 ())
      (deep_value 50) f
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fuel 1 must exhaust"

let test_sat_budget_unknown () =
  let phi = Jsl.dia_key "a" (Jsl.Test Jsl.Is_int) in
  match Jsl_sat.satisfiable ~budget:(Obs.Budget.create ~fuel:1 ()) phi with
  | Jautomaton.Unknown _ -> ()
  | Jautomaton.Sat _ -> Alcotest.fail "fuel 1 cannot certify Sat"
  | Jautomaton.Unsat -> Alcotest.fail "fuel 1 cannot certify Unsat"

(* ------------------------------------------------------------------ *)
(* Construct counters flow through evaluation                           *)
(* ------------------------------------------------------------------ *)

let test_construct_counters () =
  with_metrics (fun () ->
      let v = Parser.parse_exn {|{"a":[1,2,1]}|} in
      ignore (Jsl.validates v (Jsl.dia_key "a" (Jsl.Test Jsl.Unique)));
      Alcotest.(check bool) "jsl.test.unique counted" true
        (Obs.Metrics.counter_value "jsl.test.unique" > 0);
      ignore
        (Jnl_eval.satisfies v
           (Jnl.Eq_doc (Jnl.Self, Parser.parse_exn {|{"a":[1,2,1]}|})));
      Alcotest.(check bool) "jnl.eq_doc counted" true
        (Obs.Metrics.counter_value "jnl.eq_doc" > 0);
      ignore (Stream.validate "[1,2]" Jsl.True);
      Alcotest.(check bool) "stream.tokens counted" true
        (Obs.Metrics.counter_value "stream.tokens" > 0))

(* ------------------------------------------------------------------ *)
(* Differential fuzz: streaming vs tree evaluation                      *)
(* ------------------------------------------------------------------ *)

let test_differential_stream_vs_tree () =
  let rng = Jworkload.Prng.create 2026 in
  let cfg = Jworkload.Gen_formula.default in
  let checked = ref 0 in
  for i = 1 to 500 do
    let doc = Jworkload.Gen_json.sized rng (1 + Jworkload.Prng.int rng 120) in
    let f = Jworkload.Gen_formula.jsl rng cfg in
    match Stream.supported f with
    | Error _ -> ()
    | Ok () ->
      incr checked;
      let text = Printer.compact doc in
      let via_tree = Jsl.validates doc f in
      (match Stream.validate text f with
      | Ok via_stream ->
        if via_stream <> via_tree then
          Alcotest.failf "pair %d: stream=%b tree=%b on %s" i via_stream
            via_tree text
      | Error m -> Alcotest.failf "pair %d: stream error %s on %s" i m text)
  done;
  (* the deterministic default config must stay streamable, otherwise
     the differential loses its teeth silently *)
  Alcotest.(check bool)
    (Printf.sprintf "enough streamable pairs (%d/500)" !checked)
    true
    (!checked > 400)

(* ------------------------------------------------------------------ *)
(* Skip-path differential: skipped and decoded regions must agree      *)
(* byte-for-byte on errors and budgets                                 *)
(* ------------------------------------------------------------------ *)

(* smallest fuel allowance under which [validate] stops raising budget
   errors — by construction the token count, since the engine burns one
   unit per token on both the evaluating and the skipping path *)
let fuel_needed ?(max_depth = Obs.Budget.default_max_depth) text f =
  let done_at fuel =
    match
      Stream.validate ~budget:(Obs.Budget.create ~fuel ~max_depth ()) text f
    with
    | Ok _ -> true
    | Error _ -> false
  in
  let rec up hi = if done_at hi then hi else up (2 * hi) in
  let rec bin lo hi =
    if lo >= hi then hi
    else
      let mid = (lo + hi) / 2 in
      if done_at mid then bin lo mid else bin (mid + 1) hi
  in
  bin 1 (up 1)

let stream_error text f =
  match Stream.validate text f with
  | Ok ok -> Alcotest.failf "expected an error, got %b on %s" ok text
  | Error m -> m

(* a malformed or over-budget construct must produce the same error
   whether the enclosing value is evaluated or fast-forwarded *)
let check_skip_eval_error_parity ~msg text f_skip f_eval =
  let skipped = stream_error text f_skip and decoded = stream_error text f_eval in
  Alcotest.(check string) (msg ^ ": skip/eval error parity") decoded skipped

let test_skip_rejects_malformed () =
  (* pre-fix, the blind token-counting skipper accepted [:] and every
     other bracket-balanced garbage inside unconstrained subtrees *)
  check_skip_eval_error_parity ~msg:"[:]" {|{"b":[:],"a":1}|}
    (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
    (Jsl.dia_key "b" (Jsl.Test Jsl.Is_arr));
  check_skip_eval_error_parity ~msg:"missing colon" {|{"b":{"k" 1},"a":1}|}
    (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
    (Jsl.dia_key "b" (Jsl.Test Jsl.Is_obj));
  check_skip_eval_error_parity ~msg:"literal outside the model"
    {|{"b":[null],"a":1}|}
    (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
    (Jsl.dia_key "b" (Jsl.Test Jsl.Is_arr))

let test_skip_rejects_duplicate_keys () =
  (* pre-fix, duplicate keys in skipped regions went undetected *)
  let text = {|{"x":{"d":1,"d":2},"a":1}|} in
  let m = stream_error text (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int)) in
  Alcotest.(check bool) ("mentions the key: " ^ m) true (contains {|"d"|} m);
  check_skip_eval_error_parity ~msg:"duplicate key" text
    (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
    (Jsl.dia_key "x" (Jsl.Test Jsl.Is_obj))

let test_skip_checks_depth () =
  (* pre-fix, nesting inside skipped subtrees never met the depth
     ceiling: a 200-deep pad passed where the decoded path exhausted *)
  let pad = nested_array_text 200 in
  let text = Printf.sprintf {|{"pad":%s,"a":1}|} pad in
  let tight () = Obs.Budget.depth_limited 50 in
  (match
     Stream.validate ~budget:(tight ()) text
       (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
   with
  | Error m ->
    Alcotest.(check bool) ("mentions depth: " ^ m) true (contains "depth" m)
  | Ok _ -> Alcotest.fail "skipped 200-deep pad must exhaust depth 50");
  let err f =
    match Stream.validate ~budget:(tight ()) text f with
    | Error m -> m
    | Ok ok -> Alcotest.failf "expected exhaustion, got %b" ok
  in
  Alcotest.(check string) "depth error parity"
    (err (Jsl.dia_key "pad" (Jsl.Test Jsl.Is_arr)))
    (err (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int)))

let test_skip_string_escapes () =
  (* escape sequences and surrogate pairs are validated without being
     decoded on the skip path; acceptance and errors match the decoded
     path exactly *)
  let good =
    [ {|"a\nb\tc"|};
      "\"\\u0041\\u00e9\"" (* BMP escapes *);
      "\"\\ud83d\\ude00\\ud834\\udd1e\"" (* surrogate pairs *);
      {|"😀 literal utf-8 ☃"|};
      {|"\\\" \/ \b\f\r"|} ]
  in
  List.iter
    (fun pad ->
      let text = Printf.sprintf {|{"pad":%s,"a":1}|} pad in
      match Stream.validate text (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int)) with
      | Ok true -> ()
      | Ok false -> Alcotest.failf "doc with pad %s must validate" pad
      | Error m -> Alcotest.failf "pad %s skipped with error %s" pad m)
    good;
  let bad =
    [ {|"\ud83d x"|} (* unpaired high surrogate *); {|"\q"|} (* bad escape *);
      {|"\u12"|} (* truncated escape *); {|"unterminated|} ]
  in
  List.iter
    (fun pad ->
      let text = Printf.sprintf {|{"pad":%s,"a":1}|} pad in
      check_skip_eval_error_parity ~msg:pad text
        (Jsl.dia_key "a" (Jsl.Test Jsl.Is_int))
        (Jsl.dia_key "pad" (Jsl.Test Jsl.Is_str)))
    bad

let test_skip_fuel_parity_at_every_offset () =
  (* an array of alternating 1k-deep and flat elements, the formula
     evaluating exactly one position: whichever offsets are skipped,
     the fuel demand is the token count — identical for every choice *)
  let deep = nested_array_text 1_000 in
  let n = 6 in
  let elems =
    List.init n (fun i -> if i mod 2 = 0 then deep else {|{"k":"v"}|})
  in
  let text = "[" ^ String.concat "," elems ^ "]" in
  let fuels =
    List.init n (fun i ->
        let f = Jsl.dia_idx i Jsl.True in
        (match
           Stream.validate ~budget:(Obs.Budget.depth_limited 2_000) text f
         with
        | Ok true -> ()
        | Ok false -> Alcotest.failf "index %d must exist" i
        | Error m -> Alcotest.failf "offset %d: %s" i m);
        fuel_needed ~max_depth:2_000 text f)
  in
  match fuels with
  | [] -> assert false
  | fuel0 :: rest ->
    List.iteri
      (fun i fuel ->
        Alcotest.(check int)
          (Printf.sprintf "fuel at offset %d equals offset 0" (i + 1))
          fuel0 fuel)
      rest

let test_differential_skip_padding () =
  (* the stream-vs-tree differential, with every document wrapped next
     to an escape-heavy skipped pad: the pad must never change the
     verdict nor trip the skipper *)
  let rng = Jworkload.Prng.create 77 in
  let cfg = Jworkload.Gen_formula.default in
  let pads =
    [| {|"a\nb\tc"|}; {|"A ☃"|}; {|"😀"|};
       {|"\\\" \/ \b\f\r"|}; {|[[[[["☃"]]]]]|};
       {|{"deep":{"deeper":["𝄞",{"k":"nul-free"}]}}|} |]
  in
  let checked = ref 0 in
  for i = 1 to 300 do
    let doc = Jworkload.Gen_json.sized rng (1 + Jworkload.Prng.int rng 60) in
    let f = Jworkload.Gen_formula.jsl rng cfg in
    match Stream.supported f with
    | Error _ -> ()
    | Ok () ->
      incr checked;
      let pad = pads.(i mod Array.length pads) in
      let text =
        Printf.sprintf {|{"pad":%s,"doc":%s}|} pad (Printer.compact doc)
      in
      let via_tree = Jsl.validates doc f in
      (match Stream.validate text (Jsl.dia_key "doc" f) with
      | Ok via_stream ->
        if via_stream <> via_tree then
          Alcotest.failf "pair %d: stream=%b tree=%b on %s" i via_stream
            via_tree text
      | Error m -> Alcotest.failf "pair %d: stream error %s on %s" i m text)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "enough streamable pairs (%d/300)" !checked)
    true
    (!checked > 240)

let test_differential_budget_exhaustion () =
  (* when the budget is too small, both sides must report a structured
     error — neither may crash or silently succeed *)
  let doc = deep_value 200 in
  let text = Printer.compact doc in
  let f = Jsl.Test Jsl.Is_arr in
  let tight () = Obs.Budget.depth_limited 50 in
  (match Stream.validate ~budget:(tight ()) text f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stream must exhaust at depth 50");
  match Jsl.validates_bounded ~budget:(tight ()) doc f with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tree evaluation must exhaust at depth 50"

let () =
  Alcotest.run "obs"
    [ ("budget",
       [ Alcotest.test_case "fuel" `Quick test_budget_fuel;
         Alcotest.test_case "depth" `Quick test_budget_depth;
         Alcotest.test_case "deadline" `Quick test_budget_deadline;
         Alcotest.test_case "deadline is monotonic" `Quick
           test_budget_deadline_monotonic;
         Alcotest.test_case "unlimited" `Quick test_budget_unlimited ]);
      ("metrics",
       [ Alcotest.test_case "counters" `Quick test_metrics_counters;
         Alcotest.test_case "disabled is no-op" `Quick test_metrics_disabled_is_noop;
         Alcotest.test_case "span" `Quick test_metrics_span ]);
      ("deep inputs",
       [ Alcotest.test_case "parser at 100k" `Quick test_parser_100k_deep;
         Alcotest.test_case "parser fuel" `Quick test_parser_fuel;
         Alcotest.test_case "stream at 100k" `Quick test_stream_100k_deep;
         Alcotest.test_case "tree of_value" `Quick test_tree_of_value_budget ]);
      ("bounded evaluation",
       [ Alcotest.test_case "jsl validates_bounded" `Quick test_jsl_validates_bounded;
         Alcotest.test_case "jnl satisfies_bounded" `Quick test_jnl_satisfies_bounded;
         Alcotest.test_case "sat returns Unknown" `Quick test_sat_budget_unknown;
         Alcotest.test_case "construct counters" `Quick test_construct_counters ]);
      ("skip differential",
       [ Alcotest.test_case "rejects malformed skipped regions" `Quick
           test_skip_rejects_malformed;
         Alcotest.test_case "rejects duplicate keys while skipping" `Quick
           test_skip_rejects_duplicate_keys;
         Alcotest.test_case "depth ceiling inside skipped regions" `Quick
           test_skip_checks_depth;
         Alcotest.test_case "escapes and surrogate pairs" `Quick
           test_skip_string_escapes;
         Alcotest.test_case "fuel parity at every skip offset" `Quick
           test_skip_fuel_parity_at_every_offset;
         Alcotest.test_case "stream vs tree with skipped pads, 300 pairs"
           `Quick test_differential_skip_padding ]);
      ("differential",
       [ Alcotest.test_case "stream vs tree, 500 pairs" `Quick
           test_differential_stream_vs_tree;
         Alcotest.test_case "budget exhaustion agreement" `Quick
           test_differential_budget_exhaustion ]) ]
