(* Tests for the domain pool and the batch evaluation pipeline: result
   correctness and ordering, jobs-independence of outputs and metric
   totals (the determinism contract CI gates), exception propagation,
   and pool lifecycle. *)

let test_pool_map_basic () =
  let pool = Par.Pool.create 4 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "lanes" 4 (Par.Pool.lanes pool);
      let items = Array.init 100 Fun.id in
      let out = Par.Pool.map pool (fun x -> x * x) items in
      Alcotest.(check (array int)) "squares in order"
        (Array.init 100 (fun i -> i * i))
        out;
      (* empty and singleton inputs *)
      Alcotest.(check (array int)) "empty" [||]
        (Par.Pool.map pool (fun x -> x) [||]);
      Alcotest.(check (array int)) "singleton" [| 7 |]
        (Par.Pool.map pool (fun x -> x + 1) [| 6 |]))

let test_pool_single_lane () =
  (* one lane: no domains spawned, runs on the caller *)
  let pool = Par.Pool.create 1 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let out = Par.Pool.map pool string_of_int (Array.init 10 Fun.id) in
      Alcotest.(check (array string)) "sequential degenerate"
        (Array.init 10 string_of_int)
        out)

let test_pool_exception () =
  let pool = Par.Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      (match
         Par.Pool.map pool
           (fun x -> if x = 17 then failwith "boom" else x)
           (Array.init 64 Fun.id)
       with
      | _ -> Alcotest.fail "expected the item's exception to propagate"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      (* the pool survives a failed map *)
      let out = Par.Pool.map pool (fun x -> x + 1) [| 1; 2; 3 |] in
      Alcotest.(check (array int)) "pool reusable" [| 2; 3; 4 |] out)

let test_pool_shutdown () =
  let pool = Par.Pool.create 2 in
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  match Par.Pool.submit pool (fun () -> ()) with
  | () -> Alcotest.fail "submit after shutdown should be rejected"
  | exception Invalid_argument _ -> ()

(* The batch work unit the bench and CLI use: parse a fresh document,
   evaluate a JNL formula against it.  Each call builds its own budget
   — fueled budgets are mutable and must not cross lanes. *)
let phi = Jlogic.Jnl.(Exists (Seq (Key "name", Key "first")))

let batch_work text =
  let t =
    Jsont.Tree.of_string_exn ~budget:(Obs.Budget.create ~fuel:100_000 ()) text
  in
  let ctx = Jlogic.Jnl_eval.context t in
  (Jsont.Tree.node_count t * 2)
  + Bool.to_int (Jlogic.Jnl_eval.holds ctx Jsont.Tree.root phi)

let docs =
  let rng = Jworkload.Prng.create 99 in
  Array.init 40 (fun _ ->
      Jsont.Printer.compact (Jworkload.Gen_json.sized rng 60))

let test_batch_jobs_agreement () =
  Obs.Metrics.set_enabled true;
  let run jobs =
    let reg = Obs.Metrics.create_registry () in
    let out =
      Obs.Metrics.with_registry reg (fun () ->
          Par.Batch.map ~jobs batch_work docs)
    in
    let values =
      Obs.Metrics.with_registry reg (fun () ->
          Obs.Metrics.counter_value "parse.values")
    in
    let batched =
      Obs.Metrics.with_registry reg (fun () ->
          Obs.Metrics.counter_value "par.batch.docs")
    in
    (out, values, batched)
  in
  let out1, values1, batched1 = run 1 in
  let out4, values4, batched4 = run 4 in
  Alcotest.(check (array int)) "results independent of jobs" out1 out4;
  Alcotest.(check int) "parse.values independent of jobs" values1 values4;
  Alcotest.(check bool) "parse.values counted" true (values1 > 0);
  Alcotest.(check int) "docs counted once per doc" (Array.length docs) batched1;
  Alcotest.(check int) "docs counted once per doc (4)" (Array.length docs)
    batched4

(* Stray task exceptions reaching the worker loop must be counted, not
   silently swallowed; non-recoverable ones must kill the worker and
   surface at the shutdown join. *)
let await cond =
  let deadline = Obs.Budget.now_mono () +. 5.0 in
  let rec go () =
    if cond () then true
    else if Obs.Budget.now_mono () > deadline then false
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let test_pool_stray_counted () =
  let was = Obs.Metrics.enabled () in
  Obs.Metrics.set_enabled true;
  let reg = Obs.Metrics.create_registry () in
  Obs.Metrics.with_registry reg (fun () ->
      let pool = Par.Pool.create 3 in
      Par.Pool.submit pool (fun () -> failwith "stray one");
      Par.Pool.submit pool (fun () -> raise Not_found);
      Alcotest.(check bool) "strays counted" true
        (await (fun () -> Par.Pool.stray_exn_count pool = 2));
      (* recoverable strays leave every worker alive and working *)
      let out = Par.Pool.map pool (fun x -> x * 2) (Array.init 50 Fun.id) in
      Alcotest.(check (array int)) "pool survives recoverable strays"
        (Array.init 50 (fun i -> i * 2))
        out;
      Par.Pool.shutdown pool;
      Alcotest.(check int) "total folded into par.pool.stray_exn" 2
        (Obs.Metrics.counter_value "par.pool.stray_exn"));
  Obs.Metrics.set_enabled was

let test_pool_stray_nonrecoverable () =
  let pool = Par.Pool.create 2 in
  Par.Pool.submit pool (fun () -> raise Stack_overflow);
  Alcotest.(check bool) "stray counted" true
    (await (fun () -> Par.Pool.stray_exn_count pool = 1));
  (* the lone worker died re-raising; shutdown joins it and re-raises *)
  match Par.Pool.shutdown pool with
  | () -> Alcotest.fail "expected Stack_overflow to surface at the join"
  | exception Stack_overflow -> ()

let test_batch_map_pool () =
  let pool = Par.Pool.create 2 in
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      let a = Par.Batch.map_pool pool batch_work docs in
      let b = Par.Batch.map ~jobs:1 batch_work docs in
      Alcotest.(check (array int)) "pool batch agrees with sequential" a b)

let () =
  Alcotest.run "par"
    [ ("pool",
       [ Alcotest.test_case "map basic" `Quick test_pool_map_basic;
         Alcotest.test_case "single lane" `Quick test_pool_single_lane;
         Alcotest.test_case "exception propagation" `Quick test_pool_exception;
         Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
         Alcotest.test_case "stray exceptions counted" `Quick
           test_pool_stray_counted;
         Alcotest.test_case "non-recoverable strays surface" `Quick
           test_pool_stray_nonrecoverable ]);
      ("batch",
       [ Alcotest.test_case "jobs agreement" `Quick test_batch_jobs_agreement;
         Alcotest.test_case "map_pool" `Quick test_batch_map_pool ]) ]
