(* Tests for the Theorem 1 / 2 / 3 translations. *)

open Jlogic
module Value = Jsont.Value

let parse_doc = Jsont.Parser.parse_exn

(* ------------------------------------------------------------------ *)
(* Theorem 2: JSL ⇄ JNL                                                 *)
(* ------------------------------------------------------------------ *)

let gen_thm2 =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 50 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        size = 9 }
    in
    let formula = Jworkload.Gen_formula.jsl_thm2 rng cfg in
    (doc, formula)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jsl.to_string f)
    gen

let prop_jsl_to_jnl =
  QCheck.Test.make ~name:"JSL→JNL preserves node semantics" ~count:300 gen_thm2
    (fun (doc, jsl) ->
      match Translate.jsl_to_jnl jsl with
      | Error _ -> QCheck.assume_fail ()
      | Ok jnl ->
        let tree = Jsont.Tree.of_value doc in
        let jsl_ctx = Jsl.context tree in
        let jnl_ctx = Jnl_eval.context tree in
        Seq.for_all
          (fun n -> Jsl.holds jsl_ctx n jsl = Jnl_eval.check_at jnl_ctx n jnl)
          (Jsont.Tree.nodes tree))

let prop_jnl_roundtrip =
  QCheck.Test.make ~name:"JSL→JNL→JSL preserves semantics" ~count:200 gen_thm2
    (fun (doc, jsl) ->
      match Translate.jsl_to_jnl jsl with
      | Error _ -> QCheck.assume_fail ()
      | Ok jnl -> (
        match Translate.jnl_to_jsl jnl with
        | Error _ -> QCheck.assume_fail ()
        | Ok jsl' -> Jsl.validates doc jsl = Jsl.validates doc jsl'))

let gen_jnl_for_thm2 =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 50 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        size = 8 }
    in
    let formula = Jworkload.Gen_formula.jnl rng cfg in
    (doc, formula)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jnl.to_string f)
    gen

let prop_jnl_to_jsl =
  QCheck.Test.make ~name:"JNL→JSL preserves node semantics" ~count:300
    gen_jnl_for_thm2 (fun (doc, jnl) ->
      match Translate.jnl_to_jsl jnl with
      | Error _ -> QCheck.assume_fail () (* negative indices etc. *)
      | Ok jsl ->
        let tree = Jsont.Tree.of_value doc in
        let jsl_ctx = Jsl.context tree in
        let jnl_ctx = Jnl_eval.context tree in
        Seq.for_all
          (fun n -> Jsl.holds jsl_ctx n jsl = Jnl_eval.check_at jnl_ctx n jnl)
          (Jsont.Tree.nodes tree))

let test_out_of_scope () =
  (match Translate.jnl_to_jsl (Jnl.Eq_paths (Jnl.Key "a", Jnl.Key "b")) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "EQ(α,β) must be rejected");
  (match Translate.jnl_to_jsl (Jnl.Exists (Jnl.Star (Jnl.Key "a"))) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Star must be rejected");
  (match Translate.jnl_to_jsl (Jnl.Exists (Jnl.Idx (-1))) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative index must be rejected");
  (match Translate.jsl_to_jnl (Jsl.Test Jsl.Unique) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Unique must be rejected");
  match Translate.jsl_to_jnl (Jsl.Var "g") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "Var must be rejected"

let test_blowup_family () =
  (* the JNL→JSL direction blows up exponentially on Alt chains *)
  let sizes =
    List.map
      (fun n ->
        let f = Translate.alt_chain n in
        match Translate.jnl_to_jsl f with
        | Ok jsl -> Jsl.size jsl
        | Error m -> Alcotest.failf "alt_chain %d: %s" n m)
      [ 2; 4; 6; 8 ]
  in
  (match sizes with
  | [ s2; s4; s6; s8 ] ->
    Alcotest.(check bool) "geometric growth" true
      (s4 > 2 * s2 && s6 > 2 * s4 && s8 > 2 * s6);
    (* and the other direction stays linear *)
    let lin =
      List.map
        (fun n ->
          let f = Translate.alt_chain n in
          match Translate.jnl_to_jsl f with
          | Ok jsl -> (
            match Translate.jsl_to_jnl jsl with
            | Ok jnl -> float_of_int (Jnl.size jnl) /. float_of_int (Jsl.size jsl)
            | Error m -> Alcotest.failf "back-translation failed: %s" m)
          | Error _ -> assert false)
        [ 4; 8 ]
    in
    List.iter
      (fun ratio ->
        Alcotest.(check bool) "JSL→JNL is linear in its input" true (ratio < 3.0))
      lin
  | _ -> assert false)

(* ------------------------------------------------------------------ *)
(* Theorem 1 and 3: JSON Schema ⇄ JSL                                   *)
(* ------------------------------------------------------------------ *)

let gen_schema_doc =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 50 in
    let cfg =
      { Jworkload.Gen_formula.default with
        Jworkload.Gen_formula.allow_nondet = true;
        size = 9 }
    in
    let formula = Jworkload.Gen_formula.jsl rng cfg in
    (doc, formula)
  in
  QCheck.make
    ~print:(fun (d, f) -> Value.to_string d ^ " |= " ^ Jsl.to_string f)
    gen

let prop_jsl_to_schema =
  QCheck.Test.make ~name:"JSL→Schema preserves validation (Thm 1)" ~count:300
    gen_schema_doc (fun (doc, jsl) ->
      let schema = Jschema.Of_jsl.schema jsl in
      Jschema.Validate.validates_schema schema doc = Jsl.validates doc jsl)

let prop_schema_roundtrip =
  QCheck.Test.make ~name:"JSL→Schema→JSL preserves validation" ~count:200
    gen_schema_doc (fun (doc, jsl) ->
      let schema = Jschema.Of_jsl.schema jsl in
      let jsl' = Jschema.To_jsl.schema schema in
      Jsl.validates doc jsl = Jsl.validates doc jsl')

let gen_rec_pair =
  let open QCheck.Gen in
  let gen st =
    let seed = int_range 0 1_000_000 |> fun g -> g st in
    let rng = Jworkload.Prng.create seed in
    let doc = Jworkload.Gen_json.sized rng 40 in
    let cfg = { Jworkload.Gen_formula.default with Jworkload.Gen_formula.size = 7 } in
    let delta = Jworkload.Gen_formula.jsl_rec rng cfg ~n_defs:2 in
    (doc, delta)
  in
  QCheck.make
    ~print:(fun (d, r) ->
      Value.to_string d ^ " |= " ^ Format.asprintf "%a" Jsl_rec.pp r)
    gen

let prop_rec_jsl_to_schema =
  QCheck.Test.make ~name:"recursive JSL→Schema preserves validation (Thm 3)"
    ~count:150 gen_rec_pair (fun (doc, delta) ->
      let schema = Jschema.Of_jsl.document delta in
      Jschema.Validate.validates schema doc = Jsl_rec.validates doc delta)

(* a concrete schema exercising every Table 1 keyword, cross-checked
   against its JSL translation on a battery of documents *)
let full_schema_text =
  {|{
    "definitions": {
      "email": { "type": "string", "pattern": "[A-z]*@ciws.cl" }
    },
    "type": "object",
    "minProperties": 1,
    "maxProperties": 10,
    "required": ["name"],
    "properties": {
      "name": { "type": "string" },
      "age": { "type": "number", "minimum": 0, "maximum": 150 },
      "mail": { "$ref": "#/definitions/email" },
      "scores": {
        "type": "array",
        "items": [ { "type": "number" }, { "type": "number" } ],
        "additionalItems": { "type": "number", "multipleOf": 2 },
        "uniqueItems": true
      }
    },
    "patternProperties": {
      "a(b|c)a": { "type": "number", "multipleOf": 2 }
    },
    "additionalProperties": { "anyOf": [
      { "type": "number", "minimum": 1, "maximum": 1 },
      { "type": "string" },
      { "enum": [ {"ok": 1} ] },
      { "not": { "type": "number" } }
    ] }
  }|}

let battery =
  [ {|{"name":"Sue"}|};
    {|{"name":"Sue","age":30}|};
    {|{"name":"Sue","age":200}|};
    {|{"age":30}|};
    {|{"name":"Sue","mail":"x@ciws.cl"}|};
    {|{"name":"Sue","mail":"x@gmail.com"}|};
    {|{"name":"Sue","aba":4}|};
    {|{"name":"Sue","aba":3}|};
    {|{"name":"Sue","extra":1}|};
    {|{"name":"Sue","extra":2}|};
    {|{"name":"Sue","extra":{"ok":1}}|};
    {|{"name":"Sue","extra":{"ok":2}}|};
    {|{"name":"Sue","scores":[1,2]}|};
    {|{"name":"Sue","scores":[1,2,4,6]}|};
    {|{"name":"Sue","scores":[1,2,3]}|};
    {|{"name":"Sue","scores":[1]}|};
    {|{"name":"Sue","scores":[1,2,4,4]}|};
    {|{"name":"Sue","scores":"nope"}|};
    {|"not even an object"|};
    {|{}|} ]

let test_full_schema_agreement () =
  let schema = Jschema.Parse.of_string_exn full_schema_text in
  let jsl = Jschema.To_jsl.document schema in
  List.iter
    (fun d ->
      let v = parse_doc d in
      let via_schema = Jschema.Validate.validates schema v in
      let via_jsl = Jsl_rec.validates v jsl in
      Alcotest.(check bool)
        (Printf.sprintf "agreement on %s" d)
        via_schema via_jsl)
    battery

let test_email_example () =
  (* the §5.3 example: NOT an email *)
  let schema =
    Jschema.Parse.of_string_exn
      {|{ "definitions": { "email": { "type": "string", "pattern": "[A-z]*@ciws.cl" } },
          "not": { "$ref": "#/definitions/email" } }|}
  in
  let check d expected =
    Alcotest.(check bool) d expected (Jschema.Validate.validates schema (parse_doc d));
    let jsl = Jschema.To_jsl.document schema in
    Alcotest.(check bool) (d ^ " (via JSL)") expected (Jsl_rec.validates (parse_doc d) jsl)
  in
  check {|"someone@ciws.cl"|} false;
  check {|"someone@gmail.com"|} true;
  check {|42|} true;
  check {|{"any":"object"}|} true

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_jsl_to_jnl;
      prop_jnl_roundtrip;
      prop_jnl_to_jsl;
      prop_jsl_to_schema;
      prop_schema_roundtrip;
      prop_rec_jsl_to_schema ]

let () =
  Alcotest.run "translate"
    [ ("theorem 2",
       [ Alcotest.test_case "out-of-scope constructs" `Quick test_out_of_scope;
         Alcotest.test_case "exponential blow-up family" `Quick test_blowup_family ]);
      ("theorem 1 & 3",
       [ Alcotest.test_case "full Table 1 schema" `Quick test_full_schema_agreement;
         Alcotest.test_case "email example (§5.3)" `Quick test_email_example ]);
      ("properties", qcheck_tests) ]
