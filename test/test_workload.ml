(* Tests for the workload substrate: PRNG determinism and generator
   contracts. *)

module Value = Jsont.Value
open Jworkload

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same stream" true (Prng.next a = Prng.next b)
  done;
  let c = Prng.create 8 in
  Alcotest.(check bool) "different seeds diverge" true
    (Prng.next (Prng.create 7) <> Prng.next c)

let test_prng_ranges () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let w = Prng.in_range rng 5 9 in
    Alcotest.(check bool) "in_range inclusive" true (w >= 5 && w <= 9);
    let f = Prng.float rng in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_prng_weighted () =
  let rng = Prng.create 2 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 3000 do
    let x = Prng.choose_weighted rng [ (1, "a"); (2, "b"); (7, "c") ] in
    Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "c dominates" true (get "c" > get "b" && get "b" > get "a")

let test_gen_json_valid_and_sized () =
  let rng = Prng.create 3 in
  List.iter
    (fun n ->
      let v = Gen_json.sized rng n in
      Alcotest.(check bool) "valid" true (Value.is_valid v);
      let size = Value.size v in
      (* soft target: committed fanouts can overshoot the budget a bit *)
      Alcotest.(check bool)
        (Printf.sprintf "size %d close to target %d" size n)
        true
        (size <= n + (n / 4) + 16 && size >= max 1 (n / 4)))
    [ 10; 100; 1000; 10_000 ]

let test_gen_json_deterministic () =
  let v1 = Gen_json.sized (Prng.create 11) 200 in
  let v2 = Gen_json.sized (Prng.create 11) 200 in
  Alcotest.(check bool) "same seed, same document" true (Value.equal v1 v2)

let test_shapes () =
  Alcotest.(check int) "deep chain height" 50 (Value.height (Gen_json.deep_chain 50));
  Alcotest.(check int) "wide object size" 101 (Value.size (Gen_json.wide_object 100));
  Alcotest.(check int) "wide array size" 101 (Value.size (Gen_json.wide_array 100));
  let dup = Gen_json.duplicated_array 10 in
  Alcotest.(check bool) "duplicated array violates Unique" false
    (Jlogic.Jsl.validates dup (Jlogic.Jsl.Test Jlogic.Jsl.Unique));
  Alcotest.(check bool) "wide array satisfies Unique" true
    (Jlogic.Jsl.validates (Gen_json.wide_array 10) (Jlogic.Jsl.Test Jlogic.Jsl.Unique))

let test_api_record () =
  let rng = Prng.create 5 in
  let v = Gen_json.api_record rng 5 in
  Alcotest.(check bool) "valid" true (Value.is_valid v);
  Alcotest.(check bool) "has orders" true
    (match Value.member "orders" v with
    | Some (Value.Arr l) -> List.length l = 5
    | _ -> false);
  Alcotest.(check bool) "has name.first" true
    (Jsont.Pointer.exists (Jsont.Pointer.of_string_exn "name.first") v)

let test_gen_formula_fragments () =
  let rng = Prng.create 6 in
  for _ = 1 to 50 do
    let det = Gen_formula.jnl rng Gen_formula.default in
    let frag = Jlogic.Jnl.classify det in
    Alcotest.(check bool) "default config is deterministic" true
      frag.Jlogic.Jnl.deterministic;
    let jsl = Gen_formula.jsl rng Gen_formula.default in
    Alcotest.(check (list string)) "non-recursive JSL has no vars" []
      (Jlogic.Jsl.free_vars jsl)
  done

let test_gen_jsl_rec_well_formed () =
  let rng = Prng.create 7 in
  for _ = 1 to 50 do
    let delta = Gen_formula.jsl_rec rng Gen_formula.default ~n_defs:3 in
    match Jlogic.Jsl_rec.well_formed delta with
    | Ok () -> ()
    | Error m -> Alcotest.failf "generated ill-formed recursive JSL: %s" m
  done

let () =
  Alcotest.run "workload"
    [ ("prng",
       [ Alcotest.test_case "determinism" `Quick test_prng_determinism;
         Alcotest.test_case "ranges" `Quick test_prng_ranges;
         Alcotest.test_case "weighted choice" `Quick test_prng_weighted ]);
      ("gen_json",
       [ Alcotest.test_case "valid and sized" `Quick test_gen_json_valid_and_sized;
         Alcotest.test_case "deterministic" `Quick test_gen_json_deterministic;
         Alcotest.test_case "special shapes" `Quick test_shapes;
         Alcotest.test_case "api record" `Quick test_api_record ]);
      ("gen_formula",
       [ Alcotest.test_case "fragments" `Quick test_gen_formula_fragments;
         Alcotest.test_case "recursive well-formed" `Quick test_gen_jsl_rec_well_formed ]) ]
