(* Tests for the regular-expression substrate: parser, NFA, DFA,
   Brzozowski derivatives, and the language algebra used by the logics. *)

let lang s = Rexp.Lang.of_string_exn s
let syn s = Rexp.Parse.parse_exn s

let check_match ?(expect = true) pattern word =
  Alcotest.(check bool)
    (Printf.sprintf "%S matches %S" pattern word)
    expect
    (Rexp.Lang.matches (lang pattern) word)

let no_match pattern word = check_match ~expect:false pattern word

(* ------------------------------------------------------------------ *)
(* Charset                                                              *)
(* ------------------------------------------------------------------ *)

let test_charset_basics () =
  let open Rexp.Charset in
  Alcotest.(check bool) "mem singleton" true (mem 'a' (singleton 'a'));
  Alcotest.(check bool) "mem other" false (mem 'b' (singleton 'a'));
  Alcotest.(check int) "range cardinal" 26 (cardinal (range 'a' 'z'));
  Alcotest.(check int) "full cardinal" 256 (cardinal full);
  Alcotest.(check int) "empty cardinal" 0 (cardinal empty);
  Alcotest.(check bool) "inverted range is empty" true (is_empty (range 'z' 'a'));
  let s = union (range 'a' 'c') (singleton 'x') in
  Alcotest.(check bool) "union mem" true (mem 'x' s && mem 'b' s);
  Alcotest.(check bool) "complement" true
    (mem 'q' (complement s) && not (mem 'b' (complement s)));
  Alcotest.(check bool) "diff" true
    (let d = diff (range 'a' 'z') (range 'm' 'z') in
     mem 'a' d && not (mem 'm' d));
  Alcotest.(check (option char)) "choose" (Some 'a') (choose (range 'a' 'z'));
  Alcotest.(check (option char)) "choose empty" None (choose empty);
  Alcotest.(check bool) "to_list" true
    (to_list (range 'a' 'c') = [ 'a'; 'b'; 'c' ]);
  Alcotest.(check bool) "equal via ops" true
    (equal (complement (complement s)) s)

(* ------------------------------------------------------------------ *)
(* Parser and matching                                                  *)
(* ------------------------------------------------------------------ *)

let test_literals () =
  check_match "abc" "abc";
  no_match "abc" "ab";
  no_match "abc" "abcd";
  check_match "" "";
  no_match "" "x"

let test_classes () =
  check_match "[abc]+" "abacab";
  no_match "[abc]+" "abd";
  check_match "[a-z0-9]*" "q7w8";
  check_match "[^a-z]" "Q";
  no_match "[^a-z]" "q";
  check_match "\\d+" "0123";
  no_match "\\d+" "12a";
  check_match "\\w+" "foo_Bar9";
  check_match "\\s" " ";
  check_match "[a\\-b]" "-";
  check_match "[\\d]" "5"

let test_operators () =
  check_match "a|b" "a";
  check_match "a|b" "b";
  no_match "a|b" "c";
  check_match "ab*" "a";
  check_match "ab*" "abbb";
  check_match "ab+" "abb";
  no_match "ab+" "a";
  check_match "ab?" "a";
  check_match "ab?" "ab";
  no_match "ab?" "abb";
  check_match "(ab)*" "abab";
  no_match "(ab)*" "aba";
  check_match "(a|b)*c" "abbac";
  check_match "a{3}" "aaa";
  no_match "a{3}" "aa";
  check_match "a{2,4}" "aaa";
  no_match "a{2,4}" "aaaaa";
  check_match "a{2,}" "aaaaaa";
  no_match "a{2,}" "a";
  check_match "." "x";
  no_match "." "";
  check_match ".*" "anything at all!"

let test_paper_expressions () =
  (* the (01)+ string schema of §5.1 *)
  check_match "(01)+" "0101";
  no_match "(01)+" "";
  no_match "(01)+" "010";
  (* the a(b|c)a patternProperties key expression *)
  check_match "a(b|c)a" "aba";
  check_match "a(b|c)a" "aca";
  no_match "a(b|c)a" "ada";
  (* the email pattern of §5.3 *)
  check_match "[A-z]*@ciws.cl" "info@ciws.cl";
  no_match "[A-z]*@ciws.cl" "info@example.com"

let test_anchors_and_escapes () =
  check_match "^abc$" "abc";
  check_match "a\\.b" "a.b";
  no_match "a\\.b" "axb";
  check_match "a\\\\b" "a\\b";
  check_match "\\x41" "A";
  (match Rexp.Parse.parse "a(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbalanced paren should fail");
  (match Rexp.Parse.parse "*a" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "leading star should fail");
  (match Rexp.Parse.parse "[z-a]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inverted range should fail");
  (* regression: an oversized repetition count escaped as Failure *)
  match Rexp.Parse.parse "a{99999999999999999999}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized repetition count should fail"

(* ------------------------------------------------------------------ *)
(* Language algebra                                                     *)
(* ------------------------------------------------------------------ *)

let test_emptiness_universality () =
  let open Rexp.Lang in
  Alcotest.(check bool) "ab nonempty" false (is_empty (lang "ab"));
  Alcotest.(check bool) "Sigma* universal" true (is_universal all);
  Alcotest.(check bool) "ab not universal" false (is_universal (lang "ab"));
  Alcotest.(check bool) "complement of empty" true
    (is_universal (complement (inter (lang "a") (lang "b"))));
  (* a ∩ b = ∅ for distinct literals *)
  Alcotest.(check bool) "disjoint literals" true
    (is_empty (inter (lang "a") (lang "b")));
  (* [ab]* ∩ [bc]* = b* — nonempty, contains "bb", not "a" *)
  let i = inter (lang "[ab]*") (lang "[bc]*") in
  Alcotest.(check bool) "intersection membership" true (matches i "bb");
  Alcotest.(check bool) "intersection exclusion" false (matches i "a");
  Alcotest.(check bool) "diff" true
    (let d = diff (lang "a+") (lang "aa*a") in
     (* a+ minus aa+ = exactly "a" *)
     matches d "a" && not (matches d "aa"))

let test_equiv_subset () =
  let open Rexp.Lang in
  Alcotest.(check bool) "a|b == [ab]" true (equiv (lang "a|b") (lang "[ab]"));
  Alcotest.(check bool) "(a*)* == a*" true (equiv (lang "(a*)*") (lang "a*"));
  Alcotest.(check bool) "a(ba)* == (ab)*a" true
    (equiv (lang "a(ba)*") (lang "(ab)*a"));
  Alcotest.(check bool) "a+ subset a*" true (subset (lang "a+") (lang "a*"));
  Alcotest.(check bool) "a* not subset a+" false (subset (lang "a*") (lang "a+"));
  Alcotest.(check bool) "a{2,4} == aa|aaa|aaaa" true
    (equiv (lang "a{2,4}") (lang "aa|aaa|aaaa"))

let test_witnesses () =
  let open Rexp.Lang in
  Alcotest.(check (option string)) "witness of literal" (Some "abc")
    (witness (lang "abc"));
  Alcotest.(check (option string)) "witness of empty" None
    (witness (inter (lang "a") (lang "b")));
  Alcotest.(check (option string)) "witness of star" (Some "")
    (witness (lang "x*"));
  (* shortest witness of a{3}|a{5} is aaa *)
  Alcotest.(check (option string)) "shortest witness" (Some "aaa")
    (witness (lang "a{3}|a{5}"));
  let ws = witnesses ~limit:3 (lang "ab*") in
  Alcotest.(check (list string)) "sample words" [ "a"; "ab"; "abb" ] ws;
  (* witness of complement avoids the language *)
  match witness (complement (lang "a*")) with
  | None -> Alcotest.fail "complement of a* is nonempty"
  | Some w -> Alcotest.(check bool) "outside a*" false (matches (lang "a*") w)

let test_dfa_minimize () =
  let d = Rexp.Dfa.of_syntax (syn "(a|b)*abb") in
  let m = Rexp.Dfa.minimize d in
  Alcotest.(check bool) "minimized equivalent" true (Rexp.Dfa.equiv d m);
  Alcotest.(check bool) "minimized no larger" true
    (Rexp.Dfa.state_count m <= Rexp.Dfa.state_count d);
  (* the textbook minimal DFA for (a|b)*abb has 4 states over Σ={a,b};
     over the full byte alphabet a fifth (dead) state is required *)
  Alcotest.(check int) "canonical state count" 5 (Rexp.Dfa.state_count m)

(* ------------------------------------------------------------------ *)
(* Cross-validation properties                                          *)
(* ------------------------------------------------------------------ *)

let gen_regex =
  let open QCheck.Gen in
  let chr = char_range 'a' 'c' in
  let rec go n =
    if n <= 0 then
      oneof
        [ map Rexp.Syntax.char chr;
          return Rexp.Syntax.epsilon;
          map2 (fun a b -> Rexp.Syntax.chars (Rexp.Charset.range a b)) chr chr ]
    else
      frequency
        [ (2, go 0);
          (2, map2 Rexp.Syntax.cat (go (n - 1)) (go (n - 1)));
          (2, map2 Rexp.Syntax.alt (go (n - 1)) (go (n - 1)));
          (1, map Rexp.Syntax.star (go (n - 1))) ]
  in
  go 4

let gen_word = QCheck.Gen.(string_size ~gen:(char_range 'a' 'c') (int_range 0 8))

let arbitrary_regex_word =
  QCheck.make
    ~print:(fun (r, w) -> Printf.sprintf "(%s, %S)" (Rexp.Syntax.to_string r) w)
    QCheck.Gen.(pair gen_regex gen_word)

let prop_nfa_dfa_agree =
  QCheck.Test.make ~name:"NFA and DFA agree" ~count:500 arbitrary_regex_word
    (fun (r, w) ->
      Rexp.Nfa.accepts (Rexp.Nfa.of_syntax r) w
      = Rexp.Dfa.accepts (Rexp.Dfa.of_syntax r) w)

let prop_deriv_dfa_agree =
  QCheck.Test.make ~name:"derivatives and DFA agree" ~count:500
    arbitrary_regex_word (fun (r, w) ->
      Rexp.Deriv.matches r w = Rexp.Dfa.accepts (Rexp.Dfa.of_syntax r) w)

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pp/parse roundtrip preserves language" ~count:300
    (QCheck.make ~print:Rexp.Syntax.to_string gen_regex) (fun r ->
      let r' = Rexp.Parse.parse_exn (Rexp.Syntax.to_string r) in
      Rexp.Lang.equiv (Rexp.Lang.of_syntax r) (Rexp.Lang.of_syntax r'))

let prop_complement_involution =
  QCheck.Test.make ~name:"complement is an involution" ~count:100
    (QCheck.make ~print:Rexp.Syntax.to_string gen_regex) (fun r ->
      let l = Rexp.Lang.of_syntax r in
      Rexp.Lang.equiv l (Rexp.Lang.complement (Rexp.Lang.complement l)))

let prop_de_morgan =
  QCheck.Test.make ~name:"De Morgan on languages" ~count:60
    (QCheck.make
       ~print:(fun (a, b) ->
         Printf.sprintf "(%s, %s)" (Rexp.Syntax.to_string a)
           (Rexp.Syntax.to_string b))
       QCheck.Gen.(pair gen_regex gen_regex))
    (fun (a, b) ->
      let open Rexp.Lang in
      let la = of_syntax a and lb = of_syntax b in
      equiv (complement (union la lb)) (inter (complement la) (complement lb)))

let prop_witness_in_language =
  QCheck.Test.make ~name:"witness belongs to the language" ~count:200
    (QCheck.make ~print:Rexp.Syntax.to_string gen_regex) (fun r ->
      let l = Rexp.Lang.of_syntax r in
      match Rexp.Lang.witness l with
      | None -> Rexp.Lang.is_empty l
      | Some w -> Rexp.Lang.matches l w)

let prop_star_unfold =
  QCheck.Test.make ~name:"L(r*) = L(ε|rr*)" ~count:100
    (QCheck.make ~print:Rexp.Syntax.to_string gen_regex) (fun r ->
      let open Rexp.Syntax in
      Rexp.Lang.equiv
        (Rexp.Lang.of_syntax (star r))
        (Rexp.Lang.of_syntax (alt epsilon (cat r (star r)))))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_nfa_dfa_agree;
      prop_deriv_dfa_agree;
      prop_pp_parse_roundtrip;
      prop_complement_involution;
      prop_de_morgan;
      prop_witness_in_language;
      prop_star_unfold ]

let () =
  Alcotest.run "rexp"
    [ ("charset", [ Alcotest.test_case "basics" `Quick test_charset_basics ]);
      ("matching",
       [ Alcotest.test_case "literals" `Quick test_literals;
         Alcotest.test_case "classes" `Quick test_classes;
         Alcotest.test_case "operators" `Quick test_operators;
         Alcotest.test_case "paper expressions" `Quick test_paper_expressions;
         Alcotest.test_case "anchors and escapes" `Quick test_anchors_and_escapes ]);
      ("algebra",
       [ Alcotest.test_case "emptiness/universality" `Quick test_emptiness_universality;
         Alcotest.test_case "equivalence/subset" `Quick test_equiv_subset;
         Alcotest.test_case "witnesses" `Quick test_witnesses;
         Alcotest.test_case "minimization" `Quick test_dfa_minimize ]);
      ("properties", qcheck_tests) ]
