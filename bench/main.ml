(* Benchmark harness regenerating the paper's evaluation artifacts.

   The paper (PODS'17) evaluates nothing on a testbed: its "results"
   are complexity propositions, constructive translations, and two
   inventory exhibits (Figure 1, Table 1).  Each experiment below
   regenerates the corresponding artifact: coverage matrices for the
   exhibits, measured scaling shapes (fitted log-log slopes) for the
   evaluation propositions, decision-procedure timings on the paper's
   own hardness families for the satisfiability propositions, and size
   growth curves for the translation theorems.  EXPERIMENTS.md records
   paper-claim vs measured-shape for every row printed here. *)

open Bechamel
open Toolkit
module Value = Jsont.Value
module Tree = Jsont.Tree
open Jlogic

(* ---- measurement helpers -------------------------------------------------- *)

(* Per-run estimate in nanoseconds via bechamel's OLS.  Every estimate
   is also recorded under [name] in the Obs.Metrics registry, so the
   numbers EXPERIMENTS.md quotes flow through the same instrumentation
   layer the CLI exposes. *)
let measure_ns ?name ?(quota = 0.3) f =
  let test = Test.make ~name:"t" (Staged.stage f) in
  let elt = List.hd (Test.elements test) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let b = Benchmark.run cfg Instance.[ monotonic_clock ] elt in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let est = Analyze.one ols Instance.monotonic_clock b in
  let ns =
    match Analyze.OLS.estimates est with
    | Some (t :: _) -> t
    | _ -> Float.nan
  in
  (match name with
  | Some n when Float.is_finite ns -> Obs.Metrics.observe_ns n ns
  | _ -> ());
  ns

(* one-shot wall-clock for long operations (satisfiability searches) *)
let wall_ms ?name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (match name with
  | Some n -> Obs.Metrics.observe_ns n (ms *. 1e6)
  | None -> ());
  (result, ms)

(* least-squares slope of log(y) against log(x): the measured exponent *)
let fitted_exponent points =
  let points =
    List.filter (fun (x, y) -> x > 0. && y > 0. && Float.is_finite y) points
  in
  let n = float_of_int (List.length points) in
  if n < 2. then Float.nan
  else begin
    let lx = List.map (fun (x, _) -> log x) points in
    let ly = List.map (fun (_, y) -> log y) points in
    let sum = List.fold_left ( +. ) 0. in
    let sx = sum lx and sy = sum ly in
    let sxx = sum (List.map (fun x -> x *. x) lx) in
    let sxy = sum (List.map2 ( *. ) lx ly) in
    ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))
  end

let header title = Printf.printf "\n=== %s ===\n%!" title
let row fmt = Printf.printf fmt

(* ---- E-Fig1: the running example ----------------------------------------- *)

let figure1 () =
  header "E-Fig1: Figure 1 document in the §3.1 tree model";
  let doc =
    Jsont.Parser.parse_exn
      {|{"name":{"first":"John","last":"Doe"},"age":32,"hobbies":["fishing","yoga"]}|}
  in
  let t = Tree.of_value doc in
  row "nodes=%d height=%d (paper: 8 JSON values, height 2)\n"
    (Tree.node_count t) (Tree.height t);
  Seq.iter
    (fun n -> row "  %s\n" (Format.asprintf "%a" (Tree.pp_node t) n))
    (Tree.nodes t)

(* ---- E-Tab1: Table 1 keyword coverage ------------------------------------- *)

let table1 () =
  header "E-Tab1: Table 1 keyword coverage (validator + JSL translation agree)";
  let cases = Jworkload.Catalog.keyword_cases in
  row "%-22s %-9s %-9s %-9s\n" "keyword" "validator" "via JSL" "agree";
  let all_ok = ref true in
  List.iter
    (fun (name, schema_text, docs) ->
      let schema = Jschema.Parse.of_string_exn schema_text in
      let jsl = Jschema.To_jsl.document schema in
      let ok_direct =
        List.for_all
          (fun (d, expected) ->
            Jschema.Validate.validates schema (Jsont.Parser.parse_exn d) = expected)
          docs
      in
      let ok_jsl =
        List.for_all
          (fun (d, expected) ->
            Jsl_rec.validates (Jsont.Parser.parse_exn d) jsl = expected)
          docs
      in
      if not (ok_direct && ok_jsl) then all_ok := false;
      row "%-22s %-9s %-9s %-9s\n" name
        (if ok_direct then "PASS" else "FAIL")
        (if ok_jsl then "PASS" else "FAIL")
        (if ok_direct = ok_jsl then "yes" else "NO"))
    cases;
  row "Table 1 coverage: %s\n" (if !all_ok then "COMPLETE" else "INCOMPLETE")

(* ---- E-P1: deterministic JNL evaluation is O(|J|·|ϕ|) --------------------- *)

let doc_sizes = [ 1_000; 4_000; 16_000; 64_000 ]

let det_formula depth =
  (* a deterministic formula exercising keys, indices and EQ(α,A); all
     subformulas pairwise distinct so that subformula memoization does
     not collapse the |ϕ| axis *)
  let keys = Jworkload.Gen_json.default_profile.Jworkload.Gen_json.key_pool in
  let nth_key k = List.nth keys (k mod List.length keys) in
  let rec chain k =
    if k = 0 then Jnl.Eq_doc (Jnl.Self, Value.Num 0)
    else
      Jnl.Or
        ( Jnl.Exists (Jnl.Seq (Jnl.Key (nth_key k), Jnl.Idx (k mod 5))),
          Jnl.And (Jnl.Eq_doc (Jnl.Key (nth_key (k + 3)), Value.Num k), chain (k - 1))
        )
  in
  chain depth

let p1 () =
  header "E-P1 (Prop 1): deterministic JNL evaluation, time vs |J| and |ϕ|";
  row "%-12s %-12s %-14s %-14s\n" "|J| (nodes)" "|phi|" "total (ms)" "ns per |J|";
  let phi = det_formula 8 in
  let points =
    List.map
      (fun n ->
        let rng = Jworkload.Prng.create 1 in
        let doc = Jworkload.Gen_json.sized rng n in
        let tree = Tree.of_value doc in
        let nodes = Tree.node_count tree in
        let ns =
          measure_ns ~name:"bench.p1.jnl_eval" (fun () ->
              let ctx = Jnl_eval.context tree in
              ignore (Jnl_eval.eval ctx phi))
        in
        row "%-12d %-12d %-14.3f %-14.2f\n" nodes (Jnl.size phi) (ns /. 1e6)
          (ns /. float_of_int nodes);
        (float_of_int nodes, ns))
      doc_sizes
  in
  row "fitted exponent in |J|: %.2f   (paper: 1.00 — linear)\n"
    (fitted_exponent points);
  (* formula-size axis *)
  let rng = Jworkload.Prng.create 2 in
  let doc = Jworkload.Gen_json.sized rng 16_000 in
  let tree = Tree.of_value doc in
  let fpoints =
    List.map
      (fun d ->
        let phi = det_formula d in
        let ns =
          measure_ns ~name:"bench.p1.jnl_eval" (fun () ->
              let ctx = Jnl_eval.context tree in
              ignore (Jnl_eval.eval ctx phi))
        in
        (float_of_int (Jnl.size phi), ns))
      [ 4; 8; 16; 32; 64 ]
  in
  row "fitted exponent in |phi|: %.2f  (paper: 1.00 — linear)\n"
    (fitted_exponent fpoints)

(* ---- E-P3: non-determinism and recursion; EQ(α,β) costs ------------------- *)

let p3 () =
  header
    "E-P3 (Prop 3): recursive ND-JNL — linear without EQ(α,β), polynomial with";
  let descend = Jquery.Jsonpath.descendant_or_self in
  let no_eq = Jnl.Exists (Jnl.Seq (descend, Jnl.Key "id")) in
  let with_eq =
    Jnl.Eq_paths
      (Jnl.Seq (descend, Jnl.Key "id"), Jnl.Seq (descend, Jnl.Key "value"))
  in
  row "%-12s %-18s %-18s\n" "|J| (nodes)" "no-EQ (ms)" "with-EQ (ms)";
  let pts_a = ref [] and pts_b = ref [] in
  List.iter
    (fun n ->
      let rng = Jworkload.Prng.create 3 in
      let doc = Jworkload.Gen_json.sized rng n in
      let tree = Tree.of_value doc in
      let nodes = float_of_int (Tree.node_count tree) in
      let ns_a =
        measure_ns ~name:"bench.p3.no_eq" (fun () ->
            let ctx = Jnl_eval.context tree in
            ignore (Jnl_eval.eval ctx no_eq))
      in
      let ns_b =
        measure_ns ~name:"bench.p3.with_eq" ~quota:0.5 (fun () ->
            let ctx = Jnl_eval.context tree in
            ignore (Jnl_eval.eval ctx with_eq))
      in
      pts_a := (nodes, ns_a) :: !pts_a;
      pts_b := (nodes, ns_b) :: !pts_b;
      row "%-12.0f %-18.3f %-18.3f\n" nodes (ns_a /. 1e6) (ns_b /. 1e6))
    [ 1_000; 2_000; 4_000; 8_000; 16_000 ];
  row "fitted exponents: no-EQ %.2f (paper: 1.00), with-EQ %.2f (paper: ≤3, >1)\n"
    (fitted_exponent !pts_a) (fitted_exponent !pts_b)

(* ---- E-P6: JSL evaluation; the cost of Unique ----------------------------- *)

let p6 () =
  header "E-P6 (Prop 6): JSL evaluation — linear without Unique, quadratic with";
  let without =
    Jsl.Box_keys (Rexp.Syntax.all, Jsl.Or (Jsl.Test Jsl.Is_int, Jsl.True))
  in
  (* the paper's Unique algorithm compares all pairs of children
     (O(|J|²)); ours buckets by subtree hash first.  Both are measured:
     the ablation shows where the paper's bound comes from and what the
     hashing buys.  Elements share a large common prefix so that each
     structural comparison costs Θ(element size). *)
  let naive_unique tree node =
    let kids = Tree.arr_children tree node in
    let n = Array.length kids in
    let distinct = ref true in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        (* structural comparison without the hash shortcut *)
        if Value.equal (Tree.value_at tree kids.(i)) (Tree.value_at tree kids.(j))
        then distinct := false
      done
    done;
    !distinct
  in
  row "%-14s %-16s %-18s %-20s\n" "array width" "no-Unique (ms)" "Unique (ms)"
    "pairwise (ms)";
  let pts_a = ref [] and pts_b = ref [] and pts_c = ref [] in
  List.iter
    (fun n ->
      (* pairwise distinct elements with a shared prefix *)
      let elem i =
        Value.Obj
          [ ("prefix", Value.Arr (List.init 6 (fun k -> Value.Num k)));
            ("id", Value.Num i) ]
      in
      let doc = Value.Arr (List.init n elem) in
      let tree = Tree.of_value doc in
      let ns_a =
        measure_ns ~name:"bench.p6.no_unique" (fun () ->
            let ctx = Jsl.context tree in
            ignore (Jsl.eval ctx without))
      in
      let ns_b =
        measure_ns ~name:"bench.p6.unique" ~quota:0.5 (fun () ->
            let ctx = Jsl.context tree in
            ignore (Jsl.eval ctx (Jsl.Test Jsl.Unique)))
      in
      let ns_c =
        if n <= 1_000 then
          measure_ns ~name:"bench.p6.pairwise" ~quota:0.5 (fun () ->
              ignore (naive_unique tree Tree.root))
        else Float.nan
      in
      pts_a := (float_of_int n, ns_a) :: !pts_a;
      pts_b := (float_of_int n, ns_b) :: !pts_b;
      if Float.is_finite ns_c then pts_c := (float_of_int n, ns_c) :: !pts_c;
      row "%-14d %-16.3f %-18.3f %-20s\n" n (ns_a /. 1e6) (ns_b /. 1e6)
        (if Float.is_finite ns_c then Printf.sprintf "%.3f" (ns_c /. 1e6)
         else "(skipped)"))
    [ 250; 500; 1_000; 2_000; 4_000 ];
  row
    "fitted exponents: no-Unique %.2f (paper: 1.00), hashed Unique %.2f,\n\
     pairwise Unique %.2f (the paper's O(|J|²) algorithm — quadratic shape)\n"
    (fitted_exponent !pts_a) (fitted_exponent !pts_b) (fitted_exponent !pts_c)

(* ---- E-P9: recursive JSL evaluation is PTIME ------------------------------ *)

let even_paths =
  Jsl_rec.make_exn
    ~defs:
      [ ("g1", Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g2"));
        ( "g2",
          Jsl.And
            ( Jsl.Dia_keys (Rexp.Syntax.all, Jsl.True),
              Jsl.Box_keys (Rexp.Syntax.all, Jsl.Var "g1") ) ) ]
    ~base:(Jsl.Var "g1")

let p9 () =
  header "E-P9 (Prop 9): recursive JSL bottom-up evaluation scales polynomially";
  row "%-12s %-16s %-10s\n" "|J| (nodes)" "eval (ms)" "result";
  let pts = ref [] in
  List.iter
    (fun n ->
      let rng = Jworkload.Prng.create 4 in
      let doc = Jworkload.Gen_json.sized rng n in
      let tree = Tree.of_value doc in
      let nodes = float_of_int (Tree.node_count tree) in
      let result = ref false in
      let ns =
        measure_ns ~name:"bench.p9.rec_eval" (fun () ->
            result := Jsl_rec.holds_at tree even_paths Tree.root)
      in
      pts := (nodes, ns) :: !pts;
      row "%-12.0f %-16.3f %-10b\n" nodes (ns /. 1e6) !result)
    [ 1_000; 4_000; 16_000; 64_000 ];
  row "fitted exponent: %.2f (paper: polynomial; this family evaluates linearly)\n"
    (fitted_exponent !pts);
  (* the PTIME-hardness side: circuit evaluation through the logic *)
  let rng = Jworkload.Prng.create 5 in
  row "%-12s %-16s %-12s\n" "|circuit|" "via JSL (ms)" "agree";
  List.iter
    (fun gates ->
      let n_inputs = 8 in
      let circuit =
        { Hardness.gates =
            Array.init gates (fun j ->
                if j < n_inputs then Hardness.G_input j
                else
                  let a = Jworkload.Prng.int rng j
                  and b = Jworkload.Prng.int rng j in
                  match Jworkload.Prng.int rng 3 with
                  | 0 -> Hardness.G_and (a, b)
                  | 1 -> Hardness.G_or (a, b)
                  | _ -> Hardness.G_not a);
          output = gates - 1;
          n_inputs }
      in
      let delta = Hardness.circuit_to_jsl_rec circuit in
      let a = Array.init n_inputs (fun i -> i mod 2 = 0) in
      let doc = Hardness.circuit_doc a in
      let expected = Hardness.circuit_eval circuit a in
      let got = ref false in
      let ns =
        measure_ns ~name:"bench.p9.circuit" (fun () ->
            got := Jsl_rec.validates doc delta)
      in
      row "%-12d %-16.3f %-12b\n" gates (ns /. 1e6) (!got = expected))
    [ 32; 128; 512 ]

(* ---- E-P2: 3SAT through JNL satisfiability -------------------------------- *)

let p2 () =
  header "E-P2 (Prop 2): JNL satisfiability on the paper's 3SAT instances";
  row "%-8s %-10s %-12s %-14s %-8s\n" "vars" "clauses" "result" "time (ms)" "agree";
  let rng = Jworkload.Prng.create 6 in
  List.iter
    (fun nvars ->
      let nclauses = nvars * 3 in
      let cnf =
        List.init nclauses (fun _ ->
            List.init 3 (fun _ ->
                { Hardness.var = Jworkload.Prng.int rng nvars;
                  positive = Jworkload.Prng.bool rng }))
      in
      let expected = Hardness.dpll ~nvars cnf <> None in
      let formula = Hardness.cnf_to_jnl ~nvars cnf in
      let outcome, ms =
        wall_ms ~name:"bench.p2.sat" (fun () -> Jnl_sat.satisfiable formula)
      in
      let result, agree =
        match outcome with
        | Ok (Jautomaton.Sat _) -> ("sat", expected)
        | Ok Jautomaton.Unsat -> ("unsat", not expected)
        | Ok (Jautomaton.Unknown _) -> ("unknown", false)
        | Error m -> (m, false)
      in
      row "%-8d %-10d %-12s %-14.1f %-8b\n" nvars nclauses result ms agree)
    [ 3; 4; 5; 6; 7; 8; 9 ]

(* ---- E-P7: QBF through JSL satisfiability --------------------------------- *)

let p7 () =
  header "E-P7 (Prop 7): JSL satisfiability on QBF instances (no Unique)";
  row "%-28s %-10s %-12s %-14s %-8s\n" "prefix" "clauses" "result" "time (ms)"
    "agree";
  let lit v p = { Hardness.var = v; positive = p } in
  let instances =
    [ ("Ex. x", { Hardness.prefix = [ `Exists ]; matrix = [ [ lit 0 true ] ] });
      ("All x. x", { Hardness.prefix = [ `Forall ]; matrix = [ [ lit 0 true ] ] });
      ( "All x Ex y. x<>y",
        { Hardness.prefix = [ `Forall; `Exists ];
          matrix = [ [ lit 0 true; lit 1 true ]; [ lit 0 false; lit 1 false ] ] } );
      ( "Ex y All x. x<>y",
        { Hardness.prefix = [ `Exists; `Forall ];
          matrix = [ [ lit 1 true; lit 0 true ]; [ lit 1 false; lit 0 false ] ] } );
      ( "All x Ex y All z. 2 clauses",
        { Hardness.prefix = [ `Forall; `Exists; `Forall ];
          matrix =
            [ [ lit 0 true; lit 1 true; lit 2 true ];
              [ lit 0 false; lit 1 true; lit 2 false ] ] } ) ]
  in
  List.iter
    (fun (name, q) ->
      let expected = Hardness.qbf_eval q in
      let formula = Hardness.qbf_to_jsl q in
      let outcome, ms =
        wall_ms ~name:"bench.p7.sat" (fun () -> Jsl_sat.satisfiable formula)
      in
      let result, agree =
        match outcome with
        | Jautomaton.Sat _ -> ("sat", expected)
        | Jautomaton.Unsat -> ("unsat", not expected)
        | Jautomaton.Unknown _ -> ("unknown", false)
      in
      row "%-28s %-10d %-12s %-14.1f %-8b\n" name (List.length q.Hardness.matrix)
        result ms agree)
    instances;
  (* random sweep with oracle agreement *)
  let rng = Jworkload.Prng.create 10 in
  let agree = ref 0 and unknowns = ref 0 and total = ref 0 and time = ref 0. in
  for _ = 1 to 12 do
    let n = 2 + Jworkload.Prng.int rng 2 in
    let prefix =
      List.init n (fun _ -> if Jworkload.Prng.bool rng then `Forall else `Exists)
    in
    let matrix =
      List.init
        (1 + Jworkload.Prng.int rng 3)
        (fun _ ->
          List.init 2 (fun _ ->
              lit (Jworkload.Prng.int rng n) (Jworkload.Prng.bool rng)))
    in
    let q = { Hardness.prefix; matrix } in
    let expected = Hardness.qbf_eval q in
    let outcome, ms =
      wall_ms ~name:"bench.p7.sat_random" (fun () ->
          Jsl_sat.satisfiable (Hardness.qbf_to_jsl q))
    in
    time := !time +. ms;
    incr total;
    match outcome with
    | Jautomaton.Sat _ -> if expected then incr agree
    | Jautomaton.Unsat -> if not expected then incr agree
    | Jautomaton.Unknown _ -> incr unknowns
  done;
  row "random QBFs (2-3 vars): %d/%d agree with the oracle, %d unknown, %.0f ms total\n"
    !agree !total !unknowns !time

(* ---- E-P4: the undecidability construction -------------------------------- *)

let p4 () =
  header "E-P4 (Prop 4): two-counter machine runs encode into recursive JNL + EQ";
  let machine =
    { Hardness.states =
        [ ("q0", Hardness.Incr (0, "q1"));
          ("q1", Hardness.Incr (0, "q2"));
          ("q2", Hardness.Incr (1, "q3"));
          ("q3", Hardness.If_zero (0, "q5", "q4"));
          ("q4", Hardness.Decr (0, "q3"));
          ("q5", Hardness.If_zero (1, "qf", "q6"));
          ("q6", Hardness.Decr (1, "q5"));
          ("qf", Hardness.Halt) ];
      start = "q0";
      final = "qf" }
  in
  let formula = Hardness.cm_to_jnl machine in
  row "%-14s %-12s %-16s %-12s\n" "run length" "|doc|" "check (ms)" "satisfied";
  match Hardness.cm_run machine ~max_steps:1000 with
  | None -> row "machine did not halt (unexpected)\n"
  | Some configs ->
    let doc = Hardness.cm_run_doc configs in
    let ok = ref false in
    let ns =
      measure_ns ~name:"bench.p4.check" (fun () ->
          ok := Jnl_eval.satisfies doc formula)
    in
    row "%-14d %-12d %-16.3f %-12b\n" (List.length configs) (Value.size doc)
      (ns /. 1e6) !ok;
    let corrupt =
      Hardness.cm_run_doc
        (List.mapi (fun i (q, a, b) -> (q, (if i = 2 then a + 1 else a), b)) configs)
    in
    row "corrupted run rejected: %b (expected true)\n"
      (not (Jnl_eval.satisfies corrupt formula))

(* ---- E-P5 / E-P10: emptiness search --------------------------------------- *)

let p5 () =
  header "E-P5/E-P10 (Props 5, 10): satisfiability search on formula families";
  row "%-36s %-12s %-14s\n" "family" "result" "time (ms)";
  let families =
    [ ( "chain of 4 required keys",
        `Plain
          (Jsl.dia_key "a"
             (Jsl.dia_key "b" (Jsl.dia_key "c" (Jsl.dia_key "d" Jsl.True)))) );
      ( "regex keys + numeric bounds",
        `Plain
          (Jsl.And
             ( Jsl.Dia_keys
                 ( Rexp.Parse.parse_exn "k[0-9]+",
                   Jsl.And (Jsl.Test (Jsl.Min 10), Jsl.Test (Jsl.Max 12)) ),
               Jsl.Box_keys (Rexp.Parse.parse_exn "k[0-9]+", Jsl.Test Jsl.Is_int) )) );
      ( "deep unsat (type clash at depth 3)",
        `Plain
          (Jsl.dia_key "a"
             (Jsl.dia_key "b"
                (Jsl.And
                   ( Jsl.dia_key "c" (Jsl.Test Jsl.Is_arr),
                     Jsl.dia_key "c" (Jsl.Test Jsl.Is_obj) )))) );
      ("recursive even-depth (Prop 10)", `Rec even_paths);
      ( "recursive unsat: infinite descent",
        `Rec
          (Jsl_rec.make_exn
             ~defs:[ ("g", Jsl.dia_key "next" (Jsl.Var "g")) ]
             ~base:(Jsl.Var "g")) ) ]
  in
  List.iter
    (fun (name, f) ->
      let outcome, ms =
        wall_ms ~name:"bench.p5.sat" (fun () ->
            match f with
            | `Plain f -> Jsl_sat.satisfiable f
            | `Rec r -> Jsl_sat.satisfiable_rec r)
      in
      let result =
        match outcome with
        | Jautomaton.Sat _ -> "sat"
        | Jautomaton.Unsat -> "unsat"
        | Jautomaton.Unknown _ -> "unknown"
      in
      row "%-36s %-12s %-14.1f\n" name result ms)
    families

(* ---- E-T2: translation growth --------------------------------------------- *)

let t2 () =
  header
    "E-T2 (Thm 2): translation size growth — JSL→JNL linear, JNL→JSL exponential";
  row "%-8s %-14s %-18s %-18s\n" "n" "|JNL| (alt^n)" "|JSL| translated"
    "back to JNL";
  List.iter
    (fun n ->
      let jnl = Translate.alt_chain n in
      match Translate.jnl_to_jsl jnl with
      | Error m -> row "%-8d error: %s\n" n m
      | Ok jsl ->
        let back =
          match Translate.jsl_to_jnl jsl with
          | Ok j -> string_of_int (Jnl.size j)
          | Error m -> m
        in
        row "%-8d %-14d %-18d %-18s\n" n (Jnl.size jnl) (Jsl.size jsl) back)
    [ 2; 4; 6; 8; 10; 12 ];
  row "(paper: the JNL→JSL direction can be exponential; JSL→JNL is polynomial)\n"

(* ---- E-T1: schema vs logic validation ------------------------------------- *)

let t1 () =
  header "E-T1 (Thm 1): JSON Schema validator vs JSL semantics — agreement and cost";
  let rng = Jworkload.Prng.create 7 in
  let cfg =
    { Jworkload.Gen_formula.default with
      Jworkload.Gen_formula.allow_nondet = true;
      size = 10 }
  in
  let n_formulas = 40 and n_docs = 40 in
  let agree = ref 0 and total = ref 0 in
  let t_schema = ref 0. and t_jsl = ref 0. in
  for _ = 1 to n_formulas do
    let jsl = Jworkload.Gen_formula.jsl rng cfg in
    let schema = Jschema.Of_jsl.schema jsl in
    for _ = 1 to n_docs do
      let doc = Jworkload.Gen_json.sized rng 60 in
      let t0 = Unix.gettimeofday () in
      let a = Jschema.Validate.validates_schema schema doc in
      let t1' = Unix.gettimeofday () in
      let b = Jsl.validates doc jsl in
      let t2' = Unix.gettimeofday () in
      t_schema := !t_schema +. (t1' -. t0);
      t_jsl := !t_jsl +. (t2' -. t1');
      incr total;
      if a = b then incr agree
    done
  done;
  row "formulas=%d docs/formula=%d agreement=%d/%d (paper: equivalence, 100%%)\n"
    n_formulas n_docs !agree !total;
  row "mean validation time: schema %.1f µs, via JSL %.1f µs\n"
    (!t_schema /. float_of_int !total *. 1e6)
    (!t_jsl /. float_of_int !total *. 1e6)

(* ---- E-strm: the §6 streaming conjecture ----------------------------------- *)

let strm () =
  header "E-strm (§6): deterministic JSL streams in constant memory";
  let phi =
    Jsl.conj
      [ Jsl.Test Jsl.Is_obj;
        Jsl.dia_key "id" (Jsl.Test Jsl.Is_int);
        Jsl.dia_key "name" (Jsl.dia_key "first" (Jsl.Test Jsl.Is_str)) ]
  in
  row "%-12s %-14s %-16s %-16s %-12s\n" "|J| (nodes)" "tokens" "tree eval (ms)"
    "stream (ms)" "peak obls";
  List.iter
    (fun n ->
      let rng = Jworkload.Prng.create 8 in
      let payload = Jworkload.Gen_json.sized rng n in
      let doc =
        Value.Obj
          [ ("id", Value.Num 7);
            ("name", Value.Obj [ ("first", Value.Str "John") ]);
            ("payload", payload) ]
      in
      let text = Value.to_string doc in
      let ns_tree =
        measure_ns ~name:"bench.strm.tree" (fun () ->
            ignore (Jsl.validates doc phi))
      in
      let ns_stream =
        measure_ns ~name:"bench.strm.stream" (fun () ->
            ignore (Stream.validate text phi))
      in
      match Stream.validate_with_stats text phi with
      | Ok (_, stats) ->
        row "%-12d %-14d %-16.3f %-16.3f %-12d\n" (Value.size doc)
          stats.Stream.tokens (ns_tree /. 1e6) (ns_stream /. 1e6)
          stats.Stream.peak_obligations
      | Error m -> row "stream error: %s\n" m)
    [ 1_000; 8_000; 64_000 ];
  row "(peak obligations must stay flat as |J| grows — the conjectured bound)\n";

  (* -- schema validation over the token stream (Validate.Plan.run_stream) -- *)
  let all_agree = ref true in
  row "\nschema validation off the token stream (compiled plan):\n";
  let schema = Jschema.Parse.of_string_exn Jworkload.Catalog.catalog_schema in
  let plan = Jschema.Validate.Plan.compile schema in

  (* (a) throughput and three-way agreement on the catalog corpus *)
  let rng = Jworkload.Prng.create 21 in
  let texts =
    Array.init 200 (fun _ -> Value.to_string (Jworkload.Catalog.catalog_doc rng))
  in
  (* a feed lexer delivering [text] in fixed-size chunks, as the
     chunked CLI/network path would *)
  let chunked_lexer text chunk =
    let pos = ref 0 in
    Jsont.Lexer.create_feed
      ~refill:(fun lx ->
        if !pos >= String.length text then Jsont.Lexer.close lx
        else begin
          let n = min chunk (String.length text - !pos) in
          Jsont.Lexer.feed_string lx (String.sub text !pos n);
          pos := !pos + n
        end)
      ()
  in
  Array.iter
    (fun text ->
      let s = Jschema.Validate.Plan.run_stream plan text in
      let t = Jschema.Validate.Plan.run_tree plan (Tree.of_string_exn text) in
      let o = Jschema.Validate.validates schema (Jsont.Parser.parse_exn text) in
      let f =
        Jschema.Validate.Plan.run_lexer plan (chunked_lexer text 7)
      in
      if not (s = t && t = o && o = f) then all_agree := false)
    texts;
  let n = float_of_int (Array.length texts) in
  let ns_vstream =
    measure_ns ~name:"bench.strm.validate_stream" (fun () ->
        Array.iter
          (fun text -> ignore (Jschema.Validate.Plan.run_stream plan text))
          texts)
  in
  let ns_vtree =
    measure_ns ~name:"bench.strm.validate_tree" (fun () ->
        Array.iter
          (fun text ->
            ignore (Jschema.Validate.Plan.run_tree plan (Tree.of_string_exn text)))
          texts)
  in
  row "%-36s %12s %14s\n" "engine" "ns/doc" "docs/sec";
  let ns_vfeed =
    measure_ns ~name:"bench.strm.validate_feed" (fun () ->
        Array.iter
          (fun text ->
            ignore
              (Jschema.Validate.Plan.run_lexer plan (chunked_lexer text 4096)))
          texts)
  in
  row "%-36s %12.0f %14.0f\n" "run_stream (string input)" (ns_vstream /. n)
    (n /. (ns_vstream /. 1e9));
  row "%-36s %12.0f %14.0f\n" "run_lexer (4 KiB feed chunks)" (ns_vfeed /. n)
    (n /. (ns_vfeed /. 1e9));
  row "%-36s %12.0f %14.0f\n" "of_string + run_tree" (ns_vtree /. n)
    (n /. (ns_vtree /. 1e9));

  (* (b) peak memory: flat in document size for the stream path.  The
     instance text is built through a buffer (never as a Value.t) so
     the baseline heap high-water mark sits below what materializing
     the tree costs; the stream is always measured first. *)
  let items_schema =
    Jschema.Parse.of_string_exn
      {|{"type": "array",
         "items": {"type": "object",
                   "required": ["id", "name"],
                   "properties": {"id": {"type": "number"},
                                  "name": {"type": "string", "pattern": "item-[0-9]*"}}}}|}
  in
  let items_plan = Jschema.Validate.Plan.compile items_schema in
  let gen_text n =
    let b = Buffer.create (n * 32) in
    Buffer.add_char b '[';
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf {|{"id":%d,"name":"item-%d"}|} i i)
    done;
    Buffer.add_char b ']';
    Buffer.contents b
  in
  let peak_words f =
    Gc.compact ();
    let before = (Gc.quick_stat ()).Gc.top_heap_words in
    let r = f () in
    let after = (Gc.quick_stat ()).Gc.top_heap_words in
    (r, after - before)
  in
  row "\npeak heap growth while validating (words above high-water mark):\n";
  row "%-14s %-14s %-16s %-16s\n" "elements" "bytes" "stream (words)" "tree (words)";
  let last = ref (0, 1) in
  List.iter
    (fun n ->
      let text = gen_text n in
      let s, stream_words =
        peak_words (fun () -> Jschema.Validate.Plan.run_stream items_plan text)
      in
      let t, tree_words =
        peak_words (fun () ->
            Jschema.Validate.Plan.run_tree items_plan (Tree.of_string_exn text))
      in
      if not (s && t) then all_agree := false;
      last := (stream_words, max 1 tree_words);
      row "%-14d %-14d %-16d %-16d\n" n (String.length text) stream_words
        tree_words)
    [ 20_000; 80_000; 320_000 ];
  let stream_words, tree_words = !last in
  Obs.Metrics.add "bench.strm.validate.peak_stream_words" stream_words;
  Obs.Metrics.add "bench.strm.validate.peak_tree_words" tree_words;
  let ratio = float_of_int tree_words /. float_of_int (max 1 stream_words) in
  Obs.Metrics.add "bench.strm.validate.peak_ratio_x10" (int_of_float (ratio *. 10.));
  row
    "largest instance: tree/stream peak ratio %.0fx (target: >= 10x; stream \
     must stay flat)%s\n"
    ratio
    (if ratio >= 10. then "" else "  ** BELOW TARGET **");
  if ratio < 10. then all_agree := false;

  row "\nstream agreement: %s\n" (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1


(* ---- E-DLOG: the Proposition 1 apparatus as an ablation -------------------- *)

let dlog () =
  header
    "E-DLOG (Prop 1 proof): JNL via monadic datalog vs the direct evaluator";
  let phi = Jlogic.Jnl.parse_exn {|eq(.name.first, "John") | <.items[0]> & !<.zzz>|} in
  row "%-12s %-16s %-18s %-10s\n" "|J| (nodes)" "direct (ms)" "datalog (ms)" "agree";
  let pts_a = ref [] and pts_b = ref [] in
  List.iter
    (fun n ->
      let rng = Jworkload.Prng.create 9 in
      let doc = Jworkload.Gen_json.sized rng n in
      let tr = Tree.of_value doc in
      let nodes = float_of_int (Tree.node_count tr) in
      let ns_a =
        measure_ns ~name:"bench.dlog.direct" (fun () ->
            let ctx = Jnl_eval.context tr in
            ignore (Jnl_eval.eval ctx phi))
      in
      (* the datalog pipeline: EDB encoding + compilation + evaluation,
         all per run (the proof's end-to-end algorithm) *)
      let ns_b =
        measure_ns ~name:"bench.dlog.datalog" ~quota:0.5 (fun () ->
            ignore (Jdatalog.Compile.eval tr phi))
      in
      let agree =
        match Jdatalog.Compile.eval tr phi with
        | Ok via_datalog ->
          let ctx = Jnl_eval.context tr in
          via_datalog = Bitset.elements (Jnl_eval.eval ctx phi)
        | Error _ -> false
      in
      pts_a := (nodes, ns_a) :: !pts_a;
      pts_b := (nodes, ns_b) :: !pts_b;
      row "%-12.0f %-16.3f %-18.3f %-10b\n" nodes (ns_a /. 1e6) (ns_b /. 1e6) agree)
    [ 1_000; 4_000; 16_000 ];
  row
    "fitted exponents: direct %.2f, datalog %.2f (both linear — the Prop 1\n\
     bound holds for the proof's own algorithm, at a constant-factor cost)\n"
    (fitted_exponent !pts_a) (fitted_exponent !pts_b);
  let program = Jdatalog.Compile.jnl (Jdatalog.Edb.of_tree (Tree.of_value (Jsont.Parser.parse_exn "{}"))) phi in
  row "compiled program: %d rules, monadic=%b, recursive=%b\n"
    (List.length program.Jdatalog.Ast.rules)
    (Jdatalog.Ast.is_monadic program)
    (Jdatalog.Ast.is_recursive program)


(* ---- E-XML: the §3.2 claim — key access under the XML coding --------------- *)

let xml () =
  header "E-XML (§3.2): native key access is O(1); the XML coding scans children";
  row "%-14s %-18s %-18s\n" "object width" "native (ns/get)" "coded (ns/get)";
  let pts_a = ref [] and pts_b = ref [] in
  List.iter
    (fun n ->
      let doc = Jworkload.Gen_json.wide_object n in
      let tree = Tree.of_value doc in
      let coded = Jsont.Xml_coding.encode doc in
      (* hit the last key: the coding's worst case, the native model's
         average case is flat anyway *)
      let key = "k" ^ string_of_int (n - 1) in
      let ns_a =
        measure_ns ~name:"bench.xml.native" (fun () ->
            ignore (Tree.lookup tree Tree.root key))
      in
      let ns_b =
        measure_ns ~name:"bench.xml.coded" (fun () ->
            ignore (Jsont.Xml_coding.lookup_key coded key))
      in
      pts_a := (float_of_int n, ns_a) :: !pts_a;
      pts_b := (float_of_int n, ns_b) :: !pts_b;
      row "%-14d %-18.1f %-18.1f\n" n ns_a ns_b)
    [ 64; 256; 1_024; 4_096 ];
  row
    "fitted exponents: native %.2f (flat), coded %.2f (linear scan) — the\n\
     paper's argument for edge-labelled deterministic trees, quantified\n"
    (fitted_exponent !pts_a) (fitted_exponent !pts_b)


(* ---- E-SIMP: simplifier ablation -------------------------------------------- *)

let simp () =
  header "E-SIMP (ablation): evaluating machine-generated formulas, raw vs simplified";
  let rng = Jworkload.Prng.create 11 in
  let cfg =
    { Jworkload.Gen_formula.default with
      Jworkload.Gen_formula.allow_nondet = true;
      size = 60 }
  in
  let doc = Jworkload.Gen_json.sized rng 8_000 in
  let tree = Tree.of_value doc in
  let raw = List.init 20 (fun _ -> Jworkload.Gen_formula.jsl rng cfg) in
  let simplified = List.map Simplify.jsl raw in
  let size_of fs = List.fold_left (fun acc f -> acc + Jsl.size f) 0 fs in
  let eval_all name fs =
    measure_ns ~name ~quota:0.5 (fun () ->
        List.iter
          (fun f ->
            let ctx = Jsl.context tree in
            ignore (Jsl.eval ctx f))
          fs)
  in
  let ns_raw = eval_all "bench.simp.raw" raw
  and ns_simplified = eval_all "bench.simp.simplified" simplified in
  row "formulas: 20 random JSL, total size %d -> %d after Simplify.jsl\n"
    (size_of raw) (size_of simplified);
  row "evaluation over a %d-node tree: %.2f ms raw, %.2f ms simplified (%.1fx)\n"
    (Tree.node_count tree) (ns_raw /. 1e6) (ns_simplified /. 1e6)
    (ns_raw /. ns_simplified);
  (* agreement sanity *)
  let agree =
    List.for_all2
      (fun a b ->
        let c1 = Jsl.context tree and c2 = Jsl.context tree in
        Bitset.equal (Jsl.eval c1 a) (Jsl.eval c2 b))
      raw simplified
  in
  row "semantics preserved on the benchmark tree: %b\n" agree

(* ---- E-IDX: label-indexed vs sweeping pre-image --------------------------- *)

(* An array of [n_objs] small objects; every [hit_every]-th one carries
   the key "needle".  The label index makes the pre-image of a Key step
   touch only the matching edges; the sweep baseline tests every node. *)
let index_doc n_objs ~hit_every =
  Value.Arr
    (List.init n_objs (fun i ->
         let base = [ ("a", Value.Num i); ("b", Value.Str "x") ] in
         let fields =
           if i mod hit_every = 0 then ("needle", Value.Num i) :: base else base
         in
         Value.Obj fields))

let index_exp () =
  header "E-IDX: label-indexed pre-image vs full-node sweep (same sets)";
  let step = Jnl.Key "needle" in
  let all_agree = ref true in
  let measure_pair tree =
    let n = Tree.node_count tree in
    let full () = Bitset.full n in
    Tree.build_index tree;
    let ns_idx =
      measure_ns ~name:"bench.idx.indexed" (fun () ->
          let ctx = Jnl_eval.context tree in
          ignore (Jnl_eval.pre ctx step (full ())))
    in
    let ns_sweep =
      measure_ns ~name:"bench.idx.sweep" (fun () ->
          let ctx = Jnl_eval.context ~use_index:false tree in
          ignore (Jnl_eval.pre ctx step (full ())))
    in
    let via_idx = Jnl_eval.pre (Jnl_eval.context tree) step (full ()) in
    let via_sweep =
      Jnl_eval.pre (Jnl_eval.context ~use_index:false tree) step (full ())
    in
    let agree = Bitset.equal via_idx via_sweep in
    if not agree then all_agree := false;
    (ns_idx, ns_sweep, Bitset.cardinal via_idx, agree)
  in
  (* size axis at fixed hit density: the sweep grows with |J|, the
     indexed strategy with the number of matching edges *)
  row "%-12s %-10s %-16s %-16s %-10s %-8s\n" "|J| (nodes)" "matches"
    "indexed (ms)" "sweep (ms)" "speedup" "agree";
  let pts_idx = ref [] and pts_sweep = ref [] in
  List.iter
    (fun n_objs ->
      let tree = Tree.of_value (index_doc n_objs ~hit_every:100) in
      let nodes = Tree.node_count tree in
      let ns_idx, ns_sweep, matches, agree = measure_pair tree in
      pts_idx := (float_of_int nodes, ns_idx) :: !pts_idx;
      pts_sweep := (float_of_int nodes, ns_sweep) :: !pts_sweep;
      row "%-12d %-10d %-16.4f %-16.4f %-10.1f %-8b\n" nodes matches
        (ns_idx /. 1e6) (ns_sweep /. 1e6) (ns_sweep /. ns_idx) agree)
    [ 250; 2_500; 25_000 ];
  row "fitted exponents in |J|: indexed %.2f, sweep %.2f (sweep is the linear one)\n"
    (fitted_exponent !pts_idx) (fitted_exponent !pts_sweep);
  (* matched-edge axis at fixed size: only the indexed strategy should
     care how often the label occurs *)
  row "%-12s %-10s %-16s %-16s %-8s\n" "|J| (nodes)" "matches" "indexed (ms)"
    "sweep (ms)" "agree";
  let pts_m = ref [] in
  List.iter
    (fun hit_every ->
      let tree = Tree.of_value (index_doc 25_000 ~hit_every) in
      let ns_idx, ns_sweep, matches, agree = measure_pair tree in
      pts_m := (float_of_int matches, ns_idx) :: !pts_m;
      row "%-12d %-10d %-16.4f %-16.4f %-8b\n" (Tree.node_count tree) matches
        (ns_idx /. 1e6) (ns_sweep /. 1e6) agree)
    [ 12_500; 1_000; 100; 10; 1 ];
  row
    "indexed time vs matches: fitted exponent %.2f (grows with the matching-edge\n\
     count; the constant term is the output-set allocation)\n"
    (fitted_exponent !pts_m);
  row "index vs sweep agreement: %s\n"
    (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1

(* ---- E-ING: one-pass string→tree ingestion --------------------------------- *)

(* Field-by-field identity of two trees through the public API: same
   node numbering, kinds, edges, parents, sizes, heights, depths and
   hashes — strictly stronger than structural equality. *)
let tree_identical t1 t2 =
  let n = Tree.node_count t1 in
  Tree.node_count t2 = n
  && Tree.equal_across t1 Tree.root t2 Tree.root
  &&
  let ok = ref true in
  for nd = 0 to n - 1 do
    if
      Tree.kind t1 nd <> Tree.kind t2 nd
      || Tree.edge_from_parent t1 nd <> Tree.edge_from_parent t2 nd
      || Tree.parent_id t1 nd <> Tree.parent_id t2 nd
      || Tree.size t1 nd <> Tree.size t2 nd
      || Tree.height_of t1 nd <> Tree.height_of t2 nd
      || Tree.depth t1 nd <> Tree.depth t2 nd
      || Tree.subtree_hash t1 nd <> Tree.subtree_hash t2 nd
    then ok := false
  done;
  !ok

let ingest () =
  header "E-ING: one-pass string→tree ingestion vs parse-then-build";
  row "%-12s %-10s %-16s %-14s %-10s %-8s\n" "|J| (nodes)" "bytes"
    "two-stage MB/s" "direct MB/s" "speedup" "agree";
  let all_agree = ref true in
  List.iter
    (fun n ->
      let rng = Jworkload.Prng.create 12 in
      let doc = Jworkload.Gen_json.sized rng n in
      let text = Value.to_string doc in
      let bytes = float_of_int (String.length text) in
      let ns_two =
        measure_ns ~name:"bench.ing.two_stage" (fun () ->
            ignore (Tree.of_value (Jsont.Parser.parse_exn text)))
      in
      let ns_direct =
        measure_ns ~name:"bench.ing.direct" (fun () ->
            ignore (Tree.of_string_exn text))
      in
      let t_direct = Tree.of_string_exn text in
      let t_oracle = Tree.of_value (Jsont.Parser.parse_exn text) in
      let agree = tree_identical t_direct t_oracle in
      if not agree then all_agree := false;
      let mbs ns = bytes /. ns *. 1e9 /. 1e6 in
      row "%-12d %-10.0f %-16.1f %-14.1f %-10.2f %-8b\n"
        (Tree.node_count t_oracle) bytes (mbs ns_two) (mbs ns_direct)
        (ns_two /. ns_direct) agree)
    [ 1_000; 8_000; 64_000 ];
  (* malformed and out-of-model inputs must fail with the same rendered
     position and message on both routes *)
  let malformed =
    [ {|{"a":1,}|}; {|[1,2|}; {|{"a" 1}|}; "nul"; {|{"a":1,"a":2}|};
      {|[1, -3]|}; {|"unterminated|}; {|{"a":tru}|}; {|[1,2]]|};
      {|"\ud800x"|} ]
  in
  List.iter
    (fun txt ->
      let render = Format.asprintf "%a" Jsont.Parser.pp_error in
      match (Tree.of_string txt, Jsont.Parser.parse txt) with
      | Error e1, Error e2 ->
        if render e1 <> render e2 then begin
          row "error mismatch on %S: %s vs %s\n" txt (render e1) (render e2);
          all_agree := false
        end
      | Ok _, Ok _ -> ()
      | Ok _, Error e ->
        row "direct accepted %S, oracle rejects: %s\n" txt (render e);
        all_agree := false
      | Error e, Ok _ ->
        row "oracle accepted %S, direct rejects: %s\n" txt (render e);
        all_agree := false)
    malformed;
  row "ingest agreement: %s\n" (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1

(* ---- E-BATCH: multicore batch evaluation ----------------------------------- *)

let batch () =
  header "E-BATCH: batch evaluation sharded across domains";
  let n_docs = 2_000 in
  let rng = Jworkload.Prng.create 13 in
  let docs =
    Array.init n_docs (fun i ->
        Value.to_string
          (Value.Obj
             [ ("id", Value.Num i);
               ( "name",
                 Value.Obj
                   [ ("first",
                      Value.Str (if i mod 3 = 0 then "John" else "Jane")) ] );
               ("payload", Jworkload.Gen_json.sized rng 120) ]))
  in
  let phi = Jnl.parse_exn {|eq(.name.first, "John")|} in
  let work text =
    let tree = Tree.of_string_exn text in
    let ctx = Jnl_eval.context tree in
    string_of_bool (Jnl_eval.holds ctx Tree.root phi)
  in
  (* metric totals measured as deltas so the comparison is independent
     of whatever earlier experiments recorded *)
  let run jobs =
    let c0 = Obs.Metrics.counter_value "parse.values" in
    let d0 = Obs.Metrics.counter_value "par.batch.docs" in
    let results, ms =
      wall_ms
        ~name:(Printf.sprintf "bench.batch.jobs%d" jobs)
        (fun () -> Par.Batch.map ~jobs work docs)
    in
    ( results,
      ms,
      Obs.Metrics.counter_value "parse.values" - c0,
      Obs.Metrics.counter_value "par.batch.docs" - d0 )
  in
  let base_results, base_ms, base_values, base_docs = run 1 in
  row "%-8s %-12s %-12s %-14s %-14s %-8s\n" "jobs" "wall (ms)" "speedup"
    "parse.values" "batch.docs" "agree";
  row "%-8d %-12.1f %-12s %-14d %-14d %-8s\n" 1 base_ms "1.00" base_values
    base_docs "-";
  let all_agree = ref true in
  List.iter
    (fun jobs ->
      let results, ms, values, ndocs = run jobs in
      let agree =
        results = base_results && values = base_values && ndocs = base_docs
      in
      if not agree then all_agree := false;
      row "%-8d %-12.1f %-12.2f %-14d %-14d %-8b\n" jobs ms (base_ms /. ms)
        values ndocs agree)
    [ 2; 4 ];
  row
    "(speedup tracks the machine's core count; determinism — identical \
     outputs\n and metric totals for every job count — is the gated \
     property)\n";
  row "batch agreement: %s\n" (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1

(* ---- E-VAL: compile-once schema validation -------------------------------- *)

let validate_exp () =
  header "E-VAL: compiled schema plans vs the structural interpreter";
  let all_agree = ref true in

  (* (a) throughput on the property-heavy catalog schema *)
  let schema = Jschema.Parse.of_string_exn Jworkload.Catalog.catalog_schema in
  let plan = Jschema.Validate.Plan.compile schema in
  let check = Jschema.Validate.prepare schema in
  let rng = Jworkload.Prng.create 14 in
  let docs = Array.init 300 (fun _ -> Jworkload.Catalog.catalog_doc rng) in
  let texts = Array.map Value.to_string docs in
  Array.iteri
    (fun i doc ->
      let a = check doc in
      let b = Jschema.Validate.Plan.run plan doc in
      let c =
        Jschema.Validate.Plan.run_tree plan (Tree.of_string_exn texts.(i))
      in
      let d = Jschema.Validate.validates schema doc in
      if not (a = b && b = c && c = d) then all_agree := false)
    docs;
  let n = float_of_int (Array.length docs) in
  let ns_interp =
    measure_ns ~name:"bench.validate.interp" (fun () ->
        Array.iter (fun d -> ignore (check d)) docs)
  in
  let ns_plan =
    measure_ns ~name:"bench.validate.plan" (fun () ->
        Array.iter (fun d -> ignore (Jschema.Validate.Plan.run plan d)) docs)
  in
  let ns_tree =
    measure_ns ~name:"bench.validate.tree" (fun () ->
        Array.iter
          (fun text ->
            ignore (Jschema.Validate.Plan.run_tree plan (Tree.of_string_exn text)))
          texts)
  in
  row "catalog schema: %d plan nodes, %d documents\n"
    (Jschema.Validate.Plan.node_count plan)
    (Array.length docs);
  row "%-36s %12s %14s\n" "engine" "ns/doc" "docs/sec";
  let engine_row name ns =
    row "%-36s %12.0f %14.0f\n" name (ns /. n) (n /. (ns /. 1e9))
  in
  engine_row "interpreted (prepared, Value.t)" ns_interp;
  engine_row "compiled plan (Value.t input)" ns_plan;
  engine_row "compiled plan (string -> Tree)" ns_tree;
  let speedup = ns_interp /. ns_plan in
  Obs.Metrics.add "bench.validate.speedup_x100" (int_of_float (speedup *. 100.));
  row "catalog speedup (compiled over interpreted): %.1fx (target: >= 3x)%s\n"
    speedup
    (if speedup >= 3. then "" else "  ** BELOW TARGET **");

  (* (b) the $ref-sharing family: constant-factor vs asymptotic gap *)
  row "\n$ref-sharing instance (anyOf doubling over a shared failing leaf):\n";
  row "%-6s %14s %14s %12s\n" "k" "interp ns" "compiled ns" "ratio";
  let points =
    List.map
      (fun k ->
        let schema =
          Jschema.Parse.of_string_exn (Jworkload.Catalog.ref_sharing_schema k)
        in
        let plan = Jschema.Validate.Plan.compile schema in
        let check = Jschema.Validate.prepare schema in
        let doc = Jworkload.Catalog.ref_sharing_doc in
        if check doc <> Jschema.Validate.Plan.run plan doc then
          all_agree := false;
        let ni = measure_ns (fun () -> ignore (check doc)) in
        let np =
          measure_ns (fun () -> ignore (Jschema.Validate.Plan.run plan doc))
        in
        row "%-6d %14.0f %14.0f %12.1f\n" k ni np (ni /. np);
        (k, ni, np))
      [ 8; 12; 16 ]
  in
  (* measured doubling rate of the interpreter along k (2.0 = the 2^k
     blowup); the compiled plan should stay essentially flat *)
  let doubling times =
    match (List.hd times, List.nth times (List.length times - 1)) with
    | (k0, t0), (k1, t1) -> exp (log (t1 /. t0) /. float_of_int (k1 - k0))
  in
  let interp_rate = doubling (List.map (fun (k, ni, _) -> (k, ni)) points) in
  let plan_rate = doubling (List.map (fun (k, _, np) -> (k, np)) points) in
  row
    "per-step growth: interpreted x%.2f (2^k predicts x2.00), compiled x%.2f\n"
    interp_rate plan_rate;
  Obs.Metrics.add "bench.validate.ref_interp_rate_x100"
    (int_of_float (interp_rate *. 100.));
  Obs.Metrics.add "bench.validate.ref_plan_rate_x100"
    (int_of_float (plan_rate *. 100.));
  if interp_rate < 1.5 || plan_rate > 1.3 then begin
    row "** asymptotic separation NOT observed **\n";
    all_agree := false
  end;

  (* (c) the same treatment for JSL: interpreted eval vs compiled plan *)
  row "\nJSL: set-at-a-time eval vs compiled plan (16k-node document):\n";
  let frng = Jworkload.Prng.create 99 in
  let cfg =
    { Jworkload.Gen_formula.default with
      size = 60;
      allow_nondet = true;
      allow_negation = true }
  in
  let f = Jworkload.Gen_formula.jsl frng cfg in
  let tree = Tree.of_value (Jworkload.Gen_json.sized frng 16_000) in
  let jsl_plan = Jsl.compile f in
  let sat_i = Jsl.eval (Jsl.context tree) f in
  let sat_p = Jsl.eval_plan (Jsl.context tree) jsl_plan in
  if not (Bitset.equal sat_i sat_p) then all_agree := false;
  let ns_eval =
    measure_ns ~name:"bench.validate.jsl_interp" (fun () ->
        ignore (Jsl.eval (Jsl.context tree) f))
  in
  let ns_eplan =
    measure_ns ~name:"bench.validate.jsl_plan" (fun () ->
        ignore (Jsl.eval_plan (Jsl.context tree) jsl_plan))
  in
  let ns_compile =
    measure_ns ~name:"bench.validate.jsl_compile" (fun () ->
        ignore (Jsl.compile f))
  in
  row "formula size %d -> %d plan nodes\n" (Jsl.size f) (Jsl.plan_size jsl_plan);
  row "%-36s %12.0f ns/eval\n" "interpreted eval (fresh ctx)" ns_eval;
  row "%-36s %12.0f ns/eval\n" "compiled eval_plan (fresh ctx)" ns_eplan;
  row "%-36s %12.0f ns\n" "one-time compile" ns_compile;
  if ns_eval > ns_eplan then
    row "crossover: compile amortized after %.1f evaluations\n"
      (ns_compile /. (ns_eval -. ns_eplan))
  else row "crossover: interpreted eval is not slower on this formula\n";

  row "\nvalidate agreement: %s\n" (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1

(* ---- serve: the validation daemon ------------------------------------------- *)

(* Load generator for [jsonlogic serve]: requests/sec against a live
   daemon as client connections scale, cold plan cache (a compile per
   request) against warm (content-hash hit), and an agreement gate
   checking every daemon verdict — catalog corpus plus malformed
   documents — against the in-process stream checker the CLI uses.
   The warm path must clear 2x cold: that is the cache earning its
   keep, gated like the other agreement modes. *)
let serve_exp () =
  row "== serve: validation-as-a-service (daemon, plan cache) ==\n";
  let schema_text = Jworkload.Catalog.catalog_schema in
  let rng = Jworkload.Prng.create 77 in
  let docs =
    Array.init 160 (fun _ ->
        Value.to_string (Jworkload.Catalog.catalog_doc rng))
  in
  let malformed =
    [| "{"; "{\"sku\":"; "[1,2"; "tru"; "12 34"; ""; "{\"sku\":01}" |]
  in
  let sock = Filename.temp_file "jserve_bench" ".sock" in
  Sys.remove sock;
  let cfg = Jserve.Server.default_config (`Unix sock) in
  let cfg = { cfg with Jserve.Server.jobs = 4 } in
  let srv = Jserve.Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Jserve.Server.stop srv;
      if Sys.file_exists sock then Sys.remove sock)
    (fun () ->
      let endpoint = Jserve.Server.endpoint srv in
      let with_client f =
        let c = Jserve.Client.connect endpoint in
        Fun.protect ~finally:(fun () -> Jserve.Client.close c) (fun () -> f c)
      in
      let unwrap = function
        | Ok v -> v
        | Error m -> failwith ("daemon error: " ^ m)
      in

      (* -- agreement gate: daemon verdicts vs the CLI stream checker -- *)
      let plan =
        Jschema.Validate.Plan.compile (Jschema.Parse.of_string_exn schema_text)
      in
      let cli_cell doc =
        match
          Jsont.Parser.wrap (fun () ->
              Jschema.Validate.Plan.run_stream
                ~budget:(Obs.Budget.create ()) plan doc)
        with
        | Ok true -> "valid"
        | Ok false -> "INVALID"
        | Error e -> "error: " ^ Format.asprintf "%a" Jsont.Parser.pp_error e
      in
      let all_agree = ref true in
      with_client (fun c ->
          let id = unwrap (Jserve.Client.put_schema c schema_text) in
          Array.iter
            (fun doc ->
              let daemon =
                unwrap (Jserve.Client.validate c ~schema_id:id doc)
              in
              let cli = cli_cell doc in
              if daemon <> cli then begin
                all_agree := false;
                row "DISAGREE daemon=%S cli=%S on %s\n" daemon cli
                  (String.sub doc 0 (min 40 (String.length doc)))
              end)
            (Array.append docs malformed));

      (* -- cold vs warm plan cache -- *)
      let time_per_request label metric n f =
        let t0 = Obs.Budget.now_mono () in
        f ();
        let dt = Obs.Budget.now_mono () -. t0 in
        let ns = dt /. float_of_int n *. 1e9 in
        Obs.Metrics.observe_ns metric ns;
        row "%-36s %12.0f ns/request %10.0f req/s\n" label ns
          (float_of_int n /. dt);
        ns
      in
      let cold_docs = Array.sub docs 0 24 in
      let ns_cold =
        with_client (fun c ->
            time_per_request "cold cache (FLUSH + inline schema)"
              "bench.serve.cold" (Array.length cold_docs) (fun () ->
                Array.iter
                  (fun doc ->
                    ignore (unwrap (Jserve.Client.flush c));
                    ignore
                      (unwrap
                         (Jserve.Client.validate_inline c ~schema:schema_text
                            doc)))
                  cold_docs))
      in
      let ns_warm =
        with_client (fun c ->
            let id = unwrap (Jserve.Client.put_schema c schema_text) in
            time_per_request "warm cache (VALIDATE by schema-id)"
              "bench.serve.warm" (Array.length docs) (fun () ->
                Array.iter
                  (fun doc ->
                    ignore (unwrap (Jserve.Client.validate c ~schema_id:id doc)))
                  docs))
      in
      let speedup = ns_cold /. ns_warm in
      row "warm speedup over cold: %.1fx (gate: >= 2x)\n" speedup;

      (* -- requests/sec as connections scale (warm cache) -- *)
      row "\n%-14s %14s\n" "connections" "req/s";
      let schema_id = Jserve.Plan_cache.id_of_schema schema_text in
      List.iter
        (fun conns ->
          let per_conn = 120 in
          let t0 = Obs.Budget.now_mono () in
          let workers =
            List.init conns (fun k ->
                Domain.spawn (fun () ->
                    with_client (fun c ->
                        for i = 0 to per_conn - 1 do
                          ignore
                            (unwrap
                               (Jserve.Client.validate c ~schema_id
                                  docs.((k + i) mod Array.length docs)))
                        done)))
          in
          List.iter Domain.join workers;
          let dt = Obs.Budget.now_mono () -. t0 in
          let rps = float_of_int (conns * per_conn) /. dt in
          Obs.Metrics.add
            (Printf.sprintf "bench.serve.rps.c%d" conns)
            (int_of_float rps);
          row "%-14d %14.0f\n" conns rps)
        [ 1; 2; 4 ];

      row "\nserve agreement: %s\n"
        (if !all_agree then "COMPLETE" else "BROKEN");
      if (not !all_agree) || speedup < 2.0 then exit 1)

(* ---- E-CORPUS: persistent index vs reparse-every-time ----------------------- *)

(* The retrieval-system experiment: build the lib/index postings file
   over a generated NDJSON corpus once, then answer a query set both
   ways — through the index (postings-only where the query is
   navigational-core, prefilter + selective reparse otherwise) and by
   reparsing every line per query (what eval --files-from does).  The
   gated properties: verdicts identical on every query, and an
   aggregate queries/sec speedup of at least 10x.  Corpus size in MB
   comes from BENCH_CORPUS_MB (default 100). *)
let corpus_exp () =
  header "E-CORPUS: persistent corpus index vs reparse baseline";
  let target_mb =
    match Sys.getenv_opt "BENCH_CORPUS_MB" with
    | Some s -> (match int_of_string_opt s with Some n when n > 0 -> n | _ -> 100)
    | None -> 100
  in
  let dir = Filename.temp_file "bench_corpus" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let corpus = Filename.concat dir "corpus.ndjson" in
  let idx = Filename.concat dir "corpus.idx" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ corpus; idx ];
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      (* generate: one API record in four amid larger heterogeneous
         shapes — the retrieval mix a structural index targets, where
         most lines are not of the queried record type *)
      let rng = Jworkload.Prng.create 2024 in
      let target = target_mb * 1024 * 1024 in
      let written = ref 0 in
      let ndocs = ref 0 in
      Out_channel.with_open_bin corpus (fun oc ->
          while !written < target do
            let v =
              if !ndocs mod 4 = 0 then
                Jworkload.Gen_json.api_record rng (1 + (!ndocs mod 8))
              else Jworkload.Gen_json.sized rng (64 + (!ndocs mod 257))
            in
            let line = Jsont.Printer.compact v in
            Out_channel.output_string oc line;
            Out_channel.output_char oc '\n';
            written := !written + String.length line + 1;
            incr ndocs
          done);
      row "corpus: %d documents, %.1f MB\n" !ndocs
        (float_of_int !written /. 1e6);

      (* build once *)
      let stats, build_ms =
        wall_ms ~name:"bench.corpus.build" (fun () ->
            match Jindex.Writer.build ~jobs:4 ~corpus ~output:idx () with
            | Ok s -> s
            | Error m -> failwith ("index build failed: " ^ m))
      in
      row "build: %.0f ms (%.1f MB/s), index %.1f MB (%.2fx of corpus)\n"
        build_ms
        (float_of_int !written /. 1e6 /. (build_ms /. 1000.))
        (float_of_int stats.Jindex.Writer.bytes /. 1e6)
        (float_of_int stats.Jindex.Writer.bytes /. float_of_int !written);
      let r =
        match Jindex.Reader.open_ idx with
        | Ok r -> r
        | Error m -> failwith ("index open failed: " ^ m)
      in

      (* the reparse-everything baseline, one verdict per line — the
         exact per-document computation of eval --files-from *)
      let lines =
        In_channel.with_open_bin corpus In_channel.input_all
        |> String.split_on_char '\n'
        |> List.filter (fun l -> String.trim l <> "")
        |> Array.of_list
      in
      let baseline phi =
        Par.Batch.map ~jobs:4
          (fun text ->
            match Tree.of_string ~budget:(Obs.Budget.create ()) text with
            | Error e -> "error: " ^ Format.asprintf "%a" Jsont.Parser.pp_error e
            | Ok tree -> (
              match
                let ctx =
                  Jnl_eval.context ~budget:(Obs.Budget.create ()) tree
                in
                Jnl_eval.holds ctx Tree.root phi
              with
              | b -> string_of_bool b
              | exception Failure m -> "error: " ^ m
              | exception Obs.Budget.Exhausted rs ->
                "error: " ^ Obs.Budget.describe rs))
          lines
      in
      (* three plan classes, each gated separately: [core] existence
         chains (postings-only), [eq] scalar equalities (value-postings
         pushdown — must never reparse), [filtered] residual predicates
         (prefilter + selective reparse) *)
      let queries =
        List.map
          (fun (cls, label, q) -> (cls, label, Jnl.parse_exn q))
          [ ("core", "core: one key", "<.name.first>");
            ("core", "core: key+pos chain", "<.orders[0].lines[0].sku>");
            ("core", "core: absent key", "<.no_such_key_anywhere>");
            ("core", "core: boolean mix", "<.name.first> & !<.orders[2]>");
            ("eq", "eq: common string", "eq(.name.first, \"John\")");
            ( "eq", "eq: rare string",
              "eq(.orders[0].lines[0].sku, \"SKU-0-0\")" );
            ("eq", "eq: number", "eq(.age, 42)");
            ("eq", "eq: absent value", "eq(.name.first, \"Zebediah\")");
            ( "eq", "eq: disjunction",
              "eq(.name.first, \"John\") | eq(.name.first, \"Sue\")" );
            ("eq", "eq: ranked conj", "<.id> & eq(.name.first, \"Sue\")");
            ( "filtered", "filtered: range test",
              "<.orders[0:*]?(eq(.status, \"shipped\"))>" );
            ("filtered", "filtered: negative idx", "<.hobbies[-1]>") ]
      in
      let slug label =
        String.map
          (fun ch ->
            if (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') then ch
            else '_')
          (String.lowercase_ascii label)
      in
      let all_agree = ref true in
      let base_total = ref 0. in
      let idx_total = ref 0. in
      let class_ms = Hashtbl.create 4 in
      let class_add cls base idxm =
        let b, i =
          Option.value (Hashtbl.find_opt class_ms cls) ~default:(0., 0.)
        in
        Hashtbl.replace class_ms cls (b +. base, i +. idxm)
      in
      let eq_value_hits = ref 0 in
      let eq_reparsed = ref 0 in
      row "\n%-24s %-14s %-14s %-10s %-8s\n" "query" "reparse (ms)"
        "indexed (ms)" "speedup" "agree";
      List.iter
        (fun (cls, label, phi) ->
          let base, base_ms = wall_ms (fun () -> baseline phi) in
          let hits0 = Obs.Metrics.counter_value "index.query.value_hits" in
          let rep0 = Obs.Metrics.counter_value "index.query.reparsed" in
          let verdicts, idx_ms =
            wall_ms (fun () ->
                match Jindex.Query.run ~jobs:4 r phi with
                | Ok v -> Array.map Jindex.Query.verdict_string v
                | Error m -> failwith ("index query failed: " ^ m))
          in
          if cls = "eq" then begin
            eq_value_hits :=
              !eq_value_hits
              + Obs.Metrics.counter_value "index.query.value_hits"
              - hits0;
            eq_reparsed :=
              !eq_reparsed
              + Obs.Metrics.counter_value "index.query.reparsed"
              - rep0
          end;
          let agree = verdicts = base in
          if not agree then all_agree := false;
          base_total := !base_total +. base_ms;
          idx_total := !idx_total +. idx_ms;
          class_add cls base_ms idx_ms;
          Obs.Metrics.add
            (Printf.sprintf "bench.corpus.query.%s.speedup_x10" (slug label))
            (int_of_float (base_ms /. idx_ms *. 10.));
          row "%-24s %-14.0f %-14.1f %-10.1f %-8b\n" label base_ms idx_ms
            (base_ms /. idx_ms) agree)
        queries;
      let speedup = !base_total /. !idx_total in
      let qps = float_of_int (List.length queries) /. (!idx_total /. 1000.) in
      let class_speedup cls =
        match Hashtbl.find_opt class_ms cls with
        | Some (b, i) when i > 0. -> b /. i
        | _ -> 0.
      in
      row "\nper class:\n";
      List.iter
        (fun cls ->
          let s = class_speedup cls in
          Obs.Metrics.add
            (Printf.sprintf "bench.corpus.class.%s.speedup_x10" cls)
            (int_of_float (s *. 10.));
          row "  %-10s %.1fx\n" cls s)
        [ "core"; "eq"; "filtered" ];
      row
        "\naggregate: %.1fx over reparse (%.1f vs %.1f queries/sec on %d \
         docs)\n"
        speedup qps
        (float_of_int (List.length queries) /. (!base_total /. 1000.))
        !ndocs;
      Obs.Metrics.add "bench.corpus.docs" !ndocs;
      Obs.Metrics.add "bench.corpus.corpus_bytes" !written;
      Obs.Metrics.add "bench.corpus.index_bytes" stats.Jindex.Writer.bytes;
      Obs.Metrics.add "bench.corpus.speedup_x10"
        (int_of_float (speedup *. 10.));
      Obs.Metrics.add "bench.corpus.queries_per_sec" (int_of_float qps);
      (* eq pushdown proof: value postings seeded the class, and not a
         single document was reparsed (the corpus has no error lines) *)
      let eq_pure = !eq_value_hits > 0 && !eq_reparsed = 0 in
      row "eq pushdown: %d value hits, %d reparses (%s)\n" !eq_value_hits
        !eq_reparsed
        (if eq_pure then "postings-only" else "BROKEN");
      row "corpus agreement: %s\n"
        (if !all_agree then "COMPLETE" else "BROKEN");
      if
        (not !all_agree) || (not eq_pure) || speedup < 10.0
        || class_speedup "eq" < 50.0
      then exit 1)

(* ---- E-MONGO: aggregation pipelines sharded across domains ----------------- *)

let mongo_exp () =
  header "E-MONGO: aggregation pipeline throughput and the JNL differential";
  let n_docs =
    match Sys.getenv_opt "BENCH_MONGO_DOCS" with
    | Some s -> ( try max 100 (int_of_string s) with _ -> 4_000)
    | None -> 4_000
  in
  let rng = Jworkload.Prng.create 23 in
  let texts =
    Array.init n_docs (fun i ->
        Value.to_string
          (if i mod 4 = 3 then
             match Jworkload.Gen_json.sized rng 60 with
             | Value.Obj _ as v -> v
             | v -> Value.Obj [ ("k1", v) ]
           else Jworkload.Gen_json.api_record rng 3))
  in
  let full =
    Jquery.Mongo_agg.parse_string_exn
      {|[{"$match": {"age": {"$gte": 30}}},
         {"$unwind": "$orders"},
         {"$project": {"st": "$orders.status", "total": "$orders.total"}},
         {"$group": {"_id": "$st", "orders": {"$count": {}},
                     "sum": {"$sum": "$total"}, "hi": {"$max": "$total"}}},
         {"$sort": {"sum": 0}}]|}
  in
  let streaming, blocking = Jquery.Mongo_agg.split_streaming full in
  (* the sharded unit of work: parse one document straight to a tree
     and run the streaming prefix over it *)
  let work text =
    Jquery.Mongo_agg.apply_doc streaming
      (Jquery.Mongo_agg.doc_of_tree (Tree.of_string_exn text))
  in
  let run jobs =
    let p0 = Obs.Metrics.counter_value "mongo.agg.match.pass" in
    let u0 = Obs.Metrics.counter_value "mongo.agg.unwind.out" in
    let results, ms =
      wall_ms ~name:(Printf.sprintf "bench.mongo.jobs%d" jobs) (fun () ->
          let per_doc = Par.Batch.map ~jobs work texts in
          let flat = List.concat (Array.to_list per_doc) in
          List.map
            (fun d -> Value.to_string (Jquery.Mongo_agg.doc_value d))
            (Jquery.Mongo_agg.run_docs blocking flat))
    in
    ( results,
      ms,
      Obs.Metrics.counter_value "mongo.agg.match.pass" - p0,
      Obs.Metrics.counter_value "mongo.agg.unwind.out" - u0 )
  in
  let base, base_ms, base_pass, base_unwound = run 1 in
  row "%d documents through match/unwind/project/group/sort (%d groups out)\n"
    n_docs (List.length base);
  let dps ms = float_of_int n_docs /. (ms /. 1000.) in
  row "%-8s %-12s %-12s %-14s %-8s\n" "jobs" "wall (ms)" "speedup" "docs/sec"
    "agree";
  row "%-8d %-12.1f %-12s %-14.0f %-8s\n" 1 base_ms "1.00" (dps base_ms) "-";
  let all_agree = ref true in
  let best_speedup = ref 1.0 in
  List.iter
    (fun jobs ->
      let results, ms, pass, unwound = run jobs in
      (* byte-identical output and lane-merged counter totals *)
      let agree =
        results = base && pass = base_pass && unwound = base_unwound
      in
      if not agree then all_agree := false;
      if base_ms /. ms > !best_speedup then best_speedup := base_ms /. ms;
      row "%-8d %-12.1f %-12.2f %-14.0f %-8b\n" jobs ms (base_ms /. ms) (dps ms)
        agree)
    [ 2; 4 ];
  Obs.Metrics.add "bench.mongo.docs" n_docs;
  Obs.Metrics.add "bench.mongo.docs_per_sec" (int_of_float (dps base_ms));
  Obs.Metrics.add "bench.mongo.speedup_x100"
    (int_of_float (!best_speedup *. 100.));
  row
    "(speedup tracks the machine's core count; determinism — identical\n\
    \ outputs and counter totals for every job count — is the gated property)\n";
  (* the navigational core against its pure-JNL translation *)
  let nav =
    Jquery.Mongo_agg.parse_string_exn
      {|[{"$match": {"orders.status": {"$exists": true}}},
         {"$unwind": "$orders"},
         {"$project": {"orders.status": 1, "orders.total": 1, "name.first": 1}}]|}
  in
  let sample =
    List.init (min 400 n_docs) (fun i -> Jsont.Parser.parse_exn texts.(i))
  in
  let direct = List.map Value.to_string (Jquery.Mongo_agg.run nav sample) in
  let jnl_agrees =
    match Jquery.Mongo_agg.run_via_jnl nav sample with
    | Ok vs -> List.map Value.to_string vs = direct
    | Error m ->
      row "JNL route failed: %s\n" m;
      false
  in
  if not jnl_agrees then all_agree := false;
  row "navigational differential: %d docs in, %d out, JNL route %s\n"
    (List.length sample) (List.length direct)
    (if jnl_agrees then "agrees" else "DISAGREES");
  Obs.Metrics.add "bench.mongo.agreement" (if !all_agree then 1 else 0);
  row "mongo agreement: %s\n" (if !all_agree then "COMPLETE" else "BROKEN");
  if not !all_agree then exit 1

(* ---- driver ----------------------------------------------------------------- *)

let experiments =
  [ ("fig1", figure1); ("table1", table1); ("p1", p1); ("p2", p2); ("p3", p3);
    ("p4", p4); ("p5", p5); ("p6", p6); ("p7", p7); ("p9", p9); ("t1", t1);
    ("t2", t2); ("stream", strm); ("dlog", dlog); ("xml", xml); ("simp", simp);
    ("index", index_exp); ("ingest", ingest); ("batch", batch);
    ("validate", validate_exp); ("serve", serve_exp);
    ("corpus", corpus_exp); ("mongo", mongo_exp) ]

let () =
  Obs.Metrics.set_enabled true;
  (* --json DIR: after each experiment, write its metrics (counters and
     timings recorded since the experiment started) to DIR/BENCH_<name>.json *)
  let rec extract_json acc = function
    | "--json" :: dir :: rest -> (Some dir, List.rev_append acc rest)
    | x :: rest -> extract_json (x :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let json_dir, names = extract_json [] (List.tl (Array.to_list Sys.argv)) in
  let requested =
    match names with [] -> List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> (
        match json_dir with
        | None -> f ()
        | Some dir ->
          Obs.Metrics.reset ();
          f ();
          let path = Filename.concat dir ("BENCH_" ^ name ^ ".json") in
          Out_channel.with_open_text path (fun oc ->
              output_string oc (Obs.Metrics.dump_json ());
              output_char oc '\n'))
      | None ->
        Printf.printf "unknown experiment %S; available: %s\n" name
          (String.concat ", " (List.map fst experiments)))
    requested;
  (* every number above was recorded through lib/obs; the dump doubles
     as a machine-readable summary of the run *)
  print_newline ();
  print_string "== obs metrics ==\n";
  print_string (Obs.Metrics.dump_text ())
