#!/bin/sh
# CI entry point: build, full test suite, and the budget regression
# gate, all under hard timeouts so a runaway search or an accidental
# unbounded recursion fails the job instead of hanging it.
set -eu

cd "$(dirname "$0")/.."

run() {
  # timeout(1) is in coreutils on the GitHub runners and in the dev
  # container alike
  secs=$1
  shift
  echo "+ timeout ${secs}s $*"
  timeout "$secs" "$@"
}

run 600 dune build @all
run 600 dune runtest

# Budget regression gate, exercised through the shipped binary so the
# CLI wiring is covered too.  A 100k-deep document must produce a
# structured error (exit 1 with an error: line), never a crash (exit
# 2+) or a hang — and the same input must pass when the ceiling is
# lifted.
JSONLOGIC=_build/default/bin/jsonlogic.exe
deep=$(mktemp)
trap 'rm -f "$deep"' EXIT
awk 'BEGIN { for (i = 0; i < 100000; i++) printf "["; printf "1";
             for (i = 0; i < 100000; i++) printf "]" }' > "$deep"

status=0
out=$(timeout 60 "$JSONLOGIC" parse "$deep" 2>&1) || status=$?
if [ "$status" != 1 ]; then
  echo "FAIL: 100k-deep parse: expected exit 1, got $status ($out)" >&2
  exit 1
fi
case $out in
  *"depth"*) ;;
  *) echo "FAIL: 100k-deep parse error does not mention depth: $out" >&2
     exit 1 ;;
esac

# the same input class passes once the ceiling is lifted (20k here:
# above the 10k default; the parser is linear in depth, but the pretty
# printer's indentation makes output quadratic, so stay modest)
deep20=$(mktemp)
awk 'BEGIN { for (i = 0; i < 20000; i++) printf "["; printf "1";
             for (i = 0; i < 20000; i++) printf "]" }' > "$deep20"
run 60 "$JSONLOGIC" parse --max-depth 30000 "$deep20" > /dev/null
rm -f "$deep20"

status=0
out=$(timeout 60 "$JSONLOGIC" parse --fuel 3 "$deep" 2>&1) || status=$?
if [ "$status" != 1 ]; then
  echo "FAIL: fuel-3 parse: expected exit 1, got $status ($out)" >&2
  exit 1
fi
case $out in
  *"fuel"*) ;;
  *) echo "FAIL: fuel-3 parse error does not mention fuel: $out" >&2
     exit 1 ;;
esac

# Differential gate: the 1000-case fuzz asserting the indexed and
# sweep pre-image strategies and the set-at-a-time and nodal engines
# agree on every observable (dune runtest covers this too; run it
# standalone so an agreement break is named in the CI log).
run 300 _build/default/test/test_jnl.exe test differential

# Indexed-vs-sweep bench smoke: scaling along the document-size and
# matching-edge axes, with a built-in bitset-equality check that exits
# non-zero on any indexed/sweep disagreement.
idx_out=$(run 120 _build/default/bench/main.exe index)
case $idx_out in
  *"agreement: COMPLETE"*) ;;
  *) echo "FAIL: index bench did not report complete agreement" >&2
     echo "$idx_out" >&2
     exit 1 ;;
esac

# --no-index must compute the same answer through the CLI wiring
noidx_doc=$(mktemp)
echo '{"xs":[10,20,30,40]}' > "$noidx_doc"
a=$(timeout 60 "$JSONLOGIC" select '$.xs[-2:]' "$noidx_doc")
b=$(timeout 60 "$JSONLOGIC" select --no-index '$.xs[-2:]' "$noidx_doc")
rm -f "$noidx_doc"
if [ "$a" != "$b" ] || [ -z "$a" ]; then
  echo "FAIL: select with and without --no-index disagree: [$a] vs [$b]" >&2
  exit 1
fi

# Ingestion differential gate: the direct string→tree path must build
# byte-identical trees to parse+of_value on generated documents and
# report identical rendered errors on malformed ones.
ing_out=$(run 300 _build/default/bench/main.exe ingest)
case $ing_out in
  *"ingest agreement: COMPLETE"*) ;;
  *) echo "FAIL: ingest bench did not report complete agreement" >&2
     echo "$ing_out" >&2
     exit 1 ;;
esac

# Batch determinism gate: identical outputs and metric totals for every
# job count (speedup tracks the runner's core count and is not gated).
batch_out=$(run 300 _build/default/bench/main.exe batch)
case $batch_out in
  *"batch agreement: COMPLETE"*) ;;
  *) echo "FAIL: batch bench did not report complete agreement" >&2
     echo "$batch_out" >&2
     exit 1 ;;
esac

# Batch CLI wiring: --files-from across 2 domains must produce one
# in-order line per input, agree with the sequential run, and fold a
# malformed document into a per-file error instead of dying.
batch_dir=$(mktemp -d)
batch_list="$batch_dir/list"
for i in $(seq 1 40); do
  if [ "$i" = 23 ]; then
    printf '{"name":{"first":}' > "$batch_dir/doc$i.json"   # malformed
  else
    printf '{"name":{"first":"John"},"age":%d}' "$i" > "$batch_dir/doc$i.json"
  fi
  echo "$batch_dir/doc$i.json" >> "$batch_list"
done
seq_out=$(timeout 120 "$JSONLOGIC" eval --files-from "$batch_list" --jobs 1 \
  'eq(.name.first, "John")')
par_out=$(timeout 120 "$JSONLOGIC" eval --files-from "$batch_list" --jobs 2 \
  'eq(.name.first, "John")')
rm -rf "$batch_dir"
if [ "$seq_out" != "$par_out" ]; then
  echo "FAIL: batch eval --jobs 1 and --jobs 2 disagree" >&2
  printf '%s\n---\n%s\n' "$seq_out" "$par_out" >&2
  exit 1
fi
if [ "$(printf '%s\n' "$par_out" | wc -l)" != 40 ]; then
  echo "FAIL: batch eval expected 40 result lines: $par_out" >&2
  exit 1
fi
case $par_out in
  *"doc23.json	error:"*) ;;
  *) echo "FAIL: malformed batch document did not fold into a per-file error" >&2
     echo "$par_out" >&2
     exit 1 ;;
esac

# Compiled-validation differential gate: the 1000-case fuzz asserting
# the compiled plan, the structural interpreter and the Tree-path
# executor return identical verdicts (standalone so a break is named
# in the CI log).
run 300 _build/default/test/test_compile.exe test differential

# Validate bench agreement mode: engine agreement on the catalog and
# $ref-sharing workloads is gated (the bench exits non-zero on any
# disagreement or on constant-factor-only $ref separation), and the
# JSON dump must land.
bench_json=$(mktemp -d)
val_out=$(run 300 _build/default/bench/main.exe --json "$bench_json" validate)
case $val_out in
  *"validate agreement: COMPLETE"*) ;;
  *) echo "FAIL: validate bench did not report complete agreement" >&2
     echo "$val_out" >&2
     exit 1 ;;
esac
if [ ! -s "$bench_json/BENCH_validate.json" ]; then
  echo "FAIL: validate bench did not write BENCH_validate.json" >&2
  exit 1
fi
rm -rf "$bench_json"

# Compiled-validate CLI wiring: the plan path (default), the
# interpreter (--no-compile) and a 2-domain compiled batch must print
# byte-identical path<TAB>verdict lines; mixed verdicts exit 1.
vdir=$(mktemp -d)
cat > "$vdir/schema.json" <<'EOF'
{"definitions":{"id":{"type":"number","minimum":1}},
 "type":"object","required":["a"],
 "properties":{"a":{"$ref":"#/definitions/id"}},
 "patternProperties":{"x_[a-z]*":{"type":"number"}},
 "additionalProperties":{"type":"string"}}
EOF
for i in $(seq 1 20); do
  if [ $((i % 3)) = 0 ]; then
    printf '{"a":0,"x_k":%d}' "$i" > "$vdir/doc$i.json"       # INVALID
  else
    printf '{"a":%d,"x_k":2,"note":"ok"}' "$i" > "$vdir/doc$i.json"
  fi
  echo "$vdir/doc$i.json" >> "$vdir/list"
done
vstatus=0
v_plan=$(timeout 120 "$JSONLOGIC" validate -s "$vdir/schema.json" \
  --files-from "$vdir/list") || vstatus=$?
if [ "$vstatus" != 1 ]; then
  echo "FAIL: compiled validate batch: expected exit 1 (mixed verdicts), got $vstatus" >&2
  exit 1
fi
v_interp=$(timeout 120 "$JSONLOGIC" validate -s "$vdir/schema.json" \
  --no-compile --files-from "$vdir/list") || true
v_jobs2=$(timeout 120 "$JSONLOGIC" validate -s "$vdir/schema.json" \
  --jobs 2 --files-from "$vdir/list") || true
rm -rf "$vdir"
if [ "$v_plan" != "$v_interp" ]; then
  echo "FAIL: validate with and without --no-compile disagree" >&2
  printf '%s\n---\n%s\n' "$v_plan" "$v_interp" >&2
  exit 1
fi
if [ "$v_plan" != "$v_jobs2" ]; then
  echo "FAIL: compiled validate --jobs 1 and --jobs 2 disagree" >&2
  printf '%s\n---\n%s\n' "$v_plan" "$v_jobs2" >&2
  exit 1
fi
case $v_plan in
  *"INVALID"*) ;;
  *) echo "FAIL: compiled validate batch found no INVALID document" >&2
     exit 1 ;;
esac

# Streaming validation differential gate: the three-way fuzz
# (run_stream = tree executor = interpreter), error/budget identity,
# spill units and NDJSON fault folding, run standalone so a break is
# named in the CI log.
run 300 _build/default/test/test_stream_validate.exe

# Stream bench agreement mode: run_stream vs tree vs interpreter on
# the catalog corpus plus the peak-heap gate (streaming heap growth
# must sit >= 10x below the tree route's); the JSON dump must land.
stream_json=$(mktemp -d)
strm_out=$(run 300 _build/default/bench/main.exe --json "$stream_json" stream)
case $strm_out in
  *"stream agreement: COMPLETE"*) ;;
  *) echo "FAIL: stream bench did not report complete agreement" >&2
     echo "$strm_out" >&2
     exit 1 ;;
esac
if [ ! -s "$stream_json/BENCH_stream.json" ]; then
  echo "FAIL: stream bench did not write BENCH_stream.json" >&2
  exit 1
fi
rm -rf "$stream_json"

# Streaming CLI wiring, part 1: --stream over --files-from must print
# byte-identical path<TAB>verdict lines to the tree path — including
# the rendered error for a malformed document — and exit 1 on mixed
# verdicts, exactly like the tree path does.
sdir=$(mktemp -d)
cat > "$sdir/schema.json" <<'EOF'
{"type":"object","required":["a"],
 "properties":{"a":{"type":"number","minimum":1}},
 "additionalProperties":{"type":"string"}}
EOF
for i in $(seq 1 30); do
  if [ "$i" = 7 ]; then
    printf '{"a":1,' > "$sdir/doc$i.json"                      # malformed
  elif [ $((i % 4)) = 0 ]; then
    printf '{"a":0}' > "$sdir/doc$i.json"                      # INVALID
  else
    printf '{"a":%d,"note":"ok"}' "$i" > "$sdir/doc$i.json"
  fi
  echo "$sdir/doc$i.json" >> "$sdir/list"
done
ts_status=0
s_tree=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --files-from "$sdir/list") || ts_status=$?
ss_status=0
s_stream=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --files-from "$sdir/list") || ss_status=$?
if [ "$s_tree" != "$s_stream" ] || [ "$ss_status" != 1 ] || [ "$ts_status" != 1 ]; then
  echo "FAIL: validate --stream vs tree --files-from mismatch (exits $ts_status/$ss_status)" >&2
  printf '%s\n---\n%s\n' "$s_tree" "$s_stream" >&2
  exit 1
fi

# Streaming CLI wiring, part 2: NDJSON mode (one document per line,
# path:line<TAB>result) with a malformed line folded into a per-line
# error; --jobs 2 must produce byte-identical output to the
# sequential line-at-a-time run.
nd="$sdir/docs.ndjson"
: > "$nd"
for i in $(seq 1 200); do
  if [ "$i" = 50 ]; then
    echo '{"a":1,"broken"' >> "$nd"
  elif [ $((i % 5)) = 0 ]; then
    echo '{"a":0}' >> "$nd"
  else
    printf '{"a":%d,"note":"ok"}\n' "$i" >> "$nd"
  fi
done
nd1=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream "$nd") || true
nd2=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --jobs 2 "$nd") || true
if [ "$nd1" != "$nd2" ] || [ -z "$nd1" ]; then
  echo "FAIL: NDJSON --stream --jobs 1 and --jobs 2 disagree" >&2
  printf '%s\n---\n%s\n' "$nd1" "$nd2" >&2
  exit 1
fi
if [ "$(printf '%s\n' "$nd1" | wc -l)" != 200 ]; then
  echo "FAIL: NDJSON --stream expected 200 result lines" >&2
  echo "$nd1" >&2
  exit 1
fi
case $nd1 in
  *":50	error:"*) ;;
  *) echo "FAIL: malformed NDJSON line did not fold into a per-line error" >&2
     echo "$nd1" >&2
     exit 1 ;;
esac

# Resumable feed lexer wiring: chunked reads must be invisible in the
# output.  Adversarially small chunks (7 bytes — every token crosses a
# boundary) vs the default 64 KiB vs the tree path, on both the NDJSON
# corpus and the per-file stream route; all output bytes identical.
nd7=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --chunk-bytes 7 "$nd") || true
nd64k=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --chunk-bytes 65536 "$nd") || true
if [ "$nd7" != "$nd1" ] || [ "$nd64k" != "$nd1" ]; then
  echo "FAIL: NDJSON --chunk-bytes 7 / 65536 output differs from default" >&2
  printf '%s\n---\n%s\n' "$nd7" "$nd64k" >&2
  exit 1
fi
sf7_status=0
sf7=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --chunk-bytes 7 --files-from "$sdir/list") || sf7_status=$?
if [ "$sf7" != "$s_tree" ] || [ "$sf7_status" != 1 ]; then
  echo "FAIL: --files-from --chunk-bytes 7 differs from tree path (exit $sf7_status)" >&2
  printf '%s\n---\n%s\n' "$s_tree" "$sf7" >&2
  exit 1
fi
# chunked stdin: the feed path reading "-"
std7=$(timeout 120 "$JSONLOGIC" validate -s "$sdir/schema.json" \
  --stream --chunk-bytes 7 - < "$nd") || true
if [ "$std7" != "$(printf '%s' "$nd1" | sed "s|^$nd:|-:|")" ]; then
  echo "FAIL: chunked stdin NDJSON differs from file path output" >&2
  printf '%s\n---\n%s\n' "$std7" "$nd1" >&2
  exit 1
fi
echo "feed-lexer chunk-size identity gate passed"

# Streaming RSS ceiling: validating ~100 MB of NDJSON must complete
# inside a 512 MB address-space limit — streaming memory follows the
# longest line, not the file (ulimit -v in a subshell so the limit
# dies with it).
big="$sdir/big.ndjson"
awk 'BEGIN {
  for (l = 0; l < 6400; l++) {
    printf "{\"a\":%d,\"pad\":\"", l + 1
    for (i = 0; i < 1023; i++) printf "xxxxxxxxxxxxxxx "
    printf "\"}\n"
  }
}' > "$big"
big_status=0
big_out=$( (ulimit -v 524288 2>/dev/null || true
            timeout 300 "$JSONLOGIC" validate -s "$sdir/schema.json" \
              --stream "$big") ) || big_status=$?
if [ "$big_status" != 0 ]; then
  echo "FAIL: 100MB NDJSON --stream under 512MB ulimit: exit $big_status" >&2
  printf '%s\n' "$big_out" | tail -5 >&2
  exit 1
fi
if [ "$(printf '%s\n' "$big_out" | wc -l)" != 6400 ]; then
  echo "FAIL: 100MB NDJSON --stream expected 6400 result lines" >&2
  exit 1
fi
case $big_out in
  *INVALID*) echo "FAIL: 100MB NDJSON --stream reported INVALID lines" >&2
             exit 1 ;;
  *) ;;
esac
rm -rf "$sdir"

# Serve smoke gate: a daemon on a temp socket must answer a replayed
# NDJSON workload — valid, invalid, and malformed lines — with bytes
# identical to `validate --stream`, cold (fresh cache, inline schema)
# and warm (registered schema, cache hits), and shut down cleanly.
svdir=$(mktemp -d)
cat > "$svdir/schema.json" <<'EOF'
{"definitions":{"id":{"type":"number","minimum":1}},
 "type":"object","required":["a"],
 "properties":{"a":{"$ref":"#/definitions/id"}},
 "patternProperties":{"x_[a-z]*":{"type":"number"}},
 "additionalProperties":{"type":"string"}}
EOF
{
  for i in $(seq 1 30); do
    if [ $((i % 4)) = 0 ]; then printf '{"a":0,"x_k":%d}\n' "$i"
    elif [ $((i % 7)) = 0 ]; then printf '{"a":%d,"x_k":\n' "$i"   # malformed
    else printf '{"a":%d,"x_k":2,"note":"ok"}\n' "$i"; fi
  done
  printf '\n'            # blank line: skipped but counted, both paths
  printf '{"a":1}\n'
} > "$svdir/docs.ndjson"
cli_status=0
cli_out=$(timeout 120 "$JSONLOGIC" validate -s "$svdir/schema.json" \
  --stream "$svdir/docs.ndjson") || cli_status=$?
if [ "$cli_status" != 1 ]; then
  echo "FAIL: serve gate corpus: validate --stream expected exit 1, got $cli_status" >&2
  exit 1
fi
timeout 300 "$JSONLOGIC" serve --socket "$svdir/sock" --jobs 2 \
  > "$svdir/serve.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
  [ -S "$svdir/sock" ] && break
  sleep 0.1
done
if ! [ -S "$svdir/sock" ]; then
  echo "FAIL: serve daemon never bound its socket" >&2
  cat "$svdir/serve.log" >&2
  exit 1
fi
# cold: schema shipped inline with every request, cache starting empty
cold_status=0
cold_out=$(timeout 120 "$JSONLOGIC" client --socket "$svdir/sock" \
  -s "$svdir/schema.json" --inline --stream "$svdir/docs.ndjson") || cold_status=$?
# warm: register once, validate by schema-id (all hits)
warm_status=0
warm_out=$(timeout 120 "$JSONLOGIC" client --socket "$svdir/sock" \
  -s "$svdir/schema.json" --stream "$svdir/docs.ndjson") || warm_status=$?
for pass in cold warm; do
  if [ "$pass" = cold ]; then got=$cold_out; gots=$cold_status
  else got=$warm_out; gots=$warm_status; fi
  if [ "$gots" != "$cli_status" ]; then
    echo "FAIL: serve $pass replay: exit $gots, validate --stream exited $cli_status" >&2
    exit 1
  fi
  if [ "$got" != "$cli_out" ]; then
    echo "FAIL: serve $pass replay is not byte-identical to validate --stream" >&2
    printf '%s\n---\n%s\n' "$got" "$cli_out" | head -20 >&2
    exit 1
  fi
done
# counters went up, and the warm pass actually hit the cache
sv_metrics=$(timeout 60 "$JSONLOGIC" client --socket "$svdir/sock" --server-metrics)
case $sv_metrics in
  *'"serve.plan_cache.hit":0'*)
    echo "FAIL: warm serve replay never hit the plan cache: $sv_metrics" >&2
    exit 1 ;;
  *"serve.requests"*) ;;
  *) echo "FAIL: serve metrics line malformed: $sv_metrics" >&2
     exit 1 ;;
esac
timeout 60 "$JSONLOGIC" client --socket "$svdir/sock" --shutdown > /dev/null
shutdown_status=0
wait "$serve_pid" || shutdown_status=$?
if [ "$shutdown_status" != 0 ]; then
  echo "FAIL: serve daemon exited $shutdown_status after SHUTDOWN" >&2
  cat "$svdir/serve.log" >&2
  exit 1
fi
if [ -S "$svdir/sock" ]; then
  echo "FAIL: serve daemon left its socket behind" >&2
  exit 1
fi
rm -rf "$svdir"

# Serve bench agreement mode: daemon verdicts vs the in-process stream
# checker on the catalog corpus plus malformed documents, and the warm
# plan cache must clear 2x cold; the JSON dump must land.
serve_json=$(mktemp -d)
serve_out=$(run 300 _build/default/bench/main.exe --json "$serve_json" serve)
case $serve_out in
  *"serve agreement: COMPLETE"*) ;;
  *) echo "FAIL: serve bench did not report complete agreement" >&2
     echo "$serve_out" >&2
     exit 1 ;;
esac
if [ ! -s "$serve_json/BENCH_serve.json" ]; then
  echo "FAIL: serve bench did not write BENCH_serve.json" >&2
  exit 1
fi
rm -rf "$serve_json"

# Corpus index gate, part 1: build the persistent index over a
# generated NDJSON corpus and byte-compare `index query` verdicts
# against `eval --files-from` over the same lines — including the
# rendered parse error for malformed lines and the unterminated final
# line.  Per-line files are written without a trailing newline and
# named by line number so the two outputs align after stripping the
# directory prefix.
ixdir=$(mktemp -d)
ndx="$ixdir/corpus.ndjson"
: > "$ndx"
for i in $(seq 1 120); do
  if [ $((i % 29)) = 0 ]; then
    printf '{"name":{"first":\n' >> "$ndx"                     # malformed
  elif [ $((i % 4)) = 0 ]; then
    printf '{"name":{"first":"John","last":"Doe"},"orders":[{"status":"shipped","lines":[{"sku":"SKU-%d","qty":%d}]}]}\n' "$i" "$i" >> "$ndx"
  elif [ $((i % 4)) = 1 ]; then
    printf '{"id":%d,"tags":["a","b"],"meta":{"next":"none"}}\n' "$i" >> "$ndx"
  elif [ $((i % 4)) = 2 ]; then
    printf '[%d,{"value":%d},"end"]\n' "$i" >> "$ndx"
  else
    printf '"scalar-%d"\n' "$i" >> "$ndx"
  fi
done
printf '{"tail":{"name":{"first":"Sue"}}}' >> "$ndx"           # no final \n
nlines=0
: > "$ixdir/list"
while IFS= read -r ixline || [ -n "$ixline" ]; do
  nlines=$((nlines + 1))
  printf '%s' "$ixline" > "$ixdir/$nlines"
  echo "$ixdir/$nlines" >> "$ixdir/list"
done < "$ndx"
run 120 "$JSONLOGIC" index build "$ndx" -o "$ixdir/corpus.idx" > /dev/null
info_out=$(run 60 "$JSONLOGIC" index info "$ixdir/corpus.idx")
case $info_out in
  *"documents: $nlines (4 parse errors)"*) ;;
  *) echo "FAIL: index info does not report $nlines docs / 4 errors" >&2
     echo "$info_out" >&2
     exit 1 ;;
esac
check_index_query() {
  iq=$(timeout 120 "$JSONLOGIC" index query "$ixdir/corpus.idx" "$1") || true
  ev=$(timeout 120 "$JSONLOGIC" eval --files-from "$ixdir/list" "$1" \
       | sed "s|^$ixdir/||") || true
  if [ "$iq" != "$ev" ] || [ -z "$iq" ]; then
    echo "FAIL: index query vs eval --files-from disagree on: $1" >&2
    printf '%s\n---\n%s\n' "$iq" "$ev" | head -20 >&2
    exit 1
  fi
}
check_index_query '<.name.first>'
check_index_query 'eq(.name.first, "John")'
check_index_query '<.orders[0].lines[0].sku> & !<.no_such_key>'
check_index_query '<.tags[-1]>'
check_index_query '<.orders[0:*]?(eq(.status, "shipped"))>'
# --jsonpath spelling answers like the equivalent existential formula
jp=$(timeout 60 "$JSONLOGIC" index query --jsonpath '$.name.first' \
  "$ixdir/corpus.idx")
jnl=$(timeout 60 "$JSONLOGIC" index query "$ixdir/corpus.idx" '<.name.first>')
if [ "$jp" != "$jnl" ]; then
  echo "FAIL: index query --jsonpath differs from the JNL spelling" >&2
  exit 1
fi

# eq pushdown gate: value-postings-seeded equalities (strings, numbers,
# the root path over bare-scalar lines, absent values, ranked
# conjunctions) answer byte-identically to eval --files-from — over
# this corpus's malformed lines and unterminated tail too
check_index_query 'eq(eps, "scalar-3")'
check_index_query 'eq(.orders[0].lines[0].qty, 4)'
check_index_query 'eq(.name.first, "NoSuchNameAnywhere")'
check_index_query '<.id> & eq(.tags[0], "a")'
check_index_query 'eq(.name.first, "John") | eq(.tail.name.first, "Sue")'
# the value table is reported by index info
case $info_out in
  *"value postings:"*) ;;
  *) echo "FAIL: index info does not report value postings" >&2
     echo "$info_out" >&2
     exit 1 ;;
esac

# --no-values escape hatch: the index builds without value sections,
# reports them disabled, and still answers every eq byte-identically
# (through the filtered plan); building twice is byte-identical
run 120 "$JSONLOGIC" index build --no-values "$ndx" \
  -o "$ixdir/novals.idx" > /dev/null
run 120 "$JSONLOGIC" index build --no-values "$ndx" \
  -o "$ixdir/novals2.idx" > /dev/null
if ! cmp -s "$ixdir/novals.idx" "$ixdir/novals2.idx"; then
  echo "FAIL: --no-values builds are not byte-identical" >&2
  exit 1
fi
nv_info=$(run 60 "$JSONLOGIC" index info "$ixdir/novals.idx")
case $nv_info in
  *"values: disabled"*) ;;
  *) echo "FAIL: index info does not report values disabled" >&2
     echo "$nv_info" >&2
     exit 1 ;;
esac
for nvq in 'eq(.name.first, "John")' 'eq(eps, "scalar-3")' \
  'eq(.name.first, "NoSuchNameAnywhere")'; do
  withv=$(timeout 120 "$JSONLOGIC" index query "$ixdir/corpus.idx" "$nvq")
  without=$(timeout 120 "$JSONLOGIC" index query "$ixdir/novals.idx" "$nvq")
  if [ "$withv" != "$without" ] || [ -z "$withv" ]; then
    echo "FAIL: --no-values index disagrees on: $nvq" >&2
    printf '%s\n---\n%s\n' "$withv" "$without" | head -10 >&2
    exit 1
  fi
done
rm -f "$ixdir/novals.idx" "$ixdir/novals2.idx"

# INDEXQ smoke replay: the daemon's DATA payload must be byte-identical
# to the `index query` CLI rows, and its counters must move
ixsock="$ixdir/indexq.sock"
timeout 300 "$JSONLOGIC" serve --socket "$ixsock" \
  > "$ixdir/serve.log" 2>&1 &
ixsrv=$!
for _ in $(seq 1 100); do
  [ -S "$ixsock" ] && break
  sleep 0.1
done
if ! [ -S "$ixsock" ]; then
  echo "FAIL: indexq serve daemon never bound its socket" >&2
  cat "$ixdir/serve.log" >&2
  exit 1
fi
for sq in 'eq(.name.first, "John")' '<.name.first>' '<.tags[-1]>'; do
  cli=$(timeout 120 "$JSONLOGIC" index query "$ixdir/corpus.idx" "$sq")
  daemon=$(timeout 60 "$JSONLOGIC" client --socket "$ixsock" \
    --index "$ixdir/corpus.idx" --query "$sq")
  if [ "$daemon" != "$cli" ] || [ -z "$daemon" ]; then
    echo "FAIL: INDEXQ payload differs from index query on: $sq" >&2
    printf '%s\n---\n%s\n' "$daemon" "$cli" | head -20 >&2
    exit 1
  fi
done
# a bad formula is an ERR (exit 1), not a dead daemon
iqstatus=0
timeout 60 "$JSONLOGIC" client --socket "$ixsock" \
  --index "$ixdir/corpus.idx" --query 'eq(.name,' > /dev/null 2>&1 \
  || iqstatus=$?
if [ "$iqstatus" != 1 ]; then
  echo "FAIL: bad INDEXQ formula: expected exit 1, got $iqstatus" >&2
  exit 1
fi
iq_metrics=$(timeout 60 "$JSONLOGIC" client --socket "$ixsock" --server-metrics)
case $iq_metrics in
  *'"serve.indexq.requests":0'* | *'"serve.indexq.open_hits":0'*)
    echo "FAIL: INDEXQ counters never moved: $iq_metrics" >&2
    exit 1 ;;
  *"serve.indexq.requests"*) ;;
  *) echo "FAIL: serve metrics line lacks indexq counters: $iq_metrics" >&2
     exit 1 ;;
esac
timeout 60 "$JSONLOGIC" client --socket "$ixsock" --shutdown > /dev/null
ixsrv_status=0
wait "$ixsrv" || ixsrv_status=$?
if [ "$ixsrv_status" != 0 ]; then
  echo "FAIL: indexq serve daemon exited $ixsrv_status after SHUTDOWN" >&2
  cat "$ixdir/serve.log" >&2
  exit 1
fi

# Corpus index gate, part 2: the index stays queryable read-only —
# mmap needs no write access.
chmod 444 "$ixdir/corpus.idx"
ro=$(timeout 60 "$JSONLOGIC" index query "$ixdir/corpus.idx" '<.name.first>')
if [ "$ro" != "$jnl" ]; then
  echo "FAIL: read-only (chmod 444) index query differs" >&2
  exit 1
fi

# Corpus index gate, part 3: corruption and truncation are refused
# with a structured error (exit 1, error: line), never a crash.
idx_size=$(wc -c < "$ixdir/corpus.idx")
for ixoff in 9 $((idx_size / 2)); do
  cp "$ixdir/corpus.idx" "$ixdir/bad.idx"
  chmod 644 "$ixdir/bad.idx"
  printf '\252\252\252\252' \
    | dd of="$ixdir/bad.idx" bs=1 seek="$ixoff" conv=notrunc 2>/dev/null
  ixstatus=0
  ixout=$(timeout 60 "$JSONLOGIC" index query "$ixdir/bad.idx" \
    '<.name.first>' 2>&1) || ixstatus=$?
  if [ "$ixstatus" != 1 ]; then
    echo "FAIL: corrupted index (offset $ixoff): expected exit 1, got $ixstatus" >&2
    echo "$ixout" >&2
    exit 1
  fi
  case $ixout in
    *"error:"*) ;;
    *) echo "FAIL: corrupted index (offset $ixoff) did not print error:" >&2
       echo "$ixout" >&2
       exit 1 ;;
  esac
done
for ixlen in 100 $((idx_size / 3)) $((idx_size - 1)); do
  head -c "$ixlen" "$ixdir/corpus.idx" > "$ixdir/trunc.idx"
  ixstatus=0
  ixout=$(timeout 60 "$JSONLOGIC" index info "$ixdir/trunc.idx" 2>&1) \
    || ixstatus=$?
  if [ "$ixstatus" != 1 ]; then
    echo "FAIL: truncated index ($ixlen bytes): expected exit 1, got $ixstatus" >&2
    echo "$ixout" >&2
    exit 1
  fi
done
# a stale corpus (bytes appended after the build) is refused too
printf '\n{"late":1}\n' >> "$ndx"
ixstatus=0
ixout=$(timeout 60 "$JSONLOGIC" index query "$ixdir/corpus.idx" \
  '<.name.first>' 2>&1) || ixstatus=$?
if [ "$ixstatus" != 1 ]; then
  echo "FAIL: stale corpus: expected exit 1, got $ixstatus ($ixout)" >&2
  exit 1
fi
case $ixout in
  *"stale index"*) ;;
  *) echo "FAIL: stale corpus error does not say stale index: $ixout" >&2
     exit 1 ;;
esac
rm -rf "$ixdir"

# Corpus bench agreement mode: indexed verdicts vs the
# reparse-everything baseline on a generated mixed corpus, with the
# >=10x aggregate speedup gate built into the bench exit status; the
# JSON dump must land.  (8 MB here for CI time; the default is 100 MB.)
corpus_json=$(mktemp -d)
corp_out=$(run 600 env BENCH_CORPUS_MB=8 \
  _build/default/bench/main.exe --json "$corpus_json" corpus)
case $corp_out in
  *"corpus agreement: COMPLETE"*) ;;
  *) echo "FAIL: corpus bench did not report complete agreement" >&2
     echo "$corp_out" >&2
     exit 1 ;;
esac
# the eq query class must have run postings-only (value seeds, zero
# reparses) — the >=50x class gate is in the bench exit status
case $corp_out in
  *"eq pushdown:"*"postings-only"*) ;;
  *) echo "FAIL: corpus bench eq class was not postings-only" >&2
     echo "$corp_out" >&2
     exit 1 ;;
esac
if [ ! -s "$corpus_json/BENCH_corpus.json" ]; then
  echo "FAIL: corpus bench did not write BENCH_corpus.json" >&2
  exit 1
fi
# the JSON dump carries the per-class speedup breakdown
for cls in core eq filtered; do
  if ! grep -q "bench.corpus.class.$cls.speedup_x10" \
    "$corpus_json/BENCH_corpus.json"; then
    echo "FAIL: BENCH_corpus.json lacks the $cls class speedup" >&2
    exit 1
  fi
done
rm -rf "$corpus_json"

# Aggregation pipeline differential gate: the randomized + fixed
# direct-vs-JNL pipeline suite, run standalone so an agreement break
# is named in the CI log.
run 300 _build/default/test/test_agg.exe test differential

# Aggregation CLI wiring, part 1: `aggregate` and `aggregate
# --via-jnl` (two engines sharing no evaluation code) must print
# byte-identical lines on a navigational pipeline over a generated
# NDJSON collection.
agdir=$(mktemp -d)
agnd="$agdir/docs.ndjson"
: > "$agnd"
for i in $(seq 1 60); do
  if [ $((i % 3)) = 0 ]; then
    printf '{"orders":[{"status":"shipped","total":%d},{"total":%d}],"age":%d}\n' \
      "$i" $((i * 2)) $((i % 50)) >> "$agnd"
  elif [ $((i % 3)) = 1 ]; then
    printf '{"orders":[],"age":%d}\n' $((i % 50)) >> "$agnd"
  else
    printf '{"name":"n%d","age":%d}\n' "$i" $((i % 50)) >> "$agnd"
  fi
done
nav_pl='[{"$match": {"orders.status": {"$exists": true}}},
         {"$unwind": "$orders"},
         {"$project": {"orders.status": 1, "orders.total": 1}}]'
ag_direct=$(timeout 120 "$JSONLOGIC" aggregate "$nav_pl" "$agnd")
ag_jnl=$(timeout 120 "$JSONLOGIC" aggregate --via-jnl "$nav_pl" "$agnd")
if [ "$ag_direct" != "$ag_jnl" ] || [ -z "$ag_direct" ]; then
  echo "FAIL: aggregate and aggregate --via-jnl disagree" >&2
  printf '%s\n---\n%s\n' "$ag_direct" "$ag_jnl" | head -20 >&2
  exit 1
fi
# a non-navigational pipeline is refused by --via-jnl (exit 1), not crashed
agstatus=0
timeout 60 "$JSONLOGIC" aggregate --via-jnl \
  '[{"$group": {"_id": "$age", "n": {"$count": {}}}}]' "$agnd" \
  > /dev/null 2>&1 || agstatus=$?
if [ "$agstatus" != 1 ]; then
  echo "FAIL: --via-jnl on \$group: expected exit 1, got $agstatus" >&2
  exit 1
fi

# Aggregation CLI wiring, part 2: --files-from across 2 domains must
# be byte-identical to the sequential run on a grouping pipeline
# (streaming prefix sharded, blocking suffix joined in input order).
ag_list="$agdir/list"
: > "$ag_list"
n=0
while IFS= read -r agline; do
  n=$((n + 1))
  printf '%s' "$agline" > "$agdir/doc$n.json"
  echo "$agdir/doc$n.json" >> "$ag_list"
done < "$agnd"
grp_pl='[{"$match": {"orders": {"$exists": true}}}, {"$unwind": "$orders"},
         {"$group": {"_id": "$orders.status", "n": {"$count": {}},
                     "sum": {"$sum": "$orders.total"}}},
         {"$sort": {"sum": 0}}]'
ag1=$(timeout 120 "$JSONLOGIC" aggregate --files-from "$ag_list" --jobs 1 \
  "$grp_pl")
ag2=$(timeout 120 "$JSONLOGIC" aggregate --files-from "$ag_list" --jobs 2 \
  "$grp_pl")
rm -rf "$agdir"
if [ "$ag1" != "$ag2" ] || [ -z "$ag1" ]; then
  echo "FAIL: aggregate --jobs 1 and --jobs 2 disagree" >&2
  printf '%s\n---\n%s\n' "$ag1" "$ag2" >&2
  exit 1
fi

# Mongo bench agreement mode: cross-jobs byte identity + counter
# totals and the direct-vs-JNL navigational differential are gated in
# the bench exit status; the JSON dump must land.
mongo_json=$(mktemp -d)
mongo_out=$(run 300 env BENCH_MONGO_DOCS=800 \
  _build/default/bench/main.exe --json "$mongo_json" mongo)
case $mongo_out in
  *"mongo agreement: COMPLETE"*) ;;
  *) echo "FAIL: mongo bench did not report complete agreement" >&2
     echo "$mongo_out" >&2
     exit 1 ;;
esac
if [ ! -s "$mongo_json/BENCH_mongo.json" ]; then
  echo "FAIL: mongo bench did not write BENCH_mongo.json" >&2
  exit 1
fi
if ! grep -q '"bench.mongo.agreement":1' "$mongo_json/BENCH_mongo.json"; then
  echo "FAIL: BENCH_mongo.json lacks bench.mongo.agreement=1" >&2
  exit 1
fi
rm -rf "$mongo_json"

# --metrics must produce the per-phase dump (on stderr)
metrics=$(echo '{"a":[1,2,1]}' | timeout 60 "$JSONLOGIC" parse --metrics - 2>&1 >/dev/null)
case $metrics in
  *"parse.values"*"phase.parse"*) ;;
  *) echo "FAIL: --metrics dump missing expected entries: $metrics" >&2
     exit 1 ;;
esac

echo "ci: all checks passed"
