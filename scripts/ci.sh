#!/bin/sh
# CI entry point: build, full test suite, and the budget regression
# gate, all under hard timeouts so a runaway search or an accidental
# unbounded recursion fails the job instead of hanging it.
set -eu

cd "$(dirname "$0")/.."

run() {
  # timeout(1) is in coreutils on the GitHub runners and in the dev
  # container alike
  secs=$1
  shift
  echo "+ timeout ${secs}s $*"
  timeout "$secs" "$@"
}

run 600 dune build @all
run 600 dune runtest

# Budget regression gate, exercised through the shipped binary so the
# CLI wiring is covered too.  A 100k-deep document must produce a
# structured error (exit 1 with an error: line), never a crash (exit
# 2+) or a hang — and the same input must pass when the ceiling is
# lifted.
JSONLOGIC=_build/default/bin/jsonlogic.exe
deep=$(mktemp)
trap 'rm -f "$deep"' EXIT
awk 'BEGIN { for (i = 0; i < 100000; i++) printf "["; printf "1";
             for (i = 0; i < 100000; i++) printf "]" }' > "$deep"

status=0
out=$(timeout 60 "$JSONLOGIC" parse "$deep" 2>&1) || status=$?
if [ "$status" != 1 ]; then
  echo "FAIL: 100k-deep parse: expected exit 1, got $status ($out)" >&2
  exit 1
fi
case $out in
  *"depth"*) ;;
  *) echo "FAIL: 100k-deep parse error does not mention depth: $out" >&2
     exit 1 ;;
esac

# the same input class passes once the ceiling is lifted (20k here:
# above the 10k default; the parser is linear in depth, but the pretty
# printer's indentation makes output quadratic, so stay modest)
deep20=$(mktemp)
awk 'BEGIN { for (i = 0; i < 20000; i++) printf "["; printf "1";
             for (i = 0; i < 20000; i++) printf "]" }' > "$deep20"
run 60 "$JSONLOGIC" parse --max-depth 30000 "$deep20" > /dev/null
rm -f "$deep20"

status=0
out=$(timeout 60 "$JSONLOGIC" parse --fuel 3 "$deep" 2>&1) || status=$?
if [ "$status" != 1 ]; then
  echo "FAIL: fuel-3 parse: expected exit 1, got $status ($out)" >&2
  exit 1
fi
case $out in
  *"fuel"*) ;;
  *) echo "FAIL: fuel-3 parse error does not mention fuel: $out" >&2
     exit 1 ;;
esac

# Differential gate: the 1000-case fuzz asserting the indexed and
# sweep pre-image strategies and the set-at-a-time and nodal engines
# agree on every observable (dune runtest covers this too; run it
# standalone so an agreement break is named in the CI log).
run 300 _build/default/test/test_jnl.exe test differential

# Indexed-vs-sweep bench smoke: scaling along the document-size and
# matching-edge axes, with a built-in bitset-equality check that exits
# non-zero on any indexed/sweep disagreement.
idx_out=$(run 120 _build/default/bench/main.exe index)
case $idx_out in
  *"agreement: COMPLETE"*) ;;
  *) echo "FAIL: index bench did not report complete agreement" >&2
     echo "$idx_out" >&2
     exit 1 ;;
esac

# --no-index must compute the same answer through the CLI wiring
noidx_doc=$(mktemp)
echo '{"xs":[10,20,30,40]}' > "$noidx_doc"
a=$(timeout 60 "$JSONLOGIC" select '$.xs[-2:]' "$noidx_doc")
b=$(timeout 60 "$JSONLOGIC" select --no-index '$.xs[-2:]' "$noidx_doc")
rm -f "$noidx_doc"
if [ "$a" != "$b" ] || [ -z "$a" ]; then
  echo "FAIL: select with and without --no-index disagree: [$a] vs [$b]" >&2
  exit 1
fi

# --metrics must produce the per-phase dump (on stderr)
metrics=$(echo '{"a":[1,2,1]}' | timeout 60 "$JSONLOGIC" parse --metrics - 2>&1 >/dev/null)
case $metrics in
  *"parse.values"*"phase.parse"*) ;;
  *) echo "FAIL: --metrics dump missing expected entries: $metrics" >&2
     exit 1 ;;
esac

echo "ci: all checks passed"
