(** A MongoDB-style [find] front end (Section 4.1, Example 1), compiled
    onto the paper's logics.

    A {e filter} is a JSON document such as
    [{"name": {"$eq": "Sue"}, "age": {"$gte": 21}}]; the supported
    operators are [$eq $ne $gt $gte $lt $lte $exists $type $size
    $regex $in $nin $all $elemMatch $not $and $or $nor].  Dotted field paths
    ([address.city], [hobbies.0]) navigate nested documents; an
    all-digits segment addresses both an object key and an array
    position, and every segment also traverses one array level
    implicitly ([{"a.b": 5}] matches [{"a":[{"b":5}]}]), as MongoDB's
    path resolution does.

    Filters are given semantics {e by translation to JSL} ({!to_jsl}):
    navigation conditions of the form [P ~ J] become modal formulas, so
    the paper's claim that the find filter language embeds into its
    navigational logics is realized executably.  Equality-only filters
    translate further into pure JNL through Theorem 2
    ({!Jlogic.Translate}).

    Divergences from MongoDB proper (documented, deliberate): equality
    against an array does not also match individual elements, and
    comparison operators apply to numbers only (the model has a single
    atomic ordered type).

    The {e projection} argument of find — left as future work in
    Section 6 of the paper — is implemented in {!project}: inclusion
    and exclusion of dotted paths, defining a JSON-to-JSON
    transformation. *)

type path = string list
(** A dotted field path, split on ['.']. *)

type filter = cond list  (** conjunction *)

and cond =
  | F_field of path * constr list  (** all constraints hold of the field *)
  | F_and of filter list
  | F_or of filter list
  | F_nor of filter list

and constr =
  | Q_eq of Jsont.Value.t
  | Q_ne of Jsont.Value.t
  | Q_gt of int
  | Q_gte of int
  | Q_lt of int
  | Q_lte of int
  | Q_exists of bool
  | Q_type of string
      (** canonical: "object" | "array" | "string" | "number".  The
          parser also accepts Mongo's numeric BSON codes (1, 2, 3, 4,
          16, 18, 19) and aliases ("int", "long", "double",
          "decimal"), all numeric ones collapsing onto "number". *)
  | Q_size of int  (** array length *)
  | Q_regex of Rexp.Syntax.t  (** substring-search semantics, as Mongo *)
  | Q_in of in_elt list
  | Q_nin of in_elt list
  | Q_elem_match of filter  (** some array element matches the filter *)
  | Q_all of Jsont.Value.t list
      (** the array contains every listed value *)
  | Q_not of constr list

and in_elt =
  | I_val of Jsont.Value.t  (** literal membership *)
  | I_re of Rexp.Syntax.t
      (** a [{"$regex": "..."}] element — matches like [$regex] *)

val parse : Jsont.Value.t -> (filter, string) result
(** Parse a filter document. *)

val parse_string : string -> (filter, string) result
val parse_string_exn : string -> filter

val to_jsl : filter -> Jlogic.Jsl.t
(** The semantics: a JSL formula holding at exactly the documents the
    filter selects. *)

val to_jnl : filter -> (Jlogic.Jnl.form, string) result
(** Through Theorem 2; [Error] when the filter uses operators beyond
    the [~(A)]-fragment (e.g. [$gt], [$regex]). *)

val matches : filter -> Jsont.Value.t -> bool
(** Does a document pass the filter? *)

val find : filter -> Jsont.Value.t list -> Jsont.Value.t list
(** Filter a collection — [db.collection.find(filter, {})]. *)

(** {1 Projection} *)

type projection =
  | Include of path list  (** keep only these paths (plus their spines) *)
  | Exclude of path list  (** drop these paths *)

val parse_projection : Jsont.Value.t -> (projection, string) result
(** [{"a.b": 1, "c": 1}] or [{"secret": 0}]; mixing 0s and 1s is an
    error, as in MongoDB. *)

val project : projection -> Jsont.Value.t -> Jsont.Value.t
(** Apply a projection to one document. *)

val find_projected :
  filter -> projection -> Jsont.Value.t list -> Jsont.Value.t list
(** The full two-argument find. *)
