module Value = Jsont.Value
module Jsl = Jlogic.Jsl

type path = string list

type filter = cond list

and cond =
  | F_field of path * constr list
  | F_and of filter list
  | F_or of filter list
  | F_nor of filter list

and constr =
  | Q_eq of Value.t
  | Q_ne of Value.t
  | Q_gt of int
  | Q_gte of int
  | Q_lt of int
  | Q_lte of int
  | Q_exists of bool
  | Q_type of string
  | Q_size of int
  | Q_regex of Rexp.Syntax.t
  | Q_in of in_elt list
  | Q_nin of in_elt list
  | Q_elem_match of filter
  | Q_all of Value.t list
  | Q_not of constr list

and in_elt =
  | I_val of Value.t
  | I_re of Rexp.Syntax.t

(* ---- parsing -------------------------------------------------------------- *)

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let split_path s = String.split_on_char '.' s

let as_int what = function
  | Value.Num n -> n
  | v -> bad "%s expects a number, got %s" what (Value.kind_name v)

let as_array what = function
  | Value.Arr vs -> vs
  | v -> bad "%s expects an array, got %s" what (Value.kind_name v)

let as_bool what = function
  | Value.Str "true" -> true
  | Value.Str "false" -> false
  | Value.Num 1 -> true
  | Value.Num 0 -> false
  | v -> bad "%s expects a boolean, got %s" what (Value.to_string v)

(* Mongo names types redundantly: BSON aliases and numeric codes both
   land on the model's four kinds.  Every numeric BSON type collapses
   onto "number" (the model has one atomic ordered type). *)
let type_name = function
  | Value.Str (("object" | "array" | "string" | "number") as ty) -> ty
  | Value.Str ("int" | "long" | "double" | "decimal") -> "number"
  | Value.Num 1 (* double *) | Value.Num 16 (* int *)
  | Value.Num 18 (* long *) | Value.Num 19 (* decimal128 *) -> "number"
  | Value.Num 2 -> "string"
  | Value.Num 3 -> "object"
  | Value.Num 4 -> "array"
  | v -> bad "$type expects a type name or code, got %s" (Value.to_string v)

let parse_regex what re =
  match Rexp.Parse.parse re with
  | Ok e -> e
  | Error m -> bad "%s: %s" what m

(* an $in / $nin element: a literal, or {"$regex": "..."} *)
let parse_in_elt what = function
  | Value.Obj [ ("$regex", Value.Str re) ] -> I_re (parse_regex what re)
  | Value.Obj kvs when List.mem_assoc "$regex" kvs ->
    bad "%s: a regex element must be exactly {\"$regex\": \"re\"}" what
  | literal -> I_val literal

let rec parse_filter (v : Value.t) : filter =
  match v with
  | Value.Obj kvs -> List.map parse_cond kvs
  | v -> bad "a filter must be an object, got %s" (Value.kind_name v)

and parse_cond (key, v) : cond =
  match key with
  | "$and" -> F_and (List.map parse_filter (as_array "$and" v))
  | "$or" -> F_or (List.map parse_filter (as_array "$or" v))
  | "$nor" -> F_nor (List.map parse_filter (as_array "$nor" v))
  | key when String.length key > 0 && key.[0] = '$' -> bad "unknown operator %s" key
  | field -> F_field (split_path field, parse_constraints v)

and parse_constraints (v : Value.t) : constr list =
  match v with
  | Value.Obj kvs
    when kvs <> [] && List.for_all (fun (k, _) -> String.length k > 0 && k.[0] = '$') kvs
    ->
    List.map parse_constr kvs
  | literal -> [ Q_eq literal ]

and parse_constr (op, v) : constr =
  match op with
  | "$eq" -> Q_eq v
  | "$ne" -> Q_ne v
  | "$gt" -> Q_gt (as_int "$gt" v)
  | "$gte" -> Q_gte (as_int "$gte" v)
  | "$lt" -> Q_lt (as_int "$lt" v)
  | "$lte" -> Q_lte (as_int "$lte" v)
  | "$exists" -> Q_exists (as_bool "$exists" v)
  | "$type" -> Q_type (type_name v)
  | "$size" -> Q_size (as_int "$size" v)
  | "$regex" -> (
    match v with
    | Value.Str re -> Q_regex (parse_regex "$regex" re)
    | v -> bad "$regex expects a string, got %s" (Value.kind_name v))
  | "$all" -> Q_all (as_array "$all" v)
  | "$in" -> Q_in (List.map (parse_in_elt "$in") (as_array "$in" v))
  | "$nin" -> Q_nin (List.map (parse_in_elt "$nin") (as_array "$nin" v))
  | "$elemMatch" -> (
    (* two Mongo forms: operators applied to the element itself, or a
       filter over the element's fields *)
    match v with
    | Value.Obj kvs
      when kvs <> []
           && List.for_all (fun (k, _) -> String.length k > 0 && k.[0] = '$') kvs
      ->
      Q_elem_match [ F_field ([], parse_constraints v) ]
    | _ -> Q_elem_match (parse_filter v))
  | "$not" -> Q_not (parse_constraints v)
  | op -> bad "unknown operator %s" op

let parse v =
  match parse_filter v with f -> Ok f | exception Bad m -> Error m

let parse_string s =
  match Jsont.Parser.parse ~mode:`Lenient s with
  | Error e -> Error (Format.asprintf "%a" Jsont.Parser.pp_error e)
  | Ok v -> parse v

let parse_string_exn s =
  match parse_string s with
  | Ok f -> f
  | Error m -> invalid_arg ("Jquery.Mongo.parse_string_exn: " ^ m)

(* ---- semantics: translation to JSL ---------------------------------------- *)

let all_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

(* ◇ along a dotted path; digit segments address keys or positions.
   Each segment also traverses one array level implicitly, as in
   MongoDB: ["a.b"] reaches [b] inside every element of an array at
   [a].  The traversal is one level deep per segment (an array of
   arrays of objects is not searched two levels down), matching
   Mongo's path resolution. *)
let rec dia_path (p : path) (inner : Jsl.t) : Jsl.t =
  match p with
  | [] -> inner
  | seg :: rest ->
    let deeper = dia_path rest inner in
    let keyed =
      if all_digits seg then
        (* a digit run too large for [int] cannot be an array position,
           but it is still a perfectly good object key *)
        match int_of_string_opt seg with
        | Some i -> Jsl.Or (Jsl.dia_key seg deeper, Jsl.dia_idx i deeper)
        | None -> Jsl.dia_key seg deeper
      else Jsl.dia_key seg deeper
    in
    Jsl.Or (keyed, Jsl.Dia_range (0, None, Jsl.dia_key seg deeper))

let rec filter_to_jsl (f : filter) : Jsl.t = Jsl.conj (List.map cond_to_jsl f)

and cond_to_jsl = function
  | F_and fs -> Jsl.conj (List.map filter_to_jsl fs)
  | F_or fs -> Jsl.disj (List.map filter_to_jsl fs)
  | F_nor fs -> Jsl.Not (Jsl.disj (List.map filter_to_jsl fs))
  | F_field (p, cs) -> Jsl.conj (List.map (constr_to_jsl p) cs)

and in_elt_to_jsl = function
  | I_val v -> Jsl.Test (Jsl.Eq_doc v)
  | I_re e -> Jsl.Test (Jsl.Pattern (Rexp.Parse.search e))

and constr_to_jsl p (c : constr) : Jsl.t =
  let positive test = dia_path p test in
  match c with
  | Q_eq v -> positive (Jsl.Test (Jsl.Eq_doc v))
  | Q_ne v -> Jsl.Not (positive (Jsl.Test (Jsl.Eq_doc v)))
  | Q_gt n -> positive (Jsl.And (Jsl.Test Jsl.Is_int, Jsl.Test (Jsl.Min (n + 1))))
  | Q_gte n -> positive (Jsl.And (Jsl.Test Jsl.Is_int, Jsl.Test (Jsl.Min n)))
  | Q_lt n ->
    (* no natural number is below 0: [$lt 0] (and below) is satisfiable
       by nothing.  The old [max 0 (n - 1)] clamp turned it into
       [Max 0], wrongly matching 0 itself. *)
    if n <= 0 then positive Jsl.ff
    else positive (Jsl.And (Jsl.Test Jsl.Is_int, Jsl.Test (Jsl.Max (n - 1))))
  | Q_lte n -> positive (Jsl.And (Jsl.Test Jsl.Is_int, Jsl.Test (Jsl.Max n)))
  | Q_exists true -> positive Jsl.True
  | Q_exists false -> Jsl.Not (positive Jsl.True)
  | Q_type "object" -> positive (Jsl.Test Jsl.Is_obj)
  | Q_type "array" -> positive (Jsl.Test Jsl.Is_arr)
  | Q_type "string" -> positive (Jsl.Test Jsl.Is_str)
  | Q_type "number" -> positive (Jsl.Test Jsl.Is_int)
  | Q_type other -> invalid_arg ("Mongo: unknown type " ^ other)
  | Q_size n ->
    positive
      (Jsl.conj [ Jsl.Test Jsl.Is_arr; Jsl.Test (Jsl.Min_ch n); Jsl.Test (Jsl.Max_ch n) ])
  | Q_regex e ->
    positive (Jsl.Test (Jsl.Pattern (Rexp.Parse.search e)))
  | Q_in es -> positive (Jsl.disj (List.map in_elt_to_jsl es))
  | Q_nin es -> Jsl.Not (positive (Jsl.disj (List.map in_elt_to_jsl es)))
  | Q_elem_match f ->
    positive (Jsl.And (Jsl.Test Jsl.Is_arr, Jsl.Dia_range (0, None, filter_to_jsl f)))
  | Q_all [] ->
    (* Mongo pins [$all []] to match no document at all; the bare
       [conj [Is_arr]] this used to produce matched every array *)
    Jsl.ff
  | Q_all vs ->
    (* every listed value occurs among the array's elements *)
    positive
      (Jsl.conj
         (Jsl.Test Jsl.Is_arr
         :: List.map
              (fun v -> Jsl.Dia_range (0, None, Jsl.Test (Jsl.Eq_doc v)))
              vs))
  | Q_not cs -> Jsl.Not (Jsl.conj (List.map (constr_to_jsl p) cs))

let to_jsl = filter_to_jsl

let to_jnl f = Jlogic.Translate.jsl_to_jnl (to_jsl f)

let matches f v = Jsl.validates v (to_jsl f)

let find f docs = List.filter (matches f) docs

(* ---- projection (the §6 future-work transformation) ----------------------- *)

type projection =
  | Include of path list
  | Exclude of path list

let parse_projection (v : Value.t) =
  match v with
  | Value.Obj [] -> Ok (Exclude [])
  | Value.Obj kvs -> (
    let flag = function
      | Value.Num 1 | Value.Str "true" -> `Inc
      | Value.Num 0 | Value.Str "false" -> `Exc
      | v -> `Bad (Value.to_string v)
    in
    let incs, excs, bads =
      List.fold_left
        (fun (i, e, b) (k, v) ->
          match flag v with
          | `Inc -> (split_path k :: i, e, b)
          | `Exc -> (i, split_path k :: e, b)
          | `Bad s -> (i, e, s :: b))
        ([], [], []) kvs
    in
    match (bads, incs, excs) with
    | b :: _, _, _ -> Error (Printf.sprintf "bad projection value %s" b)
    | [], [], e -> Ok (Exclude (List.rev e))
    | [], i, [] -> Ok (Include (List.rev i))
    | [], _, _ -> Error "cannot mix inclusion and exclusion in a projection")
  | v -> Error (Printf.sprintf "a projection must be an object, got %s" (Value.kind_name v))

let rec project_include (paths : path list) (v : Value.t) : Value.t =
  match v with
  | Value.Obj kvs ->
    Value.Obj
      (List.filter_map
         (fun (k, v) ->
           let here = List.filter_map (function
             | [] -> None
             | seg :: rest when seg = k -> Some rest
             | _ -> None) paths
           in
           if here = [] then None
           else if List.exists (fun p -> p = []) here then Some (k, v)
           else Some (k, project_include here v))
         kvs)
  | Value.Arr vs ->
    (* inclusion descends into array elements uniformly *)
    Value.Arr (List.map (project_include paths) vs)
  | atom -> atom

let rec project_exclude (paths : path list) (v : Value.t) : Value.t =
  if paths = [] then v
  else
    match v with
    | Value.Obj kvs ->
      Value.Obj
        (List.filter_map
           (fun (k, v) ->
             let here = List.filter_map (function
               | [] -> None
               | seg :: rest when seg = k -> Some rest
               | _ -> None) paths
             in
             if List.exists (fun p -> p = []) here then None
             else Some (k, project_exclude here v))
           kvs)
    | Value.Arr vs -> Value.Arr (List.map (project_exclude paths) vs)
    | atom -> atom

let project p v =
  match p with
  | Include paths -> project_include paths v
  | Exclude paths -> project_exclude paths v

let find_projected f p docs = List.map (project p) (find f docs)
