module Jnl = Jlogic.Jnl

let any_child : Jnl.path = Jnl.Alt (Jnl.Keys Rexp.Syntax.all, Jnl.Range (0, None))
let descendant_or_self : Jnl.path = Jnl.Star any_child

exception Bad of string

type st = { input : string; mutable pos : int }

let bad st fmt =
  Format.kasprintf
    (fun s -> raise (Bad (Printf.sprintf "at offset %d: %s" st.pos s)))
    fmt

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let bare_name st =
  let start = st.pos in
  while
    match peek st with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-') -> true
    | _ -> false
  do
    advance st
  done;
  if st.pos = start then bad st "expected a name";
  String.sub st.input start (st.pos - start)

let hex_digit st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> bad st "invalid hex digit %C in \\u escape" c

let hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    match peek st with
    | Some c ->
      v := (!v * 16) + hex_digit st c;
      advance st
    | None -> bad st "truncated \\u escape"
  done;
  !v

(* RFC 9535 name-selector strings: the escapables are the quotes,
   backslash, slash, b f n r t, and \uXXXX (with surrogate pairs);
   anything else after a backslash is an error. *)
let quoted_name st =
  let quote = Option.get (peek st) in
  advance st;
  let buf = Buffer.create 8 in
  let unicode_escape () =
    let u = hex4 st in
    if u >= 0xD800 && u <= 0xDBFF then begin
      (* high surrogate: a \u low surrogate must follow *)
      (match (peek st, peek2 st) with
      | Some '\\', Some 'u' ->
        advance st;
        advance st
      | _ -> bad st "unpaired surrogate in \\u escape");
      let lo = hex4 st in
      if lo < 0xDC00 || lo > 0xDFFF then
        bad st "unpaired surrogate in \\u escape";
      let cp = 0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00) in
      Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
    end
    else if u >= 0xDC00 && u <= 0xDFFF then
      bad st "unpaired surrogate in \\u escape"
    else Buffer.add_utf_8_uchar buf (Uchar.of_int u)
  in
  let escape () =
    advance st (* '\\' *);
    match peek st with
    | None -> bad st "dangling backslash"
    | Some (('\'' | '"' | '\\' | '/') as c) ->
      advance st;
      Buffer.add_char buf c
    | Some 'b' ->
      advance st;
      Buffer.add_char buf '\b'
    | Some 'f' ->
      advance st;
      Buffer.add_char buf '\012'
    | Some 'n' ->
      advance st;
      Buffer.add_char buf '\n'
    | Some 'r' ->
      advance st;
      Buffer.add_char buf '\r'
    | Some 't' ->
      advance st;
      Buffer.add_char buf '\t'
    | Some 'u' ->
      advance st;
      unicode_escape ()
    | Some c -> bad st "invalid escape \\%c in quoted name" c
  in
  let rec go () =
    match peek st with
    | None -> bad st "unterminated quoted name"
    | Some c when c = quote -> advance st
    | Some '\\' ->
      escape ();
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

(* RFC 9535 §2.3.3/§2.3.4: indices and slice bounds are I-JSON exact
   integers, i.e. within [-(2^53)+1, 2^53-1].  Anything outside —
   including literals too large for [int_of_string] — is a positioned
   parse error, never an escaping [Failure]. *)
let ijson_max = (1 lsl 53) - 1

let int_opt st =
  let start = st.pos in
  if peek st = Some '-' then advance st;
  while match peek st with Some ('0' .. '9') -> true | _ -> false do
    advance st
  done;
  if st.pos = start || (st.pos = start + 1 && st.input.[start] = '-') then begin
    st.pos <- start;
    None
  end
  else
    let text = String.sub st.input start (st.pos - start) in
    match int_of_string_opt text with
    | Some i when i >= -ijson_max && i <= ijson_max -> Some i
    | Some _ | None -> bad st "index %s outside the I-JSON range ±(2^53-1)" text

(* A slice [i:j) RFC 9535-style: the end is exclusive, and negative
   bounds are offset by the array's arity at evaluation time.  Encoded
   as an inclusive JNL [Range]; a statically empty slice — one that
   selects nothing whatever the arity — is the never-matching test
   rather than a parse error. *)
let empty_step : Jnl.path = Jnl.Test Jnl.ff

let slice i j : Jnl.path =
  match j with
  | None -> Jnl.Range (i, None)
  | Some j ->
    let statically_empty =
      (* same sign ⇒ both bounds anchor to the same end of the array,
         so j ≤ i is empty for every arity; j = 0 is always empty *)
      j = 0 || (i >= 0 && j >= 0 && j <= i) || (i < 0 && j < 0 && j <= i)
    in
    if statically_empty then empty_step else Jnl.Range (i, Some (j - 1))

(* the contents of a bracket selector, after '[' *)
let bracket st : Jnl.path =
  let item () : Jnl.path =
    match peek st with
    | Some '*' ->
      advance st;
      any_child
    | Some ('\'' | '"') -> Jnl.Key (quoted_name st)
    | Some '?' ->
      advance st;
      if peek st <> Some '(' then bad st "expected '(' after '?'";
      advance st;
      (* find the matching ')' to hand the inside to the JNL parser,
         skipping string and regex literals so a quoted paren does not
         unbalance the scan *)
      let start = st.pos in
      let depth = ref 1 in
      let skip_string () =
        advance st (* opening '"' *);
        let rec go () =
          match peek st with
          | None -> bad st "unterminated string in filter"
          | Some '"' -> advance st
          | Some '\\' ->
            advance st;
            if peek st = None then bad st "unterminated string in filter";
            advance st;
            go ()
          | Some _ ->
            advance st;
            go ()
        in
        go ()
      in
      let skip_regex () =
        advance st (* opening '/' *);
        let rec go () =
          match peek st with
          | None -> bad st "unterminated regex in filter"
          | Some '/' -> advance st
          | Some '\\' when peek2 st = Some '/' ->
            advance st;
            advance st;
            go ()
          | Some _ ->
            advance st;
            go ()
        in
        go ()
      in
      while !depth > 0 do
        match peek st with
        | None -> bad st "unterminated filter"
        | Some '(' ->
          incr depth;
          advance st
        | Some ')' ->
          decr depth;
          if !depth > 0 then advance st
        | Some '"' -> skip_string ()
        | Some '~' ->
          (* a regex literal may follow: ~ [ws] /…/ *)
          advance st;
          while
            match peek st with
            | Some (' ' | '\t' | '\n' | '\r') -> true
            | _ -> false
          do
            advance st
          done;
          if peek st = Some '/' then skip_regex ()
        | Some _ -> advance st
      done;
      let inner = String.sub st.input start (st.pos - start) in
      advance st (* closing ')' *);
      (match Jnl.parse inner with
      | Ok f -> Jnl.Test f
      | Error m -> bad st "bad filter: %s" m)
    | Some ('0' .. '9' | '-') -> (
      let i =
        match int_opt st with
        | Some i -> i
        | None -> bad st "expected digits after '-'"
      in
      match peek st with
      | Some ':' ->
        advance st;
        slice i (int_opt st)
      | _ -> Jnl.Idx i)
    | Some ':' ->
      advance st;
      slice 0 (int_opt st)
    | Some c -> bad st "unexpected %C in brackets" c
    | None -> bad st "unterminated brackets"
  in
  let rec items acc =
    let it = item () in
    let acc = match acc with None -> Some it | Some p -> Some (Jnl.Alt (p, it)) in
    match peek st with
    | Some ',' ->
      advance st;
      items acc
    | Some ']' ->
      advance st;
      Option.get acc
    | Some c -> bad st "expected ',' or ']', found %C" c
    | None -> bad st "unterminated brackets"
  in
  items None

let parse_exn_inner input =
  let st = { input; pos = 0 } in
  if peek st = Some '$' then advance st;
  let steps = ref [] in
  let push p = steps := p :: !steps in
  let rec go () =
    match peek st with
    | None -> ()
    | Some '.' when peek2 st = Some '.' ->
      advance st;
      advance st;
      push descendant_or_self;
      (match peek st with
      | Some '*' ->
        advance st;
        push any_child
      | Some '[' ->
        advance st;
        push (bracket st)
      | Some _ -> push (Jnl.Key (bare_name st))
      | None -> bad st "dangling '..'");
      go ()
    | Some '.' ->
      advance st;
      (match peek st with
      | Some '*' ->
        advance st;
        push any_child
      | _ -> push (Jnl.Key (bare_name st)));
      go ()
    | Some '[' ->
      advance st;
      push (bracket st);
      go ()
    | Some c -> bad st "unexpected %C" c
  in
  go ();
  match List.rev !steps with
  | [] -> Jnl.Self
  | first :: rest -> List.fold_left (fun acc p -> Jnl.Seq (acc, p)) first rest

let parse input =
  match parse_exn_inner input with p -> Ok p | exception Bad m -> Error m

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error m -> invalid_arg ("Jquery.Jsonpath.parse_exn: " ^ m)

let select_nodes ?use_index tree path =
  let ctx = Jlogic.Jnl_eval.context ?use_index tree in
  Jlogic.Jnl_eval.succs ctx path Jsont.Tree.root

let select ?use_index doc path_str =
  match parse path_str with
  | Error _ as e -> e
  | Ok path ->
    let tree = Jsont.Tree.of_value doc in
    Ok (List.map (Jsont.Tree.value_at tree) (select_nodes ?use_index tree path))

let select_exn ?use_index doc path_str =
  match select ?use_index doc path_str with
  | Ok vs -> vs
  | Error m -> invalid_arg ("Jquery.Jsonpath.select_exn: " ^ m)

(* the pointer of a node: its edges from the root *)
let pointer_of_node tree node =
  let rec go n acc =
    match Jsont.Tree.edge_from_parent tree n with
    | Jsont.Tree.Root -> acc
    | Jsont.Tree.Key k ->
      go (Option.get (Jsont.Tree.parent tree n)) (Jsont.Pointer.Key k :: acc)
    | Jsont.Tree.Pos i ->
      go (Option.get (Jsont.Tree.parent tree n)) (Jsont.Pointer.Index i :: acc)
  in
  go node []

let select_with_paths ?use_index doc path_str =
  match parse path_str with
  | Error _ as e -> e
  | Ok path ->
    let tree = Jsont.Tree.of_value doc in
    Ok
      (List.map
         (fun n -> (pointer_of_node tree n, Jsont.Tree.value_at tree n))
         (select_nodes ?use_index tree path))
