(** A MongoDB-style aggregation pipeline engine over the tree model.

    A {e pipeline} is a JSON array of stages, e.g.
    [[{"$match": {"status": "shipped"}},
      {"$unwind": "$lines"},
      {"$group": {"_id": "$lines.sku", "n": {"$sum": "$lines.qty"}}},
      {"$sort": {"n": 0}}, {"$limit": 10}]].

    Supported stages: [$match] (the {!Mongo} find-filter language,
    compiled to a JSL plan and evaluated over each document's tree),
    [$project] (inclusion / exclusion flags plus computed fields from
    ["$a.b"] paths, [{"$literal": v}] and literal documents),
    [$unwind] (with [preserveNullAndEmptyArrays]), [$group]
    ([$sum $avg $min $max $push $count] accumulators), [$sort],
    [$limit], [$skip], and a hash-join [$lookup] against collections
    resolved at parse time.

    The navigational core — [$match], flag-only [$project], [$unwind]
    — also evaluates through pure JNL ({!run_via_jnl}): [$match]
    through Theorem 2, [$project] by marking-set post-images
    ({!Jlogic.Jnl_eval.succs}), [$unwind] by post-image targeting and
    {!Jsont.Tree.substitute}.  The two engines share no evaluation
    code and are pinned against each other by the pipeline
    differential in the test suite and CI.

    Divergences from MongoDB (the model has only naturals, strings,
    arrays and objects — no null, bool or doubles): [$sort] directions
    are [1] (ascending) / [0] (descending) since [-1] is not a model
    value; [$avg] truncates to a natural; missing fields sort before
    present ones; there is no implicit [_id] handling in [$project].
    Stage-level semantics are documented in [docs/AGGREGATION.md].

    Counters: [mongo.agg.docs.in/out], [mongo.agg.match.pass/drop],
    [mongo.agg.unwind.out/preserved], [mongo.agg.group.groups],
    [mongo.agg.lookup.probes/hits], [mongo.agg.sort.docs]; span
    [mongo.agg.run]. *)

type pipeline
(** A parsed pipeline: a typed stage list. *)

type doc
(** A document flowing through the pipeline, carrying its value and
    tree representations built on demand — ingesting via
    {!doc_of_tree} lets a leading [$match] drop documents without ever
    materializing a {!Jsont.Value.t}. *)

val doc_of_value : Jsont.Value.t -> doc
val doc_of_tree : Jsont.Tree.t -> doc
val doc_value : doc -> Jsont.Value.t

val parse :
  ?collections:(string -> Jsont.Value.t list option) ->
  Jsont.Value.t ->
  (pipeline, string) result
(** Parse a pipeline.  [collections] resolves [$lookup from] names to
    document lists (default: every name unknown); the join hash table
    is built once here, not per document. *)

val parse_string :
  ?collections:(string -> Jsont.Value.t list option) ->
  string ->
  (pipeline, string) result

val parse_string_exn :
  ?collections:(string -> Jsont.Value.t list option) -> string -> pipeline

val run : pipeline -> Jsont.Value.t list -> Jsont.Value.t list
(** Evaluate the pipeline over a collection, in order. *)

(** {1 Sharding}

    A pipeline splits into a {e streaming} prefix — per-document
    stages ([$match]/[$project]/[$unwind]/[$lookup]), each mapping one
    document to zero or more — and a {e blocking} suffix ([$group],
    [$sort], [$limit], [$skip]) that needs the whole collection.  The
    CLI and bench shard the prefix across {!Par.Batch} lanes and run
    the suffix sequentially; concatenating per-document results in
    input order makes the output independent of the lane count. *)

val split_streaming : pipeline -> pipeline * pipeline
(** [(streaming prefix, blocking suffix)]; the prefix is maximal. *)

val apply_doc : pipeline -> doc -> doc list
(** Run a streaming prefix over one document.
    @raise Invalid_argument on a blocking stage. *)

val run_docs : pipeline -> doc list -> doc list
(** {!run} at the [doc] level (any pipeline, evaluated sequentially). *)

(** {1 The JNL route} *)

val navigational : pipeline -> bool
(** Whether every stage is in the JNL-translatable navigational core
    ([$match] within Theorem 2's fragment, flag-only [$project],
    [$unwind]). *)

val run_via_jnl :
  pipeline -> Jsont.Value.t list -> (Jsont.Value.t list, string) result
(** Independent evaluation through pure JNL; [Error] outside the
    navigational core.  Agrees with {!run} byte for byte — the
    pipeline differential. *)
