(** A JSONPath front end (Gössner's language, cited as [15] in §4.1),
    compiled to non-deterministic / recursive JNL paths.

    Supported syntax:
    {v
      $              the root
      .key  ['key']  child under a key
      .*    [*]      any child (object member or array element)
      ..key  ..*     recursive descent (any depth), then key / any child
      [i]            array index, negative from the end
      [i:j]          slice, [j] exclusive, either side optional
      [k1,k2] [0,2]  unions of keys or of indices
      [?(<jnl>)]     filter: keep nodes satisfying a JNL formula
                     (the concrete syntax of {!Jlogic.Jnl.parse})
    v}

    The compilation target is {!Jlogic.Jnl.path}; selection is plain
    path evaluation ({!Jlogic.Jnl_eval.succs} from the root), so every
    JSONPath query is literally a JNL query — the embedding claimed in
    §4.1.  Recursive descent uses [Star] over the any-child axis, and
    unions use the [Alt] extension. *)

val parse : string -> (Jlogic.Jnl.path, string) result
val parse_exn : string -> Jlogic.Jnl.path

val select : Jsont.Value.t -> string -> (Jsont.Value.t list, string) result
(** [select doc path] is the list of sub-documents matched, in document
    order. *)

val select_exn : Jsont.Value.t -> string -> Jsont.Value.t list

val select_nodes :
  Jsont.Tree.t -> Jlogic.Jnl.path -> Jsont.Tree.node list
(** Tree-level selection for callers that need node identities. *)

val select_with_paths :
  Jsont.Value.t -> string
  -> ((Jsont.Pointer.t * Jsont.Value.t) list, string) result
(** Selection returning each hit's normalized location (as a
    {!Jsont.Pointer.t}) along with its value. *)

val any_child : Jlogic.Jnl.path
(** The [.*] axis: [Alt (Keys Σ*, Range (0, ∞))]. *)

val descendant_or_self : Jlogic.Jnl.path
(** The [..] axis: [Star any_child]. *)
