(** A JSONPath front end (Gössner's language, cited as [15] in §4.1),
    compiled to non-deterministic / recursive JNL paths.

    Supported syntax:
    {v
      $              the root
      .key  ['key']  child under a key
      .*    [*]      any child (object member or array element)
      ..key  ..*     recursive descent (any depth), then key / any child
      [i]            array index, negative from the end
      [i:j]          slice, [j] exclusive, either side optional and
                     negative from the end; a statically empty slice
                     (e.g. [2:2]) selects nothing
      [k1,k2] [0,2]  unions of keys or of indices
      [?(<jnl>)]     filter: keep nodes satisfying a JNL formula
                     (the concrete syntax of {!Jlogic.Jnl.parse})
    v}

    Quoted names decode the RFC 9535 escapes — backslash followed by
    either quote, backslash, slash, [b f n r t], or [uXXXX] (with
    surrogate pairs) — and reject anything else after a backslash.

    The compilation target is {!Jlogic.Jnl.path}; selection is plain
    path evaluation ({!Jlogic.Jnl_eval.succs} from the root), so every
    JSONPath query is literally a JNL query — the embedding claimed in
    §4.1.  Recursive descent uses [Star] over the any-child axis, and
    unions use the [Alt] extension. *)

val parse : string -> (Jlogic.Jnl.path, string) result
val parse_exn : string -> Jlogic.Jnl.path

val select :
  ?use_index:bool -> Jsont.Value.t -> string ->
  (Jsont.Value.t list, string) result
(** [select doc path] is the list of sub-documents matched, in document
    order.  [use_index] is forwarded to {!Jlogic.Jnl_eval.context}. *)

val select_exn : ?use_index:bool -> Jsont.Value.t -> string -> Jsont.Value.t list

val select_nodes :
  ?use_index:bool -> Jsont.Tree.t -> Jlogic.Jnl.path -> Jsont.Tree.node list
(** Tree-level selection for callers that need node identities. *)

val select_with_paths :
  ?use_index:bool -> Jsont.Value.t -> string
  -> ((Jsont.Pointer.t * Jsont.Value.t) list, string) result
(** Selection returning each hit's normalized location (as a
    {!Jsont.Pointer.t}) along with its value. *)

val any_child : Jlogic.Jnl.path
(** The [.*] axis: [Alt (Keys Σ*, Range (0, ∞))]. *)

val descendant_or_self : Jlogic.Jnl.path
(** The [..] axis: [Star any_child]. *)
