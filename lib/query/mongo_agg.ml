module Value = Jsont.Value
module Tree = Jsont.Tree
module Jsl = Jlogic.Jsl
module Jnl = Jlogic.Jnl
module Jnl_eval = Jlogic.Jnl_eval
module Metrics = Obs.Metrics

type path = string list

exception Bad of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let split_path s = String.split_on_char '.' s

(* ---- documents ------------------------------------------------------------ *)

(* A document flowing through the pipeline, with both representations
   on demand: $match stages evaluate compiled JSL plans over the tree,
   transformation stages rewrite the value.  Each is built at most
   once; documents the $match prefix drops never materialize a
   [Value.t] when ingested as trees. *)
type doc = { v : Value.t Lazy.t; t : Tree.t Lazy.t }

let doc_of_value v = { v = lazy v; t = lazy (Tree.of_value v) }
let doc_of_tree t = { v = lazy (Tree.to_value t); t = lazy t }
let doc_value d = Lazy.force d.v
let doc_tree d = Lazy.force d.t

(* ---- expressions ----------------------------------------------------------- *)

(* The expression fragment used by computed $project fields, $group
   _id and accumulator arguments: field paths ["$a.b"], literals
   ([{"$literal": v}] or any non-string scalar), and literal documents
   whose fields are themselves expressions. *)
type expr =
  | E_path of path
  | E_lit of Value.t
  | E_doc of (string * expr) list

let rec parse_expr (v : Value.t) : expr =
  match v with
  | Value.Str s when String.length s > 1 && s.[0] = '$' ->
    E_path (split_path (String.sub s 1 (String.length s - 1)))
  | Value.Obj [ ("$literal", v) ] -> E_lit v
  | Value.Obj kvs
    when List.exists (fun (k, _) -> String.length k > 0 && k.[0] = '$') kvs ->
    bad "unsupported expression operator in %s" (Value.to_string v)
  | Value.Obj kvs -> E_doc (List.map (fun (k, v) -> (k, parse_expr v)) kvs)
  | literal -> E_lit literal

(* Field-path evaluation with aggregation-expression semantics: an
   array along the way maps the remaining path over its elements,
   collecting the hits into an array (one level per segment, elements
   that are not objects are skipped). *)
let rec get_path (p : path) (v : Value.t) : Value.t option =
  match (p, v) with
  | [], _ -> Some v
  | seg :: rest, Value.Obj kvs -> (
    match List.assoc_opt seg kvs with
    | None -> None
    | Some v' -> get_path rest v')
  | _ :: _, Value.Arr vs ->
    Some
      (Value.Arr
         (List.filter_map
            (function Value.Obj _ as e -> get_path p e | _ -> None)
            vs))
  | _ :: _, _ -> None

let rec eval_expr (e : expr) (d : Value.t) : Value.t option =
  match e with
  | E_lit v -> Some v
  | E_path p -> get_path p d
  | E_doc fields ->
    Some
      (Value.Obj
         (List.filter_map
            (fun (k, e) -> Option.map (fun v -> (k, v)) (eval_expr e d))
            fields))

(* ---- object-path editing --------------------------------------------------- *)

(* Strict object navigation (no implicit array traversal): the path
   resolution of $unwind, $sort keys and $lookup join fields. *)
let rec get_obj_path (p : path) (v : Value.t) : Value.t option =
  match (p, v) with
  | [], _ -> Some v
  | seg :: rest, Value.Obj kvs ->
    Option.bind (List.assoc_opt seg kvs) (get_obj_path rest)
  | _ -> None

(* Replace the value at an object path (the path is known to resolve). *)
let rec set_obj_path (p : path) (nv : Value.t) (v : Value.t) : Value.t =
  match (p, v) with
  | [], _ -> nv
  | seg :: rest, Value.Obj kvs ->
    Value.Obj
      (List.map
         (fun (k, x) -> if k = seg then (k, set_obj_path rest nv x) else (k, x))
         kvs)
  | _ -> v

let rec remove_obj_path (p : path) (v : Value.t) : Value.t =
  match (p, v) with
  | [ seg ], Value.Obj kvs -> Value.Obj (List.filter (fun (k, _) -> k <> seg) kvs)
  | seg :: rest, Value.Obj kvs ->
    Value.Obj
      (List.map
         (fun (k, x) -> if k = seg then (k, remove_obj_path rest x) else (k, x))
         kvs)
  | _, v -> v

(* Set a (possibly new) field at a dotted path, creating object spines
   for missing segments; a non-object in the way is replaced. *)
let rec set_path (p : path) (nv : Value.t) (v : Value.t) : Value.t =
  match p with
  | [] -> nv
  | seg :: rest -> (
    match v with
    | Value.Obj kvs when List.mem_assoc seg kvs ->
      Value.Obj
        (List.map
           (fun (k, x) -> if k = seg then (k, set_path rest nv x) else (k, x))
           kvs)
    | Value.Obj kvs -> Value.Obj (kvs @ [ (seg, set_path rest nv (Value.Obj [])) ])
    | _ -> Value.Obj [ (seg, set_path rest nv (Value.Obj [])) ])

(* ---- stages ---------------------------------------------------------------- *)

type proj =
  | P_include of path list * (path * expr) list  (** flags, computed *)
  | P_exclude of path list

type acc_op = A_sum | A_avg | A_min | A_max | A_push | A_count

type acc = { a_name : string; a_op : acc_op; a_arg : expr }

type group = { g_id : expr; g_accs : acc list }

type lookup = {
  l_local : path;
  l_as : path;
  l_foreign : Value.t array;  (** the joined collection, in order *)
  l_tbl : (string, int list) Hashtbl.t;  (** join key → indices, reversed *)
}

type stage =
  | S_match of Mongo.filter * Jsl.plan
  | S_project of proj
  | S_unwind of path * bool  (** path, preserveNullAndEmptyArrays *)
  | S_group of group
  | S_sort of (path * bool) list  (** path, ascending *)
  | S_limit of int
  | S_skip of int
  | S_lookup of lookup

type pipeline = stage list

(* ---- parsing --------------------------------------------------------------- *)

let as_int what = function
  | Value.Num n -> n
  | v -> bad "%s expects a number, got %s" what (Value.kind_name v)

let as_string what = function
  | Value.Str s -> s
  | v -> bad "%s expects a string, got %s" what (Value.kind_name v)

let as_bool what = function
  | Value.Str "true" | Value.Num 1 -> true
  | Value.Str "false" | Value.Num 0 -> false
  | v -> bad "%s expects a boolean, got %s" what (Value.to_string v)

let parse_project (v : Value.t) : proj =
  match v with
  | Value.Obj [] -> bad "$project requires at least one field"
  | Value.Obj kvs -> (
    let incs, excs, comps =
      List.fold_left
        (fun (i, e, c) (k, v) ->
          match v with
          | Value.Num 1 | Value.Str "true" -> (split_path k :: i, e, c)
          | Value.Num 0 | Value.Str "false" -> (i, split_path k :: e, c)
          | ev -> (i, e, (split_path k, parse_expr ev) :: c))
        ([], [], []) kvs
    in
    match (List.rev incs, List.rev excs, List.rev comps) with
    | [], (_ :: _ as e), [] -> P_exclude e
    | i, [], c -> P_include (i, c)
    | _ -> bad "$project cannot mix exclusion with inclusion or computed fields")
  | v -> bad "$project expects an object, got %s" (Value.kind_name v)

let parse_field_path what v =
  let s = as_string what v in
  if String.length s > 1 && s.[0] = '$' then
    split_path (String.sub s 1 (String.length s - 1))
  else bad "%s expects a \"$field.path\", got %s" what s

let parse_unwind (v : Value.t) : stage =
  match v with
  | Value.Str _ -> S_unwind (parse_field_path "$unwind" v, false)
  | Value.Obj kvs ->
    let upath =
      match List.assoc_opt "path" kvs with
      | Some p -> parse_field_path "$unwind.path" p
      | None -> bad "$unwind requires a path"
    in
    let preserve =
      match List.assoc_opt "preserveNullAndEmptyArrays" kvs with
      | Some b -> as_bool "preserveNullAndEmptyArrays" b
      | None -> false
    in
    List.iter
      (fun (k, _) ->
        if k <> "path" && k <> "preserveNullAndEmptyArrays" then
          bad "$unwind: unknown option %s" k)
      kvs;
    S_unwind (upath, preserve)
  | v -> bad "$unwind expects a path or an options object, got %s" (Value.kind_name v)

let parse_acc name (v : Value.t) : acc =
  match v with
  | Value.Obj [ (op, arg) ] ->
    let mk a_op a_arg = { a_name = name; a_op; a_arg } in
    (match op with
    | "$sum" -> mk A_sum (parse_expr arg)
    | "$avg" -> mk A_avg (parse_expr arg)
    | "$min" -> mk A_min (parse_expr arg)
    | "$max" -> mk A_max (parse_expr arg)
    | "$push" -> mk A_push (parse_expr arg)
    | "$count" -> (
      match arg with
      | Value.Obj [] -> mk A_count (E_lit (Value.Num 0))
      | _ -> bad "$count takes {}")
    | op -> bad "unknown accumulator %s" op)
  | v -> bad "accumulator %s must be {\"$op\": expr}, got %s" name (Value.to_string v)

let parse_group (v : Value.t) : group =
  match v with
  | Value.Obj kvs ->
    let g_id =
      match List.assoc_opt "_id" kvs with
      | Some e -> parse_expr e
      | None -> bad "$group requires an _id expression"
    in
    let g_accs =
      List.filter_map
        (fun (k, v) -> if k = "_id" then None else Some (parse_acc k v))
        kvs
    in
    { g_id; g_accs }
  | v -> bad "$group expects an object, got %s" (Value.kind_name v)

(* The model has no negative numbers, so Mongo's [-1] cannot spell
   "descending": we use [1] ascending / [0] descending. *)
let parse_sort (v : Value.t) : (path * bool) list =
  match v with
  | Value.Obj (_ :: _ as kvs) ->
    List.map
      (fun (k, v) ->
        match v with
        | Value.Num 1 -> (split_path k, true)
        | Value.Num 0 -> (split_path k, false)
        | v -> bad "$sort direction must be 1 (asc) or 0 (desc), got %s"
                 (Value.to_string v))
      kvs
  | v -> bad "$sort expects a non-empty object, got %s" (Value.to_string v)

(* canonical string of a join key; [None] is the missing field *)
let canon_opt = function
  | None -> "m"
  | Some v -> "v" ^ Value.to_string (Value.sort_keys v)

let parse_lookup collections (v : Value.t) : lookup =
  match v with
  | Value.Obj kvs ->
    let field what =
      match List.assoc_opt what kvs with
      | Some s -> as_string ("$lookup." ^ what) s
      | None -> bad "$lookup requires %s" what
    in
    let from = field "from" in
    let l_local = split_path (field "localField") in
    let l_foreign_path = split_path (field "foreignField") in
    let l_as = split_path (field "as") in
    let docs =
      match collections from with
      | Some docs -> docs
      | None -> bad "$lookup: unknown collection %s" from
    in
    let l_foreign = Array.of_list docs in
    let l_tbl = Hashtbl.create (max 16 (Array.length l_foreign)) in
    Array.iteri
      (fun i fd ->
        let key = canon_opt (get_obj_path l_foreign_path fd) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt l_tbl key) in
        Hashtbl.replace l_tbl key (i :: prev))
      l_foreign;
    { l_local; l_as; l_foreign; l_tbl }
  | v -> bad "$lookup expects an object, got %s" (Value.kind_name v)

let parse_stage collections (v : Value.t) : stage =
  match v with
  | Value.Obj [ (op, arg) ] -> (
    match op with
    | "$match" -> (
      match Mongo.parse arg with
      | Ok f -> S_match (f, Jsl.compile (Mongo.to_jsl f))
      | Error m -> bad "$match: %s" m)
    | "$project" -> S_project (parse_project arg)
    | "$unwind" -> parse_unwind arg
    | "$group" -> S_group (parse_group arg)
    | "$sort" -> S_sort (parse_sort arg)
    | "$limit" ->
      let n = as_int "$limit" arg in
      S_limit n
    | "$skip" ->
      let n = as_int "$skip" arg in
      S_skip n
    | "$lookup" -> S_lookup (parse_lookup collections arg)
    | op -> bad "unknown pipeline stage %s" op)
  | Value.Obj _ -> bad "a pipeline stage must have exactly one operator"
  | v -> bad "a pipeline stage must be an object, got %s" (Value.kind_name v)

let no_collections : string -> Value.t list option = fun _ -> None

let parse ?(collections = no_collections) (v : Value.t) =
  match v with
  | Value.Arr stages -> (
    match List.map (parse_stage collections) stages with
    | stages -> Ok stages
    | exception Bad m -> Error m)
  | v -> Error (Printf.sprintf "a pipeline must be an array, got %s" (Value.kind_name v))

let parse_string ?collections s =
  match Jsont.Parser.parse ~mode:`Lenient s with
  | Error e -> Error (Format.asprintf "%a" Jsont.Parser.pp_error e)
  | Ok v -> parse ?collections v

let parse_string_exn ?collections s =
  match parse_string ?collections s with
  | Ok p -> p
  | Error m -> invalid_arg ("Jquery.Mongo_agg.parse_string_exn: " ^ m)

(* ---- direct evaluation ----------------------------------------------------- *)

let apply_proj (p : proj) (d : Value.t) : Value.t =
  match p with
  | P_exclude paths -> Mongo.project (Mongo.Exclude paths) d
  | P_include (incs, comps) ->
    let base =
      if incs = [] then Value.Obj []
      else Mongo.project (Mongo.Include incs) d
    in
    List.fold_left
      (fun acc (path, e) ->
        match eval_expr e d with
        | None -> acc
        | Some v -> set_path path v acc)
      base comps

let apply_unwind upath preserve (d : Value.t) : Value.t list =
  match get_obj_path upath d with
  | None ->
    if preserve then (Metrics.incr "mongo.agg.unwind.preserved"; [ d ]) else []
  | Some (Value.Arr []) ->
    if preserve then (
      Metrics.incr "mongo.agg.unwind.preserved";
      [ remove_obj_path upath d ])
    else []
  | Some (Value.Arr vs) ->
    Metrics.add "mongo.agg.unwind.out" (List.length vs);
    List.map (fun e -> set_obj_path upath e d) vs
  | Some _ -> [ d ]

type acc_state = {
  mutable s_sum : int;
  mutable s_cnt : int;  (** numeric values seen (for $avg) *)
  mutable s_min : Value.t option;
  mutable s_max : Value.t option;
  mutable s_items : Value.t list;  (** reversed *)
  mutable s_docs : int;  (** documents seen (for $count) *)
}

let fresh_state () =
  { s_sum = 0; s_cnt = 0; s_min = None; s_max = None; s_items = []; s_docs = 0 }

let feed_state st (a : acc) (d : Value.t) =
  st.s_docs <- st.s_docs + 1;
  match eval_expr a.a_arg d with
  | None -> ()
  | Some v -> (
    st.s_items <- v :: st.s_items;
    (match v with
    | Value.Num n ->
      st.s_sum <- st.s_sum + n;
      st.s_cnt <- st.s_cnt + 1
    | _ -> ());
    let better cmp cur =
      match cur with
      | None -> Some v
      | Some w -> if cmp (Value.compare v w) 0 then Some v else Some w
    in
    st.s_min <- better ( < ) st.s_min;
    st.s_max <- better ( > ) st.s_max)

(* $avg truncates: the model's numbers are naturals, so the mean of
   [1; 2] is 1 — a documented divergence from Mongo's doubles *)
let finish_state st (a : acc) : Value.t option =
  match a.a_op with
  | A_count -> Some (Value.Num st.s_docs)
  | A_sum -> Some (Value.Num st.s_sum)
  | A_avg -> if st.s_cnt = 0 then None else Some (Value.Num (st.s_sum / st.s_cnt))
  | A_min -> st.s_min
  | A_max -> st.s_max
  | A_push -> Some (Value.Arr (List.rev st.s_items))

let apply_group (g : group) (docs : Value.t list) : Value.t list =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun d ->
      let key = eval_expr g.g_id d in
      let ks = canon_opt key in
      let entry =
        match Hashtbl.find_opt tbl ks with
        | Some e -> e
        | None ->
          let e = (key, List.map (fun _ -> fresh_state ()) g.g_accs) in
          Hashtbl.add tbl ks e;
          order := ks :: !order;
          e
      in
      List.iter2 (fun st a -> feed_state st a d) (snd entry) g.g_accs)
    docs;
  Metrics.add "mongo.agg.group.groups" (Hashtbl.length tbl);
  List.rev_map
    (fun ks ->
      let key, states = Hashtbl.find tbl ks in
      let id_field =
        match key with None -> [] | Some v -> [ ("_id", v) ]
      in
      let acc_fields =
        List.filter_map
          (fun (st, a) ->
            Option.map (fun v -> (a.a_name, v)) (finish_state st a))
          (List.combine states g.g_accs)
      in
      Value.Obj (id_field @ acc_fields))
    !order

(* missing sorts before any present value; descending negates *)
let sort_cmp spec d1 d2 =
  let rec go = function
    | [] -> 0
    | (p, asc) :: rest ->
      let c =
        match (get_obj_path p d1, get_obj_path p d2) with
        | None, None -> 0
        | None, Some _ -> -1
        | Some _, None -> 1
        | Some a, Some b -> Value.compare a b
      in
      let c = if asc then c else -c in
      if c <> 0 then c else go rest
  in
  go spec

let apply_lookup (lk : lookup) (d : Value.t) : Value.t =
  let lv = get_obj_path lk.l_local d in
  let probes =
    match lv with
    | Some (Value.Arr vs) -> lv :: List.map Option.some vs
    | other -> [ other ]
  in
  Metrics.add "mongo.agg.lookup.probes" (List.length probes);
  let idxs =
    List.concat_map
      (fun p ->
        match Hashtbl.find_opt lk.l_tbl (canon_opt p) with
        | Some l -> l
        | None -> [])
      probes
  in
  let idxs = List.sort_uniq compare idxs in
  Metrics.add "mongo.agg.lookup.hits" (List.length idxs);
  let matched = Value.Arr (List.map (fun i -> lk.l_foreign.(i)) idxs) in
  set_path lk.l_as matched d

(* ---- pipeline evaluation --------------------------------------------------- *)

let is_streaming = function
  | S_match _ | S_project _ | S_unwind _ | S_lookup _ -> true
  | S_group _ | S_sort _ | S_limit _ | S_skip _ -> false

let split_streaming (pl : pipeline) : pipeline * pipeline =
  let rec go acc = function
    | s :: rest when is_streaming s -> go (s :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] pl

let apply_stage_doc (s : stage) (d : doc) : doc list =
  match s with
  | S_match (_, plan) ->
    let t = doc_tree d in
    if Jsl.holds_plan (Jsl.context t) Tree.root plan then (
      Metrics.incr "mongo.agg.match.pass";
      [ d ])
    else (
      Metrics.incr "mongo.agg.match.drop";
      [])
  | S_project p -> [ doc_of_value (apply_proj p (doc_value d)) ]
  | S_unwind (up, preserve) ->
    List.map doc_of_value (apply_unwind up preserve (doc_value d))
  | S_lookup lk -> [ doc_of_value (apply_lookup lk (doc_value d)) ]
  | S_group _ | S_sort _ | S_limit _ | S_skip _ ->
    invalid_arg "Mongo_agg.apply_doc: blocking stage"

let apply_doc (streaming : pipeline) (d : doc) : doc list =
  List.fold_left
    (fun ds s -> List.concat_map (apply_stage_doc s) ds)
    [ d ] streaming

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

let apply_stage (s : stage) (ds : doc list) : doc list =
  match s with
  | S_group g -> List.map doc_of_value (apply_group g (List.map doc_value ds))
  | S_sort spec ->
    Metrics.add "mongo.agg.sort.docs" (List.length ds);
    List.map doc_of_value
      (List.stable_sort (sort_cmp spec) (List.map doc_value ds))
  | S_limit n -> take n ds
  | S_skip n -> drop n ds
  | streaming -> List.concat_map (apply_stage_doc streaming) ds

let run_docs (pl : pipeline) (ds : doc list) : doc list =
  Metrics.span "mongo.agg.run" @@ fun () ->
  Metrics.add "mongo.agg.docs.in" (List.length ds);
  let out = List.fold_left (fun ds s -> apply_stage s ds) ds pl in
  Metrics.add "mongo.agg.docs.out" (List.length out);
  out

let run pl vs = List.map doc_value (run_docs pl (List.map doc_of_value vs))

(* ---- the JNL route --------------------------------------------------------- *)

(* The navigational core ($match / flag-only $project / $unwind)
   evaluated through JNL: $match through Theorem 2 and the per-node
   checker, $project through marking sets computed as path post-images
   ([Jnl_eval.succs]), $unwind through post-image targeting plus
   {!Tree.substitute}.  An independent oracle for the direct engine
   above — no code shared with [apply_proj]/[apply_stage_doc]'s
   plan route. *)

let star_arr = Jnl.Star (Jnl.Range (0, None))

let rec seq_of = function
  | [] -> Jnl.Self
  | [ x ] -> x
  | x :: rest -> Jnl.Seq (x, seq_of rest)

(* the first [i] segments of [p], each preceded by arbitrary array
   descent — the uniform descent of inclusion/exclusion projections *)
let proj_prefix (p : path) (i : int) : Jnl.path =
  seq_of (List.concat_map (fun s -> [ star_arr; Jnl.Key s ]) (take i p))

let jnl_project_include (incs : path list) (t : Tree.t) : Value.t =
  let n = Tree.node_count t in
  let mark = Array.make n false and keep = Array.make n false in
  let ctx = Jnl_eval.context t in
  List.iter
    (fun p ->
      let k = List.length p in
      for i = 1 to k do
        let arr = if i = k then keep else mark in
        List.iter
          (fun nd -> arr.(nd) <- true)
          (Jnl_eval.succs ctx (proj_prefix p i) Tree.root)
      done)
    incs;
  let rec rb nd =
    if keep.(nd) then Tree.value_at t nd
    else
      match Tree.kind t nd with
      | Tree.Kobj ->
        Value.Obj
          (List.filter_map
             (fun (key, c) ->
               if mark.(c) || keep.(c) then Some (key, rb c) else None)
             (Tree.obj_children t nd))
      | Tree.Karr ->
        Value.Arr (List.map rb (Array.to_list (Tree.arr_children t nd)))
      | Tree.Kstr _ | Tree.Kint _ -> Tree.value_at t nd
  in
  rb Tree.root

let jnl_project_exclude (excs : path list) (t : Tree.t) : Value.t =
  let n = Tree.node_count t in
  let dropped = Array.make n false in
  let ctx = Jnl_eval.context t in
  List.iter
    (fun p ->
      List.iter
        (fun nd -> dropped.(nd) <- true)
        (Jnl_eval.succs ctx (proj_prefix p (List.length p)) Tree.root))
    excs;
  let rec rb nd =
    match Tree.kind t nd with
    | Tree.Kobj ->
      Value.Obj
        (List.filter_map
           (fun (key, c) -> if dropped.(c) then None else Some (key, rb c))
           (Tree.obj_children t nd))
    | Tree.Karr -> Value.Arr (List.map rb (Array.to_list (Tree.arr_children t nd)))
    | Tree.Kstr _ | Tree.Kint _ -> Tree.value_at t nd
  in
  rb Tree.root

let jnl_unwind (upath : path) preserve (t : Tree.t) : Value.t list =
  let ctx = Jnl_eval.context t in
  let p = seq_of (List.map (fun s -> Jnl.Key s) upath) in
  match Jnl_eval.succs ctx p Tree.root with
  | [] -> if preserve then [ Tree.to_value t ] else []
  | [ target ] -> (
    match Tree.kind t target with
    | Tree.Karr ->
      let cs = Tree.arr_children t target in
      if Array.length cs = 0 then
        if preserve then [ remove_obj_path upath (Tree.to_value t) ] else []
      else
        Array.to_list
          (Array.map (fun c -> Tree.substitute t target (Tree.value_at t c)) cs)
    | _ -> [ Tree.to_value t ])
  | _ -> assert false (* a pure Key path is deterministic *)

let jnl_stage (s : stage) : (Value.t -> Value.t list, string) result =
  match s with
  | S_match (f, _) -> (
    match Mongo.to_jnl f with
    | Error m -> Error ("$match: " ^ m)
    | Ok jnl -> Ok (fun v -> if Jnl_eval.satisfies v jnl then [ v ] else []))
  | S_project (P_include (incs, [])) ->
    Ok (fun v -> [ jnl_project_include incs (Tree.of_value v) ])
  | S_project (P_include (_, _ :: _)) ->
    Error "computed $project fields are outside the navigational core"
  | S_project (P_exclude excs) ->
    Ok (fun v -> [ jnl_project_exclude excs (Tree.of_value v) ])
  | S_unwind (up, preserve) ->
    Ok (fun v -> jnl_unwind up preserve (Tree.of_value v))
  | S_group _ | S_sort _ | S_limit _ | S_skip _ | S_lookup _ ->
    Error "stage outside the navigational core ($match/$project/$unwind)"

let jnl_stages (pl : pipeline) =
  List.fold_right
    (fun s acc ->
      match (jnl_stage s, acc) with
      | Ok f, Ok fs -> Ok (f :: fs)
      | Error m, _ -> Error m
      | _, (Error _ as e) -> e)
    pl (Ok [])

let navigational pl = Result.is_ok (jnl_stages pl)

let run_via_jnl (pl : pipeline) (vs : Value.t list) =
  match jnl_stages pl with
  | Error _ as e -> e
  | Ok fns ->
    Ok (List.fold_left (fun ds f -> List.concat_map f ds) vs fns)
