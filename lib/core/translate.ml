exception Out_of_scope of string

let out_of_scope fmt = Format.kasprintf (fun s -> raise (Out_of_scope s)) fmt

(* ---- JSL → JNL (polynomial) --------------------------------------------- *)

(* word-shaped key languages become deterministic [Key] steps, so the
   deterministic JSL fragment lands in deterministic JNL *)
let key_step e =
  match Rexp.Syntax.as_word e with
  | Some w -> Jnl.Key w
  | None -> Jnl.Keys e

let rec jsl_to_jnl_inner (f : Jsl.t) : Jnl.form =
  match f with
  | Jsl.True -> Jnl.True
  | Jsl.Not g -> Jnl.Not (jsl_to_jnl_inner g)
  | Jsl.And (a, b) -> Jnl.And (jsl_to_jnl_inner a, jsl_to_jnl_inner b)
  | Jsl.Or (a, b) -> Jnl.Or (jsl_to_jnl_inner a, jsl_to_jnl_inner b)
  | Jsl.Test (Jsl.Eq_doc v) -> Jnl.Eq_doc (Jnl.Self, v)
  | Jsl.Test nt ->
    out_of_scope "node test %s is outside Theorem 2's JSL fragment"
      (Format.asprintf "%a" Jsl.pp (Jsl.Test nt))
  | Jsl.Dia_keys (e, g) ->
    Jnl.Exists (Jnl.Seq (key_step e, Jnl.Test (jsl_to_jnl_inner g)))
  | Jsl.Dia_range (i, j, g) ->
    Jnl.Exists (Jnl.Seq (Jnl.Range (i, j), Jnl.Test (jsl_to_jnl_inner g)))
  | Jsl.Box_keys (e, g) ->
    (* □_e ϕ ≡ ¬◇_e ¬ϕ *)
    Jnl.Not
      (Jnl.Exists (Jnl.Seq (key_step e, Jnl.Test (Jnl.Not (jsl_to_jnl_inner g)))))
  | Jsl.Box_range (i, j, g) ->
    Jnl.Not
      (Jnl.Exists
         (Jnl.Seq (Jnl.Range (i, j), Jnl.Test (Jnl.Not (jsl_to_jnl_inner g)))))
  | Jsl.Var v -> out_of_scope "recursion symbol $%s (Theorem 2 is non-recursive)" v

let jsl_to_jnl f =
  match jsl_to_jnl_inner f with
  | g -> Ok g
  | exception Out_of_scope m -> Error m

let jsl_to_jnl_exn f =
  match jsl_to_jnl f with
  | Ok g -> g
  | Error m -> invalid_arg ("Translate.jsl_to_jnl_exn: " ^ m)

(* ---- JNL → JSL (worst-case exponential) ---------------------------------- *)

(* [trans_path α k] is a JSL formula satisfied at n iff some α-successor
   of n satisfies k — the continuation-passing rendering of the
   top-symbol substitution in the proof of Theorem 2.  [Alt] duplicates
   the continuation, which is where the exponential blow-up lives. *)
let rec trans_path (p : Jnl.path) (k : Jsl.t) : Jsl.t =
  match p with
  | Jnl.Self -> k
  | Jnl.Key w -> Jsl.Dia_keys (Rexp.Syntax.literal w, k)
  | Jnl.Keys e -> Jsl.Dia_keys (e, k)
  | Jnl.Idx i ->
    if i < 0 then
      out_of_scope "negative index %d is not expressible in JSL ranges" i
    else Jsl.Dia_range (i, Some i, k)
  | Jnl.Range (i, j) ->
    if i < 0 then out_of_scope "negative range start %d" i
    else Jsl.Dia_range (i, j, k)
  | Jnl.Seq (a, b) -> trans_path a (trans_path b k)
  | Jnl.Alt (a, b) -> Jsl.Or (trans_path a k, trans_path b k)
  | Jnl.Test f -> Jsl.And (trans_form f, k)
  | Jnl.Star _ ->
    out_of_scope "Kleene star has no counterpart in non-recursive JSL"

and trans_form (f : Jnl.form) : Jsl.t =
  match f with
  | Jnl.True -> Jsl.True
  | Jnl.Not g -> Jsl.Not (trans_form g)
  | Jnl.And (a, b) -> Jsl.And (trans_form a, trans_form b)
  | Jnl.Or (a, b) -> Jsl.Or (trans_form a, trans_form b)
  | Jnl.Exists p -> trans_path p Jsl.True
  | Jnl.Eq_doc (p, v) -> trans_path p (Jsl.Test (Jsl.Eq_doc v))
  | Jnl.Eq_paths _ ->
    out_of_scope "EQ(α,β) is not expressible in JSL (Theorem 2's premise)"

let jnl_to_jsl f =
  match trans_form f with
  | g -> Ok g
  | exception Out_of_scope m -> Error m

let jnl_to_jsl_exn f =
  match jnl_to_jsl f with
  | Ok g -> g
  | Error m -> invalid_arg ("Translate.jnl_to_jsl_exn: " ^ m)

let alt_chain n =
  let step = Jnl.Alt (Jnl.Key "a", Jnl.Key "b") in
  let rec chain k = if k <= 1 then step else Jnl.Seq (step, chain (k - 1)) in
  Jnl.Exists (chain (max 1 n))
