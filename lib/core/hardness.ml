module Value = Jsont.Value

(* ---- 3SAT → deterministic positive JNL (Proposition 2) ------------------- *)

type lit = { var : int; positive : bool }
type cnf = lit list list

let var_key i = "p" ^ string_of_int i
let fresh_key = "w"

(* [pᵢ is an array] — it has a child at array position 1 *)
let truthy i = Jnl.Exists (Jnl.Seq (Jnl.Key (var_key i), Jnl.Test (Jnl.Exists (Jnl.Idx 1))))

(* [pᵢ is an object] — it has a child under the fresh key w *)
let falsy i =
  Jnl.Exists (Jnl.Seq (Jnl.Key (var_key i), Jnl.Test (Jnl.Exists (Jnl.Key fresh_key))))

let cnf_to_jnl ~nvars cnf =
  let thetas = List.init nvars (fun i -> Jnl.Or (truthy i, falsy i)) in
  let clause c =
    Jnl.disj (List.map (fun l -> if l.positive then truthy l.var else falsy l.var) c)
  in
  Jnl.conj (thetas @ List.map clause cnf)

let assignment_doc a =
  Value.Obj
    (List.init (Array.length a) (fun i ->
         ( var_key i,
           if a.(i) then Value.Arr [ Value.Num 0; Value.Num 0 ]
           else Value.Obj [ (fresh_key, Value.Num 0) ] )))

(* DPLL reference oracle *)
let dpll ~nvars cnf =
  let assignment = Array.make nvars None in
  let lit_value l =
    match assignment.(l.var) with
    | None -> None
    | Some b -> Some (b = l.positive)
  in
  let rec solve cnf =
    (* simplify: drop satisfied clauses, drop false literals *)
    let simplified =
      List.filter_map
        (fun clause ->
          let rec go acc = function
            | [] -> Some (List.rev acc)
            | l :: rest -> (
              match lit_value l with
              | Some true -> None (* clause satisfied *)
              | Some false -> go acc rest
              | None -> go (l :: acc) rest)
          in
          go [] clause)
        cnf
    in
    if List.exists (fun c -> c = []) simplified then false
    else
      match simplified with
      | [] -> true
      | clauses -> (
        (* unit propagation *)
        match List.find_opt (fun c -> List.length c = 1) clauses with
        | Some [ l ] ->
          assignment.(l.var) <- Some l.positive;
          let ok = solve clauses in
          if not ok then assignment.(l.var) <- None;
          ok
        | _ -> (
          (* branch on the first unassigned variable of the first clause *)
          match clauses with
          | (l :: _) :: _ ->
            let v = l.var in
            let try_value b =
              assignment.(v) <- Some b;
              let ok = solve clauses in
              if not ok then assignment.(v) <- None;
              ok
            in
            try_value true || try_value false
          | _ -> assert false))
  in
  if solve cnf then
    Some (Array.map (function Some b -> b | None -> false) assignment)
  else None

(* ---- QBF → JSL (Proposition 7) ------------------------------------------- *)

type qbf = { prefix : [ `Forall | `Exists ] list; matrix : cnf }

let key_x = Rexp.Syntax.literal "X"
let key_t = Rexp.Syntax.literal "T"
let key_f = Rexp.Syntax.literal "F"
let key_tf = Rexp.Syntax.alt key_t key_f

let dia e f = Jsl.Dia_keys (e, f)
let box e f = Jsl.Box_keys (e, f)

(* descend one full variable level: through the X edge, then through
   whichever of T/F children exist *)
let rec descend k f = if k = 0 then f else box key_x (box key_tf (descend (k - 1) f))

let qbf_to_jsl q =
  let n = List.length q.prefix in
  let level k quantifier =
    let choice =
      match quantifier with
      | `Forall -> Jsl.And (dia key_t Jsl.True, dia key_f Jsl.True)
      | `Exists ->
        Jsl.Or
          ( Jsl.And (dia key_t Jsl.True, Jsl.Not (dia key_f Jsl.True)),
            Jsl.And (Jsl.Not (dia key_t Jsl.True), dia key_f Jsl.True) )
    in
    descend k (Jsl.And (dia key_x Jsl.True, box key_x choice))
  in
  let tree_part = List.mapi level q.prefix in
  (* the path reaching an assignment that falsifies clause [c]; a
     clause containing complementary literals on the same variable is a
     tautology — nothing falsifies it, so it contributes no conjunct *)
  let falsify c =
    let branch k =
      let lits = List.filter (fun l -> l.var = k) c in
      let pos = List.exists (fun l -> l.positive) lits in
      let neg = List.exists (fun l -> not l.positive) lits in
      match (pos, neg) with
      | true, true -> None (* tautological clause *)
      | true, false -> Some key_f
      | false, true -> Some key_t
      | false, false -> Some key_tf
    in
    let rec go k =
      if k = n then Some Jsl.True
      else
        match (branch k, go (k + 1)) with
        | Some b, Some rest -> Some (dia key_x (dia b rest))
        | None, _ | _, None -> None
    in
    go 0
  in
  let clause_part =
    List.filter_map
      (fun c -> Option.map (fun f -> Jsl.Not f) (falsify c))
      q.matrix
  in
  Jsl.conj (tree_part @ clause_part)

let cnf_eval cnf a =
  List.for_all
    (fun clause ->
      List.exists (fun l -> if l.positive then a.(l.var) else not a.(l.var)) clause)
    cnf

let qbf_eval q =
  let n = List.length q.prefix in
  let a = Array.make n false in
  let prefix = Array.of_list q.prefix in
  let rec go k =
    if k = n then cnf_eval q.matrix a
    else
      match prefix.(k) with
      | `Exists ->
        a.(k) <- true;
        go (k + 1)
        ||
        (a.(k) <- false;
         go (k + 1))
      | `Forall ->
        a.(k) <- true;
        go (k + 1)
        &&
        (a.(k) <- false;
         go (k + 1))
  in
  go 0

let assignment_tree q choose =
  let n = List.length q.prefix in
  let prefix = Array.of_list q.prefix in
  let a = Array.make n false in
  let rec build k =
    if k = n then Value.Obj []
    else
      let branch b =
        a.(k) <- b;
        ((if b then "T" else "F"), build (k + 1))
      in
      let branches =
        match prefix.(k) with
        | `Forall -> [ branch true; branch false ]
        | `Exists -> [ branch (choose k (Array.copy a)) ]
      in
      Value.Obj [ ("X", Value.Obj branches) ]
  in
  build 0

(* ---- boolean circuits → recursive JSL (Proposition 9) -------------------- *)

type gate =
  | G_input of int
  | G_and of int * int
  | G_or of int * int
  | G_not of int

type circuit = { gates : gate array; output : int; n_inputs : int }

let circuit_check c =
  let bad = ref None in
  Array.iteri
    (fun j g ->
      let check_ref i =
        if i >= j then bad := Some (Printf.sprintf "gate %d references gate %d" j i)
      in
      match g with
      | G_input i ->
        if i < 0 || i >= c.n_inputs then
          bad := Some (Printf.sprintf "gate %d reads invalid input %d" j i)
      | G_and (a, b) | G_or (a, b) ->
        check_ref a;
        check_ref b
      | G_not a -> check_ref a)
    c.gates;
  if c.output < 0 || c.output >= Array.length c.gates then
    bad := Some "invalid output gate";
  match !bad with None -> Ok () | Some m -> Error m

let gate_sym j = "g" ^ string_of_int j
let input_key i = "IN" ^ string_of_int i

let circuit_to_jsl_rec c =
  (match circuit_check c with
  | Ok () -> ()
  | Error m -> invalid_arg ("Hardness.circuit_to_jsl_rec: " ^ m));
  let input i =
    Jsl.Dia_keys
      (Rexp.Syntax.literal (input_key i), Jsl.Test (Jsl.Pattern (Rexp.Syntax.literal "T")))
  in
  let defs =
    Array.to_list
      (Array.mapi
         (fun j g ->
           let body =
             match g with
             | G_input i -> input i
             | G_and (a, b) -> Jsl.And (Jsl.Var (gate_sym a), Jsl.Var (gate_sym b))
             | G_or (a, b) -> Jsl.Or (Jsl.Var (gate_sym a), Jsl.Var (gate_sym b))
             | G_not a -> Jsl.Not (Jsl.Var (gate_sym a))
           in
           (gate_sym j, body))
         c.gates)
  in
  Jsl_rec.make_exn ~defs ~base:(Jsl.Var (gate_sym c.output))

let circuit_doc a =
  Value.Obj
    (List.init (Array.length a) (fun i ->
         (input_key i, Value.Str (if a.(i) then "T" else "F"))))

let circuit_eval c a =
  let values = Array.make (Array.length c.gates) false in
  Array.iteri
    (fun j g ->
      values.(j) <-
        (match g with
        | G_input i -> a.(i)
        | G_and (x, y) -> values.(x) && values.(y)
        | G_or (x, y) -> values.(x) || values.(y)
        | G_not x -> not values.(x)))
    c.gates;
  values.(c.output)

(* ---- two-counter machines → recursive JNL (Proposition 4) ---------------- *)

type cm_instr =
  | Incr of int * string
  | Decr of int * string
  | If_zero of int * string * string
  | Halt

type machine = {
  states : (string * cm_instr) list;
  start : string;
  final : string;
}

let counter_key c = "c" ^ string_of_int c
let zero_doc = Value.Str "0"

let state_eq q = Jnl.Eq_doc (Jnl.Key "state", Value.Str q)
let next_state_eq q = Jnl.Eq_doc (Jnl.seq [ Jnl.Key "next"; Jnl.Key "state" ], Value.Str q)

let preserved c =
  Jnl.Eq_paths
    (Jnl.Key (counter_key c), Jnl.seq [ Jnl.Key "next"; Jnl.Key (counter_key c) ])

let cm_to_jnl m =
  let phi q instr =
    match instr with
    | Halt -> None
    | Incr (c, q') ->
      Some
        (Jnl.conj
           [ state_eq q;
             next_state_eq q';
             (* current counter = (next counter)'s a-child: next = cur+1 *)
             Jnl.Eq_paths
               ( Jnl.Key (counter_key c),
                 Jnl.seq [ Jnl.Key "next"; Jnl.Key (counter_key c); Jnl.Key "a" ] );
             preserved (1 - c) ])
    | Decr (c, q') ->
      Some
        (Jnl.conj
           [ state_eq q;
             next_state_eq q';
             Jnl.Eq_paths
               ( Jnl.seq [ Jnl.Key (counter_key c); Jnl.Key "a" ],
                 Jnl.seq [ Jnl.Key "next"; Jnl.Key (counter_key c) ] );
             preserved (1 - c) ])
    | If_zero (c, qz, qnz) ->
      Some
        (Jnl.conj
           [ Jnl.Or
               ( Jnl.conj
                   [ Jnl.Eq_doc (Jnl.Key (counter_key c), zero_doc);
                     state_eq q;
                     next_state_eq qz ],
                 Jnl.conj
                   [ Jnl.Exists (Jnl.Seq (Jnl.Key (counter_key c), Jnl.Key "a"));
                     state_eq q;
                     next_state_eq qnz ] );
             preserved 0;
             preserved 1 ])
  in
  let trans = Jnl.disj (List.filter_map (fun (q, i) -> phi q i) m.states) in
  let init =
    Jnl.conj
      [ Jnl.Eq_doc (Jnl.Key "c0", zero_doc);
        Jnl.Eq_doc (Jnl.Key "c1", zero_doc);
        Jnl.Eq_doc (Jnl.Key "state", Value.Str m.start) ]
  in
  let final = Jnl.Eq_doc (Jnl.Key "state", Value.Str m.final) in
  Jnl.Exists
    (Jnl.seq
       [ Jnl.Test init;
         Jnl.Star (Jnl.Seq (Jnl.Test trans, Jnl.Key "next"));
         Jnl.Test final ])

let cm_run m ~max_steps =
  let rec go steps q c0 c1 acc =
    let acc = (q, c0, c1) :: acc in
    if q = m.final then Some (List.rev acc)
    else if steps = 0 then None
    else
      match List.assoc_opt q m.states with
      | None | Some Halt -> None
      | Some (Incr (c, q')) ->
        if c = 0 then go (steps - 1) q' (c0 + 1) c1 acc
        else go (steps - 1) q' c0 (c1 + 1) acc
      | Some (Decr (c, q')) ->
        if c = 0 then if c0 = 0 then None else go (steps - 1) q' (c0 - 1) c1 acc
        else if c1 = 0 then None
        else go (steps - 1) q' c0 (c1 - 1) acc
      | Some (If_zero (c, qz, qnz)) ->
        let v = if c = 0 then c0 else c1 in
        go (steps - 1) (if v = 0 then qz else qnz) c0 c1 acc
  in
  go max_steps m.start 0 0 []

let rec counter_doc n =
  if n = 0 then zero_doc else Value.Obj [ ("a", counter_doc (n - 1)) ]

let cm_run_doc configs =
  let rec build = function
    | [] -> invalid_arg "Hardness.cm_run_doc: empty run"
    | [ (q, c0, c1) ] ->
      Value.Obj
        [ ("state", Value.Str q); ("c0", counter_doc c0); ("c1", counter_doc c1) ]
    | (q, c0, c1) :: rest ->
      Value.Obj
        [ ("state", Value.Str q);
          ("c0", counter_doc c0);
          ("c1", counter_doc c1);
          ("next", build rest) ]
  in
  build configs
