type t = { words : int array; n : int }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let words_for n = (n + bits_per_word - 1) / bits_per_word

let create n = { words = Array.make (words_for n) 0; n }

let full n =
  let t = { words = Array.make (words_for n) (-1); n } in
  (* clear the bits beyond n in the last word *)
  let rem = n mod bits_per_word in
  if rem > 0 && Array.length t.words > 0 then
    t.words.(Array.length t.words - 1) <- (1 lsl rem) - 1;
  t

let capacity t = t.n
let mem t i = t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let copy t = { t with words = Array.copy t.words }

let union_into s ~into =
  let changed = ref false in
  for w = 0 to Array.length s.words - 1 do
    let v = into.words.(w) lor s.words.(w) in
    if v <> into.words.(w) then begin
      changed := true;
      into.words.(w) <- v
    end
  done;
  !changed

let inter_into s ~into =
  let changed = ref false in
  for w = 0 to Array.length s.words - 1 do
    let v = into.words.(w) land s.words.(w) in
    if v <> into.words.(w) then begin
      changed := true;
      into.words.(w) <- v
    end
  done;
  !changed

let map2 f a b =
  { a with words = Array.init (Array.length a.words) (fun i -> f a.words.(i) b.words.(i)) }

let inter a b = map2 ( land ) a b
let union a b = map2 ( lor ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement a =
  let f = full a.n in
  map2 (fun x y -> y land lnot x) a f

let is_empty t = Array.for_all (fun w -> w = 0) t.words
let equal a b = a.n = b.n && a.words = b.words

let cardinal t =
  let count w =
    let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
    go 0 w
  in
  Array.fold_left (fun acc w -> acc + count w) 0 t.words

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n l =
  let t = create n in
  List.iter (add t) l;
  t

let pp fmt t =
  Format.fprintf fmt "{%s}" (String.concat "," (List.map string_of_int (elements t)))
