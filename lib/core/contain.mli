(** Static analysis on formulas and schemas: containment, equivalence
    and disjointness, all reduced to satisfiability (the paper's
    motivation for studying the Satisfiability problem in §4.2/§5.2 —
    "understanding basic tasks such as satisfiability are the first
    steps" toward schema learning and management).

    All reductions are the classical ones:
    - ϕ ⊑ ψ   iff   ϕ ∧ ¬ψ unsatisfiable,
    - ϕ ≡ ψ   iff   ϕ ⊑ ψ and ψ ⊑ ϕ,
    - ϕ ⊥ ψ   iff   ϕ ∧ ψ unsatisfiable,

    and inherit the decision procedure's three-valued outcome: a [No]
    answer carries a counterexample document. *)

type verdict =
  | Yes
  | No of Jsont.Value.t  (** a counterexample document *)
  | Inconclusive of string  (** search budget exhausted *)

val contained :
  ?max_rounds:int -> ?candidates_per_round:int -> Jsl.t -> Jsl.t -> verdict
(** [contained ϕ ψ]: is every document satisfying ϕ also satisfying ψ?
    [No w] gives a document with [w ⊨ ϕ] and [w ⊭ ψ]. *)

val equivalent :
  ?max_rounds:int -> ?candidates_per_round:int -> Jsl.t -> Jsl.t -> verdict
(** [No w] is a document on which the two formulas disagree. *)

val disjoint :
  ?max_rounds:int -> ?candidates_per_round:int -> Jsl.t -> Jsl.t -> verdict
(** [No w] satisfies both. *)

val contained_jnl :
  ?max_rounds:int -> ?candidates_per_round:int -> Jnl.form -> Jnl.form
  -> (verdict, string) result
(** Through the Theorem 2 translation; [Error] outside the decidable
    fragment. *)

val schema_compatible :
  ?max_rounds:int -> ?candidates_per_round:int -> old_:Jsl.t -> new_:Jsl.t
  -> unit -> verdict
(** Schema-evolution safety: are all documents valid under [old_] still
    valid under [new_]?  Alias of [contained old_ new_] with
    migration-flavoured naming; [No w] is a breaking-change witness. *)
