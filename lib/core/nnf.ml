let rec jsl (f : Jsl.t) : Jsl.t =
  match f with
  | Jsl.True | Jsl.Test _ | Jsl.Var _ -> f
  | Jsl.And (a, b) -> Jsl.And (jsl a, jsl b)
  | Jsl.Or (a, b) -> Jsl.Or (jsl a, jsl b)
  | Jsl.Dia_keys (e, g) -> Jsl.Dia_keys (e, jsl g)
  | Jsl.Box_keys (e, g) -> Jsl.Box_keys (e, jsl g)
  | Jsl.Dia_range (i, j, g) -> Jsl.Dia_range (i, j, jsl g)
  | Jsl.Box_range (i, j, g) -> Jsl.Box_range (i, j, jsl g)
  | Jsl.Not g -> neg g

and neg (f : Jsl.t) : Jsl.t =
  match f with
  | Jsl.True | Jsl.Test _ | Jsl.Var _ -> Jsl.Not f
  | Jsl.Not g -> jsl g
  | Jsl.And (a, b) -> Jsl.Or (neg a, neg b)
  | Jsl.Or (a, b) -> Jsl.And (neg a, neg b)
  | Jsl.Dia_keys (e, g) -> Jsl.Box_keys (e, neg g)
  | Jsl.Box_keys (e, g) -> Jsl.Dia_keys (e, neg g)
  | Jsl.Dia_range (i, j, g) -> Jsl.Box_range (i, j, neg g)
  | Jsl.Box_range (i, j, g) -> Jsl.Dia_range (i, j, neg g)

let rec is_nnf (f : Jsl.t) =
  match f with
  | Jsl.True | Jsl.Test _ | Jsl.Var _ -> true
  | Jsl.Not (Jsl.True | Jsl.Test _ | Jsl.Var _) -> true
  | Jsl.Not _ -> false
  | Jsl.And (a, b) | Jsl.Or (a, b) -> is_nnf a && is_nnf b
  | Jsl.Dia_keys (_, g) | Jsl.Box_keys (_, g) | Jsl.Dia_range (_, _, g)
  | Jsl.Box_range (_, _, g) ->
    is_nnf g
