let certify check outcome =
  match outcome with
  | Jautomaton.Sat v ->
    if check v then outcome
    else
      Jautomaton.Unknown
        "internal error: witness failed re-validation (please report)"
  | Jautomaton.Unsat | Jautomaton.Unknown _ -> outcome

let satisfiable ?max_rounds ?candidates_per_round ?max_width ?budget f =
  let aut = Jautomaton.of_jsl f in
  Obs.Metrics.span "phase.sat" (fun () ->
      Jautomaton.find_model ?max_rounds ?candidates_per_round ?max_width
        ?budget aut)
  |> certify (fun v -> Jsl.validates v f)

let satisfiable_rec ?max_rounds ?candidates_per_round ?max_width ?budget r =
  let aut = Jautomaton.of_jsl_rec r in
  Obs.Metrics.span "phase.sat" (fun () ->
      Jautomaton.find_model ?max_rounds ?candidates_per_round ?max_width
        ?budget aut)
  |> certify (fun v -> Jsl_rec.validates v r)

let models ?(limit = 5) ?max_rounds ?candidates_per_round ?budget f =
  let rec go acc current k =
    if k = 0 then List.rev acc
    else
      match satisfiable ?max_rounds ?candidates_per_round ?budget current with
      | Jautomaton.Sat w ->
        go (w :: acc)
          (Jsl.And (current, Jsl.Not (Jsl.Test (Jsl.Eq_doc w))))
          (k - 1)
      | Jautomaton.Unsat | Jautomaton.Unknown _ -> List.rev acc
  in
  go [] f limit
