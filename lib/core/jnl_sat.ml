let satisfiable ?max_rounds ?candidates_per_round ?max_width ?budget f =
  match Obs.Metrics.span "phase.translate" (fun () -> Translate.jnl_to_jsl f)
  with
  | Error _ as e -> e
  | Ok jsl ->
    let outcome =
      Jsl_sat.satisfiable ?max_rounds ?candidates_per_round ?max_width ?budget
        jsl
    in
    Ok
      (match outcome with
      | Jautomaton.Sat v ->
        if Jnl_eval.satisfies v f then outcome
        else
          Jautomaton.Unknown
            "internal error: witness failed JNL re-validation (please report)"
      | Jautomaton.Unsat | Jautomaton.Unknown _ -> outcome)

let satisfiable_exn ?max_rounds ?candidates_per_round ?max_width ?budget f =
  match satisfiable ?max_rounds ?candidates_per_round ?max_width ?budget f with
  | Ok o -> o
  | Error m -> invalid_arg ("Jnl_sat.satisfiable_exn: " ^ m)
