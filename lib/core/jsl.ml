module Tree = Jsont.Tree

type node_test =
  | Is_obj
  | Is_arr
  | Is_str
  | Is_int
  | Unique
  | Pattern of Rexp.Syntax.t
  | Min of int
  | Max of int
  | Mult_of of int
  | Min_ch of int
  | Max_ch of int
  | Eq_doc of Jsont.Value.t

type t =
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Test of node_test
  | Dia_keys of Rexp.Syntax.t * t
  | Dia_range of int * int option * t
  | Box_keys of Rexp.Syntax.t * t
  | Box_range of int * int option * t
  | Var of string

let ff = Not True

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc f -> And (acc, f)) f fs

let disj = function
  | [] -> ff
  | f :: fs -> List.fold_left (fun acc f -> Or (acc, f)) f fs

let dia_key w f = Dia_keys (Rexp.Syntax.literal w, f)
let box_key w f = Box_keys (Rexp.Syntax.literal w, f)
let dia_idx i f = Dia_range (i, Some i, f)
let box_idx i f = Box_range (i, Some i, f)

let test_size = function
  | Is_obj | Is_arr | Is_str | Is_int | Unique | Min _ | Max _ | Mult_of _
  | Min_ch _ | Max_ch _ ->
    1
  | Pattern e -> Rexp.Syntax.size e
  | Eq_doc v -> Jsont.Value.size v

let rec size = function
  | True | Var _ -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Test nt -> 1 + test_size nt
  | Dia_keys (e, f) | Box_keys (e, f) -> 1 + Rexp.Syntax.size e + size f
  | Dia_range (_, _, f) | Box_range (_, _, f) -> 1 + size f

let equal (a : t) (b : t) = Stdlib.compare a b = 0

let rec uses_unique = function
  | True | Var _ -> false
  | Test Unique -> true
  | Test _ -> false
  | Not f | Dia_keys (_, f) | Box_keys (_, f) | Dia_range (_, _, f)
  | Box_range (_, _, f) ->
    uses_unique f
  | And (a, b) | Or (a, b) -> uses_unique a || uses_unique b

(* A modality is deterministic when its key expression is a single word
   or its range a single index. *)
let is_word e =
  let rec go = function
    | Rexp.Syntax.Epsilon -> true
    | Rexp.Syntax.Chars cs -> Rexp.Charset.cardinal cs = 1
    | Rexp.Syntax.Cat (a, b) -> go a && go b
    | Rexp.Syntax.Empty | Rexp.Syntax.Alt _ | Rexp.Syntax.Star _ -> false
  in
  go e

let rec is_deterministic = function
  | True | Test _ | Var _ -> true
  | Not f -> is_deterministic f
  | And (a, b) | Or (a, b) -> is_deterministic a && is_deterministic b
  | Dia_keys (e, f) | Box_keys (e, f) -> is_word e && is_deterministic f
  | Dia_range (i, Some j, f) | Box_range (i, Some j, f) ->
    i = j && is_deterministic f
  | Dia_range (_, None, f) | Box_range (_, None, f) ->
    ignore f;
    false

let free_vars f =
  let rec go acc = function
    | True | Test _ -> acc
    | Var v -> if List.mem v acc then acc else v :: acc
    | Not f | Dia_keys (_, f) | Box_keys (_, f) | Dia_range (_, _, f)
    | Box_range (_, _, f) ->
      go acc f
    | And (a, b) | Or (a, b) -> go (go acc a) b
  in
  List.rev (go [] f)

let rec modal_depth = function
  | True | Test _ | Var _ -> 0
  | Not f -> modal_depth f
  | And (a, b) | Or (a, b) -> max (modal_depth a) (modal_depth b)
  | Dia_keys (_, f) | Box_keys (_, f) | Dia_range (_, _, f)
  | Box_range (_, _, f) ->
    1 + modal_depth f

(* ---- pretty printing --------------------------------------------------- *)

let pp_test fmt = function
  | Is_obj -> Format.pp_print_string fmt "Obj"
  | Is_arr -> Format.pp_print_string fmt "Arr"
  | Is_str -> Format.pp_print_string fmt "Str"
  | Is_int -> Format.pp_print_string fmt "Int"
  | Unique -> Format.pp_print_string fmt "Unique"
  | Pattern e -> Format.fprintf fmt "Pattern(/%s/)" (Rexp.Syntax.to_string e)
  | Min i -> Format.fprintf fmt "Min(%d)" i
  | Max i -> Format.fprintf fmt "Max(%d)" i
  | Mult_of i -> Format.fprintf fmt "MultOf(%d)" i
  | Min_ch i -> Format.fprintf fmt "MinCh(%d)" i
  | Max_ch i -> Format.fprintf fmt "MaxCh(%d)" i
  | Eq_doc v -> Format.fprintf fmt "~(%s)" (Jsont.Value.to_string v)

let pp_range fmt (i, j) =
  match j with
  | None -> Format.fprintf fmt "%d:*" i
  | Some j when i = j -> Format.fprintf fmt "%d" i
  | Some j -> Format.fprintf fmt "%d:%d" i j

let rec pp fmt = function
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_and a pp b
  | f -> pp_and fmt f

and pp_and fmt = function
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_and b
  | f -> pp_atom fmt f

and pp_atom fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Not True -> Format.pp_print_string fmt "false"
  | Not f -> Format.fprintf fmt "!%a" pp_atom f
  | Test nt -> pp_test fmt nt
  | Var v -> Format.fprintf fmt "$%s" v
  | Dia_keys (e, f) -> Format.fprintf fmt "dia(/%s/)%a" (Rexp.Syntax.to_string e) pp_atom f
  | Box_keys (e, f) -> Format.fprintf fmt "box(/%s/)%a" (Rexp.Syntax.to_string e) pp_atom f
  | Dia_range (i, j, f) -> Format.fprintf fmt "dia[%a]%a" pp_range (i, j) pp_atom f
  | Box_range (i, j, f) -> Format.fprintf fmt "box[%a]%a" pp_range (i, j) pp_atom f
  | (And _ | Or _) as f -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f

(* ---- evaluation --------------------------------------------------------- *)

type ctx = {
  t : Tree.t;
  budget : Obs.Budget.t;
  memo : (t, Bitset.t) Hashtbl.t;
  langs : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t;
  unique_memo : (Tree.node, bool) Hashtbl.t;
}

let context ?(budget = Obs.Budget.unlimited) t =
  { t;
    budget;
    memo = Hashtbl.create 16;
    langs = Hashtbl.create 8;
    unique_memo = Hashtbl.create 16 }

let lang ctx e =
  match Hashtbl.find_opt ctx.langs e with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Hashtbl.add ctx.langs e l;
    l

(* Unique: group array children by subtree hash; only hash-equal pairs
   are compared structurally. *)
let check_unique t n =
  match Tree.kind t n with
  | Tree.Karr ->
    let kids = Tree.arr_children t n in
    let buckets = Hashtbl.create (Array.length kids) in
    (try
       Array.iter
         (fun c ->
           let h = Tree.subtree_hash t c in
           List.iter
             (fun c' ->
               if Tree.equal_subtrees t c c' then raise Exit)
             (Hashtbl.find_all buckets h);
           Hashtbl.add buckets h c)
         kids;
       true
     with Exit -> false)
  | Tree.Kobj | Tree.Kstr _ | Tree.Kint _ -> false

let holds_test ctx n = function
  | Is_obj -> Tree.is_obj ctx.t n
  | Is_arr -> Tree.is_arr ctx.t n
  | Is_str -> Tree.is_str ctx.t n
  | Is_int -> Tree.is_int ctx.t n
  | Unique -> (
    Obs.Metrics.incr "jsl.test.unique";
    match Hashtbl.find_opt ctx.unique_memo n with
    | Some b -> b
    | None ->
      let b = check_unique ctx.t n in
      Hashtbl.add ctx.unique_memo n b;
      b)
  | Pattern e -> (
    match Tree.str_value ctx.t n with
    | Some s -> Rexp.Lang.matches (lang ctx e) s
    | None -> false)
  | Min i -> ( match Tree.int_value ctx.t n with Some v -> v >= i | None -> false)
  | Max i -> ( match Tree.int_value ctx.t n with Some v -> v <= i | None -> false)
  | Mult_of i -> (
    match Tree.int_value ctx.t n with
    | Some v -> i <> 0 && v mod i = 0
    | None -> false)
  | Min_ch i -> Tree.arity ctx.t n >= i
  | Max_ch i -> Tree.arity ctx.t n <= i
  | Eq_doc v ->
    Obs.Metrics.incr "jsl.test.eq_doc";
    Tree.equal_to_value ctx.t n v

let n_nodes ctx = Tree.node_count ctx.t

(* Children of [n] selected by a key expression / range — range
   semantics shared with the JNL engines through {!Jnl_step}. *)
let selected_by_keys ctx l n =
  List.filter_map
    (fun (k, c) -> if Rexp.Lang.matches l k then Some c else None)
    (Tree.obj_children ctx.t n)

let selected_by_range ctx i j n = Jnl_step.range_succs ctx.t n i j

(* Set-at-a-time evaluation: one fuel burn of [n_nodes] per formula
   node (each sweeps the whole node set), depth checked against the
   budget so adversarially deep formulas cannot overflow the stack. *)
let rec eval_at ctx depth (f : t) =
  match Hashtbl.find_opt ctx.memo f with
  | Some s -> s
  | None ->
    Obs.Budget.check_depth ctx.budget depth;
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    let eval ctx g = eval_at ctx (depth + 1) g in
    let result =
      match f with
      | True -> Bitset.full (n_nodes ctx)
      | Not g -> Bitset.complement (eval ctx g)
      | And (a, b) -> Bitset.inter (eval ctx a) (eval ctx b)
      | Or (a, b) -> Bitset.union (eval ctx a) (eval ctx b)
      | Test nt ->
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n -> if holds_test ctx n nt then Bitset.add out n)
          (Tree.nodes ctx.t);
        out
      | Dia_keys (e, g) ->
        let l = lang ctx e in
        let sat = eval ctx g in
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n ->
            if List.exists (Bitset.mem sat) (selected_by_keys ctx l n) then
              Bitset.add out n)
          (Tree.nodes ctx.t);
        out
      | Box_keys (e, g) ->
        let l = lang ctx e in
        let sat = eval ctx g in
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n ->
            if List.for_all (Bitset.mem sat) (selected_by_keys ctx l n) then
              Bitset.add out n)
          (Tree.nodes ctx.t);
        out
      | Dia_range (i, j, g) ->
        let sat = eval ctx g in
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n ->
            if List.exists (Bitset.mem sat) (selected_by_range ctx i j n) then
              Bitset.add out n)
          (Tree.nodes ctx.t);
        out
      | Box_range (i, j, g) ->
        let sat = eval ctx g in
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n ->
            if List.for_all (Bitset.mem sat) (selected_by_range ctx i j n) then
              Bitset.add out n)
          (Tree.nodes ctx.t);
        out
      | Var v ->
        invalid_arg
          (Printf.sprintf
             "Jsl.eval: free recursion symbol $%s (use Jsl_rec.validates)" v)
    in
    Hashtbl.replace ctx.memo f result;
    result

let eval ctx f = eval_at ctx 0 f
let holds ctx n f = Bitset.mem (eval ctx f) n

(* Per-node evaluation: one fuel unit per (node, formula-node) visit,
   depth follows the simultaneous descent into formula and tree. *)
let rec node_eval_at ctx ~env depth n (f : t) =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  let node_eval c g = node_eval_at ctx ~env (depth + 1) c g in
  match f with
  | True -> true
  | Not g -> not (node_eval n g)
  | And (a, b) -> node_eval n a && node_eval n b
  | Or (a, b) -> node_eval n a || node_eval n b
  | Test nt -> holds_test ctx n nt
  | Var v -> env v n
  | Dia_keys (e, g) ->
    List.exists (fun c -> node_eval c g)
      (selected_by_keys ctx (lang ctx e) n)
  | Box_keys (e, g) ->
    List.for_all (fun c -> node_eval c g)
      (selected_by_keys ctx (lang ctx e) n)
  | Dia_range (i, j, g) ->
    List.exists (fun c -> node_eval c g) (selected_by_range ctx i j n)
  | Box_range (i, j, g) ->
    List.for_all (fun c -> node_eval c g) (selected_by_range ctx i j n)

let node_eval ctx ~env n f = node_eval_at ctx ~env 0 n f

let validates ?budget v f =
  let ctx = context ?budget (Tree.of_value ?budget v) in
  holds ctx Tree.root f

let validates_bounded ?budget v f =
  match validates ?budget v f with
  | b -> Ok b
  | exception Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)

(* ---- compiled plans ------------------------------------------------------ *)

(* The compiled form of a formula: subformulas interned (hash-consed
   structurally, exactly the deduplication the evaluator's memo table
   performs on the fly) into a topologically ordered instruction
   array — children always precede parents — with key regexes lowered
   to DFAs at compile time.  Fuel draw matches [eval] by construction:
   one burn of [node_count] per distinct subformula. *)
type pinstr =
  | P_true
  | P_not of int
  | P_and of int * int
  | P_or of int * int
  | P_test of node_test
  | P_pattern of Rexp.Dfa.t
  | P_dia_keys of Rexp.Dfa.t * int
  | P_box_keys of Rexp.Dfa.t * int
  | P_dia_range of int * int option * int
  | P_box_range of int * int option * int
  | P_var of string

type plan = { instrs : pinstr array; proot : int }

let plan_size p = Array.length p.instrs

let compile ?(budget = Obs.Budget.unlimited) f =
  let ids : (t, int) Hashtbl.t = Hashtbl.create 32 in
  let dfas : (Rexp.Syntax.t, Rexp.Dfa.t) Hashtbl.t = Hashtbl.create 8 in
  let dfa e =
    match Hashtbl.find_opt dfas e with
    | Some d -> d
    | None ->
      let d = Rexp.Dfa.of_syntax e in
      Hashtbl.add dfas e d;
      d
  in
  let acc = ref [] and count = ref 0 in
  let emit instr =
    acc := instr :: !acc;
    let id = !count in
    incr count;
    id
  in
  let rec go depth f =
    match Hashtbl.find_opt ids f with
    | Some id -> id
    | None ->
      Obs.Budget.check_depth budget depth;
      let instr =
        match f with
        | True -> P_true
        | Not g -> P_not (go (depth + 1) g)
        | And (a, b) ->
          let ia = go (depth + 1) a in
          P_and (ia, go (depth + 1) b)
        | Or (a, b) ->
          let ia = go (depth + 1) a in
          P_or (ia, go (depth + 1) b)
        | Test (Pattern e) -> P_pattern (dfa e)
        | Test nt -> P_test nt
        | Dia_keys (e, g) ->
          let ig = go (depth + 1) g in
          P_dia_keys (dfa e, ig)
        | Box_keys (e, g) ->
          let ig = go (depth + 1) g in
          P_box_keys (dfa e, ig)
        | Dia_range (i, j, g) -> P_dia_range (i, j, go (depth + 1) g)
        | Box_range (i, j, g) -> P_box_range (i, j, go (depth + 1) g)
        | Var v -> P_var v
      in
      let id = emit instr in
      Hashtbl.add ids f id;
      id
  in
  let proot = go 0 f in
  Obs.Metrics.add "jsl.plan.nodes" !count;
  { instrs = Array.of_list (List.rev !acc); proot }

let eval_plan ctx plan =
  Obs.Metrics.incr "jsl.plan.runs";
  let n = n_nodes ctx in
  let t = ctx.t in
  let len = Array.length plan.instrs in
  let results = Array.make len (Bitset.create 0) in
  let sweep pred =
    let out = Bitset.create n in
    for node = 0 to n - 1 do
      if pred node then Bitset.add out node
    done;
    out
  in
  let keys_sweep dfa sat exists =
    sweep (fun node ->
        let keys = Tree.obj_keys t node and kids = Tree.child_ids t node in
        let arity = Array.length keys in
        let rec go i found =
          if i >= arity then if exists then found else true
          else if not (Rexp.Dfa.accepts dfa keys.(i)) then go (i + 1) found
          else if Bitset.mem sat kids.(i) then
            if exists then true else go (i + 1) true
          else if exists then go (i + 1) found
          else false
        in
        go 0 false)
  in
  let range_sweep i j sat exists =
    sweep (fun node ->
        let sel = selected_by_range ctx i j node in
        if exists then List.exists (Bitset.mem sat) sel
        else List.for_all (Bitset.mem sat) sel)
  in
  for id = 0 to len - 1 do
    Obs.Budget.burn ctx.budget n;
    let r =
      match plan.instrs.(id) with
      | P_true -> Bitset.full n
      | P_not i -> Bitset.complement results.(i)
      | P_and (i, j) -> Bitset.inter results.(i) results.(j)
      | P_or (i, j) -> Bitset.union results.(i) results.(j)
      | P_test nt -> sweep (fun node -> holds_test ctx node nt)
      | P_pattern dfa ->
        sweep (fun node ->
            match Tree.str_value t node with
            | Some s -> Rexp.Dfa.accepts dfa s
            | None -> false)
      | P_dia_keys (dfa, i) -> keys_sweep dfa results.(i) true
      | P_box_keys (dfa, i) -> keys_sweep dfa results.(i) false
      | P_dia_range (i, j, g) -> range_sweep i j results.(g) true
      | P_box_range (i, j, g) -> range_sweep i j results.(g) false
      | P_var v ->
        invalid_arg
          (Printf.sprintf
             "Jsl.eval: free recursion symbol $%s (use Jsl_rec.validates)" v)
    in
    results.(id) <- r
  done;
  results.(plan.proot)

let holds_plan ctx node plan = Bitset.mem (eval_plan ctx plan) node

let validates_plan ?budget v plan =
  let ctx = context ?budget (Tree.of_value ?budget v) in
  holds_plan ctx Tree.root plan

(* ---- parser (inverse of pp) ---------------------------------------------- *)

exception Bad of string

type pstate = { input : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf
    (fun s -> raise (Bad (Printf.sprintf "at offset %d: %s" st.pos s)))
    fmt

let peek_char st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let eat st ch =
  skip_ws st;
  match peek_char st with
  | Some c when c = ch -> st.pos <- st.pos + 1
  | Some c -> fail st "expected %C, found %C" ch c
  | None -> fail st "expected %C, found end of input" ch

let looking_at st s =
  skip_ws st;
  st.pos + String.length s <= String.length st.input
  && String.sub st.input st.pos (String.length s) = s

let parse_nat st =
  skip_ws st;
  let start = st.pos in
  while match peek_char st with Some ('0' .. '9') -> true | _ -> false do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a number";
  let text = String.sub st.input start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> i
  | None -> fail st "number %s out of range" text

let parse_ident st =
  skip_ws st;
  let start = st.pos in
  while
    match peek_char st with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_') -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.input start (st.pos - start)

let parse_regex_literal st =
  eat st '/';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> fail st "unterminated /regex/"
    | Some '/' -> st.pos <- st.pos + 1
    | Some '\\'
      when st.pos + 1 < String.length st.input && st.input.[st.pos + 1] = '/' ->
      Buffer.add_char buf '/';
      st.pos <- st.pos + 2;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  match Rexp.Parse.parse (Buffer.contents buf) with
  | Ok e -> e
  | Error m -> fail st "bad regex: %s" m

let int_arg st =
  eat st '(';
  let i = parse_nat st in
  eat st ')';
  i

let rec parse_form st =
  let left = parse_and_level st in
  skip_ws st;
  match peek_char st with
  | Some '|' ->
    st.pos <- st.pos + 1;
    Or (left, parse_form st)
  | _ -> left

and parse_and_level st =
  let left = parse_atom_level st in
  skip_ws st;
  match peek_char st with
  | Some '&' ->
    st.pos <- st.pos + 1;
    And (left, parse_and_level st)
  | _ -> left

and parse_atom_level st =
  skip_ws st;
  match peek_char st with
  | Some '!' ->
    st.pos <- st.pos + 1;
    Not (parse_atom_level st)
  | Some '(' ->
    st.pos <- st.pos + 1;
    let f = parse_form st in
    eat st ')';
    f
  | Some '$' ->
    st.pos <- st.pos + 1;
    Var (parse_ident st)
  | Some '~' ->
    st.pos <- st.pos + 1;
    eat st '(';
    skip_ws st;
    (match Jsont.Parser.parse_prefix st.input st.pos with
    | Ok (v, next) ->
      st.pos <- next;
      eat st ')';
      Test (Eq_doc v)
    | Error e -> fail st "bad document: %s" e.Jsont.Parser.message)
  | Some ('d' | 'b') when looking_at st "dia" || looking_at st "box" ->
    let dia = looking_at st "dia" in
    st.pos <- st.pos + 3;
    skip_ws st;
    (match peek_char st with
    | Some '(' ->
      st.pos <- st.pos + 1;
      let e = parse_regex_literal st in
      eat st ')';
      let inner = parse_atom_level st in
      if dia then Dia_keys (e, inner) else Box_keys (e, inner)
    | Some '[' ->
      st.pos <- st.pos + 1;
      let i = parse_nat st in
      skip_ws st;
      let j =
        match peek_char st with
        | Some ':' ->
          st.pos <- st.pos + 1;
          skip_ws st;
          (match peek_char st with
          | Some '*' ->
            st.pos <- st.pos + 1;
            None
          | _ -> Some (parse_nat st))
        | _ -> Some i
      in
      eat st ']';
      let inner = parse_atom_level st in
      if dia then Dia_range (i, j, inner) else Box_range (i, j, inner)
    | _ -> fail st "expected '(' or '[' after %s" (if dia then "dia" else "box"))
  | Some _ -> (
    let ident = parse_ident st in
    match ident with
    | "true" -> True
    | "false" -> ff
    | "Obj" -> Test Is_obj
    | "Arr" -> Test Is_arr
    | "Str" -> Test Is_str
    | "Int" -> Test Is_int
    | "Unique" -> Test Unique
    | "Min" -> Test (Min (int_arg st))
    | "Max" -> Test (Max (int_arg st))
    | "MultOf" -> Test (Mult_of (int_arg st))
    | "MinCh" -> Test (Min_ch (int_arg st))
    | "MaxCh" -> Test (Max_ch (int_arg st))
    | "Pattern" ->
      eat st '(';
      let e = parse_regex_literal st in
      eat st ')';
      Test (Pattern e)
    | other -> fail st "unknown form %S" other)
  | None -> fail st "unexpected end of formula"

let parse input =
  let st = { input; pos = 0 } in
  match
    let f = parse_form st in
    skip_ws st;
    (match peek_char st with
    | None -> ()
    | Some ch -> fail st "trailing %C" ch);
    f
  with
  | f -> Ok f
  | exception Bad m -> Error m

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error m -> invalid_arg ("Jsl.parse_exn: " ^ m)
