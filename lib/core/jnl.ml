type path =
  | Self
  | Key of string
  | Idx of int
  | Keys of Rexp.Syntax.t
  | Range of int * int option
  | Seq of path * path
  | Test of form
  | Star of path
  | Alt of path * path

and form =
  | True
  | Not of form
  | And of form * form
  | Or of form * form
  | Exists of path
  | Eq_doc of path * Jsont.Value.t
  | Eq_paths of path * path

let ff = Not True

let conj = function
  | [] -> True
  | f :: fs -> List.fold_left (fun acc f -> And (acc, f)) f fs

let disj = function
  | [] -> ff
  | f :: fs -> List.fold_left (fun acc f -> Or (acc, f)) f fs

let seq = function
  | [] -> Self
  | p :: ps -> List.fold_left (fun acc p -> Seq (acc, p)) p ps

type fragment = {
  deterministic : bool;
  recursive : bool;
  uses_eq_paths : bool;
  uses_negation : bool;
}

let top_fragment =
  { deterministic = true;
    recursive = false;
    uses_eq_paths = false;
    uses_negation = false }

let merge a b =
  { deterministic = a.deterministic && b.deterministic;
    recursive = a.recursive || b.recursive;
    uses_eq_paths = a.uses_eq_paths || b.uses_eq_paths;
    uses_negation = a.uses_negation || b.uses_negation }

let rec classify_path = function
  | Self | Key _ | Idx _ -> top_fragment
  | Keys _ | Range _ -> { top_fragment with deterministic = false }
  | Seq (a, b) -> merge (classify_path a) (classify_path b)
  | Alt (a, b) ->
    { (merge (classify_path a) (classify_path b)) with deterministic = false }
  | Test f -> classify f
  | Star a ->
    let f = classify_path a in
    { f with deterministic = false; recursive = true }

and classify = function
  | True -> top_fragment
  | Not f -> { (classify f) with uses_negation = true }
  | And (a, b) | Or (a, b) -> merge (classify a) (classify b)
  | Exists p -> classify_path p
  | Eq_doc (p, _) -> classify_path p
  | Eq_paths (a, b) ->
    { (merge (classify_path a) (classify_path b)) with uses_eq_paths = true }

let rec path_size = function
  | Self | Key _ | Idx _ | Range _ -> 1
  | Keys e -> Rexp.Syntax.size e
  | Seq (a, b) | Alt (a, b) -> 1 + path_size a + path_size b
  | Test f -> 1 + size f
  | Star a -> 1 + path_size a

and size = function
  | True -> 1
  | Not f -> 1 + size f
  | And (a, b) | Or (a, b) -> 1 + size a + size b
  | Exists p -> 1 + path_size p
  | Eq_doc (p, v) -> 1 + path_size p + Jsont.Value.size v
  | Eq_paths (a, b) -> 1 + path_size a + path_size b

let compare : form -> form -> int = Stdlib.compare
let equal a b = compare a b = 0

(* ---- pretty printing --------------------------------------------------- *)

let is_bare_key k =
  k <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       k

let rec pp_path fmt = function
  | Alt (a, b) -> Format.fprintf fmt "%a|%a" pp_path_seq a pp_path b
  | p -> pp_path_seq fmt p

and pp_path_seq fmt = function
  | Seq (a, b) ->
    pp_path_seq fmt a;
    pp_step fmt b
  | p -> pp_step fmt p

and pp_step fmt = function
  | Self -> Format.pp_print_string fmt "eps"
  | Key k when is_bare_key k -> Format.fprintf fmt ".%s" k
  | Key k -> Format.fprintf fmt ".%s" (Jsont.Value.to_string (Jsont.Value.Str k))
  | Idx i -> Format.fprintf fmt "[%d]" i
  | Keys e -> Format.fprintf fmt ".~/%s/" (Rexp.Syntax.to_string e)
  | Range (i, None) -> Format.fprintf fmt "[%d:*]" i
  | Range (i, Some j) -> Format.fprintf fmt "[%d:%d]" i j
  | Test f -> Format.fprintf fmt "?(%a)" pp f
  | Star p -> Format.fprintf fmt "(%a)*" pp_path p
  | (Seq _ | Alt _) as p -> Format.fprintf fmt "(%a)" pp_path p

and pp fmt = function
  | Or (a, b) -> Format.fprintf fmt "%a | %a" pp_and a pp b
  | f -> pp_and fmt f

and pp_and fmt = function
  | And (a, b) -> Format.fprintf fmt "%a & %a" pp_atom a pp_and b
  | f -> pp_atom fmt f

and pp_atom fmt = function
  | True -> Format.pp_print_string fmt "true"
  | Not True -> Format.pp_print_string fmt "false"
  | Not f -> Format.fprintf fmt "!%a" pp_atom f
  | Exists p -> Format.fprintf fmt "<%a>" pp_path p
  | Eq_doc (p, v) ->
    Format.fprintf fmt "eq(%a, %s)" pp_path p (Jsont.Value.to_string v)
  | Eq_paths (a, b) -> Format.fprintf fmt "eq(%a, %a)" pp_path a pp_path b
  | (And _ | Or _) as f -> Format.fprintf fmt "(%a)" pp f

let to_string f = Format.asprintf "%a" pp f
let path_to_string p = Format.asprintf "%a" pp_path p

(* ---- parser ------------------------------------------------------------ *)

exception Bad of string

type parse_state = { input : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf
    (fun s -> raise (Bad (Printf.sprintf "at offset %d: %s" st.pos s)))
    fmt

let peek_char st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let rec skip_ws st =
  match peek_char st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    st.pos <- st.pos + 1;
    skip_ws st
  | _ -> ()

let eat st c =
  skip_ws st;
  match peek_char st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> fail st "expected %C, found %C" c c'
  | None -> fail st "expected %C, found end of input" c

let looking_at st s =
  st.pos + String.length s <= String.length st.input
  && String.sub st.input st.pos (String.length s) = s

let parse_int st =
  skip_ws st;
  let start = st.pos in
  if peek_char st = Some '-' then st.pos <- st.pos + 1;
  while
    match peek_char st with Some ('0' .. '9') -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start || (st.pos = start + 1 && st.input.[start] = '-') then
    fail st "expected an integer";
  let text = String.sub st.input start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> i
  | None -> fail st "integer %s out of range" text

let parse_bare_key st =
  let start = st.pos in
  while
    match peek_char st with
    | Some ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-') -> true
    | _ -> false
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected a key";
  String.sub st.input start (st.pos - start)

let parse_json st =
  skip_ws st;
  match Jsont.Parser.parse_prefix st.input st.pos with
  | Ok (v, next) ->
    st.pos <- next;
    v
  | Error e -> fail st "bad JSON document: %s" e.Jsont.Parser.message

let parse_regex_literal st =
  eat st '/';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char st with
    | None -> fail st "unterminated /regex/ literal"
    | Some '/' -> st.pos <- st.pos + 1
    | Some '\\' when st.pos + 1 < String.length st.input
                     && st.input.[st.pos + 1] = '/' ->
      Buffer.add_char buf '/';
      st.pos <- st.pos + 2;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  match Rexp.Parse.parse (Buffer.contents buf) with
  | Ok e -> e
  | Error m -> fail st "bad regex: %s" m

(* Does a JSON document (rather than a path) start here?  Paths start
   with '.', '[', '?', '(', 'eps'; JSON with '{', '"', a digit, '['...
   '[' is ambiguous: as a path step it is [int] or [int:...], as JSON it
   is an array.  We disambiguate '[' by what follows the integer. *)
let rec starts_json st =
  skip_ws st;
  match peek_char st with
  | Some ('{' | '"') -> true
  | Some ('0' .. '9') -> true
  | Some '[' -> (
    (* lookahead: [int] or [int:...] is a path step; anything else is JSON *)
    let saved = st.pos in
    st.pos <- st.pos + 1;
    skip_ws st;
    let is_path =
      match peek_char st with
      | Some ('0' .. '9' | '-') -> (
        match parse_int st with
        | _ ->
          skip_ws st;
          (match peek_char st with Some (']' | ':') -> true | _ -> false)
        | exception Bad _ -> false)
      | _ -> false
    in
    st.pos <- saved;
    not is_path)
  | _ -> false

and parse_form st =
  let left = parse_and st in
  skip_ws st;
  match peek_char st with
  | Some '|' ->
    st.pos <- st.pos + 1;
    Or (left, parse_form st)
  | _ -> left

and parse_and st =
  let left = parse_form_atom st in
  skip_ws st;
  match peek_char st with
  | Some '&' ->
    st.pos <- st.pos + 1;
    And (left, parse_and st)
  | _ -> left

and parse_form_atom st =
  skip_ws st;
  match peek_char st with
  | Some '!' ->
    st.pos <- st.pos + 1;
    Not (parse_form_atom st)
  | Some '<' ->
    st.pos <- st.pos + 1;
    let p = parse_path_expr st in
    eat st '>';
    Exists p
  | Some '(' ->
    st.pos <- st.pos + 1;
    let f = parse_form st in
    eat st ')';
    f
  | Some 't' when looking_at st "true" ->
    st.pos <- st.pos + 4;
    True
  | Some 'f' when looking_at st "false" ->
    st.pos <- st.pos + 5;
    ff
  | Some 'e' when looking_at st "eq(" ->
    st.pos <- st.pos + 3;
    let a = parse_path_expr st in
    eat st ',';
    if starts_json st then begin
      let v = parse_json st in
      eat st ')';
      Eq_doc (a, v)
    end
    else begin
      let b = parse_path_expr st in
      eat st ')';
      Eq_paths (a, b)
    end
  | Some c -> fail st "unexpected %C in formula" c
  | None -> fail st "unexpected end of formula"

and parse_path_expr st =
  let left = parse_path_seq st in
  skip_ws st;
  match peek_char st with
  | Some '|' ->
    st.pos <- st.pos + 1;
    Alt (left, parse_path_expr st)
  | _ -> left

and parse_path_seq st =
  let first = parse_path_step st in
  let rec go acc =
    skip_ws st;
    match peek_char st with
    | Some ('.' | '[' | '?') -> go (Seq (acc, parse_path_step st))
    | Some '(' -> go (Seq (acc, parse_path_step st))
    | Some '/' ->
      st.pos <- st.pos + 1;
      go (Seq (acc, parse_path_step st))
    | Some 'e' when looking_at st "eps" -> go (Seq (acc, parse_path_step st))
    | _ -> acc
  in
  go first

and parse_path_step st =
  skip_ws st;
  let atom =
    match peek_char st with
    | Some '.' ->
      st.pos <- st.pos + 1;
      (match peek_char st with
      | Some '~' ->
        st.pos <- st.pos + 1;
        Keys (parse_regex_literal st)
      | Some '"' ->
        let v = parse_json st in
        (match v with
        | Jsont.Value.Str k -> Key k
        | _ -> fail st "expected a string key")
      | _ -> Key (parse_bare_key st))
    | Some '[' ->
      st.pos <- st.pos + 1;
      let i = parse_int st in
      skip_ws st;
      (match peek_char st with
      | Some ']' ->
        st.pos <- st.pos + 1;
        Idx i
      | Some ':' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        (match peek_char st with
        | Some '*' ->
          st.pos <- st.pos + 1;
          eat st ']';
          Range (i, None)
        | _ ->
          let j = parse_int st in
          eat st ']';
          Range (i, Some j))
      | _ -> fail st "expected ']' or ':'")
    | Some '?' ->
      st.pos <- st.pos + 1;
      eat st '(';
      let f = parse_form st in
      eat st ')';
      Test f
    | Some '(' ->
      st.pos <- st.pos + 1;
      let p = parse_path_expr st in
      eat st ')';
      p
    | Some 'e' when looking_at st "eps" ->
      st.pos <- st.pos + 3;
      Self
    | Some c -> fail st "unexpected %C in path" c
    | None -> fail st "unexpected end of path"
  in
  (* postfix stars *)
  let rec stars acc =
    skip_ws st;
    match peek_char st with
    | Some '*' ->
      st.pos <- st.pos + 1;
      stars (Star acc)
    | _ -> acc
  in
  stars atom

let run_parser f input =
  let st = { input; pos = 0 } in
  let result = f st in
  skip_ws st;
  (match peek_char st with
  | None -> ()
  | Some c -> fail st "trailing %C" c);
  result

let parse input =
  match run_parser parse_form input with
  | f -> Ok f
  | exception Bad m -> Error m

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error m -> invalid_arg ("Jnl.parse_exn: " ^ m)

let parse_path input =
  match run_parser parse_path_expr input with
  | p -> Ok p
  | exception Bad m -> Error m

let parse_path_exn input =
  match parse_path input with
  | Ok p -> p
  | Error m -> invalid_arg ("Jnl.parse_path_exn: " ^ m)
