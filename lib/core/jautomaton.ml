module Tree = Jsont.Tree
module Value = Jsont.Value

type state = int

type rule =
  | R_true
  | R_false
  | R_and of rule * rule
  | R_or of rule * rule
  | R_test of Jsl.node_test
  | R_not_test of Jsl.node_test
  | R_state of state
  | R_ex_keys of Rexp.Syntax.t * state
  | R_all_keys of Rexp.Syntax.t * state
  | R_ex_range of int * int option * state
  | R_all_range of int * int option * state

type t = { rules : rule array; init : state }

let states t = Array.length t.rules
let rule t q = t.rules.(q)
let init t = t.init

(* ---- compilation (Lemmas 4 and 5) ---------------------------------------- *)

type polarity = Pos | Neg

let flip = function Pos -> Neg | Neg -> Pos

let compile defs base =
  let memo : (Jsl.t * polarity, int) Hashtbl.t = Hashtbl.create 64 in
  let rules = ref [||] in
  let count = ref 0 in
  let alloc () =
    let id = !count in
    incr count;
    if id >= Array.length !rules then begin
      let grown = Array.make (max 16 (2 * Array.length !rules)) R_true in
      Array.blit !rules 0 grown 0 (Array.length !rules);
      rules := grown
    end;
    id
  in
  let def v =
    match List.assoc_opt v defs with
    | Some d -> d
    | None ->
      invalid_arg (Printf.sprintf "Jautomaton: free recursion symbol $%s" v)
  in
  let rec state_of f pol =
    match Hashtbl.find_opt memo (f, pol) with
    | Some id -> id
    | None ->
      let id = alloc () in
      Hashtbl.add memo (f, pol) id;
      let r = rule_of f pol in
      !rules.(id) <- r;
      id
  and rule_of (f : Jsl.t) pol =
    match (f, pol) with
    | Jsl.True, Pos -> R_true
    | Jsl.True, Neg -> R_false
    | Jsl.Not g, p -> rule_of g (flip p)
    | Jsl.And (a, b), Pos -> R_and (rule_of a Pos, rule_of b Pos)
    | Jsl.And (a, b), Neg -> R_or (rule_of a Neg, rule_of b Neg)
    | Jsl.Or (a, b), Pos -> R_or (rule_of a Pos, rule_of b Pos)
    | Jsl.Or (a, b), Neg -> R_and (rule_of a Neg, rule_of b Neg)
    | Jsl.Test nt, Pos -> R_test nt
    | Jsl.Test nt, Neg -> R_not_test nt
    | Jsl.Dia_keys (e, g), Pos -> R_ex_keys (e, state_of g Pos)
    | Jsl.Dia_keys (e, g), Neg -> R_all_keys (e, state_of g Neg)
    | Jsl.Box_keys (e, g), Pos -> R_all_keys (e, state_of g Pos)
    | Jsl.Box_keys (e, g), Neg -> R_ex_keys (e, state_of g Neg)
    | Jsl.Dia_range (i, j, g), Pos -> R_ex_range (i, j, state_of g Pos)
    | Jsl.Dia_range (i, j, g), Neg -> R_all_range (i, j, state_of g Neg)
    | Jsl.Box_range (i, j, g), Pos -> R_all_range (i, j, state_of g Pos)
    | Jsl.Box_range (i, j, g), Neg -> R_ex_range (i, j, state_of g Neg)
    | Jsl.Var v, p -> R_state (state_of (def v) p)
  in
  let init = state_of base Pos in
  { rules = Array.sub !rules 0 !count; init }

let of_jsl f = compile [] f

let of_jsl_rec (r : Jsl_rec.t) =
  (match Jsl_rec.well_formed r with
  | Ok () -> ()
  | Error m -> invalid_arg ("Jautomaton.of_jsl_rec: " ^ m));
  compile r.Jsl_rec.defs r.Jsl_rec.base

(* ---- run computation ----------------------------------------------------- *)

(* The deterministic bottom-up run: for each node, the set of states
   whose rule holds there.  Same-node references are resolved by
   memoized recursion; a cycle would mean an ill-formed source formula
   and raises. *)

type run = { aut : t; sat : Bitset.t array (* node -> states *) }

let lang_cache : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t = Hashtbl.create 32

let lang e =
  match Hashtbl.find_opt lang_cache e with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Hashtbl.add lang_cache e l;
    l

let compute_run aut tree =
  let q = states aut in
  let n = Tree.node_count tree in
  let jsl_ctx = Jsl.context tree in
  let sat = Array.init n (fun _ -> Bitset.create q) in
  let children_by_keys node e =
    let l = lang e in
    List.filter_map
      (fun (k, c) -> if Rexp.Lang.matches l k then Some c else None)
      (Tree.obj_children tree node)
  in
  let children_by_range node i j = Jnl_step.range_succs tree node i j in
  let eval_node node =
    let memo = Array.make q `Todo in
    let rec eval_state qid =
      match memo.(qid) with
      | `Done b -> b
      | `Active -> invalid_arg "Jautomaton: cyclic same-node references"
      | `Todo ->
        memo.(qid) <- `Active;
        let b = eval_rule aut.rules.(qid) in
        memo.(qid) <- `Done b;
        b
    and eval_rule = function
      | R_true -> true
      | R_false -> false
      | R_and (a, b) -> eval_rule a && eval_rule b
      | R_or (a, b) -> eval_rule a || eval_rule b
      | R_test nt -> Jsl.holds_test jsl_ctx node nt
      | R_not_test nt -> not (Jsl.holds_test jsl_ctx node nt)
      | R_state q' -> eval_state q'
      | R_ex_keys (e, q') ->
        List.exists (fun c -> Bitset.mem sat.(c) q') (children_by_keys node e)
      | R_all_keys (e, q') ->
        List.for_all (fun c -> Bitset.mem sat.(c) q') (children_by_keys node e)
      | R_ex_range (i, j, q') ->
        List.exists (fun c -> Bitset.mem sat.(c) q') (children_by_range node i j)
      | R_all_range (i, j, q') ->
        List.for_all
          (fun c -> Bitset.mem sat.(c) q')
          (children_by_range node i j)
    in
    for qid = 0 to q - 1 do
      if eval_state qid then Bitset.add sat.(node) qid
    done
  in
  Array.iter (List.iter eval_node) (Tree.nodes_by_height tree);
  { aut; sat }

let run_profile aut tree node =
  let r = compute_run aut tree in
  r.sat.(node)

let accepts aut tree =
  let r = compute_run aut tree in
  Bitset.mem r.sat.(Tree.root) aut.init

(* ---- emptiness with witness (Proposition 10) ----------------------------- *)

type outcome =
  | Sat of Value.t
  | Unsat
  | Unknown of string

(* Constraint harvest: everything the rules can observe, used to build
   candidate atoms, keys and width bounds. *)
type harvest = {
  mutable patterns : Rexp.Syntax.t list;
  mutable str_consts : string list;
  mutable int_consts : int list;
  mutable mult_consts : int list;
  mutable key_exprs : Rexp.Syntax.t list;
  mutable docs : Value.t list;
  mutable arr_need : int;  (* minimal array width worth constructing *)
  mutable obj_need : int;
  mutable minch : int;
}

let harvest aut =
  let h =
    { patterns = [];
      str_consts = [];
      int_consts = [];
      mult_consts = [];
      key_exprs = [];
      docs = [];
      arr_need = 0;
      obj_need = 0;
      minch = 0 }
  in
  let add_test nt =
    match nt with
    | Jsl.Pattern e -> h.patterns <- e :: h.patterns
    | Jsl.Min i | Jsl.Max i -> h.int_consts <- i :: h.int_consts
    | Jsl.Mult_of i -> h.mult_consts <- i :: h.mult_consts
    | Jsl.Min_ch i ->
      h.minch <- max h.minch i;
      h.arr_need <- max h.arr_need i;
      h.obj_need <- max h.obj_need i
    | Jsl.Max_ch i ->
      (* to refute Max_ch we may need i+1 children *)
      h.arr_need <- max h.arr_need (i + 1);
      h.obj_need <- max h.obj_need (i + 1)
    | Jsl.Eq_doc v -> (
      h.docs <- v :: h.docs;
      match v with
      | Value.Str s -> h.str_consts <- s :: h.str_consts
      | Value.Num i -> h.int_consts <- i :: h.int_consts
      | Value.Arr _ | Value.Obj _ -> ())
    | Jsl.Is_obj | Jsl.Is_arr | Jsl.Is_str | Jsl.Is_int | Jsl.Unique -> ()
  in
  let rec walk = function
    | R_true | R_false | R_state _ -> ()
    | R_and (a, b) | R_or (a, b) ->
      walk a;
      walk b
    | R_test nt | R_not_test nt -> add_test nt
    | R_ex_keys (e, _) | R_all_keys (e, _) -> h.key_exprs <- e :: h.key_exprs
    | R_ex_range (i, j, _) | R_all_range (i, j, _) ->
      let need =
        match j with
        | Some j -> j + 1
        | None -> i + 1
      in
      h.arr_need <- max h.arr_need (min need 64)
  in
  Array.iter walk aut.rules;
  h.patterns <- List.sort_uniq Rexp.Syntax.compare h.patterns;
  h.key_exprs <- List.sort_uniq Rexp.Syntax.compare h.key_exprs;
  h.str_consts <- List.sort_uniq String.compare h.str_consts;
  h.int_consts <- List.sort_uniq Int.compare h.int_consts;
  h.mult_consts <- List.sort_uniq Int.compare h.mult_consts;
  (* a node may need one child per distinct ∃-key expression, on top of
     any child-count obligations *)
  h.obj_need <- min 12 (h.obj_need + List.length h.key_exprs);
  h.arr_need <- min 16 h.arr_need;
  h

let uses_unique_test aut =
  let rec go = function
    | R_test Jsl.Unique | R_not_test Jsl.Unique -> true
    | R_and (a, b) | R_or (a, b) -> go a || go b
    | R_true | R_false | R_state _ | R_test _ | R_not_test _ | R_ex_keys _
    | R_all_keys _ | R_ex_range _ | R_all_range _ ->
      false
  in
  Array.exists go aut.rules

(* Distinct strings realizing each boolean combination of the languages
   in [exprs], each combination further split on the given constants.
   With k ≤ combo_cap expressions we enumerate all 2^k combinations
   exactly (language algebra + witness extraction); beyond the cap we
   fall back to per-expression witnesses. *)
let string_atoms ?(combo_cap = 5) ?(per_combo = 2) exprs consts =
  let exprs = List.sort_uniq Rexp.Syntax.compare exprs in
  let langs = List.map (fun e -> Rexp.Lang.of_syntax e) exprs in
  let k = List.length langs in
  let results = ref [] in
  let add w = if not (List.mem w !results) then results := w :: !results in
  List.iter add consts;
  if k = 0 then begin
    add "";
    add "z:fresh"
  end
  else if k <= combo_cap then begin
    let n_combo = 1 lsl k in
    for mask = 0 to n_combo - 1 do
      let language =
        List.fold_left
          (fun (acc, idx) l ->
            let acc =
              if mask land (1 lsl idx) <> 0 then Rexp.Lang.inter acc l
              else Rexp.Lang.inter acc (Rexp.Lang.complement l)
            in
            (acc, idx + 1))
          (Rexp.Lang.all, 0) langs
        |> fst
      in
      List.iter add (Rexp.Lang.witnesses ~limit:per_combo language)
    done
  end
  else
    List.iter
      (fun l ->
        List.iter add (Rexp.Lang.witnesses ~limit:per_combo l);
        List.iter add
          (Rexp.Lang.witnesses ~limit:1 (Rexp.Lang.complement l)))
      langs;
  List.sort String.compare !results

let int_atoms consts mults =
  let out = ref [ 0; 1 ] in
  let add i = if i >= 0 && not (List.mem i !out) then out := i :: !out in
  List.iter
    (fun c ->
      add (c - 1);
      add c;
      add (c + 1))
    consts;
  let top = List.fold_left max 1 consts in
  List.iter
    (fun m ->
      if m > 0 then begin
        add m;
        add (2 * m);
        (* a multiple just beyond each constant *)
        List.iter (fun c -> add (((c / m) + 1) * m)) consts;
        (* a non-multiple *)
        add (m + 1)
      end)
    mults;
  ignore top;
  List.sort Int.compare !out

let profile_key p = String.concat "," (List.map string_of_int (Bitset.elements p))


(* Entries of the saturation: a witness document together with its root
   profile.  Candidate composites are evaluated *compositionally*: the
   root profile of an object/array built from known-profile children is
   computed by evaluating each state's rule at the root only — O(states
   × children) per candidate instead of a full re-run of the tree. *)
type entry = { ev : Value.t; ep : Bitset.t }

type cand_shape =
  | Sh_obj of (string * entry) list
  | Sh_arr of entry list

let eval_shape aut shape (value : Value.t Lazy.t) =
  let q = Array.length aut.rules in
  let arity =
    match shape with
    | Sh_obj kvs -> List.length kvs
    | Sh_arr es -> List.length es
  in
  let holds_test (nt : Jsl.node_test) =
    match (nt, shape) with
    | Jsl.Is_obj, Sh_obj _ -> true
    | Jsl.Is_obj, Sh_arr _ -> false
    | Jsl.Is_arr, Sh_arr _ -> true
    | Jsl.Is_arr, Sh_obj _ -> false
    | (Jsl.Is_str | Jsl.Is_int | Jsl.Pattern _ | Jsl.Min _ | Jsl.Max _
      | Jsl.Mult_of _), _ ->
      false
    | Jsl.Min_ch i, _ -> arity >= i
    | Jsl.Max_ch i, _ -> arity <= i
    | Jsl.Unique, Sh_obj _ -> false
    | Jsl.Unique, Sh_arr es ->
      let sorted = List.sort Value.compare (List.map (fun e -> e.ev) es) in
      let rec distinct = function
        | a :: (b :: _ as rest) -> Value.compare a b <> 0 && distinct rest
        | _ -> true
      in
      distinct sorted
    | Jsl.Eq_doc a, _ -> Value.equal (Lazy.force value) a
  in
  let memo = Array.make q `Todo in
  let rec eval_state qid =
    match memo.(qid) with
    | `Done b -> b
    | `Active -> invalid_arg "Jautomaton: cyclic same-node references"
    | `Todo ->
      memo.(qid) <- `Active;
      let b = eval_rule aut.rules.(qid) in
      memo.(qid) <- `Done b;
      b
  and eval_rule = function
    | R_true -> true
    | R_false -> false
    | R_and (a, b) -> eval_rule a && eval_rule b
    | R_or (a, b) -> eval_rule a || eval_rule b
    | R_test nt -> holds_test nt
    | R_not_test nt -> not (holds_test nt)
    | R_state q' -> eval_state q'
    | R_ex_keys (e, q') -> (
      match shape with
      | Sh_arr _ -> false
      | Sh_obj kvs ->
        let l = lang e in
        List.exists
          (fun (k, c) -> Rexp.Lang.matches l k && Bitset.mem c.ep q')
          kvs)
    | R_all_keys (e, q') -> (
      match shape with
      | Sh_arr _ -> true
      | Sh_obj kvs ->
        let l = lang e in
        List.for_all
          (fun (k, c) -> (not (Rexp.Lang.matches l k)) || Bitset.mem c.ep q')
          kvs)
    | R_ex_range (i, j, q') -> (
      match shape with
      | Sh_obj _ -> false
      | Sh_arr es ->
        let in_range p = p >= i && match j with None -> true | Some j -> p <= j in
        List.exists Fun.id
          (List.mapi (fun p c -> in_range p && Bitset.mem c.ep q') es))
    | R_all_range (i, j, q') -> (
      match shape with
      | Sh_obj _ -> true
      | Sh_arr es ->
        let in_range p = p >= i && match j with None -> true | Some j -> p <= j in
        List.for_all Fun.id
          (List.mapi (fun p c -> (not (in_range p)) || Bitset.mem c.ep q') es))
  in
  let out = Bitset.create q in
  for qid = 0 to q - 1 do
    if eval_state qid then Bitset.add out qid
  done;
  out

let debug_enabled = lazy (Sys.getenv_opt "JAUTOMATON_DEBUG" <> None)

let debugf fmt =
  if Lazy.force debug_enabled then Printf.eprintf fmt
  else Printf.ifprintf stderr fmt

let find_model ?(max_rounds = 24) ?(candidates_per_round = 400_000)
    ?(max_width = 3) ?(budget = Obs.Budget.unlimited) aut =
  let h = harvest aut in
  let profile_of_value v =
    let tree = Tree.of_value ~budget v in
    (* a full run costs one rule evaluation per (node, state) pair *)
    Obs.Budget.burn budget (Tree.node_count tree * states aut);
    let r = compute_run aut tree in
    r.sat.(Tree.root)
  in
  let per_profile =
    if uses_unique_test aut then max 2 (max h.arr_need h.minch) else 1
  in
  (* sub-documents of ~(A) constants are never interchangeable with
     other values of the same profile: a parent's Eq_doc test can tell
     them apart.  They are "distinguished": bucketed separately (so a
     distinguished witness never crowds out an ordinary one) and never
     merged away by the candidate quotient below. *)
  let distinguished = Hashtbl.create 16 in
  let rec note_subvalues v =
    Hashtbl.replace distinguished (Value.hash v) ();
    match v with
    | Value.Num _ | Value.Str _ -> ()
    | Value.Arr vs -> List.iter note_subvalues vs
    | Value.Obj kvs -> List.iter (fun (_, v) -> note_subvalues v) kvs
  in
  List.iter note_subvalues h.docs;
  let is_distinguished e = Hashtbl.mem distinguished (Value.hash e.ev) in
  let reached : (string, entry list ref) Hashtbl.t = Hashtbl.create 64 in
  let stored = ref 0 in
  let winner = ref None in
  let truncated_ever = ref false in
  let consider (e : entry) =
    Obs.Metrics.incr "sat.candidates";
    match !winner with
    | Some _ -> ()
    | None ->
      let key =
        if is_distinguished e then
          profile_key e.ep ^ "#" ^ string_of_int (Value.hash e.ev)
        else profile_key e.ep
      in
      let bucket =
        match Hashtbl.find_opt reached key with
        | Some b -> b
        | None ->
          let b = ref [] in
          Hashtbl.add reached key b;
          b
      in
      if
        List.length !bucket < per_profile
        && not (List.exists (fun e' -> Value.equal e.ev e'.ev) !bucket)
      then begin
        bucket := e :: !bucket;
        incr stored;
        if Bitset.mem e.ep aut.init then winner := Some e.ev
      end
  in
  let consider_value v = consider { ev = v; ep = profile_of_value v } in
  (* round 0: leaves and constant documents *)
  let strs = string_atoms h.patterns h.str_consts in
  let ints = int_atoms h.int_consts h.mult_consts in
  let leaves =
    List.map (fun s -> Value.Str s) strs
    @ List.map (fun i -> Value.Num i) ints
    @ [ Value.Obj []; Value.Arr [] ]
    @ h.docs
  in
  let keys =
    (* one witness per ∃/∀-key expression comes first — dropping one of
       those can turn a satisfiable formula into a false Unsat — then
       boolean-combination witnesses (for overlap/complement behavior),
       capped beyond that *)
    let primary =
      List.concat_map
        (fun e -> Rexp.Lang.witnesses ~limit:1 (Rexp.Lang.of_syntax e))
        h.key_exprs
    in
    let extras = string_atoms ~combo_cap:4 ~per_combo:2 h.key_exprs [] in
    let rec dedup acc = function
      | [] -> List.rev acc
      | k :: rest -> if List.mem k acc then dedup acc rest else dedup (k :: acc) rest
    in
    let all = dedup [] (primary @ extras) in
    let cap = max 14 (List.length primary + 4) in
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take cap all
  in
  let arr_width = max h.arr_need (min max_width 3) in
  let obj_width = max h.obj_need (min max_width 3) in
  debugf "[jautomaton] states=%d keys=[%s] arr_width=%d obj_width=%d per_profile=%d\n"
    (Array.length aut.rules) (String.concat ";" (List.map String.escaped keys)) arr_width obj_width
    per_profile;
  debugf "[jautomaton] key_exprs=[%s] strs=[%s] ints=[%s]\n"
    (String.concat ";" (List.map Rexp.Syntax.to_string h.key_exprs))
    (String.concat ";" strs)
    (String.concat ";" (List.map string_of_int ints));
  (* Interchangeability quotient: for a child reached through key [k]
     (resp. array position [p]), only its membership in the states
     targeted by quantifiers whose language contains [k] (resp. whose
     range contains [p]) can influence the parent — plus its identity
     when it is a sub-document of some ~(A) constant, or when [Unique]
     distinguishes values.  Candidates per key/position are deduplicated
     accordingly, which keeps the enumeration complete while shrinking
     it massively. *)
  let key_quants =
    let acc = ref [] in
    let rec walk = function
      | R_true | R_false | R_state _ | R_test _ | R_not_test _ -> ()
      | R_and (a, b) | R_or (a, b) ->
        walk a;
        walk b
      | R_ex_keys (e, q') | R_all_keys (e, q') -> acc := (lang e, q') :: !acc
      | R_ex_range _ | R_all_range _ -> ()
    in
    Array.iter walk aut.rules;
    !acc
  in
  let range_quants =
    let acc = ref [] in
    let rec walk = function
      | R_true | R_false | R_state _ | R_test _ | R_not_test _ -> ()
      | R_and (a, b) | R_or (a, b) ->
        walk a;
        walk b
      | R_ex_keys _ | R_all_keys _ -> ()
      | R_ex_range (i, j, q') | R_all_range (i, j, q') -> acc := (i, j, q') :: !acc
    in
    Array.iter walk aut.rules;
    !acc
  in
  let key_states k =
    List.filter_map
      (fun (l, q') -> if Rexp.Lang.matches l k then Some q' else None)
      key_quants
    |> List.sort_uniq Int.compare
  in
  let pos_states p =
    List.filter_map
      (fun (i, j, q') ->
        if p >= i && (match j with None -> true | Some j -> p <= j) then Some q'
        else None)
      range_quants
    |> List.sort_uniq Int.compare
  in
  let quotient states reps =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun e ->
        if is_distinguished e then true
        else begin
          let cls = List.map (Bitset.mem e.ep) states in
          let count = Option.value ~default:0 (Hashtbl.find_opt seen cls) in
          if count >= per_profile then false
          else begin
            Hashtbl.replace seen cls (count + 1);
            true
          end
        end)
      reps
  in
  let round () =
    (* witnesses with their profiles, small documents first so minimal
       models are found early *)
    let reps =
      Hashtbl.fold (fun _ b acc -> !b @ acc) reached []
      |> List.sort (fun a b ->
             let c = Int.compare (Value.size a.ev) (Value.size b.ev) in
             if c <> 0 then c else Value.compare a.ev b.ev)
    in
    let by_key =
      List.map (fun k -> (k, quotient (key_states k) reps)) keys
    in
    let by_pos = Array.init arr_width (fun p -> quotient (pos_states p) reps) in
    let cand_budget = ref candidates_per_round in
    let truncated = ref false in
    let emit shape =
      if !cand_budget <= 0 then truncated := true
      else begin
        decr cand_budget;
        (* compositional profile evaluation costs one rule evaluation
           per state *)
        Obs.Budget.burn budget (states aut);
        let value =
          lazy
            (match shape with
            | Sh_obj kvs -> Value.Obj (List.map (fun (k, e) -> (k, e.ev)) kvs)
            | Sh_arr es -> Value.Arr (List.map (fun e -> e.ev) es))
        in
        let p = eval_shape aut shape value in
        consider { ev = Lazy.force value; ep = p }
      end
    in
    let added_before = !stored in
    (* arrays: tuples with per-position candidate lists, lengths
       1 .. arr_width *)
    let rec arrays prefix pos =
      if !winner = None && !cand_budget > 0 && pos < arr_width then
        List.iter
          (fun e ->
            let tuple = e :: prefix in
            emit (Sh_arr (List.rev tuple));
            arrays tuple (pos + 1))
          by_pos.(pos)
    in
    arrays [] 0;
    (* objects: key subsets with per-key candidate lists *)
    let rec objects chosen remaining width =
      if !winner = None && !cand_budget > 0 then
        match remaining with
        | [] -> ()
        | (k, candidates) :: rest ->
          (* skip this key *)
          objects chosen rest width;
          if width > 0 then
            List.iter
              (fun e ->
                let kvs = (k, e) :: chosen in
                emit (Sh_obj (List.rev kvs));
                objects kvs rest (width - 1))
              candidates
    in
    objects [] by_key obj_width;
    if !truncated then truncated_ever := true;
    debugf
      "[jautomaton] round: reps=%d stored %d -> %d budget_left=%d truncated=%b\n"
      (List.length reps) added_before !stored !cand_budget !truncated;
    if Lazy.force debug_enabled then
      List.iter
        (fun (k, cands) -> debugf "  key %s: %d candidates\n" k (List.length cands))
        by_key;
    !stored > added_before
  in
  let rec loop rounds =
    match !winner with
    | Some v -> Sat v
    | None ->
      if rounds = 0 then
        Unknown (Printf.sprintf "no saturation within %d rounds" max_rounds)
      else begin
        Obs.Metrics.incr "sat.rounds";
        if round () then loop (rounds - 1)
        else if !winner <> None then Sat (Option.get !winner)
        else if !truncated_ever then
          Unknown "profile saturation reached only under truncated enumeration"
        else Unsat
      end
  in
  match
    (* round 0 seeding burns fuel too: keep it under the handler *)
    List.iter consider_value leaves;
    loop max_rounds
  with
  | outcome -> outcome
  | exception Obs.Budget.Exhausted r -> Unknown (Obs.Budget.describe r)
