(** Satisfiability of JNL (Propositions 2 and 5).

    The decision procedure goes through Theorem 2: translate the
    formula to JSL (polynomial target fragment, possibly exponential
    source blow-up in the presence of path unions) and decide JSL
    satisfiability via J-automata.  Formulas outside the decidable
    fragments are rejected:

    - [EQ(α,β)] makes the recursive non-deterministic logic undecidable
      (Proposition 4) and is not expressible in JSL; rejected.
    - [Star] is rejected by the non-recursive translation; recursive
      star-free-equality formulas would need recursive JSL targets,
      which the Theorem 2 translation does not cover.

    Every [Sat] answer carries a witness document, re-checked against
    the original JNL formula with {!Jnl_eval.check_at}. *)

val satisfiable :
  ?max_rounds:int -> ?candidates_per_round:int -> ?max_width:int
  -> ?budget:Obs.Budget.t -> Jnl.form
  -> (Jautomaton.outcome, string) result
(** [Error reason] when the formula lies outside the decidable
    translated fragment.  [budget] bounds the model search
    ({!Jsl_sat.satisfiable}); exhaustion yields [Ok (Unknown _)].  The
    translation runs under the [phase.translate] timing span. *)

val satisfiable_exn :
  ?max_rounds:int -> ?candidates_per_round:int -> ?max_width:int
  -> ?budget:Obs.Budget.t -> Jnl.form -> Jautomaton.outcome
