(** The JSON Schema Logic (JSL) of Section 5.2.

    JSL isolates the atomic keyword tests of JSON Schema into
    {!node_test} and its navigation into existential ([◇]) and universal
    ([□]) modalities over key expressions and array ranges
    (Definition 2).

    Numeric conventions:
    - [Min i] / [Max i] are interpreted inclusively ([val(n) ≥ i] /
      [val(n) ≤ i]) to agree with JSON Schema's [minimum] / [maximum]
      keywords and the examples of §5.1 (the schema with [maximum 12,
      multipleOf 4] is said to describe 0, 4, 8 {e and 12}).  The
      formal list in §5.2 reads "greater/smaller than [i]"; the paper's
      own examples force the inclusive reading, which we adopt.
    - Array positions are 0-based, consistent with the tree domains of
      §3.1 (children [n·0 … n·(k-1)]).

    The [Var] constructor carries the recursion symbols γ of §5.3; a
    formula containing free [Var]s is only meaningful inside a
    {!Jsl_rec.t}. *)

type node_test =
  | Is_obj  (** Obj *)
  | Is_arr  (** Arr *)
  | Is_str  (** Str *)
  | Is_int  (** Int *)
  | Unique
      (** all children of an array are pairwise distinct JSON values *)
  | Pattern of Rexp.Syntax.t  (** string value belongs to L(e) *)
  | Min of int  (** number value ≥ i *)
  | Max of int  (** number value ≤ i *)
  | Mult_of of int  (** number value is a multiple of i *)
  | Min_ch of int  (** at least i children (MinCh) *)
  | Max_ch of int  (** at most i children (MaxCh) *)
  | Eq_doc of Jsont.Value.t  (** [~(A)]: the subtree equals document A *)

type t =
  | True
  | Not of t
  | And of t * t
  | Or of t * t
  | Test of node_test
  | Dia_keys of Rexp.Syntax.t * t  (** ◇_e ϕ *)
  | Dia_range of int * int option * t  (** ◇_{i:j} ϕ ([None] = +∞) *)
  | Box_keys of Rexp.Syntax.t * t  (** □_e ϕ *)
  | Box_range of int * int option * t  (** □_{i:j} ϕ *)
  | Var of string  (** recursion symbol γ (see {!Jsl_rec}) *)

val ff : t
val conj : t list -> t
val disj : t list -> t

val dia_key : string -> t -> t
(** [◇_w] for a single word [w] — deterministic JSL. *)

val box_key : string -> t -> t
val dia_idx : int -> t -> t
val box_idx : int -> t -> t

val size : t -> int
val equal : t -> t -> bool

val uses_unique : t -> bool
(** Whether [Unique] occurs — the dividing line in Propositions 6, 7
    and 10. *)

val is_deterministic : t -> bool
(** Only single-word / single-index modalities (the deterministic JSL
    of §5.2). *)

val free_vars : t -> string list
(** Recursion symbols occurring in the formula, without duplicates. *)

val modal_depth : t -> int
(** Maximal nesting of modalities — bounds the height of models of
    non-recursive formulas (used by satisfiability search, Prop 7). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Concrete syntax, inverse of {!pp}:
    {v
      form ::= form '|' form | form '&' form | '!' form | '(' form ')'
             | 'true' | 'false' | '$' ident                (recursion symbol)
             | 'Obj' | 'Arr' | 'Str' | 'Int' | 'Unique'
             | 'Pattern(/re/)' | 'Min(i)' | 'Max(i)' | 'MultOf(i)'
             | 'MinCh(i)' | 'MaxCh(i)' | '~(json)'
             | ('dia'|'box') '(/re/)' form                 (key modality)
             | ('dia'|'box') '[' i (':' (j|'*'))? ']' form (index modality)
    v} *)

val parse : string -> (t, string) result
val parse_exn : string -> t

(** {1 Evaluation (Proposition 6)}

    O(|J|·|ϕ|) without [Unique]; the [Unique] test adds the pairwise
    child comparisons that give the O(|J|²·|ϕ|) bound. *)

type ctx

val context : ?budget:Obs.Budget.t -> Jsont.Tree.t -> ctx
(** Evaluation context.  [budget] (default {!Obs.Budget.unlimited})
    bounds the work: set-at-a-time evaluation burns [node_count] fuel
    per formula node, per-node evaluation burns one unit per visit, and
    formula recursion depth is checked against the budget's ceiling.
    Exhaustion raises {!Obs.Budget.Exhausted}. *)

val eval : ctx -> t -> Bitset.t
(** Satisfaction set over all nodes.  @raise Invalid_argument on free
    [Var]s.  @raise Obs.Budget.Exhausted when the context budget runs
    out. *)

val holds : ctx -> Jsont.Tree.node -> t -> bool

val validates : ?budget:Obs.Budget.t -> Jsont.Value.t -> t -> bool
(** [J ⊨ ψ]: satisfaction at the root, the schema-validation
    relation.  @raise Obs.Budget.Exhausted when [budget] runs out
    (during tree construction or evaluation). *)

val validates_bounded :
  ?budget:Obs.Budget.t -> Jsont.Value.t -> t -> (bool, string) result
(** Like {!validates} but budget exhaustion is returned as
    [Error (Obs.Budget.describe reason)] instead of raising. *)

(** {2 Compiled plans}

    [compile] interns the formula's distinct subformulas — the same
    structural deduplication the evaluator's memo table discovers on
    the fly — into a topologically ordered instruction array (children
    before parents) with key regexes lowered to {!Rexp.Dfa} once;
    [eval_plan] then runs the array bottom-up with no recursion and no
    hashing.  Fuel draw matches {!eval} by construction: one burn of
    [node_count] per distinct subformula; the compile checks formula
    depth against the budget's ceiling at the same points [eval]
    would.  A plan is immutable and safe to share across domains.
    Counters: [jsl.plan.nodes], [jsl.plan.runs]. *)

type plan

val compile : ?budget:Obs.Budget.t -> t -> plan
(** @raise Obs.Budget.Exhausted on formulas deeper than the ceiling. *)

val plan_size : plan -> int
(** Number of interned subformulas. *)

val eval_plan : ctx -> plan -> Bitset.t
(** Satisfaction set over all nodes; agrees with {!eval} on the
    formula the plan was compiled from.  @raise Invalid_argument on
    free [Var]s. *)

val holds_plan : ctx -> Jsont.Tree.node -> plan -> bool

val validates_plan : ?budget:Obs.Budget.t -> Jsont.Value.t -> plan -> bool
(** Compiled counterpart of {!validates}. *)

val check_unique : Jsont.Tree.t -> Jsont.Tree.node -> bool
(** The [Unique] node test in isolation (shared with {!Jsl_rec} and the
    automaton membership checker). *)

val node_eval :
  ctx -> env:(string -> Jsont.Tree.node -> bool) -> Jsont.Tree.node -> t -> bool
(** Structural single-node evaluation, resolving each recursion symbol
    [Var γ] at a node through [env].  This is the inner step of the
    bottom-up recursive-JSL evaluator (Proposition 9). *)

val holds_test : ctx -> Jsont.Tree.node -> node_test -> bool
(** A single atomic node test. *)
