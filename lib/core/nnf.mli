(** Negation normal form for JSL.

    Negations are pushed down until they sit only on atomic node tests
    (or on ⊤, giving ⊥), using De Morgan and the modal dualities
    [¬◇ϕ ≡ □¬ϕ] / [¬□ϕ ≡ ◇¬ϕ].  This is the (polarity) normal form
    the J-automaton compilation of Lemma 4 operates in — exposed as its
    own transformation so it can be tested and reused.

    Properties (checked in the suite): the result {!is_nnf}, has the
    same satisfaction sets, and grows at most linearly. *)

val jsl : Jsl.t -> Jsl.t

val is_nnf : Jsl.t -> bool
(** [Not] occurs only immediately above [Test _], [True] or [Var _]. *)
