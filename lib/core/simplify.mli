(** Semantics-preserving formula simplification.

    Useful both as a query optimizer in front of the evaluators and to
    keep machine-generated formulas (translations, query-frontend
    output) readable.  Guarantees, property-tested in the suite:

    - the result is equivalent on every document (same satisfaction
      set);
    - the result is never larger than the input
      ({!Jnl.size} / {!Jsl.size}).

    Rewrites include boolean laws (double negation, unit/absorbing
    elements, duplicate and contradictory conjuncts — the node-kind
    tests are pairwise disjoint, numeric bounds can clash), modal
    vacuity ([◇ over ∅ or an empty range] ≡ ⊥, [□] dually ≡ ⊤),
    path normalization (ε units, star idempotence, word-shaped [Keys]
    to [Key], singleton ranges to [Idx]), and [⟨ϕ⟩]-test absorption. *)

val jsl : Jsl.t -> Jsl.t
val jnl : Jnl.form -> Jnl.form
val jnl_path : Jnl.path -> Jnl.path
