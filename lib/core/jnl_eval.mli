(** Evaluation of JNL over JSON trees (Propositions 1 and 3).

    Two evaluation strategies are provided:

    - {!eval} computes the full satisfaction set [⟦ϕ⟧_J] bottom-up over
      the formula, with node sets as bitsets and path pre-images
      computed set-at-a-time.  Boolean connectives cost O(|J|); single
      navigation steps use the tree's {{!Jsont.Tree.build_index}label
      index} and cost O(edges carrying the step's label) — the sweep
      fallback ([use_index:false]) costs O(|J|); [Star] adds a fixpoint
      bounded by the tree height; [Eq_paths] falls back to per-node
      successor enumeration with hash-indexed subtree comparison —
      matching the O(|J|·|ϕ|) bound of Proposition 1 on the
      EQ(α,β)-free fragment and the higher-degree polynomial of
      Proposition 3 with it.

    - {!check_at} decides [n ∈ ⟦ϕ⟧_J] top-down with short-circuiting
      and no global set computation — the lightweight engine behind the
      MongoDB-find and JSONPath front ends, which evaluate filters at
      one node at a time.

    Both engines take single-step semantics — key/regex matching and
    the normalization of negative indices and ranges against array
    arity — from {!Jnl_step}, so they agree by construction on
    navigation (and are property-tested to agree overall). *)

type ctx
(** Evaluation context: the tree plus memo tables (per-subformula
    satisfaction sets, compiled regular expressions, per-expression
    key-edge sets) and a resource budget. *)

val context : ?budget:Obs.Budget.t -> ?use_index:bool -> Jsont.Tree.t -> ctx
(** [budget] (default {!Obs.Budget.unlimited}) bounds the work: the
    set-at-a-time evaluator burns [node_count] fuel per boolean
    connective, [1 + touched edges] per label-indexed navigation step
    ([node_count] on the sweep fallback), the per-node checker one unit
    per visit, and formula recursion depth is checked against the
    budget's ceiling.  Exhaustion raises {!Obs.Budget.Exhausted} from
    any evaluation entry point.

    [use_index] (default [true]) selects the label-indexed pre-image
    strategies; the first indexed step builds the tree's label index
    (charged [node_count] fuel, once per tree).  [false] forces the
    full-sweep strategies — the escape hatch behind the CLI's
    [--no-index], and the baseline of the [index] benchmark. *)

val tree : ctx -> Jsont.Tree.t

val eval : ctx -> Jnl.form -> Bitset.t
(** [⟦ϕ⟧_J] as a set of nodes.  Memoized per context. *)

val pre : ctx -> Jnl.path -> Bitset.t -> Bitset.t
(** [pre ctx α S] = [{ n | ∃n' ∈ S. (n,n') ∈ ⟦α⟧_J }], one pre-image
    step — the primitive the set-at-a-time evaluator iterates, exposed
    for benchmarks and direct callers. *)

val holds : ctx -> Jsont.Tree.node -> Jnl.form -> bool
(** [holds ctx n ϕ] iff [n ∈ ⟦ϕ⟧_J], via {!eval}. *)

val check_at : ctx -> Jsont.Tree.node -> Jnl.form -> bool
(** Top-down, short-circuiting check of a single node. *)

val succs : ctx -> Jnl.path -> Jsont.Tree.node -> Jsont.Tree.node list
(** [{ n' | (n, n') ∈ ⟦α⟧_J }] in document order, without duplicates. *)

val eval_pairs : ctx -> Jnl.path -> (Jsont.Tree.node * Jsont.Tree.node) list
(** The full binary relation [⟦α⟧_J] — O(|J|²) worst case; intended for
    tests and small documents. *)

val select :
  ?budget:Obs.Budget.t -> ?use_index:bool -> Jsont.Value.t -> Jnl.path ->
  Jsont.Value.t list
(** Convenience: the subdocuments reachable from the root through [α] —
    the "subdocument selecting" use case of §4.1. *)

val satisfies :
  ?budget:Obs.Budget.t -> ?use_index:bool -> Jsont.Value.t -> Jnl.form -> bool
(** Convenience: does the root of the document satisfy [ϕ]?  (The
    filter semantics of MongoDB's find, Example 1.)
    @raise Obs.Budget.Exhausted when [budget] runs out. *)

val satisfies_bounded :
  ?budget:Obs.Budget.t -> ?use_index:bool -> Jsont.Value.t -> Jnl.form ->
  (bool, string) result
(** Like {!satisfies} but budget exhaustion is returned as
    [Error (Obs.Budget.describe reason)] instead of raising. *)
