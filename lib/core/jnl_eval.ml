module Tree = Jsont.Tree

type ctx = {
  t : Tree.t;
  budget : Obs.Budget.t;
  memo : (Jnl.form, Bitset.t) Hashtbl.t;
  langs : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t;
}

let context ?(budget = Obs.Budget.unlimited) t =
  { t; budget; memo = Hashtbl.create 16; langs = Hashtbl.create 8 }

let tree ctx = ctx.t

let lang ctx e =
  match Hashtbl.find_opt ctx.langs e with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Hashtbl.add ctx.langs e l;
    l

let n_nodes ctx = Tree.node_count ctx.t

(* Does the incoming edge of [child] match one navigation step?  Array
   steps may use negative indices (from the end). *)
let edge_matches_idx ctx child i =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Pos j ->
    if i >= 0 then j = i
    else begin
      match Tree.parent ctx.t child with
      | Some p -> j = Tree.arity ctx.t p + i
      | None -> false
    end
  | Tree.Key _ | Tree.Root -> false

let edge_matches_range ctx child i j =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Pos p -> p >= i && (match j with None -> true | Some j -> p <= j)
  | Tree.Key _ | Tree.Root -> false

let edge_matches_key ctx child w =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Key k -> String.equal k w
  | Tree.Pos _ | Tree.Root -> false

let edge_matches_keys ctx child l =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Key k -> Rexp.Lang.matches l k
  | Tree.Pos _ | Tree.Root -> false

(* ---- set-at-a-time evaluation ------------------------------------------ *)

(* Budget accounting: every formula/path constructor sweeps the node
   set once, so each costs [n_nodes] fuel; the recursion depth into the
   formula is checked against the budget's ceiling so adversarially
   deep formulas raise {!Obs.Budget.Exhausted} instead of
   [Stack_overflow]. *)

(* [pre_exists ctx d α target] = { n | ∃n' . (n,n') ∈ ⟦α⟧ ∧ n' ∈ target } *)
let rec pre_exists ctx depth (p : Jnl.path) target =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget (n_nodes ctx);
  match p with
  | Jnl.Self -> target
  | Jnl.Key w ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_key ctx child w then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Keys e ->
    let l = lang ctx e in
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_keys ctx child l then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Idx i ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_idx ctx child i then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Range (i, j) ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_range ctx child i j then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Seq (a, b) ->
    pre_exists ctx (depth + 1) a (pre_exists ctx (depth + 1) b target)
  | Jnl.Alt (a, b) ->
    Bitset.union
      (pre_exists ctx (depth + 1) a target)
      (pre_exists ctx (depth + 1) b target)
  | Jnl.Test f -> Bitset.inter target (eval_at ctx (depth + 1) f)
  | Jnl.Star a ->
    (* least fixpoint S ⊇ target with pre(a, S) ⊆ S; converges within
       height(J) iterations because ⟦a⟧ only relates ancestors to
       descendants *)
    let s = Bitset.copy target in
    let continue = ref true in
    while !continue do
      let s' = pre_exists ctx (depth + 1) a s in
      continue := Bitset.union_into s' ~into:s
    done;
    s

and eval_at ctx depth (f : Jnl.form) =
  match Hashtbl.find_opt ctx.memo f with
  | Some s -> s
  | None ->
    Obs.Budget.check_depth ctx.budget depth;
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    let result =
      match f with
      | Jnl.True -> Bitset.full (n_nodes ctx)
      | Jnl.Not g -> Bitset.complement (eval_at ctx (depth + 1) g)
      | Jnl.And (a, b) ->
        Bitset.inter (eval_at ctx (depth + 1) a) (eval_at ctx (depth + 1) b)
      | Jnl.Or (a, b) ->
        Bitset.union (eval_at ctx (depth + 1) a) (eval_at ctx (depth + 1) b)
      | Jnl.Exists p ->
        pre_exists ctx (depth + 1) p (Bitset.full (n_nodes ctx))
      | Jnl.Eq_doc (p, v) ->
        Obs.Metrics.incr "jnl.eq_doc";
        pre_exists ctx (depth + 1) p (nodes_equal_to ctx v)
      | Jnl.Eq_paths (a, b) ->
        Obs.Metrics.incr "jnl.eq_paths";
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n -> if eq_paths_at ctx depth n a b then Bitset.add out n)
          (Tree.nodes ctx.t);
        out
    in
    Hashtbl.replace ctx.memo f result;
    result

(* nodes whose subtree equals the constant document [v] *)
and nodes_equal_to ctx v =
  let out = Bitset.create (n_nodes ctx) in
  let vt = Tree.of_value ~budget:ctx.budget v in
  let h = Tree.subtree_hash vt Tree.root in
  Seq.iter
    (fun n ->
      if Tree.subtree_hash ctx.t n = h && Tree.equal_across ctx.t n vt Tree.root
      then Bitset.add out n)
    (Tree.nodes ctx.t);
  out

and eq_paths_at ctx depth n a b =
  let sa = succs_at ctx (depth + 1) a n in
  match sa with
  | [] -> false
  | _ ->
    let by_hash = Hashtbl.create (List.length sa) in
    List.iter
      (fun m -> Hashtbl.add by_hash (Tree.subtree_hash ctx.t m) m)
      sa;
    List.exists
      (fun m ->
        List.exists
          (fun m' -> Tree.equal_subtrees ctx.t m m')
          (Hashtbl.find_all by_hash (Tree.subtree_hash ctx.t m)))
      (succs_at ctx (depth + 1) b n)

(* ---- successor enumeration --------------------------------------------- *)

and succs_at ctx depth (p : Jnl.path) n =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match p with
  | Jnl.Self -> [ n ]
  | Jnl.Key w -> Option.to_list (Tree.lookup ctx.t n w)
  | Jnl.Idx i -> Option.to_list (Tree.nth ctx.t n i)
  | Jnl.Keys e ->
    let l = lang ctx e in
    List.filter_map
      (fun (k, c) -> if Rexp.Lang.matches l k then Some c else None)
      (Tree.obj_children ctx.t n)
  | Jnl.Range (i, j) ->
    let kids = Tree.arr_children ctx.t n in
    let hi =
      match j with
      | None -> Array.length kids - 1
      | Some j -> min j (Array.length kids - 1)
    in
    let lo = max 0 i in
    if hi < lo then []
    else List.init (hi - lo + 1) (fun k -> kids.(lo + k))
  | Jnl.Seq (a, b) ->
    let out =
      List.concat_map (succs_at ctx (depth + 1) b) (succs_at ctx (depth + 1) a n)
    in
    List.sort_uniq Int.compare out
  | Jnl.Alt (a, b) ->
    List.sort_uniq Int.compare
      (succs_at ctx (depth + 1) a n @ succs_at ctx (depth + 1) b n)
  | Jnl.Test f -> if Bitset.mem (eval_at ctx (depth + 1) f) n then [ n ] else []
  | Jnl.Star a ->
    (* BFS closure; each node enters [seen] once, so fuel is burnt at
       most [n_nodes] times by the inner [succs_at] calls *)
    let seen = Hashtbl.create 16 in
    let rec visit acc = function
      | [] -> acc
      | m :: rest ->
        if Hashtbl.mem seen m then visit acc rest
        else begin
          Hashtbl.add seen m ();
          visit (m :: acc) (succs_at ctx (depth + 1) a m @ rest)
        end
    in
    List.sort Int.compare (visit [] [ n ])

let eval ctx f = eval_at ctx 0 f
let holds ctx n f = Bitset.mem (eval ctx f) n
let succs ctx p n = succs_at ctx 0 p n

(* ---- single-node, short-circuiting check -------------------------------- *)

(* [find_succ ctx d α n pred] — is there an α-successor of n satisfying
   [pred]?  CPS style so Seq short-circuits.  One fuel unit per visit;
   [Star] visits each node at most once ([seen]). *)
let rec find_succ ctx depth (p : Jnl.path) n pred =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match p with
  | Jnl.Self -> pred n
  | Jnl.Key w -> (
    match Tree.lookup ctx.t n w with Some c -> pred c | None -> false)
  | Jnl.Idx i -> (
    match Tree.nth ctx.t n i with Some c -> pred c | None -> false)
  | Jnl.Keys e ->
    let l = lang ctx e in
    List.exists
      (fun (k, c) -> Rexp.Lang.matches l k && pred c)
      (Tree.obj_children ctx.t n)
  | Jnl.Range (i, j) ->
    let kids = Tree.arr_children ctx.t n in
    let hi =
      match j with
      | None -> Array.length kids - 1
      | Some j -> min j (Array.length kids - 1)
    in
    let lo = max 0 i in
    let rec go k = k <= hi && (pred kids.(k) || go (k + 1)) in
    go lo
  | Jnl.Seq (a, b) ->
    find_succ ctx (depth + 1) a n (fun m -> find_succ ctx (depth + 1) b m pred)
  | Jnl.Alt (a, b) ->
    find_succ ctx (depth + 1) a n pred || find_succ ctx (depth + 1) b n pred
  | Jnl.Test f -> check_at_d ctx depth n f && pred n
  | Jnl.Star a ->
    let seen = Hashtbl.create 16 in
    let rec visit m =
      if Hashtbl.mem seen m then false
      else begin
        Hashtbl.add seen m ();
        pred m || find_succ ctx (depth + 1) a m visit
      end
    in
    visit n

and check_at_d ctx depth n (f : Jnl.form) =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match f with
  | Jnl.True -> true
  | Jnl.Not g -> not (check_at_d ctx (depth + 1) n g)
  | Jnl.And (a, b) ->
    check_at_d ctx (depth + 1) n a && check_at_d ctx (depth + 1) n b
  | Jnl.Or (a, b) ->
    check_at_d ctx (depth + 1) n a || check_at_d ctx (depth + 1) n b
  | Jnl.Exists p -> find_succ ctx (depth + 1) p n (fun _ -> true)
  | Jnl.Eq_doc (p, v) ->
    Obs.Metrics.incr "jnl.eq_doc";
    find_succ ctx (depth + 1) p n (fun m -> Tree.equal_to_value ctx.t m v)
  | Jnl.Eq_paths (a, b) ->
    Obs.Metrics.incr "jnl.eq_paths";
    eq_paths_at ctx depth n a b

let check_at ctx n f = check_at_d ctx 0 n f

let eval_pairs ctx p =
  Seq.fold_left
    (fun acc n ->
      List.fold_left (fun acc m -> (n, m) :: acc) acc (List.rev (succs ctx p n)))
    [] (Tree.nodes ctx.t)
  |> List.rev

let select ?budget v p =
  let t = Tree.of_value ?budget v in
  let ctx = context ?budget t in
  List.map (Tree.value_at t) (succs ctx p Tree.root)

let satisfies ?budget v f =
  let ctx = context ?budget (Tree.of_value ?budget v) in
  check_at ctx Tree.root f

let satisfies_bounded ?budget v f =
  match satisfies ?budget v f with
  | b -> Ok b
  | exception Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)
