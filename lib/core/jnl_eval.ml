module Tree = Jsont.Tree

type ctx = {
  t : Tree.t;
  memo : (Jnl.form, Bitset.t) Hashtbl.t;
  langs : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t;
}

let context t = { t; memo = Hashtbl.create 16; langs = Hashtbl.create 8 }
let tree ctx = ctx.t

let lang ctx e =
  match Hashtbl.find_opt ctx.langs e with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Hashtbl.add ctx.langs e l;
    l

let n_nodes ctx = Tree.node_count ctx.t

(* Does the incoming edge of [child] match one navigation step?  Array
   steps may use negative indices (from the end). *)
let edge_matches_idx ctx child i =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Pos j ->
    if i >= 0 then j = i
    else begin
      match Tree.parent ctx.t child with
      | Some p -> j = Tree.arity ctx.t p + i
      | None -> false
    end
  | Tree.Key _ | Tree.Root -> false

let edge_matches_range ctx child i j =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Pos p -> p >= i && (match j with None -> true | Some j -> p <= j)
  | Tree.Key _ | Tree.Root -> false

let edge_matches_key ctx child w =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Key k -> String.equal k w
  | Tree.Pos _ | Tree.Root -> false

let edge_matches_keys ctx child l =
  match Tree.edge_from_parent ctx.t child with
  | Tree.Key k -> Rexp.Lang.matches l k
  | Tree.Pos _ | Tree.Root -> false

(* ---- set-at-a-time evaluation ------------------------------------------ *)

(* [pre_exists ctx α target] = { n | ∃n' . (n,n') ∈ ⟦α⟧ ∧ n' ∈ target } *)
let rec pre_exists ctx (p : Jnl.path) target =
  match p with
  | Jnl.Self -> target
  | Jnl.Key w ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_key ctx child w then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Keys e ->
    let l = lang ctx e in
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_keys ctx child l then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Idx i ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_idx ctx child i then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Range (i, j) ->
    let out = Bitset.create (n_nodes ctx) in
    Bitset.iter
      (fun child ->
        if edge_matches_range ctx child i j then
          match Tree.parent ctx.t child with
          | Some par -> Bitset.add out par
          | None -> ())
      target;
    out
  | Jnl.Seq (a, b) -> pre_exists ctx a (pre_exists ctx b target)
  | Jnl.Alt (a, b) ->
    Bitset.union (pre_exists ctx a target) (pre_exists ctx b target)
  | Jnl.Test f -> Bitset.inter target (eval ctx f)
  | Jnl.Star a ->
    (* least fixpoint S ⊇ target with pre(a, S) ⊆ S; converges within
       height(J) iterations because ⟦a⟧ only relates ancestors to
       descendants *)
    let s = Bitset.copy target in
    let continue = ref true in
    while !continue do
      let s' = pre_exists ctx a s in
      continue := Bitset.union_into s' ~into:s
    done;
    s

and eval ctx (f : Jnl.form) =
  match Hashtbl.find_opt ctx.memo f with
  | Some s -> s
  | None ->
    let result =
      match f with
      | Jnl.True -> Bitset.full (n_nodes ctx)
      | Jnl.Not g -> Bitset.complement (eval ctx g)
      | Jnl.And (a, b) -> Bitset.inter (eval ctx a) (eval ctx b)
      | Jnl.Or (a, b) -> Bitset.union (eval ctx a) (eval ctx b)
      | Jnl.Exists p -> pre_exists ctx p (Bitset.full (n_nodes ctx))
      | Jnl.Eq_doc (p, v) -> pre_exists ctx p (nodes_equal_to ctx v)
      | Jnl.Eq_paths (a, b) ->
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n -> if eq_paths_at ctx n a b then Bitset.add out n)
          (Tree.nodes ctx.t);
        out
    in
    Hashtbl.replace ctx.memo f result;
    result

(* nodes whose subtree equals the constant document [v] *)
and nodes_equal_to ctx v =
  let out = Bitset.create (n_nodes ctx) in
  let vt = Tree.of_value v in
  let h = Tree.subtree_hash vt Tree.root in
  Seq.iter
    (fun n ->
      if Tree.subtree_hash ctx.t n = h && Tree.equal_across ctx.t n vt Tree.root
      then Bitset.add out n)
    (Tree.nodes ctx.t);
  out

and eq_paths_at ctx n a b =
  let sa = succs ctx a n in
  match sa with
  | [] -> false
  | _ ->
    let by_hash = Hashtbl.create (List.length sa) in
    List.iter
      (fun m -> Hashtbl.add by_hash (Tree.subtree_hash ctx.t m) m)
      sa;
    List.exists
      (fun m ->
        List.exists
          (fun m' -> Tree.equal_subtrees ctx.t m m')
          (Hashtbl.find_all by_hash (Tree.subtree_hash ctx.t m)))
      (succs ctx b n)

(* ---- successor enumeration --------------------------------------------- *)

and succs ctx (p : Jnl.path) n =
  match p with
  | Jnl.Self -> [ n ]
  | Jnl.Key w -> Option.to_list (Tree.lookup ctx.t n w)
  | Jnl.Idx i -> Option.to_list (Tree.nth ctx.t n i)
  | Jnl.Keys e ->
    let l = lang ctx e in
    List.filter_map
      (fun (k, c) -> if Rexp.Lang.matches l k then Some c else None)
      (Tree.obj_children ctx.t n)
  | Jnl.Range (i, j) ->
    let kids = Tree.arr_children ctx.t n in
    let hi =
      match j with
      | None -> Array.length kids - 1
      | Some j -> min j (Array.length kids - 1)
    in
    let lo = max 0 i in
    if hi < lo then []
    else List.init (hi - lo + 1) (fun k -> kids.(lo + k))
  | Jnl.Seq (a, b) ->
    let out = List.concat_map (succs ctx b) (succs ctx a n) in
    List.sort_uniq Int.compare out
  | Jnl.Alt (a, b) ->
    List.sort_uniq Int.compare (succs ctx a n @ succs ctx b n)
  | Jnl.Test f -> if holds ctx n f then [ n ] else []
  | Jnl.Star a ->
    (* BFS closure *)
    let seen = Hashtbl.create 16 in
    let rec visit acc = function
      | [] -> acc
      | m :: rest ->
        if Hashtbl.mem seen m then visit acc rest
        else begin
          Hashtbl.add seen m ();
          visit (m :: acc) (succs ctx a m @ rest)
        end
    in
    List.sort Int.compare (visit [] [ n ])

and holds ctx n f = Bitset.mem (eval ctx f) n

(* ---- single-node, short-circuiting check -------------------------------- *)

(* [find_succ ctx α n pred] — is there an α-successor of n satisfying
   [pred]?  CPS style so Seq short-circuits. *)
let rec find_succ ctx (p : Jnl.path) n pred =
  match p with
  | Jnl.Self -> pred n
  | Jnl.Key w -> (
    match Tree.lookup ctx.t n w with Some c -> pred c | None -> false)
  | Jnl.Idx i -> (
    match Tree.nth ctx.t n i with Some c -> pred c | None -> false)
  | Jnl.Keys e ->
    let l = lang ctx e in
    List.exists
      (fun (k, c) -> Rexp.Lang.matches l k && pred c)
      (Tree.obj_children ctx.t n)
  | Jnl.Range (i, j) ->
    let kids = Tree.arr_children ctx.t n in
    let hi =
      match j with
      | None -> Array.length kids - 1
      | Some j -> min j (Array.length kids - 1)
    in
    let lo = max 0 i in
    let rec go k = k <= hi && (pred kids.(k) || go (k + 1)) in
    go lo
  | Jnl.Seq (a, b) -> find_succ ctx a n (fun m -> find_succ ctx b m pred)
  | Jnl.Alt (a, b) -> find_succ ctx a n pred || find_succ ctx b n pred
  | Jnl.Test f -> check_at ctx n f && pred n
  | Jnl.Star a ->
    let seen = Hashtbl.create 16 in
    let rec visit m =
      if Hashtbl.mem seen m then false
      else begin
        Hashtbl.add seen m ();
        pred m || find_succ ctx a m visit
      end
    in
    visit n

and check_at ctx n (f : Jnl.form) =
  match f with
  | Jnl.True -> true
  | Jnl.Not g -> not (check_at ctx n g)
  | Jnl.And (a, b) -> check_at ctx n a && check_at ctx n b
  | Jnl.Or (a, b) -> check_at ctx n a || check_at ctx n b
  | Jnl.Exists p -> find_succ ctx p n (fun _ -> true)
  | Jnl.Eq_doc (p, v) ->
    find_succ ctx p n (fun m -> Tree.equal_to_value ctx.t m v)
  | Jnl.Eq_paths (a, b) -> eq_paths_at ctx n a b

let eval_pairs ctx p =
  Seq.fold_left
    (fun acc n ->
      List.fold_left (fun acc m -> (n, m) :: acc) acc (List.rev (succs ctx p n)))
    [] (Tree.nodes ctx.t)
  |> List.rev

let select v p =
  let t = Tree.of_value v in
  let ctx = context t in
  List.map (Tree.value_at t) (succs ctx p Tree.root)

let satisfies v f =
  let ctx = context (Tree.of_value v) in
  check_at ctx Tree.root f
