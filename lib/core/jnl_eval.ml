module Tree = Jsont.Tree

type ctx = {
  t : Tree.t;
  budget : Obs.Budget.t;
  use_index : bool;
  memo : (Jnl.form, Bitset.t) Hashtbl.t;
  langs : (Rexp.Syntax.t, Rexp.Lang.t) Hashtbl.t;
  keys_sets : (Rexp.Syntax.t, Bitset.t) Hashtbl.t;
}

let context ?(budget = Obs.Budget.unlimited) ?(use_index = true) t =
  {
    t;
    budget;
    use_index;
    memo = Hashtbl.create 16;
    langs = Hashtbl.create 8;
    keys_sets = Hashtbl.create 8;
  }

let tree ctx = ctx.t

let lang ctx e =
  match Hashtbl.find_opt ctx.langs e with
  | Some l -> l
  | None ->
    let l = Rexp.Lang.of_syntax e in
    Hashtbl.add ctx.langs e l;
    l

let n_nodes ctx = Tree.node_count ctx.t

(* ---- set-at-a-time evaluation ------------------------------------------ *)

(* Budget accounting: boolean connectives and fixpoints sweep the node
   set once and cost [n_nodes] fuel; formula recursion depth is checked
   against the budget's ceiling so adversarially deep formulas raise
   {!Obs.Budget.Exhausted} instead of [Stack_overflow].  A navigation
   step costs [n_nodes] on the sweep fallback but only [1 + touched] on
   the label-indexed strategies, where [touched] is the number of edges
   actually carrying the step's label — plus a one-off [n_nodes] the
   first time the tree's label index is built. *)

(* Sweep fallback: test every member of [target] against the step's
   edge relation.  The only strategy available with [use_index:false],
   and the baseline the index is benchmarked against. *)
let sweep_pre ctx target matches =
  Obs.Budget.burn ctx.budget (n_nodes ctx);
  Obs.Metrics.incr "jnl.eval.sweep";
  let out = Bitset.create (n_nodes ctx) in
  Bitset.iter
    (fun child ->
      if matches child then
        let par = Tree.parent_id ctx.t child in
        if par >= 0 then Bitset.add out par)
    target;
  out

(* [true] iff the indexed strategy should run; forces the (cached)
   label index so the build is charged to this context's budget. *)
let indexed ctx =
  ctx.use_index
  && begin
       Tree.build_index ~budget:ctx.budget ctx.t;
       Obs.Metrics.incr "jnl.index.hit";
       true
     end

(* All nodes whose incoming edge key matches the expression — cached
   per syntax, built from the key index (one budget unit per distinct
   key, not per node). *)
let keys_set ctx e =
  match Hashtbl.find_opt ctx.keys_sets e with
  | Some s -> s
  | None ->
    let l = lang ctx e in
    let s = Bitset.create (n_nodes ctx) in
    Tree.iter_key_index
      (fun k bucket ->
        Obs.Budget.burn ctx.budget 1;
        if Rexp.Lang.matches l k then Array.iter (Bitset.add s) bucket)
      ctx.t;
    Hashtbl.add ctx.keys_sets e s;
    s

(* [pre_exists ctx d α target] = { n | ∃n' . (n,n') ∈ ⟦α⟧ ∧ n' ∈ target } *)
let rec pre_exists ctx depth (p : Jnl.path) target =
  Obs.Budget.check_depth ctx.budget depth;
  match p with
  | Jnl.Self ->
    Obs.Budget.burn ctx.budget 1;
    target
  | Jnl.Key w ->
    if indexed ctx then begin
      let bucket = Tree.key_index ctx.t w in
      Obs.Budget.burn ctx.budget (1 + Array.length bucket);
      let out = Bitset.create (n_nodes ctx) in
      Array.iter
        (fun child ->
          if Bitset.mem target child then
            Bitset.add out (Tree.parent_id ctx.t child))
        bucket;
      out
    end
    else sweep_pre ctx target (fun c -> Jnl_step.edge_matches_key ctx.t c w)
  | Jnl.Keys e ->
    if indexed ctx then begin
      let out = Bitset.copy (keys_set ctx e) in
      ignore (Bitset.inter_into target ~into:out);
      Obs.Budget.burn ctx.budget (1 + Bitset.cardinal out);
      let parents = Bitset.create (n_nodes ctx) in
      Bitset.iter
        (fun child -> Bitset.add parents (Tree.parent_id ctx.t child))
        out;
      parents
    end
    else
      let l = lang ctx e in
      sweep_pre ctx target (fun c -> Jnl_step.edge_matches_keys ctx.t c l)
  | Jnl.Idx i ->
    if indexed ctx then begin
      let out = Bitset.create (n_nodes ctx) in
      (if i >= 0 then begin
         (* non-negative index: exactly the [Pos i] bucket *)
         let bucket = Tree.pos_index ctx.t i in
         Obs.Budget.burn ctx.budget (1 + Array.length bucket);
         Array.iter
           (fun child ->
             if Bitset.mem target child then
               Bitset.add out (Tree.parent_id ctx.t child))
           bucket
       end
       else begin
         (* negative index resolves per parent arity: probe each array *)
         let arrays = Tree.arr_index ctx.t in
         Obs.Budget.burn ctx.budget (1 + Array.length arrays);
         Array.iter
           (fun par ->
             match Jnl_step.idx_succ ctx.t par i with
             | Some child -> if Bitset.mem target child then Bitset.add out par
             | None -> ())
           arrays
       end);
      out
    end
    else sweep_pre ctx target (fun c -> Jnl_step.edge_matches_idx ctx.t c i)
  | Jnl.Range (i, j) ->
    if indexed ctx then begin
      let out = Bitset.create (n_nodes ctx) in
      let nonneg =
        i >= 0 && (match j with None -> true | Some j -> j >= 0)
      in
      (if nonneg then begin
         (* window of [Pos p] buckets, capped at the largest arity *)
         let hi =
           match j with
           | None -> Tree.max_arity ctx.t - 1
           | Some j -> min j (Tree.max_arity ctx.t - 1)
         in
         let touched = ref 1 in
         for p = i to hi do
           let bucket = Tree.pos_index ctx.t p in
           touched := !touched + Array.length bucket;
           Array.iter
             (fun child ->
               if Bitset.mem target child then
                 Bitset.add out (Tree.parent_id ctx.t child))
             bucket
         done;
         Obs.Budget.burn ctx.budget !touched
       end
       else begin
         (* a negative bound resolves per parent arity: probe each array *)
         let arrays = Tree.arr_index ctx.t in
         Obs.Budget.burn ctx.budget (1 + Array.length arrays);
         Array.iter
           (fun par ->
             if
               Jnl_step.range_exists ctx.t par i j (fun child ->
                   Bitset.mem target child)
             then Bitset.add out par)
           arrays
       end);
      out
    end
    else sweep_pre ctx target (fun c -> Jnl_step.edge_matches_range ctx.t c i j)
  | Jnl.Seq (a, b) ->
    Obs.Budget.burn ctx.budget 1;
    pre_exists ctx (depth + 1) a (pre_exists ctx (depth + 1) b target)
  | Jnl.Alt (a, b) ->
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    Bitset.union
      (pre_exists ctx (depth + 1) a target)
      (pre_exists ctx (depth + 1) b target)
  | Jnl.Test f ->
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    Bitset.inter target (eval_at ctx (depth + 1) f)
  | Jnl.Star a ->
    (* least fixpoint S ⊇ target with pre(a, S) ⊆ S; converges within
       height(J) iterations because ⟦a⟧ only relates ancestors to
       descendants *)
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    let s = Bitset.copy target in
    let continue = ref true in
    while !continue do
      let s' = pre_exists ctx (depth + 1) a s in
      continue := Bitset.union_into s' ~into:s
    done;
    s

and eval_at ctx depth (f : Jnl.form) =
  match Hashtbl.find_opt ctx.memo f with
  | Some s -> s
  | None ->
    Obs.Budget.check_depth ctx.budget depth;
    Obs.Budget.burn ctx.budget (n_nodes ctx);
    let result =
      match f with
      | Jnl.True -> Bitset.full (n_nodes ctx)
      | Jnl.Not g -> Bitset.complement (eval_at ctx (depth + 1) g)
      | Jnl.And (a, b) ->
        Bitset.inter (eval_at ctx (depth + 1) a) (eval_at ctx (depth + 1) b)
      | Jnl.Or (a, b) ->
        Bitset.union (eval_at ctx (depth + 1) a) (eval_at ctx (depth + 1) b)
      | Jnl.Exists p ->
        pre_exists ctx (depth + 1) p (Bitset.full (n_nodes ctx))
      | Jnl.Eq_doc (p, v) ->
        Obs.Metrics.incr "jnl.eq_doc";
        pre_exists ctx (depth + 1) p (nodes_equal_to ctx v)
      | Jnl.Eq_paths (a, b) ->
        Obs.Metrics.incr "jnl.eq_paths";
        let out = Bitset.create (n_nodes ctx) in
        Seq.iter
          (fun n -> if eq_paths_at ctx depth n a b then Bitset.add out n)
          (Tree.nodes ctx.t);
        out
    in
    Hashtbl.replace ctx.memo f result;
    result

(* nodes whose subtree equals the constant document [v] *)
and nodes_equal_to ctx v =
  let out = Bitset.create (n_nodes ctx) in
  let vt = Tree.of_value ~budget:ctx.budget v in
  let h = Tree.subtree_hash vt Tree.root in
  Seq.iter
    (fun n ->
      if Tree.subtree_hash ctx.t n = h && Tree.equal_across ctx.t n vt Tree.root
      then Bitset.add out n)
    (Tree.nodes ctx.t);
  out

and eq_paths_at ctx depth n a b =
  let sa = succs_at ctx (depth + 1) a n in
  match sa with
  | [] -> false
  | _ ->
    let by_hash = Hashtbl.create (List.length sa) in
    List.iter
      (fun m -> Hashtbl.add by_hash (Tree.subtree_hash ctx.t m) m)
      sa;
    List.exists
      (fun m ->
        List.exists
          (fun m' -> Tree.equal_subtrees ctx.t m m')
          (Hashtbl.find_all by_hash (Tree.subtree_hash ctx.t m)))
      (succs_at ctx (depth + 1) b n)

(* ---- successor enumeration --------------------------------------------- *)

and succs_at ctx depth (p : Jnl.path) n =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match p with
  | Jnl.Self -> [ n ]
  | Jnl.Key w -> Option.to_list (Jnl_step.key_succ ctx.t n w)
  | Jnl.Idx i -> Option.to_list (Jnl_step.idx_succ ctx.t n i)
  | Jnl.Keys e -> Jnl_step.keys_succs ctx.t n (lang ctx e)
  | Jnl.Range (i, j) -> Jnl_step.range_succs ctx.t n i j
  | Jnl.Seq (a, b) ->
    let out =
      List.concat_map (succs_at ctx (depth + 1) b) (succs_at ctx (depth + 1) a n)
    in
    List.sort_uniq Int.compare out
  | Jnl.Alt (a, b) ->
    List.sort_uniq Int.compare
      (succs_at ctx (depth + 1) a n @ succs_at ctx (depth + 1) b n)
  | Jnl.Test f -> if Bitset.mem (eval_at ctx (depth + 1) f) n then [ n ] else []
  | Jnl.Star a ->
    (* BFS closure; each node enters [seen] once, so fuel is burnt at
       most [n_nodes] times by the inner [succs_at] calls *)
    let seen = Hashtbl.create 16 in
    let rec visit acc = function
      | [] -> acc
      | m :: rest ->
        if Hashtbl.mem seen m then visit acc rest
        else begin
          Hashtbl.add seen m ();
          visit (m :: acc) (succs_at ctx (depth + 1) a m @ rest)
        end
    in
    List.sort Int.compare (visit [] [ n ])

let eval ctx f = eval_at ctx 0 f
let pre ctx p target = pre_exists ctx 0 p target
let holds ctx n f = Bitset.mem (eval ctx f) n
let succs ctx p n = succs_at ctx 0 p n

(* ---- single-node, short-circuiting check -------------------------------- *)

(* [find_succ ctx d α n pred] — is there an α-successor of n satisfying
   [pred]?  CPS style so Seq short-circuits.  One fuel unit per visit;
   [Star] visits each node at most once ([seen]). *)
let rec find_succ ctx depth (p : Jnl.path) n pred =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match p with
  | Jnl.Self -> pred n
  | Jnl.Key w -> (
    match Jnl_step.key_succ ctx.t n w with Some c -> pred c | None -> false)
  | Jnl.Idx i -> (
    match Jnl_step.idx_succ ctx.t n i with Some c -> pred c | None -> false)
  | Jnl.Keys e -> Jnl_step.keys_exists ctx.t n (lang ctx e) pred
  | Jnl.Range (i, j) -> Jnl_step.range_exists ctx.t n i j pred
  | Jnl.Seq (a, b) ->
    find_succ ctx (depth + 1) a n (fun m -> find_succ ctx (depth + 1) b m pred)
  | Jnl.Alt (a, b) ->
    find_succ ctx (depth + 1) a n pred || find_succ ctx (depth + 1) b n pred
  | Jnl.Test f -> check_at_d ctx depth n f && pred n
  | Jnl.Star a ->
    let seen = Hashtbl.create 16 in
    let rec visit m =
      if Hashtbl.mem seen m then false
      else begin
        Hashtbl.add seen m ();
        pred m || find_succ ctx (depth + 1) a m visit
      end
    in
    visit n

and check_at_d ctx depth n (f : Jnl.form) =
  Obs.Budget.check_depth ctx.budget depth;
  Obs.Budget.burn ctx.budget 1;
  match f with
  | Jnl.True -> true
  | Jnl.Not g -> not (check_at_d ctx (depth + 1) n g)
  | Jnl.And (a, b) ->
    check_at_d ctx (depth + 1) n a && check_at_d ctx (depth + 1) n b
  | Jnl.Or (a, b) ->
    check_at_d ctx (depth + 1) n a || check_at_d ctx (depth + 1) n b
  | Jnl.Exists p -> find_succ ctx (depth + 1) p n (fun _ -> true)
  | Jnl.Eq_doc (p, v) ->
    Obs.Metrics.incr "jnl.eq_doc";
    find_succ ctx (depth + 1) p n (fun m -> Tree.equal_to_value ctx.t m v)
  | Jnl.Eq_paths (a, b) ->
    Obs.Metrics.incr "jnl.eq_paths";
    eq_paths_at ctx depth n a b

let check_at ctx n f = check_at_d ctx 0 n f

let eval_pairs ctx p =
  Seq.fold_left
    (fun acc n ->
      List.fold_left (fun acc m -> (n, m) :: acc) acc (List.rev (succs ctx p n)))
    [] (Tree.nodes ctx.t)
  |> List.rev

let select ?budget ?use_index v p =
  let t = Tree.of_value ?budget v in
  let ctx = context ?budget ?use_index t in
  List.map (Tree.value_at t) (succs ctx p Tree.root)

let satisfies ?budget ?use_index v f =
  let ctx = context ?budget ?use_index (Tree.of_value ?budget v) in
  check_at ctx Tree.root f

let satisfies_bounded ?budget ?use_index v f =
  match satisfies ?budget ?use_index v f with
  | b -> Ok b
  | exception Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)
