module Lexer = Jsont.Lexer
module Value = Jsont.Value

(* ---- compiling ~(A) away ------------------------------------------------- *)

let rec eq_formula (v : Value.t) : Jsl.t =
  match v with
  | Value.Num n -> Jsl.conj [ Jsl.Test Jsl.Is_int; Jsl.Test (Jsl.Min n); Jsl.Test (Jsl.Max n) ]
  | Value.Str s ->
    Jsl.And (Jsl.Test Jsl.Is_str, Jsl.Test (Jsl.Pattern (Rexp.Syntax.literal s)))
  | Value.Arr vs ->
    let n = List.length vs in
    Jsl.conj
      (Jsl.Test Jsl.Is_arr :: Jsl.Test (Jsl.Min_ch n) :: Jsl.Test (Jsl.Max_ch n)
      :: List.mapi (fun i v -> Jsl.dia_idx i (eq_formula v)) vs)
  | Value.Obj kvs ->
    let n = List.length kvs in
    (* distinct keys + arity = n pins the object exactly *)
    Jsl.conj
      (Jsl.Test Jsl.Is_obj :: Jsl.Test (Jsl.Min_ch n) :: Jsl.Test (Jsl.Max_ch n)
      :: List.map (fun (k, v) -> Jsl.dia_key k (eq_formula v)) kvs)

let rec expand_eq (f : Jsl.t) : Jsl.t =
  match f with
  | Jsl.True | Jsl.Var _ -> f
  | Jsl.Test (Jsl.Eq_doc v) -> eq_formula v
  | Jsl.Test _ -> f
  | Jsl.Not g -> Jsl.Not (expand_eq g)
  | Jsl.And (a, b) -> Jsl.And (expand_eq a, expand_eq b)
  | Jsl.Or (a, b) -> Jsl.Or (expand_eq a, expand_eq b)
  | Jsl.Dia_keys (e, g) -> Jsl.Dia_keys (e, expand_eq g)
  | Jsl.Box_keys (e, g) -> Jsl.Box_keys (e, expand_eq g)
  | Jsl.Dia_range (i, j, g) -> Jsl.Dia_range (i, j, expand_eq g)
  | Jsl.Box_range (i, j, g) -> Jsl.Box_range (i, j, expand_eq g)

let word_of_syntax = Rexp.Syntax.as_word

let supported f =
  let f = expand_eq f in
  let rec check (f : Jsl.t) =
    match f with
    | Jsl.True | Jsl.Test (Jsl.Is_obj | Jsl.Is_arr | Jsl.Is_str | Jsl.Is_int)
    | Jsl.Test (Jsl.Pattern _ | Jsl.Min _ | Jsl.Max _ | Jsl.Mult_of _)
    | Jsl.Test (Jsl.Min_ch _ | Jsl.Max_ch _) ->
      Ok ()
    | Jsl.Test Jsl.Unique -> Error "Unique requires subtree comparisons"
    | Jsl.Test (Jsl.Eq_doc _) -> assert false (* expanded away *)
    | Jsl.Var v -> Error (Printf.sprintf "free recursion symbol $%s" v)
    | Jsl.Not g -> check g
    | Jsl.And (a, b) | Jsl.Or (a, b) -> (
      match check a with Ok () -> check b | Error _ as e -> e)
    | Jsl.Dia_keys (e, g) | Jsl.Box_keys (e, g) -> (
      match word_of_syntax e with
      | Some _ -> check g
      | None -> Error "non-deterministic key modality (regular expression)")
    | Jsl.Dia_range (i, Some j, g) | Jsl.Box_range (i, Some j, g) ->
      if i = j then check g else Error "non-deterministic index range"
    | Jsl.Dia_range (_, None, _) | Jsl.Box_range (_, None, _) ->
      Error "unbounded index range"
  in
  check f

(* ---- the streaming evaluator --------------------------------------------- *)

type stats = { tokens : int; peak_obligations : int }

exception Stream_error of string

type engine = {
  lx : Lexer.t;
  budget : Obs.Budget.t;
  mutable tokens : int;
  mutable live : int;
  mutable peak : int;
}

let next eng =
  eng.tokens <- eng.tokens + 1;
  Obs.Budget.burn eng.budget 1;
  Lexer.next eng.lx

(* same accounting as [next], but string literals are validated without
   being decoded — the skip path discards them anyway *)
let next_skip eng =
  eng.tokens <- eng.tokens + 1;
  Obs.Budget.burn eng.budget 1;
  Lexer.next_skip eng.lx

let peek eng = Lexer.peek eng.lx

let bad fmt = Format.kasprintf (fun s -> raise (Stream_error s)) fmt

(* Consume one complete value without building it, in memory
   proportional to its nesting depth plus the keys of open objects.
   [depth] is the nesting depth of the skipped value itself, so the
   budget's depth ceiling and the duplicate-key / strict-syntax /
   model-admission checks apply to skipped subtrees exactly as
   [eval_value] applies them to evaluated ones — same errors, same
   per-token fuel, same depth accounting.  (The blind token-counting
   skipper this replaces accepted [\[:\]], never depth-checked scalars
   and let duplicate keys through; the differential fuzz in [test_obs]
   pins the agreement now.)  All calls are tail calls, so arbitrarily
   deep inputs run in constant stack and die on the budget, not on
   [Stack_overflow]. *)
type skip_frame =
  | Sk_obj of (string, unit) Hashtbl.t * int  (* seen keys, container depth *)
  | Sk_arr of int

let skip_value eng depth =
  let rec value stack d =
    Obs.Budget.check_depth eng.budget d;
    let _, tok = next_skip eng in
    match tok with
    | Lexer.Lbrace -> obj_first stack d
    | Lexer.Lbracket ->
      let _, tok = peek eng in
      if tok = Lexer.Rbracket then begin
        ignore (next_skip eng);
        closed stack
      end
      else value (Sk_arr d :: stack) (d + 1)
    | Lexer.String _ | Lexer.Nat _ -> closed stack
    | Lexer.Neg_int _ | Lexer.Float _ | Lexer.True | Lexer.False | Lexer.Null ->
      bad "value outside the model"
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof ->
      bad "expected a value"
  and obj_first stack d =
    (* keys are decoded ([next], not [next_skip]): duplicate detection
       compares their contents *)
    let _, tok = next eng in
    match tok with
    | Lexer.Rbrace -> closed stack
    | Lexer.String k ->
      let seen = Hashtbl.create 8 in
      Hashtbl.add seen k ();
      colon_then (Sk_obj (seen, d) :: stack) d
    | _ -> bad "expected a key or '}'"
  and colon_then stack d =
    let _, colon = next eng in
    if colon <> Lexer.Colon then bad "expected ':'";
    value stack (d + 1)
  and closed stack =
    match stack with
    | [] -> ()
    | Sk_obj (seen, d) :: tl -> (
      let _, sep = next eng in
      match sep with
      | Lexer.Comma -> (
        let _, tok = next eng in
        match tok with
        | Lexer.String k ->
          if Hashtbl.mem seen k then bad "duplicate key %S" k;
          Hashtbl.add seen k ();
          colon_then stack d
        | _ -> bad "expected a key or '}'")
      | Lexer.Rbrace -> closed tl
      | _ -> bad "expected ',' or '}'")
    | Sk_arr d :: tl -> (
      let _, sep = next eng in
      match sep with
      | Lexer.Comma -> value stack (d + 1)
      | Lexer.Rbracket -> closed tl
      | _ -> bad "expected ',' or ']'")
  in
  value [] depth

type node_kind =
  | At_int of int
  | At_str of string
  | At_obj
  | At_arr

(* one node's worth of evaluation state *)
let rec eval_value eng depth (obls : Jsl.t list) : bool list =
  Obs.Budget.check_depth eng.budget depth;
  eng.live <- eng.live + List.length obls;
  if eng.live > eng.peak then eng.peak <- eng.live;
  (* collect the distinct child obligations: key/index -> operand list *)
  let key_obls : (string, Jsl.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let idx_obls : (int, Jsl.t list ref) Hashtbl.t = Hashtbl.create 8 in
  let add tbl k g =
    match Hashtbl.find_opt tbl k with
    | Some l -> if not (List.exists (Jsl.equal g) !l) then l := g :: !l
    | None -> Hashtbl.add tbl k (ref [ g ])
  in
  let rec collect (f : Jsl.t) =
    match f with
    | Jsl.True | Jsl.Test _ -> ()
    | Jsl.Var _ -> bad "free recursion symbol"
    | Jsl.Not g -> collect g
    | Jsl.And (a, b) | Jsl.Or (a, b) ->
      collect a;
      collect b
    | Jsl.Dia_keys (e, g) | Jsl.Box_keys (e, g) -> (
      match word_of_syntax e with
      | Some w -> add key_obls w g
      | None -> bad "non-deterministic key modality")
    | Jsl.Dia_range (i, Some j, g) | Jsl.Box_range (i, Some j, g) when i = j ->
      add idx_obls i g
    | Jsl.Dia_range _ | Jsl.Box_range _ -> bad "non-deterministic index range"
  in
  List.iter collect obls;
  (* child results: (key|idx, formula) -> bool; presence separately *)
  let key_results : (string * Jsl.t, bool) Hashtbl.t = Hashtbl.create 8 in
  let idx_results : (int * Jsl.t, bool) Hashtbl.t = Hashtbl.create 8 in
  let keys_seen : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let arity = ref 0 in
  (* stream the node *)
  let kind =
    let pos, tok = next eng in
    ignore pos;
    match tok with
    | Lexer.Nat n -> At_int n
    | Lexer.String s -> At_str s
    | Lexer.Lbrace ->
      let rec members first =
        let _, tok = next eng in
        match tok with
        | Lexer.Rbrace when first -> ()
        | Lexer.String k ->
          if Hashtbl.mem keys_seen k then bad "duplicate key %S" k;
          Hashtbl.add keys_seen k ();
          incr arity;
          let _, colon = next eng in
          if colon <> Lexer.Colon then bad "expected ':'";
          (match Hashtbl.find_opt key_obls k with
          | Some gs ->
            let results = eval_value eng (depth + 1) !gs in
            List.iter2
              (fun g r -> Hashtbl.replace key_results (k, g) r)
              !gs results
          | None -> skip_value eng (depth + 1));
          let _, sep = next eng in
          (match sep with
          | Lexer.Comma -> members false
          | Lexer.Rbrace -> ()
          | _ -> bad "expected ',' or '}'")
        | _ -> bad "expected a key or '}'"
      in
      members true;
      At_obj
    | Lexer.Lbracket ->
      let rec elements i =
        let _, tok = peek eng in
        if tok = Lexer.Rbracket && i = 0 then ignore (next eng)
        else begin
          incr arity;
          (match Hashtbl.find_opt idx_obls i with
          | Some gs ->
            let results = eval_value eng (depth + 1) !gs in
            List.iter2
              (fun g r -> Hashtbl.replace idx_results (i, g) r)
              !gs results
          | None -> skip_value eng (depth + 1));
          let _, sep = next eng in
          match sep with
          | Lexer.Comma -> elements (i + 1)
          | Lexer.Rbracket -> ()
          | _ -> bad "expected ',' or ']'"
        end
      in
      elements 0;
      At_arr
    | Lexer.Neg_int _ | Lexer.Float _ | Lexer.True | Lexer.False | Lexer.Null ->
      bad "value outside the model"
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof ->
      bad "expected a value"
  in
  (* resolve the obligations against what we saw *)
  let atom_truth (nt : Jsl.node_test) =
    match nt with
    | Jsl.Is_obj -> kind = At_obj
    | Jsl.Is_arr -> kind = At_arr
    | Jsl.Is_str -> ( match kind with At_str _ -> true | _ -> false)
    | Jsl.Is_int -> ( match kind with At_int _ -> true | _ -> false)
    | Jsl.Pattern e -> (
      match kind with
      | At_str s -> Rexp.Deriv.matches e s
      | _ -> false)
    | Jsl.Min i -> ( match kind with At_int v -> v >= i | _ -> false)
    | Jsl.Max i -> ( match kind with At_int v -> v <= i | _ -> false)
    | Jsl.Mult_of i -> (
      match kind with At_int v -> i <> 0 && v mod i = 0 | _ -> false)
    | Jsl.Min_ch i -> !arity >= i
    | Jsl.Max_ch i -> !arity <= i
    | Jsl.Unique -> bad "Unique is not streamable"
    | Jsl.Eq_doc _ -> bad "~(A) should have been expanded"
  in
  let rec truth (f : Jsl.t) =
    match f with
    | Jsl.True -> true
    | Jsl.Var _ -> bad "free recursion symbol"
    | Jsl.Not g -> not (truth g)
    | Jsl.And (a, b) -> truth a && truth b
    | Jsl.Or (a, b) -> truth a || truth b
    | Jsl.Test nt -> atom_truth nt
    | Jsl.Dia_keys (e, g) -> (
      match word_of_syntax e with
      | Some w -> (
        match Hashtbl.find_opt key_results (w, g) with
        | Some r -> r
        | None -> false)
      | None -> bad "non-deterministic key modality")
    | Jsl.Box_keys (e, g) -> (
      match word_of_syntax e with
      | Some w -> (
        if not (Hashtbl.mem keys_seen w) then true
        else
          match Hashtbl.find_opt key_results (w, g) with
          | Some r -> r
          | None -> bad "missing child result for key %S" w)
      | None -> bad "non-deterministic key modality")
    | Jsl.Dia_range (i, Some j, g) when i = j -> (
      match Hashtbl.find_opt idx_results (i, g) with
      | Some r -> r
      | None -> false)
    | Jsl.Box_range (i, Some j, g) when i = j -> (
      if i >= !arity || kind <> At_arr then true
      else
        match Hashtbl.find_opt idx_results (i, g) with
        | Some r -> r
        | None -> bad "missing child result for index %d" i)
    | Jsl.Dia_range _ | Jsl.Box_range _ -> bad "non-deterministic index range"
  in
  let results = List.map truth obls in
  eng.live <- eng.live - List.length obls;
  results

let validate_with_stats ?budget input f =
  let budget =
    match budget with
    | Some b -> b
    | None -> Obs.Budget.depth_limited Obs.Budget.default_max_depth
  in
  match supported f with
  | Error m -> Error m
  | Ok () -> (
    let f = expand_eq f in
    let eng = { lx = Lexer.create input; budget; tokens = 0; live = 0; peak = 0 } in
    let outcome =
      match
        let results = eval_value eng 0 [ f ] in
        let _, tok = next eng in
        if tok <> Lexer.Eof then bad "trailing content after the document";
        results
      with
      | [ r ] -> Ok (r, { tokens = eng.tokens; peak_obligations = eng.peak })
      | _ -> Error "internal error"
      | exception Stream_error m -> Error m
      | exception Lexer.Error (_, m) -> Error m
      | exception Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)
    in
    Obs.Metrics.add "stream.tokens" eng.tokens;
    outcome)

let validate ?budget input f =
  Result.map fst (validate_with_stats ?budget input f)

let validate_jnl ?budget input f =
  match Translate.jnl_to_jsl f with
  | Error m -> Error ("not streamable: " ^ m)
  | Ok jsl -> (
    match supported jsl with
    | Error m -> Error ("not streamable: " ^ m)
    | Ok () -> validate ?budget input jsl)
