(** Dense sets of tree nodes.

    Formula evaluation manipulates sets of node identifiers
    [0 .. n-1]; this fixed-capacity bitset gives O(n/63) boolean
    connectives and O(1) membership, which keeps the evaluation
    algorithms of Propositions 1, 3 and 6 within their stated
    bounds. *)

type t

val create : int -> t
(** [create n] is the empty set of capacity [n]. *)

val full : int -> t
(** [full n] is [{0, …, n-1}]. *)

val capacity : t -> int
val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val copy : t -> t

val union_into : t -> into:t -> bool
(** [union_into s ~into] adds [s] to [into]; returns [true] when [into]
    changed (for fixpoint loops). *)

val inter_into : t -> into:t -> bool
(** [inter_into s ~into] restricts [into] to [into ∧ s] in place;
    returns [true] when [into] changed.  Used by the label-indexed
    evaluation core to intersect a precomputed per-label set with a
    target set without allocating a third set. *)

val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val cardinal : t -> int
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val of_list : int -> int list -> t
val pp : Format.formatter -> t -> unit
