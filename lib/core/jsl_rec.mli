(** Recursive JSL (Section 5.3): a list of definitions [γᵢ = ϕᵢ] and a
    base expression ψ, capturing JSON Schema's [definitions] / [$ref]
    mechanism (Theorem 3).

    {b Well-formedness.}  The precedence graph has an edge γᵢ → γⱼ when
    γⱼ occurs in ϕᵢ {e outside} the scope of any modal operator; the
    expression is well-formed when this graph is acyclic — the mild
    restriction (from Pezoa et al. [29]) that gives recursion a
    non-paradoxical semantics while still allowing cycles through
    modalities (Examples 2, 3).

    {b Semantics.}  Defined by unfolding to height |J|+1 and replacing
    leftover symbols by ⊥ ({!unfold}); evaluated in PTIME bottom-up by
    height (Proposition 9) by {!validates} / {!sat_table}.  The two
    agree (property-tested). *)

type t = { defs : (string * Jsl.t) list; base : Jsl.t }

val make : defs:(string * Jsl.t) list -> base:Jsl.t -> (t, string) result
(** Builds and checks well-formedness: every used symbol is defined, no
    symbol is defined twice, and the precedence graph is acyclic. *)

val make_exn : defs:(string * Jsl.t) list -> base:Jsl.t -> t
(** @raise Invalid_argument when ill-formed. *)

val well_formed : t -> (unit, string) result

val precedence_graph : t -> (string * string list) list
(** For each definition, the symbols it references outside any modal
    operator. *)

val size : t -> int

val unfold : t -> height:int -> Jsl.t
(** [unfold_J(ψ)]: substitute definitions until every remaining symbol
    sits under at least [height + 1] modal operators, then replace the
    stragglers by ⊥.  Exponential in general — the specification
    semantics, kept for conformance testing. *)

val validates : ?budget:Obs.Budget.t -> Jsont.Value.t -> t -> bool
(** [J ⊨ Δ] by the bottom-up PTIME algorithm of Proposition 9.
    [budget] bounds tree construction and per-node evaluation
    ({!Jsl.context}); exhaustion raises {!Obs.Budget.Exhausted}. *)

val validates_by_unfolding : Jsont.Value.t -> t -> bool
(** [J ⊨ unfold_J(ψ)] — the reference semantics. *)

val sat_table :
  ?budget:Obs.Budget.t -> Jsont.Tree.t -> t -> (string * Bitset.t) list
(** For each definition symbol γ, the set of nodes whose subtree
    satisfies γ (the union over heights of the sets [S_k^J(γ)] from the
    proof of Proposition 9). *)

val holds_at :
  ?budget:Obs.Budget.t -> Jsont.Tree.t -> t -> Jsont.Tree.node -> bool
(** Satisfaction of the base expression at an arbitrary node. *)

val pp : Format.formatter -> t -> unit

(** Concrete syntax: semicolon-terminated definitions followed by the
    base expression, e.g.
    {v  $g1 = box(/.*/)$g2;  $g2 = dia(/.*/)true & box(/.*/)$g1;  $g1  v}
    Semicolons inside regex literals and string constants are
    handled. *)

val to_string : t -> string
val parse : string -> (t, string) result
(** Parses and checks well-formedness. *)

val parse_exn : string -> t
