(** Satisfiability of JSL (Propositions 7 and 10).

    Thin front end over {!Jautomaton.find_model}: compile the formula
    (Lemmas 4/5) and run the profile-saturation emptiness search.
    Every [Sat] answer carries a witness document, which is re-checked
    against the source formula before being returned ([Sat] answers
    are therefore certified); [Unsat] answers are exact when the
    search saturated without truncation. *)

val satisfiable :
  ?max_rounds:int -> ?candidates_per_round:int -> ?max_width:int
  -> ?budget:Obs.Budget.t -> Jsl.t -> Jautomaton.outcome
(** Non-recursive JSL (Proposition 7 setting).  [budget] is passed to
    {!Jautomaton.find_model}; exhaustion yields [Unknown].  The search
    runs under the [phase.sat] timing span. *)

val satisfiable_rec :
  ?max_rounds:int -> ?candidates_per_round:int -> ?max_width:int
  -> ?budget:Obs.Budget.t -> Jsl_rec.t -> Jautomaton.outcome
(** Well-formed recursive JSL (Proposition 10 setting). *)

val models :
  ?limit:int -> ?max_rounds:int -> ?candidates_per_round:int
  -> ?budget:Obs.Budget.t -> Jsl.t -> Jsont.Value.t list
(** Up to [limit] (default 5) pairwise-distinct documents satisfying
    the formula, by iterated witness exclusion: after finding [w], the
    search continues on [ϕ ∧ ¬~(w)].  Useful for generating example
    documents from schemas — the §5.2 remark motivates satisfiability
    by exactly this kind of tooling. *)
