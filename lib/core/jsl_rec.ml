module Tree = Jsont.Tree

type t = { defs : (string * Jsl.t) list; base : Jsl.t }

(* Symbols occurring outside the scope of any modal operator — the
   edges of the precedence graph. *)
let nonmodal_vars f =
  let rec go acc (f : Jsl.t) =
    match f with
    | Jsl.True | Jsl.Test _ -> acc
    | Jsl.Var v -> v :: acc
    | Jsl.Not g -> go acc g
    | Jsl.And (a, b) | Jsl.Or (a, b) -> go (go acc a) b
    | Jsl.Dia_keys _ | Jsl.Box_keys _ | Jsl.Dia_range _ | Jsl.Box_range _ ->
      acc
  in
  List.sort_uniq String.compare (go [] f)

let precedence_graph t =
  List.map (fun (v, def) -> (v, nonmodal_vars def)) t.defs

let well_formed t =
  let defined = List.map fst t.defs in
  let dup =
    let rec find = function
      | [] -> None
      | v :: rest -> if List.mem v rest then Some v else find rest
    in
    find defined
  in
  match dup with
  | Some v -> Error (Printf.sprintf "symbol $%s defined twice" v)
  | None -> (
    let undefined =
      List.concat_map
        (fun f -> List.filter (fun v -> not (List.mem v defined)) (Jsl.free_vars f))
        (t.base :: List.map snd t.defs)
    in
    match undefined with
    | v :: _ -> Error (Printf.sprintf "undefined symbol $%s" v)
    | [] ->
      (* acyclicity of the precedence graph by DFS *)
      let graph = precedence_graph t in
      let color = Hashtbl.create 16 in
      let rec visit v =
        match Hashtbl.find_opt color v with
        | Some `Done -> Ok ()
        | Some `Active -> Error (Printf.sprintf "precedence cycle through $%s" v)
        | None ->
          Hashtbl.replace color v `Active;
          let rec visit_all = function
            | [] ->
              Hashtbl.replace color v `Done;
              Ok ()
            | w :: rest -> (
              match visit w with Ok () -> visit_all rest | Error _ as e -> e)
          in
          visit_all (try List.assoc v graph with Not_found -> [])
      in
      let rec all = function
        | [] -> Ok ()
        | (v, _) :: rest -> (
          match visit v with Ok () -> all rest | Error _ as e -> e)
      in
      all t.defs)

let make ~defs ~base =
  let t = { defs; base } in
  match well_formed t with Ok () -> Ok t | Error _ as e -> e

let make_exn ~defs ~base =
  match make ~defs ~base with
  | Ok t -> t
  | Error m -> invalid_arg ("Jsl_rec.make_exn: " ^ m)

let size t =
  List.fold_left (fun acc (_, f) -> acc + 1 + Jsl.size f) (Jsl.size t.base) t.defs

(* Definitions in dependency-first order of the precedence graph, so a
   symbol is always computed after the symbols it references outside
   modal operators. *)
let topo_defs t =
  let graph = precedence_graph t in
  let visited = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.add visited v ();
      List.iter visit (try List.assoc v graph with Not_found -> []);
      match List.assoc_opt v t.defs with
      | Some def -> order := (v, def) :: !order
      | None -> ()
    end
  in
  List.iter (fun (v, _) -> visit v) t.defs;
  List.rev !order

let unfold t ~height =
  let budget0 = height + 1 in
  let rec expand budget (f : Jsl.t) : Jsl.t =
    match f with
    | Jsl.Var v ->
      if budget <= 0 then Jsl.ff
      else expand budget (List.assoc v t.defs)
    | Jsl.True | Jsl.Test _ -> f
    | Jsl.Not g -> Jsl.Not (expand budget g)
    | Jsl.And (a, b) -> Jsl.And (expand budget a, expand budget b)
    | Jsl.Or (a, b) -> Jsl.Or (expand budget a, expand budget b)
    | Jsl.Dia_keys (e, g) -> Jsl.Dia_keys (e, expand (budget - 1) g)
    | Jsl.Box_keys (e, g) -> Jsl.Box_keys (e, expand (budget - 1) g)
    | Jsl.Dia_range (i, j, g) -> Jsl.Dia_range (i, j, expand (budget - 1) g)
    | Jsl.Box_range (i, j, g) -> Jsl.Box_range (i, j, expand (budget - 1) g)
  in
  expand budget0 t.base

(* Bottom-up evaluation by height (Proposition 9). *)
let build_table ?budget tree t =
  let ctx = Jsl.context ?budget tree in
  let n = Tree.node_count tree in
  let table = Hashtbl.create (List.length t.defs) in
  List.iter (fun (v, _) -> Hashtbl.add table v (Bitset.create n)) t.defs;
  let env v node = Bitset.mem (Hashtbl.find table v) node in
  let ordered = topo_defs t in
  Array.iter
    (fun bucket ->
      List.iter
        (fun (v, def) ->
          let set = Hashtbl.find table v in
          List.iter
            (fun node ->
              if Jsl.node_eval ctx ~env node def then Bitset.add set node)
            bucket)
        ordered)
    (Tree.nodes_by_height tree);
  (ctx, env, table)

let sat_table ?budget tree t =
  let _, _, table = build_table ?budget tree t in
  List.map (fun (v, _) -> (v, Hashtbl.find table v)) t.defs

let holds_at ?budget tree t node =
  let ctx, env, _ = build_table ?budget tree t in
  Jsl.node_eval ctx ~env node t.base

let validates ?budget v t =
  holds_at ?budget (Jsont.Tree.of_value ?budget v) t Tree.root

let validates_by_unfolding v t =
  let tree = Tree.of_value v in
  let f = unfold t ~height:(Tree.height tree) in
  let ctx = Jsl.context tree in
  Jsl.holds ctx Tree.root f

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (v, def) -> Format.fprintf fmt "$%s = %a@," v Jsl.pp def)
    t.defs;
  Format.fprintf fmt "%a@]" Jsl.pp t.base

(* ---- concrete syntax ------------------------------------------------------- *)

let to_string t =
  let buf = Buffer.create 128 in
  List.iter
    (fun (v, def) ->
      Buffer.add_string buf (Printf.sprintf "$%s = %s;\n" v (Jsl.to_string def)))
    t.defs;
  Buffer.add_string buf (Jsl.to_string t.base);
  Buffer.contents buf

(* split on top-level ';' — not inside "strings" or /regex literals/ *)
let split_statements input =
  let parts = ref [] in
  let buf = Buffer.create 64 in
  let n = String.length input in
  let i = ref 0 in
  let mode = ref `Plain in
  while !i < n do
    let ch = input.[!i] in
    (match !mode with
    | `Plain -> (
      match ch with
      | ';' ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | '"' ->
        mode := `String;
        Buffer.add_char buf ch
      | '/' ->
        mode := `Regex;
        Buffer.add_char buf ch
      | c -> Buffer.add_char buf c)
    | `String -> (
      Buffer.add_char buf ch;
      match ch with
      | '\\' when !i + 1 < n ->
        incr i;
        Buffer.add_char buf input.[!i]
      | '"' -> mode := `Plain
      | _ -> ())
    | `Regex -> (
      Buffer.add_char buf ch;
      match ch with
      | '\\' when !i + 1 < n ->
        incr i;
        Buffer.add_char buf input.[!i]
      | '/' -> mode := `Plain
      | _ -> ()));
    incr i
  done;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let parse input =
  let statements = split_statements input in
  let trim = String.trim in
  let rec go defs = function
    | [] -> Error "missing base expression"
    | [ base_text ] -> (
      match Jsl.parse (trim base_text) with
      | Error m -> Error ("base expression: " ^ m)
      | Ok base -> make ~defs:(List.rev defs) ~base)
    | def_text :: rest -> (
      let def_text = trim def_text in
      match String.index_opt def_text '=' with
      | Some eq
        when String.length def_text > 0
             && def_text.[0] = '$'
             && not (String.contains (String.sub def_text 0 eq) '(') -> (
        let name = trim (String.sub def_text 1 (eq - 1)) in
        let body = String.sub def_text (eq + 1) (String.length def_text - eq - 1) in
        if name = "" then Error "empty definition name"
        else
          match Jsl.parse (trim body) with
          | Error m -> Error (Printf.sprintf "definition $%s: %s" name m)
          | Ok f -> go ((name, f) :: defs) rest)
      | _ -> Error (Printf.sprintf "expected a definition, got %S" def_text))
  in
  go [] statements

let parse_exn input =
  match parse input with
  | Ok t -> t
  | Error m -> invalid_arg ("Jsl_rec.parse_exn: " ^ m)
