(** J-automata: alternating automata over JSON trees (appendix of the
    paper, apparatus of Proposition 10).

    A state's rule is a positive boolean combination of (possibly
    negated) node tests, same-node state references (acyclic, playing
    the role of the paper's node-state layering ℓ(n) = s₀ ⊊ … ⊊ sₖ),
    and child quantifiers [∃/∀ over key expressions or index ranges]
    (the paper's [q∃e], [q∀e], [q∃i:j], [q∀i:j]).  Negation is
    compiled away by polarity duplication (alternating automata are
    closed under complement by swapping ∃/∀ and ∧/∨ — see the appendix
    remark), so rules stay positive.

    Three capabilities:
    - {!of_jsl} / {!of_jsl_rec}: the Lemma 4 / Lemma 5 compilations
      (linear in the formula, two states per subformula polarity);
    - {!accepts}: membership of a JSON tree, evaluated bottom-up by
      height — agrees with {!Jsl.eval} / {!Jsl_rec.validates}
      (property-tested);
    - {!find_model}: emptiness with witness extraction, by saturation
      over {e profiles} (the subsets of states realizable at the root
      of some tree — the reachable state-subsets of the proof of
      Proposition 10).  Leaf witnesses are realized exactly, by
      language algebra on the string constraints and bounded search on
      the arithmetic ones; composite witnesses are built with children
      drawn from already-realized profiles, with per-round budgets.
      The search is sound in both directions when it answers; it
      returns [Unknown] when budgets are exhausted before the profile
      space saturates. *)

type state = int

type rule =
  | R_true
  | R_false
  | R_and of rule * rule
  | R_or of rule * rule
  | R_test of Jsl.node_test  (** the node test holds here *)
  | R_not_test of Jsl.node_test
  | R_state of state  (** same-node reference (acyclic) *)
  | R_ex_keys of Rexp.Syntax.t * state
  | R_all_keys of Rexp.Syntax.t * state
  | R_ex_range of int * int option * state
  | R_all_range of int * int option * state

type t

val states : t -> int
val rule : t -> state -> rule
val init : t -> state

val of_jsl : Jsl.t -> t
(** Lemma 4.  @raise Invalid_argument on free recursion symbols. *)

val of_jsl_rec : Jsl_rec.t -> t
(** Lemma 5. *)

val accepts : t -> Jsont.Tree.t -> bool
(** Is there an accepting run on the tree? *)

val run_profile : t -> Jsont.Tree.t -> Jsont.Tree.node -> Bitset.t
(** The set of states holding at a node in the (unique, deterministic
    bottom-up) run — the node's profile. *)

type outcome =
  | Sat of Jsont.Value.t  (** a witness document accepted by the automaton *)
  | Unsat
  | Unknown of string  (** search budget exhausted; reason given *)

val find_model :
  ?max_rounds:int -> ?candidates_per_round:int -> ?max_width:int
  -> ?budget:Obs.Budget.t -> t -> outcome
(** Emptiness via profile saturation.  [max_rounds] bounds tree height
    explored (default 24), [candidates_per_round] bounds how many
    composite documents are tried per round (default 400_000),
    [max_width] caps the number of children of constructed nodes beyond
    what the automaton's constraints demand (default 3).

    [budget] (default {!Obs.Budget.unlimited}) additionally bounds
    total work across rounds — one fuel unit per (candidate, state)
    rule evaluation plus the wall-clock deadline; exhaustion yields
    [Unknown (Obs.Budget.describe reason)] rather than an exception. *)
