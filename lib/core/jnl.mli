(** Abstract syntax of the JSON Navigational Logic (JNL) of Section 4.

    The logic is two-sorted (Definition 1): {e binary} formulas
    ({!path}) select pairs of nodes — they navigate — and {e unary}
    formulas ({!form}) select nodes — they test.

    The deterministic core of §4.2 uses [Self], [Key], [Idx], [Seq] and
    [Test]; the extensions of §4.3 add non-determinism ([Keys],
    [Range]) and recursion ([Star]).  [Alt] (union of paths) is a
    conservative convenience extension beyond the paper's grammar —
    PDL-style path union, needed to express JSONPath's "any child" and
    recursive-descent axes over trees that mix objects and arrays; it
    adds no expressive power over the formula-level [Or] for the unary
    fragment and is flagged by {!classify} like the other
    non-deterministic constructs. *)

type path =
  | Self  (** ε — stay at the current node *)
  | Key of string  (** [X_w]: follow the object edge labelled [w] *)
  | Idx of int
      (** [X_i]: follow array edge [i]; negative [i] addresses from the
          end ([-1] = last), the dual operator remarked after Def. 1 *)
  | Keys of Rexp.Syntax.t  (** [X_e]: any object edge with label in L(e) *)
  | Range of int * int option
      (** [X_{i:j}]: any array edge [p] with [i ≤ p ≤ j];
          [None] is [+∞] *)
  | Seq of path * path  (** [α ∘ β] — composition *)
  | Test of form  (** [⟨ϕ⟩] — filter the current node *)
  | Star of path  (** [(α)*] — reflexive-transitive closure *)
  | Alt of path * path  (** path union (extension, see above) *)

and form =
  | True  (** ⊤ *)
  | Not of form
  | And of form * form
  | Or of form * form
  | Exists of path
      (** [\[α\]] — some [α]-successor exists from the current node *)
  | Eq_doc of path * Jsont.Value.t
      (** [EQ(α, A)] — some [α]-successor's subtree equals document [A] *)
  | Eq_paths of path * path
      (** [EQ(α, β)] — some [α]- and [β]-successors carry equal
          subtrees *)

val ff : form
(** ⊥, sugar for [Not True]. *)

val conj : form list -> form
val disj : form list -> form
val seq : path list -> path

(** {1 Classification}

    The complexity results of the paper are parameterized by which
    constructs occur; {!classify} computes the relevant fragment
    flags. *)

type fragment = {
  deterministic : bool;
      (** no [Keys], [Range], [Star] or [Alt] — the logic of §4.2 *)
  recursive : bool;  (** uses [Star] *)
  uses_eq_paths : bool;  (** uses the binary equality [EQ(α,β)] *)
  uses_negation : bool;
}

val classify : form -> fragment
val classify_path : path -> fragment

val size : form -> int
(** AST size, the |ϕ| of the complexity statements. *)

val path_size : path -> int

val compare : form -> form -> int
val equal : form -> form -> bool

(** {1 Concrete syntax}

    {v
      form ::= 'true' | 'false' | '!' form | form '&' form | form '|' form
             | '<' path '>'                    (the paper's [α])
             | 'eq(' path ',' json ')' | 'eq(' path ',' path ')'
             | '(' form ')'
      path ::= step+ ('/' optional between steps)
      step ::= '.' key | '.~' '/' regex '/' | '[' int ']'
             | '[' int ':' (int | '*') ']' | '?(' form ')' | 'eps'
             | '(' path ')' | step '*'
    v}

    Examples: [<.name.first>], [eq(.age, 32)],
    [<.hobbies[0:*]?(eq(eps,"yoga"))>], [<(.~/.*/)*.id>]. *)

val pp : Format.formatter -> form -> unit
val pp_path : Format.formatter -> path -> unit
val to_string : form -> string
val path_to_string : path -> string

val parse : string -> (form, string) result
val parse_exn : string -> form
val parse_path : string -> (path, string) result
val parse_path_exn : string -> path
