(** The shared semantics of single JNL navigation steps.

    Every engine that interprets a [Key]/[Keys]/[Idx]/[Range] step —
    the set-at-a-time pre-image evaluator and the nodal successor
    enumerator in {!Jnl_eval}, the JSL evaluator's range modalities,
    the {!Jautomaton} run computation, and the datalog EDB encoding —
    must implement {e the same} relation ⟦α⟧.  This module is that
    single implementation; the evaluators contain no step logic of
    their own.

    {2 Negative indices and ranges}

    Array steps address positions RFC 9535-style: a negative index [i]
    denotes position [len + i] of an array of arity [len] ([-1] is the
    last element), and is out of range when [len + i < 0].  A range
    [Range (i, j)] denotes the inclusive window [lo..hi] where each
    negative bound is first offset by [len], then [lo] is clamped up
    to [0] and [hi] down to [len - 1]; the window is empty when
    [lo > hi].  [j = None] is [+∞].  Both directions of evaluation —
    forward successor enumeration and backward pre-image — normalize
    against the {e parent array's} arity, so they define the same
    edge set. *)

(** {1 Normalization} *)

val norm_idx : len:int -> int -> int option
(** [norm_idx ~len i] is the absolute position addressed by index [i]
    in an array of arity [len], or [None] when out of range. *)

val norm_range : len:int -> int -> int option -> (int * int) option
(** [norm_range ~len i j] is the inclusive, in-bounds window
    [Some (lo, hi)] selected by [Range (i, j)] on an array of arity
    [len], or [None] when the selection is empty. *)

val idx_matches : len:int -> pos:int -> int -> bool
(** Does the array edge at position [pos] (of an array of arity [len])
    match index [i]? *)

val range_matches : len:int -> pos:int -> int -> int option -> bool
(** Does the array edge at position [pos] fall in [Range (i, j)]? *)

(** {1 Forward direction: successors of a node} *)

val key_succ : Jsont.Tree.t -> Jsont.Tree.node -> string -> Jsont.Tree.node option
val idx_succ : Jsont.Tree.t -> Jsont.Tree.node -> int -> Jsont.Tree.node option

val range_succs :
  Jsont.Tree.t -> Jsont.Tree.node -> int -> int option -> Jsont.Tree.node list
(** Children selected by [Range (i, j)], in document order. *)

val range_exists :
  Jsont.Tree.t -> Jsont.Tree.node -> int -> int option ->
  (Jsont.Tree.node -> bool) -> bool
(** Short-circuiting [∃ child ∈ Range (i, j) window. pred child]. *)

val keys_succs :
  Jsont.Tree.t -> Jsont.Tree.node -> Rexp.Lang.t -> Jsont.Tree.node list
(** Children reached through a key in the language, in document
    order. *)

val keys_exists :
  Jsont.Tree.t -> Jsont.Tree.node -> Rexp.Lang.t ->
  (Jsont.Tree.node -> bool) -> bool

(** {1 Backward direction: does the incoming edge match?} *)

val edge_matches_key : Jsont.Tree.t -> Jsont.Tree.node -> string -> bool
val edge_matches_keys : Jsont.Tree.t -> Jsont.Tree.node -> Rexp.Lang.t -> bool
val edge_matches_idx : Jsont.Tree.t -> Jsont.Tree.node -> int -> bool
val edge_matches_range :
  Jsont.Tree.t -> Jsont.Tree.node -> int -> int option -> bool
