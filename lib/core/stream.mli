(** Streaming validation of deterministic JSL (the Section 6
    conjecture).

    The paper conjectures that the deterministic fragments of JNL/JSL
    can be evaluated over a stream "with constant memory requirements
    when tree equality is excluded".  This module realizes that for
    deterministic JSL: the document is consumed token by token straight
    from the {!Jsont.Lexer}, no tree is built, and memory is bounded by
    O(|ϕ|) live obligations — independent of the document size
    (sub-documents not addressed by the formula are skipped with a
    counter, not a stack).

    Tree-equality tests [~(A)] against a {e constant} [A] do not
    require buffering the input: they are compiled away up front into
    structural deterministic JSL over [A] (kind + arity + per-key /
    per-index equalities), see {!expand_eq}.  What the conjecture
    excludes — [EQ(α,β)] between two streamed subtrees — is indeed not
    expressible here.

    Supported fragment: deterministic modalities (single word keys,
    single indices), all node tests except [Unique], no recursion
    symbols.  {!supported} checks membership. *)

val expand_eq : Jsl.t -> Jsl.t
(** Rewrite every [~(A)] node test into an equivalent deterministic
    JSL formula over the structure of [A]. *)

val supported : Jsl.t -> (unit, string) result
(** Is the formula (after {!expand_eq}) in the streamable fragment? *)

type stats = {
  tokens : int;  (** tokens consumed *)
  peak_obligations : int;
      (** maximum number of live formula obligations at any point —
          the memory bound, independent of document size *)
}

val validate : ?budget:Obs.Budget.t -> string -> Jsl.t -> (bool, string) result
(** [validate input ϕ]: does the JSON document in [input] satisfy ϕ at
    its root?  Single pass, no tree construction.

    [budget] (default
    [Obs.Budget.depth_limited Obs.Budget.default_max_depth]) bounds the
    run: one fuel unit per token, nesting depth — including inside
    skipped sub-documents — against the budget's depth ceiling.
    Exhaustion is reported as [Error (Obs.Budget.describe reason)], so
    adversarially deep inputs yield a clean error rather than
    unbounded work. *)

val validate_with_stats :
  ?budget:Obs.Budget.t -> string -> Jsl.t -> (bool * stats, string) result

val validate_jnl :
  ?budget:Obs.Budget.t -> string -> Jnl.form -> (bool, string) result
(** Deterministic JNL streaming (the §6 conjecture covers both logics):
    the formula is taken through the Theorem 2 translation into
    deterministic JSL and then streamed.  [Error] when the formula is
    non-deterministic, recursive, or uses [EQ(α,β)]. *)
