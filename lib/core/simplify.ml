(* Conservative bottom-up rewriting; every rule preserves the
   satisfaction set and never grows the formula. *)

let is_ff (f : Jsl.t) = match f with Jsl.Not Jsl.True -> true | _ -> false

(* node-kind tests are pairwise disjoint *)
let kind_test (f : Jsl.t) =
  match f with
  | Jsl.Test Jsl.Is_obj -> Some `Obj
  | Jsl.Test Jsl.Is_arr -> Some `Arr
  | Jsl.Test Jsl.Is_str -> Some `Str
  | Jsl.Test Jsl.Is_int -> Some `Int
  | _ -> None

(* flatten a binary operator into a list *)
let rec flatten_and (f : Jsl.t) =
  match f with
  | Jsl.And (a, b) -> flatten_and a @ flatten_and b
  | f -> [ f ]

let rec flatten_or (f : Jsl.t) =
  match f with
  | Jsl.Or (a, b) -> flatten_or a @ flatten_or b
  | f -> [ f ]

let dedupe fs =
  let rec go acc = function
    | [] -> List.rev acc
    | f :: rest ->
      if List.exists (Jsl.equal f) acc then go acc rest else go (f :: acc) rest
  in
  go [] fs

let conj_contradiction fs =
  (* two different kind tests, or inconsistent numeric bounds *)
  let kinds = List.filter_map kind_test fs in
  let distinct_kinds =
    match kinds with
    | k :: rest -> List.exists (fun k' -> k' <> k) rest
    | [] -> false
  in
  let mins =
    List.filter_map (function Jsl.Test (Jsl.Min i) -> Some i | _ -> None) fs
  in
  let maxs =
    List.filter_map (function Jsl.Test (Jsl.Max i) -> Some i | _ -> None) fs
  in
  let bounds_clash =
    match (mins, maxs) with
    | _ :: _, _ :: _ ->
      List.fold_left max 0 mins > List.fold_left min max_int maxs
    | _ -> false
  in
  let minch =
    List.filter_map (function Jsl.Test (Jsl.Min_ch i) -> Some i | _ -> None) fs
  in
  let maxch =
    List.filter_map (function Jsl.Test (Jsl.Max_ch i) -> Some i | _ -> None) fs
  in
  let ch_clash =
    match (minch, maxch) with
    | _ :: _, _ :: _ ->
      List.fold_left max 0 minch > List.fold_left min max_int maxch
    | _ -> false
  in
  distinct_kinds || bounds_clash || ch_clash

let rec jsl (f : Jsl.t) : Jsl.t =
  match f with
  | Jsl.True | Jsl.Var _ -> f
  | Jsl.Test (Jsl.Min_ch 0) -> Jsl.True
  | Jsl.Test (Jsl.Min 0) -> Jsl.Test Jsl.Is_int
  | Jsl.Test (Jsl.Mult_of 1) -> Jsl.Test Jsl.Is_int
  | Jsl.Test _ -> f
  | Jsl.Not g -> (
    match jsl g with
    | Jsl.Not h -> h (* double negation *)
    | g' -> Jsl.Not g')
  | Jsl.And _ -> (
    let parts = dedupe (List.map jsl (flatten_and f)) in
    let parts = List.filter (fun p -> p <> Jsl.True) parts in
    if List.exists is_ff parts || conj_contradiction parts then Jsl.ff
    else
      match parts with
      | [] -> Jsl.True
      | _ -> Jsl.conj parts)
  | Jsl.Or _ -> (
    let parts = dedupe (List.map jsl (flatten_or f)) in
    let parts = List.filter (fun p -> not (is_ff p)) parts in
    if List.exists (fun p -> p = Jsl.True) parts then Jsl.True
    else
      match parts with
      | [] -> Jsl.ff
      | _ -> Jsl.disj parts)
  | Jsl.Dia_keys (e, g) -> (
    let g' = jsl g in
    if is_ff g' then Jsl.ff
    else
      match e with
      | Rexp.Syntax.Empty -> Jsl.ff
      | _ -> Jsl.Dia_keys (e, g'))
  | Jsl.Box_keys (e, g) -> (
    let g' = jsl g in
    if g' = Jsl.True then Jsl.True
    else
      match e with
      | Rexp.Syntax.Empty -> Jsl.True
      | _ -> Jsl.Box_keys (e, g'))
  | Jsl.Dia_range (i, j, g) -> (
    let g' = jsl g in
    if is_ff g' then Jsl.ff
    else
      match j with
      | Some j when j < i -> Jsl.ff
      | _ -> Jsl.Dia_range (i, j, g'))
  | Jsl.Box_range (i, j, g) -> (
    let g' = jsl g in
    if g' = Jsl.True then Jsl.True
    else
      match j with
      | Some j when j < i -> Jsl.True
      | _ -> Jsl.Box_range (i, j, g'))

(* ---- JNL ------------------------------------------------------------------ *)

let jnl_is_ff (f : Jnl.form) =
  match f with Jnl.Not Jnl.True -> true | _ -> false

let rec jnl_path (p : Jnl.path) : Jnl.path =
  match p with
  | Jnl.Self | Jnl.Key _ | Jnl.Idx _ -> p
  | Jnl.Keys e -> (
    match Rexp.Syntax.as_word e with
    | Some w -> Jnl.Key w
    | None -> p)
  | Jnl.Range (i, Some j) when i = j -> Jnl.Idx i
  | Jnl.Range _ -> p
  | Jnl.Seq (a, b) -> (
    match (jnl_path a, jnl_path b) with
    | Jnl.Self, b' -> b'
    | a', Jnl.Self -> a'
    | a', b' -> Jnl.Seq (a', b'))
  | Jnl.Alt (a, b) -> (
    let a' = jnl_path a and b' = jnl_path b in
    if a' = b' then a' else Jnl.Alt (a', b'))
  | Jnl.Test f -> (
    match jnl f with
    | Jnl.True -> Jnl.Self
    | f' -> Jnl.Test f')
  | Jnl.Star a -> (
    match jnl_path a with
    | Jnl.Self -> Jnl.Self
    | Jnl.Star _ as s -> s
    | a' -> Jnl.Star a')

and jnl (f : Jnl.form) : Jnl.form =
  match f with
  | Jnl.True -> f
  | Jnl.Not g -> (
    match jnl g with
    | Jnl.Not h -> h
    | g' -> Jnl.Not g')
  | Jnl.And (a, b) -> (
    match (jnl a, jnl b) with
    | Jnl.True, b' -> b'
    | a', Jnl.True -> a'
    | a', b' when jnl_is_ff a' || jnl_is_ff b' -> Jnl.ff
    | a', b' when Jnl.equal a' b' -> a'
    | a', b' -> Jnl.And (a', b'))
  | Jnl.Or (a, b) -> (
    match (jnl a, jnl b) with
    | Jnl.True, _ | _, Jnl.True -> Jnl.True
    | a', b' when jnl_is_ff a' -> b'
    | a', b' when jnl_is_ff b' -> a'
    | a', b' when Jnl.equal a' b' -> a'
    | a', b' -> Jnl.Or (a', b'))
  | Jnl.Exists p -> (
    match jnl_path p with
    | Jnl.Self -> Jnl.True
    | Jnl.Test g -> g (* [⟨ϕ⟩] ≡ ϕ *)
    | p' -> Jnl.Exists p')
  | Jnl.Eq_doc (p, v) -> Jnl.Eq_doc (jnl_path p, v)
  | Jnl.Eq_paths (a, b) -> Jnl.Eq_paths (jnl_path a, jnl_path b)
