type verdict =
  | Yes
  | No of Jsont.Value.t
  | Inconclusive of string

let of_outcome = function
  | Jautomaton.Unsat -> Yes
  | Jautomaton.Sat w -> No w
  | Jautomaton.Unknown m -> Inconclusive m

let contained ?max_rounds ?candidates_per_round a b =
  of_outcome
    (Jsl_sat.satisfiable ?max_rounds ?candidates_per_round (Jsl.And (a, Jsl.Not b)))

let equivalent ?max_rounds ?candidates_per_round a b =
  match contained ?max_rounds ?candidates_per_round a b with
  | Yes -> contained ?max_rounds ?candidates_per_round b a
  | other -> other

let disjoint ?max_rounds ?candidates_per_round a b =
  of_outcome
    (Jsl_sat.satisfiable ?max_rounds ?candidates_per_round (Jsl.And (a, b)))

let contained_jnl ?max_rounds ?candidates_per_round a b =
  match (Translate.jnl_to_jsl a, Translate.jnl_to_jsl b) with
  | Ok a', Ok b' -> Ok (contained ?max_rounds ?candidates_per_round a' b')
  | Error m, _ | _, Error m -> Error m

let schema_compatible ?max_rounds ?candidates_per_round ~old_ ~new_ () =
  contained ?max_rounds ?candidates_per_round old_ new_
