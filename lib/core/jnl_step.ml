module Tree = Jsont.Tree

(* ---- normalization ------------------------------------------------------ *)

let norm_idx ~len i =
  let p = if i < 0 then len + i else i in
  if p < 0 || p >= len then None else Some p

let norm_range ~len i j =
  if len = 0 then None
  else begin
    let lo = max 0 (if i < 0 then len + i else i) in
    let hi =
      match j with
      | None -> len - 1
      | Some j -> min (len - 1) (if j < 0 then len + j else j)
    in
    if lo > hi then None else Some (lo, hi)
  end

let idx_matches ~len ~pos i =
  match norm_idx ~len i with Some p -> p = pos | None -> false

let range_matches ~len ~pos i j =
  match norm_range ~len i j with
  | Some (lo, hi) -> pos >= lo && pos <= hi
  | None -> false

(* ---- forward direction (succ) ------------------------------------------ *)

let key_succ t n w = Tree.lookup t n w

let idx_succ t n i =
  let kids = Tree.arr_children t n in
  match norm_idx ~len:(Array.length kids) i with
  | Some p -> Some kids.(p)
  | None -> None

let range_succs t n i j =
  let kids = Tree.arr_children t n in
  match norm_range ~len:(Array.length kids) i j with
  | None -> []
  | Some (lo, hi) -> List.init (hi - lo + 1) (fun k -> kids.(lo + k))

let range_exists t n i j pred =
  let kids = Tree.arr_children t n in
  match norm_range ~len:(Array.length kids) i j with
  | None -> false
  | Some (lo, hi) ->
    let rec go k = k <= hi && (pred kids.(k) || go (k + 1)) in
    go lo

let keys_succs t n l =
  List.filter_map
    (fun (k, c) -> if Rexp.Lang.matches l k then Some c else None)
    (Tree.obj_children t n)

let keys_exists t n l pred =
  List.exists
    (fun (k, c) -> Rexp.Lang.matches l k && pred c)
    (Tree.obj_children t n)

(* ---- backward direction (pre) ------------------------------------------ *)

let edge_matches_key t child w =
  match Tree.edge_from_parent t child with
  | Tree.Key k -> String.equal k w
  | Tree.Pos _ | Tree.Root -> false

let edge_matches_keys t child l =
  match Tree.edge_from_parent t child with
  | Tree.Key k -> Rexp.Lang.matches l k
  | Tree.Pos _ | Tree.Root -> false

(* a [Pos] edge implies a parent, whose arity anchors negative indices *)
let parent_len t child = Tree.arity t (Tree.parent_id t child)

let edge_matches_idx t child i =
  match Tree.edge_from_parent t child with
  | Tree.Pos p -> idx_matches ~len:(parent_len t child) ~pos:p i
  | Tree.Key _ | Tree.Root -> false

let edge_matches_range t child i j =
  match Tree.edge_from_parent t child with
  | Tree.Pos p -> range_matches ~len:(parent_len t child) ~pos:p i j
  | Tree.Key _ | Tree.Root -> false
