(** The Theorem 2 translations between (non-recursive) JNL and JSL.

    The theorem relates non-deterministic JNL {e without} the binary
    equality [EQ(α,β)] and JSL whose only node test is [~(A)]:

    - {!jsl_to_jnl} is polynomial (each modality becomes one step);
    - {!jnl_to_jsl} threads a continuation through paths; path unions
      ([Alt]) duplicate the continuation, realizing the worst-case
      exponential growth the paper proves unavoidable for its
      substitution procedure.  (Chains of [⟨…∨…⟩] tests, the paper's
      illustration, stay linear here because a [Test] translates to a
      conjunction without duplication.)

    Constructs outside the theorem's scope ([Star], [Eq_paths],
    negative indices, node tests other than [~(A)], recursion symbols)
    are reported as [Error]s. *)

val jsl_to_jnl : Jsl.t -> (Jnl.form, string) result
(** Polynomial-time direction. *)

val jsl_to_jnl_exn : Jsl.t -> Jnl.form

val jnl_to_jsl : Jnl.form -> (Jsl.t, string) result
(** Potentially exponential direction. *)

val jnl_to_jsl_exn : Jnl.form -> Jsl.t

val alt_chain : int -> Jnl.form
(** [alt_chain n] is the blow-up family
    [⟨(.a|.b)(.a|.b)…⟩] with [n] alternations: its {!jnl_to_jsl}
    image has size Θ(2ⁿ).  Used by the E-T2 experiment. *)
