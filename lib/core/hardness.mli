(** The constructive hardness reductions of the paper, with reference
    oracles to cross-check them.

    These are the instances the complexity lower bounds are built from;
    the test suite and the benchmark harness verify on concrete inputs
    that each reduction preserves (un)satisfiability / evaluation
    results, and measure how the decision procedures scale on them.

    - 3SAT → deterministic positive JNL (Proposition 2);
    - QBF → JSL without [Unique] (Proposition 7);
    - boolean circuits → well-formed recursive JSL (Proposition 9);
    - two-counter machines → recursive JNL with [EQ(α,β)]
      (Proposition 4; the reduction witnesses undecidability, so only
      the forward direction — accepting run ⇒ satisfying document — is
      checkable). *)

(** {1 3SAT (Proposition 2)} *)

type lit = { var : int; positive : bool }
(** Variables are numbered [0 .. nvars-1]. *)

type cnf = lit list list

val cnf_to_jnl : nvars:int -> cnf -> Jnl.form
(** The paper's encoding: variable [pᵢ] true ⟺ the value under key
    [pᵢ] is an array ([⟨.pᵢ?(<\[1\]>)⟩]); false ⟺ it is an object with
    the fresh key [w].  Positive, negation-free, deterministic. *)

val assignment_doc : bool array -> Jsont.Value.t
(** The document encoding a given assignment (satisfies
    [cnf_to_jnl] iff the assignment satisfies the CNF). *)

val dpll : nvars:int -> cnf -> bool array option
(** Reference SAT oracle (DPLL with unit propagation); returns a
    satisfying assignment when one exists. *)

(** {1 QBF (Proposition 7)} *)

type qbf = { prefix : [ `Forall | `Exists ] list; matrix : cnf }
(** [prefix] quantifies variables [0, 1, …] in order; the matrix is a
    CNF over them. *)

val qbf_to_jsl : qbf -> Jsl.t
(** The Benedikt–Fan–Geerts-style encoding from the proof of
    Proposition 7: models are assignment trees alternating an [X] level
    and a [T]/[F] level per variable ([T] and [F] children both present
    under universal variables, exactly one under existential ones), and
    each clause contributes the negation of its falsifying-path
    formula.  Uses no [Unique]. *)

val qbf_eval : qbf -> bool
(** Reference oracle (exponential expansion). *)

val assignment_tree : qbf -> (int -> bool array -> bool) -> Jsont.Value.t
(** [assignment_tree q choose] materializes an assignment tree; for the
    existential variable [i] under partial assignment [a] the branch
    kept is [choose i a].  Used to build concrete models/countermodels
    in tests. *)

(** {1 Boolean circuits (Proposition 9)} *)

type gate =
  | G_input of int  (** input number [0 .. n_inputs-1] *)
  | G_and of int * int  (** indices of earlier gates *)
  | G_or of int * int
  | G_not of int

type circuit = { gates : gate array; output : int; n_inputs : int }
(** Gates may only reference strictly smaller indices (checked). *)

val circuit_check : circuit -> (unit, string) result

val circuit_to_jsl_rec : circuit -> Jsl_rec.t
(** One definition γⱼ per gate, referenced {e outside} modal operators
    (legal: the circuit is acyclic, hence so is the precedence graph);
    inputs read [◇_INᵢ Pattern(T)] off the document. *)

val circuit_doc : bool array -> Jsont.Value.t
(** [{"IN0": "T"/"F", …}]. *)

val circuit_eval : circuit -> bool array -> bool
(** Reference oracle. *)

(** {1 Two-counter machines (Proposition 4)} *)

type cm_instr =
  | Incr of int * string  (** increment counter (0 or 1), go to state *)
  | Decr of int * string
  | If_zero of int * string * string
      (** if the counter is zero go to the first state, else the second *)
  | Halt

type machine = {
  states : (string * cm_instr) list;
  start : string;
  final : string;
}

val cm_to_jnl : machine -> Jnl.form
(** The Proposition 4 formula: uses [Star], [EQ(α,β)] and no
    negation. *)

val cm_run : machine -> max_steps:int -> (string * int * int) list option
(** Simulate; [Some configs] when the machine reaches [final] within
    [max_steps], as a list of (state, c0, c1) configurations. *)

val cm_run_doc : (string * int * int) list -> Jsont.Value.t
(** Encode a run as the chained-configuration document of the proof. *)
