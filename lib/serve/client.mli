(** A minimal blocking client for the {!Server} wire protocol — what
    the [jsonlogic client] subcommand, the fault-injection tests and
    the [bench serve] load generator drive the daemon with.

    Each call writes one request and reads one response line; [Ok]
    carries the [OK]/[RESULT] payload, [Error] the [ERR] message.
    {!send} / {!recv} split the two halves for pipelining: write [n]
    requests back-to-back, then read [n] responses in order. *)

type t

val connect : Server.endpoint -> t
(** @raise Unix.Unix_error when nothing listens there. *)

val close : t -> unit
(** Idempotent. *)

exception Server_gone
(** The daemon hung up before a full response line arrived. *)

(** {1 One request, one response} *)

val ping : t -> (string, string) result
val put_schema : t -> string -> (string, string) result
(** [put_schema c bytes] registers the schema; [Ok id] is its
    content-hash id for subsequent {!validate} calls. *)

val validate : t -> schema_id:string -> string -> (string, string) result
(** [Ok verdict] with the CLI-identical verdict cell. *)

val validate_inline : t -> schema:string -> string -> (string, string) result

val index_query : t -> index:string -> string -> (string, string) result
(** [index_query c ~index formula] queries the corpus index at server
    path [index] with a JNL [formula]; [Ok payload] carries the full
    [DATA] payload — one [lineno<TAB>verdict] line per indexed
    document, byte-identical to the [index query] CLI output. *)

val metrics : t -> (string, string) result
val flush : t -> (string, string) result
val shutdown : t -> (string, string) result

(** {1 Pipelining} *)

val send : t -> Protocol.request -> body:string list -> unit
(** Write the header line plus the body segments, without reading the
    response. *)

val recv : t -> (string, string) result
(** Read the next response line.  @raise Server_gone at EOF mid-line or
    before any byte. *)

val send_raw : t -> string -> unit
(** Write bytes verbatim — the fault-injection tests build truncated
    and malformed frames with this. *)

val fd : t -> Unix.file_descr
(** The underlying socket (for shutdown-half tricks in tests). *)
