type endpoint = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : endpoint;
  jobs : int;
  cache_capacity : int;
  chunk_bytes : int;
  max_body_bytes : int;
  fresh_budget : unit -> Obs.Budget.t;
}

let default_config listen =
  { listen;
    jobs = 1;
    cache_capacity = 64;
    chunk_bytes = 65536;
    max_body_bytes = 64 * 1024 * 1024;
    fresh_budget = (fun () -> Obs.Budget.create ()) }

(* Open index readers, keyed by path and pinned to the file identity
   seen at open ([mtime], [size]): a rebuilt index is re-opened, a
   cached mapping is reused.  Readers are immutable once validated, so
   sharing one across connections is safe; the mutex only guards the
   table. *)
type index_cache = {
  mutable readers : (string * (float * int * Jindex.Reader.t)) list;
  lock : Mutex.t;
}

(* a daemon serves a handful of corpora; past this the table is
   dropped wholesale rather than managed *)
let index_cache_capacity = 16

type t = {
  cfg : config;
  lsock : Unix.file_descr;
  bound : endpoint;
  cache : Plan_cache.t;
  indexes : index_cache;
  pool : Par.Pool.t option;
  stop : bool Atomic.t;
  active : int Atomic.t;
  requests : int Atomic.t;
  connections : int Atomic.t;
  bytes_in : int Atomic.t;
  errors : int Atomic.t;
  indexq_requests : int Atomic.t;
  indexq_docs : int Atomic.t;
  indexq_opens : int Atomic.t;
  indexq_open_hits : int Atomic.t;
  folded : bool Atomic.t;
  mutable runner : unit Domain.t option;
}

(* the peer vanished (EOF or reset inside a frame, broken pipe on
   write): nothing can be answered, drop the connection *)
exception Client_gone

(* ---- buffered connection reads --------------------------------------------- *)

(* One read buffer per connection, [chunk_bytes] wide: header lines are
   scanned out of it and body bytes are fed to the lexer directly from
   it, so the socket is read in at most chunk-size slices and a request
   body never exists contiguously in memory. *)
type conn = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* first unconsumed byte *)
  mutable len : int;  (* bytes valid in [buf] *)
  srv : t;
}

let available c = c.len - c.pos

(* Refill when empty; 0 means EOF.  [at_boundary] reads poll with a
   timeout so a connection idling between requests notices a server
   stop and closes — that is what lets the drain finish while keeping
   every in-flight request running to completion. *)
let refill ?(at_boundary = false) c =
  if available c > 0 then available c
  else begin
    c.pos <- 0;
    c.len <- 0;
    let rec read_once () =
      if at_boundary && Atomic.get c.srv.stop then raise Client_gone;
      let ready =
        if at_boundary then
          match Unix.select [ c.fd ] [] [] 0.05 with
          | [], _, _ -> false
          | _ -> true
        else true
      in
      if not ready then read_once ()
      else
        match Unix.read c.fd c.buf 0 (Bytes.length c.buf) with
        | n ->
          Atomic.fetch_and_add c.srv.bytes_in n |> ignore;
          n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          0
    in
    c.len <- read_once ();
    c.len
  end

(* One header line, [\n]-terminated.  [`Eof] only at a clean request
   boundary; EOF mid-line is a truncated frame = [Client_gone].
   [`Overlong] when no line fits {!Protocol.max_header_bytes}. *)
let read_line c =
  let line = Buffer.create 64 in
  let rec scan first =
    match refill ~at_boundary:(first && Buffer.length line = 0) c with
    | 0 -> if Buffer.length line = 0 then `Eof else raise Client_gone
    | _ -> (
      match Bytes.index_from_opt c.buf c.pos '\n' with
      | Some nl when nl < c.len ->
        Buffer.add_subbytes line c.buf c.pos (nl - c.pos);
        c.pos <- nl + 1;
        if Buffer.length line > Protocol.max_header_bytes then `Overlong
        else `Line (Buffer.contents line)
      | _ ->
        Buffer.add_subbytes line c.buf c.pos (available c);
        c.pos <- c.len;
        if Buffer.length line > Protocol.max_header_bytes then `Overlong
        else scan false)
  in
  scan true

(* [len] body bytes into a string (schemas only: documents stream) *)
let read_exact c len =
  let out = Buffer.create len in
  let rec go remaining =
    if remaining = 0 then Buffer.contents out
    else
      match refill c with
      | 0 -> raise Client_gone
      | avail ->
        let n = min avail remaining in
        Buffer.add_subbytes out c.buf c.pos n;
        c.pos <- c.pos + n;
        go (remaining - n)
  in
  go len

let drain c len =
  let rec go remaining =
    if remaining > 0 then
      match refill c with
      | 0 -> raise Client_gone
      | avail ->
        let n = min avail remaining in
        c.pos <- c.pos + n;
        go (remaining - n)
  in
  go len

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Client_gone
  in
  go 0

(* ---- request handling ------------------------------------------------------ *)

let respond_err c msg =
  Atomic.incr c.srv.errors;
  write_all c.fd (Protocol.err msg)

(* Compile schema bytes through the content-hash-keyed cache.  The
   compile itself runs outside the cache lock: two connections racing
   on the same new schema both compile, both plans are equivalent, one
   stays.  Never caches failures: a bad schema re-errors per attempt. *)
let plan_of_schema srv bytes =
  let id = Plan_cache.id_of_schema bytes in
  match Plan_cache.find srv.cache id with
  | Some plan -> Ok (id, plan)
  | None -> (
    match Jschema.Parse.of_string bytes with
    | Error m -> Error ("bad schema: " ^ m)
    | Ok schema -> (
      match
        Jschema.Validate.Plan.compile ~budget:(srv.cfg.fresh_budget ()) schema
      with
      | plan ->
        Plan_cache.add srv.cache id plan;
        Ok (id, plan)
      | exception Invalid_argument m -> Error ("bad schema: " ^ m)
      | exception Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)))

(* Validate [len] body bytes against [plan], streaming them into the
   plan's lexer executor in buffer-sized slices.  The verdict text is
   byte-identical to the `validate --stream` CLI cell: `valid`,
   `INVALID`, or `error: <message>` with the same rendering. *)
let validate_body srv c plan len =
  let remaining = ref len in
  let refill_lexer lx =
    if !remaining = 0 then Jsont.Lexer.close lx
    else
      match refill c with
      | 0 -> raise Client_gone
      | avail ->
        let n = min avail !remaining in
        Jsont.Lexer.feed lx c.buf c.pos n;
        c.pos <- c.pos + n;
        remaining := !remaining - n
  in
  let verdict =
    match
      Jsont.Parser.wrap (fun () ->
          let lx = Jsont.Lexer.create_feed ~refill:refill_lexer () in
          Jschema.Validate.Plan.run_lexer ~budget:(srv.cfg.fresh_budget ())
            plan lx)
    with
    | Ok true -> "valid"
    | Ok false -> "INVALID"
    | Error e -> "error: " ^ Format.asprintf "%a" Jsont.Parser.pp_error e
    | exception Obs.Budget.Exhausted r -> "error: " ^ Obs.Budget.describe r
  in
  (* an early verdict (a validation error halfway in) leaves body bytes
     on the wire; consume them so the next pipelined header parses *)
  drain c !remaining;
  verdict

(* The cached reader for [path], re-validated against the file's
   current (mtime, size) so a rebuilt index is never answered from the
   old mapping.  Body verification runs once, at (re-)open. *)
let index_reader srv path =
  match Unix.stat path with
  | exception Unix.Unix_error (e, _, _) ->
    Error (path ^ ": " ^ Unix.error_message e)
  | st ->
    let ident = (st.Unix.st_mtime, st.Unix.st_size) in
    let ic = srv.indexes in
    Mutex.lock ic.lock;
    let cached =
      match List.assoc_opt path ic.readers with
      | Some (m, s, r) when (m, s) = ident -> Some r
      | _ -> None
    in
    Mutex.unlock ic.lock;
    match cached with
    | Some r ->
      Atomic.incr srv.indexq_open_hits;
      Ok r
    | None -> (
      Atomic.incr srv.indexq_opens;
      (* open outside the lock: two connections racing on a new path
         both open, both readers are valid, one stays *)
      match Jindex.Reader.open_ path with
      | Error m -> Error m
      | Ok r ->
        let m, s = ident in
        Mutex.lock ic.lock;
        if List.length ic.readers >= index_cache_capacity then
          ic.readers <- [];
        ic.readers <- (path, (m, s, r)) :: List.remove_assoc path ic.readers;
        Mutex.unlock ic.lock;
        Ok r)

(* Answer one INDEXQ: the payload rows are byte-identical to what
   `index query` prints — `<lineno>\t<verdict>\n` per document, in
   line order.  Queries run single-lane: connections are already the
   parallelism, and the pool is busy carrying them. *)
let index_query_payload srv path formula =
  match Jlogic.Jnl.parse formula with
  | Error m -> Error ("bad formula: " ^ m)
  | Ok phi -> (
    match index_reader srv path with
    | Error m -> Error m
    | Ok r -> (
      match
        Jindex.Query.run ~jobs:1 ~fresh_budget:srv.cfg.fresh_budget r phi
      with
      | Error m -> Error m
      | Ok verdicts ->
        Atomic.fetch_and_add srv.indexq_docs (Array.length verdicts)
        |> ignore;
        let b = Buffer.create (Array.length verdicts * 16) in
        Array.iteri
          (fun d v ->
            Buffer.add_string b
              (Printf.sprintf "%d\t%s\n"
                 (Jindex.Reader.doc_lineno r d)
                 (Jindex.Query.verdict_string v)))
          verdicts;
        Ok (Buffer.contents b)))

let counters srv =
  let hits, misses, evictions = Plan_cache.stats srv.cache in
  [ ("serve.bytes_in", Atomic.get srv.bytes_in);
    ("serve.connections", Atomic.get srv.connections);
    ("serve.errors", Atomic.get srv.errors);
    ("serve.indexq.docs", Atomic.get srv.indexq_docs);
    ("serve.indexq.open_hits", Atomic.get srv.indexq_open_hits);
    ("serve.indexq.opens", Atomic.get srv.indexq_opens);
    ("serve.indexq.requests", Atomic.get srv.indexq_requests);
    ("serve.plan_cache.evict", evictions);
    ("serve.plan_cache.hit", hits);
    ("serve.plan_cache.miss", misses);
    ("serve.plan_cache.size", Plan_cache.size srv.cache);
    ("serve.requests", Atomic.get srv.requests) ]

let metrics_json srv =
  let fields =
    List.map (fun (k, v) -> Printf.sprintf "%S:%d" k v) (counters srv)
  in
  "{" ^ String.concat "," fields ^ "}"

let check_len srv c what len =
  if len <= srv.cfg.max_body_bytes then true
  else begin
    (* the body cannot be drained at this size: answer and drop *)
    respond_err c
      (Printf.sprintf "%s length %d exceeds max-body %d" what len
         srv.cfg.max_body_bytes);
    false
  end

(* one request; [`Continue] to keep serving the connection *)
let handle_request srv c request =
  Atomic.incr srv.requests;
  match request with
  | Protocol.Ping ->
    write_all c.fd (Protocol.ok "pong");
    `Continue
  | Protocol.Metrics ->
    write_all c.fd (Protocol.ok (metrics_json srv));
    `Continue
  | Protocol.Flush ->
    Plan_cache.flush srv.cache;
    write_all c.fd (Protocol.ok "flushed");
    `Continue
  | Protocol.Shutdown ->
    write_all c.fd (Protocol.ok "bye");
    Atomic.set srv.stop true;
    `Close
  | Protocol.Schema len ->
    if not (check_len srv c "schema" len) then `Close
    else begin
      let bytes = read_exact c len in
      (match plan_of_schema srv bytes with
      | Ok (id, _plan) -> write_all c.fd (Protocol.ok id)
      | Error m -> respond_err c m);
      `Continue
    end
  | Protocol.Validate { schema_id; len } ->
    if not (check_len srv c "document" len) then `Close
    else begin
      (match Plan_cache.find srv.cache schema_id with
      | Some plan ->
        write_all c.fd (Protocol.result (validate_body srv c plan len))
      | None ->
        (* the frame is still sound: drain the body, keep the
           connection — the client can SCHEMA and retry *)
        drain c len;
        respond_err c ("unknown schema-id " ^ schema_id));
      `Continue
    end
  | Protocol.Validate_inline { schema_len; doc_len } ->
    if
      not
        (check_len srv c "schema" schema_len
        && check_len srv c "document" doc_len)
    then `Close
    else begin
      let schema_bytes = read_exact c schema_len in
      (match plan_of_schema srv schema_bytes with
      | Ok (_id, plan) ->
        write_all c.fd (Protocol.result (validate_body srv c plan doc_len))
      | Error m ->
        drain c doc_len;
        respond_err c m);
      `Continue
    end
  | Protocol.Index_query { path_len; formula_len } ->
    if
      not
        (check_len srv c "index path" path_len
        && check_len srv c "formula" formula_len)
    then `Close
    else begin
      Atomic.incr srv.indexq_requests;
      let path = read_exact c path_len in
      let formula = read_exact c formula_len in
      (match index_query_payload srv path formula with
      | Ok payload -> write_all c.fd (Protocol.data payload)
      | Error m -> respond_err c m);
      `Continue
    end

let handle_connection srv fd =
  let c =
    { fd; buf = Bytes.create srv.cfg.chunk_bytes; pos = 0; len = 0; srv }
  in
  let rec loop () =
    match read_line c with
    | `Eof -> ()
    | `Overlong ->
      (* not answerable line-by-line any more: drop *)
      Atomic.incr srv.errors
    | `Line line -> (
      match Protocol.parse_request line with
      | Error m ->
        (* an unparseable header means the body framing is unknowable:
           answer, then drop the connection *)
        respond_err c m
      | Ok request -> (
        match handle_request srv c request with
        | `Continue -> loop ()
        | `Close -> ()))
  in
  try loop () with
  | Client_gone -> ()
  | Unix.Unix_error (_, _, _) -> Atomic.incr srv.errors

(* ---- lifecycle ------------------------------------------------------------- *)

let create cfg =
  (* a peer hanging up mid-response must surface as EPIPE (folded into
     Client_gone), not kill the process *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let domain, addr =
    match cfg.listen with
    | `Unix path ->
      (* a stale socket file from a dead daemon would fail the bind *)
      (match Unix.lstat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let lsock = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match cfg.listen with
  | `Tcp _ -> Unix.setsockopt lsock Unix.SO_REUSEADDR true
  | `Unix _ -> ());
  Unix.bind lsock addr;
  Unix.listen lsock 64;
  Unix.set_nonblock lsock;
  let bound =
    match cfg.listen with
    | `Unix _ as u -> u
    | `Tcp (host, _) -> (
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, port) -> `Tcp (host, port)
      | _ -> cfg.listen)
  in
  { cfg =
      { cfg with
        jobs = max 1 cfg.jobs;
        chunk_bytes = max 1 cfg.chunk_bytes;
        max_body_bytes = max 1 cfg.max_body_bytes };
    lsock;
    bound;
    cache = Plan_cache.create ~capacity:cfg.cache_capacity;
    indexes = { readers = []; lock = Mutex.create () };
    pool = (if cfg.jobs >= 2 then Some (Par.Pool.create cfg.jobs) else None);
    stop = Atomic.make false;
    active = Atomic.make 0;
    requests = Atomic.make 0;
    connections = Atomic.make 0;
    bytes_in = Atomic.make 0;
    errors = Atomic.make 0;
    indexq_requests = Atomic.make 0;
    indexq_docs = Atomic.make 0;
    indexq_opens = Atomic.make 0;
    indexq_open_hits = Atomic.make 0;
    folded = Atomic.make false;
    runner = None }

let endpoint srv = srv.bound
let active_connections srv = Atomic.get srv.active
let cache srv = srv.cache
let request_stop srv = Atomic.set srv.stop true

let dispatch srv fd =
  Atomic.incr srv.connections;
  Atomic.incr srv.active;
  let task () =
    Fun.protect
      ~finally:(fun () ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        Atomic.decr srv.active)
      (fun () -> handle_connection srv fd)
  in
  match srv.pool with
  | Some pool -> Par.Pool.submit pool task
  | None -> task ()

let run srv =
  let rec accept_loop () =
    if Atomic.get srv.stop then ()
    else begin
      (match Unix.select [ srv.lsock ] [] [] 0.05 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept srv.lsock with
        | fd, _ -> dispatch srv fd
        | exception
            Unix.Unix_error
              ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      accept_loop ()
    end
  in
  accept_loop ();
  (* drain: in-flight (and queued) connections run to completion; idle
     connections notice the stop flag at their next boundary poll *)
  while Atomic.get srv.active > 0 do
    Unix.sleepf 0.005
  done;
  (match srv.pool with Some pool -> Par.Pool.shutdown pool | None -> ());
  (try Unix.close srv.lsock with Unix.Unix_error (_, _, _) -> ());
  (match srv.bound with
  | `Unix path -> (
    try Unix.unlink path with Unix.Unix_error (_, _, _) -> ())
  | `Tcp _ -> ())

(* Metrics registries are domain-local, so the fold must run on the
   domain whose dump should carry the counters: the CLI calls this
   right after [run] returns on the main domain; [stop] calls it after
   joining the [start] domain.  Once, whichever comes first. *)
let fold_counters srv =
  if not (Atomic.exchange srv.folded true) then
    List.iter
      (fun (name, v) -> if v > 0 then Obs.Metrics.add name v)
      (counters srv)

let start cfg =
  let srv = create cfg in
  srv.runner <- Some (Domain.spawn (fun () -> run srv));
  srv

let stop srv =
  request_stop srv;
  (match srv.runner with
  | Some d ->
    srv.runner <- None;
    Domain.join d
  | None -> ());
  fold_counters srv
