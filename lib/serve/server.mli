(** The [jsonlogic serve] daemon: a long-lived validation service over
    a Unix or TCP socket.

    One process compiles each schema once into an immutable
    {!Jschema.Validate.Plan} (kept in a {!Plan_cache}) and validates
    any number of documents against it.  Request bodies are never
    materialized: they are fed chunk-by-chunk into
    {!Jschema.Validate.Plan.run_lexer} through the resumable feed
    lexer, so per-request memory follows nesting depth plus one chunk,
    not document size — a request body larger than RAM validates in a
    bounded window.

    The [INDEXQ] verb additionally serves corpus-index queries: the
    daemon opens the named index read-only (validated exactly like
    [index query], body checksum included), keeps up to 16 open
    readers keyed by path and pinned to the file's (mtime, size) — a
    rebuilt index is transparently re-opened — and answers with a
    [DATA]-framed payload whose rows are byte-identical to the
    [index query] CLI output.  Each query draws a fresh budget.

    {b Concurrency.}  The accept loop runs on the calling domain and
    dispatches each connection to the [lib/par] domain pool ([jobs]
    lanes: the accept loop plus [jobs - 1] connection workers;
    [jobs <= 1] handles connections inline, serially).  Plans are
    immutable and shared; every request draws a fresh
    {!Obs.Budget.t}, so budgets never cross requests or domains.

    {b Shutdown.}  {!request_stop} (signal-handler-safe) makes the
    accept loop stop accepting; {!run} then drains: every accepted
    connection finishes its in-flight request stream, the pool is
    joined, the socket closed and (for Unix sockets) unlinked.  The
    [SHUTDOWN] verb answers [OK bye], then triggers the same path.

    {b Faults.}  A connection that lies about its framing — truncated
    header, body shorter than declared, a declared length beyond
    [max_body_bytes], a header line longer than
    {!Protocol.max_header_bytes} — is answered with [ERR] where a
    response is still deliverable and then dropped; other connections,
    and earlier pipelined requests on the same connection, are
    unaffected.  No fault path leaks a connection slot or a
    plan-cache entry.

    {b Counters} (atomics, readable via {!counters}, served by the
    [METRICS] verb, and folded into an {!Obs.Metrics} registry by
    {!fold_counters} / {!stop}): [serve.requests],
    [serve.connections], [serve.bytes_in],
    [serve.plan_cache.{hit,miss,evict}],
    [serve.indexq.{requests,docs,opens,open_hits}],
    [serve.errors]. *)

type endpoint = [ `Unix of string | `Tcp of string * int ]
(** Where to listen: a Unix-domain socket path, or a TCP host/port. *)

type config = {
  listen : endpoint;
  jobs : int;  (** pool lanes, accept loop included; [<= 1] = inline *)
  cache_capacity : int;  (** plan-cache entries kept (LRU beyond) *)
  chunk_bytes : int;  (** socket read size = lexer feed granularity *)
  max_body_bytes : int;  (** largest declared schema/document length *)
  fresh_budget : unit -> Obs.Budget.t;  (** drawn once per request *)
}

val default_config : endpoint -> config
(** [jobs = 1], 64-entry cache, 64 KiB chunks, 64 MiB body ceiling,
    depth-only default budgets. *)

type t

val create : config -> t
(** Bind and listen (Unix socket paths are unlinked first if they hold
    a stale socket).  The socket accepts connections immediately; they
    are serviced once {!run} starts.  @raise Unix.Unix_error on bind
    failures. *)

val run : t -> unit
(** The accept loop.  Blocks until {!request_stop} (or a [SHUTDOWN]
    request) and the subsequent drain complete.  Call at most once. *)

val start : config -> t
(** {!create}, then {!run} on a fresh background domain — the
    in-process form the tests and the bench harness use. *)

val stop : t -> unit
(** {!request_stop}, then wait for {!run} to finish (joining the
    {!start} domain if there is one).  Idempotent. *)

val request_stop : t -> unit
(** Flip the stop flag only — async-signal-safe, so SIGINT/SIGTERM
    handlers can call it directly. *)

val endpoint : t -> endpoint
(** The bound endpoint.  For [`Tcp (host, 0)] configs the kernel picks
    the port; this reports the actual one. *)

val active_connections : t -> int
(** Connections accepted and not yet fully closed (the drain gate). *)

val counters : t -> (string * int) list
(** Current counter values, sorted by name. *)

val fold_counters : t -> unit
(** Add the counters to the {b calling} domain's {!Obs.Metrics}
    registry (registries are domain-local, so the caller decides whose
    dump carries them — the CLI calls this right after {!run} returns).
    At most once per server: later calls, and the one {!stop} makes,
    are no-ops. *)

val cache : t -> Plan_cache.t
(** The live plan cache (tests assert size/stats through this). *)
