type entry = { plan : Jschema.Validate.Plan.t; mutable stamp : int }

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  mutable clock : int;  (* recency stamps; bumped under the mutex *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

let create ~capacity =
  { mutex = Mutex.create ();
    table = Hashtbl.create 16;
    capacity = max 1 capacity;
    clock = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0 }

let id_of_schema bytes = Digest.to_hex (Digest.string bytes)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t id =
  locked t (fun () ->
      match Hashtbl.find_opt t.table id with
      | Some e ->
        Atomic.incr t.hits;
        t.clock <- t.clock + 1;
        e.stamp <- t.clock;
        Some e.plan
      | None ->
        Atomic.incr t.misses;
        None)

let evict_lru t =
  (* O(size) sweep for the oldest stamp; the cache holds schemas, not
     documents — tens of entries, not millions *)
  let oldest = ref None in
  Hashtbl.iter
    (fun id e ->
      match !oldest with
      | Some (_, s) when s <= e.stamp -> ()
      | _ -> oldest := Some (id, e.stamp))
    t.table;
  match !oldest with
  | Some (id, _) ->
    Hashtbl.remove t.table id;
    Atomic.incr t.evictions
  | None -> ()

let add t id plan =
  locked t (fun () ->
      t.clock <- t.clock + 1;
      (match Hashtbl.find_opt t.table id with
      | Some _ -> Hashtbl.remove t.table id
      | None -> ());
      Hashtbl.replace t.table id { plan; stamp = t.clock };
      while Hashtbl.length t.table > t.capacity do
        evict_lru t
      done)

let size t = locked t (fun () -> Hashtbl.length t.table)

let flush t = locked t (fun () -> Hashtbl.reset t.table)

let stats t =
  (Atomic.get t.hits, Atomic.get t.misses, Atomic.get t.evictions)
