type request =
  | Schema of int
  | Validate of { schema_id : string; len : int }
  | Validate_inline of { schema_len : int; doc_len : int }
  | Index_query of { path_len : int; formula_len : int }
  | Ping
  | Metrics
  | Flush
  | Shutdown

(* the longest legitimate header is VALIDATE + a digest + a length *)
let max_header_bytes = 256

(* Lengths are decimal digit runs that fit in an int: [int_of_string]
   alone would admit OCaml literal syntax (0x.., 1_000) and a leading
   sign, none of which the framing grammar contains. *)
let parse_len s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    int_of_string_opt s
  else None

let parse_request line =
  match String.split_on_char ' ' line with
  | [ "SCHEMA"; len ] -> (
    match parse_len len with
    | Some n -> Ok (Schema n)
    | None -> Error ("bad length " ^ len))
  | [ "VALIDATE"; schema_id; len ] when schema_id <> "" -> (
    match parse_len len with
    | Some n -> Ok (Validate { schema_id; len = n })
    | None -> Error ("bad length " ^ len))
  | [ "VALIDATEI"; slen; dlen ] -> (
    match (parse_len slen, parse_len dlen) with
    | Some s, Some d -> Ok (Validate_inline { schema_len = s; doc_len = d })
    | _ -> Error (Printf.sprintf "bad lengths %s %s" slen dlen))
  | [ "INDEXQ"; plen; flen ] -> (
    match (parse_len plen, parse_len flen) with
    | Some p, Some f -> Ok (Index_query { path_len = p; formula_len = f })
    | _ -> Error (Printf.sprintf "bad lengths %s %s" plen flen))
  | [ "PING" ] -> Ok Ping
  | [ "METRICS" ] -> Ok Metrics
  | [ "FLUSH" ] -> Ok Flush
  | [ "SHUTDOWN" ] -> Ok Shutdown
  | verb :: _ -> Error ("unknown request " ^ verb)
  | [] -> Error "empty request"

let render_request = function
  | Schema len -> Printf.sprintf "SCHEMA %d\n" len
  | Validate { schema_id; len } ->
    Printf.sprintf "VALIDATE %s %d\n" schema_id len
  | Validate_inline { schema_len; doc_len } ->
    Printf.sprintf "VALIDATEI %d %d\n" schema_len doc_len
  | Index_query { path_len; formula_len } ->
    Printf.sprintf "INDEXQ %d %d\n" path_len formula_len
  | Ping -> "PING\n"
  | Metrics -> "METRICS\n"
  | Flush -> "FLUSH\n"
  | Shutdown -> "SHUTDOWN\n"

(* responses are exactly one line: fold any embedded line break *)
let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let ok payload = "OK " ^ one_line payload ^ "\n"
let result verdict = "RESULT " ^ one_line verdict ^ "\n"
let err message = "ERR " ^ one_line message ^ "\n"

(* the one multi-line response: a length-framed payload, so verdict
   rows keep their own newlines *)
let data payload = Printf.sprintf "DATA %d\n%s" (String.length payload) payload

let parse_data_header line =
  match String.split_on_char ' ' line with
  | [ "DATA"; len ] -> parse_len len
  | _ -> None

let parse_response line =
  let tagged tag =
    let n = String.length tag in
    if String.length line >= n && String.sub line 0 n = tag then
      Some (String.sub line n (String.length line - n))
    else None
  in
  match tagged "OK " with
  | Some payload -> Ok payload
  | None -> (
    match tagged "RESULT " with
    | Some verdict -> Ok verdict
    | None -> (
      match tagged "ERR " with
      | Some m -> Error m
      | None -> Error ("malformed response line: " ^ line)))
