(** Content-hash-keyed cache of compiled validation plans.

    The compile-once pipeline pays schema analysis once per schema
    {e text}: the key is {!id_of_schema} — a digest of the exact
    schema bytes — so a client that re-sends the same schema hits the
    plan the first submission compiled, and two textually different
    spellings of the same schema are (harmlessly) distinct entries.

    Compiled plans are immutable and freely shared across domains; the
    cache itself is a mutex-guarded LRU bounded by [capacity], so a
    daemon fed an unbounded stream of distinct schemas holds at most
    [capacity] plans — the eviction counter makes that pressure
    visible.

    Counters (returned by {!stats}, surfaced by the daemon as
    [serve.plan_cache.hit]/[.miss]/[.evict]): a {!find} that returns a
    plan is a hit, one that returns [None] a miss, and every entry
    dropped by capacity pressure (not {!flush}) an eviction. *)

type t

val create : capacity:int -> t
(** [create ~capacity] holds at most [max 1 capacity] plans. *)

val id_of_schema : string -> string
(** Digest of the schema bytes, in hex — the wire-visible schema-id. *)

val find : t -> string -> Jschema.Validate.Plan.t option
(** Look an id up, refreshing its recency.  Counts a hit or a miss. *)

val add : t -> string -> Jschema.Validate.Plan.t -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used
    entry while over capacity.  Racing inserts of the same id are
    benign: both plans decide the same relation, last one stays. *)

val size : t -> int
(** Entries currently cached. *)

val flush : t -> unit
(** Drop every entry (not counted as evictions). *)

val stats : t -> int * int * int
(** [(hits, misses, evictions)] since creation. *)
