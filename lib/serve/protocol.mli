(** The wire protocol of [jsonlogic serve]: length-framed requests,
    line-framed responses.

    A request is one ASCII header line ([\n]-terminated) followed by
    exactly the number of raw body bytes the header declares:

    {v
    SCHEMA <len>\n<len schema bytes>          register a schema
    VALIDATE <schema-id> <len>\n<len bytes>   validate one document
    VALIDATEI <schema-len> <doc-len>\n<schema bytes><doc bytes>
                                              validate with an inline schema
    INDEXQ <path-len> <formula-len>\n<path bytes><formula bytes>
                                              query a corpus index
    PING\n                                    liveness probe
    METRICS\n                                 serve counters as one JSON line
    FLUSH\n                                   empty the plan cache
    SHUTDOWN\n                                graceful stop (drains in-flight)
    v}

    Requests may be pipelined; the daemon answers in request order, one
    response line per request:

    {v
    OK <payload>\n        SCHEMA (payload = schema-id), PING, METRICS,
                          FLUSH, SHUTDOWN
    RESULT <verdict>\n    VALIDATE/VALIDATEI; the verdict text is
                          byte-identical to the cell `validate --stream`
                          prints: `valid`, `INVALID`, or `error: …`
    DATA <len>\n<len bytes>
                          INDEXQ; the payload is one
                          `<lineno>\t<verdict>\n` row per indexed
                          document, byte-identical to `index query`
    ERR <message>\n       protocol, schema, formula or index faults
    v}

    Lengths are decimal digit runs; anything else — including an
    overflowing digit run — is a framing error.  Body lengths are
    additionally bounded by the server's [max_body_bytes]. *)

type request =
  | Schema of int  (** [SCHEMA len] *)
  | Validate of { schema_id : string; len : int }  (** [VALIDATE id len] *)
  | Validate_inline of { schema_len : int; doc_len : int }
      (** [VALIDATEI schema-len doc-len] *)
  | Index_query of { path_len : int; formula_len : int }
      (** [INDEXQ path-len formula-len] *)
  | Ping
  | Metrics
  | Flush
  | Shutdown

val parse_request : string -> (request, string) result
(** Parse one header line (without its terminating [\n]). *)

val render_request : request -> string
(** The header line for a request, including the [\n] — what a client
    writes before the body bytes. *)

(** {1 Responses} *)

val ok : string -> string
(** ["OK <payload>\n"].  Embedded newlines are folded to spaces: a
    response is always exactly one line. *)

val result : string -> string
(** ["RESULT <verdict>\n"], same folding. *)

val err : string -> string
(** ["ERR <message>\n"], same folding. *)

val data : string -> string
(** ["DATA <len>\n<payload>"] — the only length-framed response; the
    payload keeps its embedded newlines (one verdict row per line). *)

val parse_data_header : string -> int option
(** [Some len] when a response line (without its [\n]) is a [DATA]
    header; the caller then reads exactly [len] payload bytes. *)

val parse_response : string -> (string, string) result
(** Split a response line (without its [\n]) back into [Ok payload]
    (for [OK]/[RESULT]) or [Error message] (for [ERR]). *)

val max_header_bytes : int
(** Ceiling on the header line a server will buffer before dropping the
    connection — longer lines cannot be a well-formed request. *)
