type t = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
  mutable closed : bool;
}

exception Server_gone

let connect endpoint =
  let domain, addr =
    match endpoint with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
      (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
     raise e);
  { fd; buf = Bytes.create 8192; pos = 0; len = 0; closed = false }

let close c =
  if not c.closed then begin
    c.closed <- true;
    try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()
  end

let fd c = c.fd

let send_raw c s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      match Unix.write c.fd b off (Bytes.length b - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Server_gone
  in
  go 0

let send c request ~body =
  send_raw c (Protocol.render_request request);
  List.iter (send_raw c) body

let read_line c =
  let line = Buffer.create 64 in
  let rec go () =
    if c.pos >= c.len then begin
      c.pos <- 0;
      c.len <-
        (match Unix.read c.fd c.buf 0 (Bytes.length c.buf) with
        | n -> n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> c.len
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          0);
      if c.len = 0 then raise Server_gone
    end;
    match Bytes.index_from_opt c.buf c.pos '\n' with
    | Some nl when nl < c.len ->
      Buffer.add_subbytes line c.buf c.pos (nl - c.pos);
      c.pos <- nl + 1;
      Buffer.contents line
    | _ ->
      Buffer.add_subbytes line c.buf c.pos (c.len - c.pos);
      c.pos <- c.len;
      go ()
  in
  go ()

let recv c = Protocol.parse_response (read_line c)

(* [len] payload bytes following a DATA header *)
let read_exact c len =
  let out = Buffer.create len in
  let rec go remaining =
    if remaining = 0 then Buffer.contents out
    else begin
      if c.pos >= c.len then begin
        c.pos <- 0;
        let rec read_once () =
          match Unix.read c.fd c.buf 0 (Bytes.length c.buf) with
          | n -> n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_once ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            0
        in
        c.len <- read_once ();
        if c.len = 0 then raise Server_gone
      end;
      let n = min (c.len - c.pos) remaining in
      Buffer.add_subbytes out c.buf c.pos n;
      c.pos <- c.pos + n;
      go (remaining - n)
    end
  in
  go len

let recv_data c =
  let line = read_line c in
  match Protocol.parse_data_header line with
  | Some len -> Ok (read_exact c len)
  | None -> Protocol.parse_response line

let roundtrip c request ~body =
  send c request ~body;
  recv c

let ping c = roundtrip c Protocol.Ping ~body:[]
let metrics c = roundtrip c Protocol.Metrics ~body:[]
let flush c = roundtrip c Protocol.Flush ~body:[]
let shutdown c = roundtrip c Protocol.Shutdown ~body:[]

let put_schema c bytes =
  roundtrip c (Protocol.Schema (String.length bytes)) ~body:[ bytes ]

let validate c ~schema_id doc =
  roundtrip c
    (Protocol.Validate { schema_id; len = String.length doc })
    ~body:[ doc ]

let validate_inline c ~schema doc =
  roundtrip c
    (Protocol.Validate_inline
       { schema_len = String.length schema; doc_len = String.length doc })
    ~body:[ schema; doc ]

let index_query c ~index formula =
  send c
    (Protocol.Index_query
       { path_len = String.length index;
         formula_len = String.length formula })
    ~body:[ index; formula ];
  recv_data c
