(** Deterministic pseudo-random number generation (splitmix64).

    The paper evaluates nothing on external data; all workloads in this
    reproduction are synthesized.  A self-contained seeded PRNG keeps
    every test and benchmark bit-reproducible across runs and
    machines — independent of the OCaml stdlib [Random] whose sequence
    may change between compiler versions. *)

type t

val create : int -> t
(** [create seed]. *)

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound > 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] inclusive bounds. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0,1)]. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val choose_weighted : t -> (int * 'a) list -> 'a
(** Choice by positive integer weights. *)

val split : t -> t
(** An independent generator (splitmix splitting). *)

val shuffle : t -> 'a list -> 'a list
