(** Synthetic JSON document generators for benchmarks and tests.

    All generators are driven by a {!Prng.t}, hence fully
    deterministic given a seed. *)

type profile = {
  target_size : int;  (** approximate number of JSON values *)
  max_fanout : int;  (** children per object/array *)
  key_pool : string list;  (** keys to draw from (duplicates avoided) *)
  string_pool : string list;  (** string atom values *)
  max_int : int;
  obj_weight : int;
  arr_weight : int;
  str_weight : int;
  int_weight : int;
}

val default_profile : profile
(** target 256 values, fanout ≤ 6, a 12-key pool, balanced types. *)

val generate : Prng.t -> profile -> Jsont.Value.t
(** A random document of roughly [target_size] values. *)

val sized : Prng.t -> int -> Jsont.Value.t
(** [sized rng n]: the default profile scaled to [n] values — the
    document-size axis of the scaling experiments. *)

val deep_chain : int -> Jsont.Value.t
(** A single path of the given length (worst case for height-sensitive
    algorithms). *)

val wide_object : int -> Jsont.Value.t
(** One object with [n] members (worst case for key lookup). *)

val wide_array : int -> Jsont.Value.t
(** One array with [n] distinct elements. *)

val duplicated_array : int -> Jsont.Value.t
(** One array with [n] elements where the two last are equal — a
    [Unique] violation at the end, adversarial for the quadratic
    check. *)

val api_record : Prng.t -> int -> Jsont.Value.t
(** A realistic API-style record: user object with profile, tags,
    order history — the motivating shape of §1; [int] scales the
    number of history entries. *)
