(** Random formula generators over a shared key pool, used for scaling
    benchmarks (formula-size axis) and for the agreement property
    tests between independently implemented semantics (det vs general
    evaluation, JSL vs schema, logic vs automaton). *)

type config = {
  size : int;  (** approximate AST size *)
  keys : string list;  (** key pool — matches {!Gen_json.default_profile} *)
  strings : string list;
  max_int : int;
  allow_nondet : bool;  (** [Keys]/[Range] steps, regex modalities *)
  allow_star : bool;  (** recursion *)
  allow_eq_paths : bool;  (** the binary [EQ(α,β)] *)
  allow_negation : bool;
}

val default : config
(** size 12, default pools, the full deterministic fragment. *)

val jnl : Prng.t -> config -> Jlogic.Jnl.form
val jnl_path : Prng.t -> config -> Jlogic.Jnl.path

val jsl : Prng.t -> config -> Jlogic.Jsl.t
(** Non-recursive JSL; honors [allow_nondet] (regex/range modalities)
    and [allow_negation].  Never generates [Var]. *)

val jsl_thm2 : Prng.t -> config -> Jlogic.Jsl.t
(** JSL restricted to the Theorem 2 fragment (only the [~(A)] node
    test), suitable for round-tripping through JNL. *)

val jsl_rec : Prng.t -> config -> n_defs:int -> Jlogic.Jsl_rec.t
(** A well-formed recursive JSL expression with [n_defs] definitions;
    references across definitions are always guarded by a modal
    operator, so well-formedness holds by construction. *)
