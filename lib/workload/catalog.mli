(** The shared schema catalog: the Table 1 keyword cases plus the two
    synthetic schema families the validation benchmark and the
    compiled-vs-interpreted differential suite both consume (a single
    source, so the bench and the tests cannot drift apart). *)

val keyword_cases : (string * string * (string * bool) list) list
(** [(keyword, schema text, (document text, expected verdict) list)] —
    one case per Table 1 keyword, including [definitions]/[$ref]. *)

val catalog_schema : string
(** A property-heavy "product record" schema: 150 properties (a fifth
    required, most absent from any given document) over five
    [definitions], [patternProperties], [additionalProperties], tuple
    [items] and [uniqueItems] — the workload where the interpreter's
    per-property [List.assoc] scans go quadratic in the member count
    while the compiled plan pays one dispatch-table probe per present
    member. *)

val catalog_doc : Prng.t -> Jsont.Value.t
(** A document for {!catalog_schema}: required fields present,
    optional/pattern/additional keys drawn at random; ~30% of
    documents carry one violation so both verdicts stay exercised. *)

val ref_sharing_schema : int -> string
(** [ref_sharing_schema k]: definitions [d0 … dk] where [d{i+1}] is
    [anyOf [$ref d_i; $ref d_i]].  Validating {!ref_sharing_doc}
    (which fails [d0]) costs the interpreter 2^k leaf visits; the
    compiled plan's (node, subschema) memoization keeps it linear
    in [k]. *)

val ref_sharing_doc : Jsont.Value.t
