(* splitmix64 (Steele, Lea, Flood 2014) *)
type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits: OCaml's native int is 63-bit, bit 62 is its sign *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Prng.in_range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let choose t = function
  | [] -> invalid_arg "Prng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let choose_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Prng.choose_weighted: weights must be positive";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.choose_weighted: unreachable"
    | (w, x) :: rest -> if acc + w > target then x else go (acc + w) rest
  in
  go 0 weighted

let split t = { state = mix (next t) }

let shuffle t l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
