module Jnl = Jlogic.Jnl
module Jsl = Jlogic.Jsl
module Value = Jsont.Value

type config = {
  size : int;
  keys : string list;
  strings : string list;
  max_int : int;
  allow_nondet : bool;
  allow_star : bool;
  allow_eq_paths : bool;
  allow_negation : bool;
}

let default =
  { size = 12;
    keys = Gen_json.default_profile.Gen_json.key_pool;
    strings = Gen_json.default_profile.Gen_json.string_pool;
    max_int = 1000;
    allow_nondet = false;
    allow_star = false;
    allow_eq_paths = false;
    allow_negation = true }

(* a small constant document for EQ(α, A) tests *)
let small_doc rng cfg =
  match Prng.int rng 4 with
  | 0 -> Value.Num (Prng.int rng (max 1 cfg.max_int))
  | 1 -> Value.Str (Prng.choose rng cfg.strings)
  | 2 -> Value.Arr [ Value.Num (Prng.int rng 10) ]
  | _ -> Value.Obj [ (Prng.choose rng cfg.keys, Value.Num (Prng.int rng 10)) ]

let key_regex rng cfg =
  match Prng.int rng 3 with
  | 0 ->
    Rexp.Syntax.alt
      (Rexp.Syntax.literal (Prng.choose rng cfg.keys))
      (Rexp.Syntax.literal (Prng.choose rng cfg.keys))
  | 1 ->
    let k = Prng.choose rng cfg.keys in
    let prefix = String.sub k 0 (min 2 (String.length k)) in
    Rexp.Syntax.cat (Rexp.Syntax.literal prefix) Rexp.Syntax.all
  | _ -> Rexp.Syntax.all

let rec gen_path rng cfg budget : Jnl.path =
  if budget <= 1 then gen_step rng cfg 1
  else
    match Prng.int rng 4 with
    | 0 | 1 ->
      let left = budget / 2 and right = budget - (budget / 2) in
      Jnl.Seq (gen_path rng cfg left, gen_path rng cfg right)
    | 2 when cfg.allow_nondet ->
      let left = budget / 2 and right = budget - (budget / 2) in
      Jnl.Alt (gen_path rng cfg left, gen_path rng cfg right)
    | _ ->
      if cfg.allow_star && Prng.int rng 3 = 0 then
        Jnl.Star (gen_step rng cfg (budget - 1))
      else Jnl.Seq (gen_step rng cfg 1, gen_path rng cfg (budget - 1))

and gen_step rng cfg budget : Jnl.path =
  let choices =
    [ (4, `Key); (2, `Idx); (1, `Self) ]
    @ (if cfg.allow_nondet then [ (2, `Keys); (2, `Range) ] else [])
    @ if budget > 2 then [ (1, `Test) ] else []
  in
  match Prng.choose_weighted rng choices with
  | `Key -> Jnl.Key (Prng.choose rng cfg.keys)
  | `Idx -> Jnl.Idx (Prng.in_range rng (-2) 3)
  | `Self -> Jnl.Self
  | `Keys -> Jnl.Keys (key_regex rng cfg)
  | `Range ->
    let i = Prng.int rng 3 in
    if Prng.bool rng then Jnl.Range (i, Some (i + Prng.int rng 3))
    else Jnl.Range (i, None)
  | `Test -> Jnl.Test (gen_form rng cfg (budget - 1))

and gen_form rng cfg budget : Jnl.form =
  if budget <= 1 then
    if Prng.int rng 4 = 0 then Jnl.True else Jnl.Exists (gen_step rng cfg 1)
  else
    let choices =
      [ (3, `Exists); (2, `And); (2, `Or); (2, `Eq_doc) ]
      @ (if cfg.allow_negation then [ (2, `Not) ] else [])
      @ if cfg.allow_eq_paths then [ (1, `Eq_paths) ] else []
    in
    match Prng.choose_weighted rng choices with
    | `Exists -> Jnl.Exists (gen_path rng cfg (budget - 1))
    | `Not -> Jnl.Not (gen_form rng cfg (budget - 1))
    | `And ->
      Jnl.And (gen_form rng cfg (budget / 2), gen_form rng cfg (budget - (budget / 2)))
    | `Or ->
      Jnl.Or (gen_form rng cfg (budget / 2), gen_form rng cfg (budget - (budget / 2)))
    | `Eq_doc -> Jnl.Eq_doc (gen_path rng cfg (max 1 (budget - 2)), small_doc rng cfg)
    | `Eq_paths ->
      Jnl.Eq_paths
        (gen_path rng cfg (budget / 2), gen_path rng cfg (budget - (budget / 2)))

let jnl rng cfg = gen_form rng cfg (max 2 cfg.size)
let jnl_path rng cfg = gen_path rng cfg (max 1 (cfg.size / 2))

(* ---- JSL ------------------------------------------------------------------ *)

let node_test rng cfg : Jsl.node_test =
  match Prng.int rng 10 with
  | 0 -> Jsl.Is_obj
  | 1 -> Jsl.Is_arr
  | 2 -> Jsl.Is_str
  | 3 -> Jsl.Is_int
  | 4 -> Jsl.Pattern (Rexp.Syntax.literal (Prng.choose rng cfg.strings))
  | 5 -> Jsl.Min (Prng.int rng (max 1 cfg.max_int))
  | 6 -> Jsl.Max (Prng.int rng (max 1 cfg.max_int))
  | 7 -> Jsl.Mult_of (1 + Prng.int rng 6)
  | 8 ->
    if Prng.bool rng then Jsl.Min_ch (Prng.int rng 4) else Jsl.Max_ch (Prng.int rng 6)
  | _ -> Jsl.Eq_doc (small_doc rng cfg)

let rec gen_jsl rng cfg ~thm2 ~vars budget : Jsl.t =
  if budget <= 1 then
    match vars with
    | _ :: _ when Prng.int rng 4 = 0 -> Jsl.Var (Prng.choose rng vars)
    | _ ->
      if thm2 then
        if Prng.bool rng then Jsl.True else Jsl.Test (Jsl.Eq_doc (small_doc rng cfg))
      else Jsl.Test (node_test rng cfg)
  else
    let choices =
      [ (3, `Dia); (3, `Box); (2, `And); (2, `Or); (2, `Atom) ]
      @ if cfg.allow_negation then [ (2, `Not) ] else []
    in
    match Prng.choose_weighted rng choices with
    | `Atom -> gen_jsl rng cfg ~thm2 ~vars 1
    | `Not -> Jsl.Not (gen_jsl rng cfg ~thm2 ~vars (budget - 1))
    | `And ->
      Jsl.And
        ( gen_jsl rng cfg ~thm2 ~vars (budget / 2),
          gen_jsl rng cfg ~thm2 ~vars (budget - (budget / 2)) )
    | `Or ->
      Jsl.Or
        ( gen_jsl rng cfg ~thm2 ~vars (budget / 2),
          gen_jsl rng cfg ~thm2 ~vars (budget - (budget / 2)) )
    | `Dia | `Box ->
      let inner = gen_jsl rng cfg ~thm2 ~vars (budget - 1) in
      let dia = Prng.bool rng in
      if cfg.allow_nondet && Prng.int rng 3 = 0 then
        if Prng.bool rng then
          let e = key_regex rng cfg in
          if dia then Jsl.Dia_keys (e, inner) else Jsl.Box_keys (e, inner)
        else
          let i = Prng.int rng 3 in
          let j = if Prng.bool rng then Some (i + Prng.int rng 3) else None in
          if dia then Jsl.Dia_range (i, j, inner) else Jsl.Box_range (i, j, inner)
      else if Prng.bool rng then
        let k = Prng.choose rng cfg.keys in
        if dia then Jsl.dia_key k inner else Jsl.box_key k inner
      else
        let i = Prng.int rng 3 in
        if dia then Jsl.dia_idx i inner else Jsl.box_idx i inner

let jsl rng cfg = gen_jsl rng cfg ~thm2:false ~vars:[] (max 2 cfg.size)
let jsl_thm2 rng cfg = gen_jsl rng cfg ~thm2:true ~vars:[] (max 2 cfg.size)

let jsl_rec rng cfg ~n_defs =
  let names = List.init (max 1 n_defs) (fun i -> "g" ^ string_of_int i) in
  (* definition i may reference any symbol, but only under a modality:
     generate a modality-guarded body whose operand can use all vars *)
  let guarded_body () =
    let inner = gen_jsl rng cfg ~thm2:false ~vars:names (max 2 (cfg.size / 2)) in
    if Prng.bool rng then Jsl.box_key (Prng.choose rng cfg.keys) inner
    else Jsl.Dia_range (0, None, inner)
  in
  let defs =
    List.map
      (fun name ->
        ( name,
          match Prng.int rng 3 with
          | 0 -> guarded_body ()
          | 1 -> Jsl.Or (Jsl.Test (node_test rng cfg), guarded_body ())
          | _ -> Jsl.And (guarded_body (), gen_jsl rng cfg ~thm2:false ~vars:[] 3) ))
      names
  in
  let base =
    Jsl.Or (Jsl.Var (Prng.choose rng names), gen_jsl rng cfg ~thm2:false ~vars:[] 3)
  in
  Jlogic.Jsl_rec.make_exn ~defs ~base
