module Value = Jsont.Value

type profile = {
  target_size : int;
  max_fanout : int;
  key_pool : string list;
  string_pool : string list;
  max_int : int;
  obj_weight : int;
  arr_weight : int;
  str_weight : int;
  int_weight : int;
}

let default_profile =
  { target_size = 256;
    max_fanout = 6;
    key_pool =
      [ "id"; "name"; "value"; "items"; "meta"; "tags"; "type"; "data";
        "next"; "info"; "key"; "flags" ];
    string_pool = [ "alpha"; "beta"; "gamma"; "delta"; "x"; "longer string value" ];
    max_int = 1000;
    obj_weight = 3;
    arr_weight = 2;
    str_weight = 2;
    int_weight = 3 }

let generate rng p =
  (* budget-driven: each emitted value decrements the budget; containers
     spend part of the remaining budget on their children *)
  let budget = ref (max 1 p.target_size) in
  let atom () =
    decr budget;
    if Prng.int rng (p.str_weight + p.int_weight) < p.str_weight then
      Value.Str (Prng.choose rng p.string_pool)
    else Value.Num (Prng.int rng (max 1 p.max_int))
  in
  let rec value depth =
    if !budget <= 1 || depth > 64 then atom ()
    else
      let kind =
        Prng.choose_weighted rng
          [ (p.obj_weight, `Obj); (p.arr_weight, `Arr);
            (p.str_weight, `Str); (p.int_weight, `Int) ]
      in
      match kind with
      | `Str | `Int -> atom ()
      | `Arr ->
        decr budget;
        let n = min (Prng.in_range rng 0 p.max_fanout) !budget in
        Value.Arr (List.init n (fun _ -> value (depth + 1)))
      | `Obj ->
        decr budget;
        let n = min (Prng.in_range rng 0 p.max_fanout) !budget in
        let keys =
          let rec take acc k pool =
            if k = 0 then acc
            else
              match pool with
              | [] -> acc
              | _ ->
                let key = Prng.choose rng pool in
                take (key :: acc) (k - 1) (List.filter (fun x -> x <> key) pool)
          in
          take [] n p.key_pool
        in
        Value.Obj (List.map (fun k -> (k, value (depth + 1))) keys)
  in
  (* The branching process can die out early; retry (deterministically)
     and keep the largest attempt until we are within a factor two of
     the target.  The root is forced to be a container so documents look
     like JSON in the wild. *)
  let attempt () =
    budget := max 1 p.target_size;
    match value 0 with
    | (Value.Obj _ | Value.Arr _) as v -> v
    | atom -> Value.Obj [ ("value", atom) ]
  in
  let rec search best best_size tries =
    if tries = 0 || best_size * 2 >= p.target_size then best
    else
      let v = attempt () in
      let size = Value.size v in
      if size > best_size then search v size (tries - 1)
      else search best best_size (tries - 1)
  in
  let first = attempt () in
  search first (Value.size first) 20

let sized rng n = generate rng { default_profile with target_size = n }

let rec deep_chain n =
  if n <= 0 then Value.Num 0 else Value.Obj [ ("next", deep_chain (n - 1)) ]

let wide_object n =
  Value.Obj (List.init n (fun i -> ("k" ^ string_of_int i, Value.Num i)))

let wide_array n = Value.Arr (List.init n (fun i -> Value.Num i))

let duplicated_array n =
  let n = max 2 n in
  Value.Arr
    (List.init n (fun i -> Value.Num (if i = n - 1 then n - 2 else i)))

let api_record rng n_orders =
  let status = [ "pending"; "shipped"; "delivered"; "cancelled" ] in
  let order i =
    Value.Obj
      [ ("order_id", Value.Num (1000 + i));
        ("status", Value.Str (Prng.choose rng status));
        ("total", Value.Num (Prng.in_range rng 5 500));
        ( "lines",
          Value.Arr
            (List.init (Prng.in_range rng 1 4) (fun j ->
                 Value.Obj
                   [ ("sku", Value.Str (Printf.sprintf "SKU-%d-%d" i j));
                     ("qty", Value.Num (Prng.in_range rng 1 9)) ])) ) ]
  in
  Value.Obj
    [ ("id", Value.Num (Prng.int rng 100000));
      ( "name",
        Value.Obj
          [ ("first", Value.Str (Prng.choose rng [ "John"; "Sue"; "Ana"; "Li" ]));
            ("last", Value.Str (Prng.choose rng [ "Doe"; "Smith"; "Silva" ])) ] );
      ("age", Value.Num (Prng.in_range rng 18 90));
      ( "hobbies",
        Value.Arr
          (List.map
             (fun s -> Value.Str s)
             (Prng.shuffle rng [ "fishing"; "yoga"; "chess" ])) );
      ("orders", Value.Arr (List.init (max 0 n_orders) order)) ]
