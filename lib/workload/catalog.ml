module Value = Jsont.Value

(* ---- Table 1 keyword coverage cases -------------------------------------- *)

let keyword_cases =
  [ ("type(string)", {|{"type":"string"}|}, [ ({|"x"|}, true); ("3", false) ]);
    ("pattern", {|{"type":"string","pattern":"(01)+"}|},
     [ ({|"0101"|}, true); ({|"010"|}, false) ]);
    ("type(number)", {|{"type":"number"}|}, [ ("3", true); ({|"3"|}, false) ]);
    ("multipleOf", {|{"type":"number","multipleOf":4}|}, [ ("8", true); ("9", false) ]);
    ("minimum", {|{"type":"number","minimum":5}|}, [ ("5", true); ("4", false) ]);
    ("maximum", {|{"type":"number","maximum":12}|}, [ ("12", true); ("13", false) ]);
    ("type(object)", {|{"type":"object"}|}, [ ("{}", true); ("[]", false) ]);
    ("required", {|{"type":"object","required":["k"]}|},
     [ ({|{"k":1}|}, true); ({|{"j":1}|}, false) ]);
    ("minProperties", {|{"type":"object","minProperties":1}|},
     [ ({|{"a":1}|}, true); ("{}", false) ]);
    ("maxProperties", {|{"type":"object","maxProperties":1}|},
     [ ({|{"a":1}|}, true); ({|{"a":1,"b":2}|}, false) ]);
    ("properties", {|{"type":"object","properties":{"a":{"type":"number"}}}|},
     [ ({|{"a":1}|}, true); ({|{"a":"s"}|}, false) ]);
    ("patternProperties",
     {|{"type":"object","patternProperties":{"a(b|c)a":{"type":"number","multipleOf":2}}}|},
     [ ({|{"aba":4}|}, true); ({|{"aca":3}|}, false) ]);
    ("additionalProperties",
     {|{"type":"object","properties":{"name":{"type":"string"}},
        "additionalProperties":{"type":"number","minimum":1,"maximum":1}}|},
     [ ({|{"name":"x","extra":1}|}, true); ({|{"name":"x","extra":2}|}, false) ]);
    ("type(array)", {|{"type":"array"}|}, [ ("[]", true); ("{}", false) ]);
    ("items", {|{"type":"array","items":[{"type":"string"},{"type":"string"}]}|},
     [ ({|["a","b"]|}, true); ({|["a",1]|}, false) ]);
    ("additionalItems",
     {|{"type":"array","items":[{"type":"string"}],"additionalItems":{"type":"number"}}|},
     [ ({|["a",1,2]|}, true); ({|["a",1,"b"]|}, false) ]);
    ("uniqueItems", {|{"type":"array","uniqueItems":true}|},
     [ ("[1,2]", true); ("[1,1]", false) ]);
    ("anyOf", {|{"anyOf":[{"type":"string"},{"type":"number"}]}|},
     [ ("1", true); ("[]", false) ]);
    ("allOf", {|{"allOf":[{"minimum":2},{"maximum":4}]}|},
     [ ("3", true); ("5", false) ]);
    ("not", {|{"not":{"type":"number","multipleOf":2}}|},
     [ ("3", true); ("4", false) ]);
    ("enum", {|{"enum":[1,"two",{"three":3}]}|},
     [ ({|{"three":3}|}, true); ("2", false) ]);
    ("definitions/$ref",
     {|{"definitions":{"email":{"type":"string","pattern":"[A-z]*@ciws.cl"}},
        "not":{"$ref":"#/definitions/email"}}|},
     [ ({|"a@gmail.com"|}, true); ({|"a@ciws.cl"|}, false) ]) ]

(* ---- the property-heavy catalog schema ----------------------------------- *)

(* Field specs are the single source of truth: the schema text and the
   document generator are derived from the same list, so they cannot
   drift apart. *)
type fspec = F_id | F_label | F_price | F_tags | F_dims | F_color | F_note

let field_count = 150

let fields =
  List.init field_count (fun i ->
      let spec =
        match i mod 7 with
        | 0 -> F_id
        | 1 -> F_label
        | 2 -> F_price
        | 3 -> F_tags
        | 4 -> F_dims
        | 5 -> F_color
        | _ -> F_note
      in
      (Printf.sprintf "f%02d" i, spec))

let required_fields = List.filteri (fun i _ -> i mod 5 = 0) fields

let spec_fragment = function
  | F_id -> {|{"$ref":"#/definitions/id"}|}
  | F_label -> {|{"$ref":"#/definitions/label"}|}
  | F_price -> {|{"$ref":"#/definitions/price"}|}
  | F_tags ->
    {|{"type":"array","items":[{"$ref":"#/definitions/tag"}],|}
    ^ {|"additionalItems":{"$ref":"#/definitions/tag"},"uniqueItems":true}|}
  | F_dims -> {|{"$ref":"#/definitions/dims"}|}
  | F_color -> {|{"enum":["red","green","blue",7]}|}
  | F_note -> {|{"type":"string"}|}

let catalog_schema =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    ({|{"definitions":{|}
    ^ {|"id":{"type":"number","minimum":1},|}
    ^ {|"label":{"type":"string","pattern":"[a-z][a-z0-9_]*"},|}
    ^ {|"price":{"type":"number","minimum":0,"maximum":100000},|}
    ^ {|"tag":{"type":"string","pattern":"[a-z]+"},|}
    ^ {|"dims":{"type":"object","required":["w","h"],|}
    ^ {|"properties":{"w":{"$ref":"#/definitions/id"},|}
    ^ {|"h":{"$ref":"#/definitions/id"},|}
    ^ {|"d":{"$ref":"#/definitions/id"}},|}
    ^ {|"additionalProperties":{"type":"number"}}},|}
    ^ {|"type":"object","minProperties":10,"required":[|});
  List.iteri
    (fun i (name, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S" name))
    required_fields;
  Buffer.add_string buf {|],"properties":{|};
  List.iteri
    (fun i (name, spec) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:%s" name (spec_fragment spec)))
    fields;
  Buffer.add_string buf
    ({|},"patternProperties":{|}
    ^ {|"x_[a-z0-9]*":{"type":"number"},|}
    ^ {|"y_[a-z0-9]*":{"type":"string"}},|}
    ^ {|"additionalProperties":{"type":"string","pattern":"[a-z ]*"}}|});
  Buffer.contents buf

let colors = [ Value.Str "red"; Value.Str "green"; Value.Str "blue"; Value.Num 7 ]
let words = [ "alpha"; "beta"; "gamma"; "delta"; "kilo"; "mega"; "zeta" ]

let valid_value rng = function
  | F_id -> Value.Num (1 + Prng.int rng 1000)
  | F_label ->
    Value.Str (Prng.choose rng words ^ "_" ^ string_of_int (Prng.int rng 100))
  | F_price -> Value.Num (Prng.int rng 100_000)
  | F_tags ->
    (* distinct tags: uniqueItems must hold on the valid path *)
    let n = Prng.int rng 4 in
    let pool = Prng.shuffle rng words in
    Value.Arr (List.map (fun w -> Value.Str w) (List.filteri (fun i _ -> i < n) pool))
  | F_dims ->
    let dim () = Value.Num (1 + Prng.int rng 50) in
    let base = [ ("w", dim ()); ("h", dim ()) ] in
    let base = if Prng.bool rng then base @ [ ("d", dim ()) ] else base in
    let base =
      if Prng.bool rng then base @ [ ("weight", Value.Num (Prng.int rng 9)) ]
      else base
    in
    Value.Obj base
  | F_color -> Prng.choose rng colors
  | F_note -> Value.Str (Prng.choose rng words ^ " note")

(* ~30% of the documents carry one violation somewhere, so both
   verdicts stay represented in every differential batch. *)
let catalog_doc rng =
  let members = ref [] in
  List.iter
    (fun ((name, spec) as field) ->
      let req = List.memq field required_fields in
      if req || Prng.int rng 5 = 0 then
        members := (name, valid_value rng spec) :: !members)
    fields;
  for _ = 0 to 29 + Prng.int rng 16 do
    let prefix = if Prng.bool rng then "x_" else "y_" in
    let key = prefix ^ Prng.choose rng words ^ string_of_int (Prng.int rng 500) in
    let v =
      if prefix = "x_" then Value.Num (Prng.int rng 1000)
      else Value.Str (Prng.choose rng words)
    in
    members := (key, v) :: !members
  done;
  for _ = 0 to 11 + Prng.int rng 6 do
    let key = "extra " ^ Prng.choose rng words ^ string_of_int (Prng.int rng 500) in
    members := (key, Value.Str (Prng.choose rng words ^ " ok")) :: !members
  done;
  if Prng.int rng 10 < 3 then begin
    (* one violation: clobber a random member with a value that fails
       every field spec, or smuggle in a non-string additional key *)
    match Prng.int rng 2 with
    | 0 ->
      let i = Prng.int rng (List.length !members) in
      members :=
        List.mapi (fun j (k, v) -> if j = i then (k, Value.Arr []) else (k, v)) !members
    | _ -> members := ("zz bad", Value.Num 3) :: !members
  end;
  (* dedupe keys (the generators above can collide) keeping the last *)
  let seen = Hashtbl.create 64 in
  let uniq =
    List.filter
      (fun (k, _) ->
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      !members
  in
  Value.Obj uniq

(* ---- the $ref-sharing family --------------------------------------------- *)

(* [d_{i+1}] tries [d_i] twice through [anyOf]; with a document that
   fails [d0], the interpreter explores both branches of every level —
   2^k leaf visits — while the compiled plan memoizes the shared
   subschema and stays linear in k. *)
let ref_sharing_schema k =
  let buf = Buffer.create 256 in
  Buffer.add_string buf {|{"definitions":{"d0":{"type":"number","minimum":1000000}|};
  for i = 1 to k do
    Buffer.add_string buf
      (Printf.sprintf
         {|,"d%d":{"anyOf":[{"$ref":"#/definitions/d%d"},{"$ref":"#/definitions/d%d"}]}|}
         i (i - 1) (i - 1))
  done;
  Buffer.add_string buf (Printf.sprintf {|},"$ref":"#/definitions/d%d"}|} k);
  Buffer.contents buf

let ref_sharing_doc = Value.Num 3
