(** Parser for the concrete regular-expression syntax.

    Grammar (POSIX-flavoured, whole-string semantics):
    {v
      alt    ::= cat ('|' cat)*
      cat    ::= post*
      post   ::= atom ('*' | '+' | '?' | '{' m (',' n?)? '}')*
      atom   ::= literal-char | '.' | '\' escape | class | '(' alt ')'
      class  ::= '[' '^'? item+ ']'      item ::= c | c '-' c
    v}

    Escapes: [\\ \. \* \+ \? \| \( \) \[ \] \{ \} \^ \$ \- \/],
    [\n \r \t], [\xHH], and the classes [\d \D \w \W \s \S].

    Expressions denote whole-string languages — [w ∈ L(e)] — matching
    the paper's semantics for [X_e] and [Pattern(e)].  Anchors [^]/[$]
    at the ends are accepted and ignored; use {!search} to get
    substring-search semantics (as JSON Schema's [pattern] uses). *)

val parse : string -> (Syntax.t, string) result
val parse_exn : string -> Syntax.t
(** @raise Invalid_argument on malformed input. *)

val search : Syntax.t -> Syntax.t
(** [search e] is [Σ* e Σ*]: turns whole-string semantics into
    contains-a-match semantics. *)
