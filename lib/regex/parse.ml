exception Bad of string

type state = { input : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf
    (fun s -> raise (Bad (Printf.sprintf "at offset %d: %s" st.pos s)))
    fmt

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let eat st c =
  match peek st with
  | Some c' when c = c' -> advance st
  | _ -> fail st "expected %C" c

let digit_class = Charset.range '0' '9'

let word_class =
  Charset.union
    (Charset.union (Charset.range 'a' 'z') (Charset.range 'A' 'Z'))
    (Charset.union digit_class (Charset.singleton '_'))

let space_class = Charset.of_string " \t\n\r\011\012"

let hex st c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail st "bad hex digit %C" c

(* Returns either a literal char or a character class for an escape. *)
let escape st =
  match peek st with
  | None -> fail st "dangling backslash"
  | Some c ->
    advance st;
    (match c with
    | '\\' | '.' | '*' | '+' | '?' | '|' | '(' | ')' | '[' | ']' | '{' | '}'
    | '^' | '$' | '-' | '/' ->
      `Char c
    | 'n' -> `Char '\n'
    | 'r' -> `Char '\r'
    | 't' -> `Char '\t'
    | 'd' -> `Class digit_class
    | 'D' -> `Class (Charset.complement digit_class)
    | 'w' -> `Class word_class
    | 'W' -> `Class (Charset.complement word_class)
    | 's' -> `Class space_class
    | 'S' -> `Class (Charset.complement space_class)
    | 'x' -> (
      match (peek st, st.pos + 1 < String.length st.input) with
      | Some h1, true ->
        advance st;
        let h2 = st.input.[st.pos] in
        advance st;
        `Char (Char.chr ((hex st h1 * 16) + hex st h2))
      | _ -> fail st "truncated \\x escape")
    | c -> fail st "unknown escape \\%c" c)

let char_class st =
  eat st '[';
  let negated =
    match peek st with
    | Some '^' ->
      advance st;
      true
    | _ -> false
  in
  let acc = ref Charset.empty in
  let add cs = acc := Charset.union !acc cs in
  let item_char () =
    match peek st with
    | None -> fail st "unterminated character class"
    | Some '\\' ->
      advance st;
      (match escape st with
      | `Char c -> `Char c
      | `Class cs -> `Class cs)
    | Some c ->
      advance st;
      `Char c
  in
  (* Unlike POSIX, a leading ']' closes the class: [] denotes the empty
     class (∅) and [^] the full alphabet; a literal ']' must be escaped. *)
  let rec items _first =
    match peek st with
    | None -> fail st "unterminated character class"
    | Some ']' -> advance st
    | Some _ -> (
      match item_char () with
      | `Class cs ->
        add cs;
        items false
      | `Char lo -> (
        match peek st with
        | Some '-' when st.pos + 1 < String.length st.input
                        && st.input.[st.pos + 1] <> ']' ->
          advance st;
          (match item_char () with
          | `Char hi ->
            if Char.code lo > Char.code hi then
              fail st "inverted range %c-%c" lo hi;
            add (Charset.range lo hi);
            items false
          | `Class _ -> fail st "class cannot end a range")
        | _ ->
          add (Charset.singleton lo);
          items false))
  in
  items true;
  if negated then Charset.complement !acc else !acc

let rec parse_alt st =
  let first = parse_cat st in
  let rec go acc =
    match peek st with
    | Some '|' ->
      advance st;
      go (Syntax.alt acc (parse_cat st))
    | _ -> acc
  in
  go first

and parse_cat st =
  let rec go acc =
    match peek st with
    | None | Some '|' | Some ')' -> acc
    | Some _ -> go (Syntax.cat acc (parse_post st))
  in
  go Syntax.epsilon

and parse_post st =
  let atom = parse_atom st in
  let rec go acc =
    match peek st with
    | Some '*' ->
      advance st;
      go (Syntax.star acc)
    | Some '+' ->
      advance st;
      go (Syntax.plus acc)
    | Some '?' ->
      advance st;
      go (Syntax.opt acc)
    | Some '{' ->
      advance st;
      let number () =
        let start = st.pos in
        while
          match peek st with Some ('0' .. '9') -> true | _ -> false
        do
          advance st
        done;
        if st.pos = start then fail st "expected a number in {m,n}";
        let text = String.sub st.input start (st.pos - start) in
        match int_of_string_opt text with
        | Some i -> i
        | None -> fail st "repetition count %s out of range" text
      in
      let m = number () in
      let n =
        match peek st with
        | Some ',' -> (
          advance st;
          match peek st with
          | Some '}' -> None
          | _ -> Some (number ()))
        | _ -> Some m
      in
      eat st '}';
      go (Syntax.repeat m n acc)
    | _ -> acc
  in
  go atom

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '(' ->
    advance st;
    (* accept the empty group as ε *)
    if peek st = Some ')' then begin
      advance st;
      Syntax.epsilon
    end
    else begin
      let r = parse_alt st in
      eat st ')';
      r
    end
  | Some '.' ->
    advance st;
    Syntax.any_char
  | Some '[' -> Syntax.chars (char_class st)
  | Some '\\' ->
    advance st;
    (match escape st with
    | `Char c -> Syntax.char c
    | `Class cs -> Syntax.chars cs)
  | Some ('*' | '+' | '?') -> fail st "quantifier with nothing to repeat"
  | Some c ->
    advance st;
    Syntax.char c

let run input =
  (* strip redundant anchors: the semantics is whole-string already *)
  let input =
    let n = String.length input in
    let from = if n > 0 && input.[0] = '^' then 1 else 0 in
    let until =
      if n > from && input.[n - 1] = '$'
         && (n < 2 || input.[n - 2] <> '\\') then n - 1
      else n
    in
    String.sub input from (until - from)
  in
  let st = { input; pos = 0 } in
  let r = parse_alt st in
  (match peek st with
  | None -> ()
  | Some c -> fail st "unexpected %C" c);
  r

let parse input =
  match run input with
  | r -> Ok r
  | exception Bad msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok r -> r
  | Error msg -> invalid_arg ("Rexp.Parse.parse_exn: " ^ msg)

let search e = Syntax.(cat all (cat e all))
