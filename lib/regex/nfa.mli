(** Thompson construction: non-deterministic finite automata with
    ε-transitions, built compositionally from {!Syntax.t} in O(|e|)
    states.  Membership by on-the-fly subset simulation is
    O(|e| · |w|), the bound used in the proof of Proposition 3 for
    pre-marking tree edges with the expressions they match. *)

type t

type state = int

val of_syntax : Syntax.t -> t
val state_count : t -> int
val start : t -> state
val accepting : t -> state -> bool

val eps_transitions : t -> state -> state list
val char_transitions : t -> state -> (Charset.t * state) list

val eps_closure : t -> state list -> state list
(** Sorted, deduplicated ε-closure of a set of states. *)

val step : t -> state list -> char -> state list
(** One simulation step: closure of the successors on a character. *)

val accepts : t -> string -> bool
(** O(|e| · |w|) membership test. *)
