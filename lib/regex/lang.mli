(** High-level compiled regular languages.

    A {!t} pairs the syntax with its (lazily built, cached) DFA, so that
    repeated membership tests during formula evaluation cost O(|w|)
    after a one-off compilation, and the satisfiability procedures can
    freely combine languages with boolean operations. *)

type t

val of_syntax : Syntax.t -> t
val of_string : string -> (t, string) result
(** Parse with {!Parse.parse} and compile. *)

val of_string_exn : string -> t
val syntax : t -> Syntax.t

val matches : t -> string -> bool
(** [w ∈ L(e)], O(|w|) after compilation. *)

val is_empty : t -> bool
val is_universal : t -> bool
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val equiv : t -> t -> bool
val subset : t -> t -> bool

val witness : t -> string option
(** A shortest member of the language, if non-empty. *)

val witnesses : ?limit:int -> t -> string list
(** Several distinct short members. *)

val all : t
(** Σ*. *)

val extract_syntax : t -> Syntax.t
(** A regular expression denoting the language: the original syntax
    when available, otherwise reconstructed from the automaton by state
    elimination ({!Dfa.to_syntax}). *)

val literal : string -> t
val pp : Format.formatter -> t -> unit
