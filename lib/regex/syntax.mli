(** Abstract syntax of the regular expressions over Σ* used throughout
    the logics: the non-deterministic axes [X_e] of JNL (§4.3), the
    [Pattern(e)] node test and the [◇_e]/[□_e] modalities of JSL (§5.2),
    and the [pattern] / [patternProperties] keywords of JSON Schema.

    Values are kept in a lightly normalized form by the smart
    constructors ([cat], [alt], [star] …): ∅ and ε are absorbed, nested
    alternations are deduplicated, and [star] is idempotent.  This keeps
    Brzozowski derivative sets finite and small. *)

type t = private
  | Empty  (** ∅ — the empty language *)
  | Epsilon  (** ε — the singleton empty word *)
  | Chars of Charset.t  (** one character from a non-empty set *)
  | Cat of t * t
  | Alt of t * t
  | Star of t

val empty : t
val epsilon : t
val chars : Charset.t -> t
(** [chars cs] is [Empty] when [cs] is empty. *)

val char : char -> t
val any_char : t
(** One arbitrary character: [Chars full]. *)

val cat : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
val opt : t -> t

val cat_list : t list -> t
val alt_list : t list -> t

val repeat : int -> int option -> t -> t
(** [repeat m n r] is [r{m,n}]; [None] means unbounded. *)

val literal : string -> t
(** The singleton language of one word. *)

val all : t
(** Σ* — every word.  Used pervasively ([X_{Σ*}], [□_{Σ*}] …). *)

val nullable : t -> bool
(** Does the language contain ε? *)

val as_word : t -> string option
(** [Some w] when the expression is syntactically a single word
    (concatenation of singleton character classes) — the shape produced
    by {!literal}.  Distinguishes the deterministic fragments of the
    logics (single-word keys) from the non-deterministic ones. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val size : t -> int
(** Number of AST nodes, the measure |e| in complexity statements. *)

val first_chars : t -> Charset.t
(** Over-approximation of the characters that can start a word. *)

val pp : Format.formatter -> t -> unit
(** Round-trippable concrete syntax (parsable by {!Parse}). *)

val to_string : t -> string
