type t = {
  syntax : Syntax.t option;  (* None when built by automaton combinations *)
  dfa : Dfa.t Lazy.t;
}

let of_syntax s = { syntax = Some s; dfa = lazy (Dfa.of_syntax s) }

let of_string str =
  match Parse.parse str with
  | Ok s -> Ok (of_syntax s)
  | Error _ as e -> ( match e with Error m -> Error m | Ok _ -> assert false)

let of_string_exn str = of_syntax (Parse.parse_exn str)

let syntax t =
  match t.syntax with
  | Some s -> s
  | None ->
    invalid_arg "Rexp.Lang.syntax: language built by automaton combination"

let dfa t = Lazy.force t.dfa
let matches t w = Dfa.accepts (dfa t) w
let is_empty t = Dfa.is_empty (dfa t)
let is_universal t = Dfa.is_universal (dfa t)

let combine2 f a b = { syntax = None; dfa = lazy (f (dfa a) (dfa b)) }
let inter = combine2 Dfa.inter
let union = combine2 Dfa.union
let diff = combine2 Dfa.diff
let complement a = { syntax = None; dfa = lazy (Dfa.complement (dfa a)) }
let equiv a b = Dfa.equiv (dfa a) (dfa b)
let subset a b = Dfa.subset (dfa a) (dfa b)
let witness t = Dfa.shortest_word (dfa t)
let witnesses ?limit t = Dfa.sample_words ?limit (dfa t)
let all = of_syntax Syntax.all
let literal s = of_syntax (Syntax.literal s)

let extract_syntax t =
  match t.syntax with
  | Some s -> s
  | None -> Dfa.to_syntax (dfa t)

let pp fmt t =
  match t.syntax with
  | Some s -> Syntax.pp fmt s
  | None -> Format.pp_print_string fmt "<combined language>"
