type t =
  | Empty
  | Epsilon
  | Chars of Charset.t
  | Cat of t * t
  | Alt of t * t
  | Star of t

let empty = Empty
let epsilon = Epsilon
let chars cs = if Charset.is_empty cs then Empty else Chars cs
let char c = Chars (Charset.singleton c)
let any_char = Chars Charset.full

let rec compare a b =
  match (a, b) with
  | Empty, Empty -> 0
  | Empty, _ -> -1
  | _, Empty -> 1
  | Epsilon, Epsilon -> 0
  | Epsilon, _ -> -1
  | _, Epsilon -> 1
  | Chars c1, Chars c2 -> Charset.compare c1 c2
  | Chars _, _ -> -1
  | _, Chars _ -> 1
  | Cat (a1, a2), Cat (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Cat _, _ -> -1
  | _, Cat _ -> 1
  | Alt (a1, a2), Alt (b1, b2) ->
    let c = compare a1 b1 in
    if c <> 0 then c else compare a2 b2
  | Alt _, _ -> -1
  | _, Alt _ -> 1
  | Star a, Star b -> compare a b

let equal a b = compare a b = 0

(* Smart constructors performing the usual similarity-preserving
   rewrites (Brzozowski's "similar" regexes): identities for ∅/ε,
   right-association and duplicate removal in alternations, idempotent
   star.  These keep derivative sets finite. *)

let cat a b =
  match (a, b) with
  | Empty, _ | _, Empty -> Empty
  | Epsilon, r | r, Epsilon -> r
  | Cat (a1, a2), b -> (
    (* re-associate to the right, preserving order *)
    let rec reassoc a b =
      match a with
      | Cat (x, y) -> Cat (x, reassoc y b)
      | _ -> Cat (a, b)
    in
    match reassoc (Cat (a1, a2)) b with r -> r)
  | a, b -> Cat (a, b)

let alt a b =
  (* flatten into a sorted, deduplicated list, then rebuild *)
  let rec collect acc = function
    | Alt (x, y) -> collect (collect acc x) y
    | Empty -> acc
    | r -> r :: acc
  in
  let items = collect (collect [] a) b in
  let items = List.sort_uniq compare items in
  (* merge adjacent character classes *)
  let classes, rest =
    List.partition_map
      (function Chars cs -> Left cs | r -> Right r)
      items
  in
  let rest =
    match classes with
    | [] -> rest
    | cs ->
      let merged = List.fold_left Charset.union Charset.empty cs in
      chars merged :: rest
  in
  match rest with
  | [] -> Empty
  | [ r ] -> r
  | r :: rs -> List.fold_left (fun acc r -> Alt (acc, r)) r rs

let star = function
  | Empty | Epsilon -> Epsilon
  | Star r -> Star r
  | r -> Star r

let plus r = cat r (star r)
let opt r = alt Epsilon r

let cat_list rs = List.fold_right cat rs Epsilon
let alt_list rs = List.fold_left alt Empty rs

let repeat m n r =
  let rec pow k = if k <= 0 then Epsilon else cat r (pow (k - 1)) in
  match n with
  | None -> cat (pow m) (star r)
  | Some n ->
    if n < m then Empty
    else
      let rec opts k = if k <= 0 then Epsilon else opt (cat r (opts (k - 1))) in
      cat (pow m) (opts (n - m))

let literal s = cat_list (List.init (String.length s) (fun i -> char s.[i]))

let all = star any_char

let as_word e =
  let buf = Buffer.create 8 in
  let rec go = function
    | Epsilon -> true
    | Chars cs -> (
      match (Charset.cardinal cs, Charset.choose cs) with
      | 1, Some c ->
        Buffer.add_char buf c;
        true
      | _ -> false)
    | Cat (a, b) -> go a && go b
    | Empty | Alt _ | Star _ -> false
  in
  if go e then Some (Buffer.contents buf) else None

let rec nullable = function
  | Empty | Chars _ -> false
  | Epsilon | Star _ -> true
  | Cat (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b

let rec size = function
  | Empty | Epsilon | Chars _ -> 1
  | Star a -> 1 + size a
  | Cat (a, b) | Alt (a, b) -> 1 + size a + size b

let rec first_chars = function
  | Empty | Epsilon -> Charset.empty
  | Chars cs -> cs
  | Star a -> first_chars a
  | Alt (a, b) -> Charset.union (first_chars a) (first_chars b)
  | Cat (a, b) ->
    if nullable a then Charset.union (first_chars a) (first_chars b)
    else first_chars a

(* Concrete syntax matching the {!Parse} grammar. *)
let rec pp fmt r =
  pp_alt fmt r

and pp_alt fmt = function
  | Alt (a, b) ->
    pp_alt fmt a;
    Format.pp_print_char fmt '|';
    pp_cat fmt b
  | r -> pp_cat fmt r

and pp_cat fmt = function
  | Cat (a, b) ->
    pp_cat fmt a;
    pp_post fmt b
  | r -> pp_post fmt r

and pp_post fmt = function
  | Star a ->
    pp_atom fmt a;
    Format.pp_print_char fmt '*'
  | r -> pp_atom fmt r

and pp_atom fmt = function
  | Empty -> Format.pp_print_string fmt "[]"
  | Epsilon -> Format.pp_print_string fmt "()"
  | Chars cs ->
    if Charset.equal cs Charset.full then Format.pp_print_char fmt '.'
    else if Charset.cardinal cs = 1 then begin
      match Charset.choose cs with
      | Some c -> pp_char fmt c
      | None -> assert false
    end
    else Charset.pp fmt cs
  | (Cat _ | Alt _ | Star _) as r ->
    Format.pp_print_char fmt '(';
    pp fmt r;
    Format.pp_print_char fmt ')'

and pp_char fmt c =
  match c with
  | '.' | '*' | '+' | '?' | '|' | '(' | ')' | '[' | ']' | '{' | '}' | '\\'
  | '^' | '$' ->
    Format.fprintf fmt "\\%c" c
  | c when c >= ' ' && c <= '~' -> Format.pp_print_char fmt c
  | c -> Format.fprintf fmt "\\x%02x" (Char.code c)

let to_string r = Format.asprintf "%a" pp r
