(** Sets of bytes — the alphabet Σ of the regular expressions used for
    keys and string patterns.

    The paper takes Σ to be the unicode characters; we work over UTF-8
    bytes, which yields the same languages for the byte-encoded strings
    stored by {!Jsont.Value} (regular languages over codepoints map to
    regular languages over their UTF-8 encodings).

    Represented as a 256-bit bitmap (four 64-bit words): all operations
    are O(1). *)

type t

val empty : t
val full : t
val singleton : char -> t
val range : char -> char -> t
(** [range lo hi] is the inclusive byte range. *)

val of_string : string -> t
(** Set of the bytes occurring in the string. *)

val mem : char -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t
val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val cardinal : t -> int

val choose : t -> char option
(** Smallest member, if any — used for witness extraction. *)

val iter : (char -> unit) -> t -> unit
val fold : (char -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> char list
val pp : Format.formatter -> t -> unit
