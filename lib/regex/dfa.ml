type t = {
  class_of : int array;  (* byte -> alphabet class, length 256 *)
  class_count : int;
  reps : char array;  (* one representative byte per class *)
  trans : int array array;  (* state -> class -> state; complete *)
  accept : bool array;
  start : int;
}

(* ---- alphabet partition ------------------------------------------------ *)

(* Bytes in witness-friendly order: representatives of alphabet classes
   are the first byte encountered, so scanning letters first makes
   extracted witnesses printable where the language allows it. *)
let byte_order =
  let range lo hi = List.init (hi - lo + 1) (fun i -> lo + i) in
  let preferred =
    range (Char.code 'a') (Char.code 'z')
    @ range (Char.code 'A') (Char.code 'Z')
    @ range (Char.code '0') (Char.code '9')
    @ List.map Char.code [ '_'; '-'; '.'; ' ' ]
  in
  preferred @ List.filter (fun b -> not (List.mem b preferred)) (range 0 255)

(* Partition bytes so that two bytes in the same class belong to exactly
   the same charsets of [sets].  Classes are signatures of membership. *)
let partition_of_sets sets =
  let class_of = Array.make 256 0 in
  let signatures = Hashtbl.create 16 in
  let class_count = ref 0 in
  let reps = ref [] in
  List.iter (fun b ->
    let c = Char.chr b in
    let signature = List.map (fun cs -> Charset.mem c cs) sets in
    match Hashtbl.find_opt signatures signature with
    | Some id -> class_of.(b) <- id
    | None ->
      let id = !class_count in
      incr class_count;
      Hashtbl.add signatures signature id;
      class_of.(b) <- id;
      reps := c :: !reps)
    byte_order;
  (class_of, !class_count, Array.of_list (List.rev !reps))

let collect_charsets nfa =
  let acc = ref [] in
  for s = 0 to Nfa.state_count nfa - 1 do
    List.iter (fun (cs, _) -> acc := cs :: !acc) (Nfa.char_transitions nfa s)
  done;
  List.sort_uniq Charset.compare !acc

(* ---- subset construction ---------------------------------------------- *)

let of_syntax r =
  let nfa = Nfa.of_syntax r in
  let class_of, class_count, reps = partition_of_sets (collect_charsets nfa) in
  let state_ids : (Nfa.state list, int) Hashtbl.t = Hashtbl.create 64 in
  let trans_rev = ref [] in
  let accept_rev = ref [] in
  let count = ref 0 in
  let worklist = Queue.create () in
  let intern states =
    match Hashtbl.find_opt state_ids states with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add state_ids states id;
      Queue.add states worklist;
      id
  in
  let start = intern (Nfa.eps_closure nfa [ Nfa.start nfa ]) in
  while not (Queue.is_empty worklist) do
    let states = Queue.pop worklist in
    let row =
      Array.map (fun rep -> intern (Nfa.step nfa states rep)) reps
    in
    trans_rev := row :: !trans_rev;
    accept_rev := List.exists (Nfa.accepting nfa) states :: !accept_rev
  done;
  { class_of;
    class_count;
    reps;
    trans = Array.of_list (List.rev !trans_rev);
    accept = Array.of_list (List.rev !accept_rev);
    start }

let state_count t = Array.length t.trans

let accepts t w =
  let s = ref t.start in
  String.iter (fun c -> s := t.trans.(!s).(t.class_of.(Char.code c))) w;
  t.accept.(!s)

let complement t = { t with accept = Array.map not t.accept }

(* ---- products ---------------------------------------------------------- *)

(* Common refinement of two alphabet partitions. *)
let refine a b =
  let class_of = Array.make 256 0 in
  let pair_ids = Hashtbl.create 16 in
  let count = ref 0 in
  let reps = ref [] in
  List.iter (fun byte ->
    let pair = (a.class_of.(byte), b.class_of.(byte)) in
    match Hashtbl.find_opt pair_ids pair with
    | Some id -> class_of.(byte) <- id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add pair_ids pair id;
      class_of.(byte) <- id;
      reps := Char.chr byte :: !reps)
    byte_order;
  (class_of, !count, Array.of_list (List.rev !reps))

let product combine a b =
  let class_of, class_count, reps = refine a b in
  let ids = Hashtbl.create 64 in
  let worklist = Queue.create () in
  let trans_rev = ref [] and accept_rev = ref [] and count = ref 0 in
  let intern pair =
    match Hashtbl.find_opt ids pair with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      Hashtbl.add ids pair id;
      Queue.add pair worklist;
      id
  in
  let start = intern (a.start, b.start) in
  while not (Queue.is_empty worklist) do
    let ((sa, sb) as pair) = Queue.pop worklist in
    let row =
      Array.map
        (fun rep ->
          let byte = Char.code rep in
          intern
            ( a.trans.(sa).(a.class_of.(byte)),
              b.trans.(sb).(b.class_of.(byte)) ))
        reps
    in
    trans_rev := row :: !trans_rev;
    accept_rev := combine a.accept.(fst pair) b.accept.(snd pair) :: !accept_rev
  done;
  { class_of;
    class_count;
    reps;
    trans = Array.of_list (List.rev !trans_rev);
    accept = Array.of_list (List.rev !accept_rev);
    start }

let inter = product ( && )
let union = product ( || )
let diff = product (fun x y -> x && not y)

(* ---- decision procedures ----------------------------------------------- *)

let reachable t =
  let seen = Array.make (state_count t) false in
  let q = Queue.create () in
  seen.(t.start) <- true;
  Queue.add t.start q;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    Array.iter
      (fun s' ->
        if not seen.(s') then begin
          seen.(s') <- true;
          Queue.add s' q
        end)
      t.trans.(s)
  done;
  seen

let is_empty t =
  let seen = reachable t in
  let found = ref false in
  Array.iteri (fun i acc -> if acc && seen.(i) then found := true) t.accept;
  not !found

let is_universal t = is_empty (complement t)

let subset a b = is_empty (diff a b)
let equiv a b = subset a b && subset b a

(* States from which an accepting state is reachable. *)
let productive t =
  let n = state_count t in
  let rev = Array.make n [] in
  Array.iteri
    (fun s row -> Array.iter (fun s' -> rev.(s') <- s :: rev.(s')) row)
    t.trans;
  let seen = Array.make n false in
  let q = Queue.create () in
  Array.iteri
    (fun s acc ->
      if acc then begin
        seen.(s) <- true;
        Queue.add s q
      end)
    t.accept;
  while not (Queue.is_empty q) do
    let s = Queue.pop q in
    List.iter
      (fun p ->
        if not seen.(p) then begin
          seen.(p) <- true;
          Queue.add p q
        end)
      rev.(s)
  done;
  seen

let shortest_word t =
  let n = state_count t in
  if n = 0 then None
  else begin
    let prod = productive t in
    if not prod.(t.start) then None
    else begin
      (* BFS over states only, tracking the word built so far. *)
      let visited = Array.make n false in
      let q = Queue.create () in
      visited.(t.start) <- true;
      Queue.add (t.start, []) q;
      let result = ref None in
      while !result = None && not (Queue.is_empty q) do
        let s, path = Queue.pop q in
        if t.accept.(s) then
          result :=
            Some (String.init (List.length path) (List.nth (List.rev path)))
        else
          Array.iteri
            (fun cls s' ->
              if prod.(s') && not visited.(s') then begin
                visited.(s') <- true;
                Queue.add (s', t.reps.(cls) :: path) q
              end)
            t.trans.(s)
      done;
      !result
    end
  end

(* Several distinct short members: repeatedly take the shortest word
   and subtract it from the language.  Each step is a state-level BFS,
   so this stays polynomial where a word-level BFS would blow up. *)
let sample_words ?(limit = 5) t =
  let literal w =
    of_syntax
      (List.fold_right
         (fun c acc -> Syntax.cat (Syntax.chars (Charset.singleton c)) acc)
         (List.init (String.length w) (String.get w))
         Syntax.epsilon)
  in
  let rec go acc cur k =
    if k = 0 then List.rev acc
    else
      match shortest_word cur with
      | None -> List.rev acc
      | Some w -> go (w :: acc) (diff cur (literal w)) (k - 1)
  in
  go [] t limit

(* ---- Moore minimization ------------------------------------------------- *)

let minimize t =
  let n = state_count t in
  let seen = reachable t in
  (* initial partition: accepting vs not, over reachable states *)
  let block = Array.make n (-1) in
  Array.iteri
    (fun s r -> if r then block.(s) <- if t.accept.(s) then 1 else 0)
    seen;
  let changed = ref true in
  let block_count = ref 2 in
  while !changed do
    changed := false;
    let signatures = Hashtbl.create 64 in
    let next = Array.make n (-1) in
    let fresh = ref 0 in
    for s = 0 to n - 1 do
      if block.(s) >= 0 then begin
        let signature =
          (block.(s), Array.map (fun s' -> block.(s')) t.trans.(s))
        in
        match Hashtbl.find_opt signatures signature with
        | Some id -> next.(s) <- id
        | None ->
          let id = !fresh in
          incr fresh;
          Hashtbl.add signatures signature id;
          next.(s) <- id
      end
    done;
    if !fresh <> !block_count then begin
      changed := true;
      block_count := !fresh
    end;
    Array.blit next 0 block 0 n
  done;
  let m = !block_count in
  let trans = Array.make m [||] in
  let accept = Array.make m false in
  for s = 0 to n - 1 do
    if block.(s) >= 0 then begin
      accept.(block.(s)) <- t.accept.(s);
      if trans.(block.(s)) = [||] then
        trans.(block.(s)) <- Array.map (fun s' -> block.(s')) t.trans.(s)
    end
  done;
  { t with trans; accept; start = block.(t.start) }

(* ---- Kleene state elimination ------------------------------------------- *)

let to_syntax t0 =
  let t = minimize t0 in
  let n = state_count t in
  (* charset of each alphabet class *)
  let class_sets = Array.make t.class_count Charset.empty in
  for b = 0 to 255 do
    let c = t.class_of.(b) in
    class_sets.(c) <- Charset.union class_sets.(c) (Charset.singleton (Char.chr b))
  done;
  (* matrix over states 0..n-1 plus fresh start (n) and final (n+1) *)
  let m = n + 2 in
  let start = n and final = n + 1 in
  let r = Array.make_matrix m m Syntax.empty in
  for s = 0 to n - 1 do
    (* merge parallel edges s -> s' into one character class *)
    let merged = Hashtbl.create 4 in
    Array.iteri
      (fun cls s' ->
        let prev =
          match Hashtbl.find_opt merged s' with
          | Some cs -> cs
          | None -> Charset.empty
        in
        Hashtbl.replace merged s' (Charset.union prev class_sets.(cls)))
      t.trans.(s);
    Hashtbl.iter
      (fun s' cs -> r.(s).(s') <- Syntax.alt r.(s).(s') (Syntax.chars cs))
      merged;
    if t.accept.(s) then r.(s).(final) <- Syntax.epsilon
  done;
  r.(start).(t.start) <- Syntax.epsilon;
  let nonempty e = match e with Syntax.Empty -> false | _ -> true in
  (* eliminate the original states one by one *)
  for k = 0 to n - 1 do
    let loop = Syntax.star r.(k).(k) in
    for i = 0 to m - 1 do
      if i <> k && nonempty r.(i).(k) then
        for j = 0 to m - 1 do
          if j <> k && nonempty r.(k).(j) then
            r.(i).(j) <-
              Syntax.alt r.(i).(j)
                (Syntax.cat r.(i).(k) (Syntax.cat loop r.(k).(j)))
        done
    done;
    (* cut k out *)
    for i = 0 to m - 1 do
      r.(i).(k) <- Syntax.empty;
      r.(k).(i) <- Syntax.empty
    done
  done;
  r.(start).(final)
