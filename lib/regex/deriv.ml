let rec derivative c (r : Syntax.t) =
  match r with
  | Syntax.Empty | Syntax.Epsilon -> Syntax.empty
  | Syntax.Chars cs ->
    if Charset.mem c cs then Syntax.epsilon else Syntax.empty
  | Syntax.Cat (a, b) ->
    let da_b = Syntax.cat (derivative c a) b in
    if Syntax.nullable a then Syntax.alt da_b (derivative c b) else da_b
  | Syntax.Alt (a, b) -> Syntax.alt (derivative c a) (derivative c b)
  | Syntax.Star a -> Syntax.cat (derivative c a) (Syntax.star a)

let matches r w =
  let r = String.fold_left (fun r c -> derivative c r) r w in
  Syntax.nullable r
