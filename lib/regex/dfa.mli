(** Deterministic finite automata over the byte alphabet, with the
    boolean-algebra operations the logics need:

    - complements, for JSON Schema's [additionalProperties] (the values
      under keys matching {e none} of the listed expressions) and the
      [□_C] construction in the proof of Theorem 1;
    - products (intersection / union / difference), for deciding joint
      satisfiability of key constraints during satisfiability search;
    - emptiness, universality and shortest-witness extraction, used by
      the satisfiability algorithms (Propositions 5, 7, 10) to realize
      keys and string values.

    The transition table is complete (a dead state is materialized) and
    indexed by an {e alphabet partition}: bytes that no charset of the
    source expression distinguishes share a class, keeping tables small. *)

type t

val of_syntax : Syntax.t -> t
(** Subset construction over the Thompson NFA of the expression. *)

val state_count : t -> int
val accepts : t -> string -> bool

val complement : t -> t
val inter : t -> t -> t
val union : t -> t -> t
val diff : t -> t -> t

val is_empty : t -> bool
(** Is the language empty? *)

val is_universal : t -> bool
(** Does the automaton accept every word? *)

val equiv : t -> t -> bool
(** Language equivalence. *)

val subset : t -> t -> bool
(** [subset a b] iff L(a) ⊆ L(b). *)

val shortest_word : t -> string option
(** A length-lexicographically minimal accepted word, if any — the
    witness extractor for key/value realization. *)

val sample_words : ?limit:int -> t -> string list
(** Up to [limit] (default 5) distinct short accepted words, in
    BFS order.  Used to enumerate distinct keys/strings when a model
    needs several different witnesses (e.g. under [Unique]). *)

val minimize : t -> t
(** Moore minimization (also prunes unreachable states). *)

val to_syntax : t -> Syntax.t
(** Kleene's state-elimination construction: a regular expression
    denoting the automaton's language.  Needed to express {e computed}
    languages — complements of key sets for JSON Schema's
    [additionalProperties] — as expressions that JSL modalities and
    schema keywords can carry.  The result can be large; the input is
    minimized first to keep it manageable. *)
