(* 256 bits as four 64-bit words.  Word [i] holds bytes [64i .. 64i+63]. *)
type t = { w0 : int64; w1 : int64; w2 : int64; w3 : int64 }

let empty = { w0 = 0L; w1 = 0L; w2 = 0L; w3 = 0L }
let full = { w0 = -1L; w1 = -1L; w2 = -1L; w3 = -1L }

let bit c = Int64.shift_left 1L (Char.code c land 63)

let singleton c =
  let b = bit c in
  match Char.code c lsr 6 with
  | 0 -> { empty with w0 = b }
  | 1 -> { empty with w1 = b }
  | 2 -> { empty with w2 = b }
  | _ -> { empty with w3 = b }

let union a b =
  { w0 = Int64.logor a.w0 b.w0;
    w1 = Int64.logor a.w1 b.w1;
    w2 = Int64.logor a.w2 b.w2;
    w3 = Int64.logor a.w3 b.w3 }

let inter a b =
  { w0 = Int64.logand a.w0 b.w0;
    w1 = Int64.logand a.w1 b.w1;
    w2 = Int64.logand a.w2 b.w2;
    w3 = Int64.logand a.w3 b.w3 }

let complement a =
  { w0 = Int64.lognot a.w0;
    w1 = Int64.lognot a.w1;
    w2 = Int64.lognot a.w2;
    w3 = Int64.lognot a.w3 }

let diff a b = inter a (complement b)

let range lo hi =
  let rec go acc c =
    if c > Char.code hi then acc
    else go (union acc (singleton (Char.chr c))) (c + 1)
  in
  if lo > hi then empty else go empty (Char.code lo)

let of_string s = String.fold_left (fun acc c -> union acc (singleton c)) empty s

let mem c s =
  let b = bit c in
  let w =
    match Char.code c lsr 6 with
    | 0 -> s.w0
    | 1 -> s.w1
    | 2 -> s.w2
    | _ -> s.w3
  in
  Int64.logand w b <> 0L

let is_empty s = s.w0 = 0L && s.w1 = 0L && s.w2 = 0L && s.w3 = 0L
let equal a b = a.w0 = b.w0 && a.w1 = b.w1 && a.w2 = b.w2 && a.w3 = b.w3

let compare a b =
  match Int64.compare a.w0 b.w0 with
  | 0 -> (
    match Int64.compare a.w1 b.w1 with
    | 0 -> (
      match Int64.compare a.w2 b.w2 with
      | 0 -> Int64.compare a.w3 b.w3
      | c -> c)
    | c -> c)
  | c -> c

let hash s = Hashtbl.hash (s.w0, s.w1, s.w2, s.w3)

let popcount64 w =
  let rec go acc w = if w = 0L then acc else go (acc + 1) Int64.(logand w (sub w 1L)) in
  go 0 w

let cardinal s = popcount64 s.w0 + popcount64 s.w1 + popcount64 s.w2 + popcount64 s.w3

let iter f s =
  for c = 0 to 255 do
    if mem (Char.chr c) s then f (Char.chr c)
  done

let fold f s init =
  let acc = ref init in
  iter (fun c -> acc := f c !acc) s;
  !acc

let to_list s = List.rev (fold (fun c acc -> c :: acc) s [])

let choose s =
  let rec go c =
    if c > 255 then None
    else if mem (Char.chr c) s then Some (Char.chr c)
    else go (c + 1)
  in
  go 0

let pp fmt s =
  if is_empty s then Format.pp_print_string fmt "[]"
  else if equal s full then Format.pp_print_string fmt "."
  else begin
    Format.pp_print_char fmt '[';
    let cs = to_list s in
    (* condense consecutive runs into ranges *)
    let rec runs = function
      | [] -> []
      | c :: rest ->
        let rec extend last = function
          | c' :: rest when Char.code c' = Char.code last + 1 -> extend c' rest
          | rest -> (last, rest)
        in
        let last, rest = extend c rest in
        (c, last) :: runs rest
    in
    List.iter
      (fun (lo, hi) ->
        let prn c =
          if c >= ' ' && c <= '~' && c <> ']' && c <> '\\' && c <> '-' then
            Format.pp_print_char fmt c
          else Format.fprintf fmt "\\x%02x" (Char.code c)
        in
        if lo = hi then prn lo
        else begin
          prn lo;
          Format.pp_print_char fmt '-';
          prn hi
        end)
      (runs cs);
    Format.pp_print_char fmt ']'
  end
