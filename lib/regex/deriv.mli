(** Brzozowski-derivative matcher — an independent second implementation
    of regular-language membership, used to cross-validate the
    NFA/DFA pipeline in the property-based test suite.

    Relies on the smart constructors of {!Syntax} keeping derivative
    sets finite (similarity classes). *)

val derivative : char -> Syntax.t -> Syntax.t
(** [derivative c e] denotes [{ w | c·w ∈ L(e) }]. *)

val matches : Syntax.t -> string -> bool
(** Membership by iterated derivatives and a final nullability test. *)
