type state = int

type t = {
  eps : state list array;
  trans : (Charset.t * state) list array;
  start : state;
  accept : state;  (* Thompson automata have a single accepting state *)
}

(* Mutable builder *)
type builder = {
  mutable eps_b : state list array;
  mutable trans_b : (Charset.t * state) list array;
  mutable next : int;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  if s >= Array.length b.eps_b then begin
    let grow a fillv =
      let a' = Array.make (2 * Array.length a) fillv in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    in
    b.eps_b <- grow b.eps_b [];
    b.trans_b <- grow b.trans_b []
  end;
  s

let add_eps b s s' = b.eps_b.(s) <- s' :: b.eps_b.(s)
let add_trans b s cs s' = b.trans_b.(s) <- (cs, s') :: b.trans_b.(s)

let of_syntax r =
  let b = { eps_b = Array.make 16 []; trans_b = Array.make 16 []; next = 0 } in
  (* returns (entry, exit) *)
  let rec build = function
    | Syntax.Empty ->
      let i = new_state b and f = new_state b in
      (i, f)
    | Syntax.Epsilon ->
      let i = new_state b and f = new_state b in
      add_eps b i f;
      (i, f)
    | Syntax.Chars cs ->
      let i = new_state b and f = new_state b in
      add_trans b i cs f;
      (i, f)
    | Syntax.Cat (r1, r2) ->
      let i1, f1 = build r1 in
      let i2, f2 = build r2 in
      add_eps b f1 i2;
      (i1, f2)
    | Syntax.Alt (r1, r2) ->
      let i = new_state b and f = new_state b in
      let i1, f1 = build r1 in
      let i2, f2 = build r2 in
      add_eps b i i1;
      add_eps b i i2;
      add_eps b f1 f;
      add_eps b f2 f;
      (i, f)
    | Syntax.Star r1 ->
      let i = new_state b and f = new_state b in
      let i1, f1 = build r1 in
      add_eps b i i1;
      add_eps b i f;
      add_eps b f1 i1;
      add_eps b f1 f;
      (i, f)
  in
  let start, accept = build r in
  { eps = Array.sub b.eps_b 0 b.next;
    trans = Array.sub b.trans_b 0 b.next;
    start;
    accept }

let state_count t = Array.length t.eps
let start t = t.start
let accepting t s = s = t.accept
let eps_transitions t s = t.eps.(s)
let char_transitions t s = t.trans.(s)

let eps_closure t states =
  let seen = Array.make (state_count t) false in
  let rec visit s =
    if not seen.(s) then begin
      seen.(s) <- true;
      List.iter visit t.eps.(s)
    end
  in
  List.iter visit states;
  let acc = ref [] in
  for s = state_count t - 1 downto 0 do
    if seen.(s) then acc := s :: !acc
  done;
  !acc

let step t states c =
  let succs =
    List.concat_map
      (fun s ->
        List.filter_map
          (fun (cs, s') -> if Charset.mem c cs then Some s' else None)
          t.trans.(s))
      states
  in
  eps_closure t succs

let accepts t w =
  let states = ref (eps_closure t [ t.start ]) in
  String.iter (fun c -> states := step t !states c) w;
  List.exists (accepting t) !states
