(** Resource budgets for the evaluation stack.

    A {!t} bundles the three hard limits every entry point of the
    library (parsing, tree construction, JNL/JSL evaluation, streaming
    validation, satisfiability search) checks while it works:

    - {b fuel}: a node-count allowance.  Every unit of work — a parsed
      value, a visited tree node, a candidate document tried by the
      satisfiability search — burns fuel; running out raises
      {!Exhausted}[ Fuel].
    - {b depth}: a recursion-depth ceiling (default
      {!default_max_depth}).  All recursive descents (the parser, tree
      construction, the formula evaluators, the streaming skipper)
      check their current depth against it, so adversarially nested
      inputs yield a structured error instead of [Stack_overflow].
    - {b deadline}: an elapsed-time cutoff measured on the {e monotonic}
      clock ({!now_mono}), checked periodically while fuel is burned, so
      a stuck search fails fast instead of stalling a request.  The
      monotonic source matters for long-lived processes: an NTP step of
      the wall clock neither fires a deadline early nor defers it.

    Budgets are cheap: an unlimited budget burns no memory traffic at
    all, a fuel/deadline budget costs one branch and one subtraction
    per unit of work.  A budget with fuel or a deadline is mutable and
    must not be shared between concurrent evaluations; {!unlimited} and
    {!depth_limited} budgets are stateless and freely shareable. *)

type reason =
  | Fuel  (** the node-count allowance was spent *)
  | Depth  (** the recursion-depth ceiling was hit *)
  | Deadline  (** the wall-clock cutoff passed *)

exception Exhausted of reason
(** Raised by {!burn} / {!check_depth}.  Library entry points that
    return [result] catch it and surface {!describe}[ reason]. *)

type t

val default_max_depth : int
(** [10_000] — the documented default nesting ceiling, shared by the
    JSON parser and the streaming validator. *)

val unlimited : t
(** No limits at all.  Stateless; safe to share. *)

val depth_limited : int -> t
(** Only a recursion-depth ceiling.  Stateless; safe to share. *)

val create :
  ?fuel:int -> ?max_depth:int -> ?timeout_ms:int -> unit -> t
(** [create ()] limits depth to {!default_max_depth} and nothing else.
    [?fuel] enables node-count accounting; [?timeout_ms] arms a
    deadline [timeout_ms] milliseconds of monotonic time from now. *)

val now_mono : unit -> float
(** Seconds on the monotonic clock (arbitrary epoch, never steps).
    The {e only} time source deadlines are armed from and checked
    against. *)

val set_clock_for_tests : (unit -> float) option -> unit
(** Replace ({!Some}) or restore ([None]) the clock behind
    {!now_mono}.  Test apparatus: deadline regressions drive a stubbed
    clock deterministically instead of sleeping.  Process-global; not
    for production code. *)

val max_depth : t -> int

val check_depth : t -> int -> unit
(** [check_depth b d] raises {!Exhausted}[ Depth] iff [d > max_depth b]. *)

val burn : t -> int -> unit
(** [burn b cost] consumes [cost] fuel units and periodically (every
    {!deadline_stride} calls) checks the deadline.  Raises {!Exhausted}
    with the matching reason. *)

val deadline_stride : int
(** How many {!burn} calls pass between two wall-clock reads. *)

val string_of_reason : reason -> string
val pp_reason : Format.formatter -> reason -> unit

val describe : reason -> string
(** A one-line, user-facing message, e.g.
    ["resource budget exhausted: recursion depth limit reached"]. *)
