type reason = Fuel | Depth | Deadline

exception Exhausted of reason

(* Deadlines are armed and checked against CLOCK_MONOTONIC, never the
   wall clock: a long-lived daemon sees NTP steps, and a wall-clock
   deadline would then fire spuriously (step forward) or defer
   indefinitely (step back).  Both the arming read in [create] and the
   checking read in [burn] go through the one [now_mono] function, so
   the two can never mix time sources. *)
let default_clock () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let clock = ref default_clock

let now_mono () = !clock ()

let set_clock_for_tests = function
  | Some f -> clock := f
  | None -> clock := default_clock

type t = {
  mutable fuel : int;  (* remaining units; meaningful only when [fueled] *)
  fueled : bool;
  max_depth : int;
  deadline : float;  (* absolute [now_mono] seconds; [infinity] = none *)
  mutable tick : int;  (* burns since the last clock read *)
}

let default_max_depth = 10_000

let unlimited =
  { fuel = max_int; fueled = false; max_depth = max_int; deadline = infinity;
    tick = 0 }

let depth_limited d = { unlimited with max_depth = d }

let create ?fuel ?(max_depth = default_max_depth) ?timeout_ms () =
  let fueled, fuel =
    match fuel with None -> (false, max_int) | Some f -> (true, f)
  in
  let deadline =
    match timeout_ms with
    | None -> infinity
    | Some ms -> now_mono () +. (float_of_int ms /. 1000.)
  in
  { fuel; fueled; max_depth; deadline; tick = 0 }

let max_depth t = t.max_depth

let check_depth t d = if d > t.max_depth then raise (Exhausted Depth)

let deadline_stride = 512

let burn t cost =
  if t.fueled then begin
    t.fuel <- t.fuel - cost;
    if t.fuel < 0 then raise (Exhausted Fuel)
  end;
  if t.deadline < infinity then begin
    t.tick <- t.tick + 1;
    if t.tick >= deadline_stride then begin
      t.tick <- 0;
      if now_mono () > t.deadline then raise (Exhausted Deadline)
    end
  end

let string_of_reason = function
  | Fuel -> "fuel"
  | Depth -> "depth"
  | Deadline -> "deadline"

let pp_reason fmt r = Format.pp_print_string fmt (string_of_reason r)

let describe = function
  | Fuel -> "resource budget exhausted: node fuel spent"
  | Depth -> "resource budget exhausted: recursion depth limit reached"
  | Deadline -> "resource budget exhausted: wall-clock deadline passed"
