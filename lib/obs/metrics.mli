(** Named counters and timers with a structured dump.

    A per-domain registry of

    - {b counters}: monotonically increasing integers ({!incr}/{!add}),
      used for per-construct evaluation counts ([jsl.test.unique],
      [jnl.eq_paths], …) and volume counts ([parse.values],
      [stream.tokens], …);
    - {b timings}: accumulated duration samples with count/total/min/max
      ({!span} for scoped wall-clock measurement, {!observe_ns} for
      externally measured samples — the bench harness feeds its OLS
      estimates through this).

    Recording is {e disabled by default} so the evaluators' hot paths
    pay a single mutable-bool read; {!set_enabled}[ true] (the CLI's
    [--metrics] flag, the bench driver) turns it on.

    {b Concurrency.}  Every domain records into its own registry
    (domain-local storage), so recording never races.  A parallel
    stage runs its workers under {!with_registry} with a fresh
    {!create_registry} each, and the coordinator folds the quiesced
    worker registries back with {!merge} once they have joined — this
    is how [Par.Batch] keeps counters exact across job counts.  The
    main domain's registry is what {!dump_text}/{!dump_json} render. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val incr : string -> unit
(** [incr name] adds 1 to counter [name] (no-op while disabled). *)

val add : string -> int -> unit

val observe_ns : string -> float -> unit
(** Record one duration sample, in nanoseconds (no-op while disabled). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and records its wall-clock duration under
    timing [name].  The duration is recorded even when [f] raises.
    While disabled, [f] is run directly. *)

val counter_value : string -> int
(** Current value of a counter; [0] if never touched. *)

val reset : unit -> unit
(** Drop all recorded counters and timings (leaves enablement alone). *)

val dump_text : unit -> string
(** Human-readable dump: one sorted [name value] line per counter, one
    [name count total mean min max] line per timing. *)

val dump_json : unit -> string
(** The same data as one JSON object:
    [{"counters": {name: int, ...},
      "timings": {name: {"count": int, "total_ms": float,
                         "mean_ns": float, "min_ns": float,
                         "max_ns": float}, ...}}]. *)

(** {1 Mergeable registries}

    The apparatus behind race-free parallel recording.  All the
    functions above operate on the {e current} registry — by default
    the calling domain's own. *)

type registry
(** A set of counters and timings. *)

val create_registry : unit -> registry
(** A fresh, empty registry. *)

val current_registry : unit -> registry
(** The registry the recording functions currently write to. *)

val with_registry : registry -> (unit -> 'a) -> 'a
(** [with_registry r f] runs [f] with [r] installed as the calling
    domain's current registry, restoring the previous one afterwards
    (also on exceptions). *)

val merge : registry -> unit
(** [merge src] folds [src] into the current registry: counters are
    summed; timings combine sample counts, totals and min/max.  [src]
    must be quiescent — merge worker registries only after the workers
    have joined. *)

val merge_into : into:registry -> registry -> unit
(** Like {!merge} with an explicit destination. *)
