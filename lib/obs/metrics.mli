(** Named counters and timers with a structured dump.

    A process-wide registry of

    - {b counters}: monotonically increasing integers ({!incr}/{!add}),
      used for per-construct evaluation counts ([jsl.test.unique],
      [jnl.eq_paths], …) and volume counts ([parse.values],
      [stream.tokens], …);
    - {b timings}: accumulated duration samples with count/total/min/max
      ({!span} for scoped wall-clock measurement, {!observe_ns} for
      externally measured samples — the bench harness feeds its OLS
      estimates through this).

    Recording is {e disabled by default} so the evaluators' hot paths
    pay a single mutable-bool read; {!set_enabled}[ true] (the CLI's
    [--metrics] flag, the bench driver) turns it on.

    The registry is not synchronized: confine recording to one domain. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val incr : string -> unit
(** [incr name] adds 1 to counter [name] (no-op while disabled). *)

val add : string -> int -> unit

val observe_ns : string -> float -> unit
(** Record one duration sample, in nanoseconds (no-op while disabled). *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and records its wall-clock duration under
    timing [name].  The duration is recorded even when [f] raises.
    While disabled, [f] is run directly. *)

val counter_value : string -> int
(** Current value of a counter; [0] if never touched. *)

val reset : unit -> unit
(** Drop all recorded counters and timings (leaves enablement alone). *)

val dump_text : unit -> string
(** Human-readable dump: one sorted [name value] line per counter, one
    [name count total mean min max] line per timing. *)

val dump_json : unit -> string
(** The same data as one JSON object:
    [{"counters": {name: int, ...},
      "timings": {name: {"count": int, "total_ms": float,
                         "mean_ns": float, "min_ns": float,
                         "max_ns": float}, ...}}]. *)
