let on = ref false

let set_enabled b = on := b
let enabled () = !on

type timing = {
  mutable count : int;
  mutable total_ns : float;
  mutable min_ns : float;
  mutable max_ns : float;
}

type registry = {
  counters : (string, int ref) Hashtbl.t;
  timings : (string, timing) Hashtbl.t;
}

let create_registry () =
  { counters = Hashtbl.create 64; timings = Hashtbl.create 32 }

(* Each domain records into its own registry: the key's initializer runs
   once per domain, so recording is race-free without any locking.  The
   main domain's registry doubles as the process-wide one that the CLI
   and the bench harness dump. *)
let registry_key = Domain.DLS.new_key create_registry

let current_registry () = Domain.DLS.get registry_key

let with_registry r f =
  let saved = Domain.DLS.get registry_key in
  Domain.DLS.set registry_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set registry_key saved) f

let add name n =
  if !on then begin
    let counters = (current_registry ()).counters in
    match Hashtbl.find_opt counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add counters name (ref n)
  end

let incr name = add name 1

let observe_ns name ns =
  if !on then begin
    let timings = (current_registry ()).timings in
    match Hashtbl.find_opt timings name with
    | Some t ->
      t.count <- t.count + 1;
      t.total_ns <- t.total_ns +. ns;
      if ns < t.min_ns then t.min_ns <- ns;
      if ns > t.max_ns then t.max_ns <- ns
    | None ->
      Hashtbl.add timings name
        { count = 1; total_ns = ns; min_ns = ns; max_ns = ns }
  end

let span name f =
  if not !on then f ()
  else begin
    (* monotonic, like Budget deadlines: span durations in a long-lived
       process must not absorb wall-clock steps *)
    let t0 = Budget.now_mono () in
    let record () = observe_ns name ((Budget.now_mono () -. t0) *. 1e9) in
    match f () with
    | v ->
      record ();
      v
    | exception e ->
      record ();
      raise e
  end

let merge_into ~into src =
  Hashtbl.iter
    (fun name r ->
      match Hashtbl.find_opt into.counters name with
      | Some d -> d := !d + !r
      | None -> Hashtbl.add into.counters name (ref !r))
    src.counters;
  Hashtbl.iter
    (fun name t ->
      match Hashtbl.find_opt into.timings name with
      | Some d ->
        d.count <- d.count + t.count;
        d.total_ns <- d.total_ns +. t.total_ns;
        if t.min_ns < d.min_ns then d.min_ns <- t.min_ns;
        if t.max_ns > d.max_ns then d.max_ns <- t.max_ns
      | None ->
        Hashtbl.add into.timings name
          { count = t.count; total_ns = t.total_ns; min_ns = t.min_ns;
            max_ns = t.max_ns })
    src.timings

let merge src = merge_into ~into:(current_registry ()) src

let counter_value name =
  match Hashtbl.find_opt (current_registry ()).counters name with
  | Some r -> !r
  | None -> 0

let reset () =
  let r = current_registry () in
  Hashtbl.reset r.counters;
  Hashtbl.reset r.timings

let sorted tbl = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let dump_text () =
  let { counters; timings } = current_registry () in
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, r) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name !r))
    (sorted counters);
  List.iter
    (fun (name, t) ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s count=%d total=%.3fms mean=%.0fns min=%.0fns max=%.0fns\n"
           name t.count (t.total_ns /. 1e6)
           (t.total_ns /. float_of_int (max 1 t.count))
           t.min_ns t.max_ns))
    (sorted timings);
  Buffer.contents buf

(* Metric names are plain ASCII identifiers, but escape defensively so
   the dump is always valid JSON. *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let dump_json () =
  let { counters; timings } = current_registry () in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"counters\":{";
  List.iteri
    (fun i (name, r) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%s:%d" (json_string name) !r))
    (sorted counters);
  Buffer.add_string buf "},\"timings\":{";
  List.iteri
    (fun i (name, t) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "%s:{\"count\":%d,\"total_ms\":%.3f,\"mean_ns\":%.0f,\"min_ns\":%.0f,\"max_ns\":%.0f}"
           (json_string name) t.count (t.total_ns /. 1e6)
           (t.total_ns /. float_of_int (max 1 t.count))
           t.min_ns t.max_ns))
    (sorted timings);
  Buffer.add_string buf "}}";
  Buffer.contents buf
