(* On-disk layout of the corpus index: format constants, the header
   field map, edge-label encoding and the corruption checksum.  The
   writer and reader agree on the format exclusively through this
   module, and the fault-injection tests use the field offsets to
   corrupt files surgically. *)

let magic = "JLIXIDX2"
let magic_prefix = "JLIXIDX"
let version = 2
let default_pos_cap = 1024
let default_value_cap = 65536
let doc_entry_bytes = 32

(* header flag bits *)
let flag_no_values = 1

module Field = struct
  let version = 8
  let pos_cap = 12
  let file_size = 16
  let ndocs = 24
  let nnodes = 32
  let nkeys = 40
  let key_entries = 48
  let pos_entries = 56
  let corpus_len = 64
  let doc_table = 72
  let parents = 80
  let labels = 88
  let strtab_idx = 96
  let strtab_blob = 104
  let strtab_blob_len = 112
  let key_pidx = 120
  let key_post = 128
  let pos_pidx = 136
  let pos_post = 144
  let corpus_path = 152
  (* v2: the scalar-value table and (label, value) postings *)
  let flags = 160
  let value_cap = 164
  let nvals = 168
  let npairs = 176
  let val_entries = 184
  let val_dropped = 192
  let valtab_idx = 200
  let valtab_blob = 208
  let valtab_blob_len = 216
  let pair_table = 224
  let pair_pidx = 232
  let val_post = 240
  let body_checksum = 248
  let header_checksum = 256
end

let header_bytes = 264

(* Scalar values are keyed in the sorted value table by a canonical
   encoding: one kind byte ('s' string, 'n' natural) followed by the
   payload.  Numbers use the canonical decimal rendering of the model
   natural, so every source notation that parses to the same natural
   ([1], [1.0], [1e0] under lenient narrowing) shares one value id. *)
let encode_str s = "s" ^ s
let encode_num n = "n" ^ string_of_int n

(* Edge labels: one i32 per node.  Key edges carry the global key id,
   position edges the position, the root a sentinel.  The low bit
   distinguishes the two relations (O vs A of §3.1). *)
let label_root = -1
let label_key k = k lsl 1
let label_pos p = (p lsl 1) lor 1
let max_pos_label = (1 lsl 29) - 1

(* FNV-1a folded over 32-bit little-endian words, kept inside OCaml's
   native positive-int range.  Sections are 8-byte padded so the word
   stream never straddles the end. *)
let checksum_init = 0x811c9dc5

let fold_word h w = (h lxor w) * 0x01000193 land max_int

let checksum_bytes h b off len =
  let h = ref h in
  let i = ref off in
  let stop = off + len in
  while !i < stop do
    h := fold_word !h (Int32.to_int (Bytes.get_int32_le b !i) land 0xFFFFFFFF);
    i := !i + 4
  done;
  !h

let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let set_i32 = set_u32
let set_u64 b off v = Bytes.set_int64_le b off (Int64.of_int v)
let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let get_i32 b off = Int32.to_int (Bytes.get_int32_le b off)

let get_u64 b off =
  let v = Bytes.get_int64_le b off in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    (* out of int range: clamp to a value validation is sure to reject *)
    max_int
  else Int64.to_int v

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let byte_ba (b : buf) i = Char.code (Bigarray.Array1.get b i)

let get_u32_ba b off =
  byte_ba b off
  lor (byte_ba b (off + 1) lsl 8)
  lor (byte_ba b (off + 2) lsl 16)
  lor (byte_ba b (off + 3) lsl 24)

let get_i32_ba b off =
  let v = get_u32_ba b off in
  (v lxor 0x80000000) - 0x80000000

let get_u64_ba b off =
  let lo = get_u32_ba b off and hi = get_u32_ba b (off + 4) in
  (* values above OCaml's native positive range clamp to max_int, which
     every count/offset validation is sure to reject *)
  if hi >= 0x40000000 then max_int else lo lor (hi lsl 32)

let string_ba b off len = String.init len (fun i -> Bigarray.Array1.get b (off + i))

let checksum_ba h b off len =
  let h = ref h in
  let i = ref off in
  let stop = off + len in
  while !i < stop do
    h := fold_word !h (get_u32_ba b !i);
    i := !i + 4
  done;
  !h

let pad8 n = (n + 7) land lnot 7
