(** Corpus index construction.

    [build] ingests an NDJSON corpus once — one document per line,
    trim-blank lines skipped but still counted for line numbers,
    exactly the convention of [validate --stream] — sharded across the
    {!Par} pool, and writes the complete label → postings index
    described in {!Layout} next to the per-document offset table.

    The output bytes are a pure function of the corpus: documents are
    numbered in line order whatever the lane count, the string table
    is sorted, and postings lists are emitted in (document, node)
    order — so two builds of the same corpus are byte-identical
    regardless of [jobs].

    Counters: [index.build.docs], [index.build.nodes],
    [index.build.keys], [index.build.postings],
    [index.build.values], [index.build.value_postings],
    [index.build.value_dropped], [index.build.errors],
    [index.build.bytes]; span [index.build]. *)

type stats = {
  docs : int;  (** documents indexed (non-blank lines) *)
  errors : int;  (** documents that failed to parse (flagged, not fatal) *)
  nodes : int;  (** total tree nodes across all parsed documents *)
  keys : int;  (** distinct object keys in the string table *)
  key_postings : int;  (** entries across all key postings lists *)
  pos_postings : int;  (** entries across all position postings lists *)
  values : int;  (** distinct scalar values in the value table *)
  value_pairs : int;  (** distinct (leaf-label, value-id) postings lists *)
  value_postings : int;  (** entries across all value postings lists *)
  value_dropped : int;  (** entries dropped by the [value_cap] ceiling *)
  bytes : int;  (** size of the written index file *)
}

val build :
  ?jobs:int ->
  ?pos_cap:int ->
  ?value_cap:int ->
  ?no_values:bool ->
  ?fresh_budget:(unit -> Obs.Budget.t) ->
  corpus:string ->
  output:string ->
  unit ->
  (stats, string) result
(** [build ~corpus ~output ()] reads the NDJSON file [corpus], parses
    every line on [jobs] domains (each under its own budget from
    [fresh_budget]), and writes the index to [output] (atomically, via
    a temporary file and rename).  Lines that fail to parse are
    recorded with an error flag — queries reproduce the exact parse
    error by reparsing just that line — and do not fail the build.
    [pos_cap] bounds how many array-position postings lists are
    materialized (default {!Layout.default_pos_cap}); [value_cap]
    (default {!Layout.default_value_cap}) bounds the length of one
    (leaf-label, value) postings list — longer lists are dropped (the
    pair keeps an empty range, so queries fall back instead of
    scanning an unselective seed set) and counted in [value_dropped];
    [no_values] skips the scalar-value table and value postings
    entirely (the [eq] pushdown then always falls back to filtered
    reparse). *)
