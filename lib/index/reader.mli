(** Memory-mapped access to a corpus index file.

    {!open_} maps the file ({!Unix.map_file}, read-only — a
    [chmod 444] index works) and validates everything cheap before
    returning: magic, version, header checksum, declared-vs-actual
    file size, section offsets/extents/alignment, string-table and
    postings-index monotonicity, document-table consistency, and (by
    default) the full body checksum — so bit flips, truncations and
    oversized declared counts surface as positioned [Error] messages
    at open, never as exceptions or wild reads later.

    Accessors that walk postings are bounds-checked against the
    validated extents and raise {!Corrupt} (with a description) on
    out-of-range data the open-time sweep cannot see — the query
    planner folds that into an error verdict. *)

exception Corrupt of string
(** Out-of-range data met while reading postings or columns. *)

type t

val open_ : ?verify_body:bool -> string -> (t, string) result
(** [open_ path] maps and validates [path].  [verify_body] (default
    [true]) additionally checksums the whole body — one sequential
    pass; disable it to pay only O(header + tables) at open.  A file
    carrying an earlier format version (e.g. the v1 magic
    ["JLIXIDX1"]) is refused with a positioned "unsupported index
    version" error naming the version found and the one this build
    reads. *)

val close : t -> unit
(** Drop the mapping eagerly (also dropped by the GC). *)

val path : t -> string
val file_size : t -> int
val ndocs : t -> int
val nnodes : t -> int
val nkeys : t -> int

val npos : t -> int
(** Number of materialized array-position postings lists: positions
    [0 .. npos-1] can seed a postings-only query. *)

val key_entries : t -> int
val pos_entries : t -> int
val corpus_path : t -> string
val corpus_len : t -> int

val has_values : t -> bool
(** Were the scalar-value table and value postings built?  [false]
    for a [--no-values] index: value absence then proves nothing and
    the [eq] pushdown is unavailable. *)

val value_cap : t -> int
(** The per-(label, value) postings ceiling the build used. *)

val nvals : t -> int
(** Distinct scalar values in the value table. *)

val npairs : t -> int
(** Distinct (leaf-label, value-id) postings lists (capped ones
    included, with an empty range). *)

val val_entries : t -> int
(** Entries across all value postings lists. *)

val val_dropped : t -> int
(** Postings entries the build dropped because their pair exceeded
    {!value_cap}. *)

val val_blob_len : t -> int
(** Bytes of the encoded value blob. *)

(** {1 Document table} *)

val doc_lineno : t -> int -> int
val doc_off : t -> int -> int
val doc_len : t -> int -> int
val doc_node_count : t -> int -> int
val doc_node_base : t -> int -> int
val doc_err : t -> int -> bool
(** Did this line fail to parse at build time?  (Queries reparse it to
    reproduce the exact error.) *)

(** {1 String table} *)

val key_id : t -> string -> int option
(** Binary search over the sorted table. *)

val key_name : t -> int -> string

(** {1 Postings}

    A postings list is a contiguous run of (document id, doc-local
    node id) entries, sorted by (document, node). *)

val key_range : t -> int -> int * int
(** [key_range r k] is the entry-index interval [\[start, stop)] of
    key [k]'s postings. *)

val pos_range : t -> int -> int * int

val key_entry : t -> int -> int * int
(** [key_entry r i] decodes entry [i] as [(doc, node)]; the document
    id is validated against the document table. *)

val pos_entry : t -> int -> int * int

(** {1 Value table and (label, value) postings}

    Scalars are keyed by their canonical {!Layout.encode_str} /
    {!Layout.encode_num} encoding.  A pair present in the table with
    an {e empty} range was capped at build time ([value_cap]); a pair
    {e absent} from the table occurs nowhere in the corpus — the
    distinction is what lets the query planner conclude [false] from
    absence while falling back on capped lists. *)

val value_id : t -> string -> int option
(** Binary search of the sorted value table by encoded scalar. *)

val val_name : t -> int -> string
(** The encoded scalar of one value id. *)

val pair_lookup : t -> label:int -> vid:int -> int option
(** Binary search of the pair table by ({!Layout} edge-label word,
    value id); [Some pid] indexes {!pair_range}. *)

val pair_range : t -> int -> int * int
(** Entry-index interval of one pair's value postings ([start = stop]
    for a capped pair). *)

val val_entry : t -> int -> int * int
(** [(doc, node)] of one value postings entry; the node is a scalar
    leaf reached by the pair's label and holding the pair's value. *)

val capped_pairs : t -> int
(** How many pairs were capped (one O(npairs) sweep — [index info]
    material, not a query-path accessor). *)

(** {1 Structure columns} *)

val doc_parent : t -> doc:int -> node:int -> int
(** Doc-local parent of doc-local [node]; [-1] for the root.
    @raise Corrupt when [node] is outside the document or the stored
    parent is. *)

val doc_label : t -> doc:int -> node:int -> int
(** The {!Layout} edge-label word of doc-local [node]
    ({!Layout.label_root} for the root). *)
