(* Query planning over the persistent index.

   The split mirrors the paper's fragment structure: the
   deterministic navigational core (Self/Key/Idx compositions under
   Exists and boolean connectives, plus Eq_doc against a scalar
   constant — seeded from the (leaf-label, value) postings) is decided
   entirely from postings — seed at the last step's bucket, confirm by
   walking the stored parent chain — while anything richer (filters,
   structured equalities, stars, regex keys, negative indices) falls
   back to reparsing only the documents a sound prefilter cannot rule
   out.  Intersections are ordered by postings length (most selective
   first) so an empty intermediate set short-circuits the rest.  Both
   plans produce verdicts identical to running the in-memory evaluator
   on every line. *)

module Jnl = Jlogic.Jnl
module Bitset = Jlogic.Bitset

type verdict = True | False | Error of string

let verdict_string = function
  | True -> "true"
  | False -> "false"
  | Error m -> "error: " ^ m

(* ---- the postings-only compiler ------------------------------------------- *)

type step = SK of int  (* global key id *) | SP of int  (* array position *)

type cform =
  | CTrue
  | CFalse  (* a path names a key (or scalar value) the corpus lacks *)
  | CNot of cform
  | CAnd of cform * cform
  | COr of cform * cform
  | CExists of step list
  | CEq of step list * int * int
      (* a rooted core chain ending in a scalar comparison: seeds are
         the [start, stop) slice of the value postings for (last-step
         label, value id); the same upward walk confirms the chain *)

exception Not_core

(* Flatten a navigational-core path to its step chain; [Dead] marks a
   key absent from the corpus (no document can traverse it), anything
   outside the core raises. *)
type chain = Steps of step list | Dead

let rec chain_of r = function
  | Jnl.Self -> Steps []
  | Jnl.Key w -> (
    match Reader.key_id r w with
    | Some k -> Steps [ SK k ]
    | None -> Dead)
  | Jnl.Idx i when i >= 0 -> Steps [ SP i ]
  | Jnl.Seq (a, b) -> (
    match (chain_of r a, chain_of r b) with
    | Steps xs, Steps ys -> Steps (xs @ ys)
    | _ -> Dead)
  | Jnl.Idx _ | Jnl.Keys _ | Jnl.Range _ | Jnl.Test _ | Jnl.Star _
  | Jnl.Alt _ ->
    raise Not_core

let step_label = function
  | SK k -> Layout.label_key k
  | SP p -> Layout.label_pos p

(* The canonical value-table key of a scalar constant; non-scalar
   constants (objects, arrays) have no value postings. *)
let scalar_key = function
  | Jsont.Value.Str s -> Some (Layout.encode_str s)
  | Jsont.Value.Num n -> Some (Layout.encode_num n)
  | Jsont.Value.Obj _ | Jsont.Value.Arr _ -> None

(* The postings slice seeding [Eq_doc (chain, v)]: the pair bucket of
   the chain's last edge label (the root label for the empty chain —
   bare scalar documents) and [v]'s value id.  [None] = no such leaf
   anywhere (the equality is false at every root); raises [Not_core]
   when the pushdown cannot run (values disabled, or the pair's list
   was capped at build time). *)
let eq_slice r steps enc =
  if not (Reader.has_values r) then raise Not_core;
  let label =
    match List.rev steps with
    | [] -> Layout.label_root
    | s :: _ -> step_label s
  in
  match Reader.value_id r enc with
  | None -> None
  | Some vid -> (
    match Reader.pair_lookup r ~label ~vid with
    | None -> None
    | Some pid ->
      let start, stop = Reader.pair_range r pid in
      if start = stop then raise Not_core (* capped: seeds were dropped *)
      else Some (start, stop))

let rec compile r = function
  | Jnl.True -> CTrue
  | Jnl.Not f -> CNot (compile r f)
  | Jnl.And (a, b) -> CAnd (compile r a, compile r b)
  | Jnl.Or (a, b) -> COr (compile r a, compile r b)
  | Jnl.Exists alpha -> (
    match chain_of r alpha with
    | Dead -> CFalse
    | Steps [] -> CTrue (* the root itself is the witness *)
    | Steps steps ->
      (* the chain seeds from its LAST step's postings list; a
         position past the materialized lists has no bucket to seed
         from, so the whole query takes the prefilter plan instead *)
      (match List.rev steps with
      | SP p :: _ when p >= Reader.npos r -> raise Not_core
      | _ -> CExists steps))
  | Jnl.Eq_doc (alpha, v) -> (
    match scalar_key v with
    | None -> raise Not_core
    | Some enc -> (
      match chain_of r alpha with
      | Dead -> CFalse
      | Steps steps -> (
        match eq_slice r steps enc with
        | None -> CFalse
        | Some (start, stop) -> CEq (steps, start, stop))))
  | Jnl.Eq_paths _ -> raise Not_core

(* Confirm one posting: the node's upward parent chain must spell the
   step labels in reverse and land exactly on the root. *)
let confirm r ~doc ~node rev_steps =
  let rec go node = function
    | [] -> node = 0 (* consumed the whole chain exactly at the root *)
    | s :: rest ->
      node > 0 (* the root has no incoming edge to match *)
      && Reader.doc_label r ~doc ~node = step_label s
      && go (Reader.doc_parent r ~doc ~node) rest
  in
  go node rev_steps

let chain_slice r steps =
  match List.rev steps with
  | SK k :: _ -> Reader.key_range r k
  | SP p :: _ -> Reader.pos_range r p
  | [] -> (0, 0)

let exists_docs r budget steps =
  let set = Bitset.create (Reader.ndocs r) in
  let rev_steps = List.rev steps in
  let start, stop = chain_slice r steps in
  let entry =
    match rev_steps with
    | SP _ :: _ -> Reader.pos_entry r
    | _ -> Reader.key_entry r
  in
  Obs.Metrics.add "index.query.seeds" (stop - start);
  for i = start to stop - 1 do
    Obs.Budget.burn budget 1;
    let doc, node = entry i in
    (* postings are (doc, node)-sorted: once a document is in, skip
       its remaining seeds *)
    if not (Bitset.mem set doc) && confirm r ~doc ~node rev_steps then
      Bitset.add set doc
  done;
  set

(* [Eq_doc] pushdown: every seed is already a scalar leaf holding the
   compared value under the chain's last label; the same upward walk
   that decides [Exists] confirms the rest of the chain.  No document
   is touched. *)
let eq_docs r budget steps (start, stop) =
  let set = Bitset.create (Reader.ndocs r) in
  let rev_steps = List.rev steps in
  Obs.Metrics.add "index.query.value_hits" (stop - start);
  for i = start to stop - 1 do
    Obs.Budget.burn budget 1;
    let doc, node = Reader.val_entry r i in
    if not (Bitset.mem set doc) && confirm r ~doc ~node rev_steps then
      Bitset.add set doc
  done;
  set

(* ---- the selectivity planner ------------------------------------------------ *)

(* Upper bound on the postings work (and the result cardinality) of
   one compiled subformula — the cost model the planner orders
   intersections by.  Negations and [True] cost nothing to evaluate
   but constrain nothing either, so they rank as the full corpus. *)
let rec estimate r = function
  | CTrue | CNot _ -> Reader.ndocs r
  | CFalse -> 0
  | CAnd (a, b) -> min (estimate r a) (estimate r b)
  | COr (a, b) -> min (Reader.ndocs r) (estimate r a + estimate r b)
  | CExists steps ->
    let start, stop = chain_slice r steps in
    stop - start
  | CEq (_, start, stop) -> stop - start

(* Flattened conjunction, original (syntactic) order preserved. *)
let rec conjuncts acc = function
  | CAnd (a, b) -> conjuncts (conjuncts acc b) a
  | f -> f :: acc

(* Order a list by an integer estimate, cheapest first; count a
   reorder when the planner actually changed the evaluation order. *)
let rank ~est parts =
  let ranked =
    List.stable_sort (fun a b -> Int.compare (est a) (est b)) parts
  in
  if not (List.for_all2 (fun a b -> a == b) parts ranked) then
    Obs.Metrics.incr "index.plan.reorders";
  ranked

let rec eval_cform r budget = function
  | CTrue -> Bitset.full (Reader.ndocs r)
  | CFalse -> Bitset.create (Reader.ndocs r)
  | CNot f -> Bitset.complement (eval_cform r budget f)
  | CAnd _ as f ->
    (* most selective conjunct first; an empty running intersection
       short-circuits the remaining (more expensive) seed scans *)
    (match rank ~est:(estimate r) (conjuncts [] f) with
    | [] -> assert false (* conjuncts of a CAnd is never empty *)
    | first :: rest ->
      let acc = eval_cform r budget first in
      List.iter
        (fun g ->
          if not (Bitset.is_empty acc) then
            ignore (Bitset.inter_into (eval_cform r budget g) ~into:acc))
        rest;
      acc)
  | COr (a, b) ->
    let sa = eval_cform r budget a in
    ignore (Bitset.union_into (eval_cform r budget b) ~into:sa);
    sa
  | CExists steps -> exists_docs r budget steps
  | CEq (steps, start, stop) -> eq_docs r budget steps (start, stop)

(* ---- the required-label prefilter ----------------------------------------- *)

(* Labels every satisfying document must contain — the soundness
   invariant is one-directional: [phi] holding at a document's root
   implies every required label occurs in the document, never the
   converse.  Disjunction intersects, conjunction unions, negation and
   the non-deterministic steps require nothing. *)
module Lab = struct
  type t = LK of string | LP of int

  let compare = compare
end

module LabSet = Set.Make (Lab)

let rec req_form = function
  | Jnl.True | Jnl.Not _ -> LabSet.empty
  | Jnl.And (a, b) -> LabSet.union (req_form a) (req_form b)
  | Jnl.Or (a, b) -> LabSet.inter (req_form a) (req_form b)
  | Jnl.Exists alpha -> req_path alpha
  | Jnl.Eq_doc (alpha, v) -> LabSet.union (req_path alpha) (req_value v)
  | Jnl.Eq_paths (alpha, beta) -> LabSet.union (req_path alpha) (req_path beta)

and req_path = function
  | Jnl.Self | Jnl.Keys _ | Jnl.Star _ -> LabSet.empty
  | Jnl.Key w -> LabSet.singleton (Lab.LK w)
  | Jnl.Idx i ->
    (* negative i needs arity >= |i|; positions are contiguous, so
       position |i|-1 must exist *)
    LabSet.singleton (Lab.LP (if i >= 0 then i else -i - 1))
  | Jnl.Range (i, _) when i >= 0 -> LabSet.singleton (Lab.LP i)
  | Jnl.Range _ -> LabSet.empty
  | Jnl.Seq (a, b) -> LabSet.union (req_path a) (req_path b)
  | Jnl.Test f -> req_form f
  | Jnl.Alt (a, b) -> LabSet.inter (req_path a) (req_path b)

(* a subtree equal to constant [v] contains every edge of [v] *)
and req_value v =
  match v with
  | Jsont.Value.Obj fields ->
    List.fold_left
      (fun acc (w, v') ->
        LabSet.add (Lab.LK w) (LabSet.union acc (req_value v')))
      LabSet.empty fields
  | Jsont.Value.Arr vs ->
    List.fold_left
      (fun (acc, i) v' ->
        (LabSet.add (Lab.LP i) (LabSet.union acc (req_value v')), i + 1))
      (LabSet.empty, 0) vs
    |> fst
  | Jsont.Value.Str _ | Jsont.Value.Num _ -> LabSet.empty

(* Rooted chains: beyond label presence, any [Exists]/[EQ] path in
   positive conjunctive position at the root must NAVIGATE its maximal
   leading core prefix from the document root — [Self] does not move
   and [Test] only filters, so the chain passes through both; the
   first non-core step ends the prefix.  Confirming those prefixes
   against the postings (the same parent-walk the postings-only plan
   uses) is a far sharper prefilter than key presence: a document
   mentioning "first" somewhere is not a document whose root has
   [.name.first].  An [Eq_doc] whose path is entirely core sharpens
   further: its candidates come straight off the value postings. *)
type rooted = RDead | RChain of step list | REq of step list * int * int

(* maximal leading core prefix; [complete] when the whole path was
   consumed (nothing non-core follows, so an equality at its end can
   seed from value postings) *)
let rooted_prefix r alpha =
  let rec go acc = function
    | [] -> Some (List.rev acc, true)
    | p :: rest -> (
      match p with
      | Jnl.Self | Jnl.Test _ -> go acc rest
      | Jnl.Seq (a, b) -> go acc (a :: b :: rest)
      | Jnl.Key w -> (
        match Reader.key_id r w with
        | Some k -> go (SK k :: acc) rest
        | None -> None)
      | Jnl.Idx i when i >= 0 -> go (SP i :: acc) rest
      | Jnl.Idx _ | Jnl.Keys _ | Jnl.Range _ | Jnl.Star _ | Jnl.Alt _ ->
        Some (List.rev acc, false))
  in
  go [] [ alpha ]

let rooted_chain r alpha =
  match rooted_prefix r alpha with
  | None -> RDead
  | Some (steps, _) -> RChain steps

(* [Test] inside a path can hide equalities, but only the outermost
   path's own completeness matters here, so Eq_doc handles its value
   seeding locally. *)
let rooted_eq r alpha v =
  match rooted_prefix r alpha with
  | None -> RDead
  | Some (steps, complete) -> (
    match if complete then scalar_key v else None with
    | None -> RChain steps
    | Some enc -> (
      match eq_slice r steps enc with
      | None -> RDead (* no leaf anywhere equals the constant *)
      | Some (start, stop) -> REq (steps, start, stop)
      | exception Not_core -> RChain steps))

let rec root_chains r = function
  | Jnl.True | Jnl.Not _ | Jnl.Or _ -> []
  | Jnl.And (a, b) -> root_chains r a @ root_chains r b
  | Jnl.Exists alpha -> [ rooted_chain r alpha ]
  | Jnl.Eq_doc (alpha, v) -> [ rooted_eq r alpha v ]
  | Jnl.Eq_paths (alpha, beta) ->
    [ rooted_chain r alpha; rooted_chain r beta ]

(* a chain seeds from its last step's postings list; positions past
   the materialized lists just shorten the confirmed prefix *)
let rec seedable r steps =
  match List.rev steps with
  | SP p :: rev_rest when p >= Reader.npos r ->
    seedable r (List.rev rev_rest)
  | _ -> steps

(* Documents containing one label, as (estimate, build) — the planner
   intersects the cheapest lists first. *)
let docs_with_label r budget lab =
  let range =
    match lab with
    | Lab.LK w -> (
      match Reader.key_id r w with Some k -> Some (Reader.key_range r k, `K) | None -> None)
    | Lab.LP p -> if p < Reader.npos r then Some (Reader.pos_range r p, `P) else None
  in
  match range with
  | None -> (
    match lab with
    | Lab.LK _ ->
      (* key nowhere: no candidates *)
      Some (0, fun () -> Bitset.create (Reader.ndocs r))
    | Lab.LP _ -> None (* no materialized list: requirement unusable *))
  | Some ((start, stop), which) ->
    let entry =
      match which with `K -> Reader.key_entry r | `P -> Reader.pos_entry r
    in
    let build () =
      let set = Bitset.create (Reader.ndocs r) in
      for i = start to stop - 1 do
        Obs.Budget.burn budget 1;
        let doc, _ = entry i in
        Bitset.add set doc
      done;
      set
    in
    Some (stop - start, build)

(* One pruning set the candidate plan may intersect: its postings
   length (the cost AND a cardinality bound) plus its builder. *)
type pruner = { est : int; build : unit -> Bitset.t }

let candidates r budget phi =
  let chains = root_chains r phi in
  if List.mem RDead chains then
    (* a mandatory rooted path names a key (or compares a scalar) the
       whole corpus lacks *)
    Bitset.create (Reader.ndocs r)
  else begin
    let of_chain = function
      | RDead -> None
      | RChain steps -> (
        match seedable r steps with
        | [] -> None
        | steps ->
          let start, stop = chain_slice r steps in
          Some { est = stop - start;
                 build = (fun () -> exists_docs r budget steps) })
      | REq (steps, start, stop) ->
        Some { est = stop - start;
               build = (fun () -> eq_docs r budget steps (start, stop)) }
    in
    let pruners =
      List.filter_map of_chain chains
      @ List.filter_map
          (fun lab ->
            match docs_with_label r budget lab with
            | Some (est, build) -> Some { est; build }
            | None -> None)
          (LabSet.elements (req_form phi))
    in
    match rank ~est:(fun p -> p.est) pruners with
    | [] ->
      Obs.Metrics.incr "index.query.full_scan";
      Bitset.full (Reader.ndocs r)
    | first :: rest ->
      (* cheapest pruner first; an empty intersection skips the rest *)
      let set = first.build () in
      List.iter
        (fun p ->
          if not (Bitset.is_empty set) then
            ignore (Bitset.inter_into (p.build ()) ~into:set))
        rest;
      set
  end

(* ---- document reparse (the baseline computation, per doc) ----------------- *)

let eval_doc ~use_index ~fresh_budget phi text =
  match Jsont.Tree.of_string ~budget:(fresh_budget ()) text with
  | Error e -> Error (Format.asprintf "%a" Jsont.Parser.pp_error e)
  | Ok tree -> (
    match
      let ctx =
        Jlogic.Jnl_eval.context ~budget:(fresh_budget ()) ~use_index tree
      in
      Jlogic.Jnl_eval.holds ctx Jsont.Tree.root phi
    with
    | true -> True
    | false -> False
    | exception Failure m -> Error m
    | exception Obs.Budget.Exhausted reason ->
      Error (Obs.Budget.describe reason))

let read_slices r ~corpus docs =
  In_channel.with_open_bin corpus (fun ic ->
      Array.map
        (fun d ->
          In_channel.seek ic (Int64.of_int (Reader.doc_off r d));
          match In_channel.really_input_string ic (Reader.doc_len r d) with
          | Some s -> (d, s)
          | None -> failwith "corpus shorter than the index records")
        docs)

let reparse_docs r ~jobs ~use_index ~fresh_budget ~corpus phi docs =
  Obs.Metrics.add "index.query.reparsed" (Array.length docs);
  let slices = read_slices r ~corpus docs in
  let verdicts =
    Par.Batch.map ~jobs
      (fun (_, text) -> eval_doc ~use_index ~fresh_budget phi text)
      slices
  in
  Array.map2 (fun (d, _) v -> (d, v)) slices verdicts

(* ---- driver ---------------------------------------------------------------- *)

let run ?(jobs = 1) ?(use_index = true) ?corpus
    ?(fresh_budget = fun () -> Obs.Budget.create ()) r phi =
  let corpus =
    match corpus with Some c -> c | None -> Reader.corpus_path r
  in
  try
    Obs.Metrics.span "index.query" @@ fun () ->
    let actual =
      match (Unix.stat corpus).Unix.st_size with
      | n -> n
      | exception Unix.Unix_error (e, _, _) ->
        failwith (corpus ^ ": " ^ Unix.error_message e)
    in
    if actual <> Reader.corpus_len r then
      failwith
        (Printf.sprintf
           "%s: corpus is %d bytes but the index was built over %d (stale \
            index? rebuild with 'index build')"
           corpus actual (Reader.corpus_len r));
    let ndocs = Reader.ndocs r in
    let verdicts = Array.make ndocs False in
    let budget = fresh_budget () in
    (* error-flagged lines always reparse: their verdict is the parse
       error message, whatever the formula *)
    let err_docs = ref [] in
    for d = ndocs - 1 downto 0 do
      if Reader.doc_err r d then err_docs := d :: !err_docs
    done;
    let reparse docs =
      if Array.length docs > 0 then
        Array.iter
          (fun (d, v) -> verdicts.(d) <- v)
          (reparse_docs r ~jobs ~use_index ~fresh_budget ~corpus phi docs)
    in
    (match compile r phi with
    | cf ->
      Obs.Metrics.incr "index.query.postings_only";
      let sat = eval_cform r budget cf in
      Bitset.iter (fun d -> verdicts.(d) <- True) sat;
      reparse (Array.of_list !err_docs)
    | exception Not_core ->
      Obs.Metrics.incr "index.query.filtered";
      let cand = candidates r budget phi in
      Obs.Metrics.add "index.query.candidates" (Bitset.cardinal cand);
      List.iter (fun d -> Bitset.add cand d) !err_docs;
      reparse (Array.of_list (Bitset.elements cand)));
    Ok verdicts
  with
  | Reader.Corrupt m -> Result.Error (Reader.path r ^ ": " ^ m)
  | Failure m -> Result.Error m
  | Sys_error m -> Result.Error m
  | Obs.Budget.Exhausted reason -> Result.Error (Obs.Budget.describe reason)
