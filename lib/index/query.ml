(* Query planning over the persistent index.

   The split mirrors the paper's fragment structure: the
   deterministic navigational core (Self/Key/Idx compositions under
   Exists and boolean connectives) is decided entirely from postings —
   seed at the last step's label bucket, confirm by walking the stored
   parent chain — while anything richer (filters, equalities, stars,
   regex keys, negative indices) falls back to reparsing only the
   documents a sound required-label prefilter cannot rule out.  Both
   plans produce verdicts identical to running the in-memory evaluator
   on every line. *)

module Jnl = Jlogic.Jnl
module Bitset = Jlogic.Bitset

type verdict = True | False | Error of string

let verdict_string = function
  | True -> "true"
  | False -> "false"
  | Error m -> "error: " ^ m

(* ---- the postings-only compiler ------------------------------------------- *)

type step = SK of int  (* global key id *) | SP of int  (* array position *)

type cform =
  | CTrue
  | CFalse  (* a path names a key the whole corpus lacks *)
  | CNot of cform
  | CAnd of cform * cform
  | COr of cform * cform
  | CExists of step list

exception Not_core

(* Flatten a navigational-core path to its step chain; [Dead] marks a
   key absent from the corpus (no document can traverse it), anything
   outside the core raises. *)
type chain = Steps of step list | Dead

let rec chain_of r = function
  | Jnl.Self -> Steps []
  | Jnl.Key w -> (
    match Reader.key_id r w with
    | Some k -> Steps [ SK k ]
    | None -> Dead)
  | Jnl.Idx i when i >= 0 -> Steps [ SP i ]
  | Jnl.Seq (a, b) -> (
    match (chain_of r a, chain_of r b) with
    | Steps xs, Steps ys -> Steps (xs @ ys)
    | _ -> Dead)
  | Jnl.Idx _ | Jnl.Keys _ | Jnl.Range _ | Jnl.Test _ | Jnl.Star _
  | Jnl.Alt _ ->
    raise Not_core

let rec compile r = function
  | Jnl.True -> CTrue
  | Jnl.Not f -> CNot (compile r f)
  | Jnl.And (a, b) -> CAnd (compile r a, compile r b)
  | Jnl.Or (a, b) -> COr (compile r a, compile r b)
  | Jnl.Exists alpha -> (
    match chain_of r alpha with
    | Dead -> CFalse
    | Steps [] -> CTrue (* the root itself is the witness *)
    | Steps steps ->
      (* the chain seeds from its LAST step's postings list; a
         position past the materialized lists has no bucket to seed
         from, so the whole query takes the prefilter plan instead *)
      (match List.rev steps with
      | SP p :: _ when p >= Reader.npos r -> raise Not_core
      | _ -> CExists steps))
  | Jnl.Eq_doc _ | Jnl.Eq_paths _ -> raise Not_core

let step_label = function
  | SK k -> Layout.label_key k
  | SP p -> Layout.label_pos p

(* Confirm one posting: the node's upward parent chain must spell the
   step labels in reverse and land exactly on the root. *)
let confirm r ~doc ~node rev_steps =
  let rec go node = function
    | [] -> node = 0 (* consumed the whole chain exactly at the root *)
    | s :: rest ->
      node > 0 (* the root has no incoming edge to match *)
      && Reader.doc_label r ~doc ~node = step_label s
      && go (Reader.doc_parent r ~doc ~node) rest
  in
  go node rev_steps

let exists_docs r budget steps =
  let set = Bitset.create (Reader.ndocs r) in
  let rev_steps = List.rev steps in
  let start, stop =
    match rev_steps with
    | SK k :: _ -> Reader.key_range r k
    | SP p :: _ -> Reader.pos_range r p
    | [] -> (0, 0)
  in
  let entry =
    match rev_steps with
    | SP _ :: _ -> Reader.pos_entry r
    | _ -> Reader.key_entry r
  in
  Obs.Metrics.add "index.query.seeds" (stop - start);
  for i = start to stop - 1 do
    Obs.Budget.burn budget 1;
    let doc, node = entry i in
    (* postings are (doc, node)-sorted: once a document is in, skip
       its remaining seeds *)
    if not (Bitset.mem set doc) && confirm r ~doc ~node rev_steps then
      Bitset.add set doc
  done;
  set

let rec eval_cform r budget = function
  | CTrue -> Bitset.full (Reader.ndocs r)
  | CFalse -> Bitset.create (Reader.ndocs r)
  | CNot f -> Bitset.complement (eval_cform r budget f)
  | CAnd (a, b) ->
    let sa = eval_cform r budget a in
    ignore (Bitset.inter_into (eval_cform r budget b) ~into:sa);
    sa
  | COr (a, b) ->
    let sa = eval_cform r budget a in
    ignore (Bitset.union_into (eval_cform r budget b) ~into:sa);
    sa
  | CExists steps -> exists_docs r budget steps

(* ---- the required-label prefilter ----------------------------------------- *)

(* Labels every satisfying document must contain — the soundness
   invariant is one-directional: [phi] holding at a document's root
   implies every required label occurs in the document, never the
   converse.  Disjunction intersects, conjunction unions, negation and
   the non-deterministic steps require nothing. *)
module Lab = struct
  type t = LK of string | LP of int

  let compare = compare
end

module LabSet = Set.Make (Lab)

let rec req_form = function
  | Jnl.True | Jnl.Not _ -> LabSet.empty
  | Jnl.And (a, b) -> LabSet.union (req_form a) (req_form b)
  | Jnl.Or (a, b) -> LabSet.inter (req_form a) (req_form b)
  | Jnl.Exists alpha -> req_path alpha
  | Jnl.Eq_doc (alpha, v) -> LabSet.union (req_path alpha) (req_value v)
  | Jnl.Eq_paths (alpha, beta) -> LabSet.union (req_path alpha) (req_path beta)

and req_path = function
  | Jnl.Self | Jnl.Keys _ | Jnl.Star _ -> LabSet.empty
  | Jnl.Key w -> LabSet.singleton (Lab.LK w)
  | Jnl.Idx i ->
    (* negative i needs arity >= |i|; positions are contiguous, so
       position |i|-1 must exist *)
    LabSet.singleton (Lab.LP (if i >= 0 then i else -i - 1))
  | Jnl.Range (i, _) when i >= 0 -> LabSet.singleton (Lab.LP i)
  | Jnl.Range _ -> LabSet.empty
  | Jnl.Seq (a, b) -> LabSet.union (req_path a) (req_path b)
  | Jnl.Test f -> req_form f
  | Jnl.Alt (a, b) -> LabSet.inter (req_path a) (req_path b)

(* a subtree equal to constant [v] contains every edge of [v] *)
and req_value v =
  match v with
  | Jsont.Value.Obj fields ->
    List.fold_left
      (fun acc (w, v') ->
        LabSet.add (Lab.LK w) (LabSet.union acc (req_value v')))
      LabSet.empty fields
  | Jsont.Value.Arr vs ->
    List.fold_left
      (fun (acc, i) v' ->
        (LabSet.add (Lab.LP i) (LabSet.union acc (req_value v')), i + 1))
      (LabSet.empty, 0) vs
    |> fst
  | Jsont.Value.Str _ | Jsont.Value.Num _ -> LabSet.empty

(* Rooted chains: beyond label presence, any [Exists]/[EQ] path in
   positive conjunctive position at the root must NAVIGATE its maximal
   leading core prefix from the document root — [Self] does not move
   and [Test] only filters, so the chain passes through both; the
   first non-core step ends the prefix.  Confirming those prefixes
   against the postings (the same parent-walk the postings-only plan
   uses) is a far sharper prefilter than key presence: a document
   mentioning "first" somewhere is not a document whose root has
   [.name.first]. *)
type rooted = RDead | RChain of step list

let rooted_prefix r alpha =
  let rec go acc = function
    | [] -> RChain (List.rev acc)
    | p :: rest -> (
      match p with
      | Jnl.Self | Jnl.Test _ -> go acc rest
      | Jnl.Seq (a, b) -> go acc (a :: b :: rest)
      | Jnl.Key w -> (
        match Reader.key_id r w with
        | Some k -> go (SK k :: acc) rest
        | None -> RDead)
      | Jnl.Idx i when i >= 0 -> go (SP i :: acc) rest
      | Jnl.Idx _ | Jnl.Keys _ | Jnl.Range _ | Jnl.Star _ | Jnl.Alt _ ->
        RChain (List.rev acc))
  in
  go [] [ alpha ]

let rec root_chains r = function
  | Jnl.True | Jnl.Not _ | Jnl.Or _ -> []
  | Jnl.And (a, b) -> root_chains r a @ root_chains r b
  | Jnl.Exists alpha | Jnl.Eq_doc (alpha, _) -> [ rooted_prefix r alpha ]
  | Jnl.Eq_paths (alpha, beta) ->
    [ rooted_prefix r alpha; rooted_prefix r beta ]

(* a chain seeds from its last step's postings list; positions past
   the materialized lists just shorten the confirmed prefix *)
let rec seedable r steps =
  match List.rev steps with
  | SP p :: rev_rest when p >= Reader.npos r ->
    seedable r (List.rev rev_rest)
  | _ -> steps

(* Documents containing one label, straight off the postings list. *)
let docs_with_label r budget lab =
  let range =
    match lab with
    | Lab.LK w -> (
      match Reader.key_id r w with Some k -> Some (Reader.key_range r k, `K) | None -> None)
    | Lab.LP p -> if p < Reader.npos r then Some (Reader.pos_range r p, `P) else None
  in
  match range with
  | None -> (
    match lab with
    | Lab.LK _ -> Some (Bitset.create (Reader.ndocs r)) (* key nowhere: no candidates *)
    | Lab.LP _ -> None (* no materialized list: requirement unusable *))
  | Some ((start, stop), which) ->
    let entry =
      match which with `K -> Reader.key_entry r | `P -> Reader.pos_entry r
    in
    let set = Bitset.create (Reader.ndocs r) in
    for i = start to stop - 1 do
      Obs.Budget.burn budget 1;
      let doc, _ = entry i in
      Bitset.add set doc
    done;
    Some set

let candidates r budget phi =
  let chains = root_chains r phi in
  if List.mem RDead chains then
    (* a mandatory rooted path names a key the whole corpus lacks *)
    Bitset.create (Reader.ndocs r)
  else begin
    let set = Bitset.full (Reader.ndocs r) in
    let narrowed = ref false in
    List.iter
      (function
        | RDead -> ()
        | RChain steps -> (
          match seedable r steps with
          | [] -> ()
          | steps ->
            narrowed := true;
            ignore (Bitset.inter_into (exists_docs r budget steps) ~into:set)))
      chains;
    let req = req_form phi in
    LabSet.iter
      (fun lab ->
        match docs_with_label r budget lab with
        | Some docs ->
          narrowed := true;
          ignore (Bitset.inter_into docs ~into:set)
        | None -> ())
      req;
    if not !narrowed then Obs.Metrics.incr "index.query.full_scan";
    set
  end

(* ---- document reparse (the baseline computation, per doc) ----------------- *)

let eval_doc ~use_index ~fresh_budget phi text =
  match Jsont.Tree.of_string ~budget:(fresh_budget ()) text with
  | Error e -> Error (Format.asprintf "%a" Jsont.Parser.pp_error e)
  | Ok tree -> (
    match
      let ctx =
        Jlogic.Jnl_eval.context ~budget:(fresh_budget ()) ~use_index tree
      in
      Jlogic.Jnl_eval.holds ctx Jsont.Tree.root phi
    with
    | true -> True
    | false -> False
    | exception Failure m -> Error m
    | exception Obs.Budget.Exhausted reason ->
      Error (Obs.Budget.describe reason))

let read_slices r ~corpus docs =
  In_channel.with_open_bin corpus (fun ic ->
      Array.map
        (fun d ->
          In_channel.seek ic (Int64.of_int (Reader.doc_off r d));
          match In_channel.really_input_string ic (Reader.doc_len r d) with
          | Some s -> (d, s)
          | None -> failwith "corpus shorter than the index records")
        docs)

let reparse_docs r ~jobs ~use_index ~fresh_budget ~corpus phi docs =
  Obs.Metrics.add "index.query.reparsed" (Array.length docs);
  let slices = read_slices r ~corpus docs in
  let verdicts =
    Par.Batch.map ~jobs
      (fun (_, text) -> eval_doc ~use_index ~fresh_budget phi text)
      slices
  in
  Array.map2 (fun (d, _) v -> (d, v)) slices verdicts

(* ---- driver ---------------------------------------------------------------- *)

let run ?(jobs = 1) ?(use_index = true) ?corpus
    ?(fresh_budget = fun () -> Obs.Budget.create ()) r phi =
  let corpus =
    match corpus with Some c -> c | None -> Reader.corpus_path r
  in
  try
    Obs.Metrics.span "index.query" @@ fun () ->
    let actual =
      match (Unix.stat corpus).Unix.st_size with
      | n -> n
      | exception Unix.Unix_error (e, _, _) ->
        failwith (corpus ^ ": " ^ Unix.error_message e)
    in
    if actual <> Reader.corpus_len r then
      failwith
        (Printf.sprintf
           "%s: corpus is %d bytes but the index was built over %d (stale \
            index? rebuild with 'index build')"
           corpus actual (Reader.corpus_len r));
    let ndocs = Reader.ndocs r in
    let verdicts = Array.make ndocs False in
    let budget = fresh_budget () in
    (* error-flagged lines always reparse: their verdict is the parse
       error message, whatever the formula *)
    let err_docs = ref [] in
    for d = ndocs - 1 downto 0 do
      if Reader.doc_err r d then err_docs := d :: !err_docs
    done;
    let reparse docs =
      if Array.length docs > 0 then
        Array.iter
          (fun (d, v) -> verdicts.(d) <- v)
          (reparse_docs r ~jobs ~use_index ~fresh_budget ~corpus phi docs)
    in
    (match compile r phi with
    | cf ->
      Obs.Metrics.incr "index.query.postings_only";
      let sat = eval_cform r budget cf in
      Bitset.iter (fun d -> verdicts.(d) <- True) sat;
      reparse (Array.of_list !err_docs)
    | exception Not_core ->
      Obs.Metrics.incr "index.query.filtered";
      let cand = candidates r budget phi in
      Obs.Metrics.add "index.query.candidates" (Bitset.cardinal cand);
      List.iter (fun d -> Bitset.add cand d) !err_docs;
      reparse (Array.of_list (Bitset.elements cand)));
    Ok verdicts
  with
  | Reader.Corrupt m -> Result.Error (Reader.path r ^ ": " ^ m)
  | Failure m -> Result.Error m
  | Sys_error m -> Result.Error m
  | Obs.Budget.Exhausted reason -> Result.Error (Obs.Budget.describe reason)
