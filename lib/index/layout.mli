(** On-disk layout of the persistent corpus index (format [JLIXIDX2]).

    One index file describes one NDJSON corpus: a string table of the
    distinct object keys, label → postings lists over (document,
    node) pairs for key edges and for small array positions, a sorted
    scalar-value table with per-(leaf-label, value-id) postings (the
    [eq]-pushdown seeds), and a per-document table (byte offset/length
    in the corpus, node count, node base) — everything the query
    planner needs to answer navigational queries and rooted scalar
    equalities without reparsing, plus the byte offsets to reparse
    exactly the surviving documents for general predicates.

    Every integer is little-endian and every section is padded to an
    8-byte boundary, so the file can be memory-mapped and walked with
    fixed-width loads; the header is versioned and checksummed, and a
    second checksum covers the body so bit flips and truncations are
    rejected at open instead of surfacing as garbage answers. *)

val magic : string
(** ["JLIXIDX2"], the first 8 bytes of every index file. *)

val magic_prefix : string
(** ["JLIXIDX"] — shared by every format version; a file carrying the
    prefix but another version digit is refused with a versioned
    error, not "bad magic". *)

val version : int
(** Current format version, stored at offset 8. *)

val header_bytes : int
(** Total header size; the body starts here. *)

val default_pos_cap : int
(** How many array-position postings lists are materialized at most
    (positions [0 .. cap-1]); higher positions still carry edge labels
    in the per-node label column but cannot seed a postings-only
    query. *)

val default_value_cap : int
(** Ceiling on one (label, value) postings list: lists longer than
    this are dropped at build time (the pair keeps an empty range, so
    queries on it fall back to the filtered plan instead of reading a
    barely-selective seed set). *)

val flag_no_values : int
(** Header flag bit: the value table and value postings were skipped
    ([--no-values]); absence of a value proves nothing. *)

val doc_entry_bytes : int
(** Size of one document-table entry. *)

(** {1 Scalar-value encoding}

    The value table stores each distinct scalar once, keyed by a kind
    byte plus a canonical payload; numbers render as canonical decimal
    of the model natural, so [1], [1.0] and [1e0] (wherever a notation
    parses at all) map to one value id. *)

val encode_str : string -> string
val encode_num : int -> string

(** Field offsets inside the header, for the writer and reader (and
    the fault-injection tests, which corrupt them surgically). *)
module Field : sig
  val version : int
  val pos_cap : int
  val file_size : int
  val ndocs : int
  val nnodes : int
  val nkeys : int
  val key_entries : int
  val pos_entries : int
  val corpus_len : int
  val doc_table : int
  val parents : int
  val labels : int
  val strtab_idx : int
  val strtab_blob : int
  val strtab_blob_len : int
  val key_pidx : int
  val key_post : int
  val pos_pidx : int
  val pos_post : int
  val corpus_path : int
  val flags : int
  val value_cap : int
  val nvals : int
  val npairs : int
  val val_entries : int
  val val_dropped : int
  val valtab_idx : int
  val valtab_blob : int
  val valtab_blob_len : int
  val pair_table : int
  val pair_pidx : int
  val val_post : int
  val body_checksum : int
  val header_checksum : int
end

(** {1 Edge-label encoding}

    Each node's incoming edge is one 32-bit word: key edges carry the
    (string-table) key id, position edges the position, the root a
    sentinel. *)

val label_root : int
val label_key : int -> int
val label_pos : int -> int
val max_pos_label : int
(** Largest array position representable in a label word; wider arrays
    are rejected at build time with a structured error. *)

(** {1 Checksums}

    FNV-style multiplicative folding over 32-bit little-endian words —
    sections are 8-byte padded, so the stream is always word-aligned.
    Not cryptographic; it exists to catch corruption and truncation. *)

val checksum_init : int

val checksum_bytes : int -> Bytes.t -> int -> int -> int
(** [checksum_bytes h b off len] folds [len] bytes ([len] a multiple
    of 4) into [h]. *)

(** {1 Little-endian accessors over [Bytes.t]} *)

val set_u32 : Bytes.t -> int -> int -> unit
val set_u64 : Bytes.t -> int -> int -> unit
val set_i32 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val get_u64 : Bytes.t -> int -> int
val get_i32 : Bytes.t -> int -> int

(** {1 Accessors over a memory-mapped file}

    The reader never copies the file: sections are decoded in place
    through these. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val get_u32_ba : buf -> int -> int
val get_u64_ba : buf -> int -> int
val get_i32_ba : buf -> int -> int

val string_ba : buf -> int -> int -> string
(** [string_ba b off len] copies [len] bytes out as a string. *)

val checksum_ba : int -> buf -> int -> int -> int
(** {!checksum_bytes} over a mapped buffer. *)

val pad8 : int -> int
(** Round up to the next multiple of 8. *)
