(* Corpus index construction: parse every NDJSON line into a flat
   tree, strip each tree down to its parent/edge-label columns, and
   serialize the lot as the mmap-friendly layout of {!Layout}.

   Determinism is load-bearing (the CI gate byte-compares builds with
   different lane counts): documents keep their line order through
   [Par.Batch.map], the key table is sorted lexicographically, and
   postings fill in (doc, node) order — nothing in the output depends
   on scheduling. *)

type stats = {
  docs : int;
  errors : int;
  nodes : int;
  keys : int;
  key_postings : int;
  pos_postings : int;
  values : int;
  value_pairs : int;
  value_postings : int;
  value_dropped : int;
  bytes : int;
}

(* One parsed document, reduced to what the index stores.  [labels]
   uses a doc-local key numbering ([lkeys]) remapped to the global
   sorted table during assembly; [vals] likewise uses a doc-local
   scalar-value numbering ([lvals], canonically encoded). *)
type draw = {
  lineno : int;
  off : int;
  len : int;
  parents : int array;  (* local parent id, -1 for the root *)
  labels : int array;  (* local encoding: key k -> k lsl 1, pos p -> p lsl 1 or 1 *)
  lkeys : string array;
  vals : int array;  (* local value id of each scalar leaf, -1 elsewhere *)
  lvals : string array;
  err : bool;
}

let parse_doc ~fresh_budget ~values ~lineno ~off text =
  let len = String.length text in
  let failed =
    { lineno; off; len; parents = [||]; labels = [||]; lkeys = [||];
      vals = [||]; lvals = [||]; err = true }
  in
  match Jsont.Tree.of_string ~budget:(fresh_budget ()) text with
  | Error _ -> failed
  | Ok t ->
    let n = Jsont.Tree.node_count t in
    let parents = Array.make n (-1) in
    let labels = Array.make n (-1) in
    let vals = Array.make (if values then n else 0) (-1) in
    let ktab = Hashtbl.create 16 in
    let klist = ref [] in
    let nkeys = ref 0 in
    let vtab = Hashtbl.create 16 in
    let vlist = ref [] in
    let nvals = ref 0 in
    let scalar i enc =
      match Hashtbl.find_opt vtab enc with
      | Some v -> vals.(i) <- v
      | None ->
        Hashtbl.add vtab enc !nvals;
        vlist := enc :: !vlist;
        vals.(i) <- !nvals;
        incr nvals
    in
    for i = 0 to n - 1 do
      parents.(i) <- Jsont.Tree.parent_id t i;
      (if values then
         match Jsont.Tree.kind t i with
         | Jsont.Tree.Kstr s -> scalar i (Layout.encode_str s)
         | Jsont.Tree.Kint v -> scalar i (Layout.encode_num v)
         | Jsont.Tree.Kobj | Jsont.Tree.Karr -> ());
      match Jsont.Tree.edge_from_parent t i with
      | Jsont.Tree.Root -> ()
      | Jsont.Tree.Key w ->
        let k =
          match Hashtbl.find_opt ktab w with
          | Some k -> k
          | None ->
            let k = !nkeys in
            Hashtbl.add ktab w k;
            klist := w :: !klist;
            incr nkeys;
            k
        in
        labels.(i) <- k lsl 1
      | Jsont.Tree.Pos p ->
        if p > Layout.max_pos_label then
          failwith
            (Printf.sprintf "line %d: array position %d exceeds the index limit"
               lineno p);
        labels.(i) <- (p lsl 1) lor 1
    done;
    let lkeys = Array.of_list (List.rev !klist) in
    let lvals = Array.of_list (List.rev !vlist) in
    { lineno; off; len; parents; labels; lkeys; vals; lvals; err = false }

(* Split the corpus into (lineno, offset, length) line slices, the
   same way [validate --stream] counts them: every '\n'-delimited
   piece bumps the line number, trim-blank pieces are skipped, an
   unterminated last line still counts. *)
let line_slices text =
  let n = String.length text in
  let out = ref [] in
  let lineno = ref 0 in
  let start = ref 0 in
  let flush_line stop =
    incr lineno;
    let len = stop - !start in
    if String.trim (String.sub text !start len) <> "" then
      out := (!lineno, !start, len) :: !out
  in
  for i = 0 to n - 1 do
    if String.unsafe_get text i = '\n' then begin
      flush_line i;
      start := i + 1
    end
  done;
  if !start < n then flush_line n;
  Array.of_list (List.rev !out)

(* Serialization: sections are emitted in file order through one
   channel, folding the body checksum as they go; the header (which
   names every section offset plus both checksums) is written last by
   seeking back to the start. *)
let build ?(jobs = 1) ?(pos_cap = Layout.default_pos_cap)
    ?(value_cap = Layout.default_value_cap) ?(no_values = false)
    ?(fresh_budget = fun () -> Obs.Budget.create ()) ~corpus ~output () =
  try
    Obs.Metrics.span "index.build" @@ fun () ->
    let text = In_channel.with_open_bin corpus In_channel.input_all in
    let slices = line_slices text in
    let docs =
      Par.Batch.map ~jobs
        (fun (lineno, off, len) ->
          parse_doc ~fresh_budget ~values:(not no_values) ~lineno ~off
            (String.sub text off len))
        slices
    in
    let ndocs = Array.length docs in
    let errors = Array.fold_left (fun a d -> if d.err then a + 1 else a) 0 docs in
    (* global key table: sorted, so the file never depends on the
       order keys were first seen *)
    let keyset = Hashtbl.create 256 in
    Array.iter
      (fun d -> Array.iter (fun w -> Hashtbl.replace keyset w ()) d.lkeys)
      docs;
    let keys = Hashtbl.fold (fun w () acc -> w :: acc) keyset [] in
    let keys = Array.of_list (List.sort String.compare keys) in
    let nkeys = Array.length keys in
    let gid = Hashtbl.create 256 in
    Array.iteri (fun i w -> Hashtbl.add gid w i) keys;
    (* remap each document's labels to global key ids, in place *)
    Array.iter
      (fun d ->
        let map = Array.map (fun w -> Hashtbl.find gid w) d.lkeys in
        Array.iteri
          (fun i lab ->
            if lab >= 0 && lab land 1 = 0 then
              d.labels.(i) <- map.(lab lsr 1) lsl 1)
          d.labels)
      docs;
    let nnodes = Array.fold_left (fun a d -> a + Array.length d.parents) 0 docs in
    (* postings shape: count entries per label, then prefix-sum *)
    let max_pos = ref (-1) in
    Array.iter
      (fun d ->
        Array.iter
          (fun lab ->
            if lab >= 0 && lab land 1 = 1 then
              if lab lsr 1 > !max_pos then max_pos := lab lsr 1)
          d.labels)
      docs;
    let npos = min pos_cap (!max_pos + 1) in
    let key_counts = Array.make (nkeys + 1) 0 in
    let pos_counts = Array.make (npos + 1) 0 in
    Array.iter
      (fun d ->
        Array.iter
          (fun lab ->
            if lab >= 0 then
              if lab land 1 = 0 then
                key_counts.(lab lsr 1) <- key_counts.(lab lsr 1) + 1
              else begin
                let p = lab lsr 1 in
                if p < npos then pos_counts.(p) <- pos_counts.(p) + 1
              end)
          d.labels)
      docs;
    let prefix counts n =
      let idx = Array.make (n + 1) 0 in
      for i = 0 to n - 1 do
        idx.(i + 1) <- idx.(i) + counts.(i)
      done;
      idx
    in
    let key_pidx = prefix key_counts nkeys in
    let pos_pidx = prefix pos_counts npos in
    let key_entries = key_pidx.(nkeys) in
    let pos_entries = pos_pidx.(npos) in
    (* value table: every distinct scalar, sorted by canonical encoding
       — like the key table, independent of discovery order *)
    let valset = Hashtbl.create 256 in
    Array.iter
      (fun d -> Array.iter (fun v -> Hashtbl.replace valset v ()) d.lvals)
      docs;
    let vals = Hashtbl.fold (fun v () acc -> v :: acc) valset [] in
    let vals = Array.of_list (List.sort String.compare vals) in
    let nvals = Array.length vals in
    let vgid = Hashtbl.create 256 in
    Array.iteri (fun i v -> Hashtbl.add vgid v i) vals;
    Array.iter
      (fun d ->
        let map = Array.map (fun v -> Hashtbl.find vgid v) d.lvals in
        Array.iteri (fun i v -> if v >= 0 then d.vals.(i) <- map.(v)) d.vals)
      docs;
    (* (leaf-label, value-id) pairs: count, sort, cap, prefix-sum.  A
       pair whose list exceeds [value_cap] stays in the table with an
       empty range — queries can tell "capped" from "absent". *)
    let paircnt = Hashtbl.create 256 in
    Array.iter
      (fun d ->
        Array.iteri
          (fun i v ->
            if v >= 0 then begin
              let key = (d.labels.(i), v) in
              let n =
                match Hashtbl.find_opt paircnt key with
                | Some n -> n
                | None -> 0
              in
              Hashtbl.replace paircnt key (n + 1)
            end)
          d.vals)
      docs;
    let pairs = Hashtbl.fold (fun k _ acc -> k :: acc) paircnt [] in
    let pairs = Array.of_list (List.sort compare pairs) in
    let npairs = Array.length pairs in
    let pair_id = Hashtbl.create 256 in
    Array.iteri (fun i p -> Hashtbl.add pair_id p i) pairs;
    let pair_kept = Array.make npairs false in
    let val_dropped = ref 0 in
    let pair_counts = Array.make (npairs + 1) 0 in
    Array.iteri
      (fun i p ->
        let n = Hashtbl.find paircnt p in
        if n <= value_cap then begin
          pair_kept.(i) <- true;
          pair_counts.(i) <- n
        end
        else val_dropped := !val_dropped + n)
      pairs;
    let pair_pidx = prefix pair_counts npairs in
    let val_entries = pair_pidx.(npairs) in
    let val_dropped = !val_dropped in
    (* section sizes and offsets *)
    let blob_len = Array.fold_left (fun a w -> a + String.length w) 0 keys in
    let sz_doc = ndocs * Layout.doc_entry_bytes in
    let sz_par = Layout.pad8 (nnodes * 4) in
    let sz_lab = Layout.pad8 (nnodes * 4) in
    let sz_sidx = (nkeys + 1) * 8 in
    let sz_blob = Layout.pad8 blob_len in
    let sz_kpidx = (nkeys + 1) * 8 in
    let sz_kpost = key_entries * 8 in
    let sz_ppidx = (npos + 1) * 8 in
    let sz_ppost = pos_entries * 8 in
    let vblob_len = Array.fold_left (fun a v -> a + String.length v) 0 vals in
    let sz_vidx = (nvals + 1) * 8 in
    let sz_vblob = Layout.pad8 vblob_len in
    let sz_pair = npairs * 8 in
    let sz_prpidx = (npairs + 1) * 8 in
    let sz_vpost = val_entries * 8 in
    let sz_cpath = Layout.pad8 (4 + String.length corpus) in
    let o_doc = Layout.header_bytes in
    let o_par = o_doc + sz_doc in
    let o_lab = o_par + sz_par in
    let o_sidx = o_lab + sz_lab in
    let o_blob = o_sidx + sz_sidx in
    let o_kpidx = o_blob + sz_blob in
    let o_kpost = o_kpidx + sz_kpidx in
    let o_ppidx = o_kpost + sz_kpost in
    let o_ppost = o_ppidx + sz_ppidx in
    let o_vidx = o_ppost + sz_ppost in
    let o_vblob = o_vidx + sz_vidx in
    let o_pair = o_vblob + sz_vblob in
    let o_prpidx = o_pair + sz_pair in
    let o_vpost = o_prpidx + sz_prpidx in
    let o_cpath = o_vpost + sz_vpost in
    let file_size = o_cpath + sz_cpath in
    let tmp = output ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        seek_out oc Layout.header_bytes;
        let body_sum = ref Layout.checksum_init in
        let emit b =
          body_sum := Layout.checksum_bytes !body_sum b 0 (Bytes.length b);
          output_bytes oc b
        in
        (* document table *)
        let b = Bytes.make sz_doc '\000' in
        let base = ref 0 in
        Array.iteri
          (fun i d ->
            let o = i * Layout.doc_entry_bytes in
            Layout.set_u64 b o d.off;
            Layout.set_u64 b (o + 8) !base;
            Layout.set_u32 b (o + 16) d.len;
            Layout.set_u32 b (o + 20) (Array.length d.parents);
            Layout.set_u32 b (o + 24) d.lineno;
            Layout.set_u32 b (o + 28) (if d.err then 1 else 0);
            base := !base + Array.length d.parents)
          docs;
        emit b;
        (* parents, labels *)
        let column get =
          let b = Bytes.make sz_par '\000' in
          let j = ref 0 in
          Array.iter
            (fun d ->
              Array.iter
                (fun v ->
                  Layout.set_i32 b (!j * 4) v;
                  incr j)
                (get d))
            docs;
          b
        in
        emit (column (fun d -> d.parents));
        emit (column (fun d -> d.labels));
        (* string table *)
        let b = Bytes.make sz_sidx '\000' in
        let off = ref 0 in
        Array.iteri
          (fun i w ->
            Layout.set_u64 b (i * 8) !off;
            off := !off + String.length w)
          keys;
        Layout.set_u64 b (nkeys * 8) !off;
        emit b;
        let b = Bytes.make sz_blob '\000' in
        let off = ref 0 in
        Array.iter
          (fun w ->
            Bytes.blit_string w 0 b !off (String.length w);
            off := !off + String.length w)
          keys;
        emit b;
        (* postings: cursor per label, filled in (doc, node) order *)
        let b = Bytes.make sz_kpidx '\000' in
        Array.iteri (fun i v -> Layout.set_u64 b (i * 8) v) key_pidx;
        emit b;
        let kpost = Bytes.make sz_kpost '\000' in
        let ppost = Bytes.make sz_ppost '\000' in
        let vpost = Bytes.make sz_vpost '\000' in
        let kcur = Array.copy key_pidx in
        let pcur = Array.copy pos_pidx in
        let vcur = Array.copy pair_pidx in
        Array.iteri
          (fun doc d ->
            Array.iteri
              (fun node lab ->
                (if Array.length d.vals > 0 && d.vals.(node) >= 0 then begin
                   let pid = Hashtbl.find pair_id (lab, d.vals.(node)) in
                   if pair_kept.(pid) then begin
                     let o = vcur.(pid) * 8 in
                     Layout.set_u32 vpost o doc;
                     Layout.set_u32 vpost (o + 4) node;
                     vcur.(pid) <- vcur.(pid) + 1
                   end
                 end);
                if lab >= 0 then
                  if lab land 1 = 0 then begin
                    let k = lab lsr 1 in
                    let o = kcur.(k) * 8 in
                    Layout.set_u32 kpost o doc;
                    Layout.set_u32 kpost (o + 4) node;
                    kcur.(k) <- kcur.(k) + 1
                  end
                  else begin
                    let p = lab lsr 1 in
                    if p < npos then begin
                      let o = pcur.(p) * 8 in
                      Layout.set_u32 ppost o doc;
                      Layout.set_u32 ppost (o + 4) node;
                      pcur.(p) <- pcur.(p) + 1
                    end
                  end)
              d.labels)
          docs;
        emit kpost;
        let b2 = Bytes.make sz_ppidx '\000' in
        Array.iteri (fun i v -> Layout.set_u64 b2 (i * 8) v) pos_pidx;
        emit b2;
        emit ppost;
        (* value table *)
        let b = Bytes.make sz_vidx '\000' in
        let off = ref 0 in
        Array.iteri
          (fun i v ->
            Layout.set_u64 b (i * 8) !off;
            off := !off + String.length v)
          vals;
        Layout.set_u64 b (nvals * 8) !off;
        emit b;
        let b = Bytes.make sz_vblob '\000' in
        let off = ref 0 in
        Array.iter
          (fun v ->
            Bytes.blit_string v 0 b !off (String.length v);
            off := !off + String.length v)
          vals;
        emit b;
        (* pair table, pair postings index, value postings *)
        let b = Bytes.make sz_pair '\000' in
        Array.iteri
          (fun i (lab, vid) ->
            Layout.set_i32 b (i * 8) lab;
            Layout.set_u32 b ((i * 8) + 4) vid)
          pairs;
        emit b;
        let b = Bytes.make sz_prpidx '\000' in
        Array.iteri (fun i v -> Layout.set_u64 b (i * 8) v) pair_pidx;
        emit b;
        emit vpost;
        (* corpus path *)
        let b = Bytes.make sz_cpath '\000' in
        Layout.set_u32 b 0 (String.length corpus);
        Bytes.blit_string corpus 0 b 4 (String.length corpus);
        emit b;
        (* header, last: it carries the body checksum *)
        let h = Bytes.make Layout.header_bytes '\000' in
        Bytes.blit_string Layout.magic 0 h 0 8;
        Layout.set_u32 h Layout.Field.version Layout.version;
        Layout.set_u32 h Layout.Field.pos_cap npos;
        Layout.set_u64 h Layout.Field.file_size file_size;
        Layout.set_u64 h Layout.Field.ndocs ndocs;
        Layout.set_u64 h Layout.Field.nnodes nnodes;
        Layout.set_u64 h Layout.Field.nkeys nkeys;
        Layout.set_u64 h Layout.Field.key_entries key_entries;
        Layout.set_u64 h Layout.Field.pos_entries pos_entries;
        Layout.set_u64 h Layout.Field.corpus_len (String.length text);
        Layout.set_u64 h Layout.Field.doc_table o_doc;
        Layout.set_u64 h Layout.Field.parents o_par;
        Layout.set_u64 h Layout.Field.labels o_lab;
        Layout.set_u64 h Layout.Field.strtab_idx o_sidx;
        Layout.set_u64 h Layout.Field.strtab_blob o_blob;
        Layout.set_u64 h Layout.Field.strtab_blob_len blob_len;
        Layout.set_u64 h Layout.Field.key_pidx o_kpidx;
        Layout.set_u64 h Layout.Field.key_post o_kpost;
        Layout.set_u64 h Layout.Field.pos_pidx o_ppidx;
        Layout.set_u64 h Layout.Field.pos_post o_ppost;
        Layout.set_u64 h Layout.Field.corpus_path o_cpath;
        Layout.set_u32 h Layout.Field.flags
          (if no_values then Layout.flag_no_values else 0);
        Layout.set_u32 h Layout.Field.value_cap (min value_cap 0xFFFFFFFF);
        Layout.set_u64 h Layout.Field.nvals nvals;
        Layout.set_u64 h Layout.Field.npairs npairs;
        Layout.set_u64 h Layout.Field.val_entries val_entries;
        Layout.set_u64 h Layout.Field.val_dropped val_dropped;
        Layout.set_u64 h Layout.Field.valtab_idx o_vidx;
        Layout.set_u64 h Layout.Field.valtab_blob o_vblob;
        Layout.set_u64 h Layout.Field.valtab_blob_len vblob_len;
        Layout.set_u64 h Layout.Field.pair_table o_pair;
        Layout.set_u64 h Layout.Field.pair_pidx o_prpidx;
        Layout.set_u64 h Layout.Field.val_post o_vpost;
        Layout.set_u64 h Layout.Field.body_checksum !body_sum;
        let hsum =
          Layout.checksum_bytes Layout.checksum_init h 0
            Layout.Field.header_checksum
        in
        Layout.set_u64 h Layout.Field.header_checksum hsum;
        seek_out oc 0;
        output_bytes oc h);
    Sys.rename tmp output;
    Obs.Metrics.add "index.build.docs" ndocs;
    Obs.Metrics.add "index.build.errors" errors;
    Obs.Metrics.add "index.build.nodes" nnodes;
    Obs.Metrics.add "index.build.keys" nkeys;
    Obs.Metrics.add "index.build.postings" (key_entries + pos_entries);
    Obs.Metrics.add "index.build.values" nvals;
    Obs.Metrics.add "index.build.value_postings" val_entries;
    Obs.Metrics.add "index.build.value_dropped" val_dropped;
    Obs.Metrics.add "index.build.bytes" file_size;
    Ok
      { docs = ndocs; errors; nodes = nnodes; keys = nkeys;
        key_postings = key_entries; pos_postings = pos_entries;
        values = nvals; value_pairs = npairs; value_postings = val_entries;
        value_dropped = val_dropped; bytes = file_size }
  with
  | Failure m -> Error m
  | Sys_error m -> Error m
  | Obs.Budget.Exhausted r -> Error (Obs.Budget.describe r)
