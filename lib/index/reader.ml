(* Memory-mapped index reader.  Everything cheap is validated once at
   open — magic, version, checksums, every section extent, the
   monotonicity of all offset tables — so the per-entry accessors can
   trust section bounds and only re-check the values postings store
   (document ids, node ids, parent pointers), raising [Corrupt] on the
   ones a checksum-less open ([~verify_body:false]) could let
   through. *)

exception Corrupt of string

type t = {
  path : string;
  buf : Layout.buf;
  size : int;
  ndocs : int;
  nnodes : int;
  nkeys : int;
  npos : int;
  key_entries : int;
  pos_entries : int;
  corpus_len : int;
  corpus_path : string;
  has_values : bool;
  value_cap : int;
  nvals : int;
  npairs : int;
  val_entries : int;
  val_dropped : int;
  o_doc : int;
  o_par : int;
  o_lab : int;
  o_sidx : int;
  o_blob : int;
  blob_len : int;
  o_kpidx : int;
  o_kpost : int;
  o_ppidx : int;
  o_ppost : int;
  o_vidx : int;
  o_vblob : int;
  vblob_len : int;
  o_pair : int;
  o_prpidx : int;
  o_vpost : int;
}

let path t = t.path
let file_size t = t.size
let ndocs t = t.ndocs
let nnodes t = t.nnodes
let nkeys t = t.nkeys
let npos t = t.npos
let key_entries t = t.key_entries
let pos_entries t = t.pos_entries
let corpus_path t = t.corpus_path
let corpus_len t = t.corpus_len
let has_values t = t.has_values
let value_cap t = t.value_cap
let nvals t = t.nvals
let npairs t = t.npairs
let val_entries t = t.val_entries
let val_dropped t = t.val_dropped
let val_blob_len t = t.vblob_len
let close _ = ()

(* a generous ceiling on any count or offset: large enough for any
   real corpus, small enough that size arithmetic cannot overflow *)
let sane = 1 lsl 44

let open_ ?(verify_body = true) path =
  let err fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < Layout.header_bytes then
          err "too small for an index header (%d bytes)" size
        else
          let buf =
            Bigarray.array1_of_genarray
              (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |])
          in
          let u64 = Layout.get_u64_ba buf in
          let module F = Layout.Field in
          let m8 = Layout.string_ba buf 0 8 in
          if String.sub m8 0 7 <> Layout.magic_prefix then
            err "bad magic (not a corpus index file)"
          else if m8 <> Layout.magic then
            (* the version check runs before the header checksum: older
               headers place their fields elsewhere, so nothing beyond
               the magic/version words can be trusted *)
            err "unsupported index version %c (this build reads version %d; \
                 rebuild with 'index build')"
              m8.[7] Layout.version
          else if Layout.get_u32_ba buf F.version <> Layout.version then
            err "unsupported index version %d (this build reads version %d; \
                 rebuild with 'index build')"
              (Layout.get_u32_ba buf F.version) Layout.version
          else if
            Layout.checksum_ba Layout.checksum_init buf 0 F.header_checksum
            <> u64 F.header_checksum
          then err "header checksum mismatch (corrupted index?)"
          else if u64 F.file_size <> size then
            err "declared file size %d does not match actual %d (truncated?)"
              (u64 F.file_size) size
          else if size land 7 <> 0 then
            err "file size %d is not 8-byte aligned (truncated?)" size
          else begin
            let ndocs = u64 F.ndocs and nnodes = u64 F.nnodes in
            let nkeys = u64 F.nkeys in
            let key_entries = u64 F.key_entries in
            let pos_entries = u64 F.pos_entries in
            let corpus_len = u64 F.corpus_len in
            let npos = Layout.get_u32_ba buf F.pos_cap in
            let blob_len = u64 F.strtab_blob_len in
            let flags = Layout.get_u32_ba buf F.flags in
            let value_cap = Layout.get_u32_ba buf F.value_cap in
            let nvals = u64 F.nvals and npairs = u64 F.npairs in
            let val_entries = u64 F.val_entries in
            let val_dropped = u64 F.val_dropped in
            let vblob_len = u64 F.valtab_blob_len in
            let counts =
              [ ("documents", ndocs); ("nodes", nnodes); ("keys", nkeys);
                ("key postings", key_entries); ("position postings", pos_entries);
                ("corpus bytes", corpus_len); ("position lists", npos);
                ("string bytes", blob_len); ("values", nvals);
                ("value pairs", npairs); ("value postings", val_entries);
                ("dropped value postings", val_dropped);
                ("value bytes", vblob_len) ]
            in
            match
              List.find_opt (fun (_, v) -> v < 0 || v > sane) counts
            with
            | Some (what, v) ->
              err "header at %d: oversized %s count %d" F.ndocs what v
            | None ->
            if flags land lnot Layout.flag_no_values <> 0 then
              err "header at %d: unknown flag bits %#x" F.flags flags
            else
              let o_doc = u64 F.doc_table and o_par = u64 F.parents in
              let o_lab = u64 F.labels and o_sidx = u64 F.strtab_idx in
              let o_blob = u64 F.strtab_blob and o_kpidx = u64 F.key_pidx in
              let o_kpost = u64 F.key_post and o_ppidx = u64 F.pos_pidx in
              let o_ppost = u64 F.pos_post and o_cpath = u64 F.corpus_path in
              let o_vidx = u64 F.valtab_idx and o_vblob = u64 F.valtab_blob in
              let o_pair = u64 F.pair_table and o_prpidx = u64 F.pair_pidx in
              let o_vpost = u64 F.val_post in
              let sections =
                [ ("document table", o_doc, ndocs * Layout.doc_entry_bytes);
                  ("parent column", o_par, Layout.pad8 (nnodes * 4));
                  ("label column", o_lab, Layout.pad8 (nnodes * 4));
                  ("string index", o_sidx, (nkeys + 1) * 8);
                  ("string blob", o_blob, Layout.pad8 blob_len);
                  ("key postings index", o_kpidx, (nkeys + 1) * 8);
                  ("key postings", o_kpost, key_entries * 8);
                  ("position postings index", o_ppidx, (npos + 1) * 8);
                  ("position postings", o_ppost, pos_entries * 8);
                  ("value index", o_vidx, (nvals + 1) * 8);
                  ("value blob", o_vblob, Layout.pad8 vblob_len);
                  ("pair table", o_pair, npairs * 8);
                  ("pair postings index", o_prpidx, (npairs + 1) * 8);
                  ("value postings", o_vpost, val_entries * 8);
                  ("corpus path", o_cpath, 4) ]
              in
              let bad_section =
                List.find_opt
                  (fun (_, o, sz) ->
                    o < Layout.header_bytes || o land 7 <> 0 || o > size
                    || sz < 0 || o + sz > size)
                  sections
              in
              (match bad_section with
              | Some (what, o, sz) ->
                err "%s section [%d, %d) exceeds or misaligns the %d-byte file"
                  what o (o + sz) size
              | None ->
                (* offset tables: monotonic, anchored at both ends *)
                let table what o n last =
                  let ok = ref None in
                  let prev = ref 0 in
                  (if Layout.get_u64_ba buf o <> 0 then
                     ok := Some (what, 0, Layout.get_u64_ba buf o));
                  for i = 1 to n do
                    let v = Layout.get_u64_ba buf (o + (i * 8)) in
                    if !ok = None && (v < !prev || v > last) then
                      ok := Some (what, i, v);
                    prev := v
                  done;
                  if !ok = None && !prev <> last then
                    ok := Some (what, n, !prev);
                  !ok
                in
                let bad_table =
                  match table "string index" o_sidx nkeys blob_len with
                  | Some _ as s -> s
                  | None -> (
                    match
                      table "key postings index" o_kpidx nkeys key_entries
                    with
                    | Some _ as s -> s
                    | None -> (
                      match
                        table "position postings index" o_ppidx npos
                          pos_entries
                      with
                      | Some _ as s -> s
                      | None -> (
                        match table "value index" o_vidx nvals vblob_len with
                        | Some _ as s -> s
                        | None ->
                          table "pair postings index" o_prpidx npairs
                            val_entries)))
                in
                match bad_table with
                | Some (what, i, v) ->
                  err "%s entry %d holds %d: not monotonic or out of range"
                    what i v
                | None ->
                  (* pair table: strictly sorted by (label, value id) —
                     the binary search depends on it — and every value
                     id inside the value table *)
                  let bad_pair = ref None in
                  let plab = ref min_int and pvid = ref (-1) in
                  for i = 0 to npairs - 1 do
                    let lab = Layout.get_i32_ba buf (o_pair + (i * 8)) in
                    let vid = Layout.get_u32_ba buf (o_pair + (i * 8) + 4) in
                    if
                      !bad_pair = None
                      && (vid >= nvals
                         || lab < !plab
                         || (lab = !plab && vid <= !pvid))
                    then bad_pair := Some i;
                    plab := lab;
                    pvid := vid
                  done;
                  match !bad_pair with
                  | Some i -> err "pair table entry %d is not sorted or names a value out of range" i
                  | None ->
                  (* document table: node ranges tile [0, nnodes),
                     byte ranges stay inside the corpus *)
                  let bad_doc = ref None in
                  let base = ref 0 in
                  for d = 0 to ndocs - 1 do
                    let o = o_doc + (d * Layout.doc_entry_bytes) in
                    let off = Layout.get_u64_ba buf o in
                    let nb = Layout.get_u64_ba buf (o + 8) in
                    let len = Layout.get_u32_ba buf (o + 16) in
                    let cnt = Layout.get_u32_ba buf (o + 20) in
                    if !bad_doc = None
                       && (nb <> !base || off < 0 || off + len > corpus_len)
                    then bad_doc := Some d;
                    base := !base + cnt
                  done;
                  if !bad_doc = None && !base <> nnodes then
                    bad_doc := Some ndocs;
                  (match !bad_doc with
                  | Some d -> err "document table entry %d is inconsistent" d
                  | None ->
                    let cplen = Layout.get_u32_ba buf o_cpath in
                    if o_cpath + 4 + cplen > size then
                      err "corpus path at %d overruns the file" o_cpath
                    else begin
                      let corpus_path =
                        Layout.string_ba buf (o_cpath + 4) cplen
                      in
                      if
                        verify_body
                        && Layout.checksum_ba Layout.checksum_init buf
                             Layout.header_bytes (size - Layout.header_bytes)
                           <> u64 F.body_checksum
                      then err "body checksum mismatch (corrupted index?)"
                      else
                        Ok
                          { path; buf; size; ndocs; nnodes; nkeys; npos;
                            key_entries; pos_entries; corpus_len; corpus_path;
                            has_values = flags land Layout.flag_no_values = 0;
                            value_cap; nvals; npairs; val_entries; val_dropped;
                            o_doc; o_par; o_lab; o_sidx; o_blob; blob_len;
                            o_kpidx; o_kpost; o_ppidx; o_ppost;
                            o_vidx; o_vblob; vblob_len; o_pair; o_prpidx;
                            o_vpost }
                    end))
          end)
  with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    Error (path ^ ": " ^ Unix.error_message e)
  | exception Sys_error m -> Error m

(* ---- document table -------------------------------------------------------- *)

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let doc_field t d off =
  if d < 0 || d >= t.ndocs then
    corrupt "document id %d out of range (index holds %d)" d t.ndocs;
  t.o_doc + (d * Layout.doc_entry_bytes) + off

let doc_off t d = Layout.get_u64_ba t.buf (doc_field t d 0)
let doc_node_base t d = Layout.get_u64_ba t.buf (doc_field t d 8)
let doc_len t d = Layout.get_u32_ba t.buf (doc_field t d 16)
let doc_node_count t d = Layout.get_u32_ba t.buf (doc_field t d 20)
let doc_lineno t d = Layout.get_u32_ba t.buf (doc_field t d 24)
let doc_err t d = Layout.get_u32_ba t.buf (doc_field t d 28) land 1 = 1

(* ---- string table ---------------------------------------------------------- *)

let key_name t k =
  if k < 0 || k >= t.nkeys then
    corrupt "key id %d out of range (table holds %d)" k t.nkeys;
  let off = Layout.get_u64_ba t.buf (t.o_sidx + (k * 8)) in
  let stop = Layout.get_u64_ba t.buf (t.o_sidx + ((k + 1) * 8)) in
  Layout.string_ba t.buf (t.o_blob + off) (stop - off)

let key_id t w =
  let lo = ref 0 and hi = ref (t.nkeys - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare w (key_name t mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

(* ---- postings -------------------------------------------------------------- *)

let range t ~what ~idx ~n ~entries k =
  if k < 0 || k >= n then corrupt "%s id %d out of range" what k;
  let start = Layout.get_u64_ba t.buf (idx + (k * 8)) in
  let stop = Layout.get_u64_ba t.buf (idx + ((k + 1) * 8)) in
  if start > stop || stop > entries then
    corrupt "%s postings range [%d, %d) out of bounds" what start stop;
  (start, stop)

let key_range t k =
  range t ~what:"key" ~idx:t.o_kpidx ~n:t.nkeys ~entries:t.key_entries k

let pos_range t p =
  range t ~what:"position" ~idx:t.o_ppidx ~n:t.npos ~entries:t.pos_entries p

let entry t ~what ~post ~entries i =
  if i < 0 || i >= entries then
    corrupt "%s postings entry %d out of range" what i;
  let o = post + (i * 8) in
  let doc = Layout.get_u32_ba t.buf o in
  let node = Layout.get_u32_ba t.buf (o + 4) in
  if doc >= t.ndocs then
    corrupt "%s postings entry %d names document %d of %d" what i doc t.ndocs;
  (doc, node)

let key_entry t i =
  entry t ~what:"key" ~post:t.o_kpost ~entries:t.key_entries i

let pos_entry t i =
  entry t ~what:"position" ~post:t.o_ppost ~entries:t.pos_entries i

(* ---- value table and (label, value) postings ------------------------------- *)

let val_name t v =
  if v < 0 || v >= t.nvals then
    corrupt "value id %d out of range (table holds %d)" v t.nvals;
  let off = Layout.get_u64_ba t.buf (t.o_vidx + (v * 8)) in
  let stop = Layout.get_u64_ba t.buf (t.o_vidx + ((v + 1) * 8)) in
  Layout.string_ba t.buf (t.o_vblob + off) (stop - off)

let value_id t enc =
  let lo = ref 0 and hi = ref (t.nvals - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = String.compare enc (val_name t mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let pair_key t i =
  let lab = Layout.get_i32_ba t.buf (t.o_pair + (i * 8)) in
  let vid = Layout.get_u32_ba t.buf (t.o_pair + (i * 8) + 4) in
  (lab, vid)

let pair_lookup t ~label ~vid =
  let lo = ref 0 and hi = ref (t.npairs - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare (label, vid) (pair_key t mid) in
    if c = 0 then found := Some mid
    else if c < 0 then hi := mid - 1
    else lo := mid + 1
  done;
  !found

let pair_range t p =
  range t ~what:"pair" ~idx:t.o_prpidx ~n:t.npairs ~entries:t.val_entries p

let val_entry t i =
  entry t ~what:"value" ~post:t.o_vpost ~entries:t.val_entries i

let capped_pairs t =
  let n = ref 0 in
  for p = 0 to t.npairs - 1 do
    let start, stop = pair_range t p in
    if start = stop then incr n
  done;
  !n

(* ---- structure columns ----------------------------------------------------- *)

let node_slot t ~doc ~node =
  let cnt = doc_node_count t doc in
  if node < 0 || node >= cnt then
    corrupt "node %d out of range for document %d (%d nodes)" node doc cnt;
  doc_node_base t doc + node

let doc_parent t ~doc ~node =
  let slot = node_slot t ~doc ~node in
  let p = Layout.get_i32_ba t.buf (t.o_par + (slot * 4)) in
  if p < -1 || p >= doc_node_count t doc then
    corrupt "parent pointer %d of node %d in document %d out of range" p node
      doc;
  p

let doc_label t ~doc ~node =
  let slot = node_slot t ~doc ~node in
  Layout.get_i32_ba t.buf (t.o_lab + (slot * 4))
