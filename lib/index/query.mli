(** Corpus queries over the on-disk index.

    {!run} answers one JNL formula against every document of the
    corpus, in document (line) order, with verdicts that match what
    [eval --files-from] prints per file — [true]/[false] from
    {!Jlogic.Jnl_eval.holds} at the root, parse failures and budget
    exhaustion folded to [error: …] lines.

    Two plans:

    - {b postings-only} — boolean combinations of [Exists] over
      navigational-core paths (chains of [Self]/[.key]/[\[i\]] with
      [i >= 0]) and of [eq(alpha, scalar)] with a core [alpha]: an
      existence chain seeds from its last step's postings list, an
      equality seeds from the (leaf-label, value-id) value postings of
      its chain's last label and the scalar's canonical encoding
      ({!Layout.encode_str} / {!Layout.encode_num}); either way the
      stored parent/label columns confirm the chain upward to the
      root, and per-chain document sets combine with {!Jlogic.Bitset}
      operations.  No document is reparsed (parse errors excepted, to
      reproduce their messages).  A scalar absent from the value table
      — or a (label, value) pair absent from the pair table — decides
      the equality [false] everywhere; a {e capped} pair (its postings
      were dropped at build time) falls back to the filtered plan, as
      does any index built with [--no-values].
    - {b prefilter + reparse} — everything else: a sound
      required-label analysis intersects key/position postings into a
      candidate set ({!Jlogic.Bitset.inter_into}), sharpened by rooted
      core prefixes of mandatory paths and by value postings when a
      mandatory equality's path is entirely core; only candidates are
      reparsed (via their stored byte offsets) and evaluated exactly
      like the baseline; non-candidates are [false] by soundness.

    Both plans order their intersections with a small cost model —
    each conjunct (or pruning set) is ranked by its postings-slice
    length, cheapest first, and an empty running intersection
    short-circuits the remaining scans.  [index.plan.reorders] counts
    the plans where ranking actually changed the syntactic order.

    Counters: [index.query.postings_only], [index.query.filtered],
    [index.query.full_scan], [index.query.seeds],
    [index.query.value_hits], [index.query.candidates],
    [index.query.reparsed], [index.plan.reorders]; span
    [index.query]. *)

type verdict = True | False | Error of string

val verdict_string : verdict -> string
(** ["true"], ["false"] or ["error: …"] — the batch-eval rendering. *)

val run :
  ?jobs:int ->
  ?use_index:bool ->
  ?corpus:string ->
  ?fresh_budget:(unit -> Obs.Budget.t) ->
  Reader.t ->
  Jlogic.Jnl.form ->
  (verdict array, string) result
(** [run r phi] is one verdict per indexed document, in line order.
    [corpus] overrides the corpus path stored in the index (whose
    current size must still match the indexed size — a changed corpus
    makes the index stale and is refused).  [jobs] shards candidate
    reparsing; [use_index]/[fresh_budget] configure the per-document
    evaluator exactly like the batch CLI flags. *)
