(** Corpus queries over the on-disk index.

    {!run} answers one JNL formula against every document of the
    corpus, in document (line) order, with verdicts that match what
    [eval --files-from] prints per file — [true]/[false] from
    {!Jlogic.Jnl_eval.holds} at the root, parse failures and budget
    exhaustion folded to [error: …] lines.

    Two plans:

    - {b postings-only} — boolean combinations of [Exists] over
      navigational-core paths (chains of [Self]/[.key]/[\[i\]] with
      [i >= 0]): each chain seeds from its last step's postings list
      and is confirmed by walking the stored parent/label columns
      upward to the root; per-chain document sets combine with
      {!Jlogic.Bitset} operations.  No document is reparsed (parse
      errors excepted, to reproduce their messages).
    - {b prefilter + reparse} — everything else: a sound
      required-label analysis intersects key/position postings into a
      candidate set ({!Jlogic.Bitset.inter_into}); only candidates are
      reparsed (via their stored byte offsets) and evaluated exactly
      like the baseline; non-candidates are [false] by soundness.

    Counters: [index.query.postings_only], [index.query.filtered],
    [index.query.full_scan], [index.query.seeds],
    [index.query.candidates], [index.query.reparsed]; span
    [index.query]. *)

type verdict = True | False | Error of string

val verdict_string : verdict -> string
(** ["true"], ["false"] or ["error: …"] — the batch-eval rendering. *)

val run :
  ?jobs:int ->
  ?use_index:bool ->
  ?corpus:string ->
  ?fresh_budget:(unit -> Obs.Budget.t) ->
  Reader.t ->
  Jlogic.Jnl.form ->
  (verdict array, string) result
(** [run r phi] is one verdict per indexed document, in line order.
    [corpus] overrides the corpus path stored in the index (whose
    current size must still match the indexed size — a changed corpus
    makes the index stale and is refused).  [jobs] shards candidate
    reparsing; [use_index]/[fresh_budget] configure the per-document
    evaluator exactly like the batch CLI flags. *)
