(** JSON serialization.

    {!Value.to_string} gives compact output; this module adds a
    configurable pretty-printer and buffer/formatter sinks.  Printing
    then re-parsing is the identity on valid values (tested). *)

val compact : Value.t -> string
(** Alias for {!Value.to_string}. *)

val pretty : ?indent:int -> Value.t -> string
(** [pretty v] renders [v] with newlines and [indent] spaces (default
    [2]) per nesting level, in the style of Figure 1 of the paper. *)

val pp_pretty : ?indent:int -> Format.formatter -> Value.t -> unit
(** Formatter version of {!pretty}. *)

val to_buffer : Buffer.t -> Value.t -> unit
(** Compact output appended to a buffer. *)

val to_channel : out_channel -> Value.t -> unit
(** Compact output written to a channel. *)
