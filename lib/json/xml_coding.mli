(** The XML-style coding of JSON discussed in Section 3.2.

    The paper argues that while JSON {e can} be coded as an XML-style
    ordered labelled tree, the coding is awkward: keys become node
    labels, so resolving the navigation instruction [J\[key\]] "would
    require us to have keys as node labels, thus forcing a scan of all
    of the node's children in order to retrieve the value" — against
    the O(1) key access the native model supports (edges labelled by
    keys, at most one per label).

    This module implements that coding faithfully so the claim can be
    measured (benchmark experiment E-XML): an ordered, node-labelled
    tree with values at leaves, a round-tripping decoder, and the
    scan-based key lookup.

    Coding scheme:
    - an object becomes a ["object"] node whose children are one
      ["pair"] node per key-value pair, each carrying the key as its
      label attribute and the coded value as its single child;
    - an array becomes an ["array"] node with the coded elements as
      ordered children (order is the only carrier of positions);
    - atoms become ["string"]/["number"] leaves carrying their value. *)

type t = {
  tag : string;  (** "object" | "pair" | "array" | "string" | "number" *)
  label : string option;  (** the key, on "pair" nodes *)
  text : string option;  (** the atomic value, on leaves *)
  children : t list;
}

val encode : Value.t -> t
val decode : t -> (Value.t, string) result
(** [decode (encode v) = Ok v] (property-tested).  Number text is
    admitted only as a decimal digit run — exactly what {!encode} can
    produce; OCaml integer-literal spellings ([0x1F], [0o17], [0b11],
    [1_000], signs) are rejected. *)

val lookup_key : t -> string -> t option
(** [J\[key\]] under the coding: a linear scan of the children — the
    §3.2 inefficiency.  Returns the coded value, not the pair node. *)

val nth : t -> int -> t option
(** [J\[i\]] under the coding: positional access into the ordered
    children. *)

val size : t -> int
val pp : Format.formatter -> t -> unit
(** Angle-bracketed rendering (debugging aid). *)
