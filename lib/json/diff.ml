type op =
  | Add of Pointer.t * Value.t
  | Remove of Pointer.t * Value.t
  | Replace of Pointer.t * Value.t * Value.t

type t = op list

let rec diff_at path (a : Value.t) (b : Value.t) : op list =
  if Value.equal a b then []
  else
    match (a, b) with
    | Value.Obj ka, Value.Obj kb ->
      let removed =
        List.filter_map
          (fun (k, va) ->
            if List.mem_assoc k kb then None
            else Some (Remove (path @ [ Pointer.Key k ], va)))
          ka
      in
      let added =
        List.filter_map
          (fun (k, vb) ->
            if List.mem_assoc k ka then None
            else Some (Add (path @ [ Pointer.Key k ], vb)))
          kb
      in
      let changed =
        List.concat_map
          (fun (k, va) ->
            match List.assoc_opt k kb with
            | Some vb -> diff_at (path @ [ Pointer.Key k ]) va vb
            | None -> [])
          ka
      in
      removed @ added @ changed
    | Value.Arr la, Value.Arr lb ->
      let na = List.length la and nb = List.length lb in
      let common = min na nb in
      let changed =
        List.concat
          (List.init common (fun i ->
               diff_at
                 (path @ [ Pointer.Index i ])
                 (List.nth la i) (List.nth lb i)))
      in
      (* removals from the tail, highest index first; additions ascending *)
      let removed =
        List.init (max 0 (na - nb)) (fun k ->
            let i = na - 1 - k in
            Remove (path @ [ Pointer.Index i ], List.nth la i))
      in
      let added =
        List.init (max 0 (nb - na)) (fun k ->
            let i = common + k in
            Add (path @ [ Pointer.Index i ], List.nth lb i))
      in
      changed @ removed @ added
    | _ -> [ Replace (path, a, b) ]

let diff a b = diff_at [] a b

(* ---- application ----------------------------------------------------------- *)

exception Patch_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Patch_error s)) fmt

(* rebuild the value along [path], applying [edit] at its end *)
let rec update path (v : Value.t) ~edit =
  match path with
  | [] -> (
    (* a patch always replaces the root with {e something}: an edit
       that deletes it has no result value, so it is a patch error —
       the bare [Option.get] here used to escape [apply]'s documented
       [result] as [Invalid_argument] *)
    match edit (Some v) with
    | Some v' -> v'
    | None -> fail "remove: the document root cannot be removed")
  | Pointer.Key k :: rest -> (
    match v with
    | Value.Obj kvs when rest = [] -> (
      (* the edit may add or remove the key itself *)
      let present = List.assoc_opt k kvs in
      match edit present with
      | Some v' ->
        if present = None then Value.Obj (kvs @ [ (k, v') ])
        else Value.Obj (List.map (fun (k', v0) -> if k' = k then (k', v') else (k', v0)) kvs)
      | None ->
        if present = None then fail "remove: missing key %S" k
        else Value.Obj (List.filter (fun (k', _) -> k' <> k) kvs))
    | Value.Obj kvs -> (
      match List.assoc_opt k kvs with
      | None -> fail "path key %S not found" k
      | Some child ->
        let child' = update rest child ~edit in
        Value.Obj
          (List.map (fun (k', v0) -> if k' = k then (k', child') else (k', v0)) kvs))
    | _ -> fail "path key %S into a non-object" k)
  | Pointer.Index i :: rest -> (
    match v with
    | Value.Arr vs when rest = [] -> (
      let n = List.length vs in
      let present = if i >= 0 && i < n then Some (List.nth vs i) else None in
      match edit present with
      | Some v' ->
        if present = None then
          if i = n then Value.Arr (vs @ [ v' ])
          else fail "add at index %d of a %d-element array" i n
        else Value.Arr (List.mapi (fun j v0 -> if j = i then v' else v0) vs)
      | None ->
        if present = None then fail "remove: index %d out of bounds" i
        else if i <> n - 1 then fail "remove at non-tail index %d" i
        else Value.Arr (List.filteri (fun j _ -> j <> i) vs))
    | Value.Arr vs -> (
      let n = List.length vs in
      if i < 0 || i >= n then fail "path index %d out of bounds" i
      else
        let child' = update rest (List.nth vs i) ~edit in
        Value.Arr (List.mapi (fun j v0 -> if j = i then child' else v0) vs))
    | _ -> fail "path index %d into a non-array" i)

let apply_op v = function
  | Add (path, value) ->
    update path v ~edit:(function
      | None -> Some value
      | Some _ -> fail "add: target already present")
  | Remove (path, expected) ->
    update path v ~edit:(function
      | Some old when Value.equal old expected -> None
      | Some old -> fail "remove: found %s" (Value.to_string old)
      | None -> fail "remove: target missing")
  | Replace (path, old_v, new_v) ->
    update path v ~edit:(function
      | Some old when Value.equal old old_v -> Some new_v
      | Some old -> fail "replace: found %s" (Value.to_string old)
      | None -> fail "replace: target missing")

let apply ops v =
  match List.fold_left apply_op v ops with
  | result -> Ok result
  | exception Patch_error m -> Error m

let invert ops =
  List.rev_map
    (function
      | Add (p, v) -> Remove (p, v)
      | Remove (p, v) -> Add (p, v)
      | Replace (p, a, b) -> Replace (p, b, a))
    ops

let size = List.length

let pp fmt ops =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun op ->
      match op with
      | Add (p, v) ->
        Format.fprintf fmt "+ %s: %s@," (Pointer.to_string p) (Value.to_string v)
      | Remove (p, v) ->
        Format.fprintf fmt "- %s: %s@," (Pointer.to_string p) (Value.to_string v)
      | Replace (p, a, b) ->
        Format.fprintf fmt "~ %s: %s -> %s@," (Pointer.to_string p)
          (Value.to_string a) (Value.to_string b))
    ops;
  Format.fprintf fmt "@]"
