(** Structural difference of JSON documents.

    [diff a b] is an edit script transforming [a] into [b]:
    applying it with {!apply} reconstructs [b] (property-tested).
    Objects are compared as key sets (order-insensitive, like
    {!Value.equal}); arrays positionally, with additions/removals at
    the tail.  The full subtree is reported at each changed path — the
    paper's "value is the whole subtree" reading of JSON values. *)

type op =
  | Add of Pointer.t * Value.t  (** new key / appended element *)
  | Remove of Pointer.t * Value.t  (** carries the removed value *)
  | Replace of Pointer.t * Value.t * Value.t  (** old, new *)

type t = op list

val diff : Value.t -> Value.t -> t
(** [diff a b] — empty iff [Value.equal a b]. *)

val apply : t -> Value.t -> (Value.t, string) result
(** [apply (diff a b) a = Ok b]. *)

val invert : t -> t
(** The inverse script: [apply (invert (diff a b)) b = Ok a]. *)

val size : t -> int
(** Number of edit operations. *)

val pp : Format.formatter -> t -> unit
(** One line per operation, e.g. [~ name.first: "John" -> "Jane"]. *)
