type node = int

type kind =
  | Kobj
  | Karr
  | Kstr of string
  | Kint of int

type edge = Root | Key of string | Pos of int

(* Label index: the edge relations [O] and [A] grouped by label, so
   that backward (pre-image) navigation over one step touches only the
   edges carrying that label instead of sweeping all nodes.  Built
   lazily on first use; every bucket lists nodes in preorder. *)
type label_index = {
  by_key : (string, node array) Hashtbl.t;
      (* key w -> nodes whose incoming edge is [Key w] *)
  by_pos : node array array;
      (* position p -> nodes whose incoming edge is [Pos p];
         length = maximum arity over the tree *)
  arrays : node array;  (* all array nodes *)
}

type t = {
  kinds : kind array;
  child_nodes : node array array;  (* children in document order *)
  child_keys : string array array;  (* keys, empty for non-objects *)
  parents : node array;  (* -1 for the root *)
  edges : edge array;
  sizes : int array;
  heights : int array;
  depths : int array;
  hashes : int array;
  by_key : (node * string, node) Hashtbl.t;  (* O(1) key lookup *)
  mutable index : label_index option;  (* built lazily *)
}

let root = 0

(* Structural hashing: must agree with Value.hash-style equality, i.e.
   insensitive to object pair order.  We fold children of objects in
   key-sorted order; hash mixing matches no external format, it only has
   to be internally consistent. *)
let mix h x = (h * 0x01000193) lxor x land max_int

let of_value ?(budget = Obs.Budget.unlimited) v =
  let n = Value.size v in
  let kinds = Array.make n Kobj in
  let child_nodes = Array.make n [||] in
  let child_keys = Array.make n [||] in
  let parents = Array.make n (-1) in
  let edges = Array.make n Root in
  let sizes = Array.make n 1 in
  let heights = Array.make n 0 in
  let depths = Array.make n 0 in
  let hashes = Array.make n 0 in
  let by_key = Hashtbl.create (max 16 n) in
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  (* Returns (id, size, height, hash) of the built subtree. *)
  let rec build v parent edge depth =
    Obs.Budget.check_depth budget depth;
    Obs.Budget.burn budget 1;
    let id = fresh () in
    parents.(id) <- parent;
    edges.(id) <- edge;
    depths.(id) <- depth;
    match v with
    | Value.Num k ->
      if k < 0 then raise (Value.Invalid "negative number in tree");
      kinds.(id) <- Kint k;
      hashes.(id) <- mix (mix 0x811c9dc5 1) k;
      (id, 1, 0, hashes.(id))
    | Value.Str s ->
      kinds.(id) <- Kstr s;
      hashes.(id) <- mix (mix 0x811c9dc5 2) (Hashtbl.hash s);
      (id, 1, 0, hashes.(id))
    | Value.Arr vs ->
      kinds.(id) <- Karr;
      let kids = Array.make (List.length vs) 0 in
      let sz = ref 1 and ht = ref 0 and h = ref (mix 0x811c9dc5 3) in
      List.iteri
        (fun i v ->
          let cid, csz, cht, chash = build v id (Pos i) (depth + 1) in
          kids.(i) <- cid;
          sz := !sz + csz;
          ht := max !ht (cht + 1);
          h := mix !h chash)
        vs;
      child_nodes.(id) <- kids;
      sizes.(id) <- !sz;
      heights.(id) <- !ht;
      hashes.(id) <- !h;
      (id, !sz, !ht, !h)
    | Value.Obj kvs ->
      kinds.(id) <- Kobj;
      let m = List.length kvs in
      let kids = Array.make m 0 in
      let keys = Array.make m "" in
      let sz = ref 1 and ht = ref 0 in
      let child_hashes = Array.make m (0, 0) in
      List.iteri
        (fun i (k, v) ->
          if Hashtbl.mem by_key (id, k) then
            raise (Value.Invalid (Printf.sprintf "duplicate key %S" k));
          let cid, csz, cht, chash = build v id (Key k) (depth + 1) in
          kids.(i) <- cid;
          keys.(i) <- k;
          Hashtbl.add by_key (id, k) cid;
          sz := !sz + csz;
          ht := max !ht (cht + 1);
          child_hashes.(i) <- (Hashtbl.hash k, chash))
        kvs;
      (* order-insensitive: fold pair hashes in sorted order *)
      Array.sort Stdlib.compare child_hashes;
      let h =
        Array.fold_left
          (fun h (kh, vh) -> mix (mix h kh) vh)
          (mix 0x811c9dc5 4) child_hashes
      in
      child_nodes.(id) <- kids;
      child_keys.(id) <- keys;
      sizes.(id) <- !sz;
      heights.(id) <- !ht;
      hashes.(id) <- h;
      (id, !sz, !ht, h)
  in
  let _ = build v (-1) Root 0 in
  { kinds; child_nodes; child_keys; parents; edges; sizes; heights; depths;
    hashes; by_key; index = None }

let node_count t = Array.length t.kinds
let kind t n = t.kinds.(n)
let is_obj t n = match t.kinds.(n) with Kobj -> true | _ -> false
let is_arr t n = match t.kinds.(n) with Karr -> true | _ -> false
let is_str t n = match t.kinds.(n) with Kstr _ -> true | _ -> false
let is_int t n = match t.kinds.(n) with Kint _ -> true | _ -> false
let str_value t n = match t.kinds.(n) with Kstr s -> Some s | _ -> None
let int_value t n = match t.kinds.(n) with Kint k -> Some k | _ -> None

let obj_children t n =
  match t.kinds.(n) with
  | Kobj ->
    let kids = t.child_nodes.(n) and keys = t.child_keys.(n) in
    List.init (Array.length kids) (fun i -> (keys.(i), kids.(i)))
  | Karr | Kstr _ | Kint _ -> []

let arr_children t n =
  match t.kinds.(n) with
  | Karr -> t.child_nodes.(n)
  | Kobj | Kstr _ | Kint _ -> [||]

let children t n = Array.to_list t.child_nodes.(n)
let arity t n = Array.length t.child_nodes.(n)

let lookup t n k =
  match t.kinds.(n) with
  | Kobj -> Hashtbl.find_opt t.by_key (n, k)
  | Karr | Kstr _ | Kint _ -> None

let nth t n i =
  match t.kinds.(n) with
  | Karr ->
    let kids = t.child_nodes.(n) in
    let len = Array.length kids in
    let i = if i < 0 then len + i else i in
    if i < 0 || i >= len then None else Some kids.(i)
  | Kobj | Kstr _ | Kint _ -> None

let parent t n = if t.parents.(n) < 0 then None else Some t.parents.(n)
let parent_id t n = t.parents.(n)
let edge_from_parent t n = t.edges.(n)

(* ---- label index -------------------------------------------------------- *)

let build_index ?(budget = Obs.Budget.unlimited) t =
  match t.index with
  | Some _ -> ()
  | None ->
    Obs.Metrics.span "tree.index.build" (fun () ->
        let n = Array.length t.kinds in
        (* one fuel unit per node: a single bucketing pass *)
        Obs.Budget.burn budget n;
        Obs.Metrics.incr "tree.index.builds";
        let key_buckets : (string, node list) Hashtbl.t = Hashtbl.create 64 in
        let max_ar =
          Array.fold_left
            (fun m kids -> max m (Array.length kids))
            0 t.child_nodes
        in
        let pos_buckets = Array.make max_ar [] in
        let arrays = ref [] in
        (* descending pass so each (consed) bucket ends up in preorder *)
        for nd = n - 1 downto 0 do
          (match t.kinds.(nd) with
          | Karr -> arrays := nd :: !arrays
          | Kobj | Kstr _ | Kint _ -> ());
          match t.edges.(nd) with
          | Root -> ()
          | Key k ->
            let prev =
              match Hashtbl.find_opt key_buckets k with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace key_buckets k (nd :: prev)
          | Pos p -> pos_buckets.(p) <- nd :: pos_buckets.(p)
        done;
        let by_key = Hashtbl.create (max 16 (Hashtbl.length key_buckets)) in
        Hashtbl.iter
          (fun k l -> Hashtbl.replace by_key k (Array.of_list l))
          key_buckets;
        t.index <-
          Some
            { by_key;
              by_pos = Array.map Array.of_list pos_buckets;
              arrays = Array.of_list !arrays })

let index t =
  match t.index with
  | Some i -> i
  | None ->
    build_index t;
    (match t.index with Some i -> i | None -> assert false)

let key_index t k =
  match Hashtbl.find_opt (index t).by_key k with
  | Some a -> a
  | None -> [||]

let pos_index t p =
  let i = index t in
  if p < 0 || p >= Array.length i.by_pos then [||] else i.by_pos.(p)

let max_arity t = Array.length (index t).by_pos
let arr_index t = (index t).arrays
let iter_key_index f t = Hashtbl.iter f (index t).by_key
let size t n = t.sizes.(n)
let height_of t n = t.heights.(n)
let height t = t.heights.(root)
let depth t n = t.depths.(n)
let subtree_hash t n = t.hashes.(n)

let rec value_at t n =
  match t.kinds.(n) with
  | Kint k -> Value.Num k
  | Kstr s -> Value.Str s
  | Karr -> Value.Arr (List.map (value_at t) (children t n))
  | Kobj -> Value.Obj (List.map (fun (k, c) -> (k, value_at t c)) (obj_children t n))

let to_value t = value_at t root

(* Structural walk deciding json(n1) = json(n2) across trees t1/t2. *)
let rec structural_equal t1 n1 t2 n2 =
  match (t1.kinds.(n1), t2.kinds.(n2)) with
  | Kint a, Kint b -> a = b
  | Kstr a, Kstr b -> String.equal a b
  | Karr, Karr ->
    let k1 = t1.child_nodes.(n1) and k2 = t2.child_nodes.(n2) in
    Array.length k1 = Array.length k2
    &&
    let rec go i =
      i >= Array.length k1
      || (structural_equal t1 k1.(i) t2 k2.(i) && go (i + 1))
    in
    go 0
  | Kobj, Kobj ->
    let k1 = t1.child_nodes.(n1) and k2 = t2.child_nodes.(n2) in
    Array.length k1 = Array.length k2
    &&
    let keys1 = t1.child_keys.(n1) in
    let rec go i =
      i >= Array.length k1
      ||
      match lookup t2 n2 keys1.(i) with
      | None -> false
      | Some c2 -> structural_equal t1 k1.(i) t2 c2 && go (i + 1)
    in
    go 0
  | (Kobj | Karr | Kstr _ | Kint _), _ -> false

let equal_across t1 n1 t2 n2 =
  t1.hashes.(n1) = t2.hashes.(n2)
  && t1.sizes.(n1) = t2.sizes.(n2)
  && structural_equal t1 n1 t2 n2

let equal_subtrees t n1 n2 = n1 = n2 || equal_across t n1 t n2

(* Compare a subtree against a constant value without materializing the
   value of the subtree. *)
let rec equal_value_walk t n (v : Value.t) =
  match (t.kinds.(n), v) with
  | Kint a, Value.Num b -> a = b
  | Kstr a, Value.Str b -> String.equal a b
  | Karr, Value.Arr vs ->
    let kids = t.child_nodes.(n) in
    List.length vs = Array.length kids
    && List.for_all2
         (fun c v -> equal_value_walk t c v)
         (Array.to_list kids) vs
  | Kobj, Value.Obj kvs ->
    arity t n = List.length kvs
    && List.for_all
         (fun (k, v) ->
           match lookup t n k with
           | None -> false
           | Some c -> equal_value_walk t c v)
         kvs
  | (Kobj | Karr | Kstr _ | Kint _), _ -> false

let equal_to_value t n v =
  size t n = Value.size v && equal_value_walk t n v

let nodes t = Seq.init (node_count t) Fun.id
let iter f t = Seq.iter f (nodes t)

let nodes_by_height t =
  let h = height t in
  let buckets = Array.make (h + 1) [] in
  (* reverse preorder keeps each bucket in preorder *)
  for n = node_count t - 1 downto 0 do
    buckets.(t.heights.(n)) <- n :: buckets.(t.heights.(n))
  done;
  buckets

let address t n =
  let rec go n acc =
    match t.edges.(n) with
    | Root -> acc
    | Pos i -> go t.parents.(n) (i :: acc)
    | Key k ->
      (* position of the key among the parent's children *)
      let keys = t.child_keys.(t.parents.(n)) in
      let rec find i = if keys.(i) = k then i else find (i + 1) in
      go t.parents.(n) (find 0 :: acc)
  in
  go n []

let pp_node t fmt n =
  let addr = address t n in
  Format.fprintf fmt "@[<h>/%s: %s@]"
    (String.concat "/" (List.map string_of_int addr))
    (match t.kinds.(n) with
    | Kobj -> Printf.sprintf "object(%d children)" (arity t n)
    | Karr -> Printf.sprintf "array(%d elements)" (arity t n)
    | Kstr s -> Printf.sprintf "string %S" s
    | Kint k -> Printf.sprintf "number %d" k)
