type node = int

type kind =
  | Kobj
  | Karr
  | Kstr of string
  | Kint of int

type edge = Root | Key of string | Pos of int

(* Label index: the edge relations [O] and [A] grouped by label, so
   that backward (pre-image) navigation over one step touches only the
   edges carrying that label instead of sweeping all nodes.  Built
   lazily on first use; every bucket lists nodes in preorder. *)
type label_index = {
  by_key : (string, node array) Hashtbl.t;
      (* key w -> nodes whose incoming edge is [Key w] *)
  by_pos : node array array;
      (* position p -> nodes whose incoming edge is [Pos p];
         length = maximum arity over the tree *)
  arrays : node array;  (* all array nodes *)
}

type t = {
  kinds : kind array;
  child_nodes : node array array;  (* children in document order *)
  child_keys : string array array;  (* keys, empty for non-objects *)
  parents : node array;  (* -1 for the root *)
  edges : edge array;
  sizes : int array;
  heights : int array;
  depths : int array;
  hashes : int array;
  by_key : (node * string, node) Hashtbl.t;  (* O(1) key lookup *)
  mutable index : label_index option;  (* built lazily *)
}

let root = 0

(* Structural hashing: must agree with Value.hash-style equality, i.e.
   insensitive to object pair order.  We fold children of objects in
   key-sorted order; hash mixing matches no external format, it only has
   to be internally consistent. *)
let mix h x = (h * 0x01000193) lxor x land max_int

(* Sort the parallel segments [a.(lo..hi)], [b.(lo..hi)] by (a, b)
   lexicographically — the order [Array.sort Stdlib.compare] gives
   (int * int) pairs, without allocating the pairs.  Pairs comparing
   equal are componentwise equal, so the object-hash fold below is
   insensitive to how ties land. *)
let rec sort_pairs a b lo hi =
  if hi - lo < 12 then
    for i = lo + 1 to hi do
      let ka = a.(i) and kb = b.(i) in
      let j = ref (i - 1) in
      while !j >= lo && (a.(!j) > ka || (a.(!j) = ka && b.(!j) > kb)) do
        a.(!j + 1) <- a.(!j);
        b.(!j + 1) <- b.(!j);
        decr j
      done;
      a.(!j + 1) <- ka;
      b.(!j + 1) <- kb
    done
  else begin
    let mid = (lo + hi) / 2 in
    let pa = a.(mid) and pb = b.(mid) in
    let swap i j =
      let ta = a.(i) and tb = b.(i) in
      a.(i) <- a.(j);
      b.(i) <- b.(j);
      a.(j) <- ta;
      b.(j) <- tb
    in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while a.(!i) < pa || (a.(!i) = pa && b.(!i) < pb) do incr i done;
      while a.(!j) > pa || (a.(!j) = pa && b.(!j) > pb) do decr j done;
      if !i <= !j then begin
        swap !i !j;
        incr i;
        decr j
      end
    done;
    sort_pairs a b lo !j;
    sort_pairs a b !i hi
  end

let of_value ?(budget = Obs.Budget.unlimited) v =
  let n = Value.size v in
  let kinds = Array.make n Kobj in
  let child_nodes = Array.make n [||] in
  let child_keys = Array.make n [||] in
  let parents = Array.make n (-1) in
  let edges = Array.make n Root in
  let sizes = Array.make n 1 in
  let heights = Array.make n 0 in
  let depths = Array.make n 0 in
  let hashes = Array.make n 0 in
  let by_key = Hashtbl.create (max 16 n) in
  let counter = ref 0 in
  let fresh () =
    let id = !counter in
    incr counter;
    id
  in
  (* Returns (id, size, height, hash) of the built subtree. *)
  let rec build v parent edge depth =
    Obs.Budget.check_depth budget depth;
    Obs.Budget.burn budget 1;
    let id = fresh () in
    parents.(id) <- parent;
    edges.(id) <- edge;
    depths.(id) <- depth;
    match v with
    | Value.Num k ->
      if k < 0 then raise (Value.Invalid "negative number in tree");
      kinds.(id) <- Kint k;
      hashes.(id) <- mix (mix 0x811c9dc5 1) k;
      (id, 1, 0, hashes.(id))
    | Value.Str s ->
      kinds.(id) <- Kstr s;
      hashes.(id) <- mix (mix 0x811c9dc5 2) (Hashtbl.hash s);
      (id, 1, 0, hashes.(id))
    | Value.Arr vs ->
      kinds.(id) <- Karr;
      let kids = Array.make (List.length vs) 0 in
      let sz = ref 1 and ht = ref 0 and h = ref (mix 0x811c9dc5 3) in
      List.iteri
        (fun i v ->
          let cid, csz, cht, chash = build v id (Pos i) (depth + 1) in
          kids.(i) <- cid;
          sz := !sz + csz;
          ht := max !ht (cht + 1);
          h := mix !h chash)
        vs;
      child_nodes.(id) <- kids;
      sizes.(id) <- !sz;
      heights.(id) <- !ht;
      hashes.(id) <- !h;
      (id, !sz, !ht, !h)
    | Value.Obj kvs ->
      kinds.(id) <- Kobj;
      let m = List.length kvs in
      let kids = Array.make m 0 in
      let keys = Array.make m "" in
      let sz = ref 1 and ht = ref 0 in
      let khashes = Array.make m 0 in
      let vhashes = Array.make m 0 in
      List.iteri
        (fun i (k, v) ->
          if Hashtbl.mem by_key (id, k) then
            raise (Value.Invalid (Printf.sprintf "duplicate key %S" k));
          let cid, csz, cht, chash = build v id (Key k) (depth + 1) in
          kids.(i) <- cid;
          keys.(i) <- k;
          Hashtbl.add by_key (id, k) cid;
          sz := !sz + csz;
          ht := max !ht (cht + 1);
          khashes.(i) <- Hashtbl.hash k;
          vhashes.(i) <- chash)
        kvs;
      (* order-insensitive: fold pair hashes in sorted order *)
      sort_pairs khashes vhashes 0 (m - 1);
      let h = ref (mix 0x811c9dc5 4) in
      for i = 0 to m - 1 do
        h := mix (mix !h khashes.(i)) vhashes.(i)
      done;
      let h = !h in
      child_nodes.(id) <- kids;
      child_keys.(id) <- keys;
      sizes.(id) <- !sz;
      heights.(id) <- !ht;
      hashes.(id) <- h;
      (id, !sz, !ht, h)
  in
  let _ = build v (-1) Root 0 in
  { kinds; child_nodes; child_keys; parents; edges; sizes; heights; depths;
    hashes; by_key; index = None }

(* ---- direct string ingestion --------------------------------------------- *)

(* Growable array: the node count is unknown until the single pass over
   the input completes.  Capacity doubles; [vec_trim] returns the dense
   prefix. *)
type 'a vec = { mutable data : 'a array; mutable len : int; filler : 'a }

let vec ?(capacity = 256) filler =
  { data = Array.make (max 16 capacity) filler; len = 0; filler }

let vec_push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let data = Array.make (2 * cap) v.filler in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* Column store under construction: all node columns share one length
   and one capacity, so admitting a node is a single capacity check.
   Fresh slots keep their fillers ([Kobj]/[1]/[0]/[[||]]) and every
   slot is written at most once per parse, so each node only writes
   the columns whose filler is wrong for it — three stores for a
   container on entry, five for a leaf. *)
type builder = {
  mutable b_cap : int;
  mutable b_n : int;
  mutable b_kinds : kind array;
  mutable b_parents : int array;
  mutable b_edges : edge array;
  mutable b_sizes : int array;
  mutable b_heights : int array;
  mutable b_depths : int array;
  mutable b_hashes : int array;
  mutable b_children : node array array;
  mutable b_keys : string array array;
}

let builder capacity =
  let cap = max 16 capacity in
  { b_cap = cap;
    b_n = 0;
    b_kinds = Array.make cap Kobj;
    b_parents = Array.make cap (-1);
    b_edges = Array.make cap Root;
    b_sizes = Array.make cap 1;
    b_heights = Array.make cap 0;
    b_depths = Array.make cap 0;
    b_hashes = Array.make cap 0;
    b_children = Array.make cap [||];
    b_keys = Array.make cap [||] }

let builder_grow b =
  let cap = 2 * b.b_cap in
  let copy filler a =
    let d = Array.make cap filler in
    Array.blit a 0 d 0 b.b_n;
    d
  in
  b.b_kinds <- copy Kobj b.b_kinds;
  b.b_parents <- copy (-1) b.b_parents;
  b.b_edges <- copy Root b.b_edges;
  b.b_sizes <- copy 1 b.b_sizes;
  b.b_heights <- copy 0 b.b_heights;
  b.b_depths <- copy 0 b.b_depths;
  b.b_hashes <- copy 0 b.b_hashes;
  b.b_children <- copy [||] b.b_children;
  b.b_keys <- copy [||] b.b_keys;
  b.b_cap <- cap

let new_node b parent edge depth =
  if b.b_n = b.b_cap then builder_grow b;
  let id = b.b_n in
  b.b_parents.(id) <- parent;
  b.b_edges.(id) <- edge;
  b.b_depths.(id) <- depth;
  b.b_n <- id + 1;
  id

(* One fused pass: lexing, syntax checking and tree construction, with
   tokens consumed straight off the lexer and every node emitted into
   the flat preorder arrays as it is entered — no token list, no
   [Value.t] intermediate, no separate [Value.size] pre-pass.  Nodes
   are numbered in preorder by construction (JSON text {e is} a
   preorder traversal), so a subtree's size is simply the id counter's
   travel across it.  Positions, error messages and literal-mode
   handling reuse the {!Parser} helpers verbatim, which is what makes
   this route differentially testable against
   [of_value (Parser.parse_exn input)]. *)
let of_lexer_exn ?(mode = `Strict) ?(base_depth = 0) ~budget lx =
  (* Capacity estimate from the unconsumed input size: every node costs
     at least four input bytes amortized on realistic documents.
     Over-estimates only cost transient memory (the trim below returns
     the dense prefix); under-estimates only cost doublings. *)
  let len = Lexer.remaining lx in
  let b = builder (len / 4) in
  let by_key = Hashtbl.create (max 16 (len / 8)) in
  (* Children of the container currently being filled sit on top of
     these shared stacks (their frame base is the stack length at
     container entry), and are cut into the exact per-node arrays when
     the container closes — no per-child list cells.  The key stacks
     grow only in objects, the id stack in both container kinds, so
     their frame bases differ. *)
  let st_ids = vec 0 in
  let st_keys = vec "" in
  let st_khash = vec 0 in
  let st_vhash = vec 0 in
  let rec value parent edge depth =
    let pos, tok = Lexer.next lx in
    (* Budget parity with the two-stage route: one guard accounts both
       the parse unit and the tree-construction unit that [of_value]
       burns per node, positioned at the value's first token exactly
       like the parser's peek-then-guard. *)
    Parser.guard ~units:2 budget pos depth;
    Obs.Metrics.incr "parse.values";
    (* stored depths are tree-relative; [depth] itself stays absolute so
       the ceiling applies to real document nesting when a spill starts
       [base_depth] levels down *)
    let id = new_node b parent edge (depth - base_depth) in
    (match tok with
    | Lexer.Lbrace -> obj id depth
    | Lexer.Lbracket -> arr id depth
    | Lexer.Nat k ->
      b.b_kinds.(id) <- Kint k;
      b.b_hashes.(id) <- mix (mix 0x811c9dc5 1) k
    | Lexer.String s ->
      b.b_kinds.(id) <- Kstr s;
      b.b_hashes.(id) <- mix (mix 0x811c9dc5 2) (Hashtbl.hash s)
    | Lexer.Neg_int _ | Lexer.Float _ | Lexer.True | Lexer.False
    | Lexer.Null -> (
      match Parser.literal_atom mode pos tok with
      | Parser.Int k ->
        b.b_kinds.(id) <- Kint k;
        b.b_hashes.(id) <- mix (mix 0x811c9dc5 1) k
      | Parser.Str s ->
        b.b_kinds.(id) <- Kstr s;
        b.b_hashes.(id) <- mix (mix 0x811c9dc5 2) (Hashtbl.hash s))
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof ->
      Parser.unexpected pos tok "a JSON value");
    id
  and obj id depth =
    let base = st_ids.len and kbase = st_keys.len in
    let ht = ref 0 in
    let rec members () =
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.String key ->
        if Hashtbl.mem by_key (id, key) then
          Parser.fail pos "duplicate object key %S" key;
        let pos, tok = Lexer.next lx in
        if tok <> Lexer.Colon then Parser.unexpected pos tok "':'";
        let cid = value id (Key key) (depth + 1) in
        Hashtbl.add by_key (id, key) cid;
        vec_push st_ids cid;
        vec_push st_keys key;
        vec_push st_khash (Hashtbl.hash key);
        vec_push st_vhash b.b_hashes.(cid);
        if b.b_heights.(cid) >= !ht then ht := b.b_heights.(cid) + 1;
        let pos, tok = Lexer.next lx in
        (match tok with
        | Lexer.Comma -> members ()
        | Lexer.Rbrace -> ()
        | _ -> Parser.unexpected pos tok "',' or '}'")
      | _ -> Parser.unexpected pos tok "a string key"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbrace then ignore (Lexer.next lx) else members ();
    let m = st_ids.len - base in
    if m > 0 then begin
      b.b_children.(id) <- Array.sub st_ids.data base m;
      b.b_keys.(id) <- Array.sub st_keys.data kbase m
    end;
    (* order-insensitive: fold pair hashes in sorted order, as of_value *)
    sort_pairs st_khash.data st_vhash.data kbase (kbase + m - 1);
    let h = ref (mix 0x811c9dc5 4) in
    for i = kbase to kbase + m - 1 do
      h := mix (mix !h st_khash.data.(i)) st_vhash.data.(i)
    done;
    b.b_hashes.(id) <- !h;
    st_ids.len <- base;
    st_keys.len <- kbase;
    st_khash.len <- kbase;
    st_vhash.len <- kbase;
    b.b_sizes.(id) <- b.b_n - id;
    b.b_heights.(id) <- !ht
  and arr id depth =
    b.b_kinds.(id) <- Karr;
    let base = st_ids.len in
    let ht = ref 0 in
    let h = ref (mix 0x811c9dc5 3) in
    let rec elements () =
      let cid = value id (Pos (st_ids.len - base)) (depth + 1) in
      vec_push st_ids cid;
      if b.b_heights.(cid) >= !ht then ht := b.b_heights.(cid) + 1;
      h := mix !h b.b_hashes.(cid);
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.Comma -> elements ()
      | Lexer.Rbracket -> ()
      | _ -> Parser.unexpected pos tok "',' or ']'"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbracket then ignore (Lexer.next lx) else elements ();
    let m = st_ids.len - base in
    if m > 0 then b.b_children.(id) <- Array.sub st_ids.data base m;
    st_ids.len <- base;
    b.b_hashes.(id) <- !h;
    b.b_sizes.(id) <- b.b_n - id;
    b.b_heights.(id) <- !ht
  in
  ignore (value (-1) Root base_depth);
  let trim : 'a. 'a array -> 'a array =
   fun a -> if Array.length a = b.b_n then a else Array.sub a 0 b.b_n
  in
  { kinds = trim b.b_kinds;
    child_nodes = trim b.b_children;
    child_keys = trim b.b_keys;
    parents = trim b.b_parents;
    edges = trim b.b_edges;
    sizes = trim b.b_sizes;
    heights = trim b.b_heights;
    depths = trim b.b_depths;
    hashes = trim b.b_hashes;
    by_key;
    index = None }

let of_string_exn ?mode ?max_depth ?budget input =
  let budget = Parser.budget_of budget max_depth in
  let lx = Lexer.create input in
  let t = of_lexer_exn ?mode ~budget lx in
  let pos, tok = Lexer.next lx in
  if tok <> Lexer.Eof then Parser.unexpected pos tok "end of input";
  Obs.Metrics.add "parse.direct.bytes" (String.length input);
  Obs.Metrics.incr "parse.direct.docs";
  t

let of_string ?mode ?max_depth ?budget input =
  Parser.wrap (fun () -> of_string_exn ?mode ?max_depth ?budget input)

let node_count t = Array.length t.kinds
let kind t n = t.kinds.(n)
let is_obj t n = match t.kinds.(n) with Kobj -> true | _ -> false
let is_arr t n = match t.kinds.(n) with Karr -> true | _ -> false
let is_str t n = match t.kinds.(n) with Kstr _ -> true | _ -> false
let is_int t n = match t.kinds.(n) with Kint _ -> true | _ -> false
let str_value t n = match t.kinds.(n) with Kstr s -> Some s | _ -> None
let int_value t n = match t.kinds.(n) with Kint k -> Some k | _ -> None

let obj_children t n =
  match t.kinds.(n) with
  | Kobj ->
    let kids = t.child_nodes.(n) and keys = t.child_keys.(n) in
    List.init (Array.length kids) (fun i -> (keys.(i), kids.(i)))
  | Karr | Kstr _ | Kint _ -> []

let arr_children t n =
  match t.kinds.(n) with
  | Karr -> t.child_nodes.(n)
  | Kobj | Kstr _ | Kint _ -> [||]

let children t n = Array.to_list t.child_nodes.(n)
let arity t n = Array.length t.child_nodes.(n)
let child_ids t n = t.child_nodes.(n)

let obj_keys t n =
  match t.kinds.(n) with
  | Kobj -> t.child_keys.(n)
  | Karr | Kstr _ | Kint _ -> [||]

let lookup t n k =
  match t.kinds.(n) with
  | Kobj -> Hashtbl.find_opt t.by_key (n, k)
  | Karr | Kstr _ | Kint _ -> None

let nth t n i =
  match t.kinds.(n) with
  | Karr ->
    let kids = t.child_nodes.(n) in
    let len = Array.length kids in
    let i = if i < 0 then len + i else i in
    if i < 0 || i >= len then None else Some kids.(i)
  | Kobj | Kstr _ | Kint _ -> None

let parent t n = if t.parents.(n) < 0 then None else Some t.parents.(n)
let parent_id t n = t.parents.(n)
let edge_from_parent t n = t.edges.(n)

(* ---- label index -------------------------------------------------------- *)

let build_index ?(budget = Obs.Budget.unlimited) t =
  match t.index with
  | Some _ -> ()
  | None ->
    Obs.Metrics.span "tree.index.build" (fun () ->
        let n = Array.length t.kinds in
        (* one fuel unit per node: a single bucketing pass *)
        Obs.Budget.burn budget n;
        Obs.Metrics.incr "tree.index.builds";
        let key_buckets : (string, node list) Hashtbl.t = Hashtbl.create 64 in
        let max_ar =
          Array.fold_left
            (fun m kids -> max m (Array.length kids))
            0 t.child_nodes
        in
        let pos_buckets = Array.make max_ar [] in
        let arrays = ref [] in
        (* descending pass so each (consed) bucket ends up in preorder *)
        for nd = n - 1 downto 0 do
          (match t.kinds.(nd) with
          | Karr -> arrays := nd :: !arrays
          | Kobj | Kstr _ | Kint _ -> ());
          match t.edges.(nd) with
          | Root -> ()
          | Key k ->
            let prev =
              match Hashtbl.find_opt key_buckets k with
              | Some l -> l
              | None -> []
            in
            Hashtbl.replace key_buckets k (nd :: prev)
          | Pos p -> pos_buckets.(p) <- nd :: pos_buckets.(p)
        done;
        let by_key = Hashtbl.create (max 16 (Hashtbl.length key_buckets)) in
        Hashtbl.iter
          (fun k l -> Hashtbl.replace by_key k (Array.of_list l))
          key_buckets;
        t.index <-
          Some
            { by_key;
              by_pos = Array.map Array.of_list pos_buckets;
              arrays = Array.of_list !arrays })

let index t =
  match t.index with
  | Some i -> i
  | None ->
    build_index t;
    (match t.index with Some i -> i | None -> assert false)

let key_index t k =
  match Hashtbl.find_opt (index t).by_key k with
  | Some a -> a
  | None -> [||]

let pos_index t p =
  let i = index t in
  if p < 0 || p >= Array.length i.by_pos then [||] else i.by_pos.(p)

let max_arity t = Array.length (index t).by_pos
let arr_index t = (index t).arrays
let iter_key_index f t = Hashtbl.iter f (index t).by_key
let size t n = t.sizes.(n)
let height_of t n = t.heights.(n)
let height t = t.heights.(root)
let depth t n = t.depths.(n)
let subtree_hash t n = t.hashes.(n)

let rec value_at t n =
  match t.kinds.(n) with
  | Kint k -> Value.Num k
  | Kstr s -> Value.Str s
  | Karr -> Value.Arr (List.map (value_at t) (children t n))
  | Kobj -> Value.Obj (List.map (fun (k, c) -> (k, value_at t c)) (obj_children t n))

let to_value t = value_at t root

(* Rebuild the whole document with json(n) replaced by [v]: only the
   root-to-n spine is reconstructed, siblings are converted with
   [value_at] — O(|D|) total, no intermediate tree. *)
let substitute t n v =
  let rec up n v =
    if n = root then v
    else
      let p = t.parents.(n) in
      let rebuilt =
        match t.kinds.(p) with
        | Kobj ->
          Value.Obj
            (List.map
               (fun (k, c) -> (k, if c = n then v else value_at t c))
               (obj_children t p))
        | Karr ->
          Value.Arr
            (List.map (fun c -> if c = n then v else value_at t c) (children t p))
        | Kstr _ | Kint _ -> assert false (* atoms have no children *)
      in
      up p rebuilt
  in
  if n < 0 || n >= node_count t then invalid_arg "Tree.substitute: bad node"
  else up n v

(* Structural walk deciding json(n1) = json(n2) across trees t1/t2. *)
let rec structural_equal t1 n1 t2 n2 =
  match (t1.kinds.(n1), t2.kinds.(n2)) with
  | Kint a, Kint b -> a = b
  | Kstr a, Kstr b -> String.equal a b
  | Karr, Karr ->
    let k1 = t1.child_nodes.(n1) and k2 = t2.child_nodes.(n2) in
    Array.length k1 = Array.length k2
    &&
    let rec go i =
      i >= Array.length k1
      || (structural_equal t1 k1.(i) t2 k2.(i) && go (i + 1))
    in
    go 0
  | Kobj, Kobj ->
    let k1 = t1.child_nodes.(n1) and k2 = t2.child_nodes.(n2) in
    Array.length k1 = Array.length k2
    &&
    let keys1 = t1.child_keys.(n1) in
    let rec go i =
      i >= Array.length k1
      ||
      match lookup t2 n2 keys1.(i) with
      | None -> false
      | Some c2 -> structural_equal t1 k1.(i) t2 c2 && go (i + 1)
    in
    go 0
  | (Kobj | Karr | Kstr _ | Kint _), _ -> false

let equal_across t1 n1 t2 n2 =
  t1.hashes.(n1) = t2.hashes.(n2)
  && t1.sizes.(n1) = t2.sizes.(n2)
  && structural_equal t1 n1 t2 n2

let equal_subtrees t n1 n2 = n1 = n2 || equal_across t n1 t n2

(* Compare a subtree against a constant value without materializing the
   value of the subtree. *)
let rec equal_value_walk t n (v : Value.t) =
  match (t.kinds.(n), v) with
  | Kint a, Value.Num b -> a = b
  | Kstr a, Value.Str b -> String.equal a b
  | Karr, Value.Arr vs ->
    let kids = t.child_nodes.(n) in
    List.length vs = Array.length kids
    && List.for_all2
         (fun c v -> equal_value_walk t c v)
         (Array.to_list kids) vs
  | Kobj, Value.Obj kvs ->
    arity t n = List.length kvs
    && List.for_all
         (fun (k, v) ->
           match lookup t n k with
           | None -> false
           | Some c -> equal_value_walk t c v)
         kvs
  | (Kobj | Karr | Kstr _ | Kint _), _ -> false

let equal_to_value t n v =
  size t n = Value.size v && equal_value_walk t n v

let nodes t = Seq.init (node_count t) Fun.id
let iter f t = Seq.iter f (nodes t)

let nodes_by_height t =
  let h = height t in
  let buckets = Array.make (h + 1) [] in
  (* reverse preorder keeps each bucket in preorder *)
  for n = node_count t - 1 downto 0 do
    buckets.(t.heights.(n)) <- n :: buckets.(t.heights.(n))
  done;
  buckets

let address t n =
  let rec go n acc =
    match t.edges.(n) with
    | Root -> acc
    | Pos i -> go t.parents.(n) (i :: acc)
    | Key k ->
      (* position of the key among the parent's children *)
      let keys = t.child_keys.(t.parents.(n)) in
      let rec find i = if keys.(i) = k then i else find (i + 1) in
      go t.parents.(n) (find 0 :: acc)
  in
  go n []

let pp_node t fmt n =
  let addr = address t n in
  Format.fprintf fmt "@[<h>/%s: %s@]"
    (String.concat "/" (List.map string_of_int addr))
    (match t.kinds.(n) with
    | Kobj -> Printf.sprintf "object(%d children)" (arity t n)
    | Karr -> Printf.sprintf "array(%d elements)" (arity t n)
    | Kstr s -> Printf.sprintf "string %S" s
    | Kint k -> Printf.sprintf "number %d" k)
