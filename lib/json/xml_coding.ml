type t = {
  tag : string;
  label : string option;
  text : string option;
  children : t list;
}

let leaf tag text = { tag; label = None; text = Some text; children = [] }

let rec encode (v : Value.t) : t =
  match v with
  | Value.Num n -> leaf "number" (string_of_int n)
  | Value.Str s -> leaf "string" s
  | Value.Arr vs ->
    { tag = "array"; label = None; text = None; children = List.map encode vs }
  | Value.Obj kvs ->
    { tag = "object";
      label = None;
      text = None;
      children =
        List.map
          (fun (k, v) ->
            { tag = "pair"; label = Some k; text = None; children = [ encode v ] })
          kvs }

(* Only decimal digit runs are numbers: [encode] writes [string_of_int]
   of a natural, so that is all [decode] admits.  Bare
   [int_of_string_opt] would also accept OCaml integer-literal syntax —
   [0x1F], [0o17], [0b11], [1_000], a leading sign — none of which any
   encoded tree can contain. *)
let decimal_run s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let rec decode (x : t) : (Value.t, string) result =
  match (x.tag, x.text, x.children) with
  | "number", Some s, [] -> (
    match (if decimal_run s then int_of_string_opt s else None) with
    | Some n when n >= 0 -> Ok (Value.Num n)
    | _ -> Error ("bad number text " ^ s))
  | "string", Some s, [] -> Ok (Value.Str s)
  | "array", None, kids ->
    let rec go acc = function
      | [] -> Ok (Value.Arr (List.rev acc))
      | kid :: rest -> (
        match decode kid with
        | Ok v -> go (v :: acc) rest
        | Error _ as e -> e)
    in
    go [] kids
  | "object", None, kids ->
    let rec go acc = function
      | [] -> (
        match Value.obj (List.rev acc) with
        | v -> Ok v
        | exception Value.Invalid m -> Error m)
      | { tag = "pair"; label = Some k; children = [ child ]; _ } :: rest -> (
        match decode child with
        | Ok v -> go ((k, v) :: acc) rest
        | Error _ as e -> e)
      | _ -> Error "object child is not a well-formed pair"
    in
    go [] kids
  | tag, _, _ -> Error ("malformed node with tag " ^ tag)

let lookup_key x key =
  match x.tag with
  | "object" ->
    let rec scan = function
      | [] -> None
      | { tag = "pair"; label = Some k; children = [ child ]; _ } :: _
        when String.equal k key ->
        Some child
      | _ :: rest -> scan rest
    in
    scan x.children
  | _ -> None

let nth x i =
  match x.tag with
  | "array" -> List.nth_opt x.children i
  | _ -> None

let rec size x = List.fold_left (fun acc c -> acc + size c) 1 x.children

let rec pp fmt x =
  let attrs =
    (match x.label with Some l -> Printf.sprintf " key=%S" l | None -> "")
    ^ match x.text with Some t -> Printf.sprintf " value=%S" t | None -> ""
  in
  match x.children with
  | [] -> Format.fprintf fmt "<%s%s/>" x.tag attrs
  | kids ->
    Format.fprintf fmt "@[<v 2><%s%s>" x.tag attrs;
    List.iter (fun k -> Format.fprintf fmt "@,%a" pp k) kids;
    Format.fprintf fmt "@]@,</%s>" x.tag
