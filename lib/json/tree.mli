(** The formal JSON tree model of Section 3.1.

    A JSON tree is a structure [J = (D, Obj, Arr, Str, Int, A, O, val)]
    where [D] is a tree domain partitioned into object, array, string
    and number nodes, [O] is the key-labelled object-child relation
    (keys pairwise distinct per node), [A] is the position-labelled
    array-child relation, and [val] assigns atoms their values.

    This module realizes that structure over flat arrays: nodes are
    dense integer identifiers in {e preorder} (the root is [0] and the
    subtree of [n] occupies the contiguous range
    [n .. n + size t n - 1]), every node carries a precomputed
    structural hash, size and height, so that

    - child access by key or index is O(1) expected,
    - [json(n)] subtree equality ({!equal_subtrees}) is O(1) expected
      (hash comparison, structurally verified on collision),

    which is what the linear-time evaluation results of the paper
    (Propositions 1, 3, 6) assume of the substrate. *)

type t
(** An immutable JSON tree. *)

type node = int
(** Node identifier: [0 .. node_count t - 1], in preorder. *)

type kind =
  | Kobj  (** an object node *)
  | Karr  (** an array node *)
  | Kstr of string  (** a string leaf carrying its value *)
  | Kint of int  (** a number leaf carrying its value *)

type edge = Root | Key of string | Pos of int
(** How a node is reached from its parent: object edges are labelled
    with keys (relation [O]), array edges with positions (relation
    [A]); the root has no incoming edge. *)

val of_value : ?budget:Obs.Budget.t -> Value.t -> t
(** Build the tree of a value.  [budget] bounds the construction: one
    fuel unit per node, recursion depth against the budget's ceiling —
    so adversarially deep values raise {!Obs.Budget.Exhausted} instead
    of [Stack_overflow].  @raise Value.Invalid on invalid values
    (duplicate keys / negative numbers). *)

val of_string :
  ?mode:[ `Strict | `Lenient ] -> ?max_depth:int -> ?budget:Obs.Budget.t
  -> string -> (t, Parser.error) result
(** [of_string input] builds the tree straight from JSON text in a
    single fused pass: lexing, syntax checking and flat-array
    construction happen together, with no token list and no {!Value.t}
    intermediate.  The result is indistinguishable from
    [of_value (Parser.parse_exn input)] — same node numbering, hashes,
    sizes, error messages and positions, and the same total fuel draw
    (two units per value: parse + construction) — the two-stage route
    is kept as the differential oracle.  Counters:
    [parse.direct.bytes], [parse.direct.docs], [parse.values]. *)

val of_string_exn :
  ?mode:[ `Strict | `Lenient ] -> ?max_depth:int -> ?budget:Obs.Budget.t
  -> string -> t
(** Like {!of_string}.  @raise Parser.Parse_error on failure (including
    budget exhaustion).  @raise Lexer.Error on malformed input. *)

val of_lexer_exn :
  ?mode:[ `Strict | `Lenient ] -> ?base_depth:int -> budget:Obs.Budget.t
  -> Lexer.t -> t
(** [of_lexer_exn ~budget lx] parses {e one} JSON value off an existing
    lexer with the same fused pass as {!of_string} — no trailing-input
    check, so the caller can keep consuming [lx] afterwards.  The
    budget guard runs with depths offset by [base_depth] (stored node
    depths stay tree-relative), which lets the streaming validator
    spill a subtree [base_depth] levels into a document while keeping
    the global nesting ceiling exact.  @raise Parser.Parse_error,
    @raise Lexer.Error like {!of_string_exn}. *)

val to_value : t -> Value.t
(** Inverse of {!of_value} (up to object pair order). *)

val value_at : t -> node -> Value.t
(** [value_at t n] is [json(n)]: the JSON value of the subtree rooted at
    [n] — itself a valid JSON document (compositionality, §3.1). *)

val root : node
(** The root node, always [0]. *)

val node_count : t -> int
(** [|D|], the number of nodes. *)

val kind : t -> node -> kind
val is_obj : t -> node -> bool
val is_arr : t -> node -> bool
val is_str : t -> node -> bool
val is_int : t -> node -> bool

val str_value : t -> node -> string option
(** [val(n)] for string nodes. *)

val int_value : t -> node -> int option
(** [val(n)] for number nodes. *)

val obj_children : t -> node -> (string * node) list
(** Key-labelled children (empty unless [n] is an object), in document
    order. *)

val arr_children : t -> node -> node array
(** Position-labelled children (empty unless [n] is an array); element
    [i] is the child reached through edge [i]. *)

val children : t -> node -> node list
(** All children in document order, whatever the node kind. *)

val child_ids : t -> node -> node array
(** All children in document order, as the tree's own backing array —
    {b do not mutate}.  Allocation-free variant of {!children} for hot
    evaluation loops. *)

val obj_keys : t -> node -> string array
(** The keys of an object node in document order, as the tree's own
    backing array — {b do not mutate}; [[||]] for non-objects.
    Pairs with {!child_ids}: [obj_keys t n] and [child_ids t n] are
    parallel arrays for object nodes. *)

val arity : t -> node -> int
(** Number of children. *)

val lookup : t -> node -> string -> node option
(** [lookup t n k] resolves the navigation instruction [n\[k\]]:
    the unique child of object [n] under key [k].  O(1) expected. *)

val nth : t -> node -> int -> node option
(** [nth t n i] resolves [n\[i\]] on array nodes.  Negative [i] counts
    from the end ([-1] is the last element), cf. the dual operator
    remark in §4.2. *)

val parent : t -> node -> node option
(** [None] only for the root. *)

val parent_id : t -> node -> node
(** Allocation-free {!parent}: [-1] for the root.  For hot pre-image
    loops. *)

val edge_from_parent : t -> node -> edge
(** The incoming edge label. *)

(** {1 Label index}

    The edge relations [O] (key-labelled) and [A] (position-labelled)
    grouped by label, so a backward navigation step can touch only the
    edges carrying its label instead of sweeping all [|D|] nodes.
    Built lazily — the first accessor call pays one O(|D|) bucketing
    pass ([tree.index.build] span, [tree.index.builds] counter) — and
    cached on the tree thereafter. *)

val build_index : ?budget:Obs.Budget.t -> t -> unit
(** Force construction of the label index.  [budget] is charged one
    fuel unit per node; the accessors below build with an unlimited
    budget when the index is absent, so call this first to account the
    work. *)

val key_index : t -> string -> node array
(** [key_index t w] lists the nodes whose incoming edge is [Key w], in
    preorder ([[||]] when the key occurs nowhere). *)

val pos_index : t -> int -> node array
(** [pos_index t p] lists the nodes whose incoming edge is [Pos p]
    ([[||]] for [p < 0] or [p >= max_arity t]). *)

val max_arity : t -> int
(** Maximum arity over the whole tree — one past the largest position
    label present. *)

val arr_index : t -> node array
(** All array nodes, in preorder. *)

val iter_key_index : (string -> node array -> unit) -> t -> unit
(** Iterate over all distinct object keys and their edge buckets (order
    unspecified). *)

val size : t -> node -> int
(** Number of nodes of the subtree rooted at [n]. *)

val height_of : t -> node -> int
(** Height of the subtree rooted at [n] (leaves have height [0]). *)

val height : t -> int
(** Height of the whole tree. *)

val depth : t -> node -> int
(** Distance from the root. *)

val subtree_hash : t -> node -> int
(** Structural hash of [json(n)], equal for structurally equal
    subtrees (object key order insensitive). *)

val equal_subtrees : t -> node -> node -> bool
(** [equal_subtrees t n1 n2] decides [json(n1) = json(n2)].  Exact:
    hash comparison fast path, structural walk on agreement. *)

val equal_across : t -> node -> t -> node -> bool
(** Subtree equality across two different trees. *)

val equal_to_value : t -> node -> Value.t -> bool
(** [equal_to_value t n a] decides [json(n) = A] for a constant
    document [A] (the [EQ(α, A)] and [~(A)] atomic tests). *)

val substitute : t -> node -> Value.t -> Value.t
(** [substitute t n v] is the document of [t] with [json(n)] replaced
    by [v]: only the root-to-[n] spine is rebuilt, siblings convert
    via {!value_at}.  [substitute t root v = v].
    @raise Invalid_argument on an out-of-range node. *)

val nodes : t -> node Seq.t
(** All nodes in preorder. *)

val iter : (node -> unit) -> t -> unit
(** Preorder iteration. *)

val nodes_by_height : t -> node list array
(** [nodes_by_height t] groups node ids by subtree height — index [h]
    lists the nodes of height exactly [h].  Used by the bottom-up
    recursive-JSL evaluator (Proposition 9). *)

val address : t -> node -> int list
(** The tree-domain address of [n]: the sequence of child positions
    from the root, i.e. the element of [D ⊆ N*] the node stands for. *)

val pp_node : t -> Format.formatter -> node -> unit
(** Debug rendering: address, kind and value of a node. *)
