type step =
  | Key of string
  | Index of int

type t = step list

let is_plain_key s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s
  && not (String.for_all (fun c -> c >= '0' && c <= '9') s)

let to_string path =
  let buf = Buffer.create 32 in
  List.iteri
    (fun i step ->
      match step with
      | Key k when is_plain_key k ->
        if i > 0 then Buffer.add_char buf '.';
        Buffer.add_string buf k
      | Key k ->
        Buffer.add_char buf '[';
        Buffer.add_string buf (Value.to_string (Value.Str k));
        Buffer.add_char buf ']'
      | Index i ->
        Buffer.add_char buf '[';
        Buffer.add_string buf (string_of_int i);
        Buffer.add_char buf ']')
    path;
  Buffer.contents buf

let pp fmt p = Format.pp_print_string fmt (to_string p)

exception Bad of string

let of_string_exn_inner input =
  let n = String.length input in
  let pos = ref 0 in
  let fail fmt =
    Format.kasprintf (fun s -> raise (Bad (Printf.sprintf "at offset %d: %s" !pos s))) fmt
  in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let bare_key () =
    let start = !pos in
    while
      !pos < n
      &&
      match input.[!pos] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "expected a key";
    String.sub input start (!pos - start)
  in
  let quoted_key () =
    (* re-use the JSON lexer for the quoted string *)
    let rest = String.sub input !pos (n - !pos) in
    let lx = Lexer.create rest in
    match Lexer.next lx with
    | _, Lexer.String s ->
      (* consume exactly the string literal: [Lexer.offset] is the
         first byte after the closing quote.  Peeking ahead instead
         would tokenize whatever follows the key and could raise on
         garbage that is none of the key's business. *)
      pos := !pos + Lexer.offset lx;
      s
    | _ -> fail "expected a quoted key"
    | exception Lexer.Error (_, m) -> fail "bad quoted key: %s" m
  in
  (* whitespace is accepted uniformly inside brackets: spaces, tabs and
     newlines, before and after the key or index *)
  let skip_ws () =
    while
      !pos < n
      && match input.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let close_bracket () =
    skip_ws ();
    if !pos >= n || input.[!pos] <> ']' then fail "expected ']'";
    incr pos
  in
  let bracket () =
    incr pos (* '[' *);
    skip_ws ();
    match peek () with
    | Some '"' ->
      let k = quoted_key () in
      close_bracket ();
      Key k
    | Some ('-' | '0' .. '9') ->
      let start = !pos in
      if input.[!pos] = '-' then incr pos;
      while !pos < n && input.[!pos] >= '0' && input.[!pos] <= '9' do
        incr pos
      done;
      let text = String.sub input start (!pos - start) in
      if text = "-" then fail "expected digits after '-'";
      let i =
        match int_of_string_opt text with
        | Some i -> i
        | None -> fail "index %s out of range" text
      in
      (* [-0] has no meaning in the paper's natural-number index model:
         positions are naturals, and the negative form is only accepted
         as the from-the-end convention, which needs a nonzero offset *)
      if i = 0 && text.[0] = '-' then
        fail "index -0 is not a natural number (use [0])";
      close_bracket ();
      Index i
    | _ -> fail "expected a quoted key or an index inside '[ ]'"
  in
  let steps = ref [] in
  (* optional leading $ for the whole document *)
  if peek () = Some '$' then incr pos;
  let first = ref true in
  while !pos < n do
    (match peek () with
    | Some '.' ->
      incr pos;
      steps := Key (bare_key ()) :: !steps
    | Some '[' -> steps := bracket () :: !steps
    | Some _ when !first -> steps := Key (bare_key ()) :: !steps
    | Some c -> fail "unexpected character %C" c
    | None -> ());
    first := false
  done;
  List.rev !steps

let of_string input =
  match of_string_exn_inner input with
  | p -> Ok p
  | exception Bad msg -> Error msg

let of_string_exn input =
  match of_string input with
  | Ok p -> p
  | Error msg -> invalid_arg ("Pointer.of_string_exn: " ^ msg)

let step_value (v : Value.t) = function
  | Key k -> Value.member k v
  | Index i -> Value.nth i v

let get path v =
  let rec go v = function
    | [] -> Some v
    | s :: rest -> ( match step_value v s with None -> None | Some v -> go v rest)
  in
  go v path

let get_node path t n =
  let rec go n = function
    | [] -> Some n
    | Key k :: rest -> (
      match Tree.lookup t n k with None -> None | Some c -> go c rest)
    | Index i :: rest -> (
      match Tree.nth t n i with None -> None | Some c -> go c rest)
  in
  go n path

let exists path v = Option.is_some (get path v)
