type t =
  | Num of int
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let num n =
  if n < 0 then invalid "Value.num: %d is not a natural number" n;
  Num n

let str s = Str s
let arr vs = Arr vs

let duplicate_key kvs =
  let tbl = Hashtbl.create (List.length kvs) in
  let rec go = function
    | [] -> None
    | (k, _) :: rest ->
      if Hashtbl.mem tbl k then Some k
      else begin
        Hashtbl.add tbl k ();
        go rest
      end
  in
  go kvs

let obj kvs =
  match duplicate_key kvs with
  | Some k -> invalid "Value.obj: duplicate key %S" k
  | None -> Obj kvs

let empty_obj = Obj []

let rec check = function
  | Num n -> if n < 0 then Error (Printf.sprintf "negative number %d" n) else Ok ()
  | Str _ -> Ok ()
  | Arr vs ->
    let rec go = function
      | [] -> Ok ()
      | v :: rest -> ( match check v with Ok () -> go rest | Error _ as e -> e)
    in
    go vs
  | Obj kvs -> (
    match duplicate_key kvs with
    | Some k -> Error (Printf.sprintf "duplicate key %S" k)
    | None ->
      let rec go = function
        | [] -> Ok ()
        | (_, v) :: rest -> ( match check v with Ok () -> go rest | Error _ as e -> e)
      in
      go kvs)

let is_valid v = match check v with Ok () -> true | Error _ -> false

let sort_pairs kvs = List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) kvs

let rec sort_keys = function
  | (Num _ | Str _) as v -> v
  | Arr vs -> Arr (List.map sort_keys vs)
  | Obj kvs -> Obj (sort_pairs (List.map (fun (k, v) -> (k, sort_keys v)) kvs))

let rec compare v1 v2 =
  match (v1, v2) with
  | Num n1, Num n2 -> Int.compare n1 n2
  | Num _, _ -> -1
  | _, Num _ -> 1
  | Str s1, Str s2 -> String.compare s1 s2
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Arr l1, Arr l2 -> compare_list l1 l2
  | Arr _, _ -> -1
  | _, Arr _ -> 1
  | Obj o1, Obj o2 -> compare_pairs (sort_pairs o1) (sort_pairs o2)

and compare_list l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c <> 0 then c else compare_list xs ys

and compare_pairs l1 l2 =
  match (l1, l2) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (k1, x) :: xs, (k2, y) :: ys ->
    let c = String.compare k1 k2 in
    if c <> 0 then c
    else
      let c = compare x y in
      if c <> 0 then c else compare_pairs xs ys

let equal v1 v2 = compare v1 v2 = 0

(* A simple polynomial rolling hash over the canonical (key-sorted) form.
   Distinct tags per constructor keep [Num 0], [Str ""], [Arr []] and
   [Obj []] apart. *)
let hash v =
  let combine h x = (h * 0x01000193) lxor x land max_int in
  let rec go h = function
    | Num n -> combine (combine h 1) n
    | Str s -> combine (combine h 2) (Hashtbl.hash s)
    | Arr vs -> List.fold_left go (combine h 3) vs
    | Obj kvs ->
      List.fold_left
        (fun h (k, v) -> go (combine h (Hashtbl.hash k)) v)
        (combine h 4) (sort_pairs kvs)
  in
  go 0x811c9dc5 v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Num _ | Str _ | Arr _ -> None

let nth i = function
  | Arr vs ->
    let n = List.length vs in
    let i = if i < 0 then n + i else i in
    if i < 0 || i >= n then None else Some (List.nth vs i)
  | Num _ | Str _ | Obj _ -> None

let kind = function
  | Num _ -> `Num
  | Str _ -> `Str
  | Arr _ -> `Arr
  | Obj _ -> `Obj

let kind_name v =
  match kind v with
  | `Num -> "number"
  | `Str -> "string"
  | `Arr -> "array"
  | `Obj -> "object"

let rec size = function
  | Num _ | Str _ -> 1
  | Arr vs -> List.fold_left (fun acc v -> acc + size v) 1 vs
  | Obj kvs -> List.fold_left (fun acc (_, v) -> acc + size v) 1 kvs

let rec height = function
  | Num _ | Str _ -> 0
  | Arr [] | Obj [] -> 0
  | Arr vs -> 1 + List.fold_left (fun acc v -> max acc (height v)) 0 vs
  | Obj kvs -> 1 + List.fold_left (fun acc (_, v) -> max acc (height v)) 0 kvs

(* Escaping per RFC 8259: the two mandatory escapes plus control
   characters; everything else is passed through as UTF-8. *)
let escape_to_buffer buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write_compact buf = function
  | Num n -> Buffer.add_string buf (string_of_int n)
  | Str s -> escape_to_buffer buf s
  | Arr vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        write_compact buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to_buffer buf k;
        Buffer.add_char buf ':';
        write_compact buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write_compact buf v;
  Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_string v)
