type error = { position : Lexer.position; message : string }

let pp_error fmt { position; message } =
  Format.fprintf fmt "line %d, column %d: %s" position.Lexer.line
    position.Lexer.col message

exception Parse_error of error

let fail position fmt =
  Format.kasprintf (fun message -> raise (Parse_error { position; message })) fmt

let unexpected pos tok expectation =
  fail pos "unexpected %a, expected %s" Lexer.pp_token tok expectation

type atom = Int of int | Str of string

(* Classify a literal token under [mode] without committing to a value
   representation — shared by the {!Value.t}-producing route below and
   the direct string→{!Tree.t} ingestion path, so both reject exactly
   the same literals with exactly the same messages. *)
let literal_atom mode pos (tok : Lexer.token) : atom =
  match (tok, mode) with
  | Lexer.Nat n, _ -> Int n
  | Lexer.String s, _ -> Str s
  | Lexer.True, `Lenient -> Str "true"
  | Lexer.False, `Lenient -> Str "false"
  | Lexer.Null, `Lenient -> Str "null"
  | Lexer.Float f, `Lenient when Float.is_integer f && f >= 0. ->
    (* only narrow floats whose integral value round-trips through the
       native int: [int_of_float] on anything >= 2^62 is undefined (it
       produced 0 for [1e30], silently corrupting the literal) *)
    if f < 0x1p62 then Int (int_of_float f)
    else fail pos "integer literal %.0f out of range" f
  (* [-0] normalizes to the natural 0, like [-0.0] above *)
  | Lexer.Neg_int 0, `Lenient -> Int 0
  | Lexer.True, `Strict | Lexer.False, `Strict ->
    fail pos "boolean literals are outside the model (use `Lenient mode)"
  | Lexer.Null, `Strict ->
    fail pos "null is outside the model (use `Lenient mode)"
  | Lexer.Float _, _ ->
    fail pos "non-integer numbers are outside the model"
  | Lexer.Neg_int _, _ ->
    fail pos "negative numbers are outside the model"
  | _, _ -> assert false

(* Convert a literal outside the paper's model according to [mode]. *)
let literal mode pos (tok : Lexer.token) : Value.t =
  match literal_atom mode pos tok with
  | Int n -> Value.Num n
  | Str s -> Value.Str s

(* One budget check per parsed value: depth against the ceiling, [units]
   units of fuel, and (periodically) the wall-clock deadline.  Budget
   exhaustion is reported as a positioned parse error.  The direct
   ingestion path passes [~units:2] to also account the
   tree-construction unit in the same check. *)
let guard ?(units = 1) budget pos depth =
  match
    Obs.Budget.check_depth budget depth;
    Obs.Budget.burn budget units
  with
  | () -> ()
  | exception Obs.Budget.Exhausted Obs.Budget.Depth ->
    fail pos "maximum nesting depth %d exceeded" (Obs.Budget.max_depth budget)
  | exception Obs.Budget.Exhausted r -> fail pos "%s" (Obs.Budget.describe r)

let parse_value mode budget lx =
  let rec value depth =
    let pos, _ = Lexer.peek lx in
    guard budget pos depth;
    Obs.Metrics.incr "parse.values";
    let pos, tok = Lexer.next lx in
    match tok with
    | Lexer.Lbrace -> obj depth pos
    | Lexer.Lbracket -> array depth pos
    | Lexer.String _ | Lexer.Nat _ | Lexer.Neg_int _ | Lexer.Float _
    | Lexer.True | Lexer.False | Lexer.Null ->
      literal mode pos tok
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof ->
      unexpected pos tok "a JSON value"
  and obj depth open_pos =
    let rec members acc =
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.String key ->
        if List.mem_assoc key acc then
          fail pos "duplicate object key %S" key;
        let pos, tok = Lexer.next lx in
        if tok <> Lexer.Colon then unexpected pos tok "':'";
        let v = value (depth + 1) in
        let acc = (key, v) :: acc in
        let pos, tok = Lexer.next lx in
        (match tok with
        | Lexer.Comma -> members acc
        | Lexer.Rbrace -> Value.Obj (List.rev acc)
        | _ -> unexpected pos tok "',' or '}'")
      | _ -> unexpected pos tok "a string key"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbrace then begin
      ignore (Lexer.next lx);
      Value.Obj []
    end
    else begin
      ignore open_pos;
      members []
    end
  and array depth open_pos =
    let rec elements acc =
      let v = value (depth + 1) in
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.Comma -> elements (v :: acc)
      | Lexer.Rbracket -> Value.Arr (List.rev (v :: acc))
      | _ -> unexpected pos tok "',' or ']'"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbracket then begin
      ignore (Lexer.next lx);
      Value.Arr []
    end
    else begin
      ignore open_pos;
      elements []
    end
  in
  value 0

(* Consume one complete JSON value without building anything, applying
   exactly the checks the building routes apply: syntax, duplicate
   object keys, literal-mode admission, and the budget guard per value
   ([units] fuel each, depth against the ceiling).  String {e values}
   are validated but not decoded ({!Lexer.next_skip}); object keys are
   decoded because duplicate detection compares them.  Errors are
   byte-identical to {!parse_value} / [Tree.of_string] on the same
   input, which is what lets the streaming validator fast-forward over
   unconstrained subtrees without weakening any check. *)
let skip_value ?(units = 1) mode budget lx depth =
  let rec value depth =
    let pos, tok = Lexer.next_skip lx in
    guard ~units budget pos depth;
    match tok with
    | Lexer.Lbrace -> obj depth
    | Lexer.Lbracket -> arr depth
    | Lexer.String _ | Lexer.Nat _ | Lexer.Neg_int _ | Lexer.Float _
    | Lexer.True | Lexer.False | Lexer.Null ->
      ignore (literal_atom mode pos tok)
    | Lexer.Rbrace | Lexer.Rbracket | Lexer.Colon | Lexer.Comma | Lexer.Eof ->
      unexpected pos tok "a JSON value"
  and obj depth =
    let seen = Hashtbl.create 8 in
    let rec members () =
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.String key ->
        if Hashtbl.mem seen key then fail pos "duplicate object key %S" key;
        Hashtbl.add seen key ();
        let pos, tok = Lexer.next lx in
        if tok <> Lexer.Colon then unexpected pos tok "':'";
        value (depth + 1);
        let pos, tok = Lexer.next lx in
        (match tok with
        | Lexer.Comma -> members ()
        | Lexer.Rbrace -> ()
        | _ -> unexpected pos tok "',' or '}'")
      | _ -> unexpected pos tok "a string key"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbrace then ignore (Lexer.next lx) else members ()
  and arr depth =
    let rec elements () =
      value (depth + 1);
      let pos, tok = Lexer.next lx in
      match tok with
      | Lexer.Comma -> elements ()
      | Lexer.Rbracket -> ()
      | _ -> unexpected pos tok "',' or ']'"
    in
    let _, tok = Lexer.peek lx in
    if tok = Lexer.Rbracket then ignore (Lexer.next lx) else elements ()
  in
  value depth

let budget_of budget max_depth =
  match budget with
  | Some b -> b
  | None ->
    Obs.Budget.depth_limited
      (Option.value ~default:Obs.Budget.default_max_depth max_depth)

let parse_exn ?(mode = `Strict) ?max_depth ?budget input =
  let budget = budget_of budget max_depth in
  let lx = Lexer.create input in
  let v = parse_value mode budget lx in
  let pos, tok = Lexer.next lx in
  if tok <> Lexer.Eof then unexpected pos tok "end of input";
  v

let wrap f =
  match f () with
  | v -> Ok v
  | exception Parse_error e -> Error e
  | exception Lexer.Error (position, message) -> Error { position; message }

let parse ?mode ?max_depth ?budget input =
  wrap (fun () -> parse_exn ?mode ?max_depth ?budget input)

let parse_prefix ?(mode = `Strict) ?budget input start =
  wrap (fun () ->
      let budget = budget_of budget None in
      let tail = String.sub input start (String.length input - start) in
      let lx = Lexer.create tail in
      let v = parse_value mode budget lx in
      (v, start + Lexer.offset lx))

let parse_many ?(mode = `Strict) ?budget input =
  wrap (fun () ->
      (* one budget for the whole stream: fuel and deadline are shared
         across documents, the depth ceiling applies to each *)
      let budget = budget_of budget None in
      let lx = Lexer.create input in
      let rec go acc =
        let _, tok = Lexer.peek lx in
        if tok = Lexer.Eof then List.rev acc
        else go (parse_value mode budget lx :: acc)
      in
      go [])
