(** JSON navigation instructions (Section 2).

    A pointer is a sequence of the two primitives every JSON system
    provides: access the value under a key of an object ([J\[key\]]),
    and random access to the [i]-th element of an array ([J\[i\]]).
    Negative indices address elements from the end ([-1] is last),
    covering the dual operator discussed in §4.2.

    Concrete syntax (python-flavoured dot notation):
    {v  name.first        hobbies[1]        items[-1].id
        ["key with.dots"] a.b[0]["c"]  v}
    A leading [$] (the whole document) is accepted and ignored. *)

type step =
  | Key of string  (** [J\[key\]] on objects *)
  | Index of int  (** [J\[i\]] on arrays; negative = from the end *)

type t = step list
(** A navigation path, applied left to right; [\[\]] denotes the
    document itself. *)

val of_string : string -> (t, string) result
(** Parse the concrete syntax above. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a malformed pointer. *)

val to_string : t -> string
(** Inverse of {!of_string} (keys needing quotes are quoted). *)

val pp : Format.formatter -> t -> unit

val get : t -> Value.t -> Value.t option
(** [get p v] follows [p] from [v]; [None] when a step does not apply
    (missing key, out-of-range index, wrong node type). *)

val get_node : t -> Tree.t -> Tree.node -> Tree.node option
(** Same, over the tree model starting from a given node. *)

val exists : t -> Value.t -> bool
(** [exists p v] is [true] iff [get p v] is [Some _]. *)
