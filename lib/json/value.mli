(** JSON values, restricted to the data model of Bourhis et al. (PODS'17).

    The paper abstracts JSON to four kinds of values: natural numbers,
    strings, arrays, and objects whose keys are pairwise distinct
    (Section 2).  This module provides that value type together with
    smart constructors enforcing the key-distinctness invariant,
    structural comparison, hashing, and convenient accessors.

    Full-JSON literals ([true], [false], [null], floats) are handled at
    the parser level (see {!Parser}); they are not part of the formal
    model. *)

type t =
  | Num of int  (** a natural number; the invariant [n >= 0] is enforced
                    by {!num} and checked by {!check}. *)
  | Str of string  (** a unicode string, stored as UTF-8 bytes. *)
  | Arr of t list  (** an array [\[v1, ..., vn\]]. *)
  | Obj of (string * t) list
      (** an object [{k1: v1, ..., kn: vn}]; keys must be pairwise
          distinct.  Order of pairs is preserved for printing but is
          irrelevant for {!equal} and {!compare}. *)

exception Invalid of string
(** Raised by smart constructors on invariant violations. *)

val num : int -> t
(** [num n] is [Num n].  @raise Invalid if [n < 0]. *)

val str : string -> t
(** [str s] is [Str s]. *)

val arr : t list -> t
(** [arr vs] is [Arr vs]. *)

val obj : (string * t) list -> t
(** [obj kvs] is [Obj kvs].  @raise Invalid if two keys coincide. *)

val duplicate_key : (string * t) list -> string option
(** The first key bound twice in [kvs], if any — the check behind
    {!obj}, shared with consumers that must reject duplicate-keyed
    maps arriving as plain association lists. *)

val empty_obj : t
(** The empty object [{}]. *)

val check : t -> (unit, string) result
(** [check v] verifies the deep invariants: all numbers are naturals and
    all objects have pairwise-distinct keys. *)

val is_valid : t -> bool
(** [is_valid v] is [true] iff [check v] is [Ok ()]. *)

val equal : t -> t -> bool
(** Structural equality.  Objects are compared as key-value {e sets}:
    pair order is irrelevant, mirroring the unordered semantics of JSON
    objects in the paper. *)

val compare : t -> t -> int
(** A total order compatible with {!equal} (objects compared on
    key-sorted pairs). *)

val hash : t -> int
(** A structural hash compatible with {!equal}. *)

val sort_keys : t -> t
(** [sort_keys v] recursively sorts all object pairs by key, producing
    the canonical representative of [v]'s equivalence class. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k v] is the value under key [k] when [v] is an object
    containing [k], the JSON navigation instruction [v\[k\]]. *)

val nth : int -> t -> t option
(** [nth i v] is the [i]-th element (0-based) when [v] is an array.
    Negative indices count from the end: [-1] is the last element. *)

val kind : t -> [ `Num | `Str | `Arr | `Obj ]
(** The top-level type of a value. *)

val kind_name : t -> string
(** Human-readable name of {!kind}: ["number"], ["string"], ["array"],
    ["object"]. *)

(** {1 Size measures} *)

val size : t -> int
(** Number of JSON values nested in [v], including [v] itself — the
    number of nodes of the corresponding JSON tree. *)

val height : t -> int
(** Height of the corresponding JSON tree; atoms and empty containers
    have height [0]. *)

(** {1 Pretty-printing} *)

val pp : Format.formatter -> t -> unit
(** Compact single-line JSON rendering (suitable for error messages). *)

val to_string : t -> string
(** [to_string v] is the compact rendering of [v]. *)

val write_compact : Buffer.t -> t -> unit
(** Compact rendering appended directly to [buf] — no intermediate
    string.  [to_string] is [write_compact] over a fresh buffer. *)

val escape_to_buffer : Buffer.t -> string -> unit
(** Append the JSON string literal for [s] (quotes included) to [buf]. *)
