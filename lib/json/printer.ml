let compact = Value.to_string

let pretty ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad depth = Buffer.add_string buf (String.make (depth * indent) ' ') in
  let string s = Value.escape_to_buffer buf s in
  let rec go depth = function
    | (Value.Num _ | Value.Str _) as v -> Value.write_compact buf v
    | Value.Arr [] -> Buffer.add_string buf "[]"
    | Value.Obj [] -> Buffer.add_string buf "{}"
    | Value.Arr vs ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          go (depth + 1) v)
        vs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf ']'
    | Value.Obj kvs ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          pad (depth + 1);
          string k;
          Buffer.add_string buf ": ";
          go (depth + 1) v)
        kvs;
      Buffer.add_char buf '\n';
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

let pp_pretty ?indent fmt v = Format.pp_print_string fmt (pretty ?indent v)

(* straight into the caller's buffer: no intermediate string of the
   whole document *)
let to_buffer buf v = Value.write_compact buf v

let to_channel oc v =
  let buf = Buffer.create 4096 in
  Value.write_compact buf v;
  Buffer.output_buffer oc buf
