(** A from-scratch JSON lexer with a resumable feed core.

    Tokenizes the full RFC 8259 grammar (including [true]/[false]/[null]
    and fractional/exponent numbers); the {!Parser} decides which of
    those are admitted into the paper's restricted data model.

    Strings are decoded: the eight single-character escapes and
    [\uXXXX] (including UTF-16 surrogate pairs) are resolved and the
    result is stored as UTF-8 bytes.

    The lexer has two front doors over one scanning core:

    - {!create} for one-shot lexing of an in-memory string — the
      historical API, used by {!Parser}, {!Tree} and the streaming
      validator;
    - {!create_feed} for incremental lexing of a byte stream delivered
      in arbitrary chunks via {!feed}/{!close} and drained with
      {!pull}.

    A token split at {e any} byte offset by a chunk boundary lexes
    identically (token, position, error, everything) to the one-shot
    path: a scan that runs out of buffered bytes suspends, and once
    more bytes arrive it rescans the pending token from its first byte
    with the same code the one-shot path runs.  Consumed bytes are
    compacted away on {!feed}, so memory follows the largest in-flight
    token plus one chunk, not the stream. *)

type position = { line : int; col : int; offset : int }
(** 1-based line and column of the {e start} of a token, plus byte
    offset into the input. *)

type token =
  | Lbrace  (** [{] *)
  | Rbrace  (** [}] *)
  | Lbracket  (** [\[] *)
  | Rbracket  (** [\]] *)
  | Colon  (** [:] *)
  | Comma  (** [,] *)
  | String of string  (** a decoded string literal *)
  | Nat of int  (** a non-negative integer literal *)
  | Neg_int of int
      (** a negatively-signed integer literal (outside the model).
          [-0] lexes as [Neg_int 0]: the sign is classified as written,
          so the natural-number model rejects it uniformly (lenient
          parsing narrows it to the natural [0]). *)
  | Float of float
      (** a literal with fraction or exponent.  Literals whose value
          overflows the double range (e.g. [1e999]) are a lexical
          error, not an infinity: infinities cannot be re-serialized
          as JSON. *)
  | True
  | False
  | Null
  | Eof

exception Error of position * string
(** Lexical error with the position at which it occurred.  After an
    [Error] the lexer is stuck mid-token; further pulls are
    unspecified. *)

type t
(** A lexer state: a byte window over the input plus the scan cursor. *)

val create : string -> t
(** [create input] is a one-shot lexer over all of [input] (a feed
    lexer born with the whole stream already fed and closed).  The
    input string is aliased, not copied, and is never mutated.  Never
    produces [`Await]. *)

(** {1 Feed mode} *)

val create_feed : ?refill:(t -> unit) -> unit -> t
(** [create_feed ()] is a lexer over a stream of bytes yet to arrive.

    Without [refill], drive it with {!pull}: feed chunks whenever it
    answers [`Await], and {!close} at end of stream.

    With [refill], the blocking API ({!next}, {!next_skip}, {!peek})
    also works on a feed lexer: whenever a scan needs more bytes the
    callback is invoked and must either {!feed} at least one byte or
    {!close} the lexer (anything else raises [Invalid_argument], as
    the pull could never complete).  This is how chunked file/stdin
    readers drive the unchanged [Parser]/[Tree]/validator machinery. *)

val feed : t -> bytes -> int -> int -> unit
(** [feed lx bytes off len] appends [len] bytes of input starting at
    [bytes.[off]].  The chunk is copied; the caller may reuse [bytes].
    @raise Invalid_argument if the lexer is closed or the range is
    invalid. *)

val feed_string : t -> string -> unit
(** [feed_string lx s] is [feed] of all of [s]. *)

val close : t -> unit
(** [close lx] marks end of stream: no more bytes will arrive.  Pulls
    can then answer end-of-input questions (a dangling token becomes
    the same error the one-shot lexer reports).  Idempotent. *)

val pull : t -> [ `Token of position * token | `Await | `End ]
(** [pull lx] is the next token, or [`Await] if the buffered bytes do
    not suffice to decide it (feed more, or {!close}, then pull
    again), or [`End] after the final token of a closed stream.
    [`Await] consumes nothing: the pending token's bytes stay buffered
    and are rescanned from the token start on the next pull.
    @raise Error on malformed input, exactly as one-shot lexing. *)

(** {1 Pulling tokens} *)

val next : t -> position * token
(** [next lx] consumes and returns the next token.  After [Eof] it keeps
    returning [Eof].  @raise Error on malformed input.

    String literals are decoded through a scratch buffer shared across
    the lexer's lifetime (escape-free literals are cut directly out of
    the input without touching it).

    On a feed lexer this blocks on the [refill] callback when bytes run
    short; without one, needing more bytes raises [Invalid_argument]. *)

val next_skip : t -> position * token
(** Like {!next}, but string literals are {e validated without being
    decoded}: escapes, surrogate pairing and control characters are
    still checked, positions and errors are identical to {!next}, but
    the returned [String] token carries [""].  For skip paths that
    discard the value (e.g. the streaming validator fast-forwarding
    over irrelevant subtrees). *)

val peek : t -> position * token
(** [peek lx] is the next token without consuming it. *)

val offset : t -> int
(** Byte offset of the first unconsumed byte (the peeked token's start
    when a lookahead is pending). *)

val remaining : t -> int
(** Bytes received but not yet consumed ([input length - offset] on a
    one-shot lexer).  Sizes capacity estimates for consumers that
    materialize a suffix of the input (e.g. the streaming validator's
    spill path). *)

val pp_token : Format.formatter -> token -> unit
(** Render a token for error messages. *)

val tokenize : string -> (position * token) list
(** [tokenize input] is the full token stream, ending with [Eof].
    @raise Error on malformed input. *)
