(** A from-scratch JSON lexer.

    Tokenizes the full RFC 8259 grammar (including [true]/[false]/[null]
    and fractional/exponent numbers); the {!Parser} decides which of
    those are admitted into the paper's restricted data model.

    Strings are decoded: the eight single-character escapes and
    [\uXXXX] (including UTF-16 surrogate pairs) are resolved and the
    result is stored as UTF-8 bytes. *)

type position = { line : int; col : int; offset : int }
(** 1-based line and column of the {e start} of a token, plus byte
    offset into the input. *)

type token =
  | Lbrace  (** [{] *)
  | Rbrace  (** [}] *)
  | Lbracket  (** [\[] *)
  | Rbracket  (** [\]] *)
  | Colon  (** [:] *)
  | Comma  (** [,] *)
  | String of string  (** a decoded string literal *)
  | Nat of int  (** a non-negative integer literal *)
  | Neg_int of int
      (** a negatively-signed integer literal (outside the model).
          [-0] lexes as [Neg_int 0]: the sign is classified as written,
          so the natural-number model rejects it uniformly (lenient
          parsing narrows it to the natural [0]). *)
  | Float of float  (** a literal with fraction or exponent *)
  | True
  | False
  | Null
  | Eof

exception Error of position * string
(** Lexical error with the position at which it occurred. *)

type t
(** A lexer state over an in-memory input string. *)

val create : string -> t
(** [create input] is a lexer over [input]. *)

val next : t -> position * token
(** [next lx] consumes and returns the next token.  After [Eof] it keeps
    returning [Eof].  @raise Error on malformed input.

    String literals are decoded through a scratch buffer shared across
    the lexer's lifetime (escape-free literals are cut directly out of
    the input without touching it). *)

val next_skip : t -> position * token
(** Like {!next}, but string literals are {e validated without being
    decoded}: escapes, surrogate pairing and control characters are
    still checked, positions and errors are identical to {!next}, but
    the returned [String] token carries [""].  For skip paths that
    discard the value (e.g. the streaming validator fast-forwarding
    over irrelevant subtrees). *)

val peek : t -> position * token
(** [peek lx] is the next token without consuming it. *)

val offset : t -> int
(** Byte offset of the first unconsumed byte (the peeked token's start
    when a lookahead is pending). *)

val remaining : t -> int
(** Bytes not yet consumed ([input length - offset]).  Sizes capacity
    estimates for consumers that materialize a suffix of the input
    (e.g. the streaming validator's spill path). *)

val pp_token : Format.formatter -> token -> unit
(** Render a token for error messages. *)

val tokenize : string -> (position * token) list
(** [tokenize input] is the full token stream, ending with [Eof].
    @raise Error on malformed input. *)
