(** Recursive-descent parser producing {!Value.t}.

    Two modes control how full-JSON literals outside the paper's model
    (Section 2 restricts values to objects, arrays, strings and natural
    numbers) are treated:

    - [`Strict] (default): [true], [false], [null], floats and negative
      integers are rejected with a descriptive error.
    - [`Lenient]: [true]/[false]/[null] are encoded as the strings
      ["true"]/["false"]/["null"]; floats that are exact non-negative
      integers are narrowed; anything else is still rejected.

    Duplicate object keys are always rejected, as mandated by the JSON
    tree model (condition 2 of Definition in Section 3.1). *)

type error = { position : Lexer.position; message : string }

val pp_error : Format.formatter -> error -> unit
(** Renders ["line L, column C: message"]. *)

exception Parse_error of error

val parse : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int
  -> ?budget:Obs.Budget.t -> string -> (Value.t, error) result
(** [parse input] parses a single JSON document followed only by
    whitespace.  [max_depth] (default {!Obs.Budget.default_max_depth},
    i.e. [10_000]) bounds nesting to keep the parser total on
    adversarial inputs.  [budget], when given, takes precedence over
    [max_depth] and additionally enforces its fuel allowance (one unit
    per parsed value) and wall-clock deadline; exhaustion surfaces as a
    positioned [Error], never as an exception escaping [parse]. *)

val parse_exn : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int
  -> ?budget:Obs.Budget.t -> string -> Value.t
(** Like {!parse}.  @raise Parse_error on failure (including budget
    exhaustion). *)

val parse_many : ?mode:[ `Strict | `Lenient ] -> ?budget:Obs.Budget.t
  -> string -> (Value.t list, error) result
(** [parse_many input] parses a stream of whitespace-separated JSON
    documents (as found in log files / JSON-lines collections).  A
    given [budget]'s fuel and deadline are shared across the whole
    stream; the depth ceiling applies to each document. *)

val parse_prefix : ?mode:[ `Strict | `Lenient ] -> ?budget:Obs.Budget.t
  -> string -> int -> (Value.t * int, error) result
(** [parse_prefix input start] parses one JSON document beginning at
    byte offset [start] of [input] and returns it together with the
    offset of the first byte after it.  Lets other parsers (the JNL
    concrete syntax, Mongo filters) embed JSON documents. *)
