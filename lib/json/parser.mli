(** Recursive-descent parser producing {!Value.t}.

    Two modes control how full-JSON literals outside the paper's model
    (Section 2 restricts values to objects, arrays, strings and natural
    numbers) are treated:

    - [`Strict] (default): [true], [false], [null], floats and negative
      integers are rejected with a descriptive error.
    - [`Lenient]: [true]/[false]/[null] are encoded as the strings
      ["true"]/["false"]/["null"]; floats that are exact non-negative
      integers are narrowed; anything else is still rejected.

    Duplicate object keys are always rejected, as mandated by the JSON
    tree model (condition 2 of Definition in Section 3.1). *)

type error = { position : Lexer.position; message : string }

val pp_error : Format.formatter -> error -> unit
(** Renders ["line L, column C: message"]. *)

exception Parse_error of error

val parse : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int
  -> ?budget:Obs.Budget.t -> string -> (Value.t, error) result
(** [parse input] parses a single JSON document followed only by
    whitespace.  [max_depth] (default {!Obs.Budget.default_max_depth},
    i.e. [10_000]) bounds nesting to keep the parser total on
    adversarial inputs.  [budget], when given, takes precedence over
    [max_depth] and additionally enforces its fuel allowance (one unit
    per parsed value) and wall-clock deadline; exhaustion surfaces as a
    positioned [Error], never as an exception escaping [parse]. *)

val parse_exn : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int
  -> ?budget:Obs.Budget.t -> string -> Value.t
(** Like {!parse}.  @raise Parse_error on failure (including budget
    exhaustion). *)

val parse_many : ?mode:[ `Strict | `Lenient ] -> ?budget:Obs.Budget.t
  -> string -> (Value.t list, error) result
(** [parse_many input] parses a stream of whitespace-separated JSON
    documents (as found in log files / JSON-lines collections).  A
    given [budget]'s fuel and deadline are shared across the whole
    stream; the depth ceiling applies to each document. *)

val parse_prefix : ?mode:[ `Strict | `Lenient ] -> ?budget:Obs.Budget.t
  -> string -> int -> (Value.t * int, error) result
(** [parse_prefix input start] parses one JSON document beginning at
    byte offset [start] of [input] and returns it together with the
    offset of the first byte after it.  Lets other parsers (the JNL
    concrete syntax, Mongo filters) embed JSON documents. *)

(** {1 Internals shared with the direct ingestion path}

    {!Tree.of_string} fuses lexing, parsing and tree construction into
    one pass; it reuses the helpers below so that its positions,
    messages and budget behavior are {e identical} to this parser's —
    the property the differential tests pin down. *)

val fail : Lexer.position -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Parse_error} at the given position. *)

val unexpected : Lexer.position -> Lexer.token -> string -> 'a
(** [unexpected pos tok expectation] fails with the parser's uniform
    "unexpected …, expected …" message. *)

type atom = Int of int | Str of string
(** A leaf admitted into the model. *)

val literal_atom :
  [ `Strict | `Lenient ] -> Lexer.position -> Lexer.token -> atom
(** Classify a literal token under the given mode; fails exactly like
    the parser on literals outside the model.  Must only be applied to
    literal tokens ([String]/[Nat]/[Neg_int]/[Float]/[True]/[False]/
    [Null]). *)

val guard : ?units:int -> Obs.Budget.t -> Lexer.position -> int -> unit
(** One budget check per parsed value — depth against the ceiling and
    [units] units of fuel (default [1]) — with exhaustion reported as a
    positioned parse error. *)

val skip_value :
  ?units:int -> [ `Strict | `Lenient ] -> Obs.Budget.t -> Lexer.t -> int
  -> unit
(** [skip_value mode budget lx depth] consumes one complete JSON value
    starting at depth [depth] without building it, in memory
    proportional to its nesting depth (plus the keys of open objects,
    which duplicate detection must retain).  Every check the building
    routes apply still applies — syntax, duplicate object keys,
    literal admission under [mode], and the budget guard ([units] fuel
    per value, default [1]) — with byte-identical errors, so skipping
    never weakens validation.  String {e values} are validated without
    being decoded. *)

val budget_of : Obs.Budget.t option -> int option -> Obs.Budget.t
(** The budget an entry point runs under: the explicit one if given,
    otherwise depth-limited to [max_depth] (default
    {!Obs.Budget.default_max_depth}). *)

val wrap : (unit -> 'a) -> ('a, error) result
(** Run a parsing computation, catching {!Parse_error} and
    {!Lexer.Error} into [Error]. *)
