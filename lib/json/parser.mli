(** Recursive-descent parser producing {!Value.t}.

    Two modes control how full-JSON literals outside the paper's model
    (Section 2 restricts values to objects, arrays, strings and natural
    numbers) are treated:

    - [`Strict] (default): [true], [false], [null], floats and negative
      integers are rejected with a descriptive error.
    - [`Lenient]: [true]/[false]/[null] are encoded as the strings
      ["true"]/["false"]/["null"]; floats that are exact non-negative
      integers are narrowed; anything else is still rejected.

    Duplicate object keys are always rejected, as mandated by the JSON
    tree model (condition 2 of Definition in Section 3.1). *)

type error = { position : Lexer.position; message : string }

val pp_error : Format.formatter -> error -> unit
(** Renders ["line L, column C: message"]. *)

exception Parse_error of error

val parse : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int -> string
  -> (Value.t, error) result
(** [parse input] parses a single JSON document followed only by
    whitespace.  [max_depth] (default [10_000]) bounds nesting to keep
    the parser total on adversarial inputs. *)

val parse_exn : ?mode:[ `Strict | `Lenient ] -> ?max_depth:int -> string
  -> Value.t
(** Like {!parse}.  @raise Parse_error on failure. *)

val parse_many : ?mode:[ `Strict | `Lenient ] -> string
  -> (Value.t list, error) result
(** [parse_many input] parses a stream of whitespace-separated JSON
    documents (as found in log files / JSON-lines collections). *)

val parse_prefix : ?mode:[ `Strict | `Lenient ] -> string -> int
  -> (Value.t * int, error) result
(** [parse_prefix input start] parses one JSON document beginning at
    byte offset [start] of [input] and returns it together with the
    offset of the first byte after it.  Lets other parsers (the JNL
    concrete syntax, Mongo filters) embed JSON documents. *)
